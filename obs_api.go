package pfm

// Facade over internal/obs: end-to-end span tracing and the online
// prediction-quality ledger for the streaming runtime. Pass a Tracer and/or
// Ledger in RuntimeConfig to enable the /tracez and /ledger endpoints; see
// cmd/pfmd for a complete deployment.

import (
	"repro/internal/obs"
)

// Tracer records end-to-end pipeline spans (ingest → queue → apply →
// evaluate → act) into a fixed ring of recent traces with zero allocations
// on the publish path. Construct with NewTracer.
type Tracer = obs.Tracer

// TraceView is one recorded trace with per-stage durations.
type TraceView = obs.TraceView

// Ledger journals per-layer failure predictions against ground-truth
// failures and scores them online with the Sect. 3.3 contingency rule.
// Construct with NewLedger; feed failures via Ledger.RecordFailure.
type Ledger = obs.Ledger

// LedgerConfig sets the Sect. 3.3 matching parameters: lead time Δtl,
// prediction-period slack Δtp, and the rolling quality window.
type LedgerConfig = obs.LedgerConfig

// LedgerCombinedLayer keys the cross-layer (act-stage decision) table in
// the ledger, alongside the per-layer tables.
const LedgerCombinedLayer = obs.CombinedLayer

// Recorder is the prediction-triggered flight recorder: always-on bounded
// ring state plus a trigger pipeline that turns warnings, act firings,
// lifecycle drift/rollback and ledger burn-rate alarms into correlated
// IncidentBundles. Pass one in RuntimeConfig to enable /incidents.
type Recorder = obs.Recorder

// RecorderConfig parameterizes a flight recorder (capture window, trigger
// thresholds, refractory period, and the correlated sources to embed).
type RecorderConfig = obs.RecorderConfig

// IncidentBundle is one self-contained incident capture: the triggering
// decision, pre-trigger event window, score history, slowest spans, ranked
// suspects, quality tables and lifecycle states.
type IncidentBundle = obs.IncidentBundle

// TriggerKind names the condition that fired an incident capture.
type TriggerKind = obs.TriggerKind

// The recorder's trigger matrix.
const (
	TriggerWarn     = obs.TriggerWarn
	TriggerAct      = obs.TriggerAct
	TriggerDrift    = obs.TriggerDrift
	TriggerRollback = obs.TriggerRollback
	TriggerBurnRate = obs.TriggerBurnRate
)

// NewTracer builds a span tracer retaining the most recent capacity traces
// (rounded up to a power of two).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewRecorder validates the configuration and builds a flight recorder.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) { return obs.NewRecorder(cfg) }

// NewLedger builds a prediction-quality ledger for the given layer names
// (the combined decision table is always present).
func NewLedger(cfg LedgerConfig, layers ...string) (*Ledger, error) {
	return obs.NewLedger(cfg, layers...)
}

package pfm

// Facade over internal/runtime: the concurrent streaming MEA runtime that
// wraps an MEAEngine into a wall-clock pipeline (bounded ingest queue →
// worker-pool evaluate stage → serialized act stage) with Prometheus-text
// metrics and /healthz. See cmd/pfmd for a complete deployment.

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Runtime is the concurrent streaming MEA pipeline (Monitor ingest →
// Evaluate worker pool → serialized Act). Construct with NewRuntime, drive
// with Start/Ingest/EvaluateNow, observe via Handler or Serve, finish with
// Stop.
type Runtime = runtime.Runtime

// RuntimeConfig parameterizes the streaming runtime.
type RuntimeConfig = runtime.Config

// RuntimeEvent is one monitored observation flowing through the ingest
// queue: an error-log event or a monitoring-variable sample.
type RuntimeEvent = runtime.Event

// RuntimeMetrics is the pipeline's atomic metrics set (counters, latency
// histograms, queue gauges), renderable as Prometheus text.
type RuntimeMetrics = runtime.Metrics

// RuntimeHealth is the /healthz response body.
type RuntimeHealth = runtime.Health

// OverflowPolicy selects what Ingest does when the bounded queue is full.
type OverflowPolicy = runtime.OverflowPolicy

// The three ingest overflow policies.
const (
	OverflowBlock      = runtime.Block      // backpressure: wait for space
	OverflowDropOldest = runtime.DropOldest // evict the oldest queued event
	OverflowDropNewest = runtime.DropNewest // reject the incoming event
)

// Runtime event kinds.
const (
	RuntimeEventError  = runtime.KindError  // an error-log event
	RuntimeEventSample = runtime.KindSample // a monitoring-variable sample
)

// Decision is the outcome of one serialized act round (warning raised?
// action executed or suppressed by the oscillation guard?).
type Decision = core.Decision

// NewRuntime assembles a streaming runtime over an (often externally
// clocked) MEA engine. Not yet running; call Start.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return runtime.New(cfg) }

// ParseOverflowPolicy maps "block" | "drop-oldest" | "drop-newest" to the
// corresponding policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) { return runtime.ParsePolicy(s) }

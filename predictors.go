package pfm

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/eventlog"
	"repro/internal/hsmm"
	"repro/internal/mat"
	"repro/internal/predict"
	"repro/internal/timeseries"
	"repro/internal/ubf"
)

// --- error-log substrate ----------------------------------------------------

// ErrorEvent is one detected-error report (Sect. 3.1 stage 4).
type ErrorEvent = eventlog.Event

// ErrorLog is a time-ordered error log.
type ErrorLog = eventlog.Log

// ErrorSequence is an event-driven temporal error sequence (Fig. 4).
type ErrorSequence = eventlog.Sequence

// ExtractConfig parameterizes the Fig. 6 training-sequence extraction.
type ExtractConfig = eventlog.ExtractConfig

// Severity grades an error report.
type Severity = eventlog.Severity

// Severity levels.
const (
	SeverityInfo     = eventlog.SeverityInfo
	SeverityWarning  = eventlog.SeverityWarning
	SeverityError    = eventlog.SeverityError
	SeverityCritical = eventlog.SeverityCritical
)

// NewErrorLog returns an empty error log.
func NewErrorLog() *ErrorLog { return eventlog.NewLog() }

// ExtractSequences implements the Fig. 6 construction of failure and
// non-failure training sequences.
func ExtractSequences(l *ErrorLog, failureTimes []float64, cfg ExtractConfig) (failure, nonFailure []ErrorSequence, err error) {
	return eventlog.Extract(l, failureTimes, cfg)
}

// SlidingWindow returns the trailing Δtd error window at time now — the
// runtime input of the HSMM predictor.
func SlidingWindow(l *ErrorLog, now, dataWindow float64) ErrorSequence {
	return eventlog.SlidingWindow(l, now, dataWindow)
}

// --- HSMM predictor ----------------------------------------------------------

// HSMMConfig parameterizes hidden semi-Markov model training.
type HSMMConfig = hsmm.Config

// HSMMClassifier is the paper's two-model error-sequence classifier.
type HSMMClassifier = hsmm.Classifier

// TrainHSMMClassifier fits the failure and non-failure models (Sect. 3.2).
func TrainHSMMClassifier(failure, nonFailure []ErrorSequence, cfg HSMMConfig) (*HSMMClassifier, error) {
	return hsmm.TrainClassifier(failure, nonFailure, cfg)
}

// SaveHSMMClassifier writes a trained classifier as JSON.
func SaveHSMMClassifier(w io.Writer, c *HSMMClassifier) error {
	return hsmm.SaveClassifier(w, c)
}

// LoadHSMMClassifier restores a classifier written by SaveHSMMClassifier.
func LoadHSMMClassifier(r io.Reader) (*HSMMClassifier, error) {
	return hsmm.LoadClassifier(r)
}

// --- UBF predictor -----------------------------------------------------------

// Matrix is the dense matrix type used for feature data.
type Matrix = mat.Matrix

// NewMatrix returns a zero matrix.
func NewMatrix(rows, cols int) *Matrix { return mat.New(rows, cols) }

// UBFConfig parameterizes Universal Basis Function training.
type UBFConfig = ubf.TrainConfig

// UBFNetwork is a trained UBF function approximator (Eq. 1).
type UBFNetwork = ubf.Network

// TrainUBF fits a UBF network to regression targets over monitoring
// variables (Sect. 3.2, Fig. 5).
func TrainUBF(x *Matrix, y []float64, cfg UBFConfig) (*UBFNetwork, error) {
	return ubf.Train(x, y, cfg)
}

// SaveUBFNetwork writes a trained network as JSON.
func SaveUBFNetwork(w io.Writer, n *UBFNetwork) error {
	return ubf.SaveNetwork(w, n)
}

// LoadUBFNetwork restores a network written by SaveUBFNetwork.
func LoadUBFNetwork(r io.Reader) (*UBFNetwork, error) {
	return ubf.LoadNetwork(r)
}

// SubsetEvaluator scores a candidate variable subset (lower is better).
type SubsetEvaluator = ubf.SubsetEvaluator

// PWASelect runs the Probabilistic Wrapper Approach for variable selection.
func PWASelect(numVars int, eval SubsetEvaluator, cfg ubf.SelectorConfig) ([]int, float64, error) {
	return ubf.PWASelect(numVars, eval, cfg)
}

// --- time series & monitoring -------------------------------------------------

// Series is a time-ordered sequence of observations of one variable.
type Series = timeseries.Series

// FeatureSpec describes how a monitored variable contributes feature
// columns.
type FeatureSpec = timeseries.FeatureSpec

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return timeseries.New(name) }

// BuildFeatureMatrix samples feature specs at the given times.
func BuildFeatureMatrix(specs []FeatureSpec, times []float64) (*Matrix, []string, error) {
	return timeseries.BuildMatrix(specs, times)
}

// --- metrics ------------------------------------------------------------------

// ContingencyTable counts prediction outcomes and derives the Sect. 3.3
// metrics (precision, recall, false positive rate, F-measure).
type ContingencyTable = predict.ContingencyTable

// Scored pairs a predictor score with ground truth.
type Scored = predict.Scored

// ROCPoint is one operating point of a receiver operating characteristic.
type ROCPoint = predict.ROCPoint

// Warning is a failure warning raised by an online predictor.
type Warning = predict.Warning

// ROC computes the ROC curve of scored predictions.
func ROC(scored []Scored) ([]ROCPoint, error) { return predict.ROC(scored) }

// AUC integrates a ROC curve.
func AUC(curve []ROCPoint) (float64, error) { return predict.AUC(curve) }

// MaxFMeasure finds the threshold maximizing the F-measure.
func MaxFMeasure(scored []Scored) (threshold float64, table ContingencyTable, err error) {
	return predict.MaxFMeasure(scored)
}

// --- taxonomy baselines ---------------------------------------------------------

// DFT is the Dispersion Frame Technique baseline.
type DFT = baseline.DFT

// EventSet is the indicative-event-set baseline.
type EventSet = baseline.EventSet

// TrendPredictor is the resource-trend baseline.
type TrendPredictor = baseline.Trend

// FailureTracker predicts from the failure history alone.
type FailureTracker = baseline.FailureTracker

// TrainEventSet learns indicative event sets from labeled sequences.
func TrainEventSet(failure, nonFailure []ErrorSequence, smoothing float64) (*EventSet, error) {
	return baseline.TrainEventSet(failure, nonFailure, smoothing)
}

// FitFailureTracker fits a Weibull to inter-failure times by moment
// matching.
func FitFailureTracker(interFailure []float64) (*FailureTracker, error) {
	return baseline.FitFailureTracker(interFailure)
}

// FitFailureTrackerMLE fits the Weibull by maximum likelihood.
func FitFailureTrackerMLE(interFailure []float64) (*FailureTracker, error) {
	return baseline.FitFailureTrackerMLE(interFailure)
}

// MSET is the Multivariate State Estimation Technique over monitoring
// variables — the symptom branch's classic method.
type MSET = baseline.MSET

// MSETConfig controls MSET training.
type MSETConfig = baseline.MSETConfig

// TrainMSET builds the MSET memory matrix from healthy observations.
func TrainMSET(healthy *Matrix, cfg MSETConfig) (*MSET, error) {
	return baseline.TrainMSET(healthy, cfg)
}

// Command loggen runs the SCP simulator and writes its artifacts to disk:
// the error log (the HSMM's input), the SAR monitoring series (the UBF's
// input), and the ground-truth failure times — the synthetic counterpart of
// the field data the paper calls for in Sect. 7.
//
// Usage:
//
//	loggen [-seed 7] [-days 7] [-out data] [-columnar]
//	loggen -convert data
//	loggen -tenants 100 [-skew 1] [-seed 7] [-days 7] [-out data]
//
// Single-tenant mode writes data.log (pipe-separated error events),
// data.sar.tsv (one column per SAR variable) and data.failures.tsv.
// -columnar additionally writes data.cols, the PFC1 struct-of-arrays
// trace that pfmd -replay-columnar replays at full speed; -convert
// builds the same .cols from previously written text artifacts.
//
// With -tenants N > 1 it instead runs N independently seeded simulators
// with a Zipf(-skew)-shaped load profile and writes the time-interleaved
// multi-tenant trace in both fleet ingest formats: data.trace (text line
// protocol, one record per line) and data.wire (compact binary wire
// format) — the replay fixtures of internal/fleet and pfmd -fleet.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"repro/internal/eventlog"
	"repro/internal/fleet"
	"repro/internal/runtime"
	"repro/internal/scp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 7, "simulation seed (base seed with -tenants)")
	days := flag.Float64("days", 7, "simulated horizon [days]")
	out := flag.String("out", "data", "output file prefix")
	tenants := flag.Int("tenants", 1, "fleet size; > 1 writes an interleaved multi-tenant trace")
	skew := flag.Float64("skew", 1, "Zipf exponent of the per-tenant load profile (0 = uniform)")
	columnar := flag.Bool("columnar", false, "also write <out>.cols, the PFC1 columnar trace pfmd -replay-columnar consumes")
	convert := flag.String("convert", "", "convert existing <prefix>.log/.sar.tsv/.failures.tsv artifacts into <prefix>.cols and exit")
	send := flag.String("send", "", "stream the multi-tenant trace to a pfmd -listen address over TCP (PFW1 wire format) instead of writing files")
	flag.Parse()

	if *convert != "" {
		return runConvert(*convert)
	}
	if *tenants > 1 || *send != "" {
		return runMulti(*tenants, *skew, *seed, *days, *out, *send)
	}

	cfg := scp.DefaultConfig()
	cfg.Seed = *seed
	sys, err := scp.New(cfg)
	if err != nil {
		return err
	}
	if err := sys.Run(*days * 86400); err != nil {
		return err
	}

	if err := writeLog(sys, *out+".log"); err != nil {
		return err
	}
	if err := writeSAR(sys, *out+".sar.tsv"); err != nil {
		return err
	}
	if err := writeFailures(sys, *out+".failures.tsv"); err != nil {
		return err
	}
	fmt.Printf("wrote %s.log (%d events), %s.sar.tsv, %s.failures.tsv (%d failures)\n",
		*out, sys.Log().Len(), *out, *out, len(sys.Failures()))
	if *columnar {
		rows, err := simSARRows(sys)
		if err != nil {
			return err
		}
		trace, err := buildColumnar(sys.Log(), scp.SARVariables, rows, sys.FailureTimes())
		if err != nil {
			return err
		}
		n, err := writeColumnar(trace, *out+".cols")
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s.cols: %d events (%d errors), %d failures, %d bytes\n",
			*out, trace.Len(), sys.Log().Len(), len(trace.Failures), n)
	}
	return nil
}

// sarRow is one SAR sampling instant: a timestamp plus one value per
// variable, in the caller's variable order.
type sarRow struct {
	t    float64
	vals []float64
}

// simSARRows collects the simulator's SAR series as aligned rows (the
// sampler records every variable at the same instants).
func simSARRows(sys *scp.System) ([]sarRow, error) {
	first, err := sys.SAR(scp.SARVariables[0])
	if err != nil {
		return nil, err
	}
	rows := make([]sarRow, 0, first.Len())
	for i := 0; i < first.Len(); i++ {
		t := first.At(i).T
		row := sarRow{t: t, vals: make([]float64, len(scp.SARVariables))}
		for j, name := range scp.SARVariables {
			series, err := sys.SAR(name)
			if err != nil {
				return nil, err
			}
			v, _ := series.ValueAt(t)
			row.vals[j] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// buildColumnar merges the error log and the SAR rows into one
// time-ordered columnar trace. At equal timestamps errors sort before
// samples — the same order the live replay feeder emits them in.
func buildColumnar(log *eventlog.Log, vars []string, rows []sarRow, failures []float64) (*runtime.ColumnarTrace, error) {
	b := runtime.NewColumnarBuilder()
	b.Grow(log.Len() + len(rows)*len(vars))
	ei := 0
	for _, row := range rows {
		for ei < log.Len() && log.At(ei).Time <= row.t {
			if err := b.AddError(log.At(ei)); err != nil {
				return nil, err
			}
			ei++
		}
		for j, name := range vars {
			if err := b.AddSample(row.t, name, row.vals[j]); err != nil {
				return nil, err
			}
		}
	}
	for ; ei < log.Len(); ei++ {
		if err := b.AddError(log.At(ei)); err != nil {
			return nil, err
		}
	}
	for _, f := range failures {
		if err := b.AddFailure(f); err != nil {
			return nil, err
		}
	}
	return b.Trace(), nil
}

func writeColumnar(trace *runtime.ColumnarTrace, path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := trace.WriteTo(f)
	if err != nil {
		return n, err
	}
	return n, f.Close()
}

// runConvert rebuilds <prefix>.cols from the on-disk text artifacts — the
// upgrade path for traces generated before the columnar format existed.
func runConvert(prefix string) error {
	lf, err := os.Open(prefix + ".log")
	if err != nil {
		return err
	}
	log, err := eventlog.Parse(lf)
	lf.Close()
	if err != nil {
		return fmt.Errorf("%s.log: %w", prefix, err)
	}
	vars, rows, err := readSARTSV(prefix + ".sar.tsv")
	if err != nil {
		return err
	}
	failures, err := readFailuresTSV(prefix + ".failures.tsv")
	if err != nil {
		return err
	}
	trace, err := buildColumnar(log, vars, rows, failures)
	if err != nil {
		return err
	}
	n, err := writeColumnar(trace, prefix+".cols")
	if err != nil {
		return err
	}
	fmt.Printf("converted %s.{log,sar.tsv,failures.tsv} -> %s.cols: %d events (%d errors), %d failures, %d bytes\n",
		prefix, prefix, trace.Len(), log.Len(), len(failures), n)
	return nil
}

// readSARTSV parses the writeSAR format: a "t<TAB>var..." header, then
// one row of samples per line.
func readSARTSV(path string) ([]string, []sarRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("%s: missing header: %v", path, sc.Err())
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) < 2 || header[0] != "t" {
		return nil, nil, fmt.Errorf("%s: malformed header %q", path, sc.Text())
	}
	vars := header[1:]
	var rows []sarRow
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != len(header) {
			return nil, nil, fmt.Errorf("%s:%d: want %d fields, got %d", path, line, len(header), len(fields))
		}
		row := sarRow{vals: make([]float64, len(vars))}
		if row.t, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: time: %v", path, line, err)
		}
		for j, fv := range fields[1:] {
			if row.vals[j], err = strconv.ParseFloat(fv, 64); err != nil {
				return nil, nil, fmt.Errorf("%s:%d: %s: %v", path, line, vars[j], err)
			}
		}
		rows = append(rows, row)
	}
	return vars, rows, sc.Err()
}

// readFailuresTSV parses the writeFailures format, keeping only the
// failure times (the other columns are diagnostics).
func readFailuresTSV(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: missing header: %v", path, sc.Err())
	}
	var times []float64
	line := 1
	for sc.Scan() {
		line++
		fields := strings.SplitN(sc.Text(), "\t", 2)
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: time: %v", path, line, err)
		}
		times = append(times, t)
	}
	return times, sc.Err()
}

// runMulti generates the interleaved multi-tenant trace in both fleet
// ingest formats.
func runMulti(tenants int, skew float64, seed int64, days float64, out, send string) error {
	m, err := scp.NewMulti(scp.MultiConfig{Tenants: tenants, BaseSeed: seed, Skew: skew})
	if err != nil {
		return err
	}
	if err := m.Run(days * 86400); err != nil {
		return err
	}
	recs := fleet.SCPRecords(m.Drain())
	failures := 0
	for _, r := range recs {
		if r.Failure {
			failures++
		}
	}
	if send != "" {
		if err := sendWireTrace(recs, send); err != nil {
			return err
		}
		fmt.Printf("sent %d records (%d tenants, %d failures) to %s\n",
			len(recs), tenants, failures, send)
		return nil
	}
	if err := writeTextTrace(recs, out+".trace"); err != nil {
		return err
	}
	if err := writeWireTrace(recs, out+".wire"); err != nil {
		return err
	}
	fmt.Printf("wrote %s.trace and %s.wire: %d tenants (zipf skew %g), %d records, %d failures\n",
		out, out, tenants, skew, len(recs), failures)
	return nil
}

// sendWireTrace streams the trace to a fleet listener (pfmd -listen) over
// TCP in the PFW1 wire format. TCP flow control paces the send against the
// fleet's ingest backpressure.
func sendWireTrace(recs []fleet.Record, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return fleet.WriteWire(conn, recs)
}

func writeTextTrace(recs []fleet.Record, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fleet.WriteTrace(f, recs); err != nil {
		return err
	}
	return f.Close()
}

func writeWireTrace(recs []fleet.Record, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fleet.WriteWire(f, recs); err != nil {
		return err
	}
	return f.Close()
}

func writeLog(sys *scp.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := sys.Log().WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

func writeSAR(sys *scp.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "t")
	for _, name := range scp.SARVariables {
		fmt.Fprintf(w, "\t%s", name)
	}
	fmt.Fprintln(w)
	first, err := sys.SAR(scp.SARVariables[0])
	if err != nil {
		return err
	}
	for i := 0; i < first.Len(); i++ {
		t := first.At(i).T
		fmt.Fprintf(w, "%.0f", t)
		for _, name := range scp.SARVariables {
			series, err := sys.SAR(name)
			if err != nil {
				return err
			}
			v, _ := series.ValueAt(t)
			fmt.Fprintf(w, "\t%g", v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFailures(sys *scp.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "t\tcause\tprepared\tdowntime")
	for _, fr := range sys.Failures() {
		fmt.Fprintf(w, "%.0f\t%s\t%t\t%.0f\n", fr.Time, fr.Cause, fr.Prepared, fr.Downtime)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

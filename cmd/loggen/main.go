// Command loggen runs the SCP simulator and writes its artifacts to disk:
// the error log (the HSMM's input), the SAR monitoring series (the UBF's
// input), and the ground-truth failure times — the synthetic counterpart of
// the field data the paper calls for in Sect. 7.
//
// Usage:
//
//	loggen [-seed 7] [-days 7] [-out data]
//	loggen -tenants 100 [-skew 1] [-seed 7] [-days 7] [-out data]
//
// Single-tenant mode writes data.log (pipe-separated error events),
// data.sar.tsv (one column per SAR variable) and data.failures.tsv.
//
// With -tenants N > 1 it instead runs N independently seeded simulators
// with a Zipf(-skew)-shaped load profile and writes the time-interleaved
// multi-tenant trace in both fleet ingest formats: data.trace (text line
// protocol, one record per line) and data.wire (compact binary wire
// format) — the replay fixtures of internal/fleet and pfmd -fleet.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/scp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 7, "simulation seed (base seed with -tenants)")
	days := flag.Float64("days", 7, "simulated horizon [days]")
	out := flag.String("out", "data", "output file prefix")
	tenants := flag.Int("tenants", 1, "fleet size; > 1 writes an interleaved multi-tenant trace")
	skew := flag.Float64("skew", 1, "Zipf exponent of the per-tenant load profile (0 = uniform)")
	flag.Parse()

	if *tenants > 1 {
		return runMulti(*tenants, *skew, *seed, *days, *out)
	}

	cfg := scp.DefaultConfig()
	cfg.Seed = *seed
	sys, err := scp.New(cfg)
	if err != nil {
		return err
	}
	if err := sys.Run(*days * 86400); err != nil {
		return err
	}

	if err := writeLog(sys, *out+".log"); err != nil {
		return err
	}
	if err := writeSAR(sys, *out+".sar.tsv"); err != nil {
		return err
	}
	if err := writeFailures(sys, *out+".failures.tsv"); err != nil {
		return err
	}
	fmt.Printf("wrote %s.log (%d events), %s.sar.tsv, %s.failures.tsv (%d failures)\n",
		*out, sys.Log().Len(), *out, *out, len(sys.Failures()))
	return nil
}

// runMulti generates the interleaved multi-tenant trace in both fleet
// ingest formats.
func runMulti(tenants int, skew float64, seed int64, days float64, out string) error {
	m, err := scp.NewMulti(scp.MultiConfig{Tenants: tenants, BaseSeed: seed, Skew: skew})
	if err != nil {
		return err
	}
	if err := m.Run(days * 86400); err != nil {
		return err
	}
	recs := fleet.SCPRecords(m.Drain())
	failures := 0
	for _, r := range recs {
		if r.Failure {
			failures++
		}
	}
	if err := writeTextTrace(recs, out+".trace"); err != nil {
		return err
	}
	if err := writeWireTrace(recs, out+".wire"); err != nil {
		return err
	}
	fmt.Printf("wrote %s.trace and %s.wire: %d tenants (zipf skew %g), %d records, %d failures\n",
		out, out, tenants, skew, len(recs), failures)
	return nil
}

func writeTextTrace(recs []fleet.Record, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fleet.WriteTrace(f, recs); err != nil {
		return err
	}
	return f.Close()
}

func writeWireTrace(recs []fleet.Record, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fleet.WriteWire(f, recs); err != nil {
		return err
	}
	return f.Close()
}

func writeLog(sys *scp.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := sys.Log().WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

func writeSAR(sys *scp.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "t")
	for _, name := range scp.SARVariables {
		fmt.Fprintf(w, "\t%s", name)
	}
	fmt.Fprintln(w)
	first, err := sys.SAR(scp.SARVariables[0])
	if err != nil {
		return err
	}
	for i := 0; i < first.Len(); i++ {
		t := first.At(i).T
		fmt.Fprintf(w, "%.0f", t)
		for _, name := range scp.SARVariables {
			series, err := sys.SAR(name)
			if err != nil {
				return err
			}
			v, _ := series.ValueAt(t)
			fmt.Fprintf(w, "\t%g", v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFailures(sys *scp.System, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "t\tcause\tprepared\tdowntime")
	for _, fr := range sys.Failures() {
		fmt.Fprintf(w, "%.0f\t%s\t%t\t%.0f\n", fr.Time, fr.Cause, fr.Prepared, fr.Downtime)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// Command availmodel evaluates the paper's Section 5 CTMC model: Eq. 8
// steady-state availability, the Eq. 14 unavailability ratio (≈0.488 for
// the Table 2 parameters), and the Fig. 10 reliability and hazard curves.
//
// Usage:
//
//	availmodel [-precision 0.70] [-recall 0.62] [-fpr 0.016]
//	           [-ptp 0.25] [-pfp 0.1] [-ptn 0.001] [-k 2]
//	           [-curves 0]
//
// With -curves N > 0 the Fig. 10(a)/(b) series are printed as
// tab-separated rows (t, with-PFM, without-PFM).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/pfmmodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "availmodel:", err)
		os.Exit(1)
	}
}

func run() error {
	defaults := pfmmodel.DefaultParams()
	precision := flag.Float64("precision", defaults.Precision, "predictor precision")
	recall := flag.Float64("recall", defaults.Recall, "predictor recall")
	fpr := flag.Float64("fpr", defaults.FPR, "predictor false positive rate")
	ptp := flag.Float64("ptp", defaults.PTP, "P(failure | true positive)")
	pfp := flag.Float64("pfp", defaults.PFP, "P(failure | false positive)")
	ptn := flag.Float64("ptn", defaults.PTN, "P(failure | true negative)")
	k := flag.Float64("k", defaults.K, "repair time improvement factor")
	mttf := flag.Float64("mttf", 1/defaults.FailureRate, "mean time to failure [s]")
	mttr := flag.Float64("mttr", 1/defaults.RepairRate, "mean time to repair [s]")
	action := flag.Float64("action", 1/defaults.ActionRate, "mean action time [s]")
	curves := flag.Int("curves", 0, "print Fig. 10 series with this many points")
	rejuv := flag.Bool("rejuvenation", false, "compare blind time-triggered rejuvenation vs PFM (E15)")
	flag.Parse()

	p := pfmmodel.Params{
		Precision:   *precision,
		Recall:      *recall,
		FPR:         *fpr,
		PTP:         *ptp,
		PFP:         *pfp,
		PTN:         *ptn,
		K:           *k,
		FailureRate: 1 / *mttf,
		RepairRate:  1 / *mttr,
		ActionRate:  1 / *action,
	}
	res, err := experiments.RunModel(p)
	if err != nil {
		return err
	}
	experiments.Fprint(os.Stdout, "Section 5 model (Table 2, Eq. 8, Eq. 14)", res.Rows())

	if *rejuv {
		cmp, err := experiments.RunRejuvenationComparison()
		if err != nil {
			return err
		}
		experiments.Fprint(os.Stdout, "E15: blind rejuvenation (Huang et al.) vs prediction-triggered PFM", cmp.Rows())
	}
	if *curves > 0 {
		rel, haz, err := experiments.Fig10Curves(p, *curves)
		if err != nil {
			return err
		}
		fmt.Println("== Fig. 10(a): reliability R(t) ==")
		fmt.Println("t\twithPFM\twithoutPFM")
		for _, pt := range rel {
			fmt.Printf("%.0f\t%.6f\t%.6f\n", pt.T, pt.WithPFM, pt.WithoutPFM)
		}
		fmt.Println("== Fig. 10(b): hazard rate h(t) ==")
		fmt.Println("t\twithPFM\twithoutPFM")
		for _, pt := range haz {
			fmt.Printf("%.0f\t%.8g\t%.8g\n", pt.T, pt.WithPFM, pt.WithoutPFM)
		}
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/scp"
)

// writeArtifacts simulates a platform and writes its log and failure times
// in the loggen file formats.
func writeArtifacts(t *testing.T, dir, prefix string, seed int64, days float64) (logPath, failPath string) {
	t.Helper()
	cfg := scp.DefaultConfig()
	cfg.Seed = seed
	sys, err := scp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(days * 86400); err != nil {
		t.Fatal(err)
	}
	logPath = filepath.Join(dir, prefix+".log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Log().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("t\tcause\n")
	for _, fr := range sys.Failures() {
		sb.WriteString(strconv.FormatFloat(fr.Time, 'f', 1, 64))
		sb.WriteString("\t")
		sb.WriteString(fr.Cause)
		sb.WriteString("\n")
	}
	failPath = filepath.Join(dir, prefix+".failures.tsv")
	if err := os.WriteFile(failPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return logPath, failPath
}

// TestTrainScoreEvalWorkflow drives the full CLI workflow: train on one
// simulated platform, persist the model, evaluate and score on another.
func TestTrainScoreEvalWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulations")
	}
	dir := t.TempDir()
	trainLog, trainFail := writeArtifacts(t, dir, "train", 7, 10)
	testLog, testFail := writeArtifacts(t, dir, "test", 8, 4)
	model := filepath.Join(dir, "model.json")

	if err := run([]string{"train", "-log", trainLog, "-failures", trainFail, "-model", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	if err := run([]string{"eval", "-log", testLog, "-failures", testFail, "-model", model}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := run([]string{"score", "-log", testLog, "-model", model, "-at", "86400"}); err != nil {
		t.Fatalf("score: %v", err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"train"},               // missing -log/-failures
		{"score", "-log", "x"},  // missing -at
		{"eval", "-model", "x"}, // missing -log/-failures
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) accepted", args)
		}
	}
}

func TestLoadFailureTimes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.tsv")
	if err := os.WriteFile(path, []byte("t\tcause\n100.5\tleak\n200\tburst\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	times, err := loadFailureTimes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 100.5 || times[1] != 200 {
		t.Fatalf("times = %v", times)
	}
	// Headerless plain list also works.
	if err := os.WriteFile(path, []byte("1\n2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	times, err = loadFailureTimes(path)
	if err != nil || len(times) != 3 {
		t.Fatalf("plain list: %v, %v", times, err)
	}
	// Empty file errors.
	if err := os.WriteFile(path, []byte("t\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFailureTimes(path); err == nil {
		t.Fatal("empty failure list accepted")
	}
	// Garbage mid-file errors.
	if err := os.WriteFile(path, []byte("1\nnope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFailureTimes(path); err == nil {
		t.Fatal("garbage line accepted")
	}
}

// Command predict is the file-based workflow around the HSMM failure
// predictor: train a model from an error log plus known failure times, save
// it, then score or evaluate it on (possibly different) logs — the
// train-offline / deploy-online cycle of Sect. 3.2.
//
// Usage:
//
//	predict train -log data.log -failures data.failures.tsv -model model.json
//	predict score -log data.log -model model.json -at 123456
//	predict eval  -log data.log -failures data.failures.tsv -model model.json -from 0
//
// Logs use the pipe-separated format written by cmd/loggen; the failures
// file is a TSV whose first column is the failure time (header line
// allowed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/eventlog"
	"repro/internal/hsmm"
	"repro/internal/predict"
	"repro/internal/runtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: predict <train|score|eval> [flags]")
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:])
	case "score":
		return runScore(args[1:])
	case "eval":
		return runEval(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want train, score, or eval)", args[0])
	}
}

// common flag plumbing -------------------------------------------------------

type windowFlags struct {
	window *float64
	lead   *float64
}

func addWindowFlags(fs *flag.FlagSet) windowFlags {
	return windowFlags{
		window: fs.Float64("window", 300, "data window Δtd [s]"),
		lead:   fs.Float64("lead", 300, "lead time Δtl [s]"),
	}
}

// loadLog reads an error log in either format: a PFC1 columnar trace
// (sniffed by magic, error rows bulk-decoded column→column into the
// store) or the pipe-separated text format.
func loadLog(path string) (*eventlog.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if magic, err := br.Peek(4); err == nil && string(magic) == "PFC1" {
		trace, err := runtime.ReadColumnar(br)
		if err != nil {
			return nil, fmt.Errorf("read columnar %s: %w", path, err)
		}
		l := eventlog.NewLog()
		if _, err := trace.AppendErrorsTo(l); err != nil {
			return nil, fmt.Errorf("decode columnar %s: %w", path, err)
		}
		return l, nil
	}
	l, err := eventlog.Parse(br)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return l, nil
}

// loadFailureTimes reads the first column of a TSV (header allowed).
func loadFailureTimes(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		first := strings.FieldsFunc(text, func(r rune) bool { return r == '\t' || r == ' ' })[0]
		v, err := strconv.ParseFloat(first, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("%s line %d: %v", path, line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no failure times", path)
	}
	return out, nil
}

func loadModel(path string) (*hsmm.Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hsmm.LoadClassifier(f)
}

// subcommands ----------------------------------------------------------------

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	logPath := fs.String("log", "", "error log file (required)")
	failPath := fs.String("failures", "", "failure-times TSV (required)")
	modelPath := fs.String("model", "model.json", "output model file")
	states := fs.Int("states", 6, "hidden states")
	seed := fs.Int64("seed", 1, "training seed")
	wf := addWindowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *failPath == "" {
		return fmt.Errorf("train: -log and -failures are required")
	}
	log, err := loadLog(*logPath)
	if err != nil {
		return err
	}
	failures, err := loadFailureTimes(*failPath)
	if err != nil {
		return err
	}
	var fail, nonFail []eventlog.Sequence
	for _, lead := range []float64{*wf.lead, 0} {
		f, nf, err := eventlog.Extract(log, failures, eventlog.ExtractConfig{
			DataWindow:       *wf.window,
			LeadTime:         lead,
			MinEvents:        2,
			NonFailureStride: *wf.window * 2,
		})
		if err != nil {
			return err
		}
		fail = append(fail, f...)
		if nonFail == nil {
			nonFail = nf
		}
	}
	clf, err := hsmm.TrainClassifier(fail, nonFail, hsmm.Config{States: *states, Seed: *seed})
	if err != nil {
		return err
	}
	// Calibrate the decision threshold on the training grid.
	scored, _, err := gridScores(clf, log, failures, *wf.window, *wf.lead, 0)
	if err != nil {
		return err
	}
	threshold, table, err := predict.MaxFMeasure(scored)
	if err != nil {
		return err
	}
	clf.Threshold = threshold
	out, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := hsmm.SaveClassifier(out, clf); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("trained on %d failure / %d non-failure sequences; threshold %.4f\n",
		len(fail), len(nonFail), threshold)
	fmt.Printf("training-grid quality: %v\n", table)
	fmt.Printf("model written to %s\n", *modelPath)
	return nil
}

func runScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ContinueOnError)
	logPath := fs.String("log", "", "error log file (required)")
	modelPath := fs.String("model", "model.json", "model file")
	at := fs.Float64("at", -1, "score the window ending at this time (required)")
	wf := addWindowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *at < 0 {
		return fmt.Errorf("score: -log and -at are required")
	}
	log, err := loadLog(*logPath)
	if err != nil {
		return err
	}
	clf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	window := eventlog.SlidingWindow(log, *at, *wf.window)
	score, err := clf.Score(window)
	if err != nil {
		return err
	}
	warning := score >= clf.Threshold
	fmt.Printf("t=%.1f events=%d score=%.4f threshold=%.4f failure-prone=%t\n",
		*at, window.Len(), score, clf.Threshold, warning)
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	logPath := fs.String("log", "", "error log file (required)")
	failPath := fs.String("failures", "", "failure-times TSV (required)")
	modelPath := fs.String("model", "model.json", "model file")
	from := fs.Float64("from", 0, "evaluate from this time on")
	wf := addWindowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *failPath == "" {
		return fmt.Errorf("eval: -log and -failures are required")
	}
	log, err := loadLog(*logPath)
	if err != nil {
		return err
	}
	failures, err := loadFailureTimes(*failPath)
	if err != nil {
		return err
	}
	clf, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	scored, n, err := gridScores(clf, log, failures, *wf.window, *wf.lead, *from)
	if err != nil {
		return err
	}
	auc, err := predict.AUCOf(scored)
	if err != nil {
		return err
	}
	table := predict.Evaluate(scored, clf.Threshold)
	fmt.Printf("evaluated %d points: AUC=%.4f\n", n, auc)
	fmt.Printf("at stored threshold %.4f: %v\n", clf.Threshold, table)
	return nil
}

// gridScores scores sliding windows on a Δtd-spaced grid with labels from
// the failure times.
func gridScores(clf *hsmm.Classifier, log *eventlog.Log, failures []float64, window, lead, from float64) ([]predict.Scored, int, error) {
	if log.Len() == 0 {
		return nil, 0, fmt.Errorf("empty log")
	}
	start := log.At(0).Time + window
	if from > start {
		start = from
	}
	end := log.At(log.Len() - 1).Time
	var scored []predict.Scored
	for t := start; t < end; t += window {
		s, err := clf.Score(eventlog.SlidingWindow(log, t, window))
		if err != nil {
			return nil, 0, err
		}
		actual := false
		for _, f := range failures {
			if f > t && f <= t+lead+window {
				actual = true
				break
			}
		}
		scored = append(scored, predict.Scored{Score: s, Actual: actual})
	}
	if len(scored) == 0 {
		return nil, 0, fmt.Errorf("no evaluation points in range")
	}
	return scored, len(scored), nil
}

// Command benchjson converts `go test -bench` output into a JSON artifact
// for CI: one object per benchmark with iterations, ns/op, allocs/op, and
// any custom ReportMetric units (events/sec, tenants, …).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFleetThroughput -benchmem ./internal/fleet/ | benchjson -out BENCH_fleet.json
//
// Non-benchmark lines (goos/goarch/pkg/PASS/ok) pass through to stderr so
// the CI log still shows the raw run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

func parse(r *os.File) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", line, err)
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// parseLine decodes "BenchmarkX/sub-8  N  12.3 ns/op  45 custom/unit ...".
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("want at least name, N, value, unit")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		default:
			res.Metrics[unit] = v
		}
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, nil
}

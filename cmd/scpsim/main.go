// Command scpsim runs the simulated telecom SCP with the full MEA loop
// attached and compares it against the identical unmitigated system (E3:
// Table 1 outcome accounting and measured availability), plus the Fig. 8
// time-to-repair experiment (E7) and the oscillation-guard ablation (E12).
//
// Usage:
//
//	scpsim [-seed 11] [-days 7] [-workers 0] [-replicates 1] [-fig8] [-oscillation]
//
// -replicates > 1 runs seed-replicated closed-loop experiments sharded
// across -workers (0 = all cores) and prints each replicate's availability.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scpsim:", err)
		os.Exit(1)
	}
}

func run() error {
	defaults := experiments.DefaultMEAConfig()
	seed := flag.Int64("seed", defaults.Seed, "simulation seed")
	days := flag.Float64("days", defaults.RunDays, "closed-loop horizon [days]")
	fig8 := flag.Bool("fig8", false, "run the Fig. 8 TTR experiment (E7)")
	osc := flag.Bool("oscillation", false, "run the oscillation-guard ablation (E12)")
	dyn := flag.Bool("dynamicity", false, "run the dynamicity/retraining experiment (E13)")
	workers := flag.Int("workers", 0, "worker bound for replicate sweeps (0 = all cores)")
	replicates := flag.Int("replicates", 1, "seed replicates to run in parallel")
	flag.Parse()

	cfg := defaults
	cfg.Seed = *seed
	cfg.RunDays = *days

	if *replicates > 1 {
		results, err := experiments.RunMEAReplicates(cfg, *replicates, *workers)
		if err != nil {
			return err
		}
		for i, r := range results {
			fmt.Printf("replicate %d (seed %d): availability withPFM=%.5f without=%.5f ratio=%.3f\n",
				i, cfg.Seed+int64(i), r.AvailabilityWithPFM, r.AvailabilityWithout, r.UnavailabilityRatio)
		}
		return nil
	}

	res, err := experiments.RunMEA(cfg)
	if err != nil {
		return err
	}
	experiments.Fprint(os.Stdout, "E3: MEA loop vs unmitigated system", res.Rows())
	fmt.Println("Table 1 outcome × action matrix:")
	fmt.Printf("  quality: %v\n", res.Quality)
	for outcome, byAction := range res.Outcomes.Counts {
		fmt.Printf("  %v: %v\n", outcome, byAction)
	}

	if *fig8 {
		f8, err := experiments.RunFig8(*seed, *days, 900)
		if err != nil {
			return err
		}
		experiments.Fprint(os.Stdout, "E7: Fig. 8 time-to-repair decomposition", f8.Rows())
	}
	if *osc {
		off, err := experiments.RunOscillationAblation(*seed, 2, false)
		if err != nil {
			return err
		}
		on, err := experiments.RunOscillationAblation(*seed, 2, true)
		if err != nil {
			return err
		}
		fmt.Println("== E12: oscillation guard ablation ==")
		fmt.Printf("guard off: availability %.5f, %d restarts\n", off.Availability, off.Restarts)
		fmt.Printf("guard on:  availability %.5f, %d restarts, %d suppressed\n",
			on.Availability, on.Restarts, on.SuppressedByGuard)
	}
	if *dyn {
		d, err := experiments.RunDynamicity(*seed)
		if err != nil {
			return err
		}
		experiments.Fprint(os.Stdout, "E13: dynamicity, drift detection, retraining", d.Rows())
	}
	return nil
}

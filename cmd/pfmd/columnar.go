// Columnar replay mode (-replay-columnar): drive the single-tenant
// runtime from a recorded PFC1 struct-of-arrays trace (loggen -columnar)
// instead of a live simulator. There is no wall-clock pacing — events
// stream through the batched ingest path as fast as the pipeline applies
// them, and MEA cycles that fall due between events are stacked and run
// through Runtime.CycleBatch, so a simulated year replays in seconds and
// the run reports its sustained events/sec.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/scp"
)

// columnarOptions carries the -replay-columnar flag set.
type columnarOptions struct {
	addr        string
	path        string  // PFC1 trace file
	cadence     float64 // MEA cadence [sim s]
	batch       int
	queueCap    int
	policy      runtime.OverflowPolicy
	workers     int
	shards      int
	pprofOn     bool
	traceCap    int
	traceSample int
	traceDump   int
	ledgerWin   float64
	ledgerSlack float64
	metaWeights string
	logger      *slog.Logger
	incidents   incidentOptions
}

// runColumnar replays a columnar trace through the full online pipeline:
// mirror state, layered predictors, act stage, quality ledger and
// observability endpoints — identical wiring to the live service, minus
// the simulator (a recorded trace cannot be steered, so the
// countermeasure is a no-op and only its decision record matters).
func runColumnar(o columnarOptions) error {
	if o.cadence <= 0 {
		return fmt.Errorf("replay-eval cadence must be positive, got %g", o.cadence)
	}
	f, err := os.Open(o.path)
	if err != nil {
		return err
	}
	trace, err := runtime.ReadColumnar(f)
	f.Close()
	if err != nil {
		return err
	}

	m := newMirror()
	nErrors, nSamples := trace.CountKinds()
	m.log.Grow(nErrors)
	scpCfg := scp.DefaultConfig()
	layers := m.layers(2 * scpCfg.SwapThreshold)
	var combiner core.Combiner
	if o.metaWeights != "" {
		stacker, err := parseMetaWeights(o.metaWeights, layers)
		if err != nil {
			return err
		}
		combiner = stacker.Score
		o.logger.Info("meta combiner", "weights", o.metaWeights)
	}
	action, err := act.New("mitigate+prepare", act.PreparedRepair,
		act.Params{Cost: 0.5, SuccessProb: 0.85, Complexity: 0.3},
		func() error { return nil })
	if err != nil {
		return err
	}
	selector, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		return err
	}
	const leadTime = 300.0
	engine, err := core.New(nil, layers, combiner, selector,
		[]*act.Action{action}, nil, core.Config{
			EvalInterval:        o.cadence,
			LeadTime:            leadTime,
			WarnThreshold:       0.2,
			OscillationWindow:   1800,
			MaxActionsPerWindow: 6,
		})
	if err != nil {
		return err
	}
	layerNames := make([]string, len(layers))
	for i, l := range layers {
		layerNames[i] = l.Name
	}
	ledger, err := obs.NewLedger(obs.LedgerConfig{
		LeadTime: leadTime, Slack: o.ledgerSlack, Window: o.ledgerWin,
	}, layerNames...)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if o.traceCap > 0 {
		tracer = obs.NewTracer(o.traceCap)
		tracer.SetSampleInterval(o.traceSample)
	}
	recorder, dp, err := buildRecorder(o.incidents, m, layerNames, tracer, ledger, nil, o.logger)
	if err != nil {
		return err
	}
	recordFailure := func(t float64) {
		ledger.RecordFailure(t)
		if dp != nil {
			dp.RecordFailure(t)
		}
	}

	// Replay clock: the trace-time high-water mark. The runtime's own
	// evaluate ticker stays off (EvalInterval 0) — cycles are driven
	// synchronously below, which is what lets them stack into batches.
	var simNow atomic.Uint64
	rt, err := runtime.New(runtime.Config{
		Engine:        engine,
		Apply:         m.apply,
		Clock:         func() float64 { return math.Float64frombits(simNow.Load()) },
		QueueCapacity: o.queueCap,
		Overflow:      o.policy,
		Workers:       o.workers,
		Shards:        o.shards,
		BatchSize:     o.batch,
		Profiling:     o.pprofOn,
		Tracer:        tracer,
		Ledger:        ledger,
		Recorder:      recorder,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := rt.Start(ctx); err != nil {
		return err
	}
	srv, bound, err := rt.Serve(o.addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	o.logger.Info("columnar replay starting",
		"trace", o.path, "events", trace.Len(),
		"errors", nErrors, "samples", nSamples, "failures", len(trace.Failures),
		"cadence_sim_s", o.cadence, "batch", o.batch, "shards", rt.Shards(),
		"policy", o.policy.String(), "addr", bound)

	start := time.Now()
	n := trace.Len()
	var span float64
	if n > 0 {
		span = trace.Times[n-1] - trace.Times[0]
	}
	// Cycle times are stacked while no event falls between them, then run
	// as one CycleBatch once an event (or ground-truth failure) intervenes
	// — serial-equivalent because the mirror state a stacked cycle reads
	// cannot have changed since the previous one.
	cycles := make([]float64, 0, 1024)
	fi := 0
	flush := func() error {
		if len(cycles) == 0 {
			return nil
		}
		if err := rt.Barrier(ctx); err != nil {
			return err
		}
		simNow.Store(math.Float64bits(cycles[len(cycles)-1]))
		rt.CycleBatch(cycles)
		cycles = cycles[:0]
		return nil
	}
	next := math.Inf(1)
	if n > 0 {
		next = trace.Times[0] + o.cadence
	}
	for i := 0; i < n; i++ {
		t := trace.Times[i]
		for next <= t {
			for fi < len(trace.Failures) && trace.Failures[fi] <= next {
				if err := flush(); err != nil {
					return err
				}
				recordFailure(trace.Failures[fi])
				fi++
			}
			cycles = append(cycles, next)
			next += o.cadence
		}
		if err := flush(); err != nil {
			return err
		}
		for fi < len(trace.Failures) && trace.Failures[fi] <= t {
			recordFailure(trace.Failures[fi])
			fi++
		}
		simNow.Store(math.Float64bits(t))
		if err := rt.Ingest(ctx, trace.Event(i)); err != nil {
			return err
		}
	}
	for fi < len(trace.Failures) {
		recordFailure(trace.Failures[fi])
		fi++
	}
	if err := flush(); err != nil {
		return err
	}

	stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Stop(stopCtx); err != nil {
		o.logger.Warn("drain incomplete", "err", err)
	}
	elapsed := time.Since(start)
	rate := float64(n) / elapsed.Seconds()
	o.logger.Info("columnar replay complete",
		"events", n, "wall_seconds", elapsed.Seconds(),
		"events_per_sec", int64(rate),
		"sim_days", span/86400, "cycles", rt.Cycles(),
		"speedup", span/elapsed.Seconds())

	mm := rt.Metrics()
	o.logger.Info("pipeline summary",
		"ingested", mm.Ingested.Value(), "applied", mm.Applied.Value(),
		"dropped", mm.Dropped(), "evaluations", mm.Evaluations.Value(),
		"warnings", mm.Warnings.Value(), "actions", mm.Actions.Value(),
		"suppressed", mm.Suppressed.Value())
	logActionStats(o.logger, action)
	logQuality(o.logger, ledger)
	logModelAssessment(o.logger, ledger)
	logIncidents(o.logger, recorder)
	fmt.Print(engine.Report())
	if o.traceDump > 0 && tracer != nil {
		fmt.Printf("\nslowest %d end-to-end traces:\n\n", o.traceDump)
		if err := obs.WriteText(os.Stdout, tracer.Slowest(o.traceDump), kindName); err != nil {
			return err
		}
	}
	return nil
}

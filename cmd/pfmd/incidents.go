// Flight-recorder wiring (-incident-dir/-incident-cap/-incident-warn):
// the always-on obs.Recorder rides the MEA act stage, and pfmd adds the
// service-level pieces — a lazily retrained log-symptom diagnoser feeding
// the bundles' top suspects, and an optional on-disk JSON sink so bundles
// survive the process.
package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/diagnose"
	"repro/internal/eventlog"
	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// incidentOptions carries the -incident-* flag set.
type incidentOptions struct {
	dir  string  // bundle sink directory ("" = in-memory only)
	cap  int     // retained bundles (0 disables the recorder)
	warn float64 // combined-confidence gate for warn-triggered capture
}

// diagProvider serves the recorder's DiagnoseRange queries over the live
// mirror log: it lazily (re)trains a Sect. 4.3-style Bayesian symptom
// diagnoser whenever ground-truth failures arrived since the last model,
// so a bundle's top suspects always reflect every failure seen so far.
// RecordFailure is called from the replay loop, Diagnose from bundle
// assembly under the runtime's evaluation exclusion — the mutex makes the
// pair safe, and the log itself is quiescent during assembly.
type diagProvider struct {
	mu       sync.Mutex
	log      *eventlog.Log
	failures []float64
	trained  int // failure count the current model was trained on
	d        *diagnose.Diagnoser
}

func newDiagProvider(log *eventlog.Log) *diagProvider {
	return &diagProvider{log: log}
}

// RecordFailure notes one ground-truth failure for future training.
func (p *diagProvider) RecordFailure(t float64) {
	p.mu.Lock()
	p.failures = append(p.failures, t)
	p.mu.Unlock()
}

// Diagnose ranks suspect components over [from, to], retraining first if
// new failures arrived. Returns nil until at least one failure window is
// collectable (an untrained diagnoser has no posteriors to rank with).
func (p *diagProvider) Diagnose(from, to float64) []diagnose.Suspect {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.failures) == 0 {
		return nil
	}
	if p.d == nil || p.trained != len(p.failures) {
		failWins, nonFailWins, err := diagnose.CollectWindowRanges(p.log, p.failures, eventlog.ExtractConfig{
			DataWindow:       600,
			LeadTime:         0, // diagnose from the window adjacent to the failure
			MinEvents:        1,
			NonFailureStride: 1200,
		})
		if err != nil || len(failWins) == 0 {
			return nil
		}
		d, err := diagnose.TrainOnRanges(p.log, failWins, nonFailWins, 1)
		if err != nil {
			return nil
		}
		p.d = d
		p.trained = len(p.failures)
	}
	return p.d.DiagnoseRange(p.log, from, to)
}

// buildRecorder assembles the single-tenant flight recorder over the
// pipeline's mirror log, tracer, ledger, and lifecycle, plus the lazy
// diagnoser. Returns (nil, nil, nil) when o.cap disables capture.
func buildRecorder(
	o incidentOptions,
	m *mirror,
	layerNames []string,
	tracer *obs.Tracer,
	led *obs.Ledger,
	lcm *lifecycle.Manager,
	logger *slog.Logger,
) (*obs.Recorder, *diagProvider, error) {
	if o.cap <= 0 {
		return nil, nil, nil
	}
	dp := newDiagProvider(m.log)
	cfg := obs.RecorderConfig{
		Layers:        layerNames,
		Window:        600, // matches the layers' error-data window Δtd
		WarnThreshold: o.warn,
		MaxBundles:    o.cap,
		Log:           m.log,
		Tracer:        tracer,
		Ledger:        led,
		Diagnose:      dp.Diagnose,
		RuntimeStats:  true,
	}
	if lcm != nil {
		cfg.Lifecycle = func() any { return lcm.States() }
	}
	rec, err := obs.NewRecorder(cfg)
	if err != nil {
		return nil, nil, err
	}
	if o.dir != "" {
		sink, err := incidentSink(o.dir, logger)
		if err != nil {
			return nil, nil, err
		}
		rec.Subscribe(sink)
	}
	return rec, dp, nil
}

// incidentSink returns a bundle subscriber that persists each captured
// bundle as <dir>/<id>.json (pretty-printed, one file per incident).
func incidentSink(dir string, logger *slog.Logger) (func(*obs.IncidentBundle), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("incident dir: %w", err)
	}
	return func(b *obs.IncidentBundle) {
		path := filepath.Join(dir, b.ID+".json")
		data, err := json.MarshalIndent(b, "", "  ")
		if err == nil {
			err = os.WriteFile(path, data, 0o644)
		}
		if err != nil {
			logger.Warn("incident bundle write failed", "id", b.ID, "err", err)
			return
		}
		logger.Info("incident bundle written",
			"id", b.ID, "trigger", string(b.Trigger), "sim_time", b.Time,
			"events", b.EventsTotal, "path", path)
	}, nil
}

// logIncidents reports the recorder's capture record at shutdown.
func logIncidents(logger *slog.Logger, rec *obs.Recorder) {
	if rec == nil {
		return
	}
	attrs := []any{slog.Int64("suppressed", rec.Suppressed())}
	var total int64
	for _, k := range obs.TriggerKinds {
		n := rec.Captured(k)
		total += n
		attrs = append(attrs, slog.Int64(string(k), n))
	}
	attrs = append(attrs, slog.Int64("captured", total))
	logger.Info("incident summary", attrs...)
}

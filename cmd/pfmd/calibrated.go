package main

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// calibrated wraps a raw monitoring signal as a retrainable layer predictor:
// score = raw(now)/scale with the warning threshold fixed at 1.0, so the
// scale IS the calibrated warning level. Each evaluation appends the raw
// value to a bounded ring — Evaluate only ever runs under the runtime's
// evaluation exclusion (worker pool for the serving predictor, lifecycle
// Collect for a shadow candidate), so the ring needs no lock of its own.
//
// Retraining refits the scale to the captured recent signal (1.25 × the
// 95th percentile, floored at a fraction of the initial hand-tuned scale):
// after an error-rate or load regime shift the warning level follows the
// new regime instead of saturating permanently. The refit is a pure
// function of the captured window — bit-identical at any GOMAXPROCS.
type calibrated struct {
	raw   func(now float64) (float64, error)
	scale float64
	floor float64 // lowest admissible refit scale
	ring  []float64
	next  int
	full  bool
	gen   uint64
}

// calibratedRing bounds the per-generation signal history; at pfmd's eval
// cadence this covers far more than one drift episode.
const calibratedRing = 512

// calibratedMinWindow is the fewest captured samples a refit accepts.
const calibratedMinWindow = 32

// newCalibrated builds a generation-0 predictor with the hand-tuned scale.
func newCalibrated(raw func(now float64) (float64, error), scale float64) *calibrated {
	return &calibrated{
		raw:   raw,
		scale: scale,
		floor: scale / 4,
		ring:  make([]float64, 0, calibratedRing),
	}
}

// Evaluate scores the layer and records the raw observation.
func (c *calibrated) Evaluate(now float64) (float64, error) {
	v, err := c.raw(now)
	if err != nil {
		return 0, err
	}
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		if len(c.ring) < cap(c.ring) {
			c.ring = append(c.ring, v)
		} else {
			c.ring[c.next] = v
			c.full = true
		}
		c.next = (c.next + 1) % cap(c.ring)
	}
	return v / c.scale, nil
}

// CaptureWindow copies the recorded raw signal. Runs under the same
// exclusion as Evaluate, so the ring is quiescent.
func (c *calibrated) CaptureWindow(now float64) (any, error) {
	if len(c.ring) < calibratedMinWindow {
		return nil, fmt.Errorf("calibration window too small: %d < %d observations",
			len(c.ring), calibratedMinWindow)
	}
	return append([]float64(nil), c.ring...), nil
}

// Retrain refits the scale from a captured window and returns the next
// generation (sharing the raw signal, starting a fresh ring).
func (c *calibrated) Retrain(window any) (core.LayerPredictor, error) {
	w, ok := window.([]float64)
	if !ok || len(w) == 0 {
		return nil, fmt.Errorf("bad calibration window %T", window)
	}
	vals := append([]float64(nil), w...)
	sort.Float64s(vals)
	scale := 1.25 * vals[int(0.95*float64(len(vals)-1))]
	if scale < c.floor {
		scale = c.floor
	}
	return &calibrated{
		raw:   c.raw,
		scale: scale,
		floor: c.floor,
		ring:  make([]float64, 0, calibratedRing),
		gen:   c.gen + 1,
	}, nil
}

// Snapshot serializes the calibration for audit logs.
func (c *calibrated) Snapshot() ([]byte, error) {
	return json.Marshal(struct {
		Kind       string  `json:"kind"`
		Generation uint64  `json:"generation"`
		Scale      float64 `json:"scale"`
	}{Kind: "calibrated", Generation: c.gen, Scale: c.scale})
}

// Command pfmd runs the PFM library as a long-running service: the
// concurrent streaming MEA runtime (internal/runtime) fed by the SCP
// simulator in real-time-scaled replay mode. Simulated operation is paced
// by the wall clock at a configurable time-compression factor; the
// simulator's error log and SAR samples stream through the bounded ingest
// queue into mirror state, layered predictors score in a worker pool, and
// the serialized act stage steers the live simulator through a command
// mailbox (applied on the simulation thread between replay slices).
//
// Observability: /metrics (Prometheus text) and /healthz on -addr while
// the replay runs, e.g.
//
//	pfmd -days 2 -compress 7200 &
//	curl -s localhost:9600/metrics | grep pfm_
//
// Usage:
//
//	pfmd [-addr :9600] [-seed 11] [-days 1] [-compress 3600]
//	     [-queue 4096] [-overflow block|drop-oldest|drop-newest]
//	     [-workers 4] [-eval 250ms] [-shards 1] [-pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/runtime"
	"repro/internal/scp"
	ts "repro/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pfmd:", err)
		os.Exit(1)
	}
}

// mirror is the runtime's predictor-visible state: the ingest stage
// replays the simulator's error log and SAR series into it, and the
// layers read it. Locking is owned by the runtime: Apply and evaluation
// never overlap, and sharded ingest (-shards > 1) is safe here because the
// default shard key serializes all error-log appends on one shard while
// each SAR series is only touched by its own variable's shard (the sar map
// itself is fully populated before Start and read-only afterwards).
type mirror struct {
	log *eventlog.Log
	sar map[string]*ts.Series
}

func newMirror() *mirror {
	m := &mirror{log: eventlog.NewLog(), sar: make(map[string]*ts.Series)}
	for _, name := range scp.SARVariables {
		m.sar[name] = ts.New(name)
	}
	return m
}

// apply integrates one streamed event.
func (m *mirror) apply(ev runtime.Event) error {
	switch ev.Kind {
	case runtime.KindError:
		return m.log.Append(ev.Error)
	case runtime.KindSample:
		s, ok := m.sar[ev.Variable]
		if !ok {
			return fmt.Errorf("unknown variable %q", ev.Variable)
		}
		return s.Append(ev.Time, ev.Value)
	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
}

// layers builds the per-level predictors of the Fig. 11 blueprint over
// the mirror state.
func (m *mirror) layers(memFloor float64) []*core.Layer {
	return []*core.Layer{
		{
			// Application level: detected-error rate over the data window.
			Name: "errors",
			Evaluate: func(now float64) (float64, error) {
				w := m.log.Window(now-600, now+1e-9)
				return float64(len(w)) / 600, nil
			},
			Threshold: 0.05,
		},
		{
			// OS/resource level: free-memory depletion trend.
			Name: "memory",
			Evaluate: func(now float64) (float64, error) {
				w := m.sar["mem_free"].Window(now-1200, now+1e-9)
				if w.Len() < 3 {
					return 0, nil
				}
				slope, _, err := w.LinearTrend()
				if err != nil {
					return 0, nil
				}
				score := -slope
				if v, ok := w.Last(); ok && v.V < memFloor {
					score += 1
				}
				return score, nil
			},
			Threshold: 0.1,
		},
		{
			// Platform level: utilization headroom.
			Name: "load",
			Evaluate: func(now float64) (float64, error) {
				v, ok := m.sar["cpu"].Last()
				if !ok {
					return 0, nil
				}
				return v.V, nil
			},
			Threshold: 0.85,
		},
		{
			// Platform level: swap pressure (already degrading).
			Name: "swap",
			Evaluate: func(now float64) (float64, error) {
				v, ok := m.sar["swap"].Last()
				if !ok {
					return 0, nil
				}
				return v.V, nil
			},
			Threshold: 0.5,
		},
	}
}

func run() error {
	addr := flag.String("addr", ":9600", "metrics/health listen address")
	seed := flag.Int64("seed", 11, "simulation seed")
	days := flag.Float64("days", 1, "replay horizon [simulated days]")
	compress := flag.Float64("compress", 3600, "time compression [simulated seconds per wall second]")
	queueCap := flag.Int("queue", 4096, "ingest queue capacity")
	overflow := flag.String("overflow", "block", "overflow policy: block|drop-oldest|drop-newest")
	workers := flag.Int("workers", 4, "layer-evaluation worker pool size")
	evalEvery := flag.Duration("eval", 250*time.Millisecond, "wall-clock MEA cadence")
	shards := flag.Int("shards", 1, "parallel ingest shards (per-variable routing)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ on the metrics address")
	flag.Parse()
	if *days <= 0 || *compress <= 0 {
		return fmt.Errorf("days and compress must be positive")
	}
	policy, err := runtime.ParsePolicy(*overflow)
	if err != nil {
		return err
	}

	scpCfg := scp.DefaultConfig()
	scpCfg.Seed = *seed
	sys, err := scp.New(scpCfg)
	if err != nil {
		return err
	}

	// Act commands cross back to the simulation thread through a mailbox:
	// the act stage enqueues, the replay loop applies between slices, so
	// the non-thread-safe simulator is only ever touched from one
	// goroutine.
	cmds := make(chan func(), 64)
	mitigate := func() error {
		select {
		case cmds <- func() {
			if !sys.Up() {
				return
			}
			if sys.Utilization() > 0.85 {
				_ = sys.ShedLoad(0.3)
				_ = sys.Engine().Schedule(1200, func() {
					if sys.Up() {
						_ = sys.ShedLoad(0)
					}
				})
			}
			if sys.FreeMemory() < 2*scpCfg.SwapThreshold {
				_ = sys.CleanupState()
			}
			_ = sys.PrepareRepair()
		}:
		default: // mailbox full: the pending mitigation will cover it
		}
		return nil
	}
	action, err := act.New("mitigate+prepare", act.PreparedRepair,
		act.Params{Cost: 0.5, SuccessProb: 0.85, Complexity: 0.3}, mitigate)
	if err != nil {
		return err
	}
	selector, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		return err
	}

	m := newMirror()
	// Externally clocked engine: the runtime drives it on replay time.
	engine, err := core.New(nil, m.layers(2*scpCfg.SwapThreshold), nil, selector,
		[]*act.Action{action}, nil, core.Config{
			EvalInterval:        *compress * evalEvery.Seconds(), // cadence in sim time
			LeadTime:            300,
			WarnThreshold:       0.2, // any single layer suffices (4 layers)
			OscillationWindow:   1800,
			MaxActionsPerWindow: 6,
		})
	if err != nil {
		return err
	}

	// The replay clock: sim-time high-water mark, advanced by the feeder.
	var simNow atomic.Uint64
	rt, err := runtime.New(runtime.Config{
		Engine:        engine,
		Apply:         m.apply,
		Clock:         func() float64 { return math.Float64frombits(simNow.Load()) },
		QueueCapacity: *queueCap,
		Overflow:      policy,
		EvalInterval:  *evalEvery,
		Workers:       *workers,
		Shards:        *shards,
		Profiling:     *pprofOn,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := rt.Start(ctx); err != nil {
		return err
	}
	srv, bound, err := rt.Serve(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("pfmd: serving /metrics and /healthz on %s\n", bound)
	fmt.Printf("pfmd: replaying %.3g simulated days at %gx wall speed (policy %s, %d workers, %d shards)\n",
		*days, *compress, policy, *workers, rt.Shards())

	if err := replay(ctx, sys, rt, cmds, *days*86400, *compress, &simNow); err != nil &&
		ctx.Err() == nil {
		return err
	}

	// Graceful drain, bounded so Ctrl-C always wins within a few seconds.
	stopCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Stop(stopCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pfmd: drain:", err)
	}

	mm := rt.Metrics()
	fmt.Printf("pfmd: ingested %d events (applied %d, dropped %d), %d evaluations\n",
		mm.Ingested.Value(), mm.Applied.Value(), mm.Dropped(), mm.Evaluations.Value())
	fmt.Printf("pfmd: warnings %d, actions %d, suppressed %d\n",
		mm.Warnings.Value(), mm.Actions.Value(), mm.Suppressed.Value())
	fmt.Printf("pfmd: system availability %.5f, %d failures, %d restarts\n",
		sys.MeasuredAvailability(), len(sys.Failures()), len(sys.Restarts()))
	fmt.Print(engine.Report())
	return nil
}

// replay advances the simulator in wall-paced slices, applying queued act
// commands on the simulation thread and streaming new error events and
// SAR samples into the runtime.
func replay(
	ctx context.Context,
	sys *scp.System,
	rt *runtime.Runtime,
	cmds chan func(),
	horizon, compress float64,
	simNow *atomic.Uint64,
) error {
	const wallSlice = 100 * time.Millisecond
	simSlice := compress * wallSlice.Seconds()
	seenLog := 0
	seenSAR := make(map[string]int, len(scp.SARVariables))
	ticker := time.NewTicker(wallSlice)
	defer ticker.Stop()
	for elapsed := 0.0; elapsed < horizon; elapsed += simSlice {
		// Countermeasures decided by the act stage since the last slice.
		for {
			select {
			case cmd := <-cmds:
				cmd()
				continue
			default:
			}
			break
		}
		step := math.Min(simSlice, horizon-elapsed)
		if err := sys.Run(step); err != nil {
			return err
		}
		simNow.Store(math.Float64bits(sys.Now()))
		// Stream everything the slice produced.
		for n := sys.Log().Len(); seenLog < n; seenLog++ {
			e := sys.Log().At(seenLog)
			if err := rt.Ingest(ctx, runtime.Event{Kind: runtime.KindError, Time: e.Time, Error: e}); err != nil {
				return err
			}
		}
		for _, name := range scp.SARVariables {
			series, err := sys.SAR(name)
			if err != nil {
				return err
			}
			for n := series.Len(); seenSAR[name] < n; seenSAR[name]++ {
				p := series.At(seenSAR[name])
				if err := rt.Ingest(ctx, runtime.Event{
					Kind: runtime.KindSample, Time: p.T, Variable: name, Value: p.V,
				}); err != nil {
					return err
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
	return nil
}

// Command pfmd runs the PFM library as a long-running service: the
// concurrent streaming MEA runtime (internal/runtime) fed by the SCP
// simulator in real-time-scaled replay mode. Simulated operation is paced
// by the wall clock at a configurable time-compression factor; the
// simulator's error log and SAR samples stream through the bounded ingest
// queue into mirror state, layered predictors score in a worker pool, and
// the serialized act stage steers the live simulator through a command
// mailbox (applied on the simulation thread between replay slices).
//
// Observability: /metrics (Prometheus text), /healthz and /readyz
// (readiness), /livez (liveness), /tracez (end-to-end span traces),
// /ledger (online Sect. 3.3 prediction quality), /layers (predictor
// lifecycle state, with -hotswap) and /incidents (flight-recorder bundles)
// on -addr while the replay runs, e.g.
//
//	pfmd -days 2 -compress 7200 -hotswap -incident-dir /tmp/incidents &
//	curl -s localhost:9600/metrics | grep pfm_
//	curl -s localhost:9600/ledger | head
//	curl -s localhost:9600/layers
//	curl -s "localhost:9600/tracez?n=10"
//	curl -s localhost:9600/incidents | head
//
// The flight recorder keeps bounded always-on state (recent event-window
// indices, per-layer score history, span IDs) and assembles a correlated
// incident bundle — pre-trigger events, scores, versions, slowest spans,
// suspect components, lifecycle states, runtime snapshot — whenever a
// warning clears -incident-warn, a countermeasure fires, a predictor
// drifts or rolls back, or ledger quality burns down. Bundles are served
// on /incidents and optionally persisted to -incident-dir as JSON.
//
// With -hotswap the predictor lifecycle watches every layer's score stream
// (self-calibrating CUSUM) and ledger quality (Page–Hinkley) for drift,
// recalibrates a candidate off the hot path, validates it in shadow against
// the incumbent's live F-measure, and swaps it in without pausing the MEA
// loop; swap decisions are logged with the newest trace ID.
//
// Progress and decisions are structured logs on stderr (-log-format=json
// for machine ingestion); result tables stay on stdout.
//
// Usage:
//
//	pfmd [-addr :9600] [-seed 11] [-days 1] [-compress 3600]
//	     [-queue 4096] [-overflow block|drop-oldest|drop-newest]
//	     [-workers 4] [-eval 250ms] [-shards 1] [-pprof]
//	     [-log-format text|json] [-log-level info|debug]
//	     [-trace-cap 256] [-trace-dump 0]
//	     [-ledger-window 0] [-ledger-slack 300]
//	     [-meta-weights w1,w2,w3,w4]
//	     [-hotswap] [-drift-warmup 240] [-drift-threshold 8]
//	     [-drift-shadow-min 20] [-drift-cooldown 200]
//	     [-batch 0] [-replay-columnar trace.cols] [-replay-eval 900]
//	     [-incident-dir DIR] [-incident-cap 32] [-incident-warn 0.5]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/lifecycle"
	"repro/internal/meta"
	"repro/internal/obs"
	"repro/internal/pfmmodel"
	"repro/internal/runtime"
	"repro/internal/scp"
	ts "repro/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pfmd:", err)
		os.Exit(1)
	}
}

// mirror is the runtime's predictor-visible state: the ingest stage
// replays the simulator's error log and SAR series into it, and the
// layers read it. Locking is owned by the runtime: Apply and evaluation
// never overlap, and sharded ingest (-shards > 1) is safe here because the
// default shard key serializes all error-log appends on one shard while
// each SAR series is only touched by its own variable's shard (the sar map
// itself is fully populated before Start and read-only afterwards).
type mirror struct {
	log *eventlog.Log
	sar map[string]*ts.Series
}

func newMirror() *mirror {
	m := &mirror{log: eventlog.NewLog(), sar: make(map[string]*ts.Series)}
	for _, name := range scp.SARVariables {
		m.sar[name] = ts.New(name)
	}
	return m
}

// apply integrates one streamed event.
func (m *mirror) apply(ev runtime.Event) error {
	switch ev.Kind {
	case runtime.KindError:
		return m.log.Append(ev.Error)
	case runtime.KindSample:
		s, ok := m.sar[ev.Variable]
		if !ok {
			return fmt.Errorf("unknown variable %q", ev.Variable)
		}
		return s.Append(ev.Time, ev.Value)
	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
}

// layers builds the per-level predictors of the Fig. 11 blueprint over
// the mirror state. Each layer is a calibrated predictor — score =
// raw/scale with the warning threshold at 1.0 — whose initial scale is the
// blueprint's hand-tuned warning level, so the static behaviour is
// unchanged while the lifecycle (with -hotswap) can refit a scale whose
// signal regime drifted.
func (m *mirror) layers(memFloor float64) []*core.Layer {
	rawErrors := func(now float64) (float64, error) {
		// Application level: detected-error rate over the data window —
		// counted off the time column, nothing materialized.
		lo, hi := m.log.ScanWindow(now-600, now+1e-9)
		return float64(hi-lo) / 600, nil
	}
	rawMemory := func(now float64) (float64, error) {
		// OS/resource level: free-memory depletion trend.
		w := m.sar["mem_free"].Window(now-1200, now+1e-9)
		if w.Len() < 3 {
			return 0, nil
		}
		slope, _, err := w.LinearTrend()
		if err != nil {
			return 0, nil
		}
		score := -slope
		if v, ok := w.Last(); ok && v.V < memFloor {
			score += 1
		}
		return score, nil
	}
	rawLoad := func(now float64) (float64, error) {
		// Platform level: utilization headroom.
		v, ok := m.sar["cpu"].Last()
		if !ok {
			return 0, nil
		}
		return v.V, nil
	}
	rawSwap := func(now float64) (float64, error) {
		// Platform level: swap pressure (already degrading).
		v, ok := m.sar["swap"].Last()
		if !ok {
			return 0, nil
		}
		return v.V, nil
	}
	return []*core.Layer{
		{Name: "errors", Predictor: newCalibrated(rawErrors, 0.05), Threshold: 1},
		{Name: "memory", Predictor: newCalibrated(rawMemory, 0.1), Threshold: 1},
		{Name: "load", Predictor: newCalibrated(rawLoad, 0.85), Threshold: 1},
		{Name: "swap", Predictor: newCalibrated(rawSwap, 0.5), Threshold: 1},
	}
}

// newLogger builds the service logger from the -log-format/-log-level
// flags. Logs go to stderr; result tables stay on stdout.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	default:
		return nil, fmt.Errorf("unknown log level %q (want info|debug)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// parseMetaWeights builds the -meta-weights stacker: one logistic weight
// per layer (in layer order), bias fixed at −Σ wᵢθᵢ so a system sitting
// exactly at every layer threshold scores 0.5. The stacker itself is
// returned (not just its Score closure) so the lifecycle can down-weight a
// freshly swapped layer during probation.
func parseMetaWeights(spec string, layers []*core.Layer) (*meta.Stacker, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != len(layers) {
		return nil, fmt.Errorf("-meta-weights needs %d comma-separated weights, got %d", len(layers), len(parts))
	}
	names := make([]string, len(layers))
	weights := make([]float64, len(layers))
	bias := 0.0
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("-meta-weights[%d]: %w", i, err)
		}
		names[i] = layers[i].Name
		weights[i] = w
		bias -= w * layers[i].Threshold
	}
	return meta.NewStacker(names, weights, bias)
}

// kindName labels event kinds in the -trace-dump rendering.
func kindName(k uint8) string {
	switch runtime.EventKind(k) {
	case runtime.KindError:
		return "error"
	case runtime.KindSample:
		return "sample"
	default:
		return strconv.Itoa(int(k))
	}
}

func run() error {
	addr := flag.String("addr", ":9600", "metrics/health listen address")
	seed := flag.Int64("seed", 11, "simulation seed")
	days := flag.Float64("days", 1, "replay horizon [simulated days]")
	compress := flag.Float64("compress", 3600, "time compression [simulated seconds per wall second]")
	queueCap := flag.Int("queue", 4096, "ingest queue capacity")
	overflow := flag.String("overflow", "block", "overflow policy: block|drop-oldest|drop-newest")
	workers := flag.Int("workers", 4, "layer-evaluation worker pool size")
	evalEvery := flag.Duration("eval", 250*time.Millisecond, "wall-clock MEA cadence")
	shards := flag.Int("shards", 1, "parallel ingest shards (per-variable routing)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ on the metrics address")
	logFormat := flag.String("log-format", "text", "log output format: text|json")
	logLevel := flag.String("log-level", "info", "log level: info|debug (debug logs every MEA cycle)")
	traceCap := flag.Int("trace-cap", 256, "end-to-end trace ring capacity (0 disables tracing)")
	traceDump := flag.Int("trace-dump", 0, "print the N slowest end-to-end traces at exit")
	traceSample := flag.Int("trace-sample", obs.DefaultSampleInterval, "trace 1 in N ingested events (1 = every event)")
	ledgerWindow := flag.Float64("ledger-window", 0, "rolling quality window [sim s]; 0 = cumulative")
	ledgerSlack := flag.Float64("ledger-slack", 300, "prediction-period slack Δtp for TP matching [sim s]")
	metaWeights := flag.String("meta-weights", "", "comma-separated logistic combiner weight per layer (errors,memory,load,swap); empty = threshold voting")
	hotswap := flag.Bool("hotswap", false, "enable the predictor lifecycle: drift-triggered recalibration with shadow validation and zero-downtime hot-swap")
	driftWarmup := flag.Int("drift-warmup", 240, "score-drift detector self-calibration window [cycles]")
	driftThreshold := flag.Float64("drift-threshold", 8, "score-drift CUSUM threshold [σ]")
	driftShadowMin := flag.Int("drift-shadow-min", 20, "resolved shadow predictions before a promotion decision")
	driftCooldown := flag.Int("drift-cooldown", 200, "cycles a layer is muted after a lifecycle episode")
	fleetMode := flag.Bool("fleet", false, "run the multi-tenant fleet runtime instead of the single-instance pipeline")
	tenants := flag.Int("tenants", 100, "fleet size (with -fleet)")
	skew := flag.Float64("skew", 1, "Zipf exponent of the tenant load profile (with -fleet)")
	fleetScopes := flag.Int("fleet-scopes", 64, "dedicated per-tenant quality-ledger scopes before folding (with -fleet)")
	fleetTrace := flag.String("fleet-trace", "", "replay a recorded trace file instead of simulating (.trace text or .wire binary, see loggen -tenants)")
	fleetListen := flag.String("listen", "", "accept tenant traces over TCP on this address instead of simulating (with -fleet; PFW1 wire or text line protocol, see loggen -send)")
	actBudget := flag.Int("act-budget", 0, "max tenants that may execute a countermeasure per cycle, criticality-prioritized (with -fleet; 0 = unlimited)")
	rateLimit := flag.Float64("rate-limit", 0, "per-tenant ingest drain cap [events per simulated second] (with -fleet; 0 = unlimited)")
	batch := flag.Int("batch", 0, "ingest drain chunk size per shard (0 = runtime default)")
	replayColumnar := flag.String("replay-columnar", "", "replay a PFC1 columnar trace (see loggen -columnar) at full speed instead of simulating")
	replayEval := flag.Float64("replay-eval", 900, "MEA cadence in simulated seconds (with -replay-columnar)")
	incidentDir := flag.String("incident-dir", "", "persist captured incident bundles as JSON files in this directory")
	incidentCap := flag.Int("incident-cap", 32, "retained incident bundles (0 disables the flight recorder)")
	incidentWarn := flag.Float64("incident-warn", 0.5, "combined-confidence gate for warn-triggered incident capture")
	flag.Parse()
	if *days <= 0 || *compress <= 0 {
		return fmt.Errorf("days and compress must be positive")
	}
	policy, err := runtime.ParsePolicy(*overflow)
	if err != nil {
		return err
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *traceDump > *traceCap {
		*traceCap = *traceDump
	}
	if *replayColumnar != "" {
		return runColumnar(columnarOptions{
			addr: *addr, path: *replayColumnar, cadence: *replayEval,
			batch: *batch, queueCap: *queueCap, policy: policy,
			workers: *workers, shards: *shards, pprofOn: *pprofOn,
			traceCap: *traceCap, traceSample: *traceSample, traceDump: *traceDump,
			ledgerWin: *ledgerWindow, ledgerSlack: *ledgerSlack,
			metaWeights: *metaWeights, logger: logger,
			incidents: incidentOptions{dir: *incidentDir, cap: *incidentCap, warn: *incidentWarn},
		})
	}
	if *fleetMode {
		return runFleet(fleetOptions{
			addr: *addr, tenants: *tenants, skew: *skew, seed: *seed,
			days: *days, compress: *compress, queueCap: *queueCap,
			policy: policy, workers: *workers, shards: *shards,
			evalEvery: *evalEvery, scopes: *fleetScopes,
			traceCap: *traceCap, traceSample: *traceSample,
			ledgerWindow: *ledgerWindow, ledgerSlack: *ledgerSlack,
			traceFile: *fleetTrace, listen: *fleetListen,
			actBudget: *actBudget, rateLimit: *rateLimit, logger: logger,
		})
	}

	scpCfg := scp.DefaultConfig()
	scpCfg.Seed = *seed
	sys, err := scp.New(scpCfg)
	if err != nil {
		return err
	}

	// Act commands cross back to the simulation thread through a mailbox:
	// the act stage enqueues, the replay loop applies between slices, so
	// the non-thread-safe simulator is only ever touched from one
	// goroutine.
	cmds := make(chan func(), 64)
	mitigate := func() error {
		select {
		case cmds <- func() {
			if !sys.Up() {
				return
			}
			if sys.Utilization() > 0.85 {
				_ = sys.ShedLoad(0.3)
				_ = sys.Engine().Schedule(1200, func() {
					if sys.Up() {
						_ = sys.ShedLoad(0)
					}
				})
			}
			if sys.FreeMemory() < 2*scpCfg.SwapThreshold {
				_ = sys.CleanupState()
			}
			_ = sys.PrepareRepair()
		}:
		default: // mailbox full: the pending mitigation will cover it
		}
		return nil
	}
	action, err := act.New("mitigate+prepare", act.PreparedRepair,
		act.Params{Cost: 0.5, SuccessProb: 0.85, Complexity: 0.3}, mitigate)
	if err != nil {
		return err
	}
	selector, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		return err
	}

	m := newMirror()
	layers := m.layers(2 * scpCfg.SwapThreshold)
	var combiner core.Combiner
	var stacker *meta.Stacker
	if *metaWeights != "" {
		if stacker, err = parseMetaWeights(*metaWeights, layers); err != nil {
			return err
		}
		combiner = stacker.Score
		logger.Info("meta combiner", "weights", *metaWeights)
	}
	const leadTime = 300.0
	// Externally clocked engine: the runtime drives it on replay time.
	engine, err := core.New(nil, layers, combiner, selector,
		[]*act.Action{action}, nil, core.Config{
			EvalInterval:        *compress * evalEvery.Seconds(), // cadence in sim time
			LeadTime:            leadTime,
			WarnThreshold:       0.2, // any single layer suffices (4 layers)
			OscillationWindow:   1800,
			MaxActionsPerWindow: 6,
		})
	if err != nil {
		return err
	}

	// Online prediction-quality ledger: journaled by the runtime's act
	// stage, ground truth fed from the simulator's failure record, matched
	// with the engine's lead time Δtl and the -ledger-slack Δtp.
	layerNames := make([]string, len(layers))
	for i, l := range layers {
		layerNames[i] = l.Name
	}
	ledger, err := obs.NewLedger(obs.LedgerConfig{
		LeadTime: leadTime, Slack: *ledgerSlack, Window: *ledgerWindow,
	}, layerNames...)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if *traceCap > 0 {
		tracer = obs.NewTracer(*traceCap)
		tracer.SetSampleInterval(*traceSample)
	}

	// Predictor lifecycle (-hotswap): drift-triggered recalibration with
	// shadow validation against the live ledger and zero-downtime swaps.
	var lcm *lifecycle.Manager
	if *hotswap {
		lcm, err = lifecycle.NewManager(layers, ledger, lifecycle.Config{
			ScoreWarmup:         *driftWarmup,
			ScoreThresholdSigma: *driftThreshold,
			ShadowMinResolved:   *driftShadowMin,
			CooldownCycles:      *driftCooldown,
		})
		if err != nil {
			return err
		}
		logger.Info("predictor lifecycle enabled",
			"drift_warmup", *driftWarmup, "drift_threshold_sigma", *driftThreshold,
			"shadow_min_resolved", *driftShadowMin, "cooldown_cycles", *driftCooldown)
	}

	// Flight recorder: always-on bounded capture keyed to the act stage's
	// warn/act decisions, lifecycle events, and ledger burn rate.
	recorder, dp, err := buildRecorder(
		incidentOptions{dir: *incidentDir, cap: *incidentCap, warn: *incidentWarn},
		m, layerNames, tracer, ledger, lcm, logger)
	if err != nil {
		return err
	}

	// The replay clock: sim-time high-water mark, advanced by the feeder.
	var simNow atomic.Uint64
	rt, err := runtime.New(runtime.Config{
		Engine:        engine,
		Apply:         m.apply,
		Clock:         func() float64 { return math.Float64frombits(simNow.Load()) },
		QueueCapacity: *queueCap,
		Overflow:      policy,
		EvalInterval:  *evalEvery,
		Workers:       *workers,
		Shards:        *shards,
		BatchSize:     *batch,
		Profiling:     *pprofOn,
		Tracer:        tracer,
		Ledger:        ledger,
		Lifecycle:     lcm,
		Recorder:      recorder,
	})
	if err != nil {
		return err
	}
	if lcm != nil {
		watchLifecycle(lcm, stacker, layers, tracer, logger)
	}

	// Structured decision log: every MEA cycle at debug, warnings at info,
	// linked to the newest completed /tracez span.
	engine.SetCycleObserver(func(now float64, scores []float64, d core.Decision) {
		attrs := []any{
			slog.Float64("sim_now", now),
			slog.Float64("confidence", d.Confidence),
			slog.Bool("warned", d.Warned),
			slog.String("action", d.ActionName),
			slog.Bool("executed", d.Executed),
			slog.Bool("suppressed", d.Suppressed),
		}
		if tracer != nil {
			attrs = append(attrs, slog.Uint64("trace_id", tracer.NewestCompleteID()))
		}
		for i, s := range scores {
			if i < len(layerNames) && !math.IsNaN(s) {
				attrs = append(attrs, slog.Float64("score_"+layerNames[i], s))
			}
		}
		if d.Warned {
			logger.Info("failure warning", attrs...)
		} else {
			logger.Debug("cycle", attrs...)
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := rt.Start(ctx); err != nil {
		return err
	}
	srv, bound, err := rt.Serve(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	logger.Info("serving observability endpoints",
		"addr", bound, "tracez", tracer != nil, "ledger", true, "pprof", *pprofOn)
	logger.Info("replay starting",
		"sim_days", *days, "compress", *compress, "policy", policy.String(),
		"workers", *workers, "shards", rt.Shards())

	// Ground-truth failures feed both the quality ledger and the incident
	// diagnoser's training set.
	recordFailure := func(t float64) {
		ledger.RecordFailure(t)
		if dp != nil {
			dp.RecordFailure(t)
		}
	}
	if err := replay(ctx, sys, rt, recordFailure, cmds, *days*86400, *compress, &simNow); err != nil &&
		ctx.Err() == nil {
		return err
	}

	// Graceful drain, bounded so Ctrl-C always wins within a few seconds.
	stopCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Stop(stopCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}

	mm := rt.Metrics()
	logger.Info("pipeline summary",
		"ingested", mm.Ingested.Value(), "applied", mm.Applied.Value(),
		"dropped", mm.Dropped(), "evaluations", mm.Evaluations.Value(),
		"warnings", mm.Warnings.Value(), "actions", mm.Actions.Value(),
		"suppressed", mm.Suppressed.Value())
	logger.Info("system summary",
		"availability", sys.MeasuredAvailability(),
		"failures", len(sys.Failures()), "restarts", len(sys.Restarts()))
	logActionStats(logger, action)
	if lcm != nil {
		logLifecycle(logger, lcm)
	}
	logQuality(logger, ledger)
	logModelAssessment(logger, ledger)
	logIncidents(logger, recorder)
	fmt.Print(engine.Report())
	if *traceDump > 0 && tracer != nil {
		fmt.Printf("\nslowest %d end-to-end traces:\n\n", *traceDump)
		if err := obs.WriteText(os.Stdout, tracer.Slowest(*traceDump), kindName); err != nil {
			return err
		}
	}
	return nil
}

// watchLifecycle subscribes the service to predictor-lifecycle events: every
// transition is logged (swap decisions at info, linked to the newest /tracez
// span), and when a meta stacker combines the layers, a freshly swapped
// layer is down-weighted during probation and restored on confirm/rollback.
func watchLifecycle(
	lcm *lifecycle.Manager,
	stacker *meta.Stacker,
	layers []*core.Layer,
	tracer *obs.Tracer,
	logger *slog.Logger,
) {
	lcm.Subscribe(func(e lifecycle.Event) {
		attrs := []any{
			slog.String("layer", e.Layer),
			slog.String("event", string(e.Type)),
			slog.Uint64("version", e.Version),
			slog.Float64("sim_now", e.Time),
		}
		switch e.Type {
		case lifecycle.EventSwapped, lifecycle.EventShadowDiscarded,
			lifecycle.EventConfirmed, lifecycle.EventRolledBack:
			attrs = append(attrs,
				slog.Float64("candidate_f", e.CandidateF),
				slog.Float64("incumbent_f", e.IncumbentF))
		}
		if e.Duration > 0 {
			attrs = append(attrs, slog.Float64("retrain_seconds", e.Duration))
		}
		if e.Err != "" {
			attrs = append(attrs, slog.String("err", e.Err))
		}
		if tracer != nil {
			attrs = append(attrs, slog.Uint64("trace_id", tracer.NewestCompleteID()))
		}
		switch e.Type {
		case lifecycle.EventSwapped, lifecycle.EventConfirmed, lifecycle.EventRolledBack:
			logger.Info("predictor swap decision", attrs...)
		default:
			logger.Info("predictor lifecycle", attrs...)
		}
	})
	if stacker == nil {
		return
	}
	// Probation discount: trust a just-swapped predictor at half its
	// configured weight until the swap is confirmed (or rolled back).
	const probationDiscount = 0.5
	initial := make(map[string]float64, len(layers))
	for _, l := range layers {
		if w, err := stacker.Weight(l.Name); err == nil {
			initial[l.Name] = w
		}
	}
	lcm.Subscribe(func(e lifecycle.Event) {
		w0, ok := initial[e.Layer]
		if !ok {
			return
		}
		switch e.Type {
		case lifecycle.EventSwapped:
			if prev, err := stacker.Reweight(e.Layer, w0*probationDiscount); err == nil {
				logger.Info("stacker reweighted for probation",
					"layer", e.Layer, "weight", w0*probationDiscount, "previous", prev)
			}
		case lifecycle.EventConfirmed, lifecycle.EventRolledBack:
			if _, err := stacker.Reweight(e.Layer, w0); err == nil {
				logger.Info("stacker weight restored", "layer", e.Layer, "weight", w0)
			}
		}
	})
}

// logLifecycle reports the per-layer predictor-lifecycle outcome.
func logLifecycle(logger *slog.Logger, lcm *lifecycle.Manager) {
	for _, st := range lcm.States() {
		logger.Info("predictor lifecycle summary",
			"layer", st.Layer, "state", st.State, "version", st.Version,
			"drifts", st.Drifts, "retrains", st.Retrains,
			"retrain_errors", st.RetrainErrors, "swaps", st.Swaps,
			"rollbacks", st.Rollbacks, "confirms", st.Confirms,
			"eval_errors", st.EvalErrors)
	}
}

// logActionStats reports the countermeasure's execution record.
func logActionStats(logger *slog.Logger, a *act.Action) {
	s := a.Stats()
	logger.Info("action stats", "action", a.Name(),
		"executions", s.Executions, "failures", s.Failures,
		"mean_duration", s.MeanDuration(), "last_duration", s.LastDuration)
}

// logQuality reports the ledger's per-layer online quality tables.
func logQuality(logger *slog.Logger, led *obs.Ledger) {
	for _, layer := range led.Layers() {
		c := led.Cumulative(layer)
		attrs := []any{
			slog.String("layer", layer),
			slog.Int("tp", c.TP), slog.Int("fp", c.FP),
			slog.Int("tn", c.TN), slog.Int("fn", c.FN),
		}
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"precision", c.Precision()}, {"recall", c.Recall()},
			{"fpr", c.FPR()}, {"f1", c.FMeasure()},
		} {
			if !math.IsNaN(m.v) {
				attrs = append(attrs, slog.Float64(m.name, m.v))
			}
		}
		logger.Info("prediction quality", attrs...)
	}
}

// logModelAssessment compares the Sect. 5 CTMC under the measured combined
// quality against the paper's Table 2 reference parameterization.
func logModelAssessment(logger *slog.Logger, led *obs.Ledger) {
	a, err := obs.AssessModel(led.Cumulative(obs.CombinedLayer), pfmmodel.DefaultParams())
	if err != nil {
		logger.Debug("model assessment unavailable", "reason", err.Error())
		return
	}
	logger.Info("model assessment",
		"measured_precision", a.Measured.Precision,
		"measured_recall", a.Measured.Recall,
		"measured_fpr", a.Measured.FPR,
		"measured_availability", a.Measured.Availability,
		"reference_availability", a.Reference.Availability,
		"availability_delta", a.AvailabilityDelta,
		"unavailability_ratio", a.Measured.UnavailabilityRatio,
		"reference_unavailability_ratio", a.Reference.UnavailabilityRatio,
		"unavailability_ratio_delta", a.UnavailabilityRatioDelta,
		"mttf_relative", a.MTTFRelative,
		"hazard_at_mttf", a.Measured.HazardAtMTTF)
}

// replay advances the simulator in wall-paced slices, applying queued act
// commands on the simulation thread, streaming new error events and SAR
// samples into the runtime, and journaling ground-truth failures into the
// prediction ledger.
func replay(
	ctx context.Context,
	sys *scp.System,
	rt *runtime.Runtime,
	recordFailure func(t float64),
	cmds chan func(),
	horizon, compress float64,
	simNow *atomic.Uint64,
) error {
	const wallSlice = 100 * time.Millisecond
	simSlice := compress * wallSlice.Seconds()
	seenLog := 0
	seenFail := 0
	seenSAR := make(map[string]int, len(scp.SARVariables))
	ticker := time.NewTicker(wallSlice)
	defer ticker.Stop()
	for elapsed := 0.0; elapsed < horizon; elapsed += simSlice {
		// Countermeasures decided by the act stage since the last slice.
		for {
			select {
			case cmd := <-cmds:
				cmd()
				continue
			default:
			}
			break
		}
		step := math.Min(simSlice, horizon-elapsed)
		if err := sys.Run(step); err != nil {
			return err
		}
		simNow.Store(math.Float64bits(sys.Now()))
		// Ground truth for the ledger: failures the slice produced.
		for times := sys.FailureTimes(); seenFail < len(times); seenFail++ {
			recordFailure(times[seenFail])
		}
		// Stream everything the slice produced.
		for n := sys.Log().Len(); seenLog < n; seenLog++ {
			e := sys.Log().At(seenLog)
			if err := rt.Ingest(ctx, runtime.Event{Kind: runtime.KindError, Time: e.Time, Error: e}); err != nil {
				return err
			}
		}
		for _, name := range scp.SARVariables {
			series, err := sys.SAR(name)
			if err != nil {
				return err
			}
			for n := series.Len(); seenSAR[name] < n; seenSAR[name]++ {
				p := series.At(seenSAR[name])
				if err := rt.Ingest(ctx, runtime.Event{
					Kind: runtime.KindSample, Time: p.T, Variable: name, Value: p.V,
				}); err != nil {
					return err
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
	return nil
}

// pfmd -fleet: the multi-tenant fleet runtime. N simulated tenants (or a
// recorded trace from loggen -tenants) stream through internal/fleet's
// shared substrate — consistent-hash ingest shards, one evaluation pool,
// batched cross-tenant scoring — with the aggregate /fleet plane on the
// metrics address.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/scp"
)

// fleetOptions carries the -fleet flag set.
type fleetOptions struct {
	addr         string
	tenants      int
	skew         float64
	seed         int64
	days         float64
	compress     float64
	queueCap     int
	policy       runtime.OverflowPolicy
	workers      int
	shards       int
	evalEvery    time.Duration
	scopes       int
	traceCap     int
	traceSample  int
	ledgerWindow float64
	ledgerSlack  float64
	traceFile    string
	listen       string
	actBudget    int
	rateLimit    float64
	logger       *slog.Logger
}

// fleetState is one tenant's monitoring mirror: EWMA utilization over the
// load samples plus a decaying error-pressure signal — small enough to
// keep thousands of tenants resident.
type fleetState struct {
	capacity float64
	util     float64 // EWMA of load/capacity
	errs     float64 // decaying error pressure
}

func (s *fleetState) apply(ev fleet.Event) error {
	if ev.Kind == runtime.KindError {
		if ev.Error.Severity >= 2 {
			s.errs += 1
		} else {
			s.errs += 0.25
		}
		return nil
	}
	if ev.Variable == "load" {
		s.util = 0.8*s.util + 0.2*ev.Value/s.capacity
		s.errs *= 0.9 // samples arrive on a fixed grid: decay per tick
	}
	return nil
}

// fleetLayers builds the two shared layer templates: utilization (batched
// scorer, exercising the cross-tenant batch path) and error pressure.
func fleetLayers() []fleet.LayerTemplate {
	return []fleet.LayerTemplate{
		{
			Name: "load", Threshold: 0.85,
			ScoreBatch: func(states []fleet.TenantState, _ float64, out []float64) error {
				for i, st := range states {
					out[i] = st.(*fleetState).util
				}
				return nil
			},
		},
		{
			Name: "errors", Threshold: 0.6,
			Score: func(st fleet.TenantState, _ float64) (float64, error) {
				return 1 - math.Exp(-st.(*fleetState).errs/3), nil
			},
		},
	}
}

func runFleet(o fleetOptions) error {
	if o.tenants < 1 {
		return fmt.Errorf("-tenants must be >= 1")
	}
	logger := o.logger

	// Tenant membership and load shape come from the simulator config even
	// when replaying a file (loggen uses the same naming scheme).
	multi, err := scp.NewMulti(scp.MultiConfig{
		Tenants: o.tenants, BaseSeed: o.seed, Skew: o.skew,
	})
	if err != nil {
		return err
	}
	ids := multi.IDs()
	weights := multi.Weights()
	specs := make([]fleet.TenantSpec, len(ids))
	for i, id := range ids {
		// Hot tenants are also the critical ones: criticality follows the
		// Zipf weight, so the availability rollup reflects service impact.
		specs[i] = fleet.TenantSpec{ID: id, Criticality: weights[i], RateLimit: o.rateLimit}
	}

	var simNow atomic.Uint64 // Float64bits of the replay's domain time
	simNow.Store(math.Float64bits(0))

	scpCfg := scp.DefaultConfig()
	const leadTime = 300.0
	led, err := obs.NewScopedLedger(obs.LedgerConfig{
		LeadTime: leadTime, Slack: o.ledgerSlack, Window: o.ledgerWindow,
	}, o.scopes, "load", "errors")
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if o.traceCap > 0 {
		tracer = obs.NewTracer(o.traceCap)
		tracer.SetSampleInterval(o.traceSample)
	}
	f, err := fleet.New(fleet.Config{
		Tenants: specs,
		Layers:  fleetLayers(),
		NewState: func(fleet.TenantSpec) (fleet.TenantState, error) {
			return &fleetState{capacity: scpCfg.Capacity}, nil
		},
		Apply: func(st fleet.TenantState, ev fleet.Event) error {
			return st.(*fleetState).apply(ev)
		},
		Engine: core.Config{
			EvalInterval:        o.compress * o.evalEvery.Seconds(),
			LeadTime:            leadTime,
			WarnThreshold:       0.5,
			OscillationWindow:   1800,
			MaxActionsPerWindow: 6,
		},
		Shards:        o.shards,
		QueueCapacity: o.queueCap,
		Overflow:      o.policy,
		Workers:       o.workers,
		ActBudget:     o.actBudget,
		EvalInterval:  o.evalEvery,
		Clock:         func() float64 { return math.Float64frombits(simNow.Load()) },
		Tracer:        tracer,
		Ledger:        led,
		JournalLayers: true,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := f.Start(ctx); err != nil {
		return err
	}
	srv, bound, err := f.Serve(o.addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	source := sourceName(o.traceFile)
	if o.listen != "" {
		source = "listen " + o.listen
	}
	logger.Info("fleet started",
		"tenants", o.tenants, "skew", o.skew, "shards", f.Shards(),
		"workers", o.workers, "addr", bound, "source", source)

	horizon := o.days * 86400
	switch {
	case o.listen != "":
		err = serveFleetListen(ctx, f, o.listen, &simNow, logger)
	case o.traceFile != "":
		err = replayFleetFile(ctx, f, o.traceFile, o.compress, &simNow)
	default:
		err = replayFleetSim(ctx, f, multi, horizon, o.compress, &simNow)
	}
	if err != nil && ctx.Err() == nil {
		_ = f.Stop(context.Background())
		return err
	}

	stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Stop(stopCtx); err != nil {
		logger.Warn("fleet stop", "err", err)
	}
	logFleetSummary(logger, f, led, math.Float64frombits(simNow.Load()))
	return nil
}

func sourceName(traceFile string) string {
	if traceFile == "" {
		return "simulator"
	}
	return traceFile
}

// serveFleetListen ingests from a TCP trace listener until the context
// ends: senders (loggen -send, or any syslog-style shipper speaking the
// text protocol) pace themselves against the fleet's backpressure, and the
// domain clock follows the newest record time seen.
func serveFleetListen(ctx context.Context, f *fleet.Fleet, addr string, simNow *atomic.Uint64, logger *slog.Logger) error {
	ls, err := fleet.Listen(addr)
	if err != nil {
		return err
	}
	logger.Info("fleet ingest listening", "addr", ls.Addr())
	go func() {
		<-ctx.Done()
		_ = ls.Close()
	}()
	defer ls.Close()
	n, err := fleet.Pump(ctx, f, &clockSource{src: ls, simNow: simNow})
	logger.Info("fleet ingest done",
		"records", n, "conns", ls.Conns(), "decodeErrors", ls.DecodeErrors())
	return err
}

// clockSource advances the fleet's domain clock to the newest record time
// without pacing (the network sender sets the pace).
type clockSource struct {
	src    fleet.Source
	simNow *atomic.Uint64
}

func (c *clockSource) Next() (fleet.Record, error) {
	rec, err := c.src.Next()
	if err != nil {
		return rec, err
	}
	for {
		old := c.simNow.Load()
		if math.Float64frombits(old) >= rec.Event.Time {
			break
		}
		if c.simNow.CompareAndSwap(old, math.Float64bits(rec.Event.Time)) {
			break
		}
	}
	return rec, nil
}

// replayFleetSim advances the multi-tenant simulator in wall-paced slices,
// pumping each slice's merged trace into the fleet.
func replayFleetSim(ctx context.Context, f *fleet.Fleet, m *scp.MultiSystem, horizon, compress float64, simNow *atomic.Uint64) error {
	const wallSlice = 100 * time.Millisecond
	simSlice := compress * wallSlice.Seconds()
	ticker := time.NewTicker(wallSlice)
	defer ticker.Stop()
	for elapsed := 0.0; elapsed < horizon; elapsed += simSlice {
		step := math.Min(simSlice, horizon-elapsed)
		if err := m.Run(step); err != nil {
			return err
		}
		simNow.Store(math.Float64bits(elapsed + step))
		recs := fleet.SCPRecords(m.Drain())
		if _, err := fleet.Pump(ctx, f, fleet.NewSliceSource(recs)); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
	return nil
}

// replayFleetFile streams a recorded trace (text or wire format by
// extension), pacing domain time against the wall clock via compress.
func replayFleetFile(ctx context.Context, f *fleet.Fleet, path string, compress float64, simNow *atomic.Uint64) error {
	var src fleet.Source
	if strings.HasSuffix(path, ".wire") {
		fh, err := os.Open(path)
		if err != nil {
			return err
		}
		defer fh.Close()
		src = fleet.NewReader(fh)
	} else {
		ts, err := fleet.OpenTail(path)
		if err != nil {
			return err
		}
		defer ts.Close()
		src = ts
	}
	start := time.Now()
	paced := pacedSource{src: src, compress: compress, start: start, ctx: ctx, simNow: simNow}
	_, err := fleet.Pump(ctx, f, &paced)
	return err
}

// pacedSource wraps a Source, sleeping until each record's domain time is
// due under the compression factor and advancing the fleet's clock.
type pacedSource struct {
	src      fleet.Source
	compress float64
	start    time.Time
	ctx      context.Context
	simNow   *atomic.Uint64
}

func (p *pacedSource) Next() (fleet.Record, error) {
	rec, err := p.src.Next()
	if err != nil {
		return rec, err
	}
	due := p.start.Add(time.Duration(rec.Event.Time / p.compress * float64(time.Second)))
	if wait := time.Until(due); wait > 0 {
		select {
		case <-p.ctx.Done():
			return fleet.Record{}, p.ctx.Err()
		case <-time.After(wait):
		}
	}
	for {
		old := p.simNow.Load()
		if math.Float64frombits(old) >= rec.Event.Time {
			break
		}
		if p.simNow.CompareAndSwap(old, math.Float64bits(rec.Event.Time)) {
			break
		}
	}
	return rec, nil
}

// logFleetSummary prints the exit rollup: status histogram, availability,
// and aggregate quality.
func logFleetSummary(logger *slog.Logger, f *fleet.Fleet, led *obs.ScopedLedger, now float64) {
	r := f.Rollup(now)
	preds, fails := led.Totals()
	attrs := []any{
		"tenants", r.Tenants,
		"cycles", r.Cycles,
		"weightedAvailability", fmt.Sprintf("%.4f", r.WeightedAvailability),
		"predictions", preds,
		"failures", fails,
		"foldedTenants", r.FoldedTenants,
	}
	if r.WeightedF1 != nil {
		attrs = append(attrs, "weightedF1", fmt.Sprintf("%.3f", *r.WeightedF1))
	}
	for status, n := range r.ByStatus {
		attrs = append(attrs, "status."+status, n)
	}
	logger.Info("fleet summary", attrs...)
}

// Command benchguard compares a fresh benchjson artifact against a
// committed baseline and exits non-zero when a benchmark regresses past
// the tolerance or has disappeared — the CI tripwire that keeps the
// batch-first hot path from quietly losing its throughput.
//
// Usage:
//
//	benchguard -baseline bench/BENCH_runtime.baseline.json -current BENCH_runtime.json
//
// Matching strips the trailing -N GOMAXPROCS suffix go test appends to
// benchmark names, so baselines recorded on one core count compare
// against runs on another. Two dimensions are guarded: ns/op (absolute
// numbers vary across machines, but a >25% slowdown between two runs on
// the SAME runner is a regression signal) and allocs/op (any allocation
// on a 0-alloc baseline fails — the zero-alloc contract is exact, not a
// tolerance band — and >25% growth fails otherwise; benchmarks without
// allocs/op on either side, i.e. runs without -benchmem, are skipped).
// The committed baseline doubles as the reference table in DESIGN.md.
// Benchmarks present only in the current artifact are reported but do not
// fail the run (new benchmarks need a baseline refresh, not a red build).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Result mirrors the benchjson schema (cmd/benchjson).
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline benchjson artifact")
	currentPath := flag.String("current", "", "freshly produced benchjson artifact")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown before failing")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	report, failures := compare(baseline, current, *tolerance)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) past %.0f%% tolerance:\n", len(failures), *tolerance*100)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmark(s) within %.0f%% of baseline\n", len(baseline), *tolerance*100)
}

func load(path string) ([]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(raw, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return results, nil
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark
// name ("BenchmarkX/sub-8" → "BenchmarkX/sub").
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// match finds the current result for a baseline name. Exact match wins;
// otherwise one side's -N procs suffix is trimmed at a time. Trimming is
// one-sided and ordered because a trailing number can be a real
// sub-benchmark parameter (…/tenants-1000): blindly trimming both sides
// would collide tenants-1 with tenants-1000 whenever GOMAXPROCS is 1 and
// go test appends no suffix.
func match(base string, current []Result) (Result, bool) {
	for _, r := range current {
		if r.Name == base {
			return r, true
		}
	}
	for _, r := range current {
		if trimProcs(r.Name) == base {
			return r, true
		}
	}
	if trimmed := trimProcs(base); trimmed != base {
		for _, r := range current {
			if r.Name == trimmed || trimProcs(r.Name) == trimmed {
				return r, true
			}
		}
	}
	return Result{}, false
}

// compare checks every baseline benchmark against the current run. It
// returns human-readable report lines for all benchmarks and the subset
// of failure descriptions (missing from current, or ns/op slower than
// baseline*(1+tolerance)).
func compare(baseline, current []Result, tolerance float64) (report, failures []string) {
	matched := make(map[string]bool, len(current))
	for _, base := range baseline {
		name := base.Name
		got, ok := match(base.Name, current)
		if ok {
			matched[got.Name] = true
		} else {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
			report = append(report, fmt.Sprintf("MISSING %-48s baseline %.1f ns/op", name, base.NsPerOp))
			continue
		}
		limit := base.NsPerOp * (1 + tolerance)
		delta := 0.0
		if base.NsPerOp > 0 {
			delta = (got.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		}
		status := "OK     "
		if got.NsPerOp > limit {
			status = "REGRESS"
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%+.1f%%)",
				name, got.NsPerOp, base.NsPerOp, delta))
		}
		allocNote := ""
		if base.AllocsPerOp != nil && got.AllocsPerOp != nil {
			ba, ga := *base.AllocsPerOp, *got.AllocsPerOp
			allocNote = fmt.Sprintf("  %g allocs/op (baseline %g)", ga, ba)
			switch {
			case ba == 0 && ga > 0:
				status = "REGRESS"
				failures = append(failures, fmt.Sprintf("%s: %g allocs/op on a 0-alloc baseline", name, ga))
			case ba > 0 && ga > ba*(1+tolerance):
				status = "REGRESS"
				failures = append(failures, fmt.Sprintf("%s: %g allocs/op vs baseline %g (%+.1f%%)",
					name, ga, ba, (ga-ba)/ba*100))
			}
		}
		report = append(report, fmt.Sprintf("%s %-48s %10.1f ns/op  baseline %10.1f  (%+.1f%%)%s",
			status, name, got.NsPerOp, base.NsPerOp, delta, allocNote))
	}
	for _, r := range current {
		if !matched[r.Name] {
			report = append(report, fmt.Sprintf("NEW     %-48s %10.1f ns/op  (no baseline — refresh bench/)", trimProcs(r.Name), r.NsPerOp))
		}
	}
	return report, failures
}

package main

import (
	"strings"
	"testing"
)

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkRuntimeThroughput/tracing-on-8":  "BenchmarkRuntimeThroughput/tracing-on",
		"BenchmarkRuntimeThroughput/tracing-on-64": "BenchmarkRuntimeThroughput/tracing-on",
		"BenchmarkFleetCycle-4":                    "BenchmarkFleetCycle",
		"BenchmarkNoSuffix":                        "BenchmarkNoSuffix",
		"BenchmarkX/drop-oldest":                   "BenchmarkX/drop-oldest", // non-numeric suffix stays
		"BenchmarkX/n-":                            "BenchmarkX/n-",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkA/fast-8", NsPerOp: 100},
		{Name: "BenchmarkA/slow-8", NsPerOp: 100},
		{Name: "BenchmarkGone-8", NsPerOp: 50},
	}
	current := []Result{
		{Name: "BenchmarkA/fast-4", NsPerOp: 110},  // +10% — within 25%
		{Name: "BenchmarkA/slow-4", NsPerOp: 130},  // +30% — regression
		{Name: "BenchmarkBrandNew-4", NsPerOp: 10}, // no baseline — reported, not fatal
	}
	report, failures := compare(baseline, current, 0.25)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want slow regression + missing", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "BenchmarkA/slow") || !strings.Contains(joined, "BenchmarkGone") {
		t.Fatalf("failures = %v", failures)
	}
	if strings.Contains(joined, "BrandNew") {
		t.Fatalf("new benchmark must not fail the run: %v", failures)
	}
	if len(report) != 4 {
		t.Fatalf("report lines = %d, want 4 (ok, regress, missing, new):\n%s",
			len(report), strings.Join(report, "\n"))
	}
}

func TestCompareExactTolerance(t *testing.T) {
	baseline := []Result{{Name: "BenchmarkEdge", NsPerOp: 100}}
	// Exactly at the limit passes; just over fails.
	if _, failures := compare(baseline, []Result{{Name: "BenchmarkEdge", NsPerOp: 125}}, 0.25); len(failures) != 0 {
		t.Fatalf("exactly at tolerance should pass: %v", failures)
	}
	if _, failures := compare(baseline, []Result{{Name: "BenchmarkEdge", NsPerOp: 126}}, 0.25); len(failures) != 1 {
		t.Fatalf("past tolerance should fail: %v", failures)
	}
}

func fp(v float64) *float64 { return &v }

// TestCompareAllocGuard pins the allocs/op rules: any allocation on a
// 0-alloc baseline fails, >tolerance growth on a non-zero baseline fails,
// within-tolerance growth passes, and benchmarks lacking the field on
// either side are judged on ns/op alone.
func TestCompareAllocGuard(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: fp(0)},
		{Name: "BenchmarkFew", NsPerOp: 100, AllocsPerOp: fp(8)},
		{Name: "BenchmarkGrow", NsPerOp: 100, AllocsPerOp: fp(8)},
		{Name: "BenchmarkNoField", NsPerOp: 100},
	}
	current := []Result{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: fp(1)},    // 0 → 1: fail
		{Name: "BenchmarkFew", NsPerOp: 100, AllocsPerOp: fp(9)},     // +12.5%: pass
		{Name: "BenchmarkGrow", NsPerOp: 100, AllocsPerOp: fp(11)},   // +37.5%: fail
		{Name: "BenchmarkNoField", NsPerOp: 100, AllocsPerOp: fp(5)}, // baseline lacks field: skip
	}
	_, failures := compare(baseline, current, 0.25)
	joined := strings.Join(failures, "\n")
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want zero-baseline + growth", failures)
	}
	if !strings.Contains(joined, "BenchmarkZero") || !strings.Contains(joined, "BenchmarkGrow") {
		t.Fatalf("failures = %v", failures)
	}
	if strings.Contains(joined, "BenchmarkFew") || strings.Contains(joined, "BenchmarkNoField") {
		t.Fatalf("alloc guard over-triggered: %v", failures)
	}
}

// TestCompareSuffixAsymmetry: baselines recorded on a single-core machine
// carry no -N procs suffix while CI runs do — and a trailing number can be
// a real sub-benchmark parameter, so tenants-1 must not swallow
// tenants-1000 when matching across the two shapes.
func TestCompareSuffixAsymmetry(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkFleetThroughput/tenants-1", NsPerOp: 146},
		{Name: "BenchmarkFleetThroughput/tenants-1000", NsPerOp: 155},
	}
	current := []Result{
		{Name: "BenchmarkFleetThroughput/tenants-1-4", NsPerOp: 150},
		{Name: "BenchmarkFleetThroughput/tenants-1000-4", NsPerOp: 300}, // +94%
	}
	report, failures := compare(baseline, current, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "tenants-1000") {
		t.Fatalf("failures = %v, want exactly the tenants-1000 regression", failures)
	}
	for _, line := range report {
		if strings.Contains(line, "MISSING") || strings.Contains(line, "NEW") {
			t.Fatalf("suffix asymmetry broke matching:\n%s", strings.Join(report, "\n"))
		}
	}
	// And the same-shape direction (suffixed baseline, bare current).
	_, failures = compare(current, baseline, 0.25)
	if len(failures) != 0 {
		t.Fatalf("reverse direction failures = %v (current faster than baseline everywhere)", failures)
	}
}

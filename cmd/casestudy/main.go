// Command casestudy reproduces the paper's Sect. 3.3 case study: it
// simulates weeks of telecom SCP operation, trains the HSMM and UBF failure
// predictors plus one baseline per taxonomy branch, and prints their
// prediction quality (precision, recall, fpr, F-measure, AUC).
//
// Usage:
//
//	casestudy [-seed 7] [-train 14] [-test 7] [-workers 0] [-replicates 1]
//	          [-leadtimes 150,300,600] [-pwa] [-selection] [-meta]
//	          [-log-format text|json]
//
// -pwa enables the Probabilistic Wrapper Approach for UBF variable
// selection; -selection runs the E8 strategy comparison; -meta runs the E11
// stacked-generalization experiment. -workers bounds the parallel stages
// (0 = all cores); -replicates > 1 runs seed-replicated experiments in
// parallel; -leadtimes sweeps the prediction horizon over one simulation.
//
// Progress goes to stderr as structured logs (-log-format selects the
// handler); result tables and TSV stay on stdout, so piping output into
// analysis tooling keeps working.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		os.Exit(1)
	}
}

func run() error {
	defaults := experiments.DefaultCaseStudyConfig()
	seed := flag.Int64("seed", defaults.Seed, "simulation seed")
	train := flag.Float64("train", defaults.TrainDays, "training horizon [days]")
	test := flag.Float64("test", defaults.TestDays, "evaluation horizon [days]")
	pwa := flag.Bool("pwa", false, "select UBF variables with PWA")
	selection := flag.Bool("selection", false, "run the E8 selection-strategy comparison")
	metaExp := flag.Bool("meta", false, "run the E11 meta-learning experiment")
	diagnosis := flag.Bool("diagnosis", false, "run the E14 pre-failure diagnosis experiment")
	roc := flag.Bool("roc", false, "print the full ROC curves as TSV")
	workers := flag.Int("workers", 0, "worker bound for parallel stages (0 = all cores)")
	replicates := flag.Int("replicates", 1, "seed replicates to run in parallel")
	leadTimes := flag.String("leadtimes", "", "comma-separated lead times [s] to sweep over one simulation")
	logFormat := flag.String("log-format", "text", "progress log format: text|json")
	flag.Parse()
	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	cfg := defaults
	cfg.Seed = *seed
	cfg.TrainDays = *train
	cfg.TestDays = *test
	cfg.UsePWA = *pwa
	cfg.Workers = *workers

	if *leadTimes != "" {
		leads, err := parseFloats(*leadTimes)
		if err != nil {
			return fmt.Errorf("-leadtimes: %w", err)
		}
		logger.Info("lead-time sweep starting",
			"lead_times", *leadTimes, "seed", cfg.Seed, "workers", *workers)
		points, err := experiments.RunLeadTimeSweep(cfg, leads, *workers)
		if err != nil {
			return err
		}
		for _, pt := range points {
			rows := make([]experiments.Row, 0, len(pt.Result.Predictors))
			for _, p := range pt.Result.Predictors {
				rows = append(rows, p.Row())
			}
			experiments.Fprint(os.Stdout, fmt.Sprintf("lead time %gs", pt.LeadTime), rows)
		}
		return nil
	}
	if *replicates > 1 {
		logger.Info("replicated case study starting",
			"replicates", *replicates, "base_seed", cfg.Seed, "workers", *workers)
		results, err := experiments.RunCaseStudySweep(
			experiments.ReplicateConfigs(cfg, *replicates), *workers)
		if err != nil {
			return err
		}
		for i, res := range results {
			rows := make([]experiments.Row, 0, len(res.Predictors))
			for _, p := range res.Predictors {
				rows = append(rows, p.Row())
			}
			experiments.Fprint(os.Stdout, fmt.Sprintf("replicate %d (seed %d)", i, cfg.Seed+int64(i)), rows)
		}
		return nil
	}

	logger.Info("case study starting",
		"seed", cfg.Seed, "train_days", cfg.TrainDays, "test_days", cfg.TestDays,
		"pwa", cfg.UsePWA, "workers", cfg.Workers)
	res, err := experiments.RunCaseStudy(cfg)
	if err != nil {
		return err
	}
	logger.Info("case study complete",
		"train_failures", res.TrainFailures, "test_failures", res.TestFailures,
		"evaluation_points", res.EvalPoints)
	rows := make([]experiments.Row, 0, len(res.Predictors))
	for _, p := range res.Predictors {
		rows = append(rows, p.Row())
	}
	experiments.Fprint(os.Stdout, "Sect. 3.3 results (paper: HSMM p=0.70 r=0.62 fpr=0.016 AUC=0.873; UBF AUC=0.846)", rows)
	if len(res.SelectedVariables) > 0 {
		logger.Info("PWA variable selection", "selected", fmt.Sprint(res.SelectedVariables))
	}

	if *roc {
		for _, p := range res.Predictors {
			fmt.Printf("== ROC %s ==\nthreshold\tfpr\ttpr\n", p.Name)
			for _, pt := range p.ROC {
				fmt.Printf("%g\t%.5f\t%.5f\n", pt.Threshold, pt.FPR, pt.TPR)
			}
		}
	}
	if *selection {
		logger.Info("selection comparison starting")
		sel, err := experiments.RunSelectionComparison(cfg)
		if err != nil {
			return err
		}
		experiments.Fprint(os.Stdout, "E8: variable-selection strategies", sel.Rows())
		for _, s := range sel.Strategies {
			fmt.Printf("  %-10s -> %v\n", s.Strategy, s.Selected)
		}
	}
	if *metaExp {
		logger.Info("meta-learning experiment starting")
		m, err := experiments.RunMetaLearning(cfg)
		if err != nil {
			return err
		}
		experiments.Fprint(os.Stdout, "E11: stacked generalization across layers", m.Rows())
		fmt.Printf("combiner weights: %v\n", m.Weights)
	}
	if *diagnosis {
		logger.Info("diagnosis experiment starting")
		d, err := experiments.RunDiagnosis(cfg)
		if err != nil {
			return err
		}
		experiments.Fprint(os.Stdout, "E14: pre-failure root-cause diagnosis", d.Rows())
	}
	return nil
}

// newLogger builds the stderr progress logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

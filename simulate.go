package pfm

import (
	"repro/internal/checkpoint"
	"repro/internal/scp"
)

// SCPConfig parameterizes the simulated telecom Service Control Point —
// the reproduction of the paper's case-study system (Sect. 3.3).
type SCPConfig = scp.Config

// SCP is the simulated telecom platform. It emits error logs and SAR
// monitoring variables, evaluates the Eq. 2 failure specification, and
// implements ActionTarget so the MEA loop can steer it.
type SCP = scp.System

// SCPFailure documents one service failure and its repair.
type SCPFailure = scp.FailureRecord

// DefaultSCPConfig returns the calibrated simulator configuration.
func DefaultSCPConfig() SCPConfig { return scp.DefaultConfig() }

// NewSCP builds a simulated SCP on its own simulation engine.
func NewSCP(cfg SCPConfig) (*SCP, error) { return scp.New(cfg) }

// --- checkpointing (prepared repair, Fig. 8) --------------------------------

// CheckpointStore keeps recovery points in time order.
type CheckpointStore = checkpoint.Store

// Checkpoint is one saved recovery point.
type Checkpoint = checkpoint.Checkpoint

// RecoveryParams quantifies the Fig. 8 time-to-repair factors.
type RecoveryParams = checkpoint.RecoveryParams

// TTRBreakdown decomposes one recovery into its Fig. 8 factors.
type TTRBreakdown = checkpoint.TTRBreakdown

// NewCheckpointStore returns a store with the implicit initial checkpoint.
func NewCheckpointStore() *CheckpointStore { return checkpoint.NewStore() }

// Recover computes the TTR of a failure restored from the latest
// checkpoint, prepared or not (Fig. 8).
func Recover(store *CheckpointStore, p RecoveryParams, failTime float64, prepared bool) (TTRBreakdown, error) {
	return checkpoint.Recover(store, p, failTime, prepared)
}

package pfm_test

import (
	"fmt"

	pfm "repro"
)

// The Section 5 model in three lines: how much does proactive fault
// management improve availability for the paper's Table 2 predictor?
func Example() {
	params := pfm.DefaultModelParams()
	result, err := pfm.RunModelExperiment(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("availability without PFM: %.4f\n", result.BaselineAvail)
	fmt.Printf("availability with PFM:    %.4f\n", result.Availability)
	fmt.Printf("unavailability ratio:     %.3f (Eq. 14, paper: ≈0.488)\n",
		result.UnavailabilityRatio)
	// Output:
	// availability without PFM: 0.9542
	// availability with PFM:    0.9776
	// unavailability ratio:     0.489 (Eq. 14, paper: ≈0.488)
}

// The Fig. 8 arithmetic: how much time-to-repair does prediction-driven
// preparation save?
func ExampleRecover() {
	params := pfm.RecoveryParams{
		RepairTime:         600, // boot the cold spare
		PreparedRepairTime: 300, // spare prewarmed on the warning
		RecomputeFactor:    0.8,
	}
	// Classical: the last periodic checkpoint is 240 s old.
	classical := pfm.NewCheckpointStore()
	if err := classical.Save(pfm.Checkpoint{Time: 760}); err != nil {
		fmt.Println("error:", err)
		return
	}
	ttr, err := pfm.Recover(classical, params, 1000, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("classical TTR: %.0f s\n", ttr.Total())

	// PFM: a warning at t=980 saved a checkpoint and prewarmed the spare.
	prepared := pfm.NewCheckpointStore()
	if err := prepared.Save(pfm.Checkpoint{Time: 980, Prepared: true}); err != nil {
		fmt.Println("error:", err)
		return
	}
	ttr, err = pfm.Recover(prepared, params, 1000, true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("prediction-driven TTR: %.0f s\n", ttr.Total())
	// Output:
	// classical TTR: 792 s
	// prediction-driven TTR: 316 s
}

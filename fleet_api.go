package pfm

// Facade over internal/fleet: the multi-tenant fleet runtime that
// multiplexes thousands of logical MEA runtimes — per-tenant engines,
// layers, and quality ledgers — over one shared substrate (consistent-hash
// ingest shards, one evaluation pool, batched cross-tenant scoring, one
// observability plane with the aggregate /fleet endpoint). See cmd/pfmd
// -fleet for a complete deployment.

import (
	"context"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Fleet is the multi-tenant MEA runtime. Construct with NewFleet, drive
// with Start/Ingest (or PumpFleet), observe via Handler or Serve, finish
// with Stop.
type Fleet = fleet.Fleet

// FleetConfig parameterizes a fleet.
type FleetConfig = fleet.Config

// FleetTenant registers one tenant (ID + rollup criticality).
type FleetTenant = fleet.TenantSpec

// FleetEvent is one tenant-labeled unit of fleet ingest.
type FleetEvent = fleet.Event

// FleetLayer is a prediction-layer template shared across tenants; supply
// ScoreBatch to score whole tenant chunks in one call.
type FleetLayer = fleet.LayerTemplate

// FleetRecord is one trace record: an event or a ground-truth failure mark.
type FleetRecord = fleet.Record

// FleetSource yields trace records (io.EOF at end): NewFleetSliceSource,
// fleet.TailSource (text line protocol), or fleet.Reader (binary wire
// format).
type FleetSource = fleet.Source

// FleetRollup is the criticality-weighted fleet aggregate served at /fleet.
type FleetRollup = fleet.RollupView

// FleetTenantView is one tenant's row in the /fleet listing.
type FleetTenantView = fleet.TenantView

// ScopedLedger keeps per-tenant prediction-quality journals under a
// cardinality cap; tenants past the cap share one overflow scope.
type ScopedLedger = obs.ScopedLedger

// ScopedRecorder keeps per-tenant flight recorders under the same
// cardinality-cap discipline; tenants past the cap share one overflow
// recorder. Pass one in FleetConfig to enable the fleet /incidents plane.
type ScopedRecorder = obs.ScopedRecorder

// NewFleet assembles a fleet (not yet running; call Start).
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// NewScopedLedger builds a scoped prediction-quality ledger with at most
// maxScopes dedicated per-tenant journals.
func NewScopedLedger(cfg LedgerConfig, maxScopes int, layerNames ...string) (*ScopedLedger, error) {
	return obs.NewScopedLedger(cfg, maxScopes, layerNames...)
}

// NewScopedRecorder builds a scoped flight recorder with at most maxScopes
// dedicated per-tenant recorders; cfg is the per-scope template.
func NewScopedRecorder(cfg RecorderConfig, maxScopes int) (*ScopedRecorder, error) {
	return obs.NewScopedRecorder(cfg, maxScopes)
}

// PumpFleet drains a trace source into the fleet (events via Ingest,
// failure marks via RecordFailure).
func PumpFleet(ctx context.Context, f *Fleet, src FleetSource) (int, error) {
	return fleet.Pump(ctx, f, src)
}

// NewFleetSliceSource replays an in-memory record slice.
func NewFleetSliceSource(recs []FleetRecord) FleetSource { return fleet.NewSliceSource(recs) }

// FleetListenSource is a FleetSource fed by TCP connections speaking the
// PFW1 wire format or the text line protocol (auto-detected per
// connection). Close it to stop accepting and unblock PumpFleet.
type FleetListenSource = fleet.ListenSource

// ListenFleet opens a TCP ingest listener on addr; pump the returned
// source into a fleet with PumpFleet. See pfmd -listen / loggen -send.
func ListenFleet(addr string) (*FleetListenSource, error) { return fleet.Listen(addr) }

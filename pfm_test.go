package pfm

// Integration tests over the public facade: everything a downstream user
// touches — simulate, extract, train, persist, predict, act — exercised
// through the root package only.

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulation")
	}
	// Simulate a week of telecom operation.
	sys, err := NewSCP(DefaultSCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(7 * 86400); err != nil {
		t.Fatal(err)
	}
	failures := sys.FailureTimes()
	if len(failures) < 10 {
		t.Fatalf("only %d failures in a week", len(failures))
	}

	// Extract Fig. 6 sequences and train the HSMM classifier.
	fail, nonFail, err := ExtractSequences(sys.Log(), failures, ExtractConfig{
		DataWindow:       300,
		LeadTime:         300,
		MinEvents:        2,
		NonFailureStride: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fail) == 0 || len(nonFail) == 0 {
		t.Fatalf("extraction yielded %d/%d sequences", len(fail), len(nonFail))
	}
	clf, err := TrainHSMMClassifier(fail, nonFail, HSMMConfig{States: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Persist and restore the classifier; scores must survive exactly.
	var buf bytes.Buffer
	if err := SaveHSMMClassifier(&buf, clf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadHSMMClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	window := SlidingWindow(sys.Log(), failures[0]-300, 300)
	a, err := clf.Score(window)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Score(window)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("persisted classifier drifted: %g vs %g", a, b)
	}

	// Score a grid and evaluate with the Sect. 3.3 metrics.
	var scored []Scored
	for tt := 600.0; tt < 6.5*86400; tt += 600 {
		s, err := restored.Score(SlidingWindow(sys.Log(), tt, 300))
		if err != nil {
			t.Fatal(err)
		}
		actual := false
		for _, f := range failures {
			if f > tt && f <= tt+600 {
				actual = true
				break
			}
		}
		scored = append(scored, Scored{Score: s, Actual: actual})
	}
	curve, err := ROC(scored)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(curve)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.6 {
		t.Fatalf("facade-trained AUC = %.3f", auc)
	}
	if _, _, err := MaxFMeasure(scored); err != nil {
		t.Fatal(err)
	}
	if _, err := Breakeven(scored); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModel(t *testing.T) {
	params := DefaultModelParams()
	res, err := RunModelExperiment(params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.UnavailabilityRatio-0.488) > 0.01 {
		t.Fatalf("Eq. 14 via facade = %.4f", res.UnavailabilityRatio)
	}
	rel, haz, err := Fig10Curves(params, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 11 || len(haz) != 11 {
		t.Fatalf("curve lengths %d/%d", len(rel), len(haz))
	}
}

func TestFacadeMEALoop(t *testing.T) {
	sys, err := NewSCP(DefaultSCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	layer := &Layer{
		Name:      "load",
		Evaluate:  func(float64) (float64, error) { return sys.Utilization(), nil },
		Threshold: 0.85,
	}
	shed, err := NewLoadLowering(sys, ActionParams{Cost: 0.2, SuccessProb: 0.9}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	selector, err := NewActionSelector(DefaultObjectiveWeights())
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewMEAEngine(sys.Engine(), []*Layer{layer}, nil, selector,
		[]*Action{shed}, nil,
		MEAConfig{EvalInterval: 120, LeadTime: 300, WarnThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(86400); err != nil {
		t.Fatal(err)
	}
	report := engine.Report()
	if len(report.Layers) != 1 || report.Layers[0] != "load" {
		t.Fatalf("report layers = %v", report.Layers)
	}
}

func TestFacadeDiagnosis(t *testing.T) {
	log := NewErrorLog()
	add := func(tt float64, comp string, typ int) {
		t.Helper()
		if err := log.Append(ErrorEvent{Time: tt, Component: comp, Type: typ, Severity: SeverityError, Message: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	// Failure at t=1000 preceded by db errors; background net noise.
	add(820, "db", 1)
	add(860, "db", 1)
	add(880, "db", 2)
	for tt := 2000.0; tt < 8000; tt += 300 {
		add(tt, "net", 8)
	}
	fail, nonFail, err := CollectDiagnosisWindows(log, []float64{1000}, ExtractConfig{
		DataWindow:       300,
		LeadTime:         100,
		MinEvents:        1,
		NonFailureStride: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := TrainDiagnoser(fail, nonFail, 1)
	if err != nil {
		t.Fatal(err)
	}
	suspects := d.Diagnose(log.Window(700, 1000))
	if len(suspects) == 0 || suspects[0].Component != "db" {
		t.Fatalf("suspects = %+v", suspects)
	}
}

func TestFacadeChangeDetection(t *testing.T) {
	c, err := NewCUSUM(0, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	trigger, err := NewRetrainTrigger(c, func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		trigger.Observe(0)
	}
	if fired != 0 {
		t.Fatal("false alarm")
	}
	for i := 0; i < 20; i++ {
		trigger.Observe(3)
	}
	if fired == 0 {
		t.Fatal("drift not detected via facade")
	}
}

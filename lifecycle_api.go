package pfm

// Facade over internal/lifecycle and the core predictor handle: versioned
// layer predictors with drift-triggered retraining, shadow validation and
// zero-downtime hot-swap. Wire a LifecycleManager into RuntimeConfig
// (field Lifecycle, requires Ledger) and the runtime captures retrain
// windows inside each cycle's evaluation exclusion, journals shadow
// candidates under "<layer>#candidate", and promotes or rolls back from
// the live F-measure. See cmd/pfmd's -hotswap flag for a deployment.

import (
	"repro/internal/core"
	"repro/internal/lifecycle"
)

// LayerPredictor is a layer's failure predictor as a first-class value
// behind the layer's atomically swappable, versioned handle.
type LayerPredictor = core.LayerPredictor

// PredictorFunc adapts a bare evaluate closure to LayerPredictor.
type PredictorFunc = core.PredictorFunc

// Retrainer is the optional retraining capability of a LayerPredictor:
// CaptureWindow under the evaluation exclusion, Retrain off the hot path.
type Retrainer = core.Retrainer

// LifecycleManager drives drift detection, background retraining, shadow
// validation and hot-swaps for a set of layers. Construct with
// NewLifecycleManager and pass via RuntimeConfig.Lifecycle.
type LifecycleManager = lifecycle.Manager

// LifecycleConfig tunes the lifecycle manager (zero values = defaults).
type LifecycleConfig = lifecycle.Config

// LifecycleEvent is one lifecycle transition (drift, retrain, shadow,
// swap, confirm, rollback), delivered to Subscribe observers in order.
type LifecycleEvent = lifecycle.Event

// LifecycleLayerStatus is one layer's lifecycle view (state, serving
// version, episode counters), as served by the runtime's /layers endpoint.
type LifecycleLayerStatus = lifecycle.LayerStatus

// NewLifecycleManager builds a lifecycle manager for the given layers
// against the live prediction ledger the runtime journals to.
func NewLifecycleManager(layers []*Layer, led *Ledger, cfg LifecycleConfig) (*LifecycleManager, error) {
	return lifecycle.NewManager(layers, led, cfg)
}

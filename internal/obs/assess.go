package obs

import (
	"fmt"

	"repro/internal/pfmmodel"
	"repro/internal/predict"
)

// ModelFigures are the Section 5 CTMC outputs for one parameterization.
type ModelFigures struct {
	Precision           float64 `json:"precision"`
	Recall              float64 `json:"recall"`
	FPR                 float64 `json:"fpr"`
	Availability        float64 `json:"availability"`         // Eq. 8
	UnavailabilityRatio float64 `json:"unavailability_ratio"` // Eq. 14
	MTTF                float64 `json:"mttf_seconds"`
	MedianTTF           float64 `json:"median_ttf_seconds"`
	HazardAtMTTF        float64 `json:"hazard_at_mttf"` // h(MTTF), Eq. 10
}

// ModelAssessment compares the CTMC driven by measured prediction quality
// against the paper's reference (Table 2) parameterization.
type ModelAssessment struct {
	Measured  ModelFigures `json:"measured"`
	Reference ModelFigures `json:"reference"`
	// Deltas, measured − reference (ratio fields: measured/reference − 1).
	AvailabilityDelta        float64 `json:"availability_delta"`
	UnavailabilityRatioDelta float64 `json:"unavailability_ratio_delta"`
	MTTFRelative             float64 `json:"mttf_relative"` // measured/reference − 1
}

// figures evaluates the model at one parameter set.
func figures(p pfmmodel.Params) (ModelFigures, error) {
	f := ModelFigures{Precision: p.Precision, Recall: p.Recall, FPR: p.FPR}
	var err error
	if f.Availability, err = p.Availability(); err != nil {
		return f, err
	}
	if f.UnavailabilityRatio, err = p.UnavailabilityRatio(); err != nil {
		return f, err
	}
	m, err := p.ReliabilityModel()
	if err != nil {
		return f, err
	}
	if f.MTTF, err = m.Mean(); err != nil {
		return f, err
	}
	if f.MedianTTF, err = m.Quantile(0.5); err != nil {
		return f, err
	}
	if f.HazardAtMTTF, err = m.Hazard(f.MTTF); err != nil {
		return f, err
	}
	return f, nil
}

// AssessModel substitutes the measured contingency table into the Section 5
// CTMC via pfmmodel.FromMeasured and reports measured availability, hazard,
// and time-to-failure next to the reference (base, normally Table 2 /
// DefaultParams) predictions. It fails when the table cannot parameterize
// the chain (no warnings, no failures, or fpr on a boundary).
func AssessModel(c predict.ContingencyTable, base pfmmodel.Params) (ModelAssessment, error) {
	measured, err := pfmmodel.FromMeasured(c, base)
	if err != nil {
		return ModelAssessment{}, err
	}
	var a ModelAssessment
	if a.Measured, err = figures(measured); err != nil {
		return ModelAssessment{}, fmt.Errorf("measured model: %w", err)
	}
	if a.Reference, err = figures(base); err != nil {
		return ModelAssessment{}, fmt.Errorf("reference model: %w", err)
	}
	a.AvailabilityDelta = a.Measured.Availability - a.Reference.Availability
	a.UnavailabilityRatioDelta = a.Measured.UnavailabilityRatio - a.Reference.UnavailabilityRatio
	if a.Reference.MTTF != 0 {
		a.MTTFRelative = a.Measured.MTTF/a.Reference.MTTF - 1
	}
	return a, nil
}

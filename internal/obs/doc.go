// Package obs is the runtime's end-to-end observability layer: span
// tracing for the streaming Monitor–Evaluate–Act pipeline and an online
// prediction-quality ledger.
//
// # Tracer
//
// Tracer records one trace per pipeline event — monotonic-clock spans for
// the ingest admission, queue residency, state apply, evaluation wait, the
// covering MEA cycle's layer scoring, and the serialized act decision —
// into a fixed ring with zero allocations on the hot path (the same
// discipline as the allocation-free HSMM/UBF kernels). Producers carry raw
// stamps through the pipeline and publish a whole trace record with one
// uncontended mutex acquisition; /tracez and `pfmd -trace-dump` render the
// slowest recent end-to-end traces with per-stage timings.
//
// # Ledger
//
// Ledger journals every (prediction, lead time, layer) the Act stage emits
// and every ground-truth failure observed on the mirrored stream, and
// matches them within the Δtl/Δtp windows exactly as Sect. 3.3 defines the
// TP/FP/FN/TN contingency table: a prediction made at time t is a positive
// match iff a failure occurs in (t, t+Δtl+Δtp] — the identical rule the
// offline evaluator in internal/experiments applies to its labeled grid,
// so live and offline counts agree exactly on the same inputs. Rolling and
// cumulative precision/recall/fpr/F-measure per layer feed /metrics
// gauges and the machine-readable /ledger endpoint.
//
// # Model assessment
//
// AssessModel substitutes the ledger's measured prediction quality into
// the paper's Section 5 CTMC (internal/pfmmodel → internal/ctmc), so a
// deployment can report *measured* availability, hazard, and time-to-
// failure deltas next to the Table 2 predictions instead of trusting the
// offline scores.
package obs

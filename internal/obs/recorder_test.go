package obs

import (
	"math"
	"strings"
	"testing"

	"repro/internal/diagnose"
	"repro/internal/eventlog"
)

func testRecorder(t *testing.T, cfg RecorderConfig) *Recorder {
	t.Helper()
	if cfg.Layers == nil {
		cfg.Layers = []string{"a", "b"}
	}
	r, err := NewRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecorderConfigValidation(t *testing.T) {
	if _, err := NewRecorder(RecorderConfig{}); err == nil {
		t.Fatal("want error for no layers")
	}
	if _, err := NewRecorder(RecorderConfig{Layers: []string{"a"}, Window: -1}); err == nil {
		t.Fatal("want error for negative window")
	}
	if _, err := NewRecorder(RecorderConfig{Layers: []string{"a"}, WarnThreshold: math.NaN()}); err == nil {
		t.Fatal("want error for NaN threshold")
	}
	r := testRecorder(t, RecorderConfig{Layers: []string{"a"}})
	cfg := r.Config()
	if cfg.Window != defaultRecorderWindow || cfg.ScoreDepth != defaultRecorderDepth ||
		cfg.Refractory != 2*defaultRecorderWindow || cfg.MaxBundles != defaultRecorderMaxBundles {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestRecorderWarnTrigger: a warning at/above the threshold produces one
// bundle at the next Collect; sub-threshold warnings do not fire.
func TestRecorderWarnTrigger(t *testing.T) {
	r := testRecorder(t, RecorderConfig{WarnThreshold: 0.5, Window: 10})
	r.Observe(1, []float64{0.2, 0.1}, CycleObservation{Warned: true, Confidence: 0.4})
	r.Collect()
	if got := len(r.Bundles()); got != 0 {
		t.Fatalf("sub-threshold warn captured %d bundles", got)
	}
	r.Observe(2, []float64{0.9, 0.8}, CycleObservation{Warned: true, Confidence: 0.9, LayerVersions: []uint64{3, 4}})
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", r.Pending())
	}
	r.Collect()
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Trigger != TriggerWarn || b.Time != 2 || b.Confidence != 0.9 {
		t.Fatalf("bundle = %+v", b)
	}
	if b.EventsFrom != -8 || b.EventsTo != 2 {
		t.Fatalf("window = [%g, %g], want [-8, 2]", b.EventsFrom, b.EventsTo)
	}
	if len(b.LayerVersions) != 2 || b.LayerVersions[0] != 3 {
		t.Fatalf("versions = %v", b.LayerVersions)
	}
	// Score history retains both observed cycles, oldest first.
	if len(b.Scores) != 2 || b.Scores[0].Time != 1 || b.Scores[1].Scores[0] != 0.9 {
		t.Fatalf("score history = %+v", b.Scores)
	}
	if r.Captured(TriggerWarn) != 1 || r.Captured(TriggerAct) != 0 {
		t.Fatalf("captured warn=%d act=%d", r.Captured(TriggerWarn), r.Captured(TriggerAct))
	}
	if got := r.Bundle(b.ID); got != b {
		t.Fatalf("Bundle(%q) = %v", b.ID, got)
	}
}

// TestRecorderRefractory: within the dead time repeated triggers of one
// kind are suppressed, other kinds still fire, and the gate reopens.
func TestRecorderRefractory(t *testing.T) {
	r := testRecorder(t, RecorderConfig{Window: 10, Refractory: 100})
	warned := CycleObservation{Warned: true, Confidence: 1}
	r.Observe(1, []float64{1, 1}, warned)
	r.Observe(2, []float64{1, 1}, warned)
	r.Observe(3, []float64{1, 1}, CycleObservation{Warned: true, Confidence: 1, Executed: true, Action: "restart"})
	r.Collect()
	if got := len(r.Bundles()); got != 2 { // one warn + one act
		t.Fatalf("bundles = %d, want 2", got)
	}
	if r.Suppressed() != 2 { // warn at t=2 and t=3
		t.Fatalf("suppressed = %d, want 2", r.Suppressed())
	}
	r.Observe(102, []float64{1, 1}, warned) // past t=1+100
	r.Collect()
	if got := r.Captured(TriggerWarn); got != 2 {
		t.Fatalf("warn captures after refractory = %d, want 2", got)
	}
}

// TestRecorderBurnRate: the burn-rate trigger needs an armed floor, enough
// resolved predictions, and a rolling combined F below the floor.
func TestRecorderBurnRate(t *testing.T) {
	led, err := NewLedger(LedgerConfig{LeadTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := testRecorder(t, RecorderConfig{BurnRateFloor: 0.5, BurnRateMinResolved: 3, Ledger: led})
	// Three resolved false positives: F = 0 < 0.5.
	for i := 0; i < 3; i++ {
		led.RecordPrediction(CombinedLayer, float64(i), true, 1)
	}
	led.Advance(10)
	r.Observe(11, []float64{0, 0}, CycleObservation{})
	r.Collect()
	if got := r.Captured(TriggerBurnRate); got != 1 {
		t.Fatalf("burn-rate captures = %d, want 1", got)
	}
	// Below the resolved floor nothing fires.
	led2, _ := NewLedger(LedgerConfig{LeadTime: 1})
	r2 := testRecorder(t, RecorderConfig{BurnRateFloor: 0.5, BurnRateMinResolved: 5, Ledger: led2})
	led2.RecordPrediction(CombinedLayer, 0, true, 1)
	led2.Advance(10)
	r2.Observe(11, []float64{0, 0}, CycleObservation{})
	r2.Collect()
	if got := r2.Captured(TriggerBurnRate); got != 0 {
		t.Fatalf("burn-rate fired with %d resolved", 1)
	}
}

// TestRecorderExternalTriggerAndEvents: lifecycle-style external triggers
// capture the event-log window, the MaxEvents cap keeps the newest
// events, and EventsTotal reports the uncapped population.
func TestRecorderExternalTriggerAndEvents(t *testing.T) {
	l := eventlog.NewLog()
	for i := 0; i < 20; i++ {
		if err := l.Append(eventlog.Event{Time: float64(i), Component: "c", Type: i, Severity: eventlog.SeverityError}); err != nil {
			t.Fatal(err)
		}
	}
	r := testRecorder(t, RecorderConfig{Window: 100, MaxEvents: 5, Log: l,
		Diagnose: func(from, to float64) []diagnose.Suspect {
			return []diagnose.Suspect{{Component: "c", Score: from + to, Events: 1}}
		}})
	r.TriggerEvent(TriggerDrift, 19, "errrate")
	r.Collect()
	b := r.Bundles()[0]
	if b.Trigger != TriggerDrift || b.Detail != "errrate" {
		t.Fatalf("bundle = %+v", b)
	}
	if b.EventsTotal != 20 {
		t.Fatalf("events total = %d, want 20", b.EventsTotal)
	}
	if len(b.Events) != 5 || b.Events[0].Type != 15 || b.Events[4].Type != 19 {
		t.Fatalf("capped events = %+v", b.Events)
	}
	if len(b.Suspects) != 1 || b.Suspects[0].Component != "c" {
		t.Fatalf("suspects = %+v", b.Suspects)
	}
}

// TestRecorderDeterministicIDs: the same trigger sequence reproduces the
// same bundle IDs and fingerprints; different scopes never collide.
func TestRecorderDeterministicIDs(t *testing.T) {
	run := func(scope string) []string {
		r := testRecorder(t, RecorderConfig{Scope: scope, Window: 10})
		r.Observe(1, []float64{0.9, 0.8}, CycleObservation{Warned: true, Confidence: 0.9})
		r.Observe(2, []float64{0.9, 0.8}, CycleObservation{Executed: true, Action: "restart"})
		r.Collect()
		var fps []string
		for _, b := range r.Bundles() {
			fps = append(fps, b.Fingerprint())
		}
		return fps
	}
	a1, a2, b1 := run("a"), run("a"), run("b")
	if strings.Join(a1, "\n") != strings.Join(a2, "\n") {
		t.Fatalf("same scope, different fingerprints:\n%v\nvs\n%v", a1, a2)
	}
	if len(a1) != 2 || a1[0] == a1[1] {
		t.Fatalf("fingerprints not distinct per trigger: %v", a1)
	}
	if a1[0] == b1[0] {
		t.Fatal("different scopes produced the same bundle identity")
	}
}

// TestRecorderEviction: the bundle ring keeps the newest MaxBundles.
func TestRecorderEviction(t *testing.T) {
	r := testRecorder(t, RecorderConfig{Window: 1, Refractory: 1e-9, MaxBundles: 3})
	for i := 1; i <= 5; i++ {
		r.Observe(float64(i), []float64{1, 1}, CycleObservation{Executed: true})
	}
	r.Collect()
	bundles := r.Bundles()
	if len(bundles) != 3 {
		t.Fatalf("retained = %d, want 3", len(bundles))
	}
	if bundles[0].Time != 3 || bundles[2].Time != 5 {
		t.Fatalf("retained times = %g..%g, want 3..5", bundles[0].Time, bundles[2].Time)
	}
}

// TestRecorderSubscribeFlush: subscribers see every bundle exactly once,
// whether delivered on a later Observe or by the shutdown Flush.
func TestRecorderSubscribeFlush(t *testing.T) {
	r := testRecorder(t, RecorderConfig{Window: 1, Refractory: 1e-9})
	var got []string
	r.Subscribe(func(b *IncidentBundle) { got = append(got, b.ID) })
	r.Observe(1, []float64{1, 1}, CycleObservation{Executed: true})
	r.Collect()
	r.Observe(2, []float64{0, 0}, CycleObservation{}) // delivery piggybacks here
	if len(got) != 1 {
		t.Fatalf("delivered = %d after observe, want 1", len(got))
	}
	r.Observe(3, []float64{1, 1}, CycleObservation{Executed: true})
	r.Flush() // captures the pending trigger and delivers it
	if len(got) != 2 {
		t.Fatalf("delivered = %d after flush, want 2", len(got))
	}
	if got[0] == got[1] {
		t.Fatal("duplicate delivery")
	}
}

// TestRecorderSteadyStateZeroAllocs pins the always-on cost: Observe with
// no trigger firing and Collect with nothing pending must not allocate.
func TestRecorderSteadyStateZeroAllocs(t *testing.T) {
	led, err := NewLedger(LedgerConfig{LeadTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := testRecorder(t, RecorderConfig{WarnThreshold: 0.5, BurnRateFloor: 0.1, Ledger: led})
	scores := []float64{0.1, 0.2}
	versions := []uint64{1, 1}
	now := 0.0
	if avg := testing.AllocsPerRun(1000, func() {
		now++
		r.Observe(now, scores, CycleObservation{Confidence: 0.1, LayerVersions: versions})
		r.Collect()
	}); avg != 0 {
		t.Fatalf("steady-state Observe+Collect allocates %.1f/op", avg)
	}
}

// TestScopedRecorderFold: the cardinality cap folds late scopes into the
// shared overflow recorder, mirroring ScopedLedger.
func TestScopedRecorderFold(t *testing.T) {
	sr, err := NewScopedRecorder(RecorderConfig{Layers: []string{"a"}, Window: 10, WarnThreshold: 0.9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScopedRecorder(RecorderConfig{Layers: []string{"a"}}, 0); err == nil {
		t.Fatal("want error for cap 0")
	}
	t1 := sr.Scope("t1", RecorderScopeConfig{WarnThreshold: 0.2})
	t2 := sr.Scope("t2", RecorderScopeConfig{})
	t3 := sr.Scope("t3", RecorderScopeConfig{})
	t4 := sr.Scope("t4", RecorderScopeConfig{})
	if t1 == t2 || t3 != t4 {
		t.Fatal("fold discipline broken")
	}
	if sr.Scope("t1", RecorderScopeConfig{}) != t1 {
		t.Fatal("re-registration must return the existing recorder")
	}
	if !sr.Dedicated("t1") || sr.Dedicated("t3") || sr.Folded() != 2 {
		t.Fatalf("dedicated/folded bookkeeping wrong: folded=%d", sr.Folded())
	}
	want := []string{"t1", "t2", OverflowScope}
	if got := sr.Scopes(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("scopes = %v, want %v", got, want)
	}
	// The per-scope warn override holds: 0.3 warns on t1 (threshold 0.2)
	// but not on t2 (template 0.9); the folded scope uses the template too.
	t1.Observe(1, []float64{1}, CycleObservation{Warned: true, Confidence: 0.3})
	t2.Observe(1, []float64{1}, CycleObservation{Warned: true, Confidence: 0.3})
	t3.Observe(1, []float64{1}, CycleObservation{Warned: true, Confidence: 0.95, Detail: "t3"})
	sr.Collect()
	if got := sr.Captured(TriggerWarn); got != 2 {
		t.Fatalf("captured = %d, want 2 (t1 + overflow)", got)
	}
	all := sr.Bundles()
	if len(all) != 2 || all[0].Scope != "t1" || all[1].Scope != OverflowScope {
		t.Fatalf("bundles = %+v", all)
	}
	if sr.Bundle(all[1].ID) == nil {
		t.Fatal("cross-scope Bundle lookup failed")
	}
	// Subscribers apply to existing and future scopes.
	var seen int
	sr.Subscribe(func(*IncidentBundle) { seen++ })
	t5 := sr.Scope("t5", RecorderScopeConfig{}) // folds into overflow (already subscribed)
	_ = t5
	t1.Observe(200, []float64{1}, CycleObservation{Warned: true, Confidence: 1})
	sr.Flush()
	if seen != 1 {
		t.Fatalf("subscriber saw %d bundles, want 1", seen)
	}
}

// TestTracerNewestCompleteID: only complete traces count, and the newest
// wins.
func TestTracerNewestCompleteID(t *testing.T) {
	var nilTr *Tracer
	if nilTr.NewestCompleteID() != 0 {
		t.Fatal("nil tracer must report 0")
	}
	tr := NewTracer(8)
	if tr.NewestCompleteID() != 0 {
		t.Fatal("empty tracer must report 0")
	}
	id1 := tr.PublishApplied(0, "a", 0, 1, 2, 3, 4)
	tr.PublishDropped(0, "b", 0, 5, 6, 7)
	if tr.NewestCompleteID() != 0 {
		t.Fatal("applied/dropped traces must not count as complete")
	}
	tr.CompleteCycle(5, 6, 7, 8) // completes id1 (applied at 4 ≤ evalStart 5)
	if got := tr.NewestCompleteID(); got != id1 {
		t.Fatalf("newest complete = %d, want %d", got, id1)
	}
	id3 := tr.PublishApplied(0, "c", 0, 9, 10, 11, 12)
	tr.CompleteCycle(13, 14, 15, 16)
	if got := tr.NewestCompleteID(); got != id3 {
		t.Fatalf("newest complete = %d, want %d", got, id3)
	}
}

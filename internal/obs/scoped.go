package obs

import (
	"fmt"
	"sync"
)

// OverflowScope is the shared journal that absorbs every scope beyond the
// cardinality cap. Its quality figures are an aggregate approximation:
// predictions and failures of all folded scopes match against each other.
const OverflowScope = "~overflow"

// ScopedLedger multiplexes per-scope prediction-quality Ledgers — one per
// tenant in a fleet — under a single configuration, with a cardinality cap:
// the first MaxScopes scopes each get a dedicated journal (own failure
// stream, own per-layer rows), later scopes share the OverflowScope
// journal. The cap bounds memory and metric cardinality no matter how many
// tenants register; the paper's per-instance Sect. 3.3 accounting stays
// exact for every dedicated scope.
type ScopedLedger struct {
	mu        sync.Mutex
	cfg       LedgerConfig
	max       int
	layers    []string
	order     []string // dedicated scopes, registration order
	scopes    map[string]*Ledger
	overflow  *Ledger
	folded    int64 // scopes routed to the overflow journal
	watermark float64
	// retired totals keep Totals monotonic after Release drops a journal.
	retiredPred int64
	retiredFail int64
}

// NewScopedLedger builds a scoped ledger. maxScopes caps the number of
// dedicated per-scope journals (minimum 1); layerNames are pre-declared on
// every scope so quality rows exist before the first prediction.
func NewScopedLedger(cfg LedgerConfig, maxScopes int, layerNames ...string) (*ScopedLedger, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if maxScopes < 1 {
		return nil, fmt.Errorf("%w: scope cap %d (need >= 1)", ErrObs, maxScopes)
	}
	return &ScopedLedger{
		cfg:    cfg,
		max:    maxScopes,
		layers: append([]string(nil), layerNames...),
		scopes: make(map[string]*Ledger),
	}, nil
}

// Config returns the matching configuration shared by every scope.
func (s *ScopedLedger) Config() LedgerConfig { return s.cfg }

// MaxScopes returns the dedicated-journal cap.
func (s *ScopedLedger) MaxScopes() int { return s.max }

// Scope returns the named scope's journal, creating it on first use. Once
// the cap is reached, every new scope returns the shared overflow journal.
// The returned Ledger is safe for concurrent use like any other.
func (s *ScopedLedger) Scope(name string) *Ledger {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scopeLocked(name)
}

func (s *ScopedLedger) scopeLocked(name string) *Ledger {
	if led, ok := s.scopes[name]; ok {
		return led
	}
	if name != OverflowScope && len(s.order) < s.max {
		led, _ := NewLedger(s.cfg, s.layers...) // cfg already validated
		s.scopes[name] = led
		s.order = append(s.order, name)
		return led
	}
	if s.overflow == nil {
		s.overflow, _ = NewLedger(s.cfg, s.layers...)
		s.scopes[OverflowScope] = s.overflow
	}
	if name != OverflowScope {
		s.folded++
		s.scopes[name] = s.overflow
	}
	return s.overflow
}

// Dedicated reports whether the named scope owns its journal (false when it
// was folded into the overflow scope, or never seen).
func (s *ScopedLedger) Dedicated(name string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	led, ok := s.scopes[name]
	return ok && led != s.overflow
}

// Scopes returns the dedicated scope names in registration order, plus the
// OverflowScope last if any scope was folded.
func (s *ScopedLedger) Scopes() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.order...)
	if s.overflow != nil {
		out = append(out, OverflowScope)
	}
	return out
}

// Folded returns how many distinct scopes share the overflow journal.
func (s *ScopedLedger) Folded() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.folded
}

// Release retires the named scope (a removed tenant): its journal is
// dropped from Scopes and the cardinality cap slot is freed for a future
// scope. The journal's lifetime prediction/failure totals are retained so
// Totals stays monotonic. Releasing a folded scope decrements Folded; its
// rows stay merged in the overflow journal (the same aggregate
// approximation folding made on the way in). Releasing an unknown scope or
// the overflow scope is a no-op. Any *Ledger handle obtained earlier stays
// safe to use; its writes just no longer surface here.
func (s *ScopedLedger) Release(name string) {
	if s == nil || name == OverflowScope {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	led, ok := s.scopes[name]
	if !ok {
		return
	}
	delete(s.scopes, name)
	if led == s.overflow {
		s.folded--
		return
	}
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	snap := led.Snapshot()
	s.retiredPred += snap.Predictions
	s.retiredFail += snap.Failures
}

// Advance declares ground truth complete up to now on every scope. Call
// once per evaluation cycle; it fans out to each journal in registration
// order (plus the overflow journal).
func (s *ScopedLedger) Advance(now float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if now > s.watermark {
		s.watermark = now
	}
	leds := make([]*Ledger, 0, len(s.order)+1)
	for _, name := range s.order {
		leds = append(leds, s.scopes[name])
	}
	if s.overflow != nil {
		leds = append(leds, s.overflow)
	}
	s.mu.Unlock()
	for _, led := range leds {
		led.Advance(now)
	}
}

// Watermark returns the newest Advance time seen.
func (s *ScopedLedger) Watermark() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Totals sums journaled predictions and failures across every journal.
func (s *ScopedLedger) Totals() (predictions, failures int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	predictions, failures = s.retiredPred, s.retiredFail
	leds := make([]*Ledger, 0, len(s.order)+1)
	for _, name := range s.order {
		leds = append(leds, s.scopes[name])
	}
	if s.overflow != nil {
		leds = append(leds, s.overflow)
	}
	s.mu.Unlock()
	for _, led := range leds {
		snap := led.Snapshot()
		predictions += snap.Predictions
		failures += snap.Failures
	}
	return predictions, failures
}

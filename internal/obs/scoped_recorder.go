package obs

import (
	"fmt"
	"sort"
	"sync"
)

// RecorderScopeConfig carries the per-scope overrides a fleet applies on
// top of the template RecorderConfig when registering a tenant.
type RecorderScopeConfig struct {
	// WarnThreshold overrides the template's warn-trigger gate (fleets
	// weight it by tenant criticality); 0 keeps the template value.
	WarnThreshold float64
	// Ledger overrides the burn-rate/quality source with the scope's own
	// journal (typically ScopedLedger.Scope of the same name).
	Ledger *Ledger
	// Lifecycle overrides the lifecycle-state source for the scope.
	Lifecycle func() any
}

// ScopedRecorder multiplexes per-scope flight recorders — one per tenant
// in a fleet — under a single template configuration, with the same
// cardinality cap and overflow-fold discipline as ScopedLedger: the first
// MaxScopes scopes get a dedicated recorder (own ring, own refractory
// state, own bundles), later scopes share one overflow recorder, so
// bundle retention and metric cardinality stay bounded no matter how many
// tenants register.
type ScopedRecorder struct {
	mu       sync.Mutex
	cfg      RecorderConfig
	max      int
	order    []string // dedicated scopes, registration order
	scopes   map[string]*Recorder
	overflow *Recorder
	folded   int64
	subs     []func(*IncidentBundle) // applied to every scope, current and future
	// retired tallies keep Captured/Suppressed monotonic after Release.
	retiredCaptured   map[TriggerKind]int64
	retiredSuppressed int64
}

// NewScopedRecorder builds a scoped recorder around a template
// configuration (its Scope field is ignored; each scope stamps its own).
// maxScopes caps the dedicated recorders (minimum 1).
func NewScopedRecorder(cfg RecorderConfig, maxScopes int) (*ScopedRecorder, error) {
	if maxScopes < 1 {
		return nil, fmt.Errorf("%w: scope cap %d (need >= 1)", ErrObs, maxScopes)
	}
	cfg.Scope = ""
	if _, err := NewRecorder(cfg); err != nil { // validate + surface defaults early
		return nil, err
	}
	return &ScopedRecorder{cfg: cfg, max: maxScopes, scopes: make(map[string]*Recorder)}, nil
}

// Config returns the template configuration shared by every scope.
func (s *ScopedRecorder) Config() RecorderConfig { return s.cfg }

// MaxScopes returns the dedicated-recorder cap.
func (s *ScopedRecorder) MaxScopes() int { return s.max }

// Scope returns the named scope's recorder, creating it on first use with
// the given overrides. Once the cap is reached, every new scope returns
// the shared overflow recorder (whose triggers keep the template
// thresholds — folded tenants share its refractory budget too).
func (s *ScopedRecorder) Scope(name string, sc RecorderScopeConfig) *Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.scopes[name]; ok {
		return rec
	}
	if name != OverflowScope && len(s.order) < s.max {
		cfg := s.cfg
		cfg.Scope = name
		if sc.WarnThreshold > 0 {
			cfg.WarnThreshold = sc.WarnThreshold
		}
		if sc.Ledger != nil {
			cfg.Ledger = sc.Ledger
		}
		if sc.Lifecycle != nil {
			cfg.Lifecycle = sc.Lifecycle
		}
		rec, _ := NewRecorder(cfg) // template already validated
		for _, fn := range s.subs {
			rec.Subscribe(fn)
		}
		s.scopes[name] = rec
		s.order = append(s.order, name)
		return rec
	}
	if s.overflow == nil {
		cfg := s.cfg
		cfg.Scope = OverflowScope
		s.overflow, _ = NewRecorder(cfg)
		for _, fn := range s.subs {
			s.overflow.Subscribe(fn)
		}
		s.scopes[OverflowScope] = s.overflow
	}
	if name != OverflowScope {
		s.folded++
		s.scopes[name] = s.overflow
	}
	return s.overflow
}

// Dedicated reports whether the named scope owns its recorder.
func (s *ScopedRecorder) Dedicated(name string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.scopes[name]
	return ok && rec != s.overflow
}

// Scopes returns the dedicated scope names in registration order, plus
// the OverflowScope last if any scope was folded.
func (s *ScopedRecorder) Scopes() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.order...)
	if s.overflow != nil {
		out = append(out, OverflowScope)
	}
	return out
}

// Folded returns how many distinct scopes share the overflow recorder.
func (s *ScopedRecorder) Folded() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.folded
}

// Release retires the named scope (a removed tenant): its recorder drops
// out of Scopes/Bundles and the cardinality cap slot is freed for a future
// scope. Lifetime captured/suppressed tallies are retained so the summed
// counters stay monotonic; the scope's retained bundles are discarded with
// it (subscribers already saw everything collected). Releasing a folded
// scope decrements Folded and leaves the overflow recorder untouched.
func (s *ScopedRecorder) Release(name string) {
	if s == nil || name == OverflowScope {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.scopes[name]
	if !ok {
		return
	}
	delete(s.scopes, name)
	if rec == s.overflow {
		s.folded--
		return
	}
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.retiredCaptured == nil {
		s.retiredCaptured = make(map[TriggerKind]int64)
	}
	for _, kind := range TriggerKinds {
		s.retiredCaptured[kind] += rec.Captured(kind)
	}
	s.retiredSuppressed += rec.Suppressed()
}

// Subscribe registers fn on every scope, existing and future.
func (s *ScopedRecorder) Subscribe(fn func(*IncidentBundle)) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.subs = append(s.subs, fn)
	recs := s.distinctLocked()
	s.mu.Unlock()
	for _, rec := range recs {
		rec.Subscribe(fn)
	}
}

// distinctLocked returns each distinct recorder once, dedicated scopes in
// registration order then the overflow. Caller holds s.mu.
func (s *ScopedRecorder) distinctLocked() []*Recorder {
	recs := make([]*Recorder, 0, len(s.order)+1)
	for _, name := range s.order {
		recs = append(recs, s.scopes[name])
	}
	if s.overflow != nil {
		recs = append(recs, s.overflow)
	}
	return recs
}

// distinct snapshots the recorder set under the lock.
func (s *ScopedRecorder) distinct() []*Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.distinctLocked()
}

// Collect assembles pending bundles on every scope, in registration
// order. Call under the fleet's evaluation exclusion.
func (s *ScopedRecorder) Collect() {
	for _, rec := range s.distinct() {
		rec.Collect()
	}
}

// Flush flushes every scope after the fleet has quiesced.
func (s *ScopedRecorder) Flush() {
	for _, rec := range s.distinct() {
		rec.Flush()
	}
}

// Captured sums bundles of the given trigger kind across scopes,
// including scopes since retired by Release.
func (s *ScopedRecorder) Captured(kind TriggerKind) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	n := s.retiredCaptured[kind]
	recs := s.distinctLocked()
	s.mu.Unlock()
	for _, rec := range recs {
		n += rec.Captured(kind)
	}
	return n
}

// Suppressed sums refractory-suppressed triggers across scopes, including
// scopes since retired by Release.
func (s *ScopedRecorder) Suppressed() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	n := s.retiredSuppressed
	recs := s.distinctLocked()
	s.mu.Unlock()
	for _, rec := range recs {
		n += rec.Suppressed()
	}
	return n
}

// Bundles returns every retained bundle across scopes, ordered by trigger
// time, then scope, then sequence.
func (s *ScopedRecorder) Bundles() []*IncidentBundle {
	var out []*IncidentBundle
	for _, rec := range s.distinct() {
		out = append(out, rec.Bundles()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Bundle returns the retained bundle with the given ID from any scope.
func (s *ScopedRecorder) Bundle(id string) *IncidentBundle {
	for _, rec := range s.distinct() {
		if b := rec.Bundle(id); b != nil {
			return b
		}
	}
	return nil
}

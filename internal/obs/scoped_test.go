package obs

import (
	"fmt"
	"sync"
	"testing"
)

func scopedCfg() LedgerConfig { return LedgerConfig{LeadTime: 10, Slack: 2, Window: 0} }

// TestScopedLedgerIsolation verifies dedicated scopes match predictions only
// against their own failure stream: tenant A's failure must not turn tenant
// B's positive prediction into a true positive.
func TestScopedLedgerIsolation(t *testing.T) {
	s, err := NewScopedLedger(scopedCfg(), 8, "app")
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Scope("a"), s.Scope("b")
	if a == b {
		t.Fatal("distinct scopes under the cap share a journal")
	}
	a.RecordPrediction("app", 100, true, 0.9)
	b.RecordPrediction("app", 100, true, 0.9)
	a.RecordFailure(105) // inside (100, 112] for scope a only
	s.Advance(200)
	if got := a.Quality("app"); got.TP != 1 || got.FP != 0 {
		t.Fatalf("scope a: %+v, want TP=1", got)
	}
	if got := b.Quality("app"); got.FP != 1 || got.TP != 0 {
		t.Fatalf("scope b: %+v, want FP=1 (no cross-scope failure match)", got)
	}
}

// TestScopedLedgerCardinalityCap verifies the cap: scopes beyond MaxScopes
// fold into one shared overflow journal and are reported as folded.
func TestScopedLedgerCardinalityCap(t *testing.T) {
	const limit = 3
	s, err := NewScopedLedger(scopedCfg(), limit, "app")
	if err != nil {
		t.Fatal(err)
	}
	var leds []*Ledger
	for i := 0; i < 10; i++ {
		leds = append(leds, s.Scope(fmt.Sprintf("t%02d", i)))
	}
	for i := 0; i < limit; i++ {
		if !s.Dedicated(fmt.Sprintf("t%02d", i)) {
			t.Fatalf("scope %d under the cap is not dedicated", i)
		}
	}
	overflow := s.Scope(OverflowScope)
	for i := limit; i < 10; i++ {
		if s.Dedicated(fmt.Sprintf("t%02d", i)) {
			t.Fatalf("scope %d beyond the cap got a dedicated journal", i)
		}
		if leds[i] != overflow {
			t.Fatalf("scope %d beyond the cap does not share the overflow journal", i)
		}
	}
	if got := s.Folded(); got != 7 {
		t.Fatalf("Folded() = %d, want 7", got)
	}
	// Re-requesting a folded scope must not count it twice.
	s.Scope("t05")
	if got := s.Folded(); got != 7 {
		t.Fatalf("Folded() after repeat = %d, want 7", got)
	}
	scopes := s.Scopes()
	if len(scopes) != limit+1 || scopes[limit] != OverflowScope {
		t.Fatalf("Scopes() = %v, want %d dedicated + overflow last", scopes, limit)
	}
	// Stability: a scope's journal never changes across lookups.
	for i := 0; i < 10; i++ {
		if s.Scope(fmt.Sprintf("t%02d", i)) != leds[i] {
			t.Fatalf("scope %d journal changed between lookups", i)
		}
	}
}

// TestScopedLedgerAdvanceAndTotals drives several scopes plus the overflow
// journal through a full resolve and checks the aggregate accounting.
func TestScopedLedgerAdvanceAndTotals(t *testing.T) {
	s, err := NewScopedLedger(scopedCfg(), 2, "app")
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a", "b", "c", "d"} { // c, d fold together
		led := s.Scope(name)
		led.RecordPrediction("app", float64(100+i), true, 0.8)
		led.RecordFailure(float64(100 + i + 5))
	}
	s.Advance(500)
	if got := s.Watermark(); got != 500 {
		t.Fatalf("watermark = %g, want 500", got)
	}
	preds, fails := s.Totals()
	if preds != 4 || fails != 4 {
		t.Fatalf("totals = %d preds / %d fails, want 4/4", preds, fails)
	}
	for _, name := range []string{"a", "b"} {
		if got := s.Scope(name).Quality("app"); got.TP != 1 {
			t.Fatalf("scope %s: %+v, want TP=1", name, got)
		}
	}
	if got := s.Scope(OverflowScope).Quality("app"); got.TP != 2 {
		t.Fatalf("overflow: %+v, want TP=2 (both folded scopes)", got)
	}
}

// TestScopedLedgerConcurrent hammers scope creation, journaling, and
// Advance from many goroutines; run with -race.
func TestScopedLedgerConcurrent(t *testing.T) {
	s, err := NewScopedLedger(scopedCfg(), 16, "app")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				led := s.Scope(fmt.Sprintf("t%d", (g*7+i)%32))
				led.RecordPrediction("app", float64(i), i%3 == 0, 0.5)
				if i%2 == 0 {
					led.RecordFailure(float64(i) + 3)
				}
				if i%50 == 0 {
					s.Advance(float64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	s.Advance(1e6)
	preds, fails := s.Totals()
	if preds != 8*200 || fails != 8*100 {
		t.Fatalf("totals = %d/%d, want %d/%d", preds, fails, 8*200, 8*100)
	}
}

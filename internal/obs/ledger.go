package obs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/predict"
)

// ErrObs is wrapped by all package errors.
var ErrObs = errors.New("obs: invalid operation")

// CombinedLayer is the ledger's pseudo-layer for the engine's cross-layer
// decision (the Act stage's combined warning), next to the per-layer
// predictions.
const CombinedLayer = "combined"

// LedgerConfig parameterizes the prediction-quality ledger. Times are in
// the domain clock of the pipeline (simulation or epoch seconds).
type LedgerConfig struct {
	// LeadTime Δtl is the anticipated time-to-failure of a prediction [s].
	LeadTime float64
	// Slack Δtp widens the matching window: a prediction at time t is a
	// positive match iff a failure occurs in (t, t+LeadTime+Slack] — the
	// Sect. 3.3 contingency rule, identical to the offline evaluator's
	// grid labeling in internal/experiments.
	Slack float64
	// Window is the rolling horizon of the live quality gauges [s],
	// keyed by prediction time; 0 keeps rolling == cumulative.
	Window float64
}

// validate rejects unusable configurations.
func (c LedgerConfig) validate() error {
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
	if bad(c.LeadTime) || bad(c.Slack) || bad(c.Window) {
		return fmt.Errorf("%w: ledger lead=%g slack=%g window=%g", ErrObs, c.LeadTime, c.Slack, c.Window)
	}
	return nil
}

// pending is one journaled prediction awaiting ground truth.
type pending struct {
	t          float64
	predicted  bool
	confidence float64
}

// resolvedEntry is one classified prediction retained for the rolling
// window, keyed by prediction time.
type resolvedEntry struct {
	t float64
	o predict.Outcome
}

// layerLedger is one layer's journal and contingency accounting.
type layerLedger struct {
	name       string
	pending    []pending
	recent     []resolvedEntry
	rolling    predict.ContingencyTable
	cumulative predict.ContingencyTable
}

// Ledger journals per-layer predictions and observed ground-truth failures
// and resolves them into Sect. 3.3 contingency tables once the matching
// window of each prediction has fully elapsed. Safe for concurrent use.
type Ledger struct {
	mu        sync.Mutex
	cfg       LedgerConfig
	order     []string
	layers    map[string]*layerLedger
	failures  []float64 // sorted ascending
	watermark float64   // ground truth is complete up to here
	recorded  int64     // predictions journaled
	failSeen  int64     // failures journaled
}

// NewLedger builds a ledger. Layer names given here are pre-declared so
// their quality gauges can be registered before any prediction arrives
// (the CombinedLayer is always declared); layers seen later in
// RecordPrediction are added on the fly.
func NewLedger(cfg LedgerConfig, layerNames ...string) (*Ledger, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := &Ledger{cfg: cfg, layers: make(map[string]*layerLedger)}
	for _, name := range layerNames {
		l.layer(name)
	}
	l.layer(CombinedLayer)
	return l, nil
}

// Config returns the matching configuration.
func (l *Ledger) Config() LedgerConfig { return l.cfg }

// layer returns the named layer ledger, creating it on first use. The
// caller holds l.mu (or is the constructor).
func (l *Ledger) layer(name string) *layerLedger {
	ll, ok := l.layers[name]
	if !ok {
		ll = &layerLedger{name: name}
		l.layers[name] = ll
		l.order = append(l.order, name)
	}
	return ll
}

// Layers returns the declared layer names in registration order.
func (l *Ledger) Layers() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.order...)
}

// RecordPrediction journals one layer's thresholded prediction emitted at
// time t. Call once per layer per MEA cycle; abstaining layers (NaN
// scores) should simply not be recorded.
func (l *Ledger) RecordPrediction(layer string, t float64, predicted bool, confidence float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	ll := l.layer(layer)
	ll.pending = append(ll.pending, pending{t: t, predicted: predicted, confidence: confidence})
	l.recorded++
	l.mu.Unlock()
}

// RecordFailure journals one observed ground-truth failure (Eq. 2
// violation on the mirrored stream) at time t.
func (l *Ledger) RecordFailure(t float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.failSeen++
	if n := len(l.failures); n == 0 || l.failures[n-1] <= t {
		l.failures = append(l.failures, t)
	} else {
		i := sort.SearchFloat64s(l.failures, t)
		l.failures = append(l.failures, 0)
		copy(l.failures[i+1:], l.failures[i:])
		l.failures[i] = t
	}
	l.mu.Unlock()
}

// anyFailureIn reports whether a recorded failure lies in (from, to] —
// the exact interval rule of the offline evaluator. The caller holds l.mu.
func (l *Ledger) anyFailureIn(from, to float64) bool {
	i := sort.SearchFloat64s(l.failures, from)
	for ; i < len(l.failures); i++ {
		if l.failures[i] > to {
			return false
		}
		if l.failures[i] > from {
			return true
		}
	}
	return false
}

// Advance declares ground truth complete up to time now and resolves every
// pending prediction whose matching window has fully elapsed
// (t + LeadTime + Slack ≤ now) into its TP/FP/TN/FN outcome. It also
// evicts rolling-window entries older than now − Window and prunes
// failures no live prediction can still match.
func (l *Ledger) Advance(now float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if now > l.watermark {
		l.watermark = now
	}
	horizon := l.cfg.LeadTime + l.cfg.Slack
	for _, name := range l.order {
		ll := l.layers[name]
		kept := ll.pending[:0]
		for _, p := range ll.pending {
			if p.t+horizon > l.watermark {
				kept = append(kept, p)
				continue
			}
			o := predict.Classify(p.predicted, l.anyFailureIn(p.t, p.t+horizon))
			tableAdd(&ll.cumulative, o, 1)
			if l.cfg.Window > 0 {
				ll.recent = append(ll.recent, resolvedEntry{t: p.t, o: o})
				tableAdd(&ll.rolling, o, 1)
			}
		}
		ll.pending = kept
		if l.cfg.Window > 0 {
			cut := 0
			for cut < len(ll.recent) && ll.recent[cut].t < l.watermark-l.cfg.Window {
				tableAdd(&ll.rolling, ll.recent[cut].o, -1)
				cut++
			}
			if cut > 0 {
				ll.recent = append(ll.recent[:0], ll.recent[cut:]...)
			}
		} else {
			ll.rolling = ll.cumulative
		}
	}
	// A failure can only matter to predictions made within `horizon` before
	// it; keep one extra horizon of history for late (out-of-order) records.
	cut := sort.SearchFloat64s(l.failures, l.watermark-2*horizon)
	if cut > 0 {
		l.failures = append(l.failures[:0], l.failures[cut:]...)
	}
}

// tableAdd bumps one cell of a contingency table by delta.
func tableAdd(c *predict.ContingencyTable, o predict.Outcome, delta int) {
	switch o {
	case predict.TruePositive:
		c.TP += delta
	case predict.FalsePositive:
		c.FP += delta
	case predict.TrueNegative:
		c.TN += delta
	case predict.FalseNegative:
		c.FN += delta
	}
}

// Quality returns the named layer's rolling-window contingency table (the
// cumulative table when no window is configured). Unknown layers return an
// empty table.
func (l *Ledger) Quality(layer string) predict.ContingencyTable {
	if l == nil {
		return predict.ContingencyTable{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ll, ok := l.layers[layer]; ok {
		return ll.rolling
	}
	return predict.ContingencyTable{}
}

// Cumulative returns the named layer's all-time contingency table.
func (l *Ledger) Cumulative(layer string) predict.ContingencyTable {
	if l == nil {
		return predict.ContingencyTable{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ll, ok := l.layers[layer]; ok {
		return ll.cumulative
	}
	return predict.ContingencyTable{}
}

// LayerQuality is one layer's entry in a ledger snapshot.
type LayerQuality struct {
	Layer      string
	Rolling    predict.ContingencyTable
	Cumulative predict.ContingencyTable
	Pending    int // journaled predictions whose window has not elapsed
}

// LedgerSnapshot is a consistent copy of the ledger state.
type LedgerSnapshot struct {
	LeadTime    float64
	Slack       float64
	Window      float64
	Watermark   float64
	Predictions int64 // total journaled
	Failures    int64 // total journaled
	Layers      []LayerQuality
}

// Snapshot copies the full ledger state under one lock.
func (l *Ledger) Snapshot() LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := LedgerSnapshot{
		LeadTime:    l.cfg.LeadTime,
		Slack:       l.cfg.Slack,
		Window:      l.cfg.Window,
		Watermark:   l.watermark,
		Predictions: l.recorded,
		Failures:    l.failSeen,
		Layers:      make([]LayerQuality, 0, len(l.order)),
	}
	for _, name := range l.order {
		ll := l.layers[name]
		snap.Layers = append(snap.Layers, LayerQuality{
			Layer:      name,
			Rolling:    ll.rolling,
			Cumulative: ll.cumulative,
			Pending:    len(ll.pending),
		})
	}
	return snap
}

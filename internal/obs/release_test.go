package obs

import (
	"strings"
	"testing"
)

// TestScopedLedgerRelease: releasing a scope frees its cardinality slot for
// a future tenant, drops it from Scopes, and retains its lifetime totals so
// fleet-level quality counters stay monotonic across tenant churn.
func TestScopedLedgerRelease(t *testing.T) {
	s, err := NewScopedLedger(scopedCfg(), 2, "app")
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Scope("a"), s.Scope("b")
	s.Scope("c") // beyond the cap: folds
	s.Scope("d")
	if s.Folded() != 2 {
		t.Fatalf("folded = %d, want 2", s.Folded())
	}
	a.RecordPrediction("app", 100, true, 0.9)
	a.RecordFailure(105)
	b.RecordPrediction("app", 100, true, 0.8)
	s.Advance(200)
	predsBefore, failsBefore := s.Totals()
	if predsBefore != 2 || failsBefore != 1 {
		t.Fatalf("totals = (%d, %d), want (2, 1)", predsBefore, failsBefore)
	}

	s.Release("a")
	if s.Dedicated("a") {
		t.Error("released scope still dedicated")
	}
	if got := s.Scopes(); strings.Join(got, ",") != "b,"+OverflowScope {
		t.Errorf("scopes after release = %v", got)
	}
	if preds, fails := s.Totals(); preds != predsBefore || fails != failsBefore {
		t.Errorf("totals changed on release: (%d, %d) != (%d, %d)",
			preds, fails, predsBefore, failsBefore)
	}

	// The freed slot is reusable: a new scope gets a dedicated journal and
	// its activity keeps accumulating on top of the retained tallies.
	e := s.Scope("e")
	if !s.Dedicated("e") {
		t.Fatal("new scope did not reuse the released slot")
	}
	e.RecordPrediction("app", 300, true, 0.9)
	s.Advance(400)
	if preds, _ := s.Totals(); preds != predsBefore+1 {
		t.Errorf("totals = %d, want %d", preds, predsBefore+1)
	}

	// Releasing a folded scope just uncounts it; its rows stay merged in
	// the overflow journal. Unknown and overflow releases are no-ops.
	s.Release("c")
	if s.Folded() != 1 {
		t.Errorf("folded after release = %d, want 1", s.Folded())
	}
	s.Release("nope")
	s.Release(OverflowScope)
	if preds, fails := s.Totals(); preds != predsBefore+1 || fails != failsBefore {
		t.Errorf("no-op releases moved totals to (%d, %d)", preds, fails)
	}
	var nilLedger *ScopedLedger
	nilLedger.Release("a") // nil receiver: no-op like the other accessors
}

// TestScopedRecorderRelease mirrors the ledger discipline for the flight
// recorder: the scope slot frees, capture counters stay monotonic, the
// retired scope's bundles are discarded.
func TestScopedRecorderRelease(t *testing.T) {
	sr, err := NewScopedRecorder(RecorderConfig{Layers: []string{"a"}, Window: 10, WarnThreshold: 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t1 := sr.Scope("t1", RecorderScopeConfig{})
	sr.Scope("t2", RecorderScopeConfig{})
	sr.Scope("t3", RecorderScopeConfig{}) // folds
	t1.Observe(1, []float64{1}, CycleObservation{Warned: true, Confidence: 0.9})
	sr.Collect()
	if got := sr.Captured(TriggerWarn); got != 1 {
		t.Fatalf("captured = %d, want 1", got)
	}
	if len(sr.Bundles()) != 1 {
		t.Fatalf("bundles = %d, want 1", len(sr.Bundles()))
	}

	sr.Release("t1")
	if sr.Dedicated("t1") {
		t.Error("released recorder scope still dedicated")
	}
	if got := sr.Captured(TriggerWarn); got != 1 {
		t.Errorf("captured dropped to %d after release; must stay monotonic", got)
	}
	if got := sr.Bundles(); len(got) != 0 {
		t.Errorf("released scope's bundles still listed: %d", len(got))
	}
	if got := sr.Scopes(); strings.Join(got, ",") != "t2,"+OverflowScope {
		t.Errorf("scopes after release = %v", got)
	}

	// Slot reuse, and new captures stack on the retired tally.
	t4 := sr.Scope("t4", RecorderScopeConfig{})
	if !sr.Dedicated("t4") {
		t.Fatal("new recorder scope did not reuse the released slot")
	}
	t4.Observe(2, []float64{1}, CycleObservation{Warned: true, Confidence: 0.9})
	sr.Collect()
	if got := sr.Captured(TriggerWarn); got != 2 {
		t.Errorf("captured = %d, want 2 (1 retired + 1 live)", got)
	}

	sr.Release("t3") // folded
	if sr.Folded() != 0 {
		t.Errorf("folded after release = %d, want 0", sr.Folded())
	}
	sr.Release("nope")
	var nilRec *ScopedRecorder
	nilRec.Release("t1")
	if got := nilRec.Captured(TriggerWarn); got != 0 {
		t.Errorf("nil recorder Captured = %d", got)
	}
}

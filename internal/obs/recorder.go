package obs

import (
	"fmt"
	"math"
	stdruntime "runtime"
	"sync"
	"time"

	"repro/internal/diagnose"
	"repro/internal/eventlog"
)

// TriggerKind names the condition that fired an incident capture.
type TriggerKind string

// The recorder's trigger matrix. Warn and act fire from the engine's
// combined decision, drift and rollback from lifecycle events, burnrate
// from the rolling ledger F-measure falling through a floor.
const (
	// TriggerWarn fires when the combined decision warns at or above the
	// recorder's warn threshold.
	TriggerWarn TriggerKind = "warn"
	// TriggerAct fires when the act stage executes (or schedules) a
	// countermeasure.
	TriggerAct TriggerKind = "act"
	// TriggerDrift fires on a lifecycle drift detection.
	TriggerDrift TriggerKind = "drift"
	// TriggerRollback fires when a hot-swap is rolled back.
	TriggerRollback TriggerKind = "rollback"
	// TriggerBurnRate fires while the rolling combined F-measure sits
	// below the configured floor with enough resolved predictions.
	TriggerBurnRate TriggerKind = "burnrate"
)

// TriggerKinds lists every trigger kind in a stable order (metric
// registration, rendering).
var TriggerKinds = []TriggerKind{TriggerWarn, TriggerAct, TriggerDrift, TriggerRollback, TriggerBurnRate}

// triggerIndex maps a kind to its slot in the recorder's fixed counter
// arrays (-1 for unknown kinds).
func triggerIndex(k TriggerKind) int {
	for i, t := range TriggerKinds {
		if t == k {
			return i
		}
	}
	return -1
}

// RecorderConfig parameterizes a flight recorder. Only Layers is
// mandatory; every correlated source (event log, tracer, ledger,
// diagnoser, lifecycle) is optional and simply absent from bundles when
// nil. Times are in the pipeline's domain clock.
type RecorderConfig struct {
	// Scope names the recorder (tenant ID in a fleet); folded into bundle
	// IDs so scoped recorders never collide.
	Scope string
	// Layers are the prediction-layer names, in engine order; score
	// history rows and bundle versions are indexed like this.
	Layers []string
	// Window is the pre-trigger capture horizon [s]: a bundle carries the
	// event-log slice and score history from trigger−Window to the
	// trigger (default 600).
	Window float64
	// ScoreDepth is how many recent cycles of per-layer scores the ring
	// retains (default 32).
	ScoreDepth int
	// WarnThreshold gates the warn trigger: the combined decision must
	// warn with at least this confidence (0 fires on every warning).
	WarnThreshold float64
	// BurnRateFloor arms the burn-rate trigger: it fires when the rolling
	// combined F-measure drops below the floor (0 disables).
	BurnRateFloor float64
	// BurnRateMinResolved is the minimum resolved predictions in the
	// rolling window before the burn-rate trigger can fire (default 10),
	// so an empty ledger does not alarm.
	BurnRateMinResolved int
	// Refractory is the per-trigger-kind dead time [s] after a capture
	// (default 2×Window): a flapping predictor yields one bundle per
	// refractory period per kind, the rest count as suppressed.
	Refractory float64
	// MaxBundles bounds retained bundles; older ones are evicted
	// (default 32).
	MaxBundles int
	// MaxEvents caps the event-log slice per bundle, keeping the newest
	// events of the window (default 512).
	MaxEvents int
	// SlowSpans is how many slowest tracer spans a bundle carries
	// (default 5).
	SlowSpans int
	// Log is the mirrored event log the bundles slice. The recorder reads
	// it only inside Collect/Flush, which the runtime calls under the
	// evaluation exclusion (or after shutdown), so no extra locking is
	// needed.
	Log *eventlog.Log
	// Tracer correlates bundles with spans: the triggering decision's
	// newest complete trace ID and the slowest retained spans.
	Tracer *Tracer
	// Ledger supplies the burn-rate signal and the quality snapshot
	// embedded in bundles.
	Ledger *Ledger
	// Diagnose maps a captured window to ranked suspects — typically a
	// closure over diagnose.Diagnoser.DiagnoseRange on the same log. Runs
	// inside Collect, under the same exclusion as Log reads.
	Diagnose func(from, to float64) []diagnose.Suspect
	// Lifecycle returns the per-layer lifecycle states for the bundle
	// (a closure over lifecycle.Manager.States; typed any because the
	// lifecycle package layers above obs).
	Lifecycle func() any
	// RuntimeStats embeds a rate-limited memstats/goroutine snapshot in
	// each bundle. Off by default: the snapshot is wall-clock state, so
	// deterministic-replay tests leave it disabled.
	RuntimeStats bool
}

// CycleObservation is the act-stage outcome of one MEA cycle, the
// recorder-visible projection of the engine's decision (obs stays below
// core in the import order).
type CycleObservation struct {
	Warned        bool
	Executed      bool
	Confidence    float64
	Action        string
	LayerVersions []uint64
	// Detail annotates the trigger (fleet runtimes put the tenant here).
	Detail string
}

// BundleScore is one retained cycle in a bundle's score history.
type BundleScore struct {
	Time     float64   `json:"time"`
	Scores   []float64 `json:"scores"`
	Versions []uint64  `json:"versions,omitempty"`
}

// RuntimeSnapshot is the rate-limited process state embedded in bundles
// when RecorderConfig.RuntimeStats is set.
type RuntimeSnapshot struct {
	Goroutines   int    `json:"goroutines"`
	HeapAlloc    uint64 `json:"heap_alloc"`
	HeapSys      uint64 `json:"heap_sys"`
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNs uint64 `json:"pause_total_ns"`
}

// IncidentBundle is one self-contained, causally-correlated incident
// capture: the triggering decision, the pre-trigger event window, score
// history, slowest spans, ranked suspects, quality tables and lifecycle
// states, assembled inside the lead-time window the prediction bought.
type IncidentBundle struct {
	ID            string      `json:"id"`
	Seq           uint64      `json:"seq"`
	Scope         string      `json:"scope,omitempty"`
	Trigger       TriggerKind `json:"trigger"`
	Time          float64     `json:"time"`
	Detail        string      `json:"detail,omitempty"`
	Confidence    float64     `json:"confidence"`
	Action        string      `json:"action,omitempty"`
	TraceID       uint64      `json:"trace_id,omitempty"`
	Layers        []string    `json:"layers,omitempty"`
	LayerVersions []uint64    `json:"layer_versions,omitempty"`

	EventsFrom  float64          `json:"events_from"`
	EventsTo    float64          `json:"events_to"`
	EventsTotal int              `json:"events_total"` // window population before the MaxEvents cap
	Events      []eventlog.Event `json:"events,omitempty"`

	Scores    []BundleScore      `json:"scores,omitempty"`
	Suspects  []diagnose.Suspect `json:"suspects,omitempty"`
	Spans     []TraceView        `json:"spans,omitempty"`
	Quality   *LedgerSnapshot    `json:"quality,omitempty"`
	Lifecycle any                `json:"lifecycle,omitempty"`
	Runtime   *RuntimeSnapshot   `json:"runtime,omitempty"`

	// CaptureSeconds is the wall time Collect spent assembling the
	// bundle (pfm_incident_bundle_seconds).
	CaptureSeconds float64 `json:"capture_seconds"`
}

// Fingerprint renders the bundle's replay-deterministic content: identity,
// trigger, captured window bounds, suspects, score history and versions.
// Wall-clock fields (trace ID, spans, runtime snapshot, capture duration)
// are deliberately excluded — two replays of the same trace with the same
// config must produce identical fingerprint sets, which is the recorder's
// determinism contract.
func (b *IncidentBundle) Fingerprint() string {
	fp := fmt.Sprintf("%s|%s|%x|%s|%x|%x..%x|%d", b.ID, b.Trigger,
		math.Float64bits(b.Time), b.Detail, math.Float64bits(b.Confidence),
		math.Float64bits(b.EventsFrom), math.Float64bits(b.EventsTo), b.EventsTotal)
	for _, v := range b.LayerVersions {
		fp += fmt.Sprintf("|v%d", v)
	}
	for _, s := range b.Suspects {
		fp += fmt.Sprintf("|%s:%x:%d", s.Component, math.Float64bits(s.Score), s.Events)
	}
	for _, row := range b.Scores {
		fp += fmt.Sprintf("|t%x", math.Float64bits(row.Time))
		for _, s := range row.Scores {
			fp += fmt.Sprintf(",%x", math.Float64bits(s))
		}
	}
	for _, e := range b.Events {
		fp += fmt.Sprintf("|e%x:%s:%d", math.Float64bits(e.Time), e.Component, e.Type)
	}
	return fp
}

// pendingTrigger is one fired trigger awaiting bundle assembly at the
// next Collect (which runs under the evaluation exclusion, where the
// event log is safe to read).
type pendingTrigger struct {
	kind       TriggerKind
	t          float64
	detail     string
	confidence float64
	action     string
	traceID    uint64
	versions   []uint64
}

// Recorder is a prediction-triggered flight recorder: always-on bounded
// ring state (per-layer score history) plus a trigger pipeline that turns
// warnings, act firings, lifecycle drift/rollback and ledger burn-rate
// alarms into IncidentBundles. The steady-state path (Observe with no
// trigger firing, Collect with nothing pending) allocates nothing —
// pinned by TestRecorderSteadyStateZeroAllocs.
//
// Concurrency: Observe and TriggerEvent run on the act stage, Collect
// under the runtime's evaluation exclusion, Flush after shutdown; an
// internal mutex serializes them, so the recorder is safe for concurrent
// use from all runtime stages.
type Recorder struct {
	mu  sync.Mutex
	cfg RecorderConfig

	// Score-history ring, flat layer-major rows: row i of depth holds
	// times[i], scores[i*nLayers:...], versions[i*nLayers:...].
	nLayers int
	depth   int
	head    int // next row to write
	count   int // rows filled (≤ depth)
	times   []float64
	scores  []float64
	vers    []uint64

	// Trigger state.
	nextAllowed []float64 // per trigger kind, domain time
	captured    []int64   // per trigger kind
	suppressed  int64
	pending     []pendingTrigger
	seq         uint64

	bundles []*IncidentBundle
	ready   []*IncidentBundle // assembled, not yet delivered to subscribers
	subs    []func(*IncidentBundle)
}

// Recorder defaults.
const (
	defaultRecorderWindow     = 600.0
	defaultRecorderDepth      = 32
	defaultRecorderMaxBundles = 32
	defaultRecorderMaxEvents  = 512
	defaultRecorderSlowSpans  = 5
	defaultBurnRateResolved   = 10
)

// NewRecorder validates the configuration and builds a flight recorder.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if len(cfg.Layers) == 0 {
		return nil, fmt.Errorf("%w: recorder needs at least one layer", ErrObs)
	}
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
	if bad(cfg.Window) || bad(cfg.WarnThreshold) || bad(cfg.BurnRateFloor) || bad(cfg.Refractory) {
		return nil, fmt.Errorf("%w: recorder window=%g warn=%g floor=%g refractory=%g",
			ErrObs, cfg.Window, cfg.WarnThreshold, cfg.BurnRateFloor, cfg.Refractory)
	}
	if cfg.ScoreDepth < 0 || cfg.MaxBundles < 0 || cfg.MaxEvents < 0 || cfg.SlowSpans < 0 || cfg.BurnRateMinResolved < 0 {
		return nil, fmt.Errorf("%w: negative recorder depth/cap", ErrObs)
	}
	if cfg.Window == 0 {
		cfg.Window = defaultRecorderWindow
	}
	if cfg.ScoreDepth == 0 {
		cfg.ScoreDepth = defaultRecorderDepth
	}
	if cfg.Refractory == 0 {
		cfg.Refractory = 2 * cfg.Window
	}
	if cfg.MaxBundles == 0 {
		cfg.MaxBundles = defaultRecorderMaxBundles
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = defaultRecorderMaxEvents
	}
	if cfg.SlowSpans == 0 {
		cfg.SlowSpans = defaultRecorderSlowSpans
	}
	if cfg.BurnRateMinResolved == 0 {
		cfg.BurnRateMinResolved = defaultBurnRateResolved
	}
	n := len(cfg.Layers)
	r := &Recorder{
		cfg:         cfg,
		nLayers:     n,
		depth:       cfg.ScoreDepth,
		times:       make([]float64, cfg.ScoreDepth),
		scores:      make([]float64, cfg.ScoreDepth*n),
		vers:        make([]uint64, cfg.ScoreDepth*n),
		nextAllowed: make([]float64, len(TriggerKinds)),
		captured:    make([]int64, len(TriggerKinds)),
		pending:     make([]pendingTrigger, 0, 4),
		bundles:     make([]*IncidentBundle, 0, cfg.MaxBundles),
	}
	for i := range r.nextAllowed {
		r.nextAllowed[i] = math.Inf(-1)
	}
	return r, nil
}

// Config returns the recorder's (defaulted) configuration.
func (r *Recorder) Config() RecorderConfig {
	if r == nil {
		return RecorderConfig{}
	}
	return r.cfg
}

// Subscribe registers fn to receive every assembled bundle. Callbacks run
// on the act stage (and during Flush), outside the recorder's own lock
// and outside the runtime's state lock — safe to do I/O. Register before
// the pipeline starts.
func (r *Recorder) Subscribe(fn func(*IncidentBundle)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

// Observe records one act-stage cycle into the score-history ring and
// runs the decision-driven trigger checks (warn, act, burn-rate). Safe on
// a nil receiver; allocation-free unless a trigger fires.
func (r *Recorder) Observe(now float64, scores []float64, o CycleObservation) {
	if r == nil {
		return
	}
	// The burn-rate signal reads the ledger outside the recorder lock
	// (Ledger has its own); Quality returns its table by value.
	burn := false
	if r.cfg.BurnRateFloor > 0 && r.cfg.Ledger != nil {
		q := r.cfg.Ledger.Quality(CombinedLayer)
		if q.TP+q.FP+q.TN+q.FN >= r.cfg.BurnRateMinResolved {
			f := q.FMeasure()
			burn = !math.IsNaN(f) && f < r.cfg.BurnRateFloor
		}
	}
	r.mu.Lock()
	// Ring write: one row per cycle, NaN-padded when the caller scored
	// fewer layers than declared.
	row := r.head * r.nLayers
	r.times[r.head] = now
	for i := 0; i < r.nLayers; i++ {
		if i < len(scores) {
			r.scores[row+i] = scores[i]
		} else {
			r.scores[row+i] = math.NaN()
		}
		if i < len(o.LayerVersions) {
			r.vers[row+i] = o.LayerVersions[i]
		} else {
			r.vers[row+i] = 0
		}
	}
	r.head = (r.head + 1) % r.depth
	if r.count < r.depth {
		r.count++
	}
	if o.Warned && o.Confidence >= r.cfg.WarnThreshold {
		r.fireLocked(TriggerWarn, now, o)
	}
	if o.Executed {
		r.fireLocked(TriggerAct, now, o)
	}
	if burn {
		r.fireLocked(TriggerBurnRate, now, o)
	}
	ready := r.takeReadyLocked()
	r.mu.Unlock()
	r.deliver(ready)
}

// TriggerEvent fires an external trigger (lifecycle drift or rollback) at
// domain time t. detail typically names the affected layer.
func (r *Recorder) TriggerEvent(kind TriggerKind, t float64, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.fireLocked(kind, t, CycleObservation{Detail: detail})
	r.mu.Unlock()
}

// fireLocked applies the refractory gate and queues a pending trigger.
// The caller holds r.mu.
func (r *Recorder) fireLocked(kind TriggerKind, t float64, o CycleObservation) {
	ki := triggerIndex(kind)
	if ki < 0 {
		return
	}
	if t < r.nextAllowed[ki] {
		r.suppressed++
		return
	}
	r.nextAllowed[ki] = t + r.cfg.Refractory
	p := pendingTrigger{
		kind:       kind,
		t:          t,
		detail:     o.Detail,
		confidence: o.Confidence,
		action:     o.Action,
		traceID:    r.cfg.Tracer.NewestCompleteID(),
	}
	if len(o.LayerVersions) > 0 {
		p.versions = append([]uint64(nil), o.LayerVersions...)
	}
	r.pending = append(r.pending, p)
}

// Collect assembles a bundle for every pending trigger. The runtime calls
// it inside the evaluation exclusion (no Apply concurrent), which is what
// makes the event-log reads and the Diagnose callback safe. With nothing
// pending it is a single uncontended lock round-trip — allocation-free.
func (r *Recorder) Collect() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectLocked()
	r.mu.Unlock()
}

// collectLocked drains r.pending into assembled bundles. Caller holds r.mu.
func (r *Recorder) collectLocked() {
	for i := range r.pending {
		b := r.assembleLocked(&r.pending[i])
		if len(r.bundles) >= r.cfg.MaxBundles {
			copy(r.bundles, r.bundles[1:])
			r.bundles = r.bundles[:len(r.bundles)-1]
		}
		r.bundles = append(r.bundles, b)
		if len(r.subs) > 0 {
			r.ready = append(r.ready, b)
		}
	}
	r.pending = r.pending[:0]
}

// assembleLocked builds one incident bundle. Caller holds r.mu and the
// pipeline's evaluation exclusion.
func (r *Recorder) assembleLocked(p *pendingTrigger) *IncidentBundle {
	start := time.Now()
	r.seq++
	b := &IncidentBundle{
		ID:            bundleID(r.cfg.Scope, p.kind, p.t, r.seq),
		Seq:           r.seq,
		Scope:         r.cfg.Scope,
		Trigger:       p.kind,
		Time:          p.t,
		Detail:        p.detail,
		Confidence:    p.confidence,
		Action:        p.action,
		TraceID:       p.traceID,
		Layers:        r.cfg.Layers,
		LayerVersions: p.versions,
		EventsFrom:    p.t - r.cfg.Window,
		EventsTo:      p.t,
	}
	if ki := triggerIndex(p.kind); ki >= 0 {
		r.captured[ki]++
	}
	if l := r.cfg.Log; l != nil {
		// The repo-wide now+1e-9 idiom makes the upper bound inclusive.
		lo, hi := l.ScanWindow(b.EventsFrom, b.EventsTo+1e-9)
		b.EventsTotal = hi - lo
		from := b.EventsFrom
		if b.EventsTotal > r.cfg.MaxEvents {
			from = l.TimeAt(hi - r.cfg.MaxEvents)
		}
		b.Events = l.Slice(from, b.EventsTo+1e-9).Events()
	}
	if r.cfg.Diagnose != nil {
		b.Suspects = r.cfg.Diagnose(b.EventsFrom, b.EventsTo)
	}
	// Score history: retained rows at or before the trigger, oldest first.
	for i := 0; i < r.count; i++ {
		idx := (r.head - r.count + i + r.depth) % r.depth
		if r.times[idx] > p.t {
			continue
		}
		row := idx * r.nLayers
		b.Scores = append(b.Scores, BundleScore{
			Time:     r.times[idx],
			Scores:   append([]float64(nil), r.scores[row:row+r.nLayers]...),
			Versions: append([]uint64(nil), r.vers[row:row+r.nLayers]...),
		})
	}
	if r.cfg.Tracer != nil {
		b.Spans = r.cfg.Tracer.Slowest(r.cfg.SlowSpans)
	}
	if r.cfg.Ledger != nil {
		snap := r.cfg.Ledger.Snapshot()
		b.Quality = &snap
	}
	if r.cfg.Lifecycle != nil {
		b.Lifecycle = r.cfg.Lifecycle()
	}
	if r.cfg.RuntimeStats {
		b.Runtime = runtimeSnap()
	}
	b.CaptureSeconds = time.Since(start).Seconds()
	return b
}

// takeReadyLocked hands the undelivered bundles to the caller (which must
// deliver them outside the lock). Caller holds r.mu.
func (r *Recorder) takeReadyLocked() []*IncidentBundle {
	if len(r.ready) == 0 {
		return nil
	}
	ready := r.ready
	r.ready = nil
	return ready
}

// deliver invokes the subscribers for each bundle, outside every lock.
func (r *Recorder) deliver(bundles []*IncidentBundle) {
	if len(bundles) == 0 {
		return
	}
	r.mu.Lock()
	subs := r.subs
	r.mu.Unlock()
	for _, b := range bundles {
		for _, fn := range subs {
			fn(b)
		}
	}
}

// Flush assembles any still-pending triggers and delivers undelivered
// bundles. The runtime calls it during Stop, after the pipeline has
// quiesced (no concurrent Apply), so the log reads are safe.
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectLocked()
	ready := r.takeReadyLocked()
	r.mu.Unlock()
	r.deliver(ready)
}

// Bundles returns the retained bundles, oldest first.
func (r *Recorder) Bundles() []*IncidentBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*IncidentBundle(nil), r.bundles...)
}

// Bundle returns the retained bundle with the given ID (nil if evicted or
// never captured).
func (r *Recorder) Bundle(id string) *IncidentBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.bundles {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Captured returns how many bundles the given trigger kind has produced.
func (r *Recorder) Captured(kind TriggerKind) int64 {
	if r == nil {
		return 0
	}
	ki := triggerIndex(kind)
	if ki < 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.captured[ki]
}

// Suppressed returns how many triggers the refractory gate swallowed.
func (r *Recorder) Suppressed() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// Pending returns how many fired triggers await assembly.
func (r *Recorder) Pending() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// bundleID derives the deterministic bundle identity: FNV-1a 64 over the
// scope, trigger kind, trigger-time bits and capture sequence number.
// Replaying the same trace with the same config reproduces the same IDs.
func bundleID(scope string, kind TriggerKind, t float64, seq uint64) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // terminator so ("ab","c") != ("a","bc")
		h *= prime64
	}
	mix(scope)
	mix(string(kind))
	for bits, i := math.Float64bits(t), 0; i < 8; i++ {
		h ^= bits >> (8 * i) & 0xff
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= seq >> (8 * i) & 0xff
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

// runtimeSnapCache rate-limits ReadMemStats for bundle snapshots: a
// capture storm pays the stop-the-world read at most once per TTL.
var runtimeSnapCache struct {
	mu   sync.Mutex
	at   time.Time
	snap RuntimeSnapshot
}

// runtimeSnapTTL is the snapshot cache lifetime.
const runtimeSnapTTL = 500 * time.Millisecond

// runtimeSnap returns the (possibly cached) process snapshot.
func runtimeSnap() *RuntimeSnapshot {
	c := &runtimeSnapCache
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > runtimeSnapTTL {
		var ms stdruntime.MemStats
		stdruntime.ReadMemStats(&ms)
		c.snap = RuntimeSnapshot{
			Goroutines:   stdruntime.NumGoroutine(),
			HeapAlloc:    ms.HeapAlloc,
			HeapSys:      ms.HeapSys,
			NumGC:        ms.NumGC,
			PauseTotalNs: ms.PauseTotalNs,
		}
		c.at = now
	}
	snap := c.snap
	return &snap
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stages of one end-to-end trace, in flow order.
const (
	// StageIngest is the Ingest() call up to the queue offer (admission
	// bookkeeping: shard routing, counters).
	StageIngest = iota
	// StageQueue is queue residency: from the offer — including any
	// backpressure wait under the Block policy — to the shard consumer's
	// pickup.
	StageQueue
	// StageApply is the consumer's Apply callback (mirror-state update).
	StageApply
	// StageEvalWait is the time the applied event waits for the next MEA
	// cycle to start.
	StageEvalWait
	// StageEvaluate is the covering cycle's layer scoring.
	StageEvaluate
	// StageAct is the covering cycle's serialized act decision.
	StageAct
	// NumStages is the stage count.
	NumStages
)

// StageNames label the stages for rendering, indexed by the constants
// above.
var StageNames = [NumStages]string{"ingest", "queue", "apply", "evalwait", "evaluate", "act"}

// Trace lifecycle states.
const (
	stateFree    = iota // slot never used (or wrapped and reclaimed)
	stateApplied        // event applied, waiting for a covering MEA cycle
	stateDone           // covering cycle recorded: trace is end-to-end
	stateDropped        // event shed by the overflow policy or shutdown
)

// keyBytes bounds the routing-key prefix retained per trace (no heap
// allocation for the common short monitoring-variable names).
const keyBytes = 20

// slot is one ring cell. All access is under mu; publishes take the lock
// once per event, CompleteCycle and Snapshot take it briefly per slot.
type slot struct {
	mu     sync.Mutex
	id     uint64
	state  uint8
	kind   uint8
	shard  int16
	keyLen uint8
	key    [keyBytes]byte
	// stamps: 0 ingest start, 1 queue offer, 2 dequeue, 3 apply end,
	// 4 eval start, 5 eval end, 6 act start, 7 act end (or drop time).
	stamps [8]int64
}

// Tracer records end-to-end pipeline traces into a fixed ring with
// monotonic-clock spans. The zero-allocation contract of the publish path
// is pinned by TestSpanHotPathZeroAllocs. All methods are safe on a nil
// receiver (tracing disabled) and for concurrent use.
type Tracer struct {
	base      time.Time
	mask      uint32
	every     uint32 // sample 1 in every admissions (1 = every event)
	sampleCtr atomic.Uint32
	cursor    atomic.Uint32
	ids       atomic.Uint64
	slots     []slot
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 256

// DefaultSampleInterval is the admission rate of a fresh tracer: 1 in 16
// events carries span stamps. Even a single monotonic clock read per event
// (~tens of ns) would exceed the tracer's overhead budget on a saturated
// ingest path, so the full stamp sequence is paid only by sampled events;
// the ring of recent traces stays representative. SetSampleInterval(1)
// traces every event.
const DefaultSampleInterval = 16

// NewTracer returns a tracer retaining the most recent traces in a ring of
// at least the given capacity (rounded up to a power of two).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{base: time.Now(), mask: uint32(n - 1), every: DefaultSampleInterval, slots: make([]slot, n)}
}

// SetSampleInterval makes Sample admit one in every n calls (n ≤ 1 admits
// every call). Set before the pipeline starts; it is not synchronized with
// concurrent Sample calls.
func (t *Tracer) SetSampleInterval(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.every = uint32(n)
}

// Sample reports whether the caller should trace this unit of work. The
// first call always samples, then one in every SetSampleInterval calls.
// Nil-safe (false) and allocation-free.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	if t.every <= 1 {
		return true
	}
	return t.sampleCtr.Add(1)%t.every == 1
}

// Interval returns the sampling interval Sample admits at (1 = every
// call, 0 for a nil tracer). Pipelines that gate sampling themselves —
// the runtime's ingest rings stamp one in every Interval admissions under
// a lock they already hold, instead of paying Sample's shared atomic per
// event — read it once at construction, so set the interval before the
// pipeline starts.
func (t *Tracer) Interval() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Now returns the tracer's monotonic clock: nanoseconds since the tracer
// was created. It never allocates.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.base))
}

// Capacity returns the ring size (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// claim takes the next ring cell and stamps the shared trace fields.
// Callers must fill the stage stamps and state before unlocking.
func (t *Tracer) claim(kind uint8, key string, shard int) (*slot, uint64) {
	idx := (t.cursor.Add(1) - 1) & t.mask
	id := t.ids.Add(1)
	s := &t.slots[idx]
	s.mu.Lock()
	s.id = id
	s.kind = kind
	s.shard = int16(shard)
	s.keyLen = uint8(copy(s.key[:], key))
	s.stamps = [8]int64{}
	return s, id
}

// PublishApplied records one event that made it through ingest → queue →
// apply. The caller carries the raw stamps (taken with Now) through the
// pipeline and publishes the whole record with a single lock acquisition —
// the span hot path. Returns the trace id.
func (t *Tracer) PublishApplied(kind uint8, key string, shard int, start, offered, dequeued, applied int64) uint64 {
	if t == nil {
		return 0
	}
	s, id := t.claim(kind, key, shard)
	s.state = stateApplied
	s.stamps[0], s.stamps[1], s.stamps[2], s.stamps[3] = start, offered, dequeued, applied
	s.mu.Unlock()
	return id
}

// PublishDropped records one event shed before apply (overflow policy,
// canceled blocking push, or shutdown). end is the drop time.
func (t *Tracer) PublishDropped(kind uint8, key string, shard int, start, offered, end int64) uint64 {
	if t == nil {
		return 0
	}
	s, id := t.claim(kind, key, shard)
	s.state = stateDropped
	s.stamps[0], s.stamps[1] = start, offered
	s.stamps[7] = end
	s.mu.Unlock()
	return id
}

// CompleteCycle attaches one finished MEA cycle (evaluate + act spans) to
// every applied trace the cycle covered — those whose apply finished
// before the cycle's evaluation started — turning them into complete
// end-to-end traces. Returns how many traces it completed.
func (t *Tracer) CompleteCycle(evalStart, evalEnd, actStart, actEnd int64) int {
	if t == nil {
		return 0
	}
	done := 0
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.state == stateApplied && s.stamps[3] <= evalStart {
			s.stamps[4], s.stamps[5], s.stamps[6], s.stamps[7] = evalStart, evalEnd, actStart, actEnd
			s.state = stateDone
			done++
		}
		s.mu.Unlock()
	}
	return done
}

// TraceView is one trace copied out of the ring for rendering.
type TraceView struct {
	ID    uint64
	Kind  uint8  // caller-defined event kind (runtime maps it to a name)
	Key   string // routing-key prefix (monitoring variable / component)
	Shard int
	Start int64 // ns on the tracer clock (Now scale)
	// Dropped marks events shed before apply; Complete marks traces with a
	// covering MEA cycle recorded. A trace that is neither is applied and
	// still waiting for its cycle.
	Dropped  bool
	Complete bool
	Total    time.Duration // end-to-end (or time until drop / so far)
	Stages   [NumStages]time.Duration
}

// Snapshot copies every retained trace out of the ring, newest last.
func (t *Tracer) Snapshot() []TraceView {
	if t == nil {
		return nil
	}
	out := make([]TraceView, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.state != stateFree {
			out = append(out, s.view())
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// view renders the slot; the caller holds s.mu.
func (s *slot) view() TraceView {
	v := TraceView{
		ID:    s.id,
		Kind:  s.kind,
		Key:   string(s.key[:s.keyLen]),
		Shard: int(s.shard),
		Start: s.stamps[0],
	}
	st := &s.stamps
	v.Stages[StageIngest] = time.Duration(st[1] - st[0])
	switch s.state {
	case stateDropped:
		v.Dropped = true
		v.Stages[StageQueue] = time.Duration(st[7] - st[1])
		v.Total = time.Duration(st[7] - st[0])
	case stateApplied:
		v.Stages[StageQueue] = time.Duration(st[2] - st[1])
		v.Stages[StageApply] = time.Duration(st[3] - st[2])
		v.Total = time.Duration(st[3] - st[0])
	case stateDone:
		v.Complete = true
		v.Stages[StageQueue] = time.Duration(st[2] - st[1])
		v.Stages[StageApply] = time.Duration(st[3] - st[2])
		v.Stages[StageEvalWait] = time.Duration(st[4] - st[3])
		v.Stages[StageEvaluate] = time.Duration(st[5] - st[4])
		v.Stages[StageAct] = time.Duration(st[7] - st[6])
		v.Total = time.Duration(st[7] - st[0])
	}
	return v
}

// NewestCompleteID returns the highest trace ID among retained complete
// (end-to-end) traces, 0 when none — the span the most recent finished
// MEA cycle covered. Nil-safe and allocation-free; the flight recorder
// stamps it onto incident bundles at trigger time.
func (t *Tracer) NewestCompleteID() uint64 {
	if t == nil {
		return 0
	}
	var newest uint64
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.state == stateDone && s.id > newest {
			newest = s.id
		}
		s.mu.Unlock()
	}
	return newest
}

// Slowest returns the n slowest retained traces (complete and dropped
// traces by their final total, in-flight ones by time accrued so far),
// slowest first.
func (t *Tracer) Slowest(n int) []TraceView {
	if t == nil || n <= 0 {
		return nil
	}
	all := t.Snapshot()
	sort.SliceStable(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// WriteText renders traces as an aligned text table, one per line with
// per-stage timings. kindName maps the caller-defined kind byte to a
// label; nil prints the numeric kind.
func WriteText(w io.Writer, traces []TraceView, kindName func(uint8) string) error {
	if _, err := fmt.Fprintf(w, "%-8s %-8s %-12s %5s %-8s %10s  %s\n",
		"TRACE", "KIND", "KEY", "SHARD", "STATE", "TOTAL", "STAGES"); err != nil {
		return err
	}
	for _, tr := range traces {
		kind := fmt.Sprintf("%d", tr.Kind)
		if kindName != nil {
			kind = kindName(tr.Kind)
		}
		state := "applied"
		switch {
		case tr.Dropped:
			state = "dropped"
		case tr.Complete:
			state = "done"
		}
		if _, err := fmt.Fprintf(w, "%-8d %-8s %-12s %5d %-8s %10s ",
			tr.ID, kind, tr.Key, tr.Shard, state, tr.Total.Round(time.Microsecond)); err != nil {
			return err
		}
		for i, d := range tr.Stages {
			if d == 0 && i > StageApply && !tr.Complete {
				continue
			}
			if _, err := fmt.Fprintf(w, " %s=%s", StageNames[i], d.Round(time.Microsecond)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

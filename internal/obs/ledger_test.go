package obs

import (
	"math"
	"sync"
	"testing"

	"repro/internal/predict"
)

func mustLedger(t *testing.T, cfg LedgerConfig, names ...string) *Ledger {
	t.Helper()
	l, err := NewLedger(cfg, names...)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return l
}

func TestLedgerConfigValidation(t *testing.T) {
	bad := []LedgerConfig{
		{LeadTime: -1}, {Slack: math.NaN()}, {Window: math.Inf(1)},
	}
	for _, cfg := range bad {
		if _, err := NewLedger(cfg); err == nil {
			t.Errorf("NewLedger(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := NewLedger(LedgerConfig{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// TestLedgerMatchingBoundaries pins the Sect. 3.3 interval rule: a failure
// at exactly the prediction time is NOT a match (strict lower bound), one
// at exactly t+Δtl+Δtp IS (inclusive upper bound).
func TestLedgerMatchingBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		failAt  float64 // NaN = no failure
		predict bool
		want    predict.Outcome
	}{
		{"failure at t excluded", 100, true, predict.FalsePositive},
		{"failure just after t", 100.001, true, predict.TruePositive},
		{"failure at window end", 700, true, predict.TruePositive},
		{"failure past window", 700.001, true, predict.FalsePositive},
		{"no failure, no warning", math.NaN(), false, predict.TrueNegative},
		{"missed failure", 400, false, predict.FalseNegative},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := mustLedger(t, LedgerConfig{LeadTime: 300, Slack: 300})
			l.RecordPrediction("layer", 100, tc.predict, 0.9)
			if !math.IsNaN(tc.failAt) {
				l.RecordFailure(tc.failAt)
			}
			l.Advance(100 + 600) // window fully elapsed
			got := l.Quality("layer")
			var want predict.ContingencyTable
			tableAdd(&want, tc.want, 1)
			if got != want {
				t.Fatalf("table = %+v, want %+v", got, want)
			}
		})
	}
}

func TestLedgerPendingUntilWindowElapses(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 300, Slack: 300})
	l.RecordPrediction("layer", 100, true, 1)
	l.Advance(699.9) // 100+600 > 699.9: not resolvable yet
	if got := l.Quality("layer"); got.Total() != 0 {
		t.Fatalf("prediction resolved early: %+v", got)
	}
	snap := l.Snapshot()
	if snap.Layers[layerIndex(snap, "layer")].Pending != 1 {
		t.Fatalf("pending count wrong: %+v", snap)
	}
	l.RecordFailure(650) // late ground truth, still inside the window
	l.Advance(700)
	if got := l.Quality("layer"); got.TP != 1 || got.Total() != 1 {
		t.Fatalf("after window elapsed: %+v, want one TP", got)
	}
}

func layerIndex(s LedgerSnapshot, name string) int {
	for i, lq := range s.Layers {
		if lq.Layer == name {
			return i
		}
	}
	return -1
}

func TestLedgerRollingWindowEviction(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 10, Slack: 0, Window: 100})
	// Prediction at t=0 (FP), then at t=200 (TP with failure at 205).
	l.RecordPrediction("layer", 0, true, 1)
	l.RecordPrediction("layer", 200, true, 1)
	l.RecordFailure(205)
	l.Advance(210)
	cum := l.Cumulative("layer")
	if cum.FP != 1 || cum.TP != 1 {
		t.Fatalf("cumulative = %+v, want 1 FP + 1 TP", cum)
	}
	// Watermark 210, window 100 → the t=0 entry (age 210) must be evicted
	// from the rolling table but stay in the cumulative one.
	roll := l.Quality("layer")
	if roll.FP != 0 || roll.TP != 1 {
		t.Fatalf("rolling = %+v, want the old FP evicted", roll)
	}
}

func TestLedgerNoWindowRollingEqualsCumulative(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 10})
	l.RecordPrediction("layer", 0, true, 1)
	l.RecordPrediction("layer", 1000, false, 0)
	l.Advance(5000)
	if l.Quality("layer") != l.Cumulative("layer") {
		t.Fatalf("window=0 rolling %+v != cumulative %+v", l.Quality("layer"), l.Cumulative("layer"))
	}
}

func TestLedgerFailurePruning(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 10, Slack: 5})
	for i := 0; i < 100; i++ {
		l.RecordFailure(float64(i))
	}
	l.Advance(1000)
	l.mu.Lock()
	kept := len(l.failures)
	l.mu.Unlock()
	if kept != 0 {
		t.Fatalf("%d stale failures kept past the pruning horizon", kept)
	}
	// Failures near the watermark survive one extra horizon.
	l.RecordFailure(995)
	l.Advance(1000)
	l.mu.Lock()
	kept = len(l.failures)
	l.mu.Unlock()
	if kept != 1 {
		t.Fatalf("recent failure pruned (kept=%d)", kept)
	}
}

func TestLedgerOutOfOrderFailures(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 50, Slack: 0})
	l.RecordPrediction("layer", 100, true, 1)
	l.RecordFailure(400)
	l.RecordFailure(120) // arrives late, before the earlier record in time
	l.Advance(150)
	if got := l.Quality("layer"); got.TP != 1 {
		t.Fatalf("out-of-order failure not matched: %+v", got)
	}
}

func TestLedgerLayersAndSnapshot(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 1}, "errors", "memory")
	want := []string{"errors", "memory", CombinedLayer}
	got := l.Layers()
	if len(got) != len(want) {
		t.Fatalf("Layers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Layers() = %v, want %v", got, want)
		}
	}
	l.RecordPrediction("swap", 0, false, 0) // auto-created
	l.RecordFailure(3)
	l.Advance(10)
	snap := l.Snapshot()
	if snap.Predictions != 1 || snap.Failures != 1 || snap.Watermark != 10 {
		t.Fatalf("snapshot counters: %+v", snap)
	}
	if idx := layerIndex(snap, "swap"); idx < 0 || snap.Layers[idx].Cumulative.TN != 1 {
		t.Fatalf("auto-created layer missing or unresolved: %+v", snap.Layers)
	}
	if l.Quality("unknown").Total() != 0 {
		t.Fatalf("unknown layer returned non-empty table")
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.RecordPrediction("x", 0, true, 1)
	l.RecordFailure(1)
	l.Advance(10)
	if l.Quality("x").Total() != 0 || l.Cumulative("x").Total() != 0 {
		t.Fatalf("nil ledger returned counts")
	}
	if s := l.Snapshot(); len(s.Layers) != 0 {
		t.Fatalf("nil ledger snapshot non-empty")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := mustLedger(t, LedgerConfig{LeadTime: 5, Slack: 1, Window: 50}, "a", "b")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			layer := "a"
			if g%2 == 1 {
				layer = "b"
			}
			for i := 0; i < 300; i++ {
				t := float64(i)
				l.RecordPrediction(layer, t, i%3 == 0, 0.5)
				if i%17 == 0 {
					l.RecordFailure(t + 2)
				}
				if i%10 == 0 {
					l.Advance(t)
				}
				l.Quality(layer)
			}
		}(g)
	}
	wg.Wait()
	l.Advance(1e6)
	snap := l.Snapshot()
	if snap.Predictions != 4*300 {
		t.Fatalf("journaled %d predictions, want %d", snap.Predictions, 4*300)
	}
	resolved := 0
	for _, lq := range snap.Layers {
		resolved += lq.Cumulative.Total() + lq.Pending
	}
	if resolved != 4*300 {
		t.Fatalf("resolved+pending = %d, want %d", resolved, 4*300)
	}
}

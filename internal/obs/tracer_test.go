package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultTraceCapacity}, {-5, DefaultTraceCapacity},
		{1, 1}, {2, 2}, {3, 4}, {100, 128}, {256, 256},
	} {
		if got := NewTracer(tc.in).Capacity(); got != tc.want {
			t.Errorf("NewTracer(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTracerPublishAndComplete(t *testing.T) {
	tr := NewTracer(8)
	id := tr.PublishApplied(1, "load", 2, 100, 150, 300, 450)
	if id == 0 {
		t.Fatalf("PublishApplied returned id 0")
	}
	drop := tr.PublishDropped(2, "mem", 1, 10, 20, 90)
	if drop == id {
		t.Fatalf("drop reused trace id %d", id)
	}

	if done := tr.CompleteCycle(500, 700, 700, 720); done != 1 {
		t.Fatalf("CompleteCycle completed %d traces, want 1", done)
	}
	// A second cycle must not re-complete the same trace.
	if done := tr.CompleteCycle(900, 950, 950, 960); done != 0 {
		t.Fatalf("second CompleteCycle completed %d traces, want 0", done)
	}

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d traces, want 2", len(snap))
	}
	var appliedView, dropView TraceView
	for _, v := range snap {
		if v.ID == id {
			appliedView = v
		} else {
			dropView = v
		}
	}

	if !appliedView.Complete || appliedView.Dropped {
		t.Fatalf("applied trace state = %+v, want complete", appliedView)
	}
	wantStages := [NumStages]time.Duration{50, 150, 150, 50, 200, 20}
	if appliedView.Stages != wantStages {
		t.Errorf("stages = %v, want %v", appliedView.Stages, wantStages)
	}
	if appliedView.Total != 620 {
		t.Errorf("total = %v, want 620ns", appliedView.Total)
	}
	if appliedView.Key != "load" || appliedView.Shard != 2 || appliedView.Kind != 1 {
		t.Errorf("trace identity = %+v", appliedView)
	}

	if !dropView.Dropped || dropView.Complete {
		t.Fatalf("dropped trace state = %+v, want dropped", dropView)
	}
	if dropView.Total != 80 || dropView.Stages[StageQueue] != 70 || dropView.Stages[StageIngest] != 10 {
		t.Errorf("dropped spans = %+v", dropView)
	}
}

func TestTracerCycleSkipsLaterApply(t *testing.T) {
	tr := NewTracer(8)
	tr.PublishApplied(0, "a", 0, 0, 1, 2, 3)
	tr.PublishApplied(0, "b", 0, 0, 1, 2, 600) // applied after the cycle's eval start
	if done := tr.CompleteCycle(500, 550, 550, 560); done != 1 {
		t.Fatalf("completed %d traces, want 1 (later apply must wait)", done)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.PublishApplied(0, "k", 0, int64(i), int64(i)+1, int64(i)+2, int64(i)+3)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(snap))
	}
	for i, v := range snap {
		if want := uint64(7 + i); v.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d (newest four, ordered)", i, v.ID, want)
		}
	}
}

func TestTracerKeyTruncation(t *testing.T) {
	tr := NewTracer(1)
	long := strings.Repeat("x", 3*keyBytes)
	tr.PublishApplied(0, long, 0, 0, 1, 2, 3)
	v := tr.Snapshot()[0]
	if v.Key != long[:keyBytes] {
		t.Fatalf("key = %q, want %d-byte prefix", v.Key, keyBytes)
	}
}

func TestTracerSlowest(t *testing.T) {
	tr := NewTracer(8)
	tr.PublishApplied(0, "fast", 0, 0, 1, 2, 10)
	tr.PublishApplied(0, "slow", 0, 0, 1, 2, 500)
	tr.PublishApplied(0, "mid", 0, 0, 1, 2, 100)
	got := tr.Slowest(2)
	if len(got) != 2 || got[0].Key != "slow" || got[1].Key != "mid" {
		t.Fatalf("Slowest(2) = %+v", got)
	}
	if tr.Slowest(0) != nil {
		t.Fatalf("Slowest(0) should be nil")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 || tr.Capacity() != 0 {
		t.Fatalf("nil tracer clock/capacity not zero")
	}
	if tr.PublishApplied(0, "k", 0, 0, 0, 0, 0) != 0 || tr.PublishDropped(0, "k", 0, 0, 0, 0) != 0 {
		t.Fatalf("nil tracer publish returned nonzero id")
	}
	if tr.CompleteCycle(0, 0, 0, 0) != 0 || tr.Snapshot() != nil || tr.Slowest(3) != nil {
		t.Fatalf("nil tracer reads not empty")
	}
}

// TestSpanHotPathZeroAllocs pins the acceptance criterion: the span hot
// path — clock reads plus a whole-trace publish — performs no heap
// allocations.
func TestSpanHotPathZeroAllocs(t *testing.T) {
	tr := NewTracer(64)
	key := "cpu_user"
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Now()
		offered := tr.Now()
		dequeued := tr.Now()
		tr.PublishApplied(1, key, 3, start, offered, dequeued, tr.Now())
	})
	if allocs != 0 {
		t.Fatalf("span hot path allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		start := tr.Now()
		tr.PublishDropped(1, key, 3, start, start, tr.Now())
	})
	if allocs != 0 {
		t.Fatalf("drop publish allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.Now()
				if i%7 == 0 {
					tr.PublishDropped(uint8(g), "key", g, s, s, tr.Now())
				} else {
					tr.PublishApplied(uint8(g), "key", g, s, s, s, tr.Now())
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			n := tr.Now()
			tr.CompleteCycle(n, n+1, n+1, n+2)
			tr.Snapshot()
		}
	}()
	wg.Wait()
	if got := len(tr.Snapshot()); got != 32 {
		t.Fatalf("ring holds %d traces after churn, want full 32", got)
	}
}

func TestWriteText(t *testing.T) {
	tr := NewTracer(4)
	tr.PublishApplied(1, "load", 0, 0, 1000, 2000, 3000)
	tr.PublishDropped(0, "err", 1, 0, 500, 800)
	tr.CompleteCycle(4000, 5000, 5000, 6000)

	var sb strings.Builder
	names := func(k uint8) string {
		if k == 1 {
			return "sample"
		}
		return "error"
	}
	if err := WriteText(&sb, tr.Slowest(10), names); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"TRACE", "sample", "error", "done", "dropped", "queue=", "evaluate="} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSampleInterval(4)
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, tr.Sample())
	}
	want := []bool{true, false, false, false, true, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample pattern = %v, want %v", got, want)
		}
	}
	tr.SetSampleInterval(0) // clamps to 1: every event
	for i := 0; i < 5; i++ {
		if !tr.Sample() {
			t.Fatal("interval 1 must sample every call")
		}
	}
	var nilTr *Tracer
	if nilTr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	nilTr.SetSampleInterval(3) // must not panic
}

func TestTracerDefaultSampleInterval(t *testing.T) {
	tr := NewTracer(8)
	if !tr.Sample() {
		t.Fatal("first event must always be sampled")
	}
	admitted := 1
	for i := 0; i < DefaultSampleInterval*4; i++ {
		if tr.Sample() {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d of %d, want 5", admitted, 1+DefaultSampleInterval*4)
	}
}

// BenchmarkTracerPublishApplied pins the span hot path: the reported
// allocs/op must be 0 (also asserted by TestSpanHotPathZeroAllocs).
func BenchmarkTracerPublishApplied(b *testing.B) {
	tr := NewTracer(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := tr.Now()
		tr.PublishApplied(1, "mem_free", 0, now, now+1, now+2, now+3)
	}
}

package obs

import (
	"math"
	"testing"

	"repro/internal/pfmmodel"
	"repro/internal/predict"
)

// tableFor builds a contingency table realizing (approximately) the given
// precision/recall/fpr with integer counts.
func tableFor(tp, fp, tn, fn int) predict.ContingencyTable {
	return predict.ContingencyTable{TP: tp, FP: fp, TN: tn, FN: fn}
}

func TestAssessModelMatchesReferenceOnTable2Quality(t *testing.T) {
	// 70% precision, 62% recall, fpr = 30/(30+1845) = 0.016: the Table 2
	// operating point expressed as raw counts.
	c := tableFor(70, 30, 1845, 43)
	base := pfmmodel.DefaultParams()
	a, err := AssessModel(c, base)
	if err != nil {
		t.Fatalf("AssessModel: %v", err)
	}
	if math.Abs(a.Measured.Precision-0.70) > 1e-12 ||
		math.Abs(a.Measured.Recall-70.0/113.0) > 1e-12 ||
		math.Abs(a.Measured.FPR-0.016) > 1e-12 {
		t.Fatalf("measured quality = %+v", a.Measured)
	}
	// Reference figures must reproduce the paper's Eq. 14 value ≈ 0.488.
	if math.Abs(a.Reference.UnavailabilityRatio-0.488) > 1e-2 {
		t.Fatalf("reference unavailability ratio = %g, want ≈0.488", a.Reference.UnavailabilityRatio)
	}
	// The measured table is essentially the reference operating point, so
	// the deltas must be small.
	if math.Abs(a.AvailabilityDelta) > 1e-3 || math.Abs(a.MTTFRelative) > 0.05 {
		t.Fatalf("deltas too large for a near-reference table: %+v", a)
	}
	if a.Measured.MTTF <= 0 || a.Measured.MedianTTF <= 0 || a.Measured.HazardAtMTTF <= 0 {
		t.Fatalf("non-positive model figures: %+v", a.Measured)
	}
}

func TestAssessModelDetectsDrift(t *testing.T) {
	base := pfmmodel.DefaultParams()
	good, err := AssessModel(tableFor(70, 30, 1845, 43), base)
	if err != nil {
		t.Fatalf("good: %v", err)
	}
	// A drifted predictor: recall collapsed to ~0.2, precision to 0.4.
	bad, err := AssessModel(tableFor(20, 30, 1845, 80), base)
	if err != nil {
		t.Fatalf("bad: %v", err)
	}
	if !(bad.Measured.Availability < good.Measured.Availability) {
		t.Fatalf("drift did not lower availability: good=%g bad=%g",
			good.Measured.Availability, bad.Measured.Availability)
	}
	if !(bad.Measured.UnavailabilityRatio > good.Measured.UnavailabilityRatio) {
		t.Fatalf("drift did not raise unavailability ratio")
	}
}

func TestAssessModelRejectsDegenerateTables(t *testing.T) {
	base := pfmmodel.DefaultParams()
	for _, c := range []predict.ContingencyTable{
		{},                    // empty
		{TN: 10, FN: 2},       // no warnings → precision undefined
		{TP: 3, FP: 1},        // no negatives → fpr undefined
		{TP: 3, TN: 10},       // fpr = 0: chain cannot derive r_TN
		{FP: 3, TN: 1, FN: 2}, // precision = 0
	} {
		if _, err := AssessModel(c, base); err == nil {
			t.Errorf("AssessModel(%+v) accepted degenerate table", c)
		}
	}
}

func TestPhaseTypeQuantile(t *testing.T) {
	m, err := pfmmodel.DefaultParams().ReliabilityModel()
	if err != nil {
		t.Fatalf("ReliabilityModel: %v", err)
	}
	med, err := m.Quantile(0.5)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	f, err := m.CDF(med)
	if err != nil {
		t.Fatalf("CDF: %v", err)
	}
	if math.Abs(f-0.5) > 1e-6 {
		t.Fatalf("CDF(median) = %g, want 0.5", f)
	}
	for _, q := range []float64{0, 1, -0.1, math.NaN()} {
		if _, err := m.Quantile(q); err == nil {
			t.Errorf("Quantile(%g) accepted out-of-range argument", q)
		}
	}
}

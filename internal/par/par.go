// Package par provides the deterministic parallel fan-out primitive shared
// by the offline pipeline (the experiments harness, UBF training,
// cross-validation folds): n independent work units indexed 0..n-1 are
// distributed over a bounded worker pool, each unit writes only to its own
// index, and callers merge results in index order.
//
// Determinism contract (the same one established for hsmm.Fit): a unit's
// output must depend only on its index and its inputs — never on which
// worker ran it or in what order units completed. Callers that need
// randomness pre-split one stats.RNG stream per unit before fanning out.
// Under that contract a parallel run is bit-identical to the serial one at
// any worker count, so experiment tables replay byte-for-byte.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers bounds a worker count by GOMAXPROCS and the number of tasks
// (always ≥ 1).
func Workers(tasks int) int {
	w := runtime.GOMAXPROCS(0)
	if tasks < w {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) on up to GOMAXPROCS workers and
// returns when all units are done. Units are claimed from a shared atomic
// counter, so scheduling is dynamic but the set of executed indices — and
// anything written at dst[i] — is identical to the serial loop.
func For(n int, fn func(i int)) {
	ForN(0, n, fn)
}

// ForN is For with an explicit worker bound: workers ≤ 0 defaults to
// GOMAXPROCS, workers == 1 runs the plain serial loop inline (the reference
// path the determinism tests compare against).
func ForN(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

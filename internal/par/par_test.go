package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	For(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestForNMatchesSerial(t *testing.T) {
	const n = 257
	want := make([]float64, n)
	ForN(1, n, func(i int) { want[i] = float64(i) * 1.5 })
	for _, workers := range []int{0, 2, 3, 8, n + 7} {
		got := make([]float64, n)
		ForN(workers, n, func(i int) { got[i] = float64(i) * 1.5 })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %g, want %g", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	For(0, func(int) { t.Fatal("fn called for n=0") })
	ForN(4, -3, func(int) { t.Fatal("fn called for n<0") })
	ran := false
	For(1, func(i int) {
		if i != 0 {
			t.Fatalf("index %d", i)
		}
		ran = true
	})
	if !ran {
		t.Fatal("single unit not executed")
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(big) = %d", w)
	}
}

// TestForUnderContention hammers the pool with many tiny units writing
// disjoint slots — the -race target for the worker-pool claim loop.
func TestForUnderContention(t *testing.T) {
	const rounds = 50
	const n = 512
	for r := 0; r < rounds; r++ {
		out := make([]int, n)
		ForN(8, n, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("round %d: out[%d] = %d", r, i, v)
			}
		}
	}
}

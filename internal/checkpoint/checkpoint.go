// Package checkpoint implements the prepared-repair substrate of Sect. 4.3:
// checkpoint stores, periodic and prediction-driven checkpointing policies,
// and the Fig. 8 time-to-repair decomposition
//
//	TTR = time-to-fault-free (repair/reconfiguration) + recomputation,
//
// where preparation shortens the first term (prewarmed spare) and
// prediction-driven checkpoints close to the failure shorten the second.
package checkpoint

import (
	"errors"
	"fmt"
	"math"
)

// ErrCheckpoint is wrapped by all package errors.
var ErrCheckpoint = errors.New("checkpoint: invalid operation")

// Checkpoint is one saved recovery point.
type Checkpoint struct {
	Time float64 // when it was saved [s]
	// Prepared records whether this checkpoint was saved on a failure
	// warning (prediction-driven) rather than periodically.
	Prepared bool
}

// Store keeps checkpoints in time order.
type Store struct {
	checkpoints []Checkpoint
}

// NewStore returns an empty store with an implicit checkpoint at time 0
// (the initial state is always recoverable).
func NewStore() *Store {
	return &Store{checkpoints: []Checkpoint{{Time: 0}}}
}

// Save records a checkpoint; time must not decrease.
func (s *Store) Save(c Checkpoint) error {
	if math.IsNaN(c.Time) || math.IsInf(c.Time, 0) {
		return fmt.Errorf("%w: checkpoint time %g", ErrCheckpoint, c.Time)
	}
	if n := len(s.checkpoints); n > 0 && c.Time < s.checkpoints[n-1].Time {
		return fmt.Errorf("%w: checkpoint time %g before latest %g",
			ErrCheckpoint, c.Time, s.checkpoints[n-1].Time)
	}
	s.checkpoints = append(s.checkpoints, c)
	return nil
}

// Latest returns the most recent checkpoint.
func (s *Store) Latest() Checkpoint {
	return s.checkpoints[len(s.checkpoints)-1]
}

// Len returns the number of checkpoints (including the implicit initial
// one).
func (s *Store) Len() int { return len(s.checkpoints) }

// RecoveryParams quantifies the Fig. 8 TTR factors.
type RecoveryParams struct {
	// RepairTime is the time to obtain a fault-free system without
	// preparation (hardware repair / cold-spare boot / reconfiguration).
	RepairTime float64
	// PreparedRepairTime is the same with preparation (spare prewarmed on
	// the warning); must be ≤ RepairTime.
	PreparedRepairTime float64
	// RecomputeFactor converts lost wall-clock time into recomputation
	// time (1 = replay at original speed; < 1 = replay faster).
	RecomputeFactor float64
}

// Validate checks the parameters.
func (p RecoveryParams) Validate() error {
	if p.RepairTime < 0 || p.PreparedRepairTime < 0 || p.RecomputeFactor < 0 {
		return fmt.Errorf("%w: negative recovery parameter %+v", ErrCheckpoint, p)
	}
	if p.PreparedRepairTime > p.RepairTime {
		return fmt.Errorf("%w: prepared repair (%g) slower than unprepared (%g)",
			ErrCheckpoint, p.PreparedRepairTime, p.RepairTime)
	}
	return nil
}

// TTRBreakdown decomposes one recovery (Fig. 8).
type TTRBreakdown struct {
	FaultFree float64 // time until a fault-free system is available
	Recompute float64 // time to redo computation lost since the checkpoint
}

// Total returns the full time to repair.
func (b TTRBreakdown) Total() float64 { return b.FaultFree + b.Recompute }

// Recover computes the TTR of a failure at failTime restored from the
// store's latest checkpoint via the roll-backward scheme (Sect. 4.3:
// recover to a previous fault-free state, then redo the lost computation).
// prepared selects the prewarmed repair path (the warning arrived in time
// to prepare).
func Recover(store *Store, p RecoveryParams, failTime float64, prepared bool) (TTRBreakdown, error) {
	if err := p.Validate(); err != nil {
		return TTRBreakdown{}, err
	}
	cp := store.Latest()
	if failTime < cp.Time {
		return TTRBreakdown{}, fmt.Errorf("%w: failure at %g before checkpoint at %g",
			ErrCheckpoint, failTime, cp.Time)
	}
	b := TTRBreakdown{Recompute: (failTime - cp.Time) * p.RecomputeFactor}
	if prepared {
		b.FaultFree = p.PreparedRepairTime
	} else {
		b.FaultFree = p.RepairTime
	}
	return b, nil
}

// RollForwardParams quantifies the roll-forward scheme of Sect. 4.3: the
// system is moved to a *new* fault-free state instead of replaying from a
// checkpoint, trading recomputation for a fixed state-construction cost
// (e.g. rebuilding session state from peers, Randell's reconfiguration).
type RollForwardParams struct {
	// RepairTime / PreparedRepairTime as in RecoveryParams.
	RepairTime         float64
	PreparedRepairTime float64
	// ForwardCost is the fixed time to construct the new state [s].
	ForwardCost float64
}

// Validate checks the parameters.
func (p RollForwardParams) Validate() error {
	if p.RepairTime < 0 || p.PreparedRepairTime < 0 || p.ForwardCost < 0 {
		return fmt.Errorf("%w: negative roll-forward parameter %+v", ErrCheckpoint, p)
	}
	if p.PreparedRepairTime > p.RepairTime {
		return fmt.Errorf("%w: prepared repair (%g) slower than unprepared (%g)",
			ErrCheckpoint, p.PreparedRepairTime, p.RepairTime)
	}
	return nil
}

// RecoverForward computes the TTR of the roll-forward scheme: fault-free
// time plus the fixed forward cost, independent of any checkpoint age.
func RecoverForward(p RollForwardParams, prepared bool) (TTRBreakdown, error) {
	if err := p.Validate(); err != nil {
		return TTRBreakdown{}, err
	}
	b := TTRBreakdown{Recompute: p.ForwardCost}
	if prepared {
		b.FaultFree = p.PreparedRepairTime
	} else {
		b.FaultFree = p.RepairTime
	}
	return b, nil
}

// PreferForward reports whether roll-forward beats roll-backward for a
// failure at failTime given the checkpoint state — the scheme-selection
// decision of a recovery planner (Sect. 4.3 lists both schemes; which wins
// depends on how much computation a roll-backward would replay).
func PreferForward(store *Store, back RecoveryParams, fwd RollForwardParams, failTime float64, prepared bool) (bool, error) {
	b, err := Recover(store, back, failTime, prepared)
	if err != nil {
		return false, err
	}
	f, err := RecoverForward(fwd, prepared)
	if err != nil {
		return false, err
	}
	return f.Total() < b.Total(), nil
}

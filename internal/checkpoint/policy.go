package checkpoint

import (
	"fmt"

	"repro/internal/sim"
)

// PeriodicPolicy saves checkpoints on a fixed interval — the classical
// fault-tolerance scheme of Sect. 4.3 ("checkpoints are saved independently
// of upcoming failures, e.g., periodically").
type PeriodicPolicy struct {
	Interval float64
}

// Install schedules recurring checkpoint saves on the engine until the
// stop callback returns false.
func (p PeriodicPolicy) Install(e *sim.Engine, store *Store, active func() bool) error {
	if p.Interval <= 0 {
		return fmt.Errorf("%w: periodic interval %g", ErrCheckpoint, p.Interval)
	}
	return e.Every(p.Interval, func() bool {
		if !active() {
			return false
		}
		// Engine time never decreases, so Save cannot fail here.
		_ = store.Save(Checkpoint{Time: e.Now()})
		return true
	})
}

// PredictionDrivenPolicy saves a checkpoint when a failure warning arrives,
// placing the recovery point close to the failure (Sect. 4.3: "checkpoints
// may be saved upon failure prediction close to the failure"). The paper's
// caveat — the state might already be corrupted — is modeled by
// StateTrustProb: with probability 1−StateTrustProb the checkpoint is
// discarded as untrustworthy.
type PredictionDrivenPolicy struct {
	// StateTrustProb is the probability the pre-failure state is still
	// checkpointable (fault isolation holds). 1 = always trust.
	StateTrustProb float64
	// TrustDraw decides trustworthiness; defaults to always-trust when
	// nil. Inject a seeded RNG draw for stochastic studies.
	TrustDraw func() float64
}

// OnWarning saves a warning-triggered checkpoint if the state is trusted.
// It reports whether a checkpoint was saved.
func (p PredictionDrivenPolicy) OnWarning(store *Store, now float64) (bool, error) {
	if p.StateTrustProb < 0 || p.StateTrustProb > 1 {
		return false, fmt.Errorf("%w: trust probability %g", ErrCheckpoint, p.StateTrustProb)
	}
	trust := 1.0
	if p.TrustDraw != nil {
		trust = p.TrustDraw()
	} else if p.StateTrustProb < 1 {
		return false, fmt.Errorf("%w: stochastic trust needs a TrustDraw", ErrCheckpoint)
	}
	if trust > p.StateTrustProb {
		return false, nil
	}
	if err := store.Save(Checkpoint{Time: now, Prepared: true}); err != nil {
		return false, err
	}
	return true, nil
}

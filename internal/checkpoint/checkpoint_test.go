package checkpoint

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func params() RecoveryParams {
	return RecoveryParams{RepairTime: 120, PreparedRepairTime: 20, RecomputeFactor: 0.8}
}

func TestStoreOrdering(t *testing.T) {
	s := NewStore()
	if s.Len() != 1 || s.Latest().Time != 0 {
		t.Fatal("store should start with the initial checkpoint")
	}
	if err := s.Save(Checkpoint{Time: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Time: 5}); err == nil {
		t.Fatal("out-of-order checkpoint accepted")
	}
	if err := s.Save(Checkpoint{Time: math.NaN()}); err == nil {
		t.Fatal("NaN checkpoint accepted")
	}
	if s.Latest().Time != 10 {
		t.Fatalf("latest = %+v", s.Latest())
	}
}

func TestRecoveryParamsValidate(t *testing.T) {
	bad := []RecoveryParams{
		{RepairTime: -1, PreparedRepairTime: 0, RecomputeFactor: 1},
		{RepairTime: 10, PreparedRepairTime: 20, RecomputeFactor: 1},
		{RepairTime: 10, PreparedRepairTime: 5, RecomputeFactor: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFig8TTRDecomposition reproduces the Fig. 8 comparison: classical
// recovery (periodic checkpoint, unprepared repair) vs prediction-driven
// recovery (checkpoint saved on the warning, prewarmed spare). Both TTR
// factors shrink.
func TestFig8TTRDecomposition(t *testing.T) {
	p := params()
	// Classical: last periodic checkpoint 240 s before the failure.
	classical := NewStore()
	if err := classical.Save(Checkpoint{Time: 760}); err != nil {
		t.Fatal(err)
	}
	ttrClassical, err := Recover(classical, p, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction-driven: warning at 970 saved a checkpoint, spare prewarmed.
	prepared := NewStore()
	if err := prepared.Save(Checkpoint{Time: 970, Prepared: true}); err != nil {
		t.Fatal(err)
	}
	ttrPrepared, err := Recover(prepared, p, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	if ttrClassical.FaultFree != 120 || ttrPrepared.FaultFree != 20 {
		t.Fatalf("fault-free times %g / %g", ttrClassical.FaultFree, ttrPrepared.FaultFree)
	}
	if math.Abs(ttrClassical.Recompute-240*0.8) > 1e-12 {
		t.Fatalf("classical recompute = %g", ttrClassical.Recompute)
	}
	if math.Abs(ttrPrepared.Recompute-30*0.8) > 1e-12 {
		t.Fatalf("prepared recompute = %g", ttrPrepared.Recompute)
	}
	if ttrPrepared.Total() >= ttrClassical.Total() {
		t.Fatalf("preparation did not reduce TTR: %g vs %g",
			ttrPrepared.Total(), ttrClassical.Total())
	}
}

func TestRecoverValidation(t *testing.T) {
	s := NewStore()
	if err := s.Save(Checkpoint{Time: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(s, params(), 50, false); err == nil {
		t.Fatal("failure before checkpoint accepted")
	}
	bad := params()
	bad.RecomputeFactor = -1
	if _, err := Recover(s, bad, 200, false); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestPeriodicPolicy(t *testing.T) {
	e := sim.NewEngine()
	s := NewStore()
	active := true
	if err := (PeriodicPolicy{Interval: 10}).Install(e, s, func() bool { return active }); err != nil {
		t.Fatal(err)
	}
	e.Run(35)
	if s.Len() != 4 { // initial + t=10,20,30
		t.Fatalf("checkpoints = %d", s.Len())
	}
	active = false
	e.Run(100)
	// One more tick fires at t=40 and deactivates; no checkpoint saved.
	if s.Len() != 4 {
		t.Fatalf("checkpoints after deactivation = %d", s.Len())
	}
	if err := (PeriodicPolicy{}).Install(e, s, func() bool { return true }); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestPredictionDrivenPolicy(t *testing.T) {
	s := NewStore()
	saved, err := (PredictionDrivenPolicy{StateTrustProb: 1}).OnWarning(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !saved || !s.Latest().Prepared || s.Latest().Time != 50 {
		t.Fatalf("warning checkpoint: saved=%v latest=%+v", saved, s.Latest())
	}
	// Stochastic trust with a seeded draw.
	g := stats.NewRNG(1)
	policy := PredictionDrivenPolicy{StateTrustProb: 0.5, TrustDraw: g.Float64}
	savedCount := 0
	for i := 0; i < 1000; i++ {
		ok, err := policy.OnWarning(s, 50+float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			savedCount++
		}
	}
	if savedCount < 400 || savedCount > 600 {
		t.Fatalf("trust 0.5 saved %d/1000", savedCount)
	}
}

func TestPredictionDrivenPolicyValidation(t *testing.T) {
	s := NewStore()
	if _, err := (PredictionDrivenPolicy{StateTrustProb: 2}).OnWarning(s, 1); err == nil {
		t.Fatal("trust > 1 accepted")
	}
	if _, err := (PredictionDrivenPolicy{StateTrustProb: 0.5}).OnWarning(s, 1); err == nil {
		t.Fatal("stochastic trust without draw accepted")
	}
}

func TestRollForwardRecovery(t *testing.T) {
	fwd := RollForwardParams{RepairTime: 120, PreparedRepairTime: 20, ForwardCost: 50}
	b, err := RecoverForward(fwd, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.FaultFree != 120 || b.Recompute != 50 || b.Total() != 170 {
		t.Fatalf("roll-forward = %+v", b)
	}
	prepared, err := RecoverForward(fwd, true)
	if err != nil {
		t.Fatal(err)
	}
	if prepared.Total() != 70 {
		t.Fatalf("prepared roll-forward = %g", prepared.Total())
	}
	bad := fwd
	bad.ForwardCost = -1
	if _, err := RecoverForward(bad, false); err == nil {
		t.Fatal("negative forward cost accepted")
	}
	bad = fwd
	bad.PreparedRepairTime = 200
	if _, err := RecoverForward(bad, false); err == nil {
		t.Fatal("prepared > unprepared accepted")
	}
}

func TestPreferForwardCrossover(t *testing.T) {
	back := params() // repair 120, prepared 20, recompute factor 0.8
	fwd := RollForwardParams{RepairTime: 120, PreparedRepairTime: 20, ForwardCost: 100}
	store := NewStore()
	if err := store.Save(Checkpoint{Time: 1000}); err != nil {
		t.Fatal(err)
	}
	// Fresh checkpoint (age 50): roll-backward replays 40 s < forward 100 s.
	prefer, err := PreferForward(store, back, fwd, 1050, false)
	if err != nil {
		t.Fatal(err)
	}
	if prefer {
		t.Fatal("roll-forward preferred despite fresh checkpoint")
	}
	// Stale checkpoint (age 500): replay 400 s > forward 100 s.
	prefer, err = PreferForward(store, back, fwd, 1500, false)
	if err != nil {
		t.Fatal(err)
	}
	if !prefer {
		t.Fatal("roll-backward preferred despite stale checkpoint")
	}
	if _, err := PreferForward(store, back, fwd, 500, false); err == nil {
		t.Fatal("failure before checkpoint accepted")
	}
}

package changepoint

import (
	"fmt"
	"math"
)

// AutoCUSUM is a CUSUM detector that calibrates its own reference from the
// stream: the first Warmup observations estimate μ0 and σ (Welford), after
// which it behaves exactly like a fixed-reference CUSUM with allowance
// k = DriftSigma·σ and threshold h = ThresholdSigma·σ. Warm-up observations
// never fire. This removes the need to know the monitored signal's scale
// up front — layer scores, rolling F-measures and raw sensor streams all
// self-calibrate.
type AutoCUSUM struct {
	warmup         int     // observations used to estimate the reference
	driftSigma     float64 // allowance in units of estimated σ
	thresholdSigma float64 // decision boundary in units of estimated σ
	minSigma       float64 // floor for σ when the warm-up window is flat

	// Welford running statistics over the warm-up window.
	n    int
	mean float64
	m2   float64

	inner *CUSUM // nil until warm-up completes
}

var _ Detector = (*AutoCUSUM)(nil)

// NewAutoCUSUM builds a self-calibrating CUSUM. warmup must be ≥ 2 (at
// least two points are needed for a variance); driftSigma ≥ 0 and
// thresholdSigma > 0 mirror the fixed CUSUM's constraints.
func NewAutoCUSUM(warmup int, driftSigma, thresholdSigma float64) (*AutoCUSUM, error) {
	if warmup < 2 {
		return nil, fmt.Errorf("%w: warmup %d (need ≥ 2)", ErrDetector, warmup)
	}
	if driftSigma < 0 || math.IsNaN(driftSigma) {
		return nil, fmt.Errorf("%w: drift sigma %g", ErrDetector, driftSigma)
	}
	if thresholdSigma <= 0 || math.IsNaN(thresholdSigma) {
		return nil, fmt.Errorf("%w: threshold sigma %g", ErrDetector, thresholdSigma)
	}
	return &AutoCUSUM{
		warmup:         warmup,
		driftSigma:     driftSigma,
		thresholdSigma: thresholdSigma,
		minSigma:       1e-9,
	}, nil
}

// Ready reports whether the warm-up has completed and detection is armed.
func (a *AutoCUSUM) Ready() bool { return a.inner != nil }

// Reference returns the calibrated (μ0, σ); zeros until Ready.
func (a *AutoCUSUM) Reference() (mean, sigma float64) {
	if a.inner == nil {
		return 0, 0
	}
	return a.inner.ref, a.sigma()
}

func (a *AutoCUSUM) sigma() float64 {
	s := math.Sqrt(a.m2 / float64(a.n-1))
	if s < a.minSigma || math.IsNaN(s) {
		s = a.minSigma
	}
	return s
}

// Update feeds one observation. NaN observations are ignored entirely (an
// abstaining layer must not poison the reference). During warm-up it only
// accumulates statistics and never fires; afterwards it delegates to the
// calibrated fixed-reference CUSUM.
func (a *AutoCUSUM) Update(x float64) bool {
	if math.IsNaN(x) {
		return false
	}
	if a.inner == nil {
		a.n++
		d := x - a.mean
		a.mean += d / float64(a.n)
		a.m2 += d * (x - a.mean)
		if a.n >= a.warmup {
			s := a.sigma()
			// Construction cannot fail: thresholdSigma > 0 and s > 0.
			a.inner, _ = NewCUSUM(a.mean, a.driftSigma*s, a.thresholdSigma*s)
		}
		return false
	}
	return a.inner.Update(x)
}

// Reset clears the accumulators but keeps the calibrated reference, same
// contract as CUSUM.Reset. A detector still warming up restarts warm-up.
func (a *AutoCUSUM) Reset() {
	if a.inner != nil {
		a.inner.Reset()
		return
	}
	a.n, a.mean, a.m2 = 0, 0, 0
}

// Recalibrate discards the reference and re-enters warm-up — used after a
// predictor hot-swap, when the old reference no longer describes the new
// predictor's score distribution.
func (a *AutoCUSUM) Recalibrate() {
	a.inner = nil
	a.n, a.mean, a.m2 = 0, 0, 0
}

package changepoint

import (
	"testing"

	"repro/internal/stats"
)

func TestCUSUMDetectsShift(t *testing.T) {
	c, err := NewCUSUM(0, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(1)
	// In-control phase: no detection expected.
	for i := 0; i < 200; i++ {
		if c.Update(g.NormFloat64()) {
			t.Fatalf("false alarm at in-control sample %d", i)
		}
	}
	// Mean shifts by +3σ: detection within a few samples.
	detected := -1
	for i := 0; i < 50; i++ {
		if c.Update(3 + g.NormFloat64()) {
			detected = i
			break
		}
	}
	if detected < 0 || detected > 10 {
		t.Fatalf("shift detected at %d, want quickly", detected)
	}
}

func TestCUSUMDetectsDownwardShift(t *testing.T) {
	c, err := NewCUSUM(10, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(2)
	for i := 0; i < 100; i++ {
		if c.Update(10 + g.NormFloat64()) {
			t.Fatalf("false alarm at %d", i)
		}
	}
	detected := false
	for i := 0; i < 50; i++ {
		if c.Update(7 + g.NormFloat64()) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("downward shift missed")
	}
}

func TestCUSUMResetsAfterDetection(t *testing.T) {
	c, err := NewCUSUM(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Update(5) {
		t.Fatal("large jump not detected")
	}
	// After reset, a benign sample must not fire.
	if c.Update(0.1) {
		t.Fatal("fired immediately after reset")
	}
}

func TestCUSUMValidation(t *testing.T) {
	if _, err := NewCUSUM(0, -1, 5); err == nil {
		t.Fatal("negative drift accepted")
	}
	if _, err := NewCUSUM(0, 1, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestPageHinkleyDetectsIncrease(t *testing.T) {
	p, err := NewPageHinkley(0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		if p.Update(g.NormFloat64()) {
			t.Fatalf("false alarm at %d", i)
		}
	}
	detected := false
	for i := 0; i < 100; i++ {
		if p.Update(2 + g.NormFloat64()) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("mean increase missed")
	}
}

func TestPageHinkleyValidation(t *testing.T) {
	if _, err := NewPageHinkley(-1, 5); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := NewPageHinkley(0.1, 0); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

func TestRetrainTrigger(t *testing.T) {
	c, err := NewCUSUM(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	retrained := 0
	trig, err := NewRetrainTrigger(c, func() { retrained++ })
	if err != nil {
		t.Fatal(err)
	}
	trig.Observe(0.1)
	if retrained != 0 {
		t.Fatal("retrained on benign observation")
	}
	if !trig.Observe(10) {
		t.Fatal("change not propagated")
	}
	if retrained != 1 || trig.Count != 1 {
		t.Fatalf("retrained=%d count=%d", retrained, trig.Count)
	}
}

func TestRetrainTriggerValidation(t *testing.T) {
	c, _ := NewCUSUM(0, 0, 1)
	if _, err := NewRetrainTrigger(nil, func() {}); err == nil {
		t.Fatal("nil detector accepted")
	}
	if _, err := NewRetrainTrigger(c, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

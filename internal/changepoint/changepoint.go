// Package changepoint provides online change-point detection (Sect. 6:
// "Online change point detection algorithms such as [Basseville &
// Nikiforov] can be used to determine whether the parameters have to be
// re-adjusted"): two-sided CUSUM and Page–Hinkley detectors that trigger
// predictor re-training when the monitored system's behaviour shifts.
package changepoint

import (
	"errors"
	"fmt"
	"math"
)

// ErrDetector is wrapped by all construction errors.
var ErrDetector = errors.New("changepoint: invalid detector")

// Detector consumes a stream of observations and reports change points.
type Detector interface {
	// Update feeds one observation and reports whether a change was
	// detected at it. Detection resets the detector's internal state.
	Update(x float64) bool
	// Reset clears accumulated state (reference statistics are kept).
	Reset()
}

// CUSUM is a two-sided cumulative-sum detector around a reference mean:
// it accumulates deviations beyond an allowance (drift) and fires when
// either accumulator exceeds the threshold.
type CUSUM struct {
	ref       float64 // reference mean μ0
	drift     float64 // allowance k
	threshold float64 // decision boundary h
	pos, neg  float64
}

var _ Detector = (*CUSUM)(nil)

// NewCUSUM builds a detector around reference mean ref with allowance
// drift ≥ 0 and threshold > 0.
func NewCUSUM(ref, drift, threshold float64) (*CUSUM, error) {
	if drift < 0 || math.IsNaN(drift) {
		return nil, fmt.Errorf("%w: drift %g", ErrDetector, drift)
	}
	if threshold <= 0 || math.IsNaN(threshold) {
		return nil, fmt.Errorf("%w: threshold %g", ErrDetector, threshold)
	}
	return &CUSUM{ref: ref, drift: drift, threshold: threshold}, nil
}

// Update feeds one observation.
func (c *CUSUM) Update(x float64) bool {
	d := x - c.ref
	c.pos = math.Max(0, c.pos+d-c.drift)
	c.neg = math.Max(0, c.neg-d-c.drift)
	if c.pos > c.threshold || c.neg > c.threshold {
		c.Reset()
		return true
	}
	return false
}

// Reset clears the accumulators.
func (c *CUSUM) Reset() { c.pos, c.neg = 0, 0 }

// PageHinkley detects mean increases: it tracks the running mean and the
// gap between the cumulative deviation and its running minimum.
type PageHinkley struct {
	delta  float64 // tolerated deviation magnitude
	lambda float64 // detection threshold
	n      int
	mean   float64
	cum    float64
	minCum float64
}

var _ Detector = (*PageHinkley)(nil)

// NewPageHinkley builds a detector with deviation tolerance delta ≥ 0 and
// threshold lambda > 0.
func NewPageHinkley(delta, lambda float64) (*PageHinkley, error) {
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("%w: delta %g", ErrDetector, delta)
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("%w: lambda %g", ErrDetector, lambda)
	}
	return &PageHinkley{delta: delta, lambda: lambda}, nil
}

// Update feeds one observation.
func (p *PageHinkley) Update(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.cum += x - p.mean - p.delta
	if p.cum < p.minCum {
		p.minCum = p.cum
	}
	if p.cum-p.minCum > p.lambda {
		p.Reset()
		return true
	}
	return false
}

// Reset clears accumulated statistics (the detector re-learns the mean).
func (p *PageHinkley) Reset() {
	p.n, p.mean, p.cum, p.minCum = 0, 0, 0, 0
}

// RetrainTrigger couples a detector to a monitored model-quality signal
// (e.g. a predictor's rolling Brier score): it counts how often the system
// drifted and invokes the retrain callback.
type RetrainTrigger struct {
	detector Detector
	retrain  func()
	// Count is the number of change points seen so far.
	Count int
}

// NewRetrainTrigger wires a detector to a retraining callback.
func NewRetrainTrigger(d Detector, retrain func()) (*RetrainTrigger, error) {
	if d == nil || retrain == nil {
		return nil, fmt.Errorf("%w: nil detector or callback", ErrDetector)
	}
	return &RetrainTrigger{detector: d, retrain: retrain}, nil
}

// Observe feeds a quality observation and fires the callback on change.
func (r *RetrainTrigger) Observe(x float64) bool {
	if r.detector.Update(x) {
		r.Count++
		r.retrain()
		return true
	}
	return false
}

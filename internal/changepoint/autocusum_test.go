package changepoint

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestAutoCUSUMValidation(t *testing.T) {
	cases := []struct {
		warmup    int
		drift, th float64
	}{
		{1, 0.5, 4},
		{10, -0.1, 4},
		{10, 0.5, 0},
		{10, math.NaN(), 4},
		{10, 0.5, math.NaN()},
	}
	for _, c := range cases {
		if _, err := NewAutoCUSUM(c.warmup, c.drift, c.th); err == nil {
			t.Errorf("NewAutoCUSUM(%d, %g, %g) accepted invalid config", c.warmup, c.drift, c.th)
		}
	}
}

func TestAutoCUSUMWarmupNeverFires(t *testing.T) {
	a, err := NewAutoCUSUM(50, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(7)
	for i := 0; i < 50; i++ {
		// Wild swings during warm-up must not fire — they only shape σ.
		if a.Update(100 * g.NormFloat64()) {
			t.Fatalf("fired during warm-up at sample %d", i)
		}
	}
	if !a.Ready() {
		t.Fatal("not ready after warmup observations")
	}
}

// TestAutoCUSUMMatchesFixedCUSUM is the property test demanded by the
// issue: after warm-up, AutoCUSUM must agree observation-for-observation
// with a fixed-reference CUSUM built from the calibrated (μ0, σ) — across
// many random streams, shift points and magnitudes.
func TestAutoCUSUMMatchesFixedCUSUM(t *testing.T) {
	const (
		warmup  = 40
		driftS  = 0.5
		thS     = 5.0
		samples = 400
	)
	g := stats.NewRNG(42)
	for trial := 0; trial < 25; trial++ {
		base := g.Float64()*20 - 10  // true mean in [-10, 10)
		scale := 0.1 + g.Float64()*5 // true σ in [0.1, 5.1)
		shiftAt := warmup + g.Intn(samples-warmup)
		shift := (g.Float64()*8 - 4) * scale // shift in ±4σ

		a, err := NewAutoCUSUM(warmup, driftS, thS)
		if err != nil {
			t.Fatal(err)
		}
		stream := make([]float64, samples)
		for i := range stream {
			x := base + scale*g.NormFloat64()
			if i >= shiftAt {
				x += shift
			}
			stream[i] = x
		}
		// Warm up the auto detector, then mirror it with a fixed CUSUM.
		for i := 0; i < warmup; i++ {
			if a.Update(stream[i]) {
				t.Fatalf("trial %d: fired during warm-up", trial)
			}
		}
		mu, sigma := a.Reference()
		fixed, err := NewCUSUM(mu, driftS*sigma, thS*sigma)
		if err != nil {
			t.Fatal(err)
		}
		for i := warmup; i < samples; i++ {
			got, want := a.Update(stream[i]), fixed.Update(stream[i])
			if got != want {
				t.Fatalf("trial %d sample %d: auto=%v fixed=%v (μ=%g σ=%g)",
					trial, i, got, want, mu, sigma)
			}
		}
	}
}

func TestAutoCUSUMDetectsShiftAfterWarmup(t *testing.T) {
	a, err := NewAutoCUSUM(100, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		if a.Update(2 + 0.5*g.NormFloat64()) {
			t.Fatalf("false alarm at in-control sample %d", i)
		}
	}
	detected := -1
	for i := 0; i < 50; i++ {
		if a.Update(4 + 0.5*g.NormFloat64()) { // +4σ shift
			detected = i
			break
		}
	}
	if detected < 0 || detected > 10 {
		t.Fatalf("shift detected at %d, want quickly", detected)
	}
}

func TestAutoCUSUMIgnoresNaN(t *testing.T) {
	a, err := NewAutoCUSUM(3, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, math.NaN(), 2, math.NaN(), 3} {
		a.Update(x)
	}
	if !a.Ready() {
		t.Fatal("NaNs should not count toward warm-up but reals should")
	}
	mu, _ := a.Reference()
	if mu != 2 {
		t.Fatalf("reference mean = %g, want 2 (NaNs excluded)", mu)
	}
	if a.Update(math.NaN()) {
		t.Fatal("NaN fired after warm-up")
	}
}

func TestAutoCUSUMFlatWarmupUsesSigmaFloor(t *testing.T) {
	a, err := NewAutoCUSUM(10, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Update(1.0) // zero variance
	}
	_, sigma := a.Reference()
	if sigma <= 0 {
		t.Fatalf("sigma = %g, want positive floor on flat window", sigma)
	}
	// Any real deviation should now fire almost immediately.
	if !a.Update(2.0) {
		t.Fatal("deviation from a flat reference should fire")
	}
}

func TestAutoCUSUMRecalibrate(t *testing.T) {
	a, err := NewAutoCUSUM(5, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Update(float64(i))
	}
	if !a.Ready() {
		t.Fatal("should be ready")
	}
	a.Recalibrate()
	if a.Ready() {
		t.Fatal("Recalibrate should re-enter warm-up")
	}
	for i := 0; i < 5; i++ {
		a.Update(100 + float64(i))
	}
	mu, _ := a.Reference()
	if mu != 102 {
		t.Fatalf("recalibrated mean = %g, want 102", mu)
	}
}

package sim

import (
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Schedule(3, func() { order = append(order, 3) }))
	must(e.Schedule(1, func() { order = append(order, 1) }))
	must(e.Schedule(2, func() { order = append(order, 2) }))
	if n := e.Run(10); n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %g, want 10", e.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		if err := e.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(5)
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestRunHorizonLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	ran := false
	if err := e.Schedule(10, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// A later Run picks it up.
	e.Run(10)
	if !ran {
		t.Fatal("event at horizon boundary did not run")
	}
}

func TestEventAtExactHorizonRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	if err := e.ScheduleAt(5, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if !ran {
		t.Fatal("event exactly at horizon did not run")
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := e.Schedule(math.NaN(), func() {}); err == nil {
		t.Fatal("NaN delay accepted")
	}
	if err := e.Schedule(math.Inf(1), func() {}); err == nil {
		t.Fatal("Inf delay accepted")
	}
	if err := e.ScheduleAt(1, nil); err == nil {
		t.Fatal("nil action accepted")
	}
	e.Run(10)
	if err := e.ScheduleAt(5, func() {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	var chain func()
	chain = func() {
		times = append(times, e.Now())
		if len(times) < 4 {
			if err := e.Schedule(1, chain); err != nil {
				t.Errorf("nested schedule: %v", err)
			}
		}
	}
	if err := e.Schedule(1, chain); err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	want := []float64{1, 2, 3, 4}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		if err := e.Schedule(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(100)
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if e.Now() != 3 {
		t.Fatalf("clock after stop = %g", e.Now())
	}
	// Run can resume.
	e.Run(100)
	if count != 10 {
		t.Fatalf("resume ran to %d", count)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	err := e.Every(2, func() bool {
		ticks = append(ticks, e.Now())
		return len(ticks) < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	want := []float64{2, 4, 6}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v", ticks)
		}
	}
}

func TestEveryValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Every(0, func() bool { return false }); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := e.Every(-3, func() bool { return false }); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var log []float64
		_ = e.Every(1.5, func() bool {
			log = append(log, e.Now())
			return e.Now() < 10
		})
		_ = e.Schedule(4, func() { log = append(log, -e.Now()) })
		e.Run(20)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replays differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays diverge at %d: %v vs %v", i, a, b)
		}
	}
}

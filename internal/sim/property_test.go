package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Property: for any random schedule, events fire in non-decreasing time
// order and all events within the horizon fire exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		e := NewEngine()
		n := 1 + g.Intn(50)
		times := make([]float64, n)
		var fired []float64
		for i := 0; i < n; i++ {
			times[i] = g.Float64() * 100
			tt := times[i]
			if err := e.ScheduleAt(tt, func() { fired = append(fired, tt) }); err != nil {
				return false
			}
		}
		horizon := g.Float64() * 120
		e.Run(horizon)
		// Fired events are exactly those within the horizon, in order.
		var want []float64
		for _, tt := range times {
			if tt <= horizon {
				want = append(want, tt)
			}
		}
		sort.Float64s(want)
		if len(fired) != len(want) {
			return false
		}
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards, regardless of nested
// scheduling from within events.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		e := NewEngine()
		monotone := true
		last := 0.0
		var spawn func()
		spawn = func() {
			if e.Now() < last {
				monotone = false
			}
			last = e.Now()
			if g.Bernoulli(0.7) {
				_ = e.Schedule(g.Float64()*5, spawn)
			}
		}
		for i := 0; i < 5; i++ {
			_ = e.Schedule(g.Float64()*10, spawn)
		}
		e.Run(200)
		return monotone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

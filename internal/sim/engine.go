// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock and a time-ordered event queue. The telecom SCP
// simulator and the countermeasure experiments run on top of it.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (FIFO tie-break), so a seeded simulation replays identically.
//
// The event queue is a hand-rolled typed binary heap rather than
// container/heap: the interface-based API boxes every push/pop through
// interface{} and forces a virtual call per comparison, which shows up in
// year-long simulations with millions of events. Popped events are recycled
// through a freelist, so steady-state scheduling performs no allocation.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrSchedule is wrapped by scheduling errors.
var ErrSchedule = errors.New("sim: invalid schedule")

type event struct {
	time   float64
	seq    int64 // FIFO tie-break for simultaneous events
	action func()
}

// eventHeap is a typed min-heap on (time, seq) with a freelist of spent
// event records.
type eventHeap struct {
	items []*event
	free  []*event
}

func (h *eventHeap) len() int { return len(h.items) }

// less orders by time, breaking ties by scheduling sequence.
func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push enqueues an event, drawing the record from the freelist when one is
// available.
func (h *eventHeap) push(t float64, seq int64, action func()) {
	var e *event
	if n := len(h.free); n > 0 {
		e = h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
	} else {
		e = &event{}
	}
	e.time, e.seq, e.action = t, seq, action
	h.items = append(h.items, e)
	h.siftUp(len(h.items) - 1)
}

// pop removes and returns the earliest event. The caller must hand the
// record back via release once the action has run.
func (h *eventHeap) pop() *event {
	n := len(h.items)
	e := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.siftDown(0)
	}
	return e
}

// release returns a spent record to the freelist, dropping its action
// reference so the closure can be collected.
func (h *eventHeap) release(e *event) {
	e.action = nil
	h.free = append(h.free, e)
}

func (h *eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     int64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.len() }

// Schedule enqueues action to run after delay ≥ 0 units of virtual time.
func (e *Engine) Schedule(delay float64, action func()) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("%w: delay %g", ErrSchedule, delay)
	}
	return e.ScheduleAt(e.now+delay, action)
}

// ScheduleAt enqueues action to run at absolute virtual time t ≥ Now().
func (e *Engine) ScheduleAt(t float64, action func()) error {
	if action == nil {
		return fmt.Errorf("%w: nil action", ErrSchedule)
	}
	if t < e.now || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: time %g before now %g", ErrSchedule, t, e.now)
	}
	e.seq++
	e.queue.push(t, e.seq, action)
	return nil
}

// Run processes events in time order until the clock reaches `until`, the
// queue drains, or Stop is called. Events scheduled exactly at `until` are
// processed. It returns the number of events executed, and leaves the clock
// at `until` (or at the stop time).
func (e *Engine) Run(until float64) int {
	e.stopped = false
	n := 0
	for e.queue.len() > 0 && !e.stopped {
		if e.queue.items[0].time > until {
			break
		}
		next := e.queue.pop()
		e.now = next.time
		action := next.action
		e.queue.release(next)
		action()
		n++
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
	return n
}

// Stop halts Run after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules a recurring action with the given period, starting after
// one period. The action receives the engine so it can cancel by returning
// false. Recurrence stops when the callback returns false.
func (e *Engine) Every(period float64, action func() bool) error {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return fmt.Errorf("%w: period %g", ErrSchedule, period)
	}
	var tick func()
	tick = func() {
		if !action() {
			return
		}
		// Scheduling from inside an event cannot fail: delay is positive
		// and the clock is valid.
		_ = e.Schedule(period, tick)
	}
	return e.Schedule(period, tick)
}

// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock and a time-ordered event queue. The telecom SCP
// simulator and the countermeasure experiments run on top of it.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (FIFO tie-break), so a seeded simulation replays identically.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrSchedule is wrapped by scheduling errors.
var ErrSchedule = errors.New("sim: invalid schedule")

type event struct {
	time   float64
	seq    int64 // FIFO tie-break for simultaneous events
	action func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     int64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues action to run after delay ≥ 0 units of virtual time.
func (e *Engine) Schedule(delay float64, action func()) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("%w: delay %g", ErrSchedule, delay)
	}
	return e.ScheduleAt(e.now+delay, action)
}

// ScheduleAt enqueues action to run at absolute virtual time t ≥ Now().
func (e *Engine) ScheduleAt(t float64, action func()) error {
	if action == nil {
		return fmt.Errorf("%w: nil action", ErrSchedule)
	}
	if t < e.now || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: time %g before now %g", ErrSchedule, t, e.now)
	}
	e.seq++
	heap.Push(&e.queue, &event{time: t, seq: e.seq, action: action})
	return nil
}

// Run processes events in time order until the clock reaches `until`, the
// queue drains, or Stop is called. Events scheduled exactly at `until` are
// processed. It returns the number of events executed, and leaves the clock
// at `until` (or at the stop time).
func (e *Engine) Run(until float64) int {
	e.stopped = false
	n := 0
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.time
		next.action()
		n++
	}
	if !e.stopped && e.now < until {
		e.now = until
	}
	return n
}

// Stop halts Run after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules a recurring action with the given period, starting after
// one period. The action receives the engine so it can cancel by returning
// false. Recurrence stops when the callback returns false.
func (e *Engine) Every(period float64, action func() bool) error {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return fmt.Errorf("%w: period %g", ErrSchedule, period)
	}
	var tick func()
	tick = func() {
		if !action() {
			return
		}
		// Scheduling from inside an event cannot fail: delay is positive
		// and the clock is valid.
		_ = e.Schedule(period, tick)
	}
	return e.Schedule(period, tick)
}

package stats

import (
	"fmt"
	"math"
)

// Dist is a univariate continuous distribution.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Mean returns the expectation.
	Mean() float64
	// Sample draws one variate using g.
	Sample(g *RNG) float64
}

// Normal is the Gaussian distribution N(Mu, Sigma²).
type Normal struct {
	Mu, Sigma float64
}

var _ Dist = Normal{}

// PDF returns the Gaussian density at x.
func (d Normal) PDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return math.Exp(-0.5*z*z) / (d.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF returns the log density at x, stable for extreme z.
func (d Normal) LogPDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return -0.5*z*z - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF returns P(X ≤ x) via the error function.
func (d Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-d.Mu)/(d.Sigma*math.Sqrt2))
}

// Quantile returns the inverse CDF at p ∈ (0,1).
func (d Normal) Quantile(p float64) float64 {
	return d.Mu + d.Sigma*math.Sqrt2*erfinv(2*p-1)
}

// Mean returns Mu.
func (d Normal) Mean() float64 { return d.Mu }

// Sample draws a variate.
func (d Normal) Sample(g *RNG) float64 { return d.Mu + d.Sigma*g.NormFloat64() }

// Exponential is the exponential distribution with rate Lambda.
type Exponential struct {
	Lambda float64
}

var _ Dist = Exponential{}

// PDF returns the density at x.
func (d Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return d.Lambda * math.Exp(-d.Lambda*x)
}

// CDF returns P(X ≤ x).
func (d Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-d.Lambda*x)
}

// Mean returns 1/Lambda.
func (d Exponential) Mean() float64 { return 1 / d.Lambda }

// Sample draws a variate.
func (d Exponential) Sample(g *RNG) float64 { return g.ExpFloat64() / d.Lambda }

// Weibull is the Weibull distribution with shape K and scale Lambda.
// K > 1 models increasing hazard (aging), K < 1 infant mortality.
type Weibull struct {
	K, Lambda float64
}

var _ Dist = Weibull{}

// PDF returns the density at x.
func (d Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	z := x / d.Lambda
	return d.K / d.Lambda * math.Pow(z, d.K-1) * math.Exp(-math.Pow(z, d.K))
}

// CDF returns P(X ≤ x).
func (d Weibull) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/d.Lambda, d.K))
}

// Mean returns λ·Γ(1+1/k).
func (d Weibull) Mean() float64 { return d.Lambda * math.Gamma(1+1/d.K) }

// Sample draws a variate by inversion.
func (d Weibull) Sample(g *RNG) float64 {
	return d.Lambda * math.Pow(g.ExpFloat64(), 1/d.K)
}

// Hazard returns the Weibull hazard rate at x.
func (d Weibull) Hazard(x float64) float64 {
	if x <= 0 {
		x = 1e-300
	}
	return d.K / d.Lambda * math.Pow(x/d.Lambda, d.K-1)
}

// LogNormal is the log-normal distribution: ln X ~ N(Mu, Sigma²).
type LogNormal struct {
	Mu, Sigma float64
}

var _ Dist = LogNormal{}

// PDF returns the density at x.
func (d LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - d.Mu) / d.Sigma
	return math.Exp(-0.5*z*z) / (x * d.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X ≤ x).
func (d LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: d.Mu, Sigma: d.Sigma}.CDF(math.Log(x))
}

// Mean returns exp(μ + σ²/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Sample draws a variate.
func (d LogNormal) Sample(g *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*g.NormFloat64())
}

// Gamma is the gamma distribution with shape Alpha and rate Beta.
type Gamma struct {
	Alpha, Beta float64
}

var _ Dist = Gamma{}

// PDF returns the density at x.
func (d Gamma) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(d.Alpha)
	return math.Exp(d.Alpha*math.Log(d.Beta) + (d.Alpha-1)*math.Log(x) - d.Beta*x - lg)
}

// CDF returns P(X ≤ x) via the regularized lower incomplete gamma function.
func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return lowerIncompleteGammaRegularized(d.Alpha, d.Beta*x)
}

// Mean returns α/β.
func (d Gamma) Mean() float64 { return d.Alpha / d.Beta }

// Sample draws a variate with the Marsaglia–Tsang method.
func (d Gamma) Sample(g *RNG) float64 {
	a := d.Alpha
	boost := 1.0
	if a < 1 {
		// Boosting: X(a) = X(a+1) * U^(1/a).
		boost = math.Pow(g.Float64(), 1/a)
		a++
	}
	dd := a - 1.0/3.0
	c := 1 / math.Sqrt(9*dd)
	for {
		x := g.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return dd * v * boost / d.Beta
		}
	}
}

// Uniform is the uniform distribution on [A, B).
type Uniform struct {
	A, B float64
}

var _ Dist = Uniform{}

// PDF returns the density at x.
func (d Uniform) PDF(x float64) float64 {
	if x < d.A || x >= d.B {
		return 0
	}
	return 1 / (d.B - d.A)
}

// CDF returns P(X ≤ x).
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x < d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}

// Mean returns (A+B)/2.
func (d Uniform) Mean() float64 { return (d.A + d.B) / 2 }

// Sample draws a variate.
func (d Uniform) Sample(g *RNG) float64 { return d.A + (d.B-d.A)*g.Float64() }

// erfinv approximates the inverse error function (Giles 2012 single
// precision refinement, accurate to ~1e-9 after one Newton step).
func erfinv(x float64) float64 {
	if x <= -1 || x >= 1 {
		if x == -1 {
			return math.Inf(-1)
		}
		if x == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 5 {
		w -= 2.5
		p = 2.81022636e-08
		p = 3.43273939e-07 + p*w
		p = -3.5233877e-06 + p*w
		p = -4.39150654e-06 + p*w
		p = 0.00021858087 + p*w
		p = -0.00125372503 + p*w
		p = -0.00417768164 + p*w
		p = 0.246640727 + p*w
		p = 1.50140941 + p*w
	} else {
		w = math.Sqrt(w) - 3
		p = -0.000200214257
		p = 0.000100950558 + p*w
		p = 0.00134934322 + p*w
		p = -0.00367342844 + p*w
		p = 0.00573950773 + p*w
		p = -0.0076224613 + p*w
		p = 0.00943887047 + p*w
		p = 1.00167406 + p*w
		p = 2.83297682 + p*w
	}
	y := p * x
	// One Newton refinement: f(y) = erf(y) - x.
	y -= (math.Erf(y) - x) / (2 / math.Sqrt(math.Pi) * math.Exp(-y*y))
	return y
}

// lowerIncompleteGammaRegularized computes P(a, x) = γ(a,x)/Γ(a) using the
// series for x < a+1 and the continued fraction otherwise (Numerical
// Recipes construction).
func lowerIncompleteGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		sum := 1 / a
		term := sum
		for n := 1; n < 500; n++ {
			term *= x / (a + float64(n))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// String implementations aid debugging and experiment logs.

func (d Normal) String() string      { return fmt.Sprintf("Normal(μ=%g, σ=%g)", d.Mu, d.Sigma) }
func (d Exponential) String() string { return fmt.Sprintf("Exp(λ=%g)", d.Lambda) }
func (d Weibull) String() string     { return fmt.Sprintf("Weibull(k=%g, λ=%g)", d.K, d.Lambda) }
func (d LogNormal) String() string   { return fmt.Sprintf("LogNormal(μ=%g, σ=%g)", d.Mu, d.Sigma) }
func (d Gamma) String() string       { return fmt.Sprintf("Gamma(α=%g, β=%g)", d.Alpha, d.Beta) }
func (d Uniform) String() string     { return fmt.Sprintf("Uniform[%g, %g)", d.A, d.B) }

package stats

import "math"

// LogSumExp returns log(exp(a) + exp(b)) without overflow. Either argument
// may be -Inf (representing probability zero).
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExpSlice returns log(Σ exp(xs[i])) without overflow; -Inf for empty
// input or all -Inf entries.
func LogSumExpSlice(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}

// LogSumExpWithMax returns log(Σ exp(xs[i])) given max = max(xs) computed
// by the caller — the fused form used by hot kernels that track the running
// maximum while filling a buffer, saving LogSumExpSlice's extra scan. max
// must be the true maximum of xs; -Inf (all entries -Inf, probability zero)
// short-circuits.
func LogSumExpWithMax(xs []float64, max float64) float64 {
	if math.IsInf(max, -1) {
		return max
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}

// Log returns math.Log(x), mapping 0 to -Inf without the -Inf/NaN pitfalls
// of taking logs of tiny negative rounding noise.
func Log(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the minimum of xs (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Standardize returns (xs - mean)/std elementwise together with the fitted
// mean and std; a zero std is replaced by 1 so constant features survive.
func Standardize(xs []float64) (z []float64, mean, std float64) {
	mean = Mean(xs)
	std = StdDev(xs)
	if std == 0 || math.IsNaN(std) {
		std = 1
	}
	z = make([]float64, len(xs))
	for i, x := range xs {
		z[i] = (x - mean) / std
	}
	return z, mean, std
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram bins xs into n equal-width bins over [min, max].
type Histogram struct {
	Edges  []float64 // n+1 bin edges
	Counts []int     // n counts
}

// NewHistogram builds an n-bin histogram of xs. It returns an empty
// histogram for empty input or n ≤ 0.
func NewHistogram(xs []float64, n int) Histogram {
	if len(xs) == 0 || n <= 0 {
		return Histogram{}
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	h := Histogram{
		Edges:  make([]float64, n+1),
		Counts: make([]int, n),
	}
	w := (hi - lo) / float64(n)
	for i := range h.Edges {
		h.Edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}

// EWMA computes an exponentially weighted moving average of xs with
// smoothing factor alpha ∈ (0, 1]; larger alpha weights recent values more.
func EWMA(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

package stats

import (
	"math"
	"testing"
)

func TestFitExponentialMLE(t *testing.T) {
	g := NewRNG(71)
	d := Exponential{Lambda: 0.25}
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = d.Sample(g)
	}
	fit, err := FitExponentialMLE(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-0.25) > 0.01 {
		t.Fatalf("fitted rate %g, want 0.25", fit.Lambda)
	}
	if _, err := FitExponentialMLE(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FitExponentialMLE([]float64{1, -2}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

func TestFitWeibullMLERecovery(t *testing.T) {
	g := NewRNG(73)
	for _, truth := range []Weibull{
		{K: 0.7, Lambda: 50},
		{K: 1.5, Lambda: 200},
		{K: 3.2, Lambda: 10},
	} {
		samples := make([]float64, 4000)
		for i := range samples {
			samples[i] = truth.Sample(g)
		}
		fit, err := FitWeibullMLE(samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.K-truth.K)/truth.K > 0.08 {
			t.Fatalf("shape %g, want %g", fit.K, truth.K)
		}
		if math.Abs(fit.Lambda-truth.Lambda)/truth.Lambda > 0.08 {
			t.Fatalf("scale %g, want %g", fit.Lambda, truth.Lambda)
		}
	}
}

// On small failure samples both MLE and moment matching must generalize:
// their held-out log-likelihood stays within a few percent of the true
// model's (no catastrophic misfit), and both clearly beat a wrong model.
func TestWeibullFitsGeneralize(t *testing.T) {
	g := NewRNG(79)
	truth := Weibull{K: 2.5, Lambda: 100}
	holdout := make([]float64, 5000)
	for i := range holdout {
		holdout[i] = truth.Sample(g)
	}
	momentFit := func(samples []float64) Weibull {
		mean, sd := Mean(samples), StdDev(samples)
		cv2 := (sd / mean) * (sd / mean)
		lo, hi := 0.1, 20.0
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			g1 := math.Gamma(1 + 1/mid)
			g2 := math.Gamma(1 + 2/mid)
			if g2/(g1*g1)-1 > cv2 {
				lo = mid
			} else {
				hi = mid
			}
		}
		k := (lo + hi) / 2
		return Weibull{K: k, Lambda: mean / math.Gamma(1+1/k)}
	}
	var mleLL, momLL float64
	const trials = 100
	ok := 0
	for trial := 0; trial < trials; trial++ {
		samples := make([]float64, 15)
		for i := range samples {
			samples[i] = truth.Sample(g)
		}
		mle, err := FitWeibullMLE(samples)
		if err != nil {
			continue
		}
		mleLL += LogLikelihoodWeibull(mle, holdout)
		momLL += LogLikelihoodWeibull(momentFit(samples), holdout)
		ok++
	}
	if ok < trials/2 {
		t.Fatalf("only %d successful trials", ok)
	}
	truthLL := LogLikelihoodWeibull(truth, holdout)
	wrongLL := LogLikelihoodWeibull(Weibull{K: 0.6, Lambda: 30}, holdout)
	for name, ll := range map[string]float64{"MLE": mleLL / float64(ok), "moments": momLL / float64(ok)} {
		if ll < truthLL*1.03 { // log-likelihoods are negative: 3% margin
			t.Fatalf("%s held-out LL %g too far below truth %g", name, ll, truthLL)
		}
		if ll <= wrongLL {
			t.Fatalf("%s held-out LL %g not above a wrong model %g", name, ll, wrongLL)
		}
	}
}

func TestFitWeibullMLEValidation(t *testing.T) {
	if _, err := FitWeibullMLE([]float64{5}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := FitWeibullMLE([]float64{1, 0}); err == nil {
		t.Fatal("zero sample accepted")
	}
	if _, err := FitWeibullMLE([]float64{3, 3, 3}); err == nil {
		t.Fatal("constant samples accepted")
	}
}

func TestLogLikelihoodWeibullOrdersModels(t *testing.T) {
	g := NewRNG(83)
	truth := Weibull{K: 2, Lambda: 10}
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = truth.Sample(g)
	}
	good := LogLikelihoodWeibull(truth, samples)
	bad := LogLikelihoodWeibull(Weibull{K: 0.5, Lambda: 100}, samples)
	if good <= bad {
		t.Fatalf("true model %g not above wrong model %g", good, bad)
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

const sampleN = 20000

// sampleMoments draws n variates and returns their mean and variance.
func sampleMoments(t *testing.T, d Dist, n int) (mean, variance float64) {
	t.Helper()
	g := NewRNG(42)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(g)
	}
	return Mean(xs), Variance(xs)
}

func TestNormalPDFCDF(t *testing.T) {
	d := Normal{Mu: 0, Sigma: 1}
	if got := d.PDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("standard normal PDF(0) = %g", got)
	}
	if got := d.CDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("standard normal CDF(0) = %g", got)
	}
	if got := d.CDF(1.959963985); math.Abs(got-0.975) > 1e-6 {
		t.Fatalf("CDF(1.96) = %g, want 0.975", got)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	d := Normal{Mu: 3, Sigma: 2}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.999} {
		x := d.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-8 {
			t.Fatalf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestNormalLogPDFMatchesPDF(t *testing.T) {
	d := Normal{Mu: -1, Sigma: 0.5}
	for _, x := range []float64{-2, -1, 0, 3} {
		if diff := math.Abs(math.Log(d.PDF(x)) - d.LogPDF(x)); diff > 1e-10 {
			t.Fatalf("LogPDF mismatch at %g: %g", x, diff)
		}
	}
}

func TestNormalSampleMoments(t *testing.T) {
	mean, v := sampleMoments(t, Normal{Mu: 5, Sigma: 3}, sampleN)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("sample mean = %g, want ≈5", mean)
	}
	if math.Abs(v-9) > 0.5 {
		t.Fatalf("sample variance = %g, want ≈9", v)
	}
}

func TestExponential(t *testing.T) {
	d := Exponential{Lambda: 2}
	if got := d.Mean(); got != 0.5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := d.CDF(d.Mean()); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("CDF(mean) = %g", got)
	}
	if d.PDF(-1) != 0 || d.CDF(-1) != 0 {
		t.Fatal("negative support not zero")
	}
	mean, _ := sampleMoments(t, d, sampleN)
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("sample mean = %g", mean)
	}
}

func TestWeibull(t *testing.T) {
	// K=1 reduces to Exponential(1/λ).
	d := Weibull{K: 1, Lambda: 2}
	e := Exponential{Lambda: 0.5}
	for _, x := range []float64{0.1, 1, 3} {
		if math.Abs(d.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Fatalf("Weibull(1,2).CDF(%g) ≠ Exp(0.5).CDF", x)
		}
	}
	aging := Weibull{K: 3, Lambda: 10}
	if aging.Hazard(1) >= aging.Hazard(5) {
		t.Fatal("Weibull k>1 hazard must increase")
	}
	mean, _ := sampleMoments(t, aging, sampleN)
	if math.Abs(mean-aging.Mean()) > 0.1 {
		t.Fatalf("sample mean %g vs analytic %g", mean, aging.Mean())
	}
}

func TestLogNormal(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 0.5}
	if d.PDF(-1) != 0 || d.CDF(0) != 0 {
		t.Fatal("non-positive support not zero")
	}
	if got := d.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(median) = %g, want 0.5", got)
	}
	mean, _ := sampleMoments(t, d, sampleN)
	if math.Abs(mean-d.Mean()) > 0.05 {
		t.Fatalf("sample mean %g vs analytic %g", mean, d.Mean())
	}
}

func TestGamma(t *testing.T) {
	d := Gamma{Alpha: 3, Beta: 2}
	if got := d.Mean(); got != 1.5 {
		t.Fatalf("Mean = %g", got)
	}
	// Gamma(1, β) is Exponential(β).
	g1 := Gamma{Alpha: 1, Beta: 2}
	e := Exponential{Lambda: 2}
	for _, x := range []float64{0.2, 1, 2.5} {
		if math.Abs(g1.CDF(x)-e.CDF(x)) > 1e-10 {
			t.Fatalf("Gamma(1,2).CDF(%g) = %g, want %g", x, g1.CDF(x), e.CDF(x))
		}
	}
	mean, v := sampleMoments(t, d, sampleN)
	if math.Abs(mean-1.5) > 0.05 {
		t.Fatalf("sample mean = %g", mean)
	}
	if math.Abs(v-0.75) > 0.1 {
		t.Fatalf("sample variance = %g, want ≈0.75", v)
	}
	// Shape < 1 exercises the boosting branch.
	small := Gamma{Alpha: 0.5, Beta: 1}
	mean, _ = sampleMoments(t, small, sampleN)
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("Gamma(0.5,1) sample mean = %g", mean)
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{A: 2, B: 6}
	if d.Mean() != 4 {
		t.Fatalf("Mean = %g", d.Mean())
	}
	if d.CDF(1) != 0 || d.CDF(7) != 1 || d.CDF(4) != 0.5 {
		t.Fatal("CDF wrong")
	}
	if d.PDF(3) != 0.25 || d.PDF(6.5) != 0 {
		t.Fatal("PDF wrong")
	}
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		x := d.Sample(g)
		if x < 2 || x >= 6 {
			t.Fatalf("sample %g outside [2,6)", x)
		}
	}
}

// Property: every CDF is monotone non-decreasing on random point pairs.
func TestCDFMonotone(t *testing.T) {
	dists := []Dist{
		Normal{Mu: 1, Sigma: 2},
		Exponential{Lambda: 0.3},
		Weibull{K: 2, Lambda: 5},
		LogNormal{Mu: 0.2, Sigma: 1},
		Gamma{Alpha: 2.5, Beta: 0.7},
		Uniform{A: -1, B: 4},
	}
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 50), math.Mod(b, 50)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		for _, d := range dists {
			ca, cb := d.CDF(a), d.CDF(b)
			if ca > cb+1e-12 || ca < -1e-12 || cb > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategorical(t *testing.T) {
	g := NewRNG(11)
	counts := make([]int, 3)
	w := []float64{1, 2, 7}
	for i := 0; i < 10000; i++ {
		counts[g.Categorical(w)]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("categorical counts not ordered by weight: %v", counts)
	}
	if f := float64(counts[2]) / 10000; math.Abs(f-0.7) > 0.03 {
		t.Fatalf("weight-7 frequency = %g, want ≈0.7", f)
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRNG(1)
	for _, w := range [][]float64{{0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			g.Categorical(w)
		}()
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	// Splits with different indices must differ.
	s1, s2 := NewRNG(99).Split(1), NewRNG(99).Split(2)
	same := true
	for i := 0; i < 10; i++ {
		if s1.Float64() != s2.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("Split(1) and Split(2) produced identical streams")
	}
}

package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrFit is wrapped by all distribution-fitting errors.
var ErrFit = errors.New("stats: fit failed")

// FitExponentialMLE fits an exponential distribution by maximum likelihood
// (rate = 1/mean).
func FitExponentialMLE(samples []float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, fmt.Errorf("%w: no samples", ErrFit)
	}
	sum := 0.0
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Exponential{}, fmt.Errorf("%w: sample %g", ErrFit, x)
		}
		sum += x
	}
	return Exponential{Lambda: float64(len(samples)) / sum}, nil
}

// FitWeibullMLE fits a Weibull distribution by maximum likelihood: the
// shape solves
//
//	Σ xᵢᵏ ln xᵢ / Σ xᵢᵏ − 1/k − (1/n) Σ ln xᵢ = 0
//
// (bisection; the left side is increasing in k), and the scale follows as
// λ = (Σ xᵢᵏ / n)^{1/k}. MLE uses the full sample information (moment
// matching only uses mean and variance) and is asymptotically efficient;
// for very small samples both estimators carry noticeable shape bias.
func FitWeibullMLE(samples []float64) (Weibull, error) {
	n := len(samples)
	if n < 2 {
		return Weibull{}, fmt.Errorf("%w: need ≥ 2 samples", ErrFit)
	}
	meanLog := 0.0
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Weibull{}, fmt.Errorf("%w: sample %g", ErrFit, x)
		}
		meanLog += math.Log(x)
	}
	meanLog /= float64(n)
	// All-equal samples have no shape information.
	allEqual := true
	for _, x := range samples[1:] {
		if x != samples[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return Weibull{}, fmt.Errorf("%w: degenerate (constant) samples", ErrFit)
	}
	g := func(k float64) float64 {
		var sumXk, sumXkLog float64
		for _, x := range samples {
			xk := math.Pow(x, k)
			sumXk += xk
			sumXkLog += xk * math.Log(x)
		}
		return sumXkLog/sumXk - 1/k - meanLog
	}
	lo, hi := 0.02, 100.0
	if g(lo) > 0 || g(hi) < 0 {
		return Weibull{}, fmt.Errorf("%w: shape outside [%g, %g]", ErrFit, lo, hi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	sumXk := 0.0
	for _, x := range samples {
		sumXk += math.Pow(x, k)
	}
	scale := math.Pow(sumXk/float64(n), 1/k)
	return Weibull{K: k, Lambda: scale}, nil
}

// LogLikelihoodWeibull returns the total log-likelihood of samples under d,
// for model-selection comparisons.
func LogLikelihoodWeibull(d Weibull, samples []float64) float64 {
	ll := 0.0
	for _, x := range samples {
		ll += Log(d.PDF(x))
	}
	return ll
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %g", got)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, got := range map[string]float64{
		"Mean":     Mean(nil),
		"Variance": Variance([]float64{1}),
		"Quantile": Quantile(nil, 0.5),
		"Min":      Min(nil),
		"Max":      Max(nil),
	} {
		if !math.IsNaN(got) {
			t.Fatalf("%s of degenerate input = %g, want NaN", name, got)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %g", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q.25 = %g", got)
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("interpolated quantile = %g, want 3", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted its input in place")
	}
}

func TestStandardize(t *testing.T) {
	z, mean, std := Standardize([]float64{1, 2, 3})
	if mean != 2 || math.Abs(std-1) > 1e-12 {
		t.Fatalf("mean=%g std=%g", mean, std)
	}
	if math.Abs(z[0]+1) > 1e-12 || z[1] != 0 {
		t.Fatalf("z = %v", z)
	}
	// Constant input: std forced to 1, z all zero.
	z, _, std = Standardize([]float64{4, 4, 4})
	if std != 1 || z[0] != 0 {
		t.Fatalf("constant standardize: z=%v std=%g", z, std)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Correlation(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation = %g", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %g, want 0", got)
	}
	if !math.IsNaN(Correlation(xs, []float64{1})) {
		t.Fatal("mismatched lengths should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if len(h.Counts) != 2 || len(h.Edges) != 3 {
		t.Fatalf("histogram shape: %+v", h)
	}
	if h.Counts[0]+h.Counts[1] != 5 {
		t.Fatalf("histogram lost samples: %v", h.Counts)
	}
	// Max value lands in the last bin.
	if h.Counts[1] < 1 {
		t.Fatalf("max sample not binned: %v", h.Counts)
	}
	if len(NewHistogram(nil, 3).Counts) != 0 {
		t.Fatal("empty histogram should be empty")
	}
}

func TestEWMA(t *testing.T) {
	out := EWMA([]float64{1, 1, 1}, 0.5)
	for _, v := range out {
		if v != 1 {
			t.Fatalf("EWMA of constant = %v", out)
		}
	}
	step := EWMA([]float64{0, 1, 1, 1}, 0.5)
	if step[1] != 0.5 || step[2] != 0.75 {
		t.Fatalf("EWMA step response = %v", step)
	}
	if len(EWMA(nil, 0.3)) != 0 {
		t.Fatal("EWMA of empty input should be empty")
	}
}

// Property: min ≤ every quantile ≤ max, and quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw [9]float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		clamp := func(q float64) float64 {
			q = math.Abs(math.Mod(q, 1))
			return q
		}
		a, b := clamp(q1), clamp(q2)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb+1e-9 && qa >= Min(xs)-1e-9 && qb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(math.Log(2), math.Log(3)); math.Abs(got-math.Log(5)) > 1e-12 {
		t.Fatalf("LogSumExp = %g, want log 5", got)
	}
	ninf := math.Inf(-1)
	if got := LogSumExp(ninf, 1.5); got != 1.5 {
		t.Fatalf("LogSumExp(-Inf, x) = %g", got)
	}
	if got := LogSumExp(2.5, ninf); got != 2.5 {
		t.Fatalf("LogSumExp(x, -Inf) = %g", got)
	}
	// Stability: huge magnitudes must not overflow.
	if got := LogSumExp(1000, 1000); math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp(1000,1000) = %g", got)
	}
}

func TestLogSumExpSlice(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExpSlice(xs); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExpSlice = %g", got)
	}
	if !math.IsInf(LogSumExpSlice(nil), -1) {
		t.Fatal("empty LogSumExpSlice should be -Inf")
	}
	if !math.IsInf(LogSumExpSlice([]float64{math.Inf(-1)}), -1) {
		t.Fatal("all -Inf should stay -Inf")
	}
}

func TestLogGuard(t *testing.T) {
	if !math.IsInf(Log(0), -1) || !math.IsInf(Log(-3), -1) {
		t.Fatal("Log of non-positive should be -Inf")
	}
	if Log(math.E) != 1 {
		t.Fatal("Log(e) != 1")
	}
}

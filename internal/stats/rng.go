// Package stats is the probability and statistics substrate of the PFM
// library: seeded random streams, the distributions used by the simulator
// and the learners (normal, exponential, Weibull, gamma, log-normal,
// uniform), descriptive statistics, histograms, and numerically stable
// log-space helpers.
//
// Everything is deterministic given a seed; the whole reproduction flows its
// randomness through RNG streams so experiments replay bit-identically.
package stats

import "math/rand"

// RNG is a seeded random stream. It wraps math/rand.Rand so all packages
// share one way of obtaining reproducible randomness, and so call sites
// never reach for the process-global generator.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream; the i-th split of a given
// stream is deterministic. Use it to give subsystems their own streams so
// adding draws in one place does not perturb another.
func (g *RNG) Split(i int64) *RNG {
	const golden = int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)
	return NewRNG(g.r.Int63() ^ (golden * (i + 1)))
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns a unit-mean exponential draw.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit draw.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Categorical draws an index from the (unnormalized, non-negative) weight
// vector w. It panics if all weights are zero or any is negative.
func (g *RNG) Categorical(w []float64) int {
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("stats: negative categorical weight")
		}
		total += v
	}
	if total == 0 {
		panic("stats: all categorical weights zero")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

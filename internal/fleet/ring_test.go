package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: placement depends only on (tenant, shards,
// vnodes) — two independently built rings agree on every tenant.
func TestRingDeterministic(t *testing.T) {
	a := newRing(8, 64)
	b := newRing(8, 64)
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		if a.shardOf(id) != b.shardOf(id) {
			t.Fatalf("tenant %q: ring disagreement %d vs %d", id, a.shardOf(id), b.shardOf(id))
		}
	}
}

// TestRingBalance: with 64 vnodes no shard is starved or overloaded by
// more than ~2x at realistic fleet scale.
func TestRingBalance(t *testing.T) {
	const shards, tenants = 8, 10000
	r := newRing(shards, 64)
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		s := r.shardOf(fmt.Sprintf("t%04d", i))
		if s < 0 || s >= shards {
			t.Fatalf("tenant %d routed to invalid shard %d", i, s)
		}
		counts[s]++
	}
	mean := tenants / shards
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d holds %d tenants (mean %d): ring badly unbalanced %v", s, c, mean, counts)
		}
	}
}

// TestRingMinimalMovement: growing the shard count relocates only a small
// fraction of tenants (the consistent-hashing property; modulo hashing
// would move ~8/9 of them here).
func TestRingMinimalMovement(t *testing.T) {
	const tenants = 10000
	r8 := newRing(8, 64)
	r9 := newRing(9, 64)
	moved := 0
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%04d", i)
		if r8.shardOf(id) != r9.shardOf(id) {
			moved++
		}
	}
	// Expected movement is ~1/9 ≈ 11%; fail well above that.
	if moved > tenants/3 {
		t.Fatalf("8→9 shards moved %d/%d tenants; consistent hashing should move ~%d",
			moved, tenants, tenants/9)
	}
	if moved == 0 {
		t.Fatal("no tenant moved when adding a shard; new shard gets no load")
	}
}

// TestRingSingleShard: everything lands on shard 0.
func TestRingSingleShard(t *testing.T) {
	r := newRing(1, 64)
	for i := 0; i < 100; i++ {
		if s := r.shardOf(fmt.Sprintf("x%d", i)); s != 0 {
			t.Fatalf("single-shard ring routed to %d", s)
		}
	}
}

// TestRingMovementBound is the property form of TestRingMinimalMovement:
// for every (vnodes, n) in a realistic grid, growing n → n+1 shards remaps
// at most ceil(T/(n+1)) + 10% slack of T tenants — the consistent-hashing
// guarantee the resize handoff budget relies on. (The ideal is exactly
// T/(n+1): only tenants claimed by the new shard's vnodes move.)
func TestRingMovementBound(t *testing.T) {
	const tenants = 500
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("svc-%03d", i)
	}
	for _, vnodes := range []int{32, 64, 128} {
		for _, n := range []int{2, 3, 4, 8} {
			old := newRing(n, vnodes)
			grown := newRing(n+1, vnodes)
			moved := 0
			for _, id := range ids {
				from, to := old.shardOf(id), grown.shardOf(id)
				if from != to {
					moved++
					// Consistent hashing only ever moves tenants TO the new
					// shard on growth; a move between surviving shards means
					// the ring reshuffled more than the new vnodes claim.
					if to != n {
						t.Errorf("vnodes=%d %d→%d: tenant %s moved %d→%d, not to the new shard",
							vnodes, n, n+1, id, from, to)
					}
				}
			}
			bound := (tenants+n)/(n+1) + tenants/10
			if moved > bound {
				t.Errorf("vnodes=%d %d→%d shards moved %d/%d tenants, bound %d",
					vnodes, n, n+1, moved, tenants, bound)
			}
			if moved == 0 {
				t.Errorf("vnodes=%d %d→%d moved no tenants; new shard unused", vnodes, n, n+1)
			}
		}
	}
}

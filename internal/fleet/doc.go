// Package fleet multiplexes thousands of monitored tenants — each a
// logical MEA runtime with its own core.Engine, layer set, and
// prediction-quality ledger view — over one shared substrate, the step
// from the paper's single-instance architecture (Sect. 6) to a
// production-scale service monitoring a whole fleet.
//
// Shared infrastructure, per-tenant semantics:
//
//   - Ingest: tenant events are routed onto a fixed set of shard consumers
//     by a consistent-hash ring (tenant → shard), so each tenant's stream
//     applies in order on exactly one consumer while shards drain in
//     parallel. Consumers drain their queue in chunks, amortizing the
//     state-lock acquisition across a whole batch of events.
//   - Evaluate: one worker pool (runtime.Pool) scores every tenant's
//     layers per cycle. A layer template with a batch scorer
//     (LayerTemplate.ScoreBatch, e.g. over ubf.PredictRowsInto or
//     hsmm.ScoreAll) scores a chunk of tenants in one call, amortizing
//     per-predictor overhead across the fleet.
//   - Act: each tenant's core.Engine makes its own serialized cross-layer
//     decision; decisions of different tenants run concurrently on the
//     pool (their state is disjoint).
//   - Observability: one metrics registry, one span tracer, one
//     obs.ScopedLedger (per-tenant journals under a cardinality cap), and
//     one /fleet HTTP plane with per-tenant health, quality, versions, and
//     a criticality-weighted fleet availability rollup.
//   - Lifecycle: optional per-tenant drift/retrain managers sharing one
//     global lifecycle.Budget, so a fleet-wide drift storm cannot fork
//     unbounded concurrent refits.
//
// Ingest is pluggable (Source): an in-process feeder (SliceSource, or
// SCPRecords over internal/scp's multi-tenant simulator), a file-tail
// reader of the pipe-separated text line protocol (tail.go), and a compact
// binary wire format with a line-rate replay reader (wire.go). Pump drives
// any Source into a Fleet.
//
// Determinism: with evaluation driven explicitly (EvaluateCycle after
// Barrier), per-tenant decisions, counters, and ledger tables are
// bit-identical across shard counts, worker counts, batch sizes, and
// GOMAXPROCS — the internal/par contract extended to the fleet. See
// determinism_test.go.
package fleet

package fleet

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// tstate is the test tenant state: a running mean of sample values plus an
// error count — enough for a deterministic layer score.
type tstate struct {
	id   string
	n    int64
	sum  float64
	errs int64
}

// meanScore scores a tenant by its running sample mean (NaN-abstains
// before any sample).
func meanScore(st TenantState, _ float64) (float64, error) {
	s := st.(*tstate)
	if s.n == 0 {
		return math.NaN(), nil
	}
	return s.sum / float64(s.n), nil
}

// testClock is a settable domain clock safe for concurrent reads.
type testClock struct{ bits atomic.Uint64 }

func newTestClock(t float64) *testClock {
	c := &testClock{}
	c.Set(t)
	return c
}
func (c *testClock) Set(t float64) { c.bits.Store(math.Float64bits(t)) }
func (c *testClock) Now() float64  { return math.Float64frombits(c.bits.Load()) }

// testFleetConfig builds a baseline single-layer config over tstate;
// callers override fields before New.
func testFleetConfig(specs []TenantSpec, clock *testClock) Config {
	return Config{
		Tenants: specs,
		Layers: []LayerTemplate{{
			Name: "load", Threshold: 0.5, Score: meanScore,
		}},
		NewState: func(t TenantSpec) (TenantState, error) {
			return &tstate{id: t.ID}, nil
		},
		Apply: func(st TenantState, ev Event) error {
			s := st.(*tstate)
			if ev.Kind == runtime.KindError {
				s.errs++
				return nil
			}
			s.n++
			s.sum += ev.Value
			return nil
		},
		Engine: core.Config{EvalInterval: 1, LeadTime: 300, WarnThreshold: 0.5},
		Clock:  clock.Now,
	}
}

func specs(ids ...string) []TenantSpec {
	out := make([]TenantSpec, len(ids))
	for i, id := range ids {
		out[i] = TenantSpec{ID: id}
	}
	return out
}

// sample builds one sample event.
func sample(tenant string, t, v float64) Event {
	return Event{Tenant: tenant, Kind: runtime.KindSample, Time: t, Variable: "x", Value: v}
}

// TestFleetEndToEnd drives three tenants through ingest → barrier → cycle
// and checks routing, statuses, quality journaling, the criticality
// rollup, and the /fleet endpoint.
func TestFleetEndToEnd(t *testing.T) {
	clock := newTestClock(0)
	led, err := obs.NewScopedLedger(obs.LedgerConfig{LeadTime: 300, Slack: 60}, 2, "load")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testFleetConfig([]TenantSpec{
		{ID: "a", Criticality: 3}, {ID: "b"}, {ID: "c"},
	}, clock)
	cfg.Shards = 2
	cfg.Workers = 2
	cfg.BatchSize = 4
	cfg.Ledger = led
	cfg.JournalLayers = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// a runs hot (mean 1 ≥ threshold), b and c stay quiet.
	for i := 0; i < 10; i++ {
		ti := float64(i)
		for _, ev := range []Event{
			sample("a", ti, 1), sample("b", ti, 0), sample("c", ti, 0),
		} {
			if err := f.Ingest(ctx, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(10)
	f.EvaluateCycle()

	if got := f.Cycles(); got != 1 {
		t.Fatalf("cycles = %d, want 1", got)
	}
	for id, wantStatus := range map[string]string{"a": StatusWarning, "b": StatusOK, "c": StatusOK} {
		v, ok := f.TenantStatus(id)
		if !ok {
			t.Fatalf("tenant %q missing", id)
		}
		if v.Status != wantStatus {
			t.Errorf("tenant %q status = %q, want %q", id, v.Status, wantStatus)
		}
		if v.Events != 10 {
			t.Errorf("tenant %q events = %d, want 10", id, v.Events)
		}
		shard, ok := f.ShardOf(id)
		if !ok || shard != v.Shard {
			t.Errorf("tenant %q shard mismatch: ShardOf=%d view=%d", id, shard, v.Shard)
		}
	}
	// The scope cap is 2: a and b get dedicated journals, c folds.
	if va, _ := f.TenantStatus("a"); !va.DedicatedLedger {
		t.Error("tenant a should have a dedicated ledger scope")
	}
	if vc, _ := f.TenantStatus("c"); vc.DedicatedLedger {
		t.Error("tenant c should be folded into the overflow scope")
	}
	if led.Folded() != 1 {
		t.Errorf("folded = %d, want 1", led.Folded())
	}
	// Per cycle: combined journaled for all 3; per-layer (load scored,
	// not NaN) for the 2 dedicated tenants.
	if preds, _ := led.Totals(); preds != 5 {
		t.Errorf("journaled predictions = %d, want 5", preds)
	}

	// A failure on the most critical tenant drops weighted availability
	// to (1+1)/(3+1+1).
	if err := f.RecordFailure("a", 11); err != nil {
		t.Fatal(err)
	}
	clock.Set(20)
	if v, _ := f.TenantStatus("a"); v.Status != StatusFailed {
		t.Errorf("tenant a status after failure = %q, want failed", v.Status)
	}
	r := f.Rollup(clock.Now())
	if want := 0.4; math.Abs(r.WeightedAvailability-want) > 1e-12 {
		t.Errorf("weighted availability = %g, want %g", r.WeightedAvailability, want)
	}
	if r.ByStatus[StatusFailed] != 1 {
		t.Errorf("byStatus[failed] = %d, want 1", r.ByStatus[StatusFailed])
	}

	// /fleet endpoint: full listing, single-tenant view, status filter.
	h := f.Handler()
	var body fleetJSON
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("/fleet status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Tenants) != 3 || body.Rollup.Tenants != 3 {
		t.Fatalf("/fleet listed %d tenants, rollup %d, want 3", len(body.Tenants), body.Rollup.Tenants)
	}
	for _, v := range body.Tenants {
		if len(v.Versions) != 1 {
			t.Errorf("tenant %q versions = %v, want one layer", v.ID, v.Versions)
		}
		if v.Quality == nil {
			t.Errorf("tenant %q missing quality table", v.ID)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?tenant=b", nil))
	body = fleetJSON{}
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if len(body.Tenants) != 1 || body.Tenants[0].ID != "b" {
		t.Fatalf("/fleet?tenant=b returned %+v", body.Tenants)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?tenant=zzz", nil))
	if rec.Code != 404 {
		t.Fatalf("/fleet?tenant=zzz status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?status=failed", nil))
	body = fleetJSON{}
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if len(body.Tenants) != 1 || body.Tenants[0].ID != "a" {
		t.Fatalf("/fleet?status=failed returned %+v", body.Tenants)
	}
	// /metrics carries the fleet plane, including eagerly-registered
	// per-shard series.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{
		"pfm_fleet_tenants 3",
		`pfm_fleet_shard_queue_depth{shard="0"} 0`,
		`pfm_fleet_shard_queue_depth{shard="1"} 0`,
		"pfm_fleet_weighted_availability 0.4",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz after Stop = %d, want 503", rec.Code)
	}
}

// TestFleetStatusTransitions: idle → ok → stale as the clock advances.
func TestFleetStatusTransitions(t *testing.T) {
	clock := newTestClock(0)
	cfg := testFleetConfig(specs("a"), clock)
	cfg.StaleAfter = 100
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Stop(context.Background()) }()

	if v, _ := f.TenantStatus("a"); v.Status != StatusIdle {
		t.Errorf("before events: status = %q, want idle", v.Status)
	}
	if err := f.Ingest(ctx, sample("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(50)
	if v, _ := f.TenantStatus("a"); v.Status != StatusOK {
		t.Errorf("fresh events: status = %q, want ok", v.Status)
	}
	clock.Set(200)
	if v, _ := f.TenantStatus("a"); v.Status != StatusStale {
		t.Errorf("silent stream: status = %q, want stale", v.Status)
	}
}

// TestFleetValidation rejects malformed configurations.
func TestFleetValidation(t *testing.T) {
	clock := newTestClock(0)
	base := func() Config { return testFleetConfig(specs("a", "b"), clock) }
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"no tenants", func(c *Config) { c.Tenants = nil }},
		{"no layers", func(c *Config) { c.Layers = nil }},
		{"nil apply", func(c *Config) { c.Apply = nil }},
		{"nil state", func(c *Config) { c.NewState = nil }},
		{"duplicate tenant", func(c *Config) { c.Tenants = specs("a", "a") }},
		{"empty tenant id", func(c *Config) { c.Tenants = specs("") }},
		{"pipe in tenant id", func(c *Config) { c.Tenants = specs("a|b") }},
		{"negative criticality", func(c *Config) { c.Tenants[0].Criticality = -1 }},
		{"scorerless layer", func(c *Config) { c.Layers = []LayerTemplate{{Name: "x"}} }},
		{"negative shards", func(c *Config) { c.Shards = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mod(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
		})
	}
}

// TestFleetUnknownTenant: direct Ingest errors; Pump counts and skips.
func TestFleetUnknownTenant(t *testing.T) {
	clock := newTestClock(0)
	f, err := New(testFleetConfig(specs("a"), clock))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Ingest(ctx, sample("ghost", 1, 0)); err == nil {
		t.Fatal("Ingest accepted an unknown tenant")
	}
	n, err := Pump(ctx, f, NewSliceSource([]Record{
		{Event: sample("a", 1, 0)},
		{Event: sample("ghost", 2, 0)}, // skipped, not fatal
		{Event: sample("a", 3, 0)},
	}))
	if err != nil || n != 3 {
		t.Fatalf("Pump = (%d, %v), want (3, nil)", n, err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.TenantStatus("a"); v.Events != 2 {
		t.Errorf("tenant a events = %d, want 2", v.Events)
	}
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "pfm_fleet_unknown_tenant_total 2") {
		t.Error("/metrics missing unknown-tenant count 2")
	}
}

// TestFleetPerTenantOrdering: one tenant's events apply in ingest order
// even with many shards and concurrent producers for other tenants.
func TestFleetPerTenantOrdering(t *testing.T) {
	clock := newTestClock(0)
	const perTenant = 200
	ids := []string{"t0", "t1", "t2", "t3", "t4"}
	type ordered struct {
		mu   sync.Mutex
		seen []float64
	}
	orders := make(map[string]*ordered, len(ids))
	for _, id := range ids {
		orders[id] = &ordered{}
	}
	cfg := testFleetConfig(specs(ids...), clock)
	cfg.Shards = 4
	cfg.Apply = func(st TenantState, ev Event) error {
		o := orders[ev.Tenant]
		o.mu.Lock()
		o.seen = append(o.seen, ev.Time)
		o.mu.Unlock()
		return nil
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if err := f.Ingest(ctx, sample(id, float64(i), 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		o := orders[id]
		if len(o.seen) != perTenant {
			t.Fatalf("tenant %s applied %d of %d", id, len(o.seen), perTenant)
		}
		for i, ts := range o.seen {
			if ts != float64(i) {
				t.Fatalf("tenant %s out of order at %d: got %g", id, i, ts)
			}
		}
	}
}

// TestFleetStopDrains: Stop applies the full backlog before returning.
func TestFleetStopDrains(t *testing.T) {
	clock := newTestClock(0)
	cfg := testFleetConfig(specs("a", "b"), clock)
	cfg.QueueCapacity = 4096
	var applied atomic.Int64
	cfg.Apply = func(TenantState, Event) error {
		applied.Add(1)
		return nil
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		id := "a"
		if i%2 == 1 {
			id = "b"
		}
		if err := f.Ingest(ctx, sample(id, float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	stopCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := f.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	if applied.Load() != total {
		t.Fatalf("applied %d of %d after Stop", applied.Load(), total)
	}
	if err := f.Ingest(ctx, sample("a", 0, 0)); err == nil {
		t.Fatal("Ingest accepted after Stop")
	}
	if f.Cycles() == 0 {
		t.Error("no final evaluation cycle ran on shutdown")
	}
}

// TestFleetRecorderIncidents drives the scoped flight recorder end to end:
// criticality-weighted warn gates, overflow folding past the scope cap, the
// /incidents plane, /fleet incident fields, and the liveness/readiness
// split across the fleet lifecycle.
func TestFleetRecorderIncidents(t *testing.T) {
	clock := newTestClock(0)
	srec, err := obs.NewScopedRecorder(obs.RecorderConfig{
		Layers:        []string{"load"},
		WarnThreshold: 0.8,
		Window:        50,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testFleetConfig([]TenantSpec{
		{ID: "a", Criticality: 4}, {ID: "b"}, {ID: "c"},
	}, clock)
	cfg.Recorder = srec
	// Confidence = the single layer's mean, so the warn gates are exact:
	// a's criticality-4 gate is 0.8/4 = 0.2, b keeps the template 0.8.
	cfg.NewCombiner = func(TenantSpec) core.Combiner {
		return func(s []float64) (float64, error) { return s[0], nil }
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// a and b warn at 0.6 — only a's weighted gate escalates it into an
	// incident. c (folded onto the overflow recorder, template gate 0.8)
	// runs hot enough to pass the unweighted gate.
	for i := 0; i < 10; i++ {
		ti := float64(i)
		for _, ev := range []Event{
			sample("a", ti, 0.6), sample("b", ti, 0.6), sample("c", ti, 0.9),
		} {
			if err := f.Ingest(ctx, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(10)
	f.EvaluateCycle() // act stage raises the warn triggers
	clock.Set(11)
	f.EvaluateCycle() // next cycle's exclusion assembles them

	if got := srec.Captured(obs.TriggerWarn); got != 2 {
		t.Fatalf("warn bundles = %d, want 2 (a + folded c)", got)
	}
	scopes := map[string]string{} // scope -> detail
	for _, b := range srec.Bundles() {
		if b.Trigger == obs.TriggerWarn {
			scopes[b.Scope] = b.Detail
		}
	}
	if scopes["a"] != "a" || scopes[obs.OverflowScope] != "c" {
		t.Fatalf("warn bundle scopes = %v, want a and overflow(c)", scopes)
	}
	if srec.Folded() != 1 {
		t.Fatalf("folded recorder tenants = %d, want 1", srec.Folded())
	}

	// /fleet rows carry the incident counts and fold flags.
	h := f.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	var body fleetJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Rollup.Incidents < 2 || body.Rollup.FoldedRecorderTenants != 1 {
		t.Fatalf("rollup incidents = %+v", body.Rollup)
	}
	for _, v := range body.Tenants {
		if v.Incidents == nil {
			t.Fatalf("tenant %q missing incidents count", v.ID)
		}
		switch v.ID {
		case "a":
			if !v.DedicatedRecorder || *v.Incidents < 1 {
				t.Errorf("tenant a = dedicated %v incidents %d", v.DedicatedRecorder, *v.Incidents)
			}
		case "b":
			// b's 0.6 confidence stays under its unweighted 0.8 warn
			// gate (the scopes map above proves no warn bundle), though
			// the executed no-op countermeasure still records an act
			// bundle on its dedicated scope.
			if !v.DedicatedRecorder {
				t.Error("tenant b should have a dedicated recorder scope")
			}
		case "c":
			if v.DedicatedRecorder {
				t.Error("tenant c should fold onto the overflow recorder")
			}
		}
	}

	// /incidents: list, detail, and the 404 for unknown IDs.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/incidents", nil))
	var list []runtime.IncidentSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) < 2 {
		t.Fatalf("/incidents listed %d bundles, want >= 2", len(list))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/incidents?id="+list[0].ID, nil))
	var full obs.IncidentBundle
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.ID != list[0].ID || len(full.Scores) == 0 {
		t.Fatalf("/incidents?id= returned %+v", full)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/incidents?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("/incidents?id=nope status %d, want 404", rec.Code)
	}

	// Metric plane and the liveness/readiness split.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{
		`pfm_fleet_incidents_total{trigger="warn"} 2`,
		"pfm_fleet_recorder_folded 1",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/livez", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"pipeline":"ok"`) {
		t.Fatalf("/livez = %d %s", rec.Code, rec.Body.String())
	}

	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), `"status":"stopped"`) {
		t.Fatalf("/readyz after Stop = %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/livez", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"pipeline":"stopped"`) {
		t.Fatalf("/livez after Stop = %d %s", rec.Code, rec.Body.String())
	}
}

package fleet

import (
	"bytes"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// limitSource ends a stream after n records — the deterministic EOF the
// listen-parity test needs, since a live ListenSource only EOFs on Close.
type limitSource struct {
	src Source
	n   int
}

func (l *limitSource) Next() (Record, error) {
	if l.n == 0 {
		return Record{}, io.EOF
	}
	l.n--
	return l.src.Next()
}

// TestListenParity: a trace shipped over TCP — split across two concurrent
// connections, one speaking the PFW1 wire format and one the text line
// protocol — replays to the same per-tenant counts and ledger totals as
// the in-process slice source. Per-tenant ordering is preserved because
// each tenant's sub-stream rides a single connection; cross-tenant
// interleaving is arbitrary and must not matter.
func TestListenParity(t *testing.T) {
	ids, recs := simTrace(t)
	ref := replay(t, ids, NewSliceSource(recs))

	// Partition by tenant: first two tenants over wire, rest over text.
	wireTenants := map[string]bool{ids[0]: true, ids[1]: true}
	var wireRecs, textRecs []Record
	for _, rec := range recs {
		if wireTenants[rec.Event.Tenant] {
			wireRecs = append(wireRecs, rec)
		} else {
			textRecs = append(textRecs, rec)
		}
	}
	var wireBuf, textBuf bytes.Buffer
	if err := WriteWire(&wireBuf, wireRecs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&textBuf, textRecs); err != nil {
		t.Fatal(err)
	}

	ls, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	send := func(payload []byte) {
		conn, err := net.Dial("tcp", ls.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer conn.Close()
		if _, err := conn.Write(payload); err != nil {
			t.Errorf("send: %v", err)
		}
	}
	go send(wireBuf.Bytes())
	go send(textBuf.Bytes())

	got := replay(t, ids, &limitSource{src: ls, n: len(recs)})
	for key, want := range ref {
		if g := got[key]; g != want {
			t.Errorf("listen source: %s = %v, want %v", key, g, want)
		}
	}
	if ls.Conns() != 2 {
		t.Errorf("conns = %d, want 2", ls.Conns())
	}
	if ls.DecodeErrors() != 0 {
		t.Errorf("decode errors = %d on clean streams, want 0", ls.DecodeErrors())
	}
}

// TestListenMalformed: a text connection with corrupt lines keeps going —
// bad lines are counted and skipped — while a corrupt binary stream ends
// its connection at the first bad frame, after yielding the records that
// preceded it.
func TestListenMalformed(t *testing.T) {
	ls, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	// Text: two good samples around two malformed lines.
	text := "S|a|1|load|0.5\nGARBAGE\nS|a|abc|load|x\nS|a|2|load|0.6\n"
	// Wire: one good record, then a poisoned frame.
	var wire bytes.Buffer
	if err := WriteWire(&wire, []Record{{Event: Event{Tenant: "b", Time: 1, Variable: "load", Value: 0.1}}}); err != nil {
		t.Fatal(err)
	}
	wire.Write([]byte{0xff, 0xff, 0xff, 0xff})
	for _, payload := range []string{text, wire.String()} {
		conn, err := net.Dial("tcp", ls.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(payload)); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}

	counts := map[string]int{}
	for i := 0; i < 3; i++ {
		rec, err := ls.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		counts[rec.Event.Tenant]++
	}
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Errorf("decoded counts = %v, want a:2 b:1", counts)
	}
	// 2 bad text lines + 1 aborted binary stream.
	deadline := time.Now().Add(2 * time.Second)
	for ls.DecodeErrors() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := ls.DecodeErrors(); got != 3 {
		t.Errorf("decode errors = %d, want 3 (2 bad lines + 1 bad stream)", got)
	}
}

// TestListenCloseUnblocks: Close ends a blocked Next with io.EOF even with
// an idle connection open.
func TestListenCloseUnblocks(t *testing.T) {
	ls, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ls.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() {
		_, err := ls.Next()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("Next after Close = %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
}

// FuzzListenDecode: the connection decoder never panics, whatever bytes a
// peer sends — binary, text, or hostile hybrids. Shares the FuzzWireDecode
// seed shapes plus text-protocol seeds.
func FuzzListenDecode(f *testing.F) {
	var wire bytes.Buffer
	if err := WriteWire(&wire, wireSampleTrace()); err != nil {
		f.Fatal(err)
	}
	valid := wire.Bytes()
	var text bytes.Buffer
	if err := WriteTrace(&text, wireSampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(text.Bytes())
	f.Add([]byte("PFW1"))
	f.Add([]byte("PFW1\xff\xff\xff\xff"))
	f.Add([]byte("S|a|1|load|0.5\nE|a|2|comp|0|1|msg\nF|a|3\n"))
	f.Add([]byte("S|a|1|load|0.5\nPFW1\x01\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var bad atomic.Int64
		n := 0
		_ = decodeStream(bytes.NewReader(data), func(rec Record) bool {
			n++
			if len(rec.Event.Tenant) > maxWireString {
				t.Fatalf("decoded tenant exceeds cap")
			}
			return n < 1<<16 // bound emitted records, not a correctness limit
		}, &bad)
	})
}

package fleet

import (
	"context"
	"testing"
)

// actFleet builds a fleet whose three tenants all run hot enough to act in
// the first cycle, with distinct criticalities so the budget's priority
// order is observable.
func actFleet(t *testing.T, budget int) (*Fleet, *testClock) {
	t.Helper()
	clock := newTestClock(0)
	cfg := testFleetConfig([]TenantSpec{
		{ID: "hi", Criticality: 4}, {ID: "mid", Criticality: 2}, {ID: "lo"},
	}, clock)
	cfg.ActBudget = budget
	// One committed action per tenant per window: a tenant that wins the
	// budget slot is guard-suppressed next cycle, so the deferred demand
	// rotates through in priority order instead of the winner repeating.
	cfg.Engine.OscillationWindow = 100
	cfg.Engine.MaxActionsPerWindow = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for _, id := range []string{"hi", "mid", "lo"} {
			if err := f.Ingest(ctx, sample(id, float64(i), 0.9)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	return f, clock
}

func actions(t *testing.T, f *Fleet, id string) int64 {
	t.Helper()
	v, ok := f.TenantStatus(id)
	if !ok {
		t.Fatalf("tenant %s missing", id)
	}
	return v.Actions
}

// TestActBudgetPriority: with ActBudget=1, the single countermeasure slot
// goes to the highest criticality×confidence tenant; the rest are deferred
// (counted, warn still recorded) rather than silently skipped.
func TestActBudgetPriority(t *testing.T) {
	f, clock := actFleet(t, 1)
	ctx := context.Background()
	clock.Set(10)
	f.EvaluateCycle()

	if got := actions(t, f, "hi"); got != 1 {
		t.Errorf("hi actions = %d, want 1 (highest priority wins the slot)", got)
	}
	if got := actions(t, f, "mid") + actions(t, f, "lo"); got != 0 {
		t.Errorf("mid+lo actions = %d, want 0 (deferred by budget)", got)
	}
	r := f.Rollup(10)
	if r.ActionsDeferred != 2 {
		t.Errorf("deferred = %d, want 2", r.ActionsDeferred)
	}
	if r.ActBudget != 1 {
		t.Errorf("rollup actBudget = %d, want 1", r.ActBudget)
	}
	// Deferral does not forfeit the warn: every hot tenant still warned.
	for _, id := range []string{"hi", "mid", "lo"} {
		if v, _ := f.TenantStatus(id); v.Warnings == 0 {
			t.Errorf("tenant %s has no warning; budget must defer the act, not the warn", id)
		}
	}

	// Next cycle: hi is guard-suppressed (it acted this window), so the
	// deferred demand competes and mid outranks lo; lo drains the cycle
	// after. A dropped act must not consume the tenant's guard budget.
	clock.Set(11)
	f.EvaluateCycle()
	if got := actions(t, f, "hi"); got != 1 {
		t.Errorf("hi actions after second cycle = %d, want 1 (guard holds)", got)
	}
	if got := actions(t, f, "mid"); got != 1 {
		t.Errorf("mid actions after second cycle = %d, want 1", got)
	}
	clock.Set(12)
	f.EvaluateCycle()
	if got := actions(t, f, "lo"); got != 1 {
		t.Errorf("lo actions after third cycle = %d, want 1", got)
	}
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestActBudgetUnlimited: budget 0 means no cap — every act-ready tenant
// executes in the same cycle and nothing is deferred.
func TestActBudgetUnlimited(t *testing.T) {
	f, clock := actFleet(t, 0)
	ctx := context.Background()
	clock.Set(10)
	f.EvaluateCycle()
	for _, id := range []string{"hi", "mid", "lo"} {
		if got := actions(t, f, id); got != 1 {
			t.Errorf("%s actions = %d, want 1", id, got)
		}
	}
	if r := f.Rollup(10); r.ActionsDeferred != 0 {
		t.Errorf("deferred = %d, want 0 with no budget", r.ActionsDeferred)
	}
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestActBudgetValidation: a negative budget is a config error.
func TestActBudgetValidation(t *testing.T) {
	clock := newTestClock(0)
	cfg := testFleetConfig(specs("a"), clock)
	cfg.ActBudget = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a negative ActBudget")
	}
}

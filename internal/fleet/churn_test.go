package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	stdruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// churnFingerprint replays the determinism trace through a fleet that is
// live-grown to the reference shape — starts at 2 shards with half the
// tenants, admits the rest via AddTenant, and resizes twice mid-replay —
// and returns the same observable digest fleetFingerprint produces.
func churnFingerprint(t *testing.T) string {
	t.Helper()
	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%02d", i)
	}
	clock := newTestClock(0)
	led, err := obs.NewScopedLedger(obs.LedgerConfig{LeadTime: 300, Slack: 60}, 8, "load")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testFleetConfig(specs(ids[:6]...), clock)
	cfg.Shards = 2
	cfg.Workers = 4
	cfg.BatchSize = 8
	cfg.Ledger = led
	cfg.JournalLayers = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Grow the membership live: the remaining tenants join one by one (in
	// the same order the reference fleet registered them, so ledger scope
	// order matches), then the shard count steps 2 → 3.
	for _, id := range ids[6:] {
		if err := f.AddTenant(TenantSpec{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Resize(3); err != nil {
		t.Fatal(err)
	}
	trace := deterministicTrace(ids, 60)
	half := len(trace) / 2
	if _, err := Pump(ctx, f, NewSliceSource(trace[:half])); err != nil {
		t.Fatal(err)
	}
	// Resize with the first half potentially still queued: the handoff
	// re-homes backlog without reordering any tenant's stream.
	if err := f.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(30)
	f.EvaluateCycle()
	if _, err := Pump(ctx, f, NewSliceSource(trace[half:])); err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(60)
	f.EvaluateCycle()
	clock.Set(500)
	f.EvaluateCycle()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if got := f.Shards(); got != 4 {
		t.Fatalf("final shards = %d, want 4", got)
	}
	if gen := f.Generation(); gen != 1+6+2 {
		t.Fatalf("generation = %d, want %d (6 adds + 2 resizes)", gen, 1+6+2)
	}
	return digestFleet(t, f, led, ids)
}

// TestFleetChurnParity: a fleet grown live — tenants admitted at runtime,
// shards resized mid-replay with queue handoff — replays the trace to the
// byte-identical ledger and /fleet quality state of a fleet constructed at
// the final shape, across GOMAXPROCS {1, 4}. This is the membership
// extension of TestFleetDeterministicAcrossShapes: generation swaps and
// handoffs must be invisible to every observable outcome.
func TestFleetChurnParity(t *testing.T) {
	ref := fleetFingerprint(t, 4, 4, 8, false)
	old := stdruntime.GOMAXPROCS(0)
	defer stdruntime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4} {
		stdruntime.GOMAXPROCS(procs)
		if got := churnFingerprint(t); got != ref {
			t.Errorf("GOMAXPROCS=%d churn fleet diverged:\n--- ref ---\n%s--- got ---\n%s",
				procs, ref, got)
		}
	}
}

// TestFleetResizeHandoffBacklog: resizing with queued backlog re-homes the
// moved tenants' items (counted on pfm_fleet_handoff_total), preserves the
// total queue depth, and the re-homed backlog still applies — counters
// conserved. The fleet is not started until after the resize, so the
// backlog is deterministic.
func TestFleetResizeHandoffBacklog(t *testing.T) {
	ids := make([]string, 20)
	for i := range ids {
		ids[i] = fmt.Sprintf("h%02d", i)
	}
	clock := newTestClock(0)
	cfg := testFleetConfig(specs(ids...), clock)
	cfg.Shards = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const perTenant = 7
	for i := 0; i < perTenant; i++ {
		for _, id := range ids {
			if err := f.Ingest(ctx, sample(id, float64(i), 0.1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perTenant * len(ids)
	if got := f.QueueDepth(); got != total {
		t.Fatalf("pre-resize depth = %d, want %d", got, total)
	}
	before := make(map[string]int, len(ids))
	for _, id := range ids {
		s, ok := f.ShardOf(id)
		if !ok {
			t.Fatalf("tenant %s missing before resize", id)
		}
		before[id] = s
	}
	if err := f.Resize(5); err != nil {
		t.Fatal(err)
	}
	wantMovedTenants := 0
	for _, id := range ids {
		s, ok := f.ShardOf(id)
		if !ok {
			t.Fatalf("tenant %s missing after resize", id)
		}
		if s != before[id] {
			wantMovedTenants++
		}
	}
	if wantMovedTenants == 0 {
		t.Fatal("resize 2 → 5 moved no tenants; test exercises nothing")
	}
	if got := f.handoffN.Value(); got != int64(wantMovedTenants*perTenant) {
		t.Errorf("handoff total = %d, want %d (%d moved tenants × %d queued)",
			got, wantMovedTenants*perTenant, wantMovedTenants, perTenant)
	}
	if got := f.QueueDepth(); got != total {
		t.Errorf("post-resize depth = %d, want %d (handoff must not lose items)", got, total)
	}
	// Now start; the re-homed backlog must drain through Apply.
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	m := f.Metrics()
	if m.Applied.Value() != int64(total) || m.Ingested.Value() != int64(total) {
		t.Errorf("ingested=%d applied=%d, want both %d",
			m.Ingested.Value(), m.Applied.Value(), total)
	}
	for _, id := range ids {
		v, ok := f.TenantStatus(id)
		if !ok || v.Events != perTenant {
			t.Errorf("tenant %s applied %d events, want %d", id, v.Events, perTenant)
		}
	}
}

// TestFleetRemoveTenantRelease: removing a tenant sheds its backlog
// (counted dropped), rejects further ingest as unknown, drops it from
// /fleet and the ledger scope list, frees its dedicated-scope slot for a
// future tenant, and keeps ledger totals monotonic — no ghost rows.
func TestFleetRemoveTenantRelease(t *testing.T) {
	clock := newTestClock(0)
	led, err := obs.NewScopedLedger(obs.LedgerConfig{LeadTime: 300, Slack: 60}, 2, "load")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testFleetConfig(specs("a", "b"), clock)
	cfg.Shards = 1
	cfg.Ledger = led
	cfg.JournalLayers = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Ingest(ctx, sample("a", float64(i), 1)); err != nil {
			t.Fatal(err)
		}
		if err := f.Ingest(ctx, sample("b", float64(i), 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(10)
	f.EvaluateCycle()
	predsBefore, _ := led.Totals()
	if predsBefore == 0 {
		t.Fatal("expected journaled predictions before removal")
	}

	if err := f.RemoveTenant("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveTenant("a"); err == nil {
		t.Error("second RemoveTenant should fail")
	}
	if _, ok := f.TenantStatus("a"); ok {
		t.Error("removed tenant still visible in TenantStatus")
	}
	if err := f.Ingest(ctx, sample("a", 11, 1)); err == nil {
		t.Error("ingest for removed tenant should fail")
	}
	for _, sc := range led.Scopes() {
		if sc == "a" {
			t.Error("removed tenant still listed in ledger scopes")
		}
	}
	if preds, _ := led.Totals(); preds < predsBefore {
		t.Errorf("ledger totals went backwards after release: %d < %d", preds, predsBefore)
	}
	// /fleet must not list the ghost.
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Tenants []TenantView `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(body.Tenants) != 1 || body.Tenants[0].ID != "b" {
		t.Errorf("/fleet tenants = %+v, want just b", body.Tenants)
	}
	// The freed dedicated slot is reusable: a new tenant gets its own scope
	// (with cap 2 and b still registered, c only fits because a's slot was
	// released).
	if err := f.AddTenant(TenantSpec{ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if !led.Dedicated("c") {
		t.Error("new tenant c should reuse the released dedicated ledger slot")
	}
	if err := f.Ingest(ctx, sample("c", 12, 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	m := f.Metrics()
	in := m.Ingested.Value()
	out := m.Applied.Value() + m.DroppedOldest.Value() + m.DroppedNewest.Value() +
		m.DroppedCanceled.Value() + m.DroppedShutdown.Value()
	if in != out {
		t.Errorf("counters not conserved: ingested %d != applied+dropped %d", in, out)
	}
}

// TestFleetAdminValidation: admin operations reject bad input without
// disturbing the running fleet.
func TestFleetAdminValidation(t *testing.T) {
	clock := newTestClock(0)
	f, err := New(testFleetConfig(specs("a"), clock))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddTenant(TenantSpec{ID: "a"}); err == nil {
		t.Error("duplicate AddTenant should fail")
	}
	if err := f.AddTenant(TenantSpec{ID: "x|y"}); err == nil {
		t.Error("AddTenant with separator in ID should fail")
	}
	if err := f.AddTenant(TenantSpec{ID: "r", RateLimit: -1}); err == nil {
		t.Error("negative rate limit should fail")
	}
	if err := f.RemoveTenant("nope"); err == nil {
		t.Error("RemoveTenant of unknown tenant should fail")
	}
	if err := f.Resize(0); err == nil {
		t.Error("Resize(0) should fail")
	}
	if err := f.Resize(f.Shards()); err != nil {
		t.Errorf("no-op resize should succeed: %v", err)
	}
	if _, ok := f.TenantStatus("a"); !ok {
		t.Error("tenant a lost after rejected admin calls")
	}
}

// TestFleetChurnUnderLoad exercises the full elastic surface concurrently —
// ingest at full rate, tenants added and removed, shards resized up and
// down, the HTTP plane polled — and checks the conservation invariant at
// the end: every ingested event was applied, dropped, or shed, and /fleet
// never returned a 5xx. Run with -race this is the membership-churn safety
// net.
func TestFleetChurnUnderLoad(t *testing.T) {
	ids := make([]string, 24)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%02d", i)
	}
	clock := newTestClock(0)
	cfg := testFleetConfig(specs(ids...), clock)
	cfg.Shards = 3
	cfg.Workers = 4
	cfg.QueueCapacity = 64
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Producers: full-rate ingest over a moving tenant set (removed tenants
	// are rejected as unknown — that's fine, the pump must not stall).
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				_ = f.Ingest(ctx, sample(id, float64(i), rng.Float64()))
			}
		}(int64(p))
	}
	// Churner: add/remove a rotating set of scratch tenants and resize.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{4, 2, 5, 3}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("x%02d", i%8)
			if err := f.AddTenant(TenantSpec{ID: id, RateLimit: 50}); err != nil {
				t.Errorf("AddTenant(%s): %v", id, err)
				return
			}
			_ = f.Ingest(ctx, sample(id, float64(i), 0.5))
			if err := f.Resize(sizes[i%len(sizes)]); err != nil {
				t.Errorf("Resize: %v", err)
				return
			}
			if err := f.RemoveTenant(id); err != nil {
				t.Errorf("RemoveTenant(%s): %v", id, err)
				return
			}
			clock.Set(float64(i))
			f.EvaluateNow()
		}
	}()
	// Poller: the HTTP plane must never 500 mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := srv.Client()
		paths := []string{"/fleet", "/fleet?tenant=c00", "/healthz", "/metrics"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(srv.URL + paths[i%len(paths)])
			if err != nil {
				return // server closing
			}
			if resp.StatusCode >= 500 {
				t.Errorf("%s returned %d during churn", paths[i%len(paths)], resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	m := f.Metrics()
	in := m.Ingested.Value()
	out := m.Applied.Value() + m.DroppedOldest.Value() + m.DroppedNewest.Value() +
		m.DroppedCanceled.Value() + m.DroppedShutdown.Value()
	if in != out {
		t.Errorf("counters not conserved after churn: ingested %d != applied+dropped %d (applied=%d shutdown=%d)",
			in, out, m.Applied.Value(), m.DroppedShutdown.Value())
	}
	if in == 0 {
		t.Error("no events ingested; churn test exercised nothing")
	}
}

// TestFleetAdminHTTP drives the admin plane end to end: POST /fleet/tenants
// admits a tenant that immediately accepts ingest, DELETE retires it, POST
// /fleet/resize changes the shard count, and error paths map to 4xx.
func TestFleetAdminHTTP(t *testing.T) {
	clock := newTestClock(0)
	f, err := New(testFleetConfig(specs("a"), clock))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	client := srv.Client()

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		f.Handler().ServeHTTP(rec, req)
		return rec
	}
	if rec := post("/fleet/tenants", `{"id":"web","criticality":2,"rateLimit":100}`); rec.Code != 201 {
		t.Fatalf("POST /fleet/tenants = %d: %s", rec.Code, rec.Body)
	}
	if rec := post("/fleet/tenants", `{"id":"web"}`); rec.Code != 409 {
		t.Errorf("duplicate POST = %d, want 409", rec.Code)
	}
	if rec := post("/fleet/tenants", `{"id":""}`); rec.Code != 400 {
		t.Errorf("empty-id POST = %d, want 400", rec.Code)
	}
	if err := f.Ingest(ctx, sample("web", 1, 0.5)); err != nil {
		t.Fatalf("ingest for admitted tenant: %v", err)
	}
	if rec := post("/fleet/resize", `{"shards":4}`); rec.Code != 200 {
		t.Errorf("POST /fleet/resize = %d: %s", rec.Code, rec.Body)
	} else if f.Shards() != 4 {
		t.Errorf("shards after resize = %d, want 4", f.Shards())
	}
	if rec := post("/fleet/resize", `{"shards":0}`); rec.Code != 400 {
		t.Errorf("bad resize = %d, want 400", rec.Code)
	}

	req := httptest.NewRequest("DELETE", "/fleet/tenants/web", nil)
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Errorf("DELETE = %d: %s", rec.Code, rec.Body)
	}
	req = httptest.NewRequest("DELETE", "/fleet/tenants/web", nil)
	rec = httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, req)
	if rec.Code != 404 {
		t.Errorf("second DELETE = %d, want 404", rec.Code)
	}
	resp, err := client.Get(srv.URL + "/fleet?tenant=web")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("GET removed tenant = %d, want 404", resp.StatusCode)
	}
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}

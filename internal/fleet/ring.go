package fleet

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring mapping tenant IDs onto shards. Each
// shard projects vnodes points onto the 64-bit hash circle; a tenant lands
// on the first point clockwise of its own hash. Placement depends only on
// (tenant ID, shard count, vnodes) — never on registration order or
// process state — so a trace replays onto identical shards anywhere, and
// growing the shard count moves only ~1/shards of the tenants (the
// property plain modulo hashing lacks).
type ring struct {
	points []uint64 // sorted vnode positions
	shards []int    // shards[i] owns points[i]
}

// defaultVnodes balances the ring to a few percent spread at fleet scale
// while keeping the table small enough to stay cache-resident.
const defaultVnodes = 64

func newRing(shards, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = defaultVnodes
	}
	r := &ring{
		points: make([]uint64, 0, shards*vnodes),
		shards: make([]int, 0, shards*vnodes),
	}
	type pt struct {
		pos   uint64
		shard int
	}
	pts := make([]pt, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{pos: hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].pos != pts[b].pos {
			return pts[a].pos < pts[b].pos
		}
		return pts[a].shard < pts[b].shard // total order even on hash ties
	})
	for _, p := range pts {
		r.points = append(r.points, p.pos)
		r.shards = append(r.shards, p.shard)
	}
	return r
}

// shardOf returns the shard owning the tenant.
func (r *ring) shardOf(tenant string) int {
	h := hash64(tenant)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point lands on the first
	}
	return r.shards[i]
}

// hash64 is 64-bit FNV-1a with a splitmix64 finalizer, inlined so routing
// never allocates. The finalizer matters: sequential IDs ("t0041", "t0042")
// differ only in their last bytes, and raw FNV moves the hash by just
// delta×prime there — far less than a vnode gap at fleet scale, which
// would clump neighboring tenants onto the same shard.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/eventlog"
	"repro/internal/runtime"
	"repro/internal/scp"
)

// Record is one unit of a tenant trace: an ingestable event, or a
// ground-truth failure mark (Failure true; Event carries Tenant and Time).
type Record struct {
	Event   Event
	Failure bool
}

// Source yields a tenant trace record by record. Next returns io.EOF when
// the trace is exhausted; any other error aborts the pump. Implementations
// in this package: SliceSource (in-process), TailSource (text line
// protocol, optionally following a growing file), Reader (binary wire
// format).
type Source interface {
	Next() (Record, error)
}

// Pump drains src into the fleet: events go through Ingest under the
// configured overflow policy, failure marks through RecordFailure. It
// returns the number of records consumed and the first hard error
// (unknown-tenant rejections are counted and skipped, not fatal — one bad
// tenant in a shared trace must not stall the rest of the fleet).
func Pump(ctx context.Context, f *Fleet, src Source) (int, error) {
	n := 0
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if rec.Failure {
			err = f.RecordFailure(rec.Event.Tenant, rec.Event.Time)
		} else {
			err = f.Ingest(ctx, rec.Event)
		}
		switch {
		case errors.Is(err, ErrUnknownTenant):
			// counted via pfm_fleet_unknown_tenant_total; keep pumping
		case errors.Is(err, runtime.ErrClosed):
			return n, err
		case err != nil:
			return n, err
		}
		n++
	}
}

// SliceSource replays an in-memory record slice.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource wraps recs (not copied).
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

func (s *SliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// SCPRecords converts a merged multi-tenant simulator trace (see
// scp.MultiSystem.Drain) into fleet records — the in-process feeder path.
func SCPRecords(trace []scp.TraceRecord) []Record {
	out := make([]Record, 0, len(trace))
	for _, tr := range trace {
		out = append(out, scpRecord(tr))
	}
	return out
}

// scpRecord converts one simulator trace record.
func scpRecord(tr scp.TraceRecord) Record {
	switch tr.Kind {
	case scp.TraceFailure:
		return Record{Failure: true, Event: Event{Tenant: tr.Tenant, Time: tr.Time}}
	case scp.TraceError:
		return Record{Event: Event{
			Tenant: tr.Tenant, Kind: runtime.KindError, Time: tr.Time,
			Error: eventlog.Event{
				Time: tr.Time, Component: tr.Component, Type: tr.Type,
				Severity: eventlog.Severity(tr.Severity), Message: tr.Message,
			},
		}}
	default:
		return Record{Event: Event{
			Tenant: tr.Tenant, Kind: runtime.KindSample, Time: tr.Time,
			Variable: tr.Variable, Value: tr.Value,
		}}
	}
}

// badRecord wraps a malformed-input error with position context.
func badRecord(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFleet, fmt.Sprintf(format, args...))
}

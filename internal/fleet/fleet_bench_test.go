package fleet

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// BenchmarkFleetThroughput measures sustained multi-tenant ingest through
// the shared substrate — consistent-hash routing, chunked shard draining,
// one Apply per event — with end-to-end span tracing ON (matching the
// tracing-on arm of BenchmarkRuntimeThroughput). The acceptance target:
// per-event cost with 1000 tenants < 2× the single-tenant runtime's.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, tenants := range []int{1, 1000} {
		b.Run(fmt.Sprintf("tenants-%d", tenants), func(b *testing.B) {
			clock := newTestClock(0)
			sp := make([]TenantSpec, tenants)
			ids := make([]string, tenants)
			for i := range sp {
				ids[i] = fmt.Sprintf("t%04d", i)
				sp[i] = TenantSpec{ID: ids[i]}
			}
			var applied atomic.Int64
			cfg := testFleetConfig(sp, clock)
			cfg.Apply = func(TenantState, Event) error {
				applied.Add(1)
				return nil
			}
			cfg.QueueCapacity = 4096
			cfg.Overflow = runtime.Block
			cfg.Tracer = obs.NewTracer(256)
			f, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if err := f.Start(ctx); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				ev := Event{
					Tenant: ids[i%tenants], Kind: runtime.KindSample,
					Time: float64(i), Variable: "x", Value: 1,
				}
				if err := f.Ingest(ctx, ev); err != nil {
					b.Fatal(err)
				}
			}
			if err := f.Stop(ctx); err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start).Seconds()
			b.StopTimer()
			if applied.Load() != int64(b.N) {
				b.Fatalf("applied %d of %d", applied.Load(), b.N)
			}
			b.ReportMetric(float64(b.N)/elapsed, "events/sec")
			b.ReportMetric(float64(tenants), "tenants")
		})
	}
}

// BenchmarkFleetCycle measures one full batched evaluation cycle across
// 1000 tenants (layer scoring + lifecycle + act fan-out).
func BenchmarkFleetCycle(b *testing.B) {
	const tenants = 1000
	clock := newTestClock(0)
	sp := make([]TenantSpec, tenants)
	for i := range sp {
		sp[i] = TenantSpec{ID: fmt.Sprintf("t%04d", i)}
	}
	cfg := testFleetConfig(sp, clock)
	cfg.Layers = []LayerTemplate{{
		Name: "load", Threshold: 2, // never warns; measures the machinery
		ScoreBatch: func(states []TenantState, now float64, out []float64) error {
			for i := range states {
				out[i] = 0.1
			}
			return nil
		},
	}}
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		b.Fatal(err)
	}
	defer func() { _ = f.Stop(context.Background()) }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Set(float64(i))
		f.EvaluateCycle()
	}
}

// BenchmarkFleetChurn measures the membership-churn control plane on a
// live fleet of 500 tenants: one AddTenant+RemoveTenant round trip per op
// (tenant/), and one shard-count flip with its queue handoff per op
// (resize/). Both install a full membership generation — the cost scales
// with fleet size, not backlog, since queues move by pointer.
func BenchmarkFleetChurn(b *testing.B) {
	base := func(b *testing.B) *Fleet {
		b.Helper()
		const tenants = 500
		clock := newTestClock(0)
		sp := make([]TenantSpec, tenants)
		for i := range sp {
			sp[i] = TenantSpec{ID: fmt.Sprintf("t%04d", i)}
		}
		cfg := testFleetConfig(sp, clock)
		cfg.Shards = 4
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		return f
	}
	b.Run("tenant", func(b *testing.B) {
		f := base(b)
		defer func() { _ = f.Stop(context.Background()) }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.AddTenant(TenantSpec{ID: "xchurn"}); err != nil {
				b.Fatal(err)
			}
			if err := f.RemoveTenant("xchurn"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resize", func(b *testing.B) {
		f := base(b)
		defer func() { _ = f.Stop(context.Background()) }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Resize(4 + i%2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFleetListenIngest measures network ingest end to end: PFW1
// frames over loopback TCP, per-connection decode, consistent-hash routing,
// one Apply per event — the TCP analogue of BenchmarkFleetThroughput.
func BenchmarkFleetListenIngest(b *testing.B) {
	const tenants = 8
	clock := newTestClock(0)
	sp := make([]TenantSpec, tenants)
	ids := make([]string, tenants)
	for i := range sp {
		ids[i] = fmt.Sprintf("t%04d", i)
		sp[i] = TenantSpec{ID: ids[i]}
	}
	var applied atomic.Int64
	cfg := testFleetConfig(sp, clock)
	cfg.Apply = func(TenantState, Event) error {
		applied.Add(1)
		return nil
	}
	cfg.QueueCapacity = 4096
	cfg.Overflow = runtime.Block
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		b.Fatal(err)
	}
	ls, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, b.N)
	for i := range recs {
		recs[i] = Record{Event: Event{
			Tenant: ids[i%tenants], Kind: runtime.KindSample,
			Time: float64(i), Variable: "x", Value: 1,
		}}
	}
	errc := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ls.Addr())
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		errc <- WriteWire(conn, recs)
	}()
	b.ResetTimer()
	start := time.Now()
	n, err := Pump(ctx, f, &limitSource{src: ls, n: b.N})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Stop(ctx); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
	_ = ls.Close()
	if n != b.N || applied.Load() != int64(b.N) {
		b.Fatalf("pumped %d applied %d of %d", n, applied.Load(), b.N)
	}
	b.ReportMetric(float64(b.N)/elapsed, "events/sec")
}

package fleet

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
)

// queueHarness wires a bare shardQueue for direct scheduler tests.
type queueHarness struct {
	q       *shardQueue
	pending atomic.Int64
	clock   float64
	rl      runtime.Counter
}

func newQueueHarness(policy runtime.OverflowPolicy) *queueHarness {
	h := &queueHarness{}
	h.q = newShardQueue(policy, 1<<16, runtime.NewMetrics(), &runtime.Counter{}, &h.rl,
		nil, &h.pending, func() float64 { return h.clock }, 0)
	return h
}

func (h *queueHarness) tenant(id string, capacity int, rate float64) *tenantQueue {
	tn := &tenant{spec: TenantSpec{ID: id}}
	tq := newTenantQueue(tn, capacity, rate)
	tn.q = tq
	h.q.attach(tq)
	return tq
}

func (h *queueHarness) fill(t *testing.T, tq *tenantQueue, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		it := item{ev: Event{Tenant: tq.tn.spec.ID, Time: float64(i)}, tn: tq.tn}
		if err := tq.push(context.Background(), it); err != nil {
			t.Fatalf("push %s[%d]: %v", tq.tn.spec.ID, i, err)
		}
	}
}

// TestDRRFairness: one tenant with a 1000-event backlog must not starve
// small tenants — every small tenant's entire backlog fits in the first
// drained chunk because DRR credits each active tenant one quantum per
// pass before revisiting the hot one.
func TestDRRFairness(t *testing.T) {
	h := newQueueHarness(runtime.Block)
	hot := h.tenant("hot", 2000, 0)
	h.fill(t, hot, 1000)
	smalls := []*tenantQueue{
		h.tenant("s1", 100, 0), h.tenant("s2", 100, 0), h.tenant("s3", 100, 0),
	}
	for _, tq := range smalls {
		h.fill(t, tq, 5)
	}

	buf := make([]item, 64)
	n, limited := h.q.drainInto(buf)
	if limited || n != 64 {
		t.Fatalf("drainInto = (%d, %v), want (64, false)", n, limited)
	}
	for _, tq := range smalls {
		if tq.n != 0 {
			t.Errorf("small tenant %s still has %d queued after first chunk; DRR starved it",
				tq.tn.spec.ID, tq.n)
		}
	}
	counts := map[string]int{}
	for _, it := range buf[:n] {
		counts[it.ev.Tenant]++
	}
	if counts["s1"] != 5 || counts["s2"] != 5 || counts["s3"] != 5 {
		t.Errorf("small-tenant take = %v, want 5 each", counts)
	}
	if counts["hot"] != 64-15 {
		t.Errorf("hot take = %d, want %d", counts["hot"], 64-15)
	}
	h.q.settled(buf, n)

	// Per-tenant FIFO survives the interleave: each tenant's events come
	// out in push order across the whole drain.
	last := map[string]float64{"hot": -1, "s1": -1, "s2": -1, "s3": -1}
	check := func(buf []item, n int) {
		for _, it := range buf[:n] {
			if it.ev.Time <= last[it.ev.Tenant] {
				t.Fatalf("tenant %s reordered: %v after %v",
					it.ev.Tenant, it.ev.Time, last[it.ev.Tenant])
			}
			last[it.ev.Tenant] = it.ev.Time
		}
	}
	check(buf, n)
	total := n
	h.q.close()
	for {
		n, _ := h.q.drainInto(buf)
		if n == 0 {
			break
		}
		check(buf, n)
		h.q.settled(buf, n)
		total += n
	}
	if total != 1015 {
		t.Errorf("drained %d events total, want 1015", total)
	}
	if got := h.pending.Load(); got != 0 {
		t.Errorf("pending = %d after full settle, want 0", got)
	}
}

// TestQueueRateLimit: a rate-limited tenant is throttled to its token
// balance, drainInto signals a rate-limited backlog with (0, true), and
// tokens refill as the domain clock advances (capped at burst).
func TestQueueRateLimit(t *testing.T) {
	h := newQueueHarness(runtime.Block)
	tq := h.tenant("rl", 100, 2) // 2 events/s, burst 2
	h.fill(t, tq, 10)

	buf := make([]item, 64)
	n, limited := h.q.drainInto(buf)
	if n != 2 || limited {
		t.Fatalf("first drain = (%d, %v), want (2, false): bucket starts full at burst", n, limited)
	}
	h.q.settled(buf, n)
	if h.rl.Value() == 0 {
		t.Error("ratelimited counter not bumped when the scheduler clipped the take")
	}

	// Clock frozen: the backlog is entirely rate-limited.
	n, limited = h.q.drainInto(buf)
	if n != 0 || !limited {
		t.Fatalf("frozen-clock drain = (%d, %v), want (0, true)", n, limited)
	}

	h.clock = 3 // 3 domain-seconds × 2/s = 6 tokens, capped at burst 2
	n, limited = h.q.drainInto(buf)
	if n != 2 || limited {
		t.Fatalf("post-refill drain = (%d, %v), want (2, false): refill capped at burst", n, limited)
	}
	h.q.settled(buf, n)

	// Shutdown overrides the bucket: the remaining 6 drain immediately even
	// though the clock never advances again.
	h.q.close()
	n, limited = h.q.drainInto(buf)
	if n != 6 || limited {
		t.Fatalf("post-close drain = (%d, %v), want (6, false): close bypasses rate limits", n, limited)
	}
	h.q.settled(buf, n)
	if tq.n != 0 {
		t.Errorf("backlog %d after shutdown drain, want 0", tq.n)
	}
	n, limited = h.q.drainInto(buf)
	if n != 0 || limited {
		t.Fatalf("empty closed drain = (%d, %v), want (0, false)", n, limited)
	}
}

// TestQueueRateLimitUnlimitedPeer: one tenant's empty token bucket must not
// block an unlimited peer on the same shard.
func TestQueueRateLimitUnlimitedPeer(t *testing.T) {
	h := newQueueHarness(runtime.Block)
	limited := h.tenant("lim", 100, 1)
	free := h.tenant("free", 100, 0)
	h.fill(t, limited, 8)
	h.fill(t, free, 8)

	buf := make([]item, 64)
	n, backoff := h.q.drainInto(buf)
	if backoff {
		t.Fatal("drain signalled backoff with an unlimited tenant backlogged")
	}
	counts := map[string]int{}
	for _, it := range buf[:n] {
		counts[it.ev.Tenant]++
	}
	if counts["free"] != 8 {
		t.Errorf("unlimited tenant drained %d, want all 8", counts["free"])
	}
	if counts["lim"] != 1 {
		t.Errorf("limited tenant drained %d, want 1 (burst floor)", counts["lim"])
	}
	h.q.settled(buf, n)
}

// TestMoveQueuePreservesBacklog: a handoff relocates the sub-queue object
// — every queued item, in order, with pending accounting intact.
func TestMoveQueuePreservesBacklog(t *testing.T) {
	h := newQueueHarness(runtime.Block)
	tq := h.tenant("mv", 100, 0)
	h.fill(t, tq, 9)

	dst := newShardQueue(runtime.Block, 1<<16, runtime.NewMetrics(), &runtime.Counter{}, nil,
		nil, &h.pending, func() float64 { return 0 }, 1)
	if got := moveQueue(tq, dst); got != 9 {
		t.Fatalf("moveQueue = %d, want 9", got)
	}
	if moveQueue(tq, dst) != 0 {
		t.Error("same-shard move should be a no-op")
	}
	if tq.owner.Load() != dst {
		t.Fatal("owner not re-homed")
	}
	// New pushes land on the destination.
	h.fill(t, tq, 1)
	buf := make([]item, 16)
	n, _ := dst.drainInto(buf)
	if n != 10 {
		t.Fatalf("destination drained %d, want 10", n)
	}
	for i, it := range buf[:9] {
		if it.ev.Time != float64(i) {
			t.Fatalf("item %d out of order after handoff: time %v", i, it.ev.Time)
		}
	}
	dst.settled(buf, n)
	if got := h.pending.Load(); got != 0 {
		t.Errorf("pending = %d after settle, want 0", got)
	}
	// The source no longer schedules the tenant.
	h.q.close()
	if n, _ := h.q.drainInto(buf); n != 0 {
		t.Errorf("source drained %d items after handoff, want 0", n)
	}
}

// TestQueueDeficitCap: an idle-then-bursty tenant cannot bank unbounded
// deficit — credit is clamped to quantum + chunk size, so one visit can
// never exceed a chunk.
func TestQueueDeficitCap(t *testing.T) {
	h := newQueueHarness(runtime.Block)
	tq := h.tenant("cap", 4000, 0)
	h.fill(t, tq, 3000)
	buf := make([]item, 32)
	for i := 0; i < 3; i++ {
		n, _ := h.q.drainInto(buf)
		if n == 0 {
			t.Fatal("unexpected empty drain")
		}
		h.q.settled(buf, n)
		if tq.deficit > drrQuantum+len(buf) {
			t.Fatalf("deficit %d exceeds cap %d", tq.deficit, drrQuantum+len(buf))
		}
	}
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	stdruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// ErrFleet is wrapped by all package errors.
var ErrFleet = errors.New("fleet: invalid operation")

// ErrUnknownTenant is returned by Ingest/RecordFailure for an unregistered
// tenant ID.
var ErrUnknownTenant = fmt.Errorf("%w: unknown tenant", ErrFleet)

// Event is one unit of fleet ingest: a tenant-labeled error-log event or
// monitoring-variable sample, the same two inputs as the single-runtime
// pipeline.
type Event struct {
	Tenant string
	Kind   runtime.EventKind
	// Time is the domain timestamp [s].
	Time float64
	// Error is set for KindError.
	Error eventlog.Event
	// Variable/Value are set for KindSample.
	Variable string
	Value    float64
}

// TenantState is a tenant's predictor-visible monitoring state (e.g. its
// mirrored error log and SAR series), owned by the fleet's locking: Apply
// runs under the shared side of the state lock on the tenant's shard,
// evaluation under the exclusive side.
type TenantState any

// TenantSpec registers one tenant.
type TenantSpec struct {
	// ID must be unique, non-empty, and free of '|', newline, and 0x1f
	// (the trace formats use them as separators).
	ID string
	// Criticality weights the tenant in the fleet availability rollup and
	// in the act-budget priority queue (the Noisy-OR paper's
	// service-criticality idea: losing a critical service hurts more).
	// Zero defaults to 1.
	Criticality float64
	// RateLimit caps the tenant's drain rate in events per domain second
	// (token bucket, burst of one second's credit). Over-rate backlog stays
	// queued in the tenant's own sub-queue until it overflows under the
	// fleet's policy, so a misbehaving tenant throttles and eventually
	// sheds only itself. 0 means unlimited.
	RateLimit float64
}

// Config parameterizes a fleet.
type Config struct {
	// Tenants is the initial fleet membership. The fleet is elastic:
	// AddTenant/RemoveTenant admit and retire tenants while it runs, and
	// Resize changes the shard count with a queue handoff (the
	// consistent-hash ring moves only ~1/Shards of tenants).
	Tenants []TenantSpec
	// Layers are the shared layer templates instantiated per tenant.
	Layers []LayerTemplate
	// NewState builds a tenant's monitoring state.
	NewState func(t TenantSpec) (TenantState, error)
	// Apply integrates one event into its tenant's state. Events of one
	// tenant apply serialized and in order; different tenants may apply
	// concurrently (on different shards). Apply never overlaps layer
	// scoring — same locking contract as runtime.Config.Apply.
	Apply func(st TenantState, ev Event) error
	// Engine is the per-tenant MEA configuration (EvalInterval here is
	// the domain-clock cadence recorded in decisions; the wall-clock
	// cycle cadence is EvalInterval below).
	Engine core.Config
	// NewCombiner optionally builds a per-tenant score combiner
	// (stacker). Nil uses the engine's voting default.
	NewCombiner func(t TenantSpec) core.Combiner
	// NewActions optionally supplies a tenant's countermeasure set. Nil
	// installs a no-op "observe" action — the fleet plane is then a pure
	// monitoring/prediction tier.
	NewActions func(t TenantSpec) (*act.Selector, []*act.Action, error)
	// NewLifecycle optionally builds a per-tenant drift/retrain manager
	// over the tenant's layers and scoped ledger. Only tenants with a
	// dedicated ledger scope get one (folded tenants share quality rows,
	// which would corrupt promotion decisions). Share one
	// lifecycle.Budget across tenants via the Config you capture here.
	NewLifecycle func(t TenantSpec, layers []*core.Layer, led *obs.Ledger) (*lifecycle.Manager, error)

	// Shards is the number of ingest shard queues/consumers (default
	// min(GOMAXPROCS, 8)); Resize changes it live. QueueCapacity bounds
	// each tenant's sub-queue (default 1024); Overflow is the full-queue
	// policy (default Block).
	Shards        int
	QueueCapacity int
	Overflow      runtime.OverflowPolicy
	// Vnodes is the consistent-hash ring's per-shard virtual node count
	// (default 64).
	Vnodes int
	// Workers sizes the shared evaluation pool (default GOMAXPROCS; 1
	// runs inline).
	Workers int
	// BatchSize is the cross-tenant amortization unit: shard consumers
	// drain up to BatchSize events per lock acquisition, and batch layer
	// scoring chunks tenants into BatchSize groups (default 64).
	BatchSize int
	// ActBudget caps how many tenants may execute a countermeasure per
	// evaluation cycle. When more warn decisions select an action than the
	// budget allows, a criticality-weighted priority queue (criticality ×
	// confidence, ties by tenant ID) decides which tenants act; the rest
	// are deferred — warned and journaled, but not executed — and counted
	// on pfm_fleet_act_deferred_total. 0 means unlimited.
	ActBudget int
	// EvalInterval is the wall-clock cycle cadence; zero disables the
	// ticker (cycles then run via EvaluateNow/EvaluateCycle only).
	EvalInterval time.Duration
	// Clock maps wall time to domain time (default: seconds since Start).
	Clock func() float64

	// Metrics receives fleet observability (nil allocates a fresh set);
	// Tracer samples end-to-end event spans (nil disables); Ledger keeps
	// per-tenant prediction quality under its cardinality cap (nil
	// disables journaling).
	Metrics *runtime.Metrics
	Tracer  *obs.Tracer
	Ledger  *obs.ScopedLedger
	// Recorder multiplexes per-tenant flight recorders under the same
	// cardinality cap/overflow-fold discipline as Ledger: each tenant's
	// act stage feeds its scope, warn-trigger thresholds are weighted by
	// tenant criticality (critical tenants capture bundles at lower
	// confidence), and bundles surface on /incidents and in /fleet rows.
	// Nil disables incident capture.
	Recorder *obs.ScopedRecorder
	// JournalLayers journals per-layer rows for every tenant with a
	// dedicated ledger scope (combined decisions are always journaled).
	// Tenants with a lifecycle manager journal per-layer regardless —
	// promotion decisions need the incumbent rows.
	JournalLayers bool

	// StaleAfter marks a tenant "stale" when no event arrived for this
	// many domain seconds (default 900). FailureHold keeps a tenant
	// "failed" for this many domain seconds after a recorded failure
	// (default max(LeadTime, 300)).
	StaleAfter  float64
	FailureHold float64
}

// tenant is one registered tenant's runtime slice.
type tenant struct {
	spec      TenantSpec
	index     int // slot in the current membership's tenants slice
	q         *tenantQueue
	state     TenantState
	layers    []*core.Layer
	engine    *core.Engine
	led       *obs.Ledger // scoped journal; nil without Config.Ledger
	dedicated bool
	journal   bool          // journal per-layer rows
	rec       *obs.Recorder // scoped flight recorder; nil without Config.Recorder
	recOwn    bool          // rec is dedicated (not the overflow fold)
	lcm       *lifecycle.Manager
	cands     []lifecycle.CandidateScore // this cycle's shadow scores
	row       []float64                  // per-cycle score row scratch

	// dec/pact are the cycle's decide-phase scratch: written by the decide
	// fan-out, resolved by the budget pass, consumed by the finish fan-out
	// — all under cycleMu.
	dec  core.Decision
	pact *core.PendingAct

	events      atomic.Int64
	warnings    atomic.Int64
	actions     atomic.Int64
	deferred    atomic.Int64 // act-budget deferrals
	failures    atomic.Int64
	lastEvent   atomic.Uint64 // Float64bits; NaN until the first event
	lastFailure atomic.Uint64 // Float64bits; NaN until the first failure
	lastWarned  atomic.Bool
	lastConf    atomic.Uint64 // Float64bits of the last combined confidence
}

// shardIndex returns the shard currently draining the tenant's sub-queue.
func (tn *tenant) shardIndex() int { return tn.q.owner.Load().shard }

func storeTime(a *atomic.Uint64, t float64) { a.Store(math.Float64bits(t)) }
func loadTime(a *atomic.Uint64) float64     { return math.Float64frombits(a.Load()) }

// membership is one immutable generation of the fleet's shape: who the
// tenants are, how they index into the score matrix, and which shard queues
// exist. Readers (Ingest, Rollup, the cycle) load it once and work against a
// consistent snapshot; Add/Remove/Resize install a successor atomically.
type membership struct {
	gen     int64
	tenants []*tenant // index-aligned with layerScores/states
	byID    map[string]*tenant
	ring    *ring
	shards  []*shardQueue
	// layerScores is the cross-tenant score matrix, laid out layer-major:
	// layerScores[l*len(tenants)+t]. Written by pool workers at disjoint
	// indices during evaluation, read during the act fan-out.
	layerScores []float64
	// states is the index-aligned state slice handed to batch scorers.
	states []TenantState
}

// reindex rebuilds the index-aligned views after a tenants change. Caller
// holds cycleMu (tenant.index is cycle-addressed).
func (m *membership) reindex(layers int) {
	m.layerScores = make([]float64, layers*len(m.tenants))
	m.states = make([]TenantState, len(m.tenants))
	for i, tn := range m.tenants {
		tn.index = i
		m.states[i] = tn.state
	}
}

// Fleet is the multi-tenant MEA runtime. Construct with New, drive with
// Start/Ingest (or Pump), change shape with AddTenant/RemoveTenant/Resize,
// observe via Handler, finish with Stop.
type Fleet struct {
	cfg     Config
	mem     atomic.Pointer[membership]
	pool    *runtime.Pool
	metrics *runtime.Metrics

	// adminMu serializes membership changes (AddTenant/RemoveTenant/
	// Resize) with each other and with Start/Stop.
	adminMu sync.Mutex
	retired []*tenant // removed tenants with lifecycle managers to drain at Stop

	// stateMu guards every tenant's state: shard consumers apply chunks
	// under the shared side, cycle evaluation under the exclusive side.
	stateMu sync.RWMutex

	// pendingN counts events admitted but not yet settled, fleet-wide —
	// handoffs move queued items between shards, so Barrier's accounting
	// lives above the shard level.
	pendingN atomic.Int64

	consumersWg sync.WaitGroup
	wg          sync.WaitGroup
	evalReq     chan struct{}
	evalStop    chan struct{}
	cycleMu     sync.Mutex // serializes cycles with each other and with membership swaps
	hardCtx     context.Context
	hardStop    context.CancelFunc

	unknown     *runtime.Counter // ingest for unregistered tenants
	ratelimited *runtime.Counter // scheduler skips on empty token buckets
	handoffN    *runtime.Counter // queued events re-homed by membership changes
	actExecuted *runtime.Counter
	actDeferred *runtime.Counter
	shardDrops  []*runtime.Counter // per shard index, reused across resizes
	shardMetN   int                // shard indices with registered gauges

	actCands []*tenant // budget-pass scratch, under cycleMu

	started   atomic.Bool
	stopping  atomic.Bool
	stopped   atomic.Bool
	stopOnce  sync.Once
	stopErr   error
	startWall time.Time
	cycles    atomic.Int64
	lastCycle atomic.Int64 // unix nanos of the last completed cycle
}

// New validates the configuration and assembles the fleet (not yet
// running; call Start).
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: no tenants", ErrFleet)
	}
	if len(cfg.Layers) == 0 {
		return nil, fmt.Errorf("%w: no layer templates", ErrFleet)
	}
	if cfg.NewState == nil || cfg.Apply == nil {
		return nil, fmt.Errorf("%w: nil NewState/Apply", ErrFleet)
	}
	if cfg.QueueCapacity < 0 || cfg.Shards < 0 || cfg.Workers < 0 || cfg.BatchSize < 0 || cfg.EvalInterval < 0 || cfg.ActBudget < 0 {
		return nil, fmt.Errorf("%w: negative sizing", ErrFleet)
	}
	if cfg.Shards == 0 {
		cfg.Shards = stdruntime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.Workers == 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 900
	}
	if cfg.FailureHold == 0 {
		cfg.FailureHold = cfg.Engine.LeadTime
		if cfg.FailureHold < 300 {
			cfg.FailureHold = 300
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = runtime.NewMetrics()
	}
	for i, tmpl := range cfg.Layers {
		if tmpl.Name == "" || (tmpl.Score == nil && tmpl.ScoreBatch == nil) {
			return nil, fmt.Errorf("%w: layer template %d needs a name and a scorer", ErrFleet, i)
		}
	}
	f := &Fleet{
		cfg:     cfg,
		metrics: cfg.Metrics,
		evalReq: make(chan struct{}, 1),
	}
	reg := f.metrics.Registry()
	f.unknown = reg.Counter("pfm_fleet_unknown_tenant_total",
		"Events rejected because their tenant is not registered.")
	f.ratelimited = reg.Counter("pfm_fleet_ratelimited_total",
		"Drain-scheduler visits that skipped a backlogged tenant because its token bucket was empty.")
	f.handoffN = reg.Counter("pfm_fleet_handoff_total",
		"Queued events re-homed onto another shard by membership changes.")
	f.actExecuted = reg.Counter("pfm_fleet_act_executed_total",
		"Countermeasures executed across the fleet.")
	f.actDeferred = reg.Counter("pfm_fleet_act_deferred_total",
		"Warn decisions whose countermeasure was deferred by the act budget.")
	mem := &membership{
		gen:    1,
		byID:   make(map[string]*tenant, len(cfg.Tenants)),
		ring:   newRing(cfg.Shards, cfg.Vnodes),
		shards: make([]*shardQueue, cfg.Shards),
	}
	for s := range mem.shards {
		mem.shards[s] = f.newShardQueueAt(s)
	}
	for i, spec := range cfg.Tenants {
		tn, err := f.buildTenant(mem.byID, i, spec)
		if err != nil {
			return nil, err
		}
		tn.q = newTenantQueue(tn, cfg.QueueCapacity, tn.spec.RateLimit)
		mem.shards[mem.ring.shardOf(tn.spec.ID)].attach(tn.q)
		mem.tenants = append(mem.tenants, tn)
		mem.byID[tn.spec.ID] = tn
	}
	mem.reindex(len(cfg.Layers))
	f.mem.Store(mem)
	// Gauges register after the first membership store: their closures read
	// the current generation.
	reg.GaugeFunc("pfm_fleet_tenants", "Registered tenants.",
		func() float64 { return float64(len(f.mem.Load().tenants)) })
	reg.GaugeFunc("pfm_fleet_generation", "Membership generation (bumped by add/remove/resize).",
		func() float64 { return float64(f.mem.Load().gen) })
	reg.GaugeFunc("pfm_fleet_act_budget", "Per-cycle countermeasure budget (0 = unlimited).",
		func() float64 { return float64(cfg.ActBudget) })
	reg.GaugeFunc("pfm_fleet_weighted_availability",
		"Criticality-weighted fraction of tenants not currently failed.",
		func() float64 { return f.Rollup(f.now()).WeightedAvailability })
	f.registerShardGauges(cfg.Shards)
	if cfg.Ledger != nil {
		reg.GaugeFunc("pfm_fleet_ledger_folded",
			"Tenants sharing the overflow ledger scope (cardinality cap).",
			func() float64 { return float64(cfg.Ledger.Folded()) })
	}
	if cfg.Recorder != nil {
		rec := cfg.Recorder
		help := "Incident bundles captured across the fleet by trigger kind."
		for _, k := range obs.TriggerKinds {
			kind := k
			reg.CounterFunc("pfm_fleet_incidents_total", help,
				func() float64 { return float64(rec.Captured(kind)) },
				"trigger", string(kind))
			help = ""
		}
		reg.CounterFunc("pfm_fleet_incidents_suppressed_total",
			"Incident triggers suppressed by per-scope refractory windows.",
			func() float64 { return float64(rec.Suppressed()) })
		reg.GaugeFunc("pfm_fleet_recorder_folded",
			"Tenants sharing the overflow flight recorder (cardinality cap).",
			func() float64 { return float64(rec.Folded()) })
	}
	return f, nil
}

// newShardQueueAt builds the queue for shard index s, reusing the shard's
// drop counter when the index existed in an earlier generation.
func (f *Fleet) newShardQueueAt(s int) *shardQueue {
	reg := f.metrics.Registry()
	for len(f.shardDrops) <= s {
		help := ""
		if len(f.shardDrops) == 0 {
			help = "Events dropped per fleet ingest shard (all reasons)."
		}
		f.shardDrops = append(f.shardDrops,
			reg.Counter("pfm_fleet_shard_dropped_total", help, "shard", strconv.Itoa(len(f.shardDrops))))
	}
	return newShardQueue(f.cfg.Overflow, f.cfg.QueueCapacity, f.metrics, f.shardDrops[s], f.ratelimited,
		f.cfg.Tracer, &f.pendingN, f.now, s)
}

// registerShardGauges registers depth gauges for shard indices [shardMetN,
// n). A gauge reads the live generation, so it reports 0 for an index the
// fleet has since shrunk away from.
func (f *Fleet) registerShardGauges(n int) {
	reg := f.metrics.Registry()
	help := ""
	if f.shardMetN == 0 {
		help = "Events waiting per fleet ingest shard."
	}
	for s := f.shardMetN; s < n; s++ {
		idx := s
		reg.GaugeFunc("pfm_fleet_shard_queue_depth", help, func() float64 {
			mem := f.mem.Load()
			if idx < len(mem.shards) {
				return float64(mem.shards[idx].depth())
			}
			return 0
		}, "shard", strconv.Itoa(s))
		help = ""
	}
	if n > f.shardMetN {
		f.shardMetN = n
	}
}

// buildTenant assembles one tenant's state, layers, engine, journal scope,
// and (optionally) lifecycle manager. byID is the membership the tenant is
// validated against.
func (f *Fleet) buildTenant(byID map[string]*tenant, i int, spec TenantSpec) (*tenant, error) {
	if spec.ID == "" || strings.ContainsAny(spec.ID, "|\n\x1f") {
		return nil, fmt.Errorf("%w: tenant %d has invalid ID %q", ErrFleet, i, spec.ID)
	}
	if _, dup := byID[spec.ID]; dup {
		return nil, fmt.Errorf("%w: duplicate tenant %q", ErrFleet, spec.ID)
	}
	if spec.Criticality < 0 || math.IsNaN(spec.Criticality) || math.IsInf(spec.Criticality, 0) {
		return nil, fmt.Errorf("%w: tenant %q criticality %g", ErrFleet, spec.ID, spec.Criticality)
	}
	if spec.RateLimit < 0 || math.IsNaN(spec.RateLimit) || math.IsInf(spec.RateLimit, 0) {
		return nil, fmt.Errorf("%w: tenant %q rate limit %g", ErrFleet, spec.ID, spec.RateLimit)
	}
	if spec.Criticality == 0 {
		spec.Criticality = 1
	}
	st, err := f.cfg.NewState(spec)
	if err != nil {
		return nil, fmt.Errorf("tenant %q state: %w", spec.ID, err)
	}
	tn := &tenant{
		spec:  spec,
		index: i,
		state: st,
		row:   make([]float64, len(f.cfg.Layers)),
	}
	storeTime(&tn.lastEvent, math.NaN())
	storeTime(&tn.lastFailure, math.NaN())
	tn.layers = make([]*core.Layer, len(f.cfg.Layers))
	for li, tmpl := range f.cfg.Layers {
		tn.layers[li] = tmpl.instantiate(st)
	}
	var combiner core.Combiner
	if f.cfg.NewCombiner != nil {
		combiner = f.cfg.NewCombiner(spec)
	}
	selector, actions, err := f.tenantActions(spec)
	if err != nil {
		return nil, fmt.Errorf("tenant %q actions: %w", spec.ID, err)
	}
	tn.engine, err = core.New(nil, tn.layers, combiner, selector, actions, nil, f.cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("tenant %q engine: %w", spec.ID, err)
	}
	if f.cfg.Ledger != nil {
		tn.led = f.cfg.Ledger.Scope(spec.ID)
		tn.dedicated = f.cfg.Ledger.Dedicated(spec.ID)
		tn.journal = f.cfg.JournalLayers && tn.dedicated
		if f.cfg.NewLifecycle != nil && tn.dedicated {
			tn.lcm, err = f.cfg.NewLifecycle(spec, tn.layers, tn.led)
			if err != nil {
				return nil, fmt.Errorf("tenant %q lifecycle: %w", spec.ID, err)
			}
			if tn.lcm != nil {
				tn.journal = true
			}
		}
	}
	if f.cfg.Recorder != nil {
		tn.rec = f.cfg.Recorder.Scope(spec.ID, obs.RecorderScopeConfig{
			WarnThreshold: criticalityWarnThreshold(f.cfg.Recorder.Config().WarnThreshold, spec.Criticality),
			Ledger:        tn.led,
			Lifecycle: func() any {
				if tn.lcm == nil {
					return nil
				}
				return tn.lcm.States()
			},
		})
		tn.recOwn = f.cfg.Recorder.Dedicated(spec.ID)
		if tn.lcm != nil {
			rec := tn.rec
			tn.lcm.Subscribe(func(e lifecycle.Event) {
				switch e.Type {
				case lifecycle.EventDrift:
					rec.TriggerEvent(obs.TriggerDrift, e.Time, e.Layer)
				case lifecycle.EventRolledBack:
					rec.TriggerEvent(obs.TriggerRollback, e.Time, e.Layer)
				}
			})
		}
	}
	return tn, nil
}

// criticalityWarnThreshold weights the template warn-trigger gate by tenant
// criticality: a criticality-2 tenant escalates warnings into incident
// bundles at half the confidence a baseline tenant needs, clamped so the
// gate stays inside the confidence range. base 0 (template warn trigger
// fires on every warning) is preserved.
func criticalityWarnThreshold(base, criticality float64) float64 {
	if base <= 0 {
		return 0
	}
	eff := base / criticality
	if eff < 0.05 {
		eff = 0.05
	}
	if eff > 1 {
		eff = 1
	}
	return eff
}

// tenantActions resolves a tenant's countermeasure set (default: one no-op
// observe action, making the fleet a pure prediction plane).
func (f *Fleet) tenantActions(spec TenantSpec) (*act.Selector, []*act.Action, error) {
	if f.cfg.NewActions != nil {
		return f.cfg.NewActions(spec)
	}
	sel, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		return nil, nil, err
	}
	observe, err := act.New("observe", act.StateCleanup,
		act.Params{SuccessProb: 1}, func() error { return nil })
	if err != nil {
		return nil, nil, err
	}
	return sel, []*act.Action{observe}, nil
}

// now returns the fleet's domain time (0 before Start installs the clock).
func (f *Fleet) now() float64 {
	if f.cfg.Clock == nil {
		return 0
	}
	return f.cfg.Clock()
}

// Metrics returns the fleet's metric set.
func (f *Fleet) Metrics() *runtime.Metrics { return f.metrics }

// Ledger returns the scoped prediction ledger (nil when disabled).
func (f *Fleet) Ledger() *obs.ScopedLedger { return f.cfg.Ledger }

// Recorder returns the scoped flight recorder (nil when disabled).
func (f *Fleet) Recorder() *obs.ScopedRecorder { return f.cfg.Recorder }

// Tenants returns the number of registered tenants.
func (f *Fleet) Tenants() int { return len(f.mem.Load().tenants) }

// Shards returns the number of ingest shards.
func (f *Fleet) Shards() int { return len(f.mem.Load().shards) }

// Generation returns the membership generation (starts at 1; every
// AddTenant/RemoveTenant/Resize bumps it).
func (f *Fleet) Generation() int64 { return f.mem.Load().gen }

// ShardOf returns the shard the tenant's events are routed to, and whether
// the tenant is registered.
func (f *Fleet) ShardOf(tenantID string) (int, bool) {
	tn, ok := f.mem.Load().byID[tenantID]
	if !ok {
		return 0, false
	}
	return tn.shardIndex(), true
}

// QueueDepth returns the ingest backlog summed across shards.
func (f *Fleet) QueueDepth() int {
	total := 0
	for _, q := range f.mem.Load().shards {
		total += q.depth()
	}
	return total
}

// Cycles returns the number of completed evaluation cycles.
func (f *Fleet) Cycles() int64 { return f.cycles.Load() }

// Start launches the shard consumers and the cycle loop. ctx cancellation
// hard-stops the fleet; use Stop for graceful shutdown.
func (f *Fleet) Start(ctx context.Context) error {
	if !f.started.CompareAndSwap(false, true) {
		return fmt.Errorf("%w: already started", ErrFleet)
	}
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	f.startWall = time.Now()
	if f.cfg.Clock == nil {
		start := f.startWall
		f.cfg.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	f.hardCtx, f.hardStop = context.WithCancel(ctx)
	f.evalStop = make(chan struct{})
	if f.cfg.Workers > 1 {
		f.pool = runtime.NewPool(f.cfg.Workers)
	}
	mem := f.mem.Load()
	f.wg.Add(len(mem.shards) + 2)
	f.consumersWg.Add(len(mem.shards))
	for s := range mem.shards {
		go f.consumeLoop(mem.shards[s])
	}
	go func() {
		defer f.wg.Done()
		f.consumersWg.Wait()
		close(f.evalStop)
	}()
	go f.evaluateLoop()
	go func() {
		<-f.hardCtx.Done()
		f.stopping.Store(true)
		f.adminMu.Lock()
		for _, q := range f.mem.Load().shards {
			q.close()
		}
		f.adminMu.Unlock()
	}()
	return nil
}

// AddTenant admits a tenant into the (possibly running) fleet: its state,
// layers, engine and observability scopes are built, its sub-queue attaches
// to the shard the current ring generation assigns, and the next membership
// generation installs atomically — Ingest accepts its events as soon as
// AddTenant returns.
func (f *Fleet) AddTenant(spec TenantSpec) error {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	if f.stopping.Load() {
		return fmt.Errorf("%w: fleet is stopping", ErrFleet)
	}
	mem := f.mem.Load()
	tn, err := f.buildTenant(mem.byID, len(mem.tenants), spec)
	if err != nil {
		return err
	}
	tn.q = newTenantQueue(tn, f.cfg.QueueCapacity, tn.spec.RateLimit)
	mem.shards[mem.ring.shardOf(tn.spec.ID)].attach(tn.q)
	next := &membership{
		gen:     mem.gen + 1,
		tenants: append(append(make([]*tenant, 0, len(mem.tenants)+1), mem.tenants...), tn),
		byID:    make(map[string]*tenant, len(mem.byID)+1),
		ring:    mem.ring,
		shards:  mem.shards,
	}
	for id, t := range mem.byID {
		next.byID[id] = t
	}
	next.byID[tn.spec.ID] = tn
	f.cycleMu.Lock()
	next.reindex(len(f.cfg.Layers))
	f.mem.Store(next)
	f.cycleMu.Unlock()
	return nil
}

// RemoveTenant retires a tenant: the next membership generation (without
// it) installs atomically, its queued backlog is shed (counted dropped),
// and its ledger/recorder scopes are released so /metrics and /fleet stop
// reporting the ghost. Events already drained into an in-flight chunk still
// apply; later Ingest calls return ErrUnknownTenant.
func (f *Fleet) RemoveTenant(id string) error {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	mem := f.mem.Load()
	tn, ok := mem.byID[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	next := &membership{
		gen:     mem.gen + 1,
		tenants: make([]*tenant, 0, len(mem.tenants)-1),
		byID:    make(map[string]*tenant, len(mem.byID)-1),
		ring:    mem.ring,
		shards:  mem.shards,
	}
	for _, t := range mem.tenants {
		if t != tn {
			next.tenants = append(next.tenants, t)
		}
	}
	for tid, t := range mem.byID {
		if tid != id {
			next.byID[tid] = t
		}
	}
	f.cycleMu.Lock()
	next.reindex(len(f.cfg.Layers))
	f.mem.Store(next)
	f.cycleMu.Unlock()
	tn.q.closeAndDrain()
	f.cfg.Ledger.Release(id)
	f.cfg.Recorder.Release(id)
	if tn.lcm != nil {
		f.retired = append(f.retired, tn)
	}
	return nil
}

// Resize changes the shard count live. A new ring generation installs
// atomically; the handoff pass then re-homes only the tenants whose shard
// assignment moved (~1/shards of the fleet on a grow-by-one), carrying
// their queued backlog with them without copying or reordering — per-tenant
// FIFO order is preserved across the move. Shrunk-away shards close once
// their members are gone; their consumers exit after draining.
func (f *Fleet) Resize(shards int) error {
	if shards < 1 {
		return fmt.Errorf("%w: shards %d", ErrFleet, shards)
	}
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	if f.stopping.Load() {
		return fmt.Errorf("%w: fleet is stopping", ErrFleet)
	}
	mem := f.mem.Load()
	if shards == len(mem.shards) {
		return nil
	}
	newShards := make([]*shardQueue, shards)
	n := copy(newShards, mem.shards)
	for s := n; s < shards; s++ {
		newShards[s] = f.newShardQueueAt(s)
		if f.started.Load() {
			f.wg.Add(1)
			f.consumersWg.Add(1)
			go f.consumeLoop(newShards[s])
		}
	}
	f.registerShardGauges(shards)
	next := &membership{
		gen:         mem.gen + 1,
		tenants:     mem.tenants,
		byID:        mem.byID,
		ring:        newRing(shards, f.cfg.Vnodes),
		shards:      newShards,
		layerScores: mem.layerScores,
		states:      mem.states,
	}
	f.mem.Store(next)
	moved := 0
	for _, tn := range next.tenants {
		moved += moveQueue(tn.q, newShards[next.ring.shardOf(tn.spec.ID)])
	}
	f.handoffN.Add(int64(moved))
	for s := shards; s < len(mem.shards); s++ {
		mem.shards[s].close()
	}
	return nil
}

// Ingest offers one tenant event under the configured overflow policy.
func (f *Fleet) Ingest(ctx context.Context, ev Event) error {
	tn, ok := f.mem.Load().byID[ev.Tenant]
	if !ok {
		f.unknown.Inc()
		return fmt.Errorf("%w: %q", ErrUnknownTenant, ev.Tenant)
	}
	it := item{ev: ev, tn: tn}
	if f.cfg.Tracer.Sample() {
		it.traceSampled = true
		// The offer follows within nanoseconds; one stamp covers both.
		now := f.cfg.Tracer.Now()
		it.traceStart = now
		it.traceOffered = now
	}
	err := tn.q.push(ctx, it)
	if errors.Is(err, errTenantRemoved) {
		f.unknown.Inc()
		return fmt.Errorf("%w: %q", ErrUnknownTenant, ev.Tenant)
	}
	return err
}

// RecordFailure journals one observed ground-truth failure of a tenant at
// domain time t (ledger input and health signal, not monitoring input).
func (f *Fleet) RecordFailure(tenantID string, t float64) error {
	tn, ok := f.mem.Load().byID[tenantID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenantID)
	}
	tn.failures.Add(1)
	for {
		old := tn.lastFailure.Load()
		prev := math.Float64frombits(old)
		if !math.IsNaN(prev) && prev >= t {
			break
		}
		if tn.lastFailure.CompareAndSwap(old, math.Float64bits(t)) {
			break
		}
	}
	tn.led.RecordFailure(t)
	return nil
}

// consumeLoop drains one shard in chunks: each chunk applies under a
// single shared-lock acquisition, amortizing synchronization across up to
// BatchSize events — the fleet's per-event overhead win.
func (f *Fleet) consumeLoop(q *shardQueue) {
	defer f.wg.Done()
	defer f.consumersWg.Done()
	tr := f.cfg.Tracer
	buf := make([]item, f.cfg.BatchSize)
	for {
		n, backoff := q.drainInto(buf)
		if n == 0 {
			if backoff {
				// Backlog exists but every active tenant is over its rate
				// limit: yield until buckets refill.
				time.Sleep(500 * time.Microsecond)
				continue
			}
			return
		}
		if f.hardCtx.Err() != nil {
			// Hard stop: shed the chunk unapplied so shutdown is prompt.
			for i := 0; i < n; i++ {
				f.metrics.DroppedShutdown.Inc()
				q.dropCount()
				q.traceDrop(buf[i])
			}
			q.settled(buf, n)
			continue
		}
		var dequeued int64
		if tr != nil {
			dequeued = tr.Now()
		}
		start := time.Now()
		f.stateMu.RLock()
		for i := 0; i < n; i++ {
			it := buf[i]
			if err := f.cfg.Apply(it.tn.state, it.ev); err != nil {
				f.metrics.ApplyErrors.Inc()
			}
			it.tn.events.Add(1)
			storeTime(&it.tn.lastEvent, it.ev.Time)
		}
		f.stateMu.RUnlock()
		f.metrics.Applied.Add(int64(n))
		// One latency observation per chunk: the amortized unit of work.
		f.metrics.ApplyLatency.Observe(time.Since(start).Seconds())
		for i := 0; i < n; i++ {
			if buf[i].traceSampled {
				tr.PublishApplied(uint8(buf[i].ev.Kind), buf[i].ev.Tenant, q.shard,
					buf[i].traceStart, buf[i].traceOffered, dequeued, tr.Now())
			}
		}
		q.settled(buf, n)
	}
}

// EvaluateNow requests an asynchronous cycle (coalesces if one is pending).
func (f *Fleet) EvaluateNow() {
	select {
	case f.evalReq <- struct{}{}:
	default:
	}
}

// evaluateLoop runs cycles on the ticker and on demand, plus one final
// cycle after ingest drains on shutdown.
func (f *Fleet) evaluateLoop() {
	defer f.wg.Done()
	var tick <-chan time.Time
	if f.cfg.EvalInterval > 0 {
		t := time.NewTicker(f.cfg.EvalInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-f.hardCtx.Done():
			return
		case <-f.evalStop:
			f.EvaluateCycle()
			return
		case <-tick:
		case <-f.evalReq:
		}
		f.EvaluateCycle()
	}
}

// EvaluateCycle runs one full synchronous MEA cycle over every tenant in
// the current membership generation: batched cross-tenant layer scoring and
// lifecycle collection under the exclusive state lock, then the act stage
// and the ledger watermark advance. Concurrent calls (ticker vs. caller)
// serialize; membership swaps serialize against the whole cycle.
//
// The act stage is two-phase when an ActBudget is set: a decide fan-out
// computes every tenant's cross-layer decision with the countermeasure
// deferred, a serial budget pass commits the top-budget pending acts in
// criticality×confidence order (ties by tenant ID — deterministic) and
// drops the rest, and a finish fan-out journals and accounts the final
// decisions. Without a budget, decide/commit/finish fuse into the single
// per-tenant fan-out the fixed-shape fleet ran.
//
// Determinism: scoring writes disjoint matrix slots, the act fan-out
// touches disjoint tenant state, the budget pass orders on a deterministic
// key, and journaling goes to per-tenant scoped ledgers — so for a fixed
// ingested prefix (see Barrier) the cycle's observable outcome is
// independent of Shards, Workers, BatchSize, and GOMAXPROCS.
func (f *Fleet) EvaluateCycle() {
	f.cycleMu.Lock()
	defer f.cycleMu.Unlock()
	mem := f.mem.Load()
	tr := f.cfg.Tracer
	evalStart := tr.Now()
	now := f.now()
	nT := len(mem.tenants)
	start := time.Now()
	f.stateMu.Lock()
	for li := range f.cfg.Layers {
		f.scoreLayer(mem, li, now)
	}
	// Lifecycle capture/shadow scoring needs the same exclusion the layer
	// scores just used (it reads predictor state).
	f.pool.Do(nT, func(i int) {
		tn := mem.tenants[i]
		if tn.lcm != nil {
			tn.cands = tn.lcm.Collect(now)
		}
	})
	// Bundle assembly reads tenant event logs, so it shares the same
	// exclusion: triggers raised by the previous cycle's act fan-out are
	// assembled here (or by Stop's flush after the final cycle).
	f.cfg.Recorder.Collect()
	f.stateMu.Unlock()
	f.metrics.EvalLatency.Observe(time.Since(start).Seconds())
	evalEnd := tr.Now()

	actWall := time.Now()
	actStart := tr.Now()
	if f.cfg.ActBudget > 0 {
		f.pool.Do(nT, func(i int) {
			f.decideTenant(mem, mem.tenants[i], now)
		})
		f.resolveBudget(mem)
		f.pool.Do(nT, func(i int) {
			f.finishTenant(mem.tenants[i], now)
		})
	} else {
		f.pool.Do(nT, func(i int) {
			tn := mem.tenants[i]
			f.decideTenant(mem, tn, now)
			if tn.pact != nil {
				tn.pact.Commit(&tn.dec)
				tn.pact = nil
			}
			f.finishTenant(tn, now)
		})
	}
	f.cfg.Ledger.Advance(now)
	f.metrics.Evaluations.Inc()
	f.metrics.ActLatency.Observe(time.Since(actWall).Seconds())
	tr.CompleteCycle(evalStart, evalEnd, actStart, tr.Now())
	f.cycles.Add(1)
	f.lastCycle.Store(time.Now().UnixNano())
}

// scoreLayer fills layer li's row of the score matrix across all tenants:
// batch scorers run once per BatchSize chunk of tenants, per-tenant
// scorers once per tenant — both fanned across the shared pool with
// index-addressed writes.
func (f *Fleet) scoreLayer(mem *membership, li int, now float64) {
	tmpl := f.cfg.Layers[li]
	nT := len(mem.tenants)
	out := mem.layerScores[li*nT : (li+1)*nT]
	if tmpl.ScoreBatch != nil {
		b := f.cfg.BatchSize
		chunks := (nT + b - 1) / b
		f.pool.Do(chunks, func(c int) {
			lo := c * b
			hi := lo + b
			if hi > nT {
				hi = nT
			}
			if err := tmpl.ScoreBatch(mem.states[lo:hi], now, out[lo:hi]); err != nil {
				for i := lo; i < hi; i++ {
					out[i] = math.NaN() // whole chunk abstains
				}
			}
		})
		return
	}
	f.pool.Do(nT, func(i int) {
		s, err := tmpl.Score(mem.states[i], now)
		if err != nil {
			s = math.NaN()
		}
		out[i] = s
	})
}

// decideTenant runs one tenant's cross-layer decision with the
// countermeasure deferred into tn.pact.
func (f *Fleet) decideTenant(mem *membership, tn *tenant, now float64) {
	nT := len(mem.tenants)
	for li := range f.cfg.Layers {
		tn.row[li] = mem.layerScores[li*nT+tn.index]
	}
	tn.dec, tn.pact = tn.engine.DecideOn(now, tn.row)
}

// resolveBudget commits the cycle's pending countermeasures in
// criticality×confidence priority order up to ActBudget and drops the rest
// (deferred: warned and journaled, not executed). Runs serially under
// cycleMu; the ordering key is deterministic, so so is the commit set.
func (f *Fleet) resolveBudget(mem *membership) {
	cands := f.actCands[:0]
	for _, tn := range mem.tenants {
		if tn.pact != nil {
			cands = append(cands, tn)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		pa := cands[a].spec.Criticality * cands[a].dec.Confidence
		pb := cands[b].spec.Criticality * cands[b].dec.Confidence
		if pa != pb {
			return pa > pb
		}
		return cands[a].spec.ID < cands[b].spec.ID
	})
	for i, tn := range cands {
		if i < f.cfg.ActBudget {
			tn.pact.Commit(&tn.dec)
		} else {
			tn.pact.Drop(&tn.dec)
			tn.deferred.Add(1)
			f.actDeferred.Inc()
		}
		tn.pact = nil
	}
	f.actCands = cands[:0] // keep the scratch capacity across cycles
}

// finishTenant accounts and journals one tenant's resolved decision.
func (f *Fleet) finishTenant(tn *tenant, now float64) {
	d := tn.dec
	if d.Warned {
		tn.warnings.Add(1)
		f.metrics.Warnings.Inc()
	}
	if d.Executed {
		tn.actions.Add(1)
		f.metrics.Actions.Inc()
		f.actExecuted.Inc()
	}
	if d.Suppressed {
		f.metrics.Suppressed.Inc()
	}
	tn.lastWarned.Store(d.Warned)
	tn.lastConf.Store(math.Float64bits(d.Confidence))
	if tn.led != nil {
		if tn.journal {
			for li, l := range tn.layers {
				if !math.IsNaN(tn.row[li]) {
					tn.led.RecordPrediction(l.Name, now, tn.row[li] >= l.Threshold, tn.row[li])
				}
			}
			for _, c := range tn.cands {
				if c.Err == nil {
					tn.led.RecordPrediction(c.Name, now, c.Score >= c.Threshold, c.Score)
				}
			}
		}
		tn.led.RecordPrediction(obs.CombinedLayer, now, d.Warned, d.Confidence)
	}
	if tn.lcm != nil {
		// Runs before the recorder sees the cycle so drift/rollback
		// triggers land ahead of this cycle's decision triggers.
		tn.lcm.ObserveCycle(now, tn.row)
	}
	if tn.rec != nil {
		tn.rec.Observe(now, tn.row, obs.CycleObservation{
			Warned:        d.Warned,
			Executed:      d.Executed,
			Confidence:    d.Confidence,
			Action:        d.ActionName,
			LayerVersions: d.LayerVersions,
			Detail:        tn.spec.ID,
		})
	}
	tn.cands = nil
	tn.dec = core.Decision{}
}

// Barrier blocks until every event admitted before the call has been fully
// processed (applied or shed) — the quiescence point deterministic replay
// evaluates at. The caller must pause ingest for the guarantee to be
// meaningful.
func (f *Fleet) Barrier(ctx context.Context) error {
	for {
		if f.pendingN.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// Stop shuts the fleet down gracefully: reject new ingest, drain every
// shard through Apply, run one final cycle, then release the pool. If ctx
// expires first the fleet is hard-stopped and ctx's error returned.
func (f *Fleet) Stop(ctx context.Context) error {
	if !f.started.Load() {
		return fmt.Errorf("%w: not started", ErrFleet)
	}
	f.stopOnce.Do(func() {
		f.adminMu.Lock()
		f.stopping.Store(true)
		for _, q := range f.mem.Load().shards {
			q.close()
		}
		f.adminMu.Unlock()
		done := make(chan struct{})
		go func() {
			f.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			f.hardStop()
			<-done
			f.stopErr = ctx.Err()
		}
		f.hardStop()
		if f.pool != nil {
			f.pool.Close()
		}
		f.adminMu.Lock()
		waitFor := append([]*tenant(nil), f.mem.Load().tenants...)
		waitFor = append(waitFor, f.retired...)
		f.adminMu.Unlock()
		for _, tn := range waitFor {
			if tn.lcm != nil {
				tn.lcm.Wait()
			}
		}
		// Pipeline is quiet: capture any triggers the final cycle raised
		// and deliver the tail to subscribers.
		f.cfg.Recorder.Flush()
		f.stopped.Store(true)
	})
	return f.stopErr
}

// Running reports whether the fleet is started and not yet stopping.
func (f *Fleet) Running() bool { return f.started.Load() && !f.stopping.Load() }

// Uptime returns the wall-clock time since Start.
func (f *Fleet) Uptime() time.Duration {
	if !f.started.Load() {
		return 0
	}
	return time.Since(f.startWall)
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	stdruntime "runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// ErrFleet is wrapped by all package errors.
var ErrFleet = errors.New("fleet: invalid operation")

// ErrUnknownTenant is returned by Ingest/RecordFailure for an unregistered
// tenant ID.
var ErrUnknownTenant = fmt.Errorf("%w: unknown tenant", ErrFleet)

// Event is one unit of fleet ingest: a tenant-labeled error-log event or
// monitoring-variable sample, the same two inputs as the single-runtime
// pipeline.
type Event struct {
	Tenant string
	Kind   runtime.EventKind
	// Time is the domain timestamp [s].
	Time float64
	// Error is set for KindError.
	Error eventlog.Event
	// Variable/Value are set for KindSample.
	Variable string
	Value    float64
}

// TenantState is a tenant's predictor-visible monitoring state (e.g. its
// mirrored error log and SAR series), owned by the fleet's locking: Apply
// runs under the shared side of the state lock on the tenant's shard,
// evaluation under the exclusive side.
type TenantState any

// TenantSpec registers one tenant.
type TenantSpec struct {
	// ID must be unique, non-empty, and free of '|', newline, and 0x1f
	// (the trace formats use them as separators).
	ID string
	// Criticality weights the tenant in the fleet availability rollup
	// (the Noisy-OR paper's service-criticality idea: losing a critical
	// service hurts more). Zero defaults to 1.
	Criticality float64
}

// Config parameterizes a fleet.
type Config struct {
	// Tenants is the fleet membership, fixed at construction. The
	// consistent-hash ring makes later membership changes cheap to add
	// (only ~1/Shards of tenants move per shard-count change), but this
	// implementation keeps registration static for determinism.
	Tenants []TenantSpec
	// Layers are the shared layer templates instantiated per tenant.
	Layers []LayerTemplate
	// NewState builds a tenant's monitoring state.
	NewState func(t TenantSpec) (TenantState, error)
	// Apply integrates one event into its tenant's state. Events of one
	// tenant apply serialized and in order; different tenants may apply
	// concurrently (on different shards). Apply never overlaps layer
	// scoring — same locking contract as runtime.Config.Apply.
	Apply func(st TenantState, ev Event) error
	// Engine is the per-tenant MEA configuration (EvalInterval here is
	// the domain-clock cadence recorded in decisions; the wall-clock
	// cycle cadence is EvalInterval below).
	Engine core.Config
	// NewCombiner optionally builds a per-tenant score combiner
	// (stacker). Nil uses the engine's voting default.
	NewCombiner func(t TenantSpec) core.Combiner
	// NewActions optionally supplies a tenant's countermeasure set. Nil
	// installs a no-op "observe" action — the fleet plane is then a pure
	// monitoring/prediction tier.
	NewActions func(t TenantSpec) (*act.Selector, []*act.Action, error)
	// NewLifecycle optionally builds a per-tenant drift/retrain manager
	// over the tenant's layers and scoped ledger. Only tenants with a
	// dedicated ledger scope get one (folded tenants share quality rows,
	// which would corrupt promotion decisions). Share one
	// lifecycle.Budget across tenants via the Config you capture here.
	NewLifecycle func(t TenantSpec, layers []*core.Layer, led *obs.Ledger) (*lifecycle.Manager, error)

	// Shards is the number of ingest shard queues/consumers (default
	// min(GOMAXPROCS, 8)). QueueCapacity bounds each shard's queue
	// (default 1024); Overflow is the full-queue policy (default Block).
	Shards        int
	QueueCapacity int
	Overflow      runtime.OverflowPolicy
	// Vnodes is the consistent-hash ring's per-shard virtual node count
	// (default 64).
	Vnodes int
	// Workers sizes the shared evaluation pool (default GOMAXPROCS; 1
	// runs inline).
	Workers int
	// BatchSize is the cross-tenant amortization unit: shard consumers
	// drain up to BatchSize events per lock acquisition, and batch layer
	// scoring chunks tenants into BatchSize groups (default 64).
	BatchSize int
	// EvalInterval is the wall-clock cycle cadence; zero disables the
	// ticker (cycles then run via EvaluateNow/EvaluateCycle only).
	EvalInterval time.Duration
	// Clock maps wall time to domain time (default: seconds since Start).
	Clock func() float64

	// Metrics receives fleet observability (nil allocates a fresh set);
	// Tracer samples end-to-end event spans (nil disables); Ledger keeps
	// per-tenant prediction quality under its cardinality cap (nil
	// disables journaling).
	Metrics *runtime.Metrics
	Tracer  *obs.Tracer
	Ledger  *obs.ScopedLedger
	// Recorder multiplexes per-tenant flight recorders under the same
	// cardinality cap/overflow-fold discipline as Ledger: each tenant's
	// act stage feeds its scope, warn-trigger thresholds are weighted by
	// tenant criticality (critical tenants capture bundles at lower
	// confidence), and bundles surface on /incidents and in /fleet rows.
	// Nil disables incident capture.
	Recorder *obs.ScopedRecorder
	// JournalLayers journals per-layer rows for every tenant with a
	// dedicated ledger scope (combined decisions are always journaled).
	// Tenants with a lifecycle manager journal per-layer regardless —
	// promotion decisions need the incumbent rows.
	JournalLayers bool

	// StaleAfter marks a tenant "stale" when no event arrived for this
	// many domain seconds (default 900). FailureHold keeps a tenant
	// "failed" for this many domain seconds after a recorded failure
	// (default max(LeadTime, 300)).
	StaleAfter  float64
	FailureHold float64
}

// tenant is one registered tenant's runtime slice.
type tenant struct {
	spec      TenantSpec
	index     int
	shard     int
	state     TenantState
	layers    []*core.Layer
	engine    *core.Engine
	led       *obs.Ledger // scoped journal; nil without Config.Ledger
	dedicated bool
	journal   bool          // journal per-layer rows
	rec       *obs.Recorder // scoped flight recorder; nil without Config.Recorder
	recOwn    bool          // rec is dedicated (not the overflow fold)
	lcm       *lifecycle.Manager
	cands     []lifecycle.CandidateScore // this cycle's shadow scores
	row       []float64                  // per-cycle score row scratch

	events      atomic.Int64
	warnings    atomic.Int64
	actions     atomic.Int64
	failures    atomic.Int64
	lastEvent   atomic.Uint64 // Float64bits; NaN until the first event
	lastFailure atomic.Uint64 // Float64bits; NaN until the first failure
	lastWarned  atomic.Bool
	lastConf    atomic.Uint64 // Float64bits of the last combined confidence
}

func storeTime(a *atomic.Uint64, t float64) { a.Store(math.Float64bits(t)) }
func loadTime(a *atomic.Uint64) float64     { return math.Float64frombits(a.Load()) }

// Fleet is the multi-tenant MEA runtime. Construct with New, drive with
// Start/Ingest (or Pump), observe via Handler, finish with Stop.
type Fleet struct {
	cfg     Config
	tenants []*tenant
	byID    map[string]*tenant
	ring    *ring
	queues  []*shardQueue
	pool    *runtime.Pool
	metrics *runtime.Metrics

	// stateMu guards every tenant's state: shard consumers apply chunks
	// under the shared side, cycle evaluation under the exclusive side.
	stateMu sync.RWMutex

	// layerScores is the cross-tenant score matrix, laid out layer-major:
	// layerScores[l*len(tenants)+t]. Written by pool workers at disjoint
	// indices during evaluation, read during the act fan-out.
	layerScores []float64
	// states is the index-aligned state slice handed to batch scorers.
	states []TenantState

	consumersWg sync.WaitGroup
	wg          sync.WaitGroup
	evalReq     chan struct{}
	evalStop    chan struct{}
	cycleMu     sync.Mutex // serializes ticker cycles with EvaluateCycle
	hardCtx     context.Context
	hardStop    context.CancelFunc

	unknown *runtime.Counter // ingest for unregistered tenants

	started   atomic.Bool
	stopping  atomic.Bool
	stopped   atomic.Bool
	stopOnce  sync.Once
	stopErr   error
	startWall time.Time
	cycles    atomic.Int64
	lastCycle atomic.Int64 // unix nanos of the last completed cycle
}

// New validates the configuration and assembles the fleet (not yet
// running; call Start).
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: no tenants", ErrFleet)
	}
	if len(cfg.Layers) == 0 {
		return nil, fmt.Errorf("%w: no layer templates", ErrFleet)
	}
	if cfg.NewState == nil || cfg.Apply == nil {
		return nil, fmt.Errorf("%w: nil NewState/Apply", ErrFleet)
	}
	if cfg.QueueCapacity < 0 || cfg.Shards < 0 || cfg.Workers < 0 || cfg.BatchSize < 0 || cfg.EvalInterval < 0 {
		return nil, fmt.Errorf("%w: negative sizing", ErrFleet)
	}
	if cfg.Shards == 0 {
		cfg.Shards = stdruntime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.Workers == 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 900
	}
	if cfg.FailureHold == 0 {
		cfg.FailureHold = cfg.Engine.LeadTime
		if cfg.FailureHold < 300 {
			cfg.FailureHold = 300
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = runtime.NewMetrics()
	}
	for i, tmpl := range cfg.Layers {
		if tmpl.Name == "" || (tmpl.Score == nil && tmpl.ScoreBatch == nil) {
			return nil, fmt.Errorf("%w: layer template %d needs a name and a scorer", ErrFleet, i)
		}
	}
	f := &Fleet{
		cfg:     cfg,
		tenants: make([]*tenant, 0, len(cfg.Tenants)),
		byID:    make(map[string]*tenant, len(cfg.Tenants)),
		ring:    newRing(cfg.Shards, cfg.Vnodes),
		queues:  make([]*shardQueue, cfg.Shards),
		metrics: cfg.Metrics,
		evalReq: make(chan struct{}, 1),
	}
	reg := f.metrics.Registry()
	// Shard gauges are registered eagerly for every shard — including the
	// ones no tenant hashes to — so dashboards see an explicit 0 instead
	// of a gap (same guarantee the single runtime gives its shards).
	depthHelp := "Events waiting per fleet ingest shard."
	dropHelp := "Events dropped per fleet ingest shard (all reasons)."
	for s := range f.queues {
		drops := reg.Counter("pfm_fleet_shard_dropped_total", dropHelp, "shard", strconv.Itoa(s))
		f.queues[s] = newShardQueue(cfg.QueueCapacity, cfg.Overflow, f.metrics, drops, cfg.Tracer, s)
		q := f.queues[s]
		reg.GaugeFunc("pfm_fleet_shard_queue_depth", depthHelp,
			func() float64 { return float64(q.depth()) }, "shard", strconv.Itoa(s))
		depthHelp, dropHelp = "", ""
	}
	f.unknown = reg.Counter("pfm_fleet_unknown_tenant_total",
		"Events rejected because their tenant is not registered.")
	for i, spec := range cfg.Tenants {
		tn, err := f.buildTenant(i, spec)
		if err != nil {
			return nil, err
		}
		f.tenants = append(f.tenants, tn)
		f.byID[spec.ID] = tn
	}
	f.layerScores = make([]float64, len(cfg.Layers)*len(f.tenants))
	f.states = make([]TenantState, len(f.tenants))
	for i, tn := range f.tenants {
		f.states[i] = tn.state
	}
	reg.GaugeFunc("pfm_fleet_tenants", "Registered tenants.",
		func() float64 { return float64(len(f.tenants)) })
	reg.GaugeFunc("pfm_fleet_weighted_availability",
		"Criticality-weighted fraction of tenants not currently failed.",
		func() float64 { return f.Rollup(f.now()).WeightedAvailability })
	if cfg.Ledger != nil {
		reg.GaugeFunc("pfm_fleet_ledger_folded",
			"Tenants sharing the overflow ledger scope (cardinality cap).",
			func() float64 { return float64(cfg.Ledger.Folded()) })
	}
	if cfg.Recorder != nil {
		rec := cfg.Recorder
		help := "Incident bundles captured across the fleet by trigger kind."
		for _, k := range obs.TriggerKinds {
			kind := k
			reg.CounterFunc("pfm_fleet_incidents_total", help,
				func() float64 { return float64(rec.Captured(kind)) },
				"trigger", string(kind))
			help = ""
		}
		reg.CounterFunc("pfm_fleet_incidents_suppressed_total",
			"Incident triggers suppressed by per-scope refractory windows.",
			func() float64 { return float64(rec.Suppressed()) })
		reg.GaugeFunc("pfm_fleet_recorder_folded",
			"Tenants sharing the overflow flight recorder (cardinality cap).",
			func() float64 { return float64(rec.Folded()) })
	}
	return f, nil
}

// buildTenant assembles one tenant's state, layers, engine, journal scope,
// and (optionally) lifecycle manager.
func (f *Fleet) buildTenant(i int, spec TenantSpec) (*tenant, error) {
	if spec.ID == "" || strings.ContainsAny(spec.ID, "|\n\x1f") {
		return nil, fmt.Errorf("%w: tenant %d has invalid ID %q", ErrFleet, i, spec.ID)
	}
	if _, dup := f.byID[spec.ID]; dup {
		return nil, fmt.Errorf("%w: duplicate tenant %q", ErrFleet, spec.ID)
	}
	if spec.Criticality < 0 || math.IsNaN(spec.Criticality) || math.IsInf(spec.Criticality, 0) {
		return nil, fmt.Errorf("%w: tenant %q criticality %g", ErrFleet, spec.ID, spec.Criticality)
	}
	if spec.Criticality == 0 {
		spec.Criticality = 1
	}
	st, err := f.cfg.NewState(spec)
	if err != nil {
		return nil, fmt.Errorf("tenant %q state: %w", spec.ID, err)
	}
	tn := &tenant{
		spec:  spec,
		index: i,
		shard: f.ring.shardOf(spec.ID),
		state: st,
		row:   make([]float64, len(f.cfg.Layers)),
	}
	storeTime(&tn.lastEvent, math.NaN())
	storeTime(&tn.lastFailure, math.NaN())
	tn.layers = make([]*core.Layer, len(f.cfg.Layers))
	for li, tmpl := range f.cfg.Layers {
		tn.layers[li] = tmpl.instantiate(st)
	}
	var combiner core.Combiner
	if f.cfg.NewCombiner != nil {
		combiner = f.cfg.NewCombiner(spec)
	}
	selector, actions, err := f.tenantActions(spec)
	if err != nil {
		return nil, fmt.Errorf("tenant %q actions: %w", spec.ID, err)
	}
	tn.engine, err = core.New(nil, tn.layers, combiner, selector, actions, nil, f.cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("tenant %q engine: %w", spec.ID, err)
	}
	if f.cfg.Ledger != nil {
		tn.led = f.cfg.Ledger.Scope(spec.ID)
		tn.dedicated = f.cfg.Ledger.Dedicated(spec.ID)
		tn.journal = f.cfg.JournalLayers && tn.dedicated
		if f.cfg.NewLifecycle != nil && tn.dedicated {
			tn.lcm, err = f.cfg.NewLifecycle(spec, tn.layers, tn.led)
			if err != nil {
				return nil, fmt.Errorf("tenant %q lifecycle: %w", spec.ID, err)
			}
			if tn.lcm != nil {
				tn.journal = true
			}
		}
	}
	if f.cfg.Recorder != nil {
		tn.rec = f.cfg.Recorder.Scope(spec.ID, obs.RecorderScopeConfig{
			WarnThreshold: criticalityWarnThreshold(f.cfg.Recorder.Config().WarnThreshold, spec.Criticality),
			Ledger:        tn.led,
			Lifecycle: func() any {
				if tn.lcm == nil {
					return nil
				}
				return tn.lcm.States()
			},
		})
		tn.recOwn = f.cfg.Recorder.Dedicated(spec.ID)
		if tn.lcm != nil {
			rec := tn.rec
			tn.lcm.Subscribe(func(e lifecycle.Event) {
				switch e.Type {
				case lifecycle.EventDrift:
					rec.TriggerEvent(obs.TriggerDrift, e.Time, e.Layer)
				case lifecycle.EventRolledBack:
					rec.TriggerEvent(obs.TriggerRollback, e.Time, e.Layer)
				}
			})
		}
	}
	return tn, nil
}

// criticalityWarnThreshold weights the template warn-trigger gate by tenant
// criticality: a criticality-2 tenant escalates warnings into incident
// bundles at half the confidence a baseline tenant needs, clamped so the
// gate stays inside the confidence range. base 0 (template warn trigger
// fires on every warning) is preserved.
func criticalityWarnThreshold(base, criticality float64) float64 {
	if base <= 0 {
		return 0
	}
	eff := base / criticality
	if eff < 0.05 {
		eff = 0.05
	}
	if eff > 1 {
		eff = 1
	}
	return eff
}

// tenantActions resolves a tenant's countermeasure set (default: one no-op
// observe action, making the fleet a pure prediction plane).
func (f *Fleet) tenantActions(spec TenantSpec) (*act.Selector, []*act.Action, error) {
	if f.cfg.NewActions != nil {
		return f.cfg.NewActions(spec)
	}
	sel, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		return nil, nil, err
	}
	observe, err := act.New("observe", act.StateCleanup,
		act.Params{SuccessProb: 1}, func() error { return nil })
	if err != nil {
		return nil, nil, err
	}
	return sel, []*act.Action{observe}, nil
}

// now returns the fleet's domain time (0 before Start installs the clock).
func (f *Fleet) now() float64 {
	if f.cfg.Clock == nil {
		return 0
	}
	return f.cfg.Clock()
}

// Metrics returns the fleet's metric set.
func (f *Fleet) Metrics() *runtime.Metrics { return f.metrics }

// Ledger returns the scoped prediction ledger (nil when disabled).
func (f *Fleet) Ledger() *obs.ScopedLedger { return f.cfg.Ledger }

// Recorder returns the scoped flight recorder (nil when disabled).
func (f *Fleet) Recorder() *obs.ScopedRecorder { return f.cfg.Recorder }

// Tenants returns the number of registered tenants.
func (f *Fleet) Tenants() int { return len(f.tenants) }

// Shards returns the number of ingest shards.
func (f *Fleet) Shards() int { return len(f.queues) }

// ShardOf returns the shard the tenant's events are routed to, and whether
// the tenant is registered.
func (f *Fleet) ShardOf(tenantID string) (int, bool) {
	tn, ok := f.byID[tenantID]
	if !ok {
		return 0, false
	}
	return tn.shard, true
}

// QueueDepth returns the ingest backlog summed across shards.
func (f *Fleet) QueueDepth() int {
	total := 0
	for _, q := range f.queues {
		total += q.depth()
	}
	return total
}

// Cycles returns the number of completed evaluation cycles.
func (f *Fleet) Cycles() int64 { return f.cycles.Load() }

// Start launches the shard consumers and the cycle loop. ctx cancellation
// hard-stops the fleet; use Stop for graceful shutdown.
func (f *Fleet) Start(ctx context.Context) error {
	if !f.started.CompareAndSwap(false, true) {
		return fmt.Errorf("%w: already started", ErrFleet)
	}
	f.startWall = time.Now()
	if f.cfg.Clock == nil {
		start := f.startWall
		f.cfg.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	f.hardCtx, f.hardStop = context.WithCancel(ctx)
	f.evalStop = make(chan struct{})
	if f.cfg.Workers > 1 {
		f.pool = runtime.NewPool(f.cfg.Workers)
	}
	f.wg.Add(len(f.queues) + 2)
	f.consumersWg.Add(len(f.queues))
	for s := range f.queues {
		go f.consumeLoop(f.queues[s])
	}
	go func() {
		defer f.wg.Done()
		f.consumersWg.Wait()
		close(f.evalStop)
	}()
	go f.evaluateLoop()
	go func() {
		<-f.hardCtx.Done()
		f.stopping.Store(true)
		for _, q := range f.queues {
			q.close()
		}
	}()
	return nil
}

// Ingest offers one tenant event under the configured overflow policy.
func (f *Fleet) Ingest(ctx context.Context, ev Event) error {
	tn, ok := f.byID[ev.Tenant]
	if !ok {
		f.unknown.Inc()
		return fmt.Errorf("%w: %q", ErrUnknownTenant, ev.Tenant)
	}
	it := item{ev: ev, tn: tn}
	if f.cfg.Tracer.Sample() {
		it.traceSampled = true
		// The offer follows within nanoseconds; one stamp covers both.
		now := f.cfg.Tracer.Now()
		it.traceStart = now
		it.traceOffered = now
	}
	return f.queues[tn.shard].push(ctx, it)
}

// RecordFailure journals one observed ground-truth failure of a tenant at
// domain time t (ledger input and health signal, not monitoring input).
func (f *Fleet) RecordFailure(tenantID string, t float64) error {
	tn, ok := f.byID[tenantID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenantID)
	}
	tn.failures.Add(1)
	for {
		old := tn.lastFailure.Load()
		prev := math.Float64frombits(old)
		if !math.IsNaN(prev) && prev >= t {
			break
		}
		if tn.lastFailure.CompareAndSwap(old, math.Float64bits(t)) {
			break
		}
	}
	tn.led.RecordFailure(t)
	return nil
}

// consumeLoop drains one shard in chunks: each chunk applies under a
// single shared-lock acquisition, amortizing synchronization across up to
// BatchSize events — the fleet's per-event overhead win.
func (f *Fleet) consumeLoop(q *shardQueue) {
	defer f.wg.Done()
	defer f.consumersWg.Done()
	tr := f.cfg.Tracer
	buf := make([]item, f.cfg.BatchSize)
	for {
		n := q.drainInto(buf)
		if n == 0 {
			return
		}
		if f.hardCtx.Err() != nil {
			// Hard stop: shed the chunk unapplied so shutdown is prompt.
			for i := 0; i < n; i++ {
				f.metrics.DroppedShutdown.Inc()
				q.dropped()
				q.traceDrop(buf[i])
			}
			q.settled(n)
			continue
		}
		var dequeued int64
		if tr != nil {
			dequeued = tr.Now()
		}
		start := time.Now()
		f.stateMu.RLock()
		for i := 0; i < n; i++ {
			it := buf[i]
			if err := f.cfg.Apply(it.tn.state, it.ev); err != nil {
				f.metrics.ApplyErrors.Inc()
			}
			it.tn.events.Add(1)
			storeTime(&it.tn.lastEvent, it.ev.Time)
		}
		f.stateMu.RUnlock()
		f.metrics.Applied.Add(int64(n))
		// One latency observation per chunk: the amortized unit of work.
		f.metrics.ApplyLatency.Observe(time.Since(start).Seconds())
		for i := 0; i < n; i++ {
			if buf[i].traceSampled {
				tr.PublishApplied(uint8(buf[i].ev.Kind), buf[i].ev.Tenant, q.shard,
					buf[i].traceStart, buf[i].traceOffered, dequeued, tr.Now())
			}
		}
		q.settled(n)
	}
}

// EvaluateNow requests an asynchronous cycle (coalesces if one is pending).
func (f *Fleet) EvaluateNow() {
	select {
	case f.evalReq <- struct{}{}:
	default:
	}
}

// evaluateLoop runs cycles on the ticker and on demand, plus one final
// cycle after ingest drains on shutdown.
func (f *Fleet) evaluateLoop() {
	defer f.wg.Done()
	var tick <-chan time.Time
	if f.cfg.EvalInterval > 0 {
		t := time.NewTicker(f.cfg.EvalInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-f.hardCtx.Done():
			return
		case <-f.evalStop:
			f.EvaluateCycle()
			return
		case <-tick:
		case <-f.evalReq:
		}
		f.EvaluateCycle()
	}
}

// EvaluateCycle runs one full synchronous MEA cycle over every tenant:
// batched cross-tenant layer scoring and lifecycle collection under the
// exclusive state lock, then the per-tenant act fan-out and the ledger
// watermark advance. Concurrent calls (ticker vs. caller) serialize.
//
// Determinism: scoring writes disjoint matrix slots, the act fan-out
// touches disjoint tenant state, and journaling goes to per-tenant scoped
// ledgers — so for a fixed ingested prefix (see Barrier) the cycle's
// observable outcome is independent of Shards, Workers, BatchSize, and
// GOMAXPROCS.
func (f *Fleet) EvaluateCycle() {
	f.cycleMu.Lock()
	defer f.cycleMu.Unlock()
	tr := f.cfg.Tracer
	evalStart := tr.Now()
	now := f.now()
	nT := len(f.tenants)
	start := time.Now()
	f.stateMu.Lock()
	for li := range f.cfg.Layers {
		f.scoreLayer(li, now)
	}
	// Lifecycle capture/shadow scoring needs the same exclusion the layer
	// scores just used (it reads predictor state).
	f.pool.Do(nT, func(i int) {
		tn := f.tenants[i]
		if tn.lcm != nil {
			tn.cands = tn.lcm.Collect(now)
		}
	})
	// Bundle assembly reads tenant event logs, so it shares the same
	// exclusion: triggers raised by the previous cycle's act fan-out are
	// assembled here (or by Stop's flush after the final cycle).
	f.cfg.Recorder.Collect()
	f.stateMu.Unlock()
	f.metrics.EvalLatency.Observe(time.Since(start).Seconds())
	evalEnd := tr.Now()

	actWall := time.Now()
	actStart := tr.Now()
	f.pool.Do(nT, func(i int) {
		f.actTenant(f.tenants[i], now)
	})
	f.cfg.Ledger.Advance(now)
	f.metrics.Evaluations.Inc()
	f.metrics.ActLatency.Observe(time.Since(actWall).Seconds())
	tr.CompleteCycle(evalStart, evalEnd, actStart, tr.Now())
	f.cycles.Add(1)
	f.lastCycle.Store(time.Now().UnixNano())
}

// scoreLayer fills layer li's row of the score matrix across all tenants:
// batch scorers run once per BatchSize chunk of tenants, per-tenant
// scorers once per tenant — both fanned across the shared pool with
// index-addressed writes.
func (f *Fleet) scoreLayer(li int, now float64) {
	tmpl := f.cfg.Layers[li]
	nT := len(f.tenants)
	out := f.layerScores[li*nT : (li+1)*nT]
	if tmpl.ScoreBatch != nil {
		b := f.cfg.BatchSize
		chunks := (nT + b - 1) / b
		f.pool.Do(chunks, func(c int) {
			lo := c * b
			hi := lo + b
			if hi > nT {
				hi = nT
			}
			if err := tmpl.ScoreBatch(f.states[lo:hi], now, out[lo:hi]); err != nil {
				for i := lo; i < hi; i++ {
					out[i] = math.NaN() // whole chunk abstains
				}
			}
		})
		return
	}
	f.pool.Do(nT, func(i int) {
		s, err := tmpl.Score(f.states[i], now)
		if err != nil {
			s = math.NaN()
		}
		out[i] = s
	})
}

// actTenant runs one tenant's serialized act stage for this cycle:
// cross-layer decision, counters, and scoped-ledger journaling.
func (f *Fleet) actTenant(tn *tenant, now float64) {
	nT := len(f.tenants)
	for li := range f.cfg.Layers {
		tn.row[li] = f.layerScores[li*nT+tn.index]
	}
	d := tn.engine.ActOn(now, tn.row)
	if d.Warned {
		tn.warnings.Add(1)
		f.metrics.Warnings.Inc()
	}
	if d.Executed {
		tn.actions.Add(1)
		f.metrics.Actions.Inc()
	}
	if d.Suppressed {
		f.metrics.Suppressed.Inc()
	}
	tn.lastWarned.Store(d.Warned)
	tn.lastConf.Store(math.Float64bits(d.Confidence))
	if tn.led != nil {
		if tn.journal {
			for li, l := range tn.layers {
				if !math.IsNaN(tn.row[li]) {
					tn.led.RecordPrediction(l.Name, now, tn.row[li] >= l.Threshold, tn.row[li])
				}
			}
			for _, c := range tn.cands {
				if c.Err == nil {
					tn.led.RecordPrediction(c.Name, now, c.Score >= c.Threshold, c.Score)
				}
			}
		}
		tn.led.RecordPrediction(obs.CombinedLayer, now, d.Warned, d.Confidence)
	}
	if tn.lcm != nil {
		// Runs before the recorder sees the cycle so drift/rollback
		// triggers land ahead of this cycle's decision triggers.
		tn.lcm.ObserveCycle(now, tn.row)
	}
	if tn.rec != nil {
		tn.rec.Observe(now, tn.row, obs.CycleObservation{
			Warned:        d.Warned,
			Executed:      d.Executed,
			Confidence:    d.Confidence,
			Action:        d.ActionName,
			LayerVersions: d.LayerVersions,
			Detail:        tn.spec.ID,
		})
	}
	tn.cands = nil
}

// Barrier blocks until every event admitted before the call has been fully
// processed (applied or shed) — the quiescence point deterministic replay
// evaluates at. The caller must pause ingest for the guarantee to be
// meaningful.
func (f *Fleet) Barrier(ctx context.Context) error {
	for {
		quiet := true
		for _, q := range f.queues {
			if q.pending() != 0 {
				quiet = false
				break
			}
		}
		if quiet {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// Stop shuts the fleet down gracefully: reject new ingest, drain every
// shard through Apply, run one final cycle, then release the pool. If ctx
// expires first the fleet is hard-stopped and ctx's error returned.
func (f *Fleet) Stop(ctx context.Context) error {
	if !f.started.Load() {
		return fmt.Errorf("%w: not started", ErrFleet)
	}
	f.stopOnce.Do(func() {
		f.stopping.Store(true)
		for _, q := range f.queues {
			q.close()
		}
		done := make(chan struct{})
		go func() {
			f.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			f.hardStop()
			<-done
			f.stopErr = ctx.Err()
		}
		f.hardStop()
		if f.pool != nil {
			f.pool.Close()
		}
		for _, tn := range f.tenants {
			if tn.lcm != nil {
				tn.lcm.Wait()
			}
		}
		// Pipeline is quiet: capture any triggers the final cycle raised
		// and deliver the tail to subscribers.
		f.cfg.Recorder.Flush()
		f.stopped.Store(true)
	})
	return f.stopErr
}

// Running reports whether the fleet is started and not yet stopping.
func (f *Fleet) Running() bool { return f.started.Load() && !f.stopping.Load() }

// Uptime returns the wall-clock time since Start.
func (f *Fleet) Uptime() time.Duration {
	if !f.started.Load() {
		return 0
	}
	return time.Since(f.startWall)
}

package fleet

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tailCollect reads records from a following tail on its own goroutine,
// delivering them on a channel so the test can interleave file mutations.
func tailCollect(t *testing.T, path string, stop chan struct{}) (*TailSource, chan Record) {
	t.Helper()
	src, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	src.Follow = true
	src.Poll = 2 * time.Millisecond
	src.Stop = stop
	out := make(chan Record, 64)
	go func() {
		defer close(out)
		for {
			rec, err := src.Next()
			if err != nil {
				return // io.EOF via Stop, or test file vanished
			}
			out <- rec
		}
	}()
	return src, out
}

func expectTimes(t *testing.T, out chan Record, want ...float64) {
	t.Helper()
	for _, w := range want {
		select {
		case rec := <-out:
			if rec.Event.Time != w {
				t.Fatalf("got record at t=%v, want t=%v", rec.Event.Time, w)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for record t=%v", w)
		}
	}
}

// TestTailRotateTruncate: an in-place truncation (logrotate copytruncate)
// rewinds the tail to the new top of the file — records written after the
// truncation flow through instead of the tail stalling past-EOF forever.
func TestTailRotateTruncate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.log")
	if err := os.WriteFile(path, []byte("S|a|1|load|0.5\nS|a|2|load|0.6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	src, out := tailCollect(t, path, stop)
	defer src.Close()
	expectTimes(t, out, 1, 2)

	// copytruncate: same inode, size drops below the consumed offset, new
	// epoch written. The new content stays shorter than the 30 bytes already
	// consumed so the size<offset check fires regardless of poll timing.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	fh, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString("S|a|10|load|1\nS|a|11|load|2\n"); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	expectTimes(t, out, 10, 11)
}

// TestTailRotateRecreate: a rename-and-recreate rotation is detected by the
// inode change at path — the tail reopens the fresh file and keeps flowing.
func TestTailRotateRecreate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.log")
	if err := os.WriteFile(path, []byte("S|a|1|load|0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	src, out := tailCollect(t, path, stop)
	defer src.Close()
	expectTimes(t, out, 1)

	// logrotate default: rename the live file away, recreate at path.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("S|a|20|load|0.9\nF|a|21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	expectTimes(t, out, 20, 21)

	// A second rotation in the same tail still works (fh handoff is clean).
	if err := os.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("S|a|30|load|0.4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	expectTimes(t, out, 30)
}

// TestTailRotateDiscardsPartial: an unterminated line straddling a
// truncation belongs to the old file incarnation and must be discarded, not
// glued onto the new epoch's first line.
func TestTailRotateDiscardsPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.log")
	// No trailing newline: the tail buffers "S|a|2|load|0." as partial.
	if err := os.WriteFile(path, []byte("S|a|1|load|0.5\nS|a|2|load|0."), 0o644); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	src, out := tailCollect(t, path, stop)
	defer src.Close()
	expectTimes(t, out, 1)

	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	fh, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString("S|a|5|load|0.3\n"); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	// The partial "0." must not corrupt this record (a glued line would
	// parse as a different value or fail and kill the collector goroutine).
	expectTimes(t, out, 5)
}

package fleet

import (
	"context"
	"errors"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// item is one queued event with its routing target resolved (so the
// consumer never repeats the tenant lookup) and its trace stamps.
type item struct {
	ev           Event
	tn           *tenant
	traceSampled bool
	traceStart   int64
	traceOffered int64
}

// shardQueue is one shard's bounded ingest buffer: the chunk Ring shared
// with the single-tenant runtime (runtime.Ring — one lock acquisition per
// consumer chunk, built-in pending accounting for Barrier) plus this
// package's drop and trace bookkeeping. Trace sampling and stamping
// happen on the producer side (Fleet.Ingest), so every item the ring
// rejects or evicts already carries the stamps its drop record needs.
type shardQueue struct {
	ring    *runtime.Ring[item]
	metrics *runtime.Metrics
	drops   *runtime.Counter
	tracer  *obs.Tracer
	shard   int
}

func newShardQueue(capacity int, policy runtime.OverflowPolicy, m *runtime.Metrics, drops *runtime.Counter, tracer *obs.Tracer, shard int) *shardQueue {
	q := &shardQueue{ring: runtime.NewRing[item](capacity, policy), metrics: m, drops: drops, tracer: tracer, shard: shard}
	q.ring.OnEvict = func(old item) {
		m.DroppedOldest.Inc()
		q.dropped()
		q.traceDrop(old)
	}
	return q
}

func (q *shardQueue) depth() int    { return q.ring.Depth() }
func (q *shardQueue) capacity() int { return q.ring.Capacity() }

// settled marks n drained events fully processed (Barrier accounting).
func (q *shardQueue) settled(n int) { q.ring.Settle(n) }

// pending reports events admitted but not yet settled.
func (q *shardQueue) pending() int64 { return q.ring.Pending() }

// dropped counts one shed event on this shard.
func (q *shardQueue) dropped() {
	if q.drops != nil {
		q.drops.Inc()
	}
}

// traceDrop publishes the shed event's partial trace.
func (q *shardQueue) traceDrop(it item) {
	if it.traceSampled && q.tracer != nil {
		q.tracer.PublishDropped(uint8(it.ev.Kind), it.ev.Tenant, q.shard,
			it.traceStart, it.traceOffered, q.tracer.Now())
	}
}

// push offers one event under the overflow policy; the semantics mirror
// the single-runtime queue (ErrClosed after shutdown, the event not
// counted; ctx.Err() when a blocked push is canceled, counted ingested +
// dropped; DropNewest rejections counted but not surfaced).
func (q *shardQueue) push(ctx context.Context, it item) error {
	err := q.ring.Push(ctx, it)
	switch {
	case err == nil:
		q.metrics.Ingested.Inc()
		return nil
	case errors.Is(err, runtime.ErrClosed):
		return runtime.ErrClosed
	case errors.Is(err, runtime.ErrRejected):
		q.metrics.Ingested.Inc()
		q.metrics.DroppedNewest.Inc()
		q.dropped()
		q.traceDrop(it)
		return nil
	default: // canceled Block wait
		q.metrics.Ingested.Inc()
		q.metrics.DroppedCanceled.Inc()
		q.dropped()
		q.traceDrop(it)
		return err
	}
}

// drainInto fills buf with up to len(buf) queued items — the chunk the
// consumer applies under a single state-lock acquisition. It blocks while
// the queue is empty and returns 0 only once the queue is closed, empty,
// and free of parked pushers.
func (q *shardQueue) drainInto(buf []item) int { return q.ring.Drain(buf) }

// close begins shutdown: new pushes are rejected, parked pushes complete
// as the consumer drains, then drainInto returns 0.
func (q *shardQueue) close() { q.ring.Close() }

package fleet

import (
	"context"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// item is one queued event with its routing target resolved (so the
// consumer never repeats the tenant lookup) and its trace stamps.
type item struct {
	ev           Event
	tn           *tenant
	traceSampled bool
	traceStart   int64
	traceOffered int64
}

// shardQueue is one shard's bounded ingest buffer: a channel (blocked
// producers stay context-cancelable) plus a close gate, like the
// single-runtime queue, with two additions for the fleet — the consumer
// drains it in chunks, and a pending count supports Barrier (quiescence
// detection for deterministic replay).
type shardQueue struct {
	ch     chan item
	policy runtime.OverflowPolicy
	drops  *runtime.Counter
	tracer *obs.Tracer
	shard  int

	// pending counts events admitted to the channel but not yet fully
	// processed (applied, shed, or evicted). Incremented before the send
	// so Barrier can never observe a spurious zero.
	pending atomic.Int64

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

func newShardQueue(capacity int, policy runtime.OverflowPolicy, drops *runtime.Counter, tracer *obs.Tracer, shard int) *shardQueue {
	return &shardQueue{ch: make(chan item, capacity), policy: policy, drops: drops, tracer: tracer, shard: shard}
}

func (q *shardQueue) depth() int    { return len(q.ch) }
func (q *shardQueue) capacity() int { return cap(q.ch) }

// settled marks one admitted event fully processed.
func (q *shardQueue) settled() { q.pending.Add(-1) }

// dropped counts one shed event on this shard.
func (q *shardQueue) dropped() {
	if q.drops != nil {
		q.drops.Inc()
	}
}

// traceDrop publishes the shed event's partial trace.
func (q *shardQueue) traceDrop(it item) {
	if it.traceSampled && q.tracer != nil {
		q.tracer.PublishDropped(uint8(it.ev.Kind), it.ev.Tenant, q.shard,
			it.traceStart, it.traceOffered, q.tracer.Now())
	}
}

// push offers one event under the overflow policy; the semantics mirror
// the single-runtime queue (ErrClosed after shutdown; ctx.Err() when a
// blocked push is canceled).
func (q *shardQueue) push(ctx context.Context, it item, m *runtime.Metrics) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return runtime.ErrClosed
	}
	q.inflight.Add(1)
	q.mu.Unlock()
	defer q.inflight.Done()

	m.Ingested.Inc()
	if it.traceSampled {
		it.traceOffered = q.tracer.Now()
	}
	switch q.policy {
	case runtime.DropNewest:
		q.pending.Add(1)
		select {
		case q.ch <- it:
		default:
			q.pending.Add(-1)
			m.DroppedNewest.Inc()
			q.dropped()
			q.traceDrop(it)
		}
		return nil
	case runtime.DropOldest:
		q.pending.Add(1)
		for {
			select {
			case q.ch <- it:
				return nil
			default:
			}
			select {
			case old := <-q.ch:
				q.pending.Add(-1)
				m.DroppedOldest.Inc()
				q.dropped()
				q.traceDrop(old)
			default:
			}
			stdruntime.Gosched()
		}
	default: // Block
		q.pending.Add(1)
		select {
		case q.ch <- it:
			return nil
		case <-ctx.Done():
			q.pending.Add(-1)
			m.DroppedCanceled.Inc()
			q.dropped()
			q.traceDrop(it)
			return ctx.Err()
		}
	}
}

// drainInto fills buf with queued items: it blocks for the first one, then
// takes whatever else is immediately available up to len(buf) — the chunk
// the consumer applies under a single state-lock acquisition. It returns
// n == 0 only once the queue is closed and empty.
func (q *shardQueue) drainInto(buf []item) int {
	it, ok := <-q.ch
	if !ok {
		return 0
	}
	buf[0] = it
	n := 1
	for n < len(buf) {
		select {
		case it, ok := <-q.ch:
			if !ok {
				return n
			}
			buf[n] = it
			n++
		default:
			return n
		}
	}
	return n
}

// close begins shutdown: new pushes are rejected, in-flight pushes are
// waited out, then the channel is closed so drainInto returns 0.
func (q *shardQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.inflight.Wait()
	close(q.ch)
}

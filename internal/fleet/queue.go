package fleet

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// errTenantRemoved is returned by a sub-queue push after RemoveTenant closed
// the tenant's queue; Fleet.Ingest maps it to ErrUnknownTenant so a shared
// trace keeps pumping past a retired tenant.
var errTenantRemoved = errors.New("fleet: tenant removed")

// item is one queued event with its routing target resolved (so the
// consumer never repeats the tenant lookup) and its trace stamps.
type item struct {
	ev           Event
	tn           *tenant
	traceSampled bool
	traceStart   int64
	traceOffered int64
}

// parkedPush is one producer waiting (Block policy) for room in the shard's
// budget. The consumer admits the item itself when space frees and closes
// ch; the close is the release that makes admitted/removed visible. Parked
// pushes queue FIFO on the shard (not the tenant) because the scarce
// resource is the shard-wide budget: admission order is arrival order
// across tenants, and a handoff migrates a tenant's parked entries to the
// destination shard along with its sub-queue.
type parkedPush struct {
	it       item
	tq       *tenantQueue
	ch       chan struct{}
	admitted bool // consumer enqueued the item before closing ch
	removed  bool // tenant was removed before the item fit
	retry    bool // a handoff re-homed the tenant: re-offer on the new shard
}

// drrQuantum is the deficit-round-robin quantum: how many queued events one
// tenant may contribute per scheduler visit before the drain moves on to the
// next active tenant. Small enough that a chunk interleaves every backlogged
// tenant on the shard, large enough to keep per-tenant copy runs amortized.
const drrQuantum = 16

// tenantQueue is one tenant's FIFO sub-queue. The queue object belongs to
// the tenant and survives shard handoffs: membership changes re-home it onto
// another shardQueue without copying items, so per-tenant FIFO order is
// structural. All fields except owner/inflight are guarded by the owning
// shard's mutex; owner itself is the pointer producers resolve (and
// re-resolve, under lock, to close the load/lock race) before touching the
// rest.
type tenantQueue struct {
	tn    *tenant
	owner atomic.Pointer[shardQueue]

	buf     []item // circular; grows geometrically up to cap
	head    int
	n       int
	cap     int
	deficit int // DRR credit, reset on deactivation

	rate      float64 // TenantSpec.RateLimit [events/domain-second]; 0 = unlimited
	burst     float64
	tokens    float64
	tokenAt   float64
	tokenInit bool

	active bool // linked into the owner's active list
	ready  bool // attached to the owner (false mid-handoff: not schedulable)
	closed bool // tenant removed: pushes rejected, backlog dropped

	// inflight counts items drained into a consumer chunk but not yet
	// settled; a handoff waits for it to reach 0 so the new shard's
	// consumer cannot reorder against the old one's in-flight chunk.
	inflight atomic.Int64
}

func newTenantQueue(tn *tenant, capacity int, rate float64) *tenantQueue {
	tq := &tenantQueue{tn: tn, cap: capacity, rate: rate}
	if rate > 0 {
		tq.burst = rate
		if tq.burst < 1 {
			tq.burst = 1
		}
	}
	return tq
}

// enqueue appends one item (caller holds the owner lock and checked n < cap).
func (tq *tenantQueue) enqueue(it item) {
	if tq.n == len(tq.buf) {
		tq.grow()
	}
	i := tq.head + tq.n
	if i >= len(tq.buf) {
		i -= len(tq.buf)
	}
	tq.buf[i] = it
	tq.n++
}

func (tq *tenantQueue) grow() {
	newCap := len(tq.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	if newCap > tq.cap {
		newCap = tq.cap
	}
	nb := make([]item, newCap)
	for i := 0; i < tq.n; i++ {
		j := tq.head + i
		if j >= len(tq.buf) {
			j -= len(tq.buf)
		}
		nb[i] = tq.buf[j]
	}
	tq.buf = nb
	tq.head = 0
}

// dequeueOne pops the oldest item (caller holds the owner lock, n > 0).
func (tq *tenantQueue) dequeueOne() item {
	it := tq.buf[tq.head]
	tq.buf[tq.head] = item{}
	tq.head++
	if tq.head == len(tq.buf) {
		tq.head = 0
	}
	tq.n--
	return it
}

// dequeueInto pops k items into out (caller holds the owner lock, k <= n).
func (tq *tenantQueue) dequeueInto(out []item, k int) {
	for i := 0; i < k; i++ {
		j := tq.head + i
		if j >= len(tq.buf) {
			j -= len(tq.buf)
		}
		out[i] = tq.buf[j]
		tq.buf[j] = item{}
	}
	tq.head += k
	if tq.head >= len(tq.buf) {
		tq.head -= len(tq.buf)
	}
	tq.n -= k
}

// refill advances the token bucket to domain time now.
func (tq *tenantQueue) refill(now float64) {
	if !tq.tokenInit {
		tq.tokens = tq.burst
		tq.tokenAt = now
		tq.tokenInit = true
		return
	}
	if now > tq.tokenAt {
		tq.tokens += (now - tq.tokenAt) * tq.rate
		if tq.tokens > tq.burst {
			tq.tokens = tq.burst
		}
		tq.tokenAt = now
	}
}

// admitParkedLocked admits waiting parked pushes in shard-FIFO order while
// the budget has room (caller holds q.mu). Each admission is the deferred
// completion of a Block-policy push: counted ingested/pending here. Entries
// whose tenant sub-queue is individually full are skipped, not head-blocked.
func (q *shardQueue) admitParkedLocked() {
	if len(q.parked) == 0 {
		return
	}
	kept := q.parked[:0]
	for i, pp := range q.parked {
		if q.total >= q.capTotal {
			kept = append(kept, q.parked[i:]...)
			break
		}
		if pp.tq.n >= pp.tq.cap {
			kept = append(kept, pp)
			continue
		}
		pp.tq.enqueue(pp.it)
		q.total++
		q.metrics.Ingested.Inc()
		q.pending.Add(1)
		q.activateLocked(pp.tq)
		pp.admitted = true
		close(pp.ch)
	}
	for i := len(kept); i < len(q.parked); i++ {
		q.parked[i] = nil
	}
	q.parked = kept
}

// push offers one event to the tenant's sub-queue under the overflow policy.
// The semantics mirror the previous shared-ring queue: ErrClosed after fleet
// shutdown (event not counted), ctx.Err() when a blocked push is canceled
// (counted ingested + dropped), DropNewest rejections counted but not
// surfaced, errTenantRemoved after RemoveTenant (not counted).
func (tq *tenantQueue) push(ctx context.Context, it item) error {
	for {
		q := tq.owner.Load()
		q.mu.Lock()
		if tq.owner.Load() != q {
			q.mu.Unlock()
			continue // re-homed between load and lock
		}
		switch {
		case tq.closed:
			q.mu.Unlock()
			return errTenantRemoved
		case q.closed:
			q.mu.Unlock()
			return runtime.ErrClosed
		}
		if tq.n < tq.cap && q.total < q.capTotal {
			tq.enqueue(it)
			q.total++
			q.metrics.Ingested.Inc()
			q.pending.Add(1)
			q.activateLocked(tq)
			q.mu.Unlock()
			return nil
		}
		switch q.policy {
		case runtime.DropOldest:
			// Evict the pushing tenant's own oldest when it has backlog;
			// when the shard budget is exhausted by OTHER tenants, evict
			// the head of the longest-waiting active tenant (the DRR
			// cursor) — the closest analogue of the shared ring's global
			// oldest.
			victim := tq
			if victim.n == 0 && len(q.active) > 0 {
				i := q.cursor
				if i >= len(q.active) {
					i = 0
				}
				victim = q.active[i]
			}
			if victim.n == 0 {
				// No evictable backlog on this shard (pathological:
				// everything mid-handoff); shed the incoming event.
				q.metrics.Ingested.Inc()
				q.metrics.DroppedOldest.Inc()
				q.dropCount()
				q.mu.Unlock()
				q.traceDrop(it)
				return nil
			}
			old := victim.dequeueOne()
			q.total--
			q.pending.Add(-1)
			q.metrics.DroppedOldest.Inc()
			q.dropCount()
			if victim.n == 0 && victim.active {
				q.removeActiveLocked(victim)
			}
			tq.enqueue(it)
			q.total++
			q.metrics.Ingested.Inc()
			q.pending.Add(1)
			q.activateLocked(tq)
			q.mu.Unlock()
			q.traceDrop(old)
			return nil
		case runtime.DropNewest:
			q.metrics.Ingested.Inc()
			q.metrics.DroppedNewest.Inc()
			q.dropCount()
			q.mu.Unlock()
			q.traceDrop(it)
			return nil
		default: // Block
			pp := &parkedPush{it: it, tq: tq, ch: make(chan struct{})}
			q.parked = append(q.parked, pp)
			q.mu.Unlock()
			select {
			case <-pp.ch:
				if pp.removed {
					return errTenantRemoved
				}
				if pp.retry {
					continue
				}
				return nil // admitted by the consumer
			case <-ctx.Done():
				if tq.cancelParked(pp) {
					q.metrics.Ingested.Inc()
					q.metrics.DroppedCanceled.Inc()
					q.dropCount()
					q.traceDrop(it)
					return ctx.Err()
				}
				// Lost the race: the consumer already resolved the park.
				<-pp.ch
				if pp.removed {
					return errTenantRemoved
				}
				if pp.retry {
					continue
				}
				return nil
			}
		}
	}
}

// cancelParked withdraws pp if it is still parked; false means the consumer
// resolved it first (admitted or removed).
func (tq *tenantQueue) cancelParked(pp *parkedPush) bool {
	for {
		q := tq.owner.Load()
		q.mu.Lock()
		if tq.owner.Load() != q {
			q.mu.Unlock()
			continue
		}
		for i, p := range q.parked {
			if p == pp {
				copy(q.parked[i:], q.parked[i+1:])
				q.parked[len(q.parked)-1] = nil
				q.parked = q.parked[:len(q.parked)-1]
				q.mu.Unlock()
				return true
			}
		}
		q.mu.Unlock()
		return false
	}
}

// shardQueue is one shard's ingest scheduler: a deficit-round-robin pass
// over the member tenant sub-queues replaces the old shared FIFO ring, so a
// hot tenant can saturate only its own sub-queue while the drain keeps
// interleaving every backlogged tenant. The chunk discipline is unchanged:
// one lock acquisition fills one consumer chunk.
type shardQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond

	members map[*tenantQueue]struct{}
	active  []*tenantQueue // members with queued items, schedulable
	cursor  int            // DRR position in active

	// total tracks queued events across owned sub-queues against capTotal,
	// the shard-wide budget (Config.QueueCapacity). Per-tenant caps bound
	// how much of that budget one tenant can hold; the shared budget is
	// what makes Block/DropOldest apply backpressure at the same aggregate
	// depth as the shared ring this scheduler replaced.
	total    int
	capTotal int
	parked   []*parkedPush // Block-policy producers waiting for budget, FIFO

	policy  runtime.OverflowPolicy
	quantum int
	clock   func() float64 // domain clock for token buckets

	metrics     *runtime.Metrics
	drops       *runtime.Counter // per-shard, all reasons
	ratelimited *runtime.Counter // fleet-wide: scheduler skips for empty buckets
	tracer      *obs.Tracer
	pending     *atomic.Int64 // fleet-wide admitted-not-settled (Barrier)

	closed bool
	shard  int
}

func newShardQueue(policy runtime.OverflowPolicy, capacity int, m *runtime.Metrics, drops, ratelimited *runtime.Counter, tracer *obs.Tracer, pending *atomic.Int64, clock func() float64, shard int) *shardQueue {
	q := &shardQueue{
		members:     make(map[*tenantQueue]struct{}),
		capTotal:    capacity,
		policy:      policy,
		quantum:     drrQuantum,
		clock:       clock,
		metrics:     m,
		drops:       drops,
		ratelimited: ratelimited,
		tracer:      tracer,
		pending:     pending,
		shard:       shard,
	}
	q.notEmpty.L = &q.mu
	return q
}

// attach adds tq to the shard's membership, counts its backlog against the
// shard budget, and schedules it. Used at construction and AddTenant; a
// handoff goes through moveQueue, which does its own budget transfer.
func (q *shardQueue) attach(tq *tenantQueue) {
	q.mu.Lock()
	q.members[tq] = struct{}{}
	tq.owner.Store(q)
	tq.ready = true
	q.total += tq.n
	q.activateLocked(tq)
	q.mu.Unlock()
}

// activateLocked links a non-empty, attached sub-queue into the DRR list.
// The consumer only ever waits while the active list is empty (it re-checks
// under this mutex before sleeping), so only the empty→non-empty transition
// signals — per-tenant queues empty and refill constantly under steady
// load, and signaling each refill would wake-storm the condvar.
func (q *shardQueue) activateLocked(tq *tenantQueue) {
	if !tq.active && tq.ready && tq.n > 0 {
		q.active = append(q.active, tq)
		tq.active = true
		if len(q.active) == 1 {
			q.notEmpty.Signal()
		}
	}
}

// deactivateAt unlinks active[i] (drained empty); swap-remove keeps the
// visit O(1) and the cursor valid.
func (q *shardQueue) deactivateAt(i int) {
	tq := q.active[i]
	last := len(q.active) - 1
	q.active[i] = q.active[last]
	q.active[last] = nil
	q.active = q.active[:last]
	tq.active = false
	tq.deficit = 0
}

// removeActiveLocked unlinks tq wherever it sits in the active list.
func (q *shardQueue) removeActiveLocked(tq *tenantQueue) {
	for i, a := range q.active {
		if a == tq {
			q.deactivateAt(i)
			if q.cursor > i {
				q.cursor--
			}
			return
		}
	}
}

// depth reports queued events across owned sub-queues.
func (q *shardQueue) depth() int {
	q.mu.Lock()
	d := q.total
	q.mu.Unlock()
	return d
}

// settled marks the chunk's n drained events fully processed: Barrier
// accounting plus the per-tenant in-flight counts a handoff waits on.
// Consecutive same-tenant runs (the shape DRR produces) coalesce into one
// atomic each.
func (q *shardQueue) settled(buf []item, n int) {
	if n == 0 {
		return
	}
	q.pending.Add(-int64(n))
	i := 0
	for i < n {
		tq := buf[i].tn.q
		j := i + 1
		for j < n && buf[j].tn.q == tq {
			j++
		}
		tq.inflight.Add(int64(i - j))
		i = j
	}
}

// dropCount counts one shed event on this shard.
func (q *shardQueue) dropCount() {
	if q.drops != nil {
		q.drops.Inc()
	}
}

// traceDrop publishes the shed event's partial trace.
func (q *shardQueue) traceDrop(it item) {
	if it.traceSampled && q.tracer != nil {
		q.tracer.PublishDropped(uint8(it.ev.Kind), it.ev.Tenant, q.shard,
			it.traceStart, it.traceOffered, q.tracer.Now())
	}
}

// drainInto fills buf with a deficit-round-robin chunk: each pass credits
// every active tenant one quantum and takes up to its deficit (and token
// balance), so a chunk interleaves all backlogged tenants instead of
// replaying one hot tenant's FIFO prefix. It blocks while nothing is
// schedulable and returns (0, false) only once the queue is closed and
// empty. (0, true) means queued items exist but every active tenant is over
// its rate limit — the consumer should back off briefly and retry.
func (q *shardQueue) drainInto(buf []item) (int, bool) {
	q.mu.Lock()
	for len(q.active) == 0 {
		if q.closed {
			q.mu.Unlock()
			return 0, false
		}
		q.notEmpty.Wait()
	}
	n := 0
	clock := math.NaN() // domain clock, read at most once per chunk
	for n < len(buf) && len(q.active) > 0 {
		progress := false
		visits := len(q.active)
		for v := 0; v < visits && n < len(buf) && len(q.active) > 0; v++ {
			if q.cursor >= len(q.active) {
				q.cursor = 0
			}
			tq := q.active[q.cursor]
			tq.deficit += q.quantum
			if lim := q.quantum + len(buf); tq.deficit > lim {
				tq.deficit = lim
			}
			take := tq.n
			if take > tq.deficit {
				take = tq.deficit
			}
			if take > len(buf)-n {
				take = len(buf) - n
			}
			// Rate limits stop applying once the queue is closing: shutdown
			// must drain the backlog even if the domain clock never advances
			// again to refill a bucket.
			if tq.rate > 0 && !q.closed {
				if math.IsNaN(clock) {
					clock = q.clock()
				}
				tq.refill(clock)
				if allowed := int(tq.tokens); take > allowed {
					take = allowed
					if q.ratelimited != nil {
						q.ratelimited.Inc()
					}
				}
			}
			if take > 0 {
				tq.dequeueInto(buf[n:], take)
				n += take
				q.total -= take
				tq.deficit -= take
				if tq.rate > 0 {
					tq.tokens -= float64(take)
				}
				tq.inflight.Add(int64(take))
				progress = true
			}
			if tq.n == 0 {
				q.deactivateAt(q.cursor)
			} else {
				q.cursor++
			}
		}
		if !progress {
			break
		}
	}
	q.admitParkedLocked()
	q.mu.Unlock()
	if n == 0 {
		return 0, true // backlog exists but is rate-limited; retry shortly
	}
	return n, false
}

// close begins shutdown: new pushes are rejected, parked pushes complete as
// the consumer drains (same contract as the shared ring it replaces), then
// drainInto returns (0, false).
func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.mu.Unlock()
}

// closeAndDrain retires a removed tenant's sub-queue: reject future pushes,
// shed the backlog (the caller accounts the drops), cancel parked pushes.
// Returns the shed items for drop accounting/tracing. The sub-queue may
// still have in-flight chunk items; they apply normally.
func (tq *tenantQueue) closeAndDrain() []item {
	for {
		q := tq.owner.Load()
		q.mu.Lock()
		if tq.owner.Load() != q {
			q.mu.Unlock()
			continue
		}
		tq.closed = true
		if tq.active {
			q.removeActiveLocked(tq)
		}
		delete(q.members, tq)
		shed := make([]item, tq.n)
		tq.dequeueInto(shed, tq.n)
		q.total -= len(shed)
		q.pending.Add(-int64(len(shed)))
		if len(q.parked) > 0 {
			kept := q.parked[:0]
			for _, pp := range q.parked {
				if pp.tq == tq {
					pp.removed = true
					close(pp.ch)
					continue
				}
				kept = append(kept, pp)
			}
			for i := len(kept); i < len(q.parked); i++ {
				q.parked[i] = nil
			}
			q.parked = kept
		}
		q.admitParkedLocked() // shed backlog freed shard budget
		q.mu.Unlock()
		for range shed {
			q.metrics.DroppedShutdown.Inc()
			q.dropCount()
		}
		for _, it := range shed {
			q.traceDrop(it)
		}
		return shed
	}
}

// moveQueue re-homes tq onto dst — the handoff pass of a membership change.
// Items are not copied: the sub-queue detaches from its current shard (no
// new drains pick it), waits out the old consumer's in-flight chunk so
// per-tenant apply order is preserved, then attaches to dst. Returns how
// many queued events moved shards.
func moveQueue(tq *tenantQueue, dst *shardQueue) int {
	src := tq.owner.Load()
	if src == dst {
		return 0
	}
	src.mu.Lock()
	if tq.owner.Load() != src {
		src.mu.Unlock()
		return moveQueue(tq, dst) // re-homed concurrently; retry
	}
	if tq.closed {
		src.mu.Unlock()
		return 0
	}
	if tq.active {
		src.removeActiveLocked(tq)
	}
	delete(src.members, tq)
	tq.ready = false
	moved := tq.n
	src.total -= moved
	if len(src.parked) > 0 {
		// Parked producers for the moving tenant re-offer on the new
		// shard instead of migrating: the retry keeps every parked entry
		// under exactly one shard's lock and lets cancelParked stay a
		// single-owner scan.
		kept := src.parked[:0]
		for _, pp := range src.parked {
			if pp.tq == tq {
				pp.retry = true
				close(pp.ch)
				continue
			}
			kept = append(kept, pp)
		}
		for i := len(kept); i < len(src.parked); i++ {
			src.parked[i] = nil
		}
		src.parked = kept
	}
	tq.owner.Store(dst) // producers now push under dst's lock
	src.admitParkedLocked()
	src.mu.Unlock()
	for tq.inflight.Load() != 0 {
		time.Sleep(20 * time.Microsecond)
	}
	dst.mu.Lock()
	dst.members[tq] = struct{}{}
	// The detach snapshot, not tq.n: pushes that landed between detach and
	// attach were already counted in dst.total by the fast path.
	dst.total += moved
	tq.ready = true
	dst.activateLocked(tq)
	dst.mu.Unlock()
	return moved
}

package fleet

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/scp"
)

// simTrace generates a small multi-tenant simulator trace once per test
// binary (4 tenants, 3 simulated hours, Zipf-skewed load).
func simTrace(t *testing.T) ([]string, []Record) {
	t.Helper()
	m, err := scp.NewMulti(scp.MultiConfig{Tenants: 4, BaseSeed: 7, Skew: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(3 * 3600); err != nil {
		t.Fatal(err)
	}
	recs := SCPRecords(m.Drain())
	if len(recs) == 0 {
		t.Fatal("simulator produced an empty trace")
	}
	return m.IDs(), recs
}

// replay pumps src into a fresh fleet and returns its observable outcome:
// per-tenant event/failure counts plus ledger totals.
func replay(t *testing.T, ids []string, src Source) map[string][3]int64 {
	t.Helper()
	clock := newTestClock(0)
	led, err := obs.NewScopedLedger(obs.LedgerConfig{LeadTime: 300, Slack: 60}, len(ids), "load")
	if err != nil {
		t.Fatal(err)
	}
	sp := make([]TenantSpec, len(ids))
	for i, id := range ids {
		sp[i] = TenantSpec{ID: id}
	}
	cfg := testFleetConfig(sp, clock)
	cfg.Shards = 3
	cfg.Ledger = led
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Pump(ctx, f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Set(3 * 3600)
	f.EvaluateCycle()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][3]int64, len(ids)+1)
	for _, id := range ids {
		v, ok := f.TenantStatus(id)
		if !ok {
			t.Fatalf("tenant %s missing", id)
		}
		out[id] = [3]int64{v.Events, v.Failures, v.Warnings}
	}
	preds, fails := led.Totals()
	out["~ledger"] = [3]int64{preds, fails, 0}
	return out
}

// TestSourceParity: the in-process feeder, the text file-tail source, and
// the binary wire source replay the same multi-tenant trace to identical
// per-tenant counts and ledger totals — the acceptance criterion for
// pluggable ingest.
func TestSourceParity(t *testing.T) {
	ids, recs := simTrace(t)

	ref := replay(t, ids, NewSliceSource(recs))

	var text bytes.Buffer
	if err := WriteTrace(&text, recs); err != nil {
		t.Fatal(err)
	}
	fromTail := replay(t, ids, NewTailSource(&text))

	var wire bytes.Buffer
	if err := WriteWire(&wire, recs); err != nil {
		t.Fatal(err)
	}
	fromWire := replay(t, ids, NewReader(&wire))

	for key, want := range ref {
		if got := fromTail[key]; got != want {
			t.Errorf("tail source: %s = %v, want %v", key, got, want)
		}
		if got := fromWire[key]; got != want {
			t.Errorf("wire source: %s = %v, want %v", key, got, want)
		}
	}
	if ref["~ledger"][1] == 0 {
		t.Log("note: trace contains no failures; parity still holds but is weaker")
	}
}

// TestTailRoundTrip: format → parse is the identity on a simulator trace.
func TestTailRoundTrip(t *testing.T) {
	_, recs := simTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	src := NewTailSource(&buf)
	for i, want := range recs {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("expected EOF after the last record")
	}
}

// TestTailMalformed: bad lines report their position and do not panic.
func TestTailMalformed(t *testing.T) {
	for _, line := range []string{
		"X|t0|1",            // unknown type
		"S|t0|abc|cpu|1",    // bad time
		"S|t0|1|cpu",        // missing value
		"E|t0|1|c|x|0|msg",  // bad type field
		"E|t0|1|c|0|zz|msg", // bad severity
		"F|t0",              // missing time
		"noseparator",
	} {
		if _, skip, err := ParseLine(line); err == nil || skip {
			t.Errorf("ParseLine(%q) = skip=%v err=%v, want error", line, skip, err)
		}
	}
	for _, line := range []string{"", "# comment", "\n", "\r\n"} {
		if _, skip, err := ParseLine(line); err != nil || !skip {
			t.Errorf("ParseLine(%q) = skip=%v err=%v, want skip", line, skip, err)
		}
	}
}

package fleet

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/runtime"
)

// Tenant health states, ordered roughly by how much attention they need.
const (
	StatusIdle    = "idle"    // never saw an event or a failure
	StatusOK      = "ok"      // receiving events, no active warning
	StatusWarning = "warning" // last cycle warned of an impending failure
	StatusStale   = "stale"   // event stream silent past StaleAfter
	StatusFailed  = "failed"  // failure recorded within FailureHold
)

// statusOf derives a tenant's health state at domain time now.
func (f *Fleet) statusOf(tn *tenant, now float64) string {
	if lf := loadTime(&tn.lastFailure); !math.IsNaN(lf) && now-lf <= f.cfg.FailureHold {
		return StatusFailed
	}
	le := loadTime(&tn.lastEvent)
	if tn.events.Load() == 0 {
		return StatusIdle
	}
	if now-le > f.cfg.StaleAfter {
		return StatusStale
	}
	if tn.lastWarned.Load() {
		return StatusWarning
	}
	return StatusOK
}

// TenantView is one tenant's row in the /fleet listing.
type TenantView struct {
	ID          string  `json:"id"`
	Criticality float64 `json:"criticality"`
	Shard       int     `json:"shard"`
	Status      string  `json:"status"`
	Events      int64   `json:"events"`
	Failures    int64   `json:"failures"`
	Warnings    int64   `json:"warnings"`
	Actions     int64   `json:"actions"`
	// LastEventAge is domain seconds since the tenant's newest event; nil
	// while idle.
	LastEventAge *float64 `json:"lastEventAge,omitempty"`
	// Confidence is the last combined-layer confidence; nil before the
	// first cycle (or while abstaining).
	Confidence *float64 `json:"confidence,omitempty"`
	// Versions lists the serving predictor version per layer, in template
	// order.
	Versions []uint64 `json:"versions"`
	// DedicatedLedger is false when the tenant's quality rows are folded
	// into the overflow scope by the cardinality cap.
	DedicatedLedger bool `json:"dedicatedLedger"`
	// DedicatedRecorder is false when the tenant's incident bundles are
	// folded into the overflow recorder by the cardinality cap.
	DedicatedRecorder bool `json:"dedicatedRecorder"`
	// Incidents counts flight-recorder bundles captured on the tenant's
	// scope across all trigger kinds (overflow totals when
	// DedicatedRecorder is false); nil when the fleet runs without a
	// recorder.
	Incidents *int64 `json:"incidents,omitempty"`
	// Quality is the tenant's rolling combined-layer contingency table
	// (from its own scope, or the shared overflow scope when folded);
	// omitted when the fleet runs without a ledger.
	Quality *tableJSON `json:"quality,omitempty"`
}

// tableJSON mirrors the runtime server's contingency rendering: metric
// pointers are nil while their denominator is empty (JSON cannot carry NaN).
type tableJSON struct {
	TP        int      `json:"tp"`
	FP        int      `json:"fp"`
	TN        int      `json:"tn"`
	FN        int      `json:"fn"`
	Precision *float64 `json:"precision,omitempty"`
	Recall    *float64 `json:"recall,omitempty"`
	FPR       *float64 `json:"fpr,omitempty"`
	F1        *float64 `json:"f1,omitempty"`
}

func toTableJSON(c predict.ContingencyTable) tableJSON {
	finite := func(v float64) *float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return &v
	}
	return tableJSON{
		TP: c.TP, FP: c.FP, TN: c.TN, FN: c.FN,
		Precision: finite(c.Precision()), Recall: finite(c.Recall()),
		FPR: finite(c.FPR()), F1: finite(c.FMeasure()),
	}
}

// RollupView is the fleet-wide aggregate in the /fleet response.
type RollupView struct {
	Tenants  int            `json:"tenants"`
	Shards   int            `json:"shards"`
	ByStatus map[string]int `json:"byStatus"`
	// WeightedAvailability is Σ criticality·[tenant not failed] / Σ
	// criticality — the service-criticality availability rollup: losing
	// one critical tenant moves it more than losing several minor ones.
	WeightedAvailability float64 `json:"weightedAvailability"`
	// WeightedF1 is the criticality-weighted mean rolling combined-layer
	// F-measure over tenants whose table has one; nil before any tenant
	// accumulates quality.
	WeightedF1 *float64 `json:"weightedF1,omitempty"`
	// FoldedTenants counts tenants sharing the overflow ledger scope.
	FoldedTenants int64 `json:"foldedTenants"`
	// Incidents is the fleet-wide count of captured incident bundles and
	// IncidentsSuppressed the refractory-suppressed trigger count; both
	// stay 0 when the fleet runs without a recorder.
	Incidents           int64 `json:"incidents"`
	IncidentsSuppressed int64 `json:"incidentsSuppressed"`
	// FoldedRecorderTenants counts tenants sharing the overflow recorder.
	FoldedRecorderTenants int64 `json:"foldedRecorderTenants"`
	Cycles                int64 `json:"cycles"`
	QueueDepth            int   `json:"queueDepth"`
	// Generation is the membership generation; add/remove/resize bump it.
	Generation int64 `json:"generation"`
	// ActBudget echoes the per-cycle countermeasure cap (0 = unlimited);
	// ActionsDeferred counts warn decisions the budget deferred.
	ActBudget         int   `json:"actBudget"`
	ActionsDeferred   int64 `json:"actionsDeferred"`
	EventsRateLimited int64 `json:"eventsRateLimited"`
	EventsHandedOff   int64 `json:"eventsHandedOff"`
}

// Rollup aggregates fleet health at domain time now.
func (f *Fleet) Rollup(now float64) RollupView {
	mem := f.mem.Load()
	r := RollupView{
		Tenants:           len(mem.tenants),
		Shards:            len(mem.shards),
		ByStatus:          make(map[string]int, 5),
		Cycles:            f.cycles.Load(),
		QueueDepth:        f.QueueDepth(),
		Generation:        mem.gen,
		ActBudget:         f.cfg.ActBudget,
		ActionsDeferred:   f.actDeferred.Value(),
		EventsRateLimited: f.ratelimited.Value(),
		EventsHandedOff:   f.handoffN.Value(),
	}
	if f.cfg.Ledger != nil {
		r.FoldedTenants = f.cfg.Ledger.Folded()
	}
	if f.cfg.Recorder != nil {
		for _, k := range obs.TriggerKinds {
			r.Incidents += f.cfg.Recorder.Captured(k)
		}
		r.IncidentsSuppressed = f.cfg.Recorder.Suppressed()
		r.FoldedRecorderTenants = f.cfg.Recorder.Folded()
	}
	var critSum, critUp, f1Sum, f1Crit float64
	for _, tn := range mem.tenants {
		st := f.statusOf(tn, now)
		r.ByStatus[st]++
		critSum += tn.spec.Criticality
		if st != StatusFailed {
			critUp += tn.spec.Criticality
		}
		if tn.led != nil {
			if fm := rollingCombined(tn.led).FMeasure(); !math.IsNaN(fm) {
				f1Sum += fm * tn.spec.Criticality
				f1Crit += tn.spec.Criticality
			}
		}
	}
	if critSum > 0 {
		r.WeightedAvailability = critUp / critSum
	} else {
		r.WeightedAvailability = 1
	}
	if f1Crit > 0 {
		v := f1Sum / f1Crit
		r.WeightedF1 = &v
	}
	return r
}

// rollingCombined extracts the combined layer's rolling table.
func rollingCombined(led *obs.Ledger) predict.ContingencyTable {
	for _, lq := range led.Snapshot().Layers {
		if lq.Layer == obs.CombinedLayer {
			return lq.Rolling
		}
	}
	return predict.ContingencyTable{}
}

// fleetJSON is the /fleet response body.
type fleetJSON struct {
	Rollup  RollupView   `json:"rollup"`
	Tenants []TenantView `json:"tenants"`
}

// view renders one tenant's row.
func (f *Fleet) view(tn *tenant, now float64) TenantView {
	v := TenantView{
		ID:              tn.spec.ID,
		Criticality:     tn.spec.Criticality,
		Shard:           tn.shardIndex(),
		Status:          f.statusOf(tn, now),
		Events:          tn.events.Load(),
		Failures:        tn.failures.Load(),
		Warnings:        tn.warnings.Load(),
		Actions:         tn.actions.Load(),
		Versions:        make([]uint64, len(tn.layers)),
		DedicatedLedger: tn.dedicated,
	}
	if le := loadTime(&tn.lastEvent); !math.IsNaN(le) {
		age := now - le
		v.LastEventAge = &age
	}
	if c := math.Float64frombits(tn.lastConf.Load()); !math.IsNaN(c) && f.cycles.Load() > 0 {
		v.Confidence = &c
	}
	for i, l := range tn.layers {
		v.Versions[i] = l.Version()
	}
	if tn.led != nil {
		t := toTableJSON(rollingCombined(tn.led))
		v.Quality = &t
	}
	if tn.rec != nil {
		v.DedicatedRecorder = tn.recOwn
		var n int64
		for _, k := range obs.TriggerKinds {
			n += tn.rec.Captured(k)
		}
		v.Incidents = &n
	}
	return v
}

// TenantStatus returns one tenant's current row (ok == false for an
// unknown ID).
func (f *Fleet) TenantStatus(tenantID string) (TenantView, bool) {
	tn, ok := f.mem.Load().byID[tenantID]
	if !ok {
		return TenantView{}, false
	}
	return f.view(tn, f.now()), true
}

// serveFleet renders the aggregate fleet plane: the rollup plus every
// tenant row (?tenant=ID narrows to one tenant, ?status=failed filters).
func (f *Fleet) serveFleet(w http.ResponseWriter, req *http.Request) {
	now := f.now()
	mem := f.mem.Load()
	out := fleetJSON{Rollup: f.Rollup(now)}
	if id := req.URL.Query().Get("tenant"); id != "" {
		tn, ok := mem.byID[id]
		if !ok {
			http.Error(w, "unknown tenant", http.StatusNotFound)
			return
		}
		out.Tenants = []TenantView{f.view(tn, now)}
	} else {
		want := req.URL.Query().Get("status")
		out.Tenants = make([]TenantView, 0, len(mem.tenants))
		for _, tn := range mem.tenants {
			v := f.view(tn, now)
			if want == "" || v.Status == want {
				out.Tenants = append(out.Tenants, v)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// health is the /healthz body (same shape as the single runtime's).
type health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Tenants       int     `json:"tenants"`
	Shards        int     `json:"shards"`
	QueueDepth    int     `json:"queueDepth"`
	Cycles        int64   `json:"cycles"`
	// LastCycleAgoSeconds is -1 before the first cycle completes.
	LastCycleAgoSeconds float64 `json:"lastCycleAgoSeconds"`
}

// status derives the fleet pipeline state for readiness/liveness bodies.
func (f *Fleet) status() string {
	switch {
	case f.stopped.Load():
		return "stopped"
	case !f.Running():
		return "draining"
	}
	return "ok"
}

// serveTenants admits a tenant into the running fleet: POST /fleet/tenants
// with a TenantSpec JSON body. 201 on success, 409 for a duplicate ID, 400
// for an invalid spec.
func (f *Fleet) serveTenants(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var spec TenantSpec
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&spec); err != nil {
		http.Error(w, "bad tenant spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := f.AddTenant(spec); err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "duplicate") {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	v, _ := f.TenantStatus(spec.ID)
	_ = json.NewEncoder(w).Encode(v)
}

// serveTenant retires one tenant: DELETE /fleet/tenants/{id}. 200 on
// success, 404 for an unknown ID.
func (f *Fleet) serveTenant(w http.ResponseWriter, req *http.Request) {
	id := strings.TrimPrefix(req.URL.Path, "/fleet/tenants/")
	if req.Method != http.MethodDelete {
		http.Error(w, "DELETE only", http.StatusMethodNotAllowed)
		return
	}
	if id == "" {
		http.Error(w, "missing tenant id", http.StatusBadRequest)
		return
	}
	if err := f.RemoveTenant(id); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrUnknownTenant) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"removed": id})
}

// serveResize changes the shard count: POST /fleet/resize with
// {"shards": N}. The response reports how many queued events the handoff
// re-homed (lifetime total).
func (f *Fleet) serveResize(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<12)).Decode(&body); err != nil {
		http.Error(w, "bad resize body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := f.Resize(body.Shards); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int64{
		"shards":     int64(f.Shards()),
		"generation": f.Generation(),
		"handedOff":  f.handoffN.Value(),
	})
}

// Handler serves the fleet observability and admin plane:
//
//	GET    /fleet              — rollup + per-tenant health/quality/versions
//	                             (?tenant=ID for one row, ?status=S filters)
//	POST   /fleet/tenants      — admit a tenant (TenantSpec JSON body)
//	DELETE /fleet/tenants/{id} — retire a tenant (backlog shed, scopes freed)
//	POST   /fleet/resize       — change the shard count ({"shards": N})
//	GET    /metrics            — Prometheus text exposition
//	GET    /healthz            — JSON readiness (503 once draining/stopped);
//	                             /readyz is an alias
//	GET    /livez              — JSON liveness (200 for the process's life)
//	GET    /tracez             — slowest end-to-end spans (with Config.Tracer)
//	GET    /incidents          — flight-recorder bundles across tenants
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", f.serveFleet)
	mux.HandleFunc("/fleet/tenants", f.serveTenants)
	mux.HandleFunc("/fleet/tenants/", f.serveTenant)
	mux.HandleFunc("/fleet/resize", f.serveResize)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = f.metrics.WritePrometheus(w)
	})
	ready := func(w http.ResponseWriter, _ *http.Request) {
		mem := f.mem.Load()
		h := health{
			Status:              f.status(),
			UptimeSeconds:       f.Uptime().Seconds(),
			Tenants:             len(mem.tenants),
			Shards:              len(mem.shards),
			QueueDepth:          f.QueueDepth(),
			Cycles:              f.cycles.Load(),
			LastCycleAgoSeconds: -1,
		}
		if last := f.lastCycle.Load(); last != 0 {
			h.LastCycleAgoSeconds = time.Since(time.Unix(0, last)).Seconds()
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	}
	mux.HandleFunc("/healthz", ready)
	mux.HandleFunc("/readyz", ready)
	mux.HandleFunc("/livez", func(w http.ResponseWriter, _ *http.Request) {
		runtime.ServeLiveness(w, f.status())
	})
	if f.cfg.Recorder != nil {
		mux.HandleFunc("/incidents", func(w http.ResponseWriter, req *http.Request) {
			runtime.ServeIncidents(w, req, f.cfg.Recorder.Bundles, f.cfg.Recorder.Bundle)
		})
	}
	if f.cfg.Tracer != nil {
		mux.HandleFunc("/tracez", func(w http.ResponseWriter, req *http.Request) {
			n := 20
			if v, err := strconv.Atoi(req.URL.Query().Get("n")); err == nil && v > 0 {
				n = v
			}
			traces := f.cfg.Tracer.Slowest(n)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = obs.WriteText(w, traces, func(k uint8) string {
				switch runtime.EventKind(k) {
				case runtime.KindError:
					return "error"
				case runtime.KindSample:
					return "sample"
				default:
					return strconv.Itoa(int(k))
				}
			})
		})
	}
	return mux
}

// Serve starts the fleet observability server on addr (":0" picks a free
// port); shut it down with srv.Shutdown or srv.Close.
func (f *Fleet) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: f.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

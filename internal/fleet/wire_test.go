package fleet

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/runtime"
)

// decodeAll drains a wire stream, returning the records up to the first
// error (io.EOF counts as clean).
func decodeAll(data []byte) ([]Record, error) {
	r := NewReader(bytes.NewReader(data))
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// wireSampleTrace exercises every frame type, dictionary reuse, unicode,
// empty strings, and non-finite floats.
func wireSampleTrace() []Record {
	return []Record{
		{Event: Event{Tenant: "t0000", Kind: runtime.KindSample, Time: 1.5, Variable: "cpu", Value: 0.25}},
		{Event: Event{Tenant: "t0001", Kind: runtime.KindSample, Time: 2, Variable: "cpu", Value: math.Inf(1)}},
		{Event: Event{Tenant: "t0000", Kind: runtime.KindSample, Time: 2.5, Variable: "mem_free", Value: -1e308}},
		{Event: Event{Tenant: "t0000", Kind: runtime.KindError, Time: 3,
			Error: eventlog.Event{Time: 3, Component: "db", Type: 7, Severity: 2, Message: "läuft nicht"}}},
		{Event: Event{Tenant: "t0001", Kind: runtime.KindError, Time: 4,
			Error: eventlog.Event{Time: 4, Component: "", Type: 0, Severity: 0, Message: ""}}},
		{Failure: true, Event: Event{Tenant: "t0001", Time: 5}},
		{Event: Event{Tenant: "t0000", Kind: runtime.KindSample, Time: 6, Variable: "cpu", Value: math.NaN()}},
	}
}

// recordEqual compares records with NaN-tolerant float equality.
func recordEqual(a, b Record) bool {
	feq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a.Failure == b.Failure &&
		a.Event.Tenant == b.Event.Tenant &&
		a.Event.Kind == b.Event.Kind &&
		feq(a.Event.Time, b.Event.Time) &&
		a.Event.Variable == b.Event.Variable &&
		feq(a.Event.Value, b.Event.Value) &&
		a.Event.Error.Component == b.Event.Error.Component &&
		a.Event.Error.Type == b.Event.Error.Type &&
		a.Event.Error.Severity == b.Event.Error.Severity &&
		a.Event.Error.Message == b.Event.Error.Message &&
		feq(a.Event.Error.Time, b.Event.Error.Time)
}

// TestWireRoundTrip: encode → decode is the identity, and the dictionary
// makes repeats cheap.
func TestWireRoundTrip(t *testing.T) {
	trace := wireSampleTrace()
	var buf bytes.Buffer
	if err := WriteWire(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := decodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("decoded %d of %d records", len(got), len(trace))
	}
	for i := range trace {
		if !recordEqual(got[i], trace[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], trace[i])
		}
	}
	// Dictionary amortization: a second sample of a known tenant+variable
	// costs two varints + two floats + the frame byte.
	small := []Record{
		{Event: Event{Tenant: "t", Kind: runtime.KindSample, Time: 1, Variable: "v", Value: 1}},
		{Event: Event{Tenant: "t", Kind: runtime.KindSample, Time: 2, Variable: "v", Value: 2}},
	}
	var b2 bytes.Buffer
	if err := WriteWire(&b2, small); err != nil {
		t.Fatal(err)
	}
	// magic(4) + defs(2×4) + 2 sample frames (1+1+1+16 each).
	if want := 4 + 8 + 2*19; b2.Len() != want {
		t.Errorf("encoded size %d, want %d (dictionary not amortizing?)", b2.Len(), want)
	}
}

// TestWireMalformed: corrupt streams error without panicking and without
// huge allocations.
func TestWireMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteWire(&buf, wireSampleTrace()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"empty":              {},
		"short magic":        []byte("PFW"),
		"bad magic":          []byte("XXXX\x03\x00\x00"),
		"unknown frame":      []byte("PFW1\xff"),
		"undefined tenant":   []byte("PFW1\x05\x09\x00\x00\x00\x00\x00\x00\x00\x00"),
		"undefined variable": []byte("PFW1\x01\x00\x02t0\x03\x00\x07"),
		"out-of-order def":   []byte("PFW1\x01\x05\x02t0"),
		"truncated def":      []byte("PFW1\x01\x00\x10abc"),
		"huge string length": append([]byte("PFW1\x01\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f),
		"truncated float":    []byte("PFW1\x01\x00\x02t0\x05\x00\x01\x02"),
		"truncated mid":      valid[:len(valid)-3],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeAll(data); err == nil {
				t.Fatalf("decodeAll accepted %q", name)
			}
		})
	}
	// A valid prefix still yields its records before the error.
	recs, err := decodeAll(valid[:len(valid)-3])
	if err == nil || len(recs) == 0 {
		t.Fatalf("truncated stream: records=%d err=%v; want partial decode + error", len(recs), err)
	}
}

// FuzzWireDecode: the decoder must never panic, hang, or over-allocate on
// arbitrary input — it either yields records or returns an error. Run
// long-form with: go test -fuzz FuzzWireDecode ./internal/fleet/
func FuzzWireDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteWire(&buf, wireSampleTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("PFW1"))
	f.Add([]byte("PFW1\x01\x00\x02t0\x05\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("PFW1\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeAll(data)
		if err != nil {
			return
		}
		// Clean decodes must carry dictionary-resolved strings within the
		// length cap (anything bigger means the cap check is broken).
		for _, r := range recs {
			if len(r.Event.Tenant) > maxWireString ||
				len(r.Event.Variable) > maxWireString ||
				len(r.Event.Error.Message) > maxWireString {
				t.Fatalf("decoded string exceeds cap: %+v", r)
			}
		}
	})
}

package fleet

import (
	"context"
	"fmt"
	"math"
	stdruntime "runtime"
	"strings"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// deterministicTrace builds a fixed multi-tenant workload: every tenant's
// sub-stream is a pure function of its index, with a few failures mixed in.
func deterministicTrace(ids []string, perTenant int) []Record {
	var recs []Record
	for seq := 0; seq < perTenant; seq++ {
		for i, id := range ids {
			t := float64(seq)
			v := 0.5 + 0.5*math.Sin(float64(i+1)*t/7)
			recs = append(recs, Record{Event: sample(id, t, v)})
			if seq%17 == i {
				recs = append(recs, Record{Event: Event{
					Tenant: id, Kind: runtime.KindError, Time: t,
					Error: eventlogEvent(t, i, seq),
				}})
			}
			if seq == perTenant/2 && i%3 == 0 {
				recs = append(recs, Record{Failure: true, Event: Event{Tenant: id, Time: t + 30}})
			}
		}
	}
	return recs
}

// fleetFingerprint replays the trace through a fleet built with the given
// concurrency shape and returns a digest of every observable outcome:
// per-tenant counters, decision confidences (exact bits), and per-scope
// ledger tables.
func fleetFingerprint(t *testing.T, shards, workers, batchSize int, useBatch bool) string {
	t.Helper()
	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%02d", i)
	}
	clock := newTestClock(0)
	led, err := obs.NewScopedLedger(obs.LedgerConfig{LeadTime: 300, Slack: 60}, 8, "load")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testFleetConfig(specs(ids...), clock)
	cfg.Shards = shards
	cfg.Workers = workers
	cfg.BatchSize = batchSize
	cfg.Ledger = led
	cfg.JournalLayers = true
	if useBatch {
		cfg.Layers = []LayerTemplate{{
			Name: "load", Threshold: 0.5,
			ScoreBatch: func(states []TenantState, now float64, out []float64) error {
				for i, st := range states {
					s, err := meanScore(st, now)
					if err != nil {
						return err
					}
					out[i] = s
				}
				return nil
			},
		}}
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	trace := deterministicTrace(ids, 60)
	// Two rounds: half the trace, a cycle, the rest, two more cycles.
	half := len(trace) / 2
	for _, stage := range []struct {
		recs []Record
		now  float64
	}{
		{trace[:half], 30}, {trace[half:], 60},
	} {
		if _, err := Pump(ctx, f, NewSliceSource(stage.recs)); err != nil {
			t.Fatal(err)
		}
		if err := f.Barrier(ctx); err != nil {
			t.Fatal(err)
		}
		clock.Set(stage.now)
		f.EvaluateCycle()
	}
	clock.Set(500)
	f.EvaluateCycle()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	return digestFleet(t, f, led, ids)
}

// digestFleet renders every observable outcome of a finished fleet — the
// byte-identical comparison unit of the determinism and churn-parity tests.
func digestFleet(t *testing.T, f *Fleet, led *obs.ScopedLedger, ids []string) string {
	t.Helper()
	var b strings.Builder
	for _, id := range ids {
		v, ok := f.TenantStatus(id)
		if !ok {
			t.Fatalf("tenant %s missing", id)
		}
		conf := float64(0)
		if v.Confidence != nil {
			conf = *v.Confidence
		}
		fmt.Fprintf(&b, "%s ev=%d warn=%d act=%d fail=%d st=%s conf=%016x\n",
			id, v.Events, v.Warnings, v.Actions, v.Failures, v.Status, math.Float64bits(conf))
	}
	for _, scope := range led.Scopes() {
		snap := led.Scope(scope).Snapshot()
		fmt.Fprintf(&b, "scope %s preds=%d fails=%d", scope, snap.Predictions, snap.Failures)
		for _, lq := range snap.Layers {
			fmt.Fprintf(&b, " %s=[%d %d %d %d|%d]",
				lq.Layer, lq.Cumulative.TP, lq.Cumulative.FP, lq.Cumulative.TN, lq.Cumulative.FN, lq.Pending)
		}
		b.WriteString("\n")
	}
	preds, fails := led.Totals()
	fmt.Fprintf(&b, "totals %d %d folded %d\n", preds, fails, led.Folded())
	return b.String()
}

func eventlogEvent(t float64, i, seq int) eventlog.Event {
	return eventlog.Event{
		Time:      t,
		Component: fmt.Sprintf("comp-%d", i%4),
		Type:      seq % 5,
		Severity:  eventlog.Severity(seq % 3),
		Message:   fmt.Sprintf("fault %d/%d", i, seq),
	}
}

// TestFleetDeterministicAcrossShapes: the fingerprint is byte-identical
// across shard counts, worker counts, batch sizes, batched-vs-scalar
// scoring, and GOMAXPROCS — the internal/par contract extended to the
// fleet runtime. Consistent-hash routing guarantees the same tenant →
// shard placement; index-addressed scoring and disjoint per-tenant act
// state guarantee the same cycle outcomes.
func TestFleetDeterministicAcrossShapes(t *testing.T) {
	ref := fleetFingerprint(t, 1, 1, 1, false)
	shapes := []struct {
		shards, workers, batch int
		useBatch               bool
	}{
		{1, 4, 8, false},
		{4, 1, 64, false},
		{4, 4, 8, true},
		{7, 3, 1, true},
		{3, 8, 64, true},
	}
	for _, s := range shapes {
		got := fleetFingerprint(t, s.shards, s.workers, s.batch, s.useBatch)
		if got != ref {
			t.Errorf("shape %+v diverged:\n--- ref ---\n%s--- got ---\n%s", s, ref, got)
		}
	}
	// And under a different GOMAXPROCS.
	old := stdruntime.GOMAXPROCS(2)
	defer stdruntime.GOMAXPROCS(old)
	if got := fleetFingerprint(t, 4, 4, 8, true); got != ref {
		t.Errorf("GOMAXPROCS=2 diverged:\n--- ref ---\n%s--- got ---\n%s", ref, got)
	}
}

package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/eventlog"
	"repro/internal/runtime"
)

// Text line protocol: one record per line, pipe-separated — the shape of a
// syslog/sadc-style collector feed. Three record types:
//
//	E|tenant|time|component|type|severity|message   error-log event
//	S|tenant|time|variable|value                    monitoring sample
//	F|tenant|time                                   ground-truth failure
//
// Message is the trailing field of E and may not contain '|' or newlines
// (the same restriction eventlog.Log enforces). Blank lines and lines
// starting with '#' are skipped.

// FormatRecord renders one record as a protocol line (no newline).
func FormatRecord(r Record) string {
	ev := r.Event
	if r.Failure {
		return fmt.Sprintf("F|%s|%g", ev.Tenant, ev.Time)
	}
	if ev.Kind == runtime.KindError {
		return fmt.Sprintf("E|%s|%g|%s|%d|%d|%s",
			ev.Tenant, ev.Time, ev.Error.Component, ev.Error.Type,
			int(ev.Error.Severity), ev.Error.Message)
	}
	return fmt.Sprintf("S|%s|%g|%s|%g", ev.Tenant, ev.Time, ev.Variable, ev.Value)
}

// WriteTrace writes records as protocol lines.
func WriteTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := bw.WriteString(FormatRecord(r)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseLine decodes one protocol line (skip == true for blanks/comments).
func ParseLine(line string) (rec Record, skip bool, err error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" || strings.HasPrefix(line, "#") {
		return Record{}, true, nil
	}
	// Message may not contain '|', so a fixed SplitN per type is exact.
	kind, rest, ok := strings.Cut(line, "|")
	if !ok {
		return Record{}, false, badRecord("line %q: no fields", line)
	}
	switch kind {
	case "F":
		f := strings.Split(rest, "|")
		if len(f) != 2 {
			return Record{}, false, badRecord("F line: want 2 fields, got %d", len(f))
		}
		t, err := parseTime(f[1])
		if err != nil {
			return Record{}, false, err
		}
		return Record{Failure: true, Event: Event{Tenant: f[0], Time: t}}, false, nil
	case "S":
		f := strings.Split(rest, "|")
		if len(f) != 4 {
			return Record{}, false, badRecord("S line: want 4 fields, got %d", len(f))
		}
		t, err := parseTime(f[1])
		if err != nil {
			return Record{}, false, err
		}
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return Record{}, false, badRecord("S line value %q: %v", f[3], err)
		}
		return Record{Event: Event{
			Tenant: f[0], Kind: runtime.KindSample, Time: t, Variable: f[2], Value: v,
		}}, false, nil
	case "E":
		f := strings.SplitN(rest, "|", 6)
		if len(f) != 6 {
			return Record{}, false, badRecord("E line: want 6 fields, got %d", len(f))
		}
		t, err := parseTime(f[1])
		if err != nil {
			return Record{}, false, err
		}
		typ, err := strconv.Atoi(f[3])
		if err != nil {
			return Record{}, false, badRecord("E line type %q: %v", f[3], err)
		}
		sev, err := strconv.Atoi(f[4])
		if err != nil {
			return Record{}, false, badRecord("E line severity %q: %v", f[4], err)
		}
		return Record{Event: Event{
			Tenant: f[0], Kind: runtime.KindError, Time: t,
			Error: eventlog.Event{
				Time: t, Component: f[2], Type: typ,
				Severity: eventlog.Severity(sev), Message: f[5],
			},
		}}, false, nil
	default:
		return Record{}, false, badRecord("unknown record type %q", kind)
	}
}

func parseTime(s string) (float64, error) {
	t, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, badRecord("bad time %q: %v", s, err)
	}
	return t, nil
}

// TailSource reads protocol lines from a stream. With Follow set it tails
// a growing file: at EOF it polls until more bytes appear (the reader-side
// half of a log-shipping pipe) instead of returning io.EOF. Sources opened
// with OpenTail also survive log rotation while following: an in-place
// truncation (copytruncate) rewinds to the new top, and a rename-and-
// recreate rotation reopens the fresh file at path — the tail keeps
// flowing instead of silently stalling on the old inode.
type TailSource struct {
	r       *bufio.Reader
	closer  io.Closer
	fh      *os.File // set by OpenTail; enables rotation detection
	path    string
	offset  int64 // bytes consumed from the current file
	line    int
	partial string // bytes of an unterminated line seen so far

	// Follow keeps polling at EOF instead of ending the trace.
	Follow bool
	// Poll is the follow-mode retry interval (default 50ms).
	Poll time.Duration
	// Stop ends a follow when closed (optional).
	Stop <-chan struct{}
}

// NewTailSource reads from r.
func NewTailSource(r io.Reader) *TailSource {
	return &TailSource{r: bufio.NewReader(r)}
}

// OpenTail opens path as a TailSource (caller sets Follow as needed; Close
// releases the file).
func OpenTail(path string) (*TailSource, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ts := NewTailSource(fh)
	ts.closer = fh
	ts.fh = fh
	ts.path = path
	return ts, nil
}

// Close releases the underlying file (no-op for plain readers).
func (s *TailSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// Next returns the next decoded record. A malformed line is reported with
// its line number; the stream position advances past it, so callers may
// skip the error and keep calling Next.
func (s *TailSource) Next() (Record, error) {
	for {
		chunk, err := s.r.ReadString('\n')
		s.partial += chunk
		s.offset += int64(len(chunk))
		switch {
		case err == nil:
			// A complete line is buffered in partial.
		case err == io.EOF && s.Follow:
			// The line is (still) unterminated; wait for the writer.
			if werr := s.waitMore(); werr != nil {
				return Record{}, werr
			}
			continue
		case err == io.EOF:
			if s.partial == "" {
				return Record{}, io.EOF
			}
			// Final unterminated line of a finished file: parse it; the
			// next call returns io.EOF.
		default:
			return Record{}, err
		}
		line := s.partial
		s.partial = ""
		s.line++
		rec, skip, perr := ParseLine(line)
		if perr != nil {
			return Record{}, fmt.Errorf("line %d: %w", s.line, perr)
		}
		if skip {
			continue
		}
		return rec, nil
	}
}

// waitMore sleeps one poll interval (or ends the follow via Stop), then
// checks for log rotation on file-backed sources.
func (s *TailSource) waitMore() error {
	poll := s.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	select {
	case <-s.Stop:
		return io.EOF
	case <-time.After(poll):
	}
	s.checkRotate()
	return nil
}

// checkRotate handles both rotation styles at EOF: a file shorter than
// what was already consumed means an in-place truncation (rewind and
// restart), and a path whose inode no longer matches the open handle means
// rename-and-recreate (reopen the new file). Either way the accumulated
// partial line belonged to the old incarnation and is discarded. Errors
// (e.g. the new file not created yet) leave the tail polling as before.
func (s *TailSource) checkRotate() {
	if s.fh == nil {
		return
	}
	st, err := s.fh.Stat()
	if err == nil && st.Size() < s.offset {
		if _, err := s.fh.Seek(0, io.SeekStart); err == nil {
			s.r.Reset(s.fh)
			s.offset = 0
			s.partial = ""
			s.line = 0
		}
		return
	}
	pst, perr := os.Stat(s.path)
	if err != nil || perr != nil || os.SameFile(st, pst) {
		return
	}
	nfh, err := os.Open(s.path)
	if err != nil {
		return
	}
	_ = s.fh.Close()
	s.fh = nfh
	s.closer = nfh
	s.r.Reset(nfh)
	s.offset = 0
	s.partial = ""
	s.line = 0
}

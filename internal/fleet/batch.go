package fleet

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
)

// LayerTemplate describes one prediction layer shared by every tenant.
// Each tenant gets its own core.Layer instance (own version, error
// counters, and — when Predictor is supplied — own retrainable predictor),
// but the scoring function is fleet-wide so a batch scorer can amortize
// model overhead across tenants.
type LayerTemplate struct {
	// Name is the layer's ledger/journal identity ("os", "application", …).
	Name string
	// Threshold is the per-layer decision boundary (score ≥ Threshold
	// votes failure-prone).
	Threshold float64
	// Score evaluates one tenant. Optional when ScoreBatch is set (a
	// single-tenant fallback is synthesized for the per-tenant engines).
	Score func(st TenantState, now float64) (float64, error)
	// ScoreBatch evaluates a chunk of tenants in one call — e.g. gather
	// each tenant's feature row and run ubf's PredictRowsInto once per
	// chunk (see NewRowScorer). out is index-aligned with states; a
	// returned error abstains the whole chunk (every score NaN).
	ScoreBatch func(states []TenantState, now float64, out []float64) error
	// NewPredictor optionally builds a per-tenant retrainable predictor
	// installed as the layer's serving handle (enables lifecycle
	// retrain/hot-swap for that tenant). Nil wraps Score.
	NewPredictor func(st TenantState) core.LayerPredictor
}

// instantiate builds one tenant's core.Layer from the template.
func (tmpl LayerTemplate) instantiate(st TenantState) *core.Layer {
	l := &core.Layer{Name: tmpl.Name, Threshold: tmpl.Threshold}
	if tmpl.NewPredictor != nil {
		l.Predictor = tmpl.NewPredictor(st)
	}
	score := tmpl.Score
	if score == nil {
		batch := tmpl.ScoreBatch
		score = func(st TenantState, now float64) (float64, error) {
			var out [1]float64
			if err := batch([]TenantState{st}, now, out[:]); err != nil {
				return math.NaN(), err
			}
			return out[0], nil
		}
	}
	l.Evaluate = func(now float64) (float64, error) { return score(st, now) }
	return l
}

// RowModel scores a matrix of feature rows in one call. *ubf.Network
// satisfies it.
type RowModel interface {
	PredictRowsInto(m *mat.Matrix, out []float64) error
}

// NewRowScorer adapts a shared row model into a ScoreBatch: features
// extracts one tenant's feature row (length must equal cols), the chunk's
// rows are packed into one matrix, and the model scores them in a single
// pass — the cross-tenant batching that keeps per-event fleet cost close
// to the single-tenant runtime's.
//
// A tenant whose features returns an error abstains alone (NaN) without
// failing the chunk; rows excluded this way are scored as zero vectors
// internally but their outputs are overwritten with NaN.
func NewRowScorer(model RowModel, cols int, features func(st TenantState, now float64, row []float64) error) (func([]TenantState, float64, []float64) error, error) {
	if model == nil || cols < 1 || features == nil {
		return nil, fmt.Errorf("%w: row scorer needs a model, cols >= 1, and a feature extractor", ErrFleet)
	}
	return func(states []TenantState, now float64, out []float64) error {
		if len(states) == 0 {
			return nil
		}
		m := mat.New(len(states), cols)
		bad := make([]bool, len(states))
		for i, st := range states {
			if err := features(st, now, m.Data[i*cols:(i+1)*cols]); err != nil {
				bad[i] = true
			}
		}
		if err := model.PredictRowsInto(m, out[:len(states)]); err != nil {
			return err
		}
		for i := range states {
			if bad[i] {
				out[i] = math.NaN()
			}
		}
		return nil
	}, nil
}

package fleet

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"

	"repro/internal/eventlog"
	"repro/internal/runtime"
)

// Compact binary wire format for multi-tenant traces — the line-rate
// replay path. Layout:
//
//	magic "PFW1" (4 bytes), then a frame stream. Every frame starts with a
//	one-byte type; integers are unsigned varints, floats are 8-byte
//	little-endian IEEE 754.
//
//	0x01 defTenant: id, len, bytes     — dictionary: tenant id → string
//	0x02 defVar:    id, len, bytes     — dictionary: variable id → string
//	0x03 sample:    tenantID, varID, time f64, value f64
//	0x04 error:     tenantID, time f64, type, severity u8, complen,
//	                component bytes, msglen, message bytes
//	0x05 failure:   tenantID, time f64
//
// Writers emit a def frame the first time a tenant or variable appears, so
// hot tenants cost two varints + two floats per sample instead of repeating
// their name. Readers reject unknown frame types, undefined dictionary ids,
// truncation, and absurd lengths — and never panic on malformed input
// (fuzz-verified, see FuzzWireDecode).

// WireMagic prefixes every wire-format trace.
const WireMagic = "PFW1"

const (
	frameDefTenant = 0x01
	frameDefVar    = 0x02
	frameSample    = 0x03
	frameError     = 0x04
	frameFailure   = 0x05
)

// maxWireString caps dictionary/message lengths — far above any real
// payload, low enough that a corrupt length cannot drive a huge allocation.
const maxWireString = 1 << 20

// Writer encodes records into the wire format.
type Writer struct {
	w       *bufio.Writer
	tenants map[string]uint64
	vars    map[string]uint64
	scratch [binary.MaxVarintLen64]byte
	err     error
}

// NewWriter starts a wire-format stream on w (the magic is written
// immediately; check Flush for the final error).
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	wr := &Writer{w: bw, tenants: make(map[string]uint64), vars: make(map[string]uint64)}
	_, wr.err = bw.WriteString(WireMagic)
	return wr
}

func (w *Writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], v)
	_, w.err = w.w.Write(w.scratch[:n])
}

func (w *Writer) f64(v float64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, w.err = w.w.Write(buf[:])
}

func (w *Writer) byte1(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(b)
}

func (w *Writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

// internID returns the dictionary id for name, emitting a def frame on
// first use.
func (w *Writer) internID(dict map[string]uint64, frame byte, name string) uint64 {
	if id, ok := dict[name]; ok {
		return id
	}
	id := uint64(len(dict))
	dict[name] = id
	w.byte1(frame)
	w.uvarint(id)
	w.str(name)
	return id
}

// Write encodes one record.
func (w *Writer) Write(rec Record) error {
	ev := rec.Event
	tid := w.internID(w.tenants, frameDefTenant, ev.Tenant)
	switch {
	case rec.Failure:
		w.byte1(frameFailure)
		w.uvarint(tid)
		w.f64(ev.Time)
	case ev.Kind == runtime.KindError:
		w.byte1(frameError)
		w.uvarint(tid)
		w.f64(ev.Time)
		w.uvarint(uint64(ev.Error.Type))
		w.byte1(byte(ev.Error.Severity))
		w.str(ev.Error.Component)
		w.str(ev.Error.Message)
	default:
		vid := w.internID(w.vars, frameDefVar, ev.Variable)
		w.byte1(frameSample)
		w.uvarint(tid)
		w.uvarint(vid)
		w.f64(ev.Time)
		w.f64(ev.Value)
	}
	return w.err
}

// Flush drains the buffer and returns the first write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteWire encodes a whole trace.
func WriteWire(w io.Writer, recs []Record) error {
	wr := NewWriter(w)
	for _, r := range recs {
		if err := wr.Write(r); err != nil {
			return err
		}
	}
	return wr.Flush()
}

// Reader decodes a wire-format trace as a Source.
type Reader struct {
	r       *bufio.Reader
	tenants []string
	vars    []string
	started bool
}

// NewReader decodes the stream (the magic is checked on the first Next).
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, badRecord("wire: truncated varint: %v", err)
	}
	return v, nil
}

func (r *Reader) f64() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		return 0, badRecord("wire: truncated float: %v", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (r *Reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxWireString {
		return "", badRecord("wire: string length %d exceeds cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", badRecord("wire: truncated string: %v", err)
	}
	return string(buf), nil
}

// lookup resolves a dictionary id.
func lookup(dict []string, id uint64, what string) (string, error) {
	if id >= uint64(len(dict)) {
		return "", badRecord("wire: undefined %s id %d", what, id)
	}
	return dict[id], nil
}

// define appends a dictionary entry; ids must arrive densely in order (the
// writer's allocation scheme), which makes corrupt streams fail fast.
func (r *Reader) define(dict *[]string, what string) error {
	id, err := r.uvarint()
	if err != nil {
		return err
	}
	if id != uint64(len(*dict)) {
		return badRecord("wire: %s id %d out of order (want %d)", what, id, len(*dict))
	}
	s, err := r.str()
	if err != nil {
		return err
	}
	*dict = append(*dict, s)
	return nil
}

// Next decodes the next record (io.EOF cleanly at end of stream).
func (r *Reader) Next() (Record, error) {
	if !r.started {
		var magic [4]byte
		if _, err := io.ReadFull(r.r, magic[:]); err != nil {
			return Record{}, badRecord("wire: missing magic: %v", err)
		}
		if string(magic[:]) != WireMagic {
			return Record{}, badRecord("wire: bad magic %q", magic[:])
		}
		r.started = true
	}
	for {
		frame, err := r.r.ReadByte()
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, err
		}
		switch frame {
		case frameDefTenant:
			if err := r.define(&r.tenants, "tenant"); err != nil {
				return Record{}, err
			}
		case frameDefVar:
			if err := r.define(&r.vars, "variable"); err != nil {
				return Record{}, err
			}
		case frameSample:
			tid, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			vid, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			tenant, err := lookup(r.tenants, tid, "tenant")
			if err != nil {
				return Record{}, err
			}
			variable, err := lookup(r.vars, vid, "variable")
			if err != nil {
				return Record{}, err
			}
			t, err := r.f64()
			if err != nil {
				return Record{}, err
			}
			v, err := r.f64()
			if err != nil {
				return Record{}, err
			}
			return Record{Event: Event{
				Tenant: tenant, Kind: runtime.KindSample, Time: t, Variable: variable, Value: v,
			}}, nil
		case frameError:
			tid, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			tenant, err := lookup(r.tenants, tid, "tenant")
			if err != nil {
				return Record{}, err
			}
			t, err := r.f64()
			if err != nil {
				return Record{}, err
			}
			typ, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			if typ > math.MaxInt32 {
				return Record{}, badRecord("wire: error type %d out of range", typ)
			}
			sev, err := r.r.ReadByte()
			if err != nil {
				return Record{}, badRecord("wire: truncated severity: %v", err)
			}
			comp, err := r.str()
			if err != nil {
				return Record{}, err
			}
			msg, err := r.str()
			if err != nil {
				return Record{}, err
			}
			return Record{Event: Event{
				Tenant: tenant, Kind: runtime.KindError, Time: t,
				Error: eventlog.Event{
					Time: t, Component: comp, Type: int(typ),
					Severity: eventlog.Severity(sev), Message: msg,
				},
			}}, nil
		case frameFailure:
			tid, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			tenant, err := lookup(r.tenants, tid, "tenant")
			if err != nil {
				return Record{}, err
			}
			t, err := r.f64()
			if err != nil {
				return Record{}, err
			}
			return Record{Failure: true, Event: Event{Tenant: tenant, Time: t}}, nil
		default:
			return Record{}, badRecord("wire: unknown frame type 0x%02x", frame)
		}
	}
}

var _ Source = (*Reader)(nil)
var _ Source = (*TailSource)(nil)
var _ Source = (*SliceSource)(nil)

package fleet

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// ListenSource accepts tenant traces over TCP and yields them as a Source —
// the fleet's network ingest edge. Each connection speaks either of the two
// existing trace encodings, auto-detected from its first bytes:
//
//   - the PFW1 binary wire format (the stream starts with the magic), or
//   - the text line protocol (E|/S|/F| lines).
//
// Every connection decodes independently with its own buffers; frames from
// concurrent connections interleave at record granularity. Backpressure is
// end-to-end: Next hands records to the caller's Pump, Pump blocks in
// Ingest under the fleet's overflow policy, the per-source channel fills,
// the connection goroutine stops reading, and TCP flow control pushes back
// on the sender — a slow fleet slows the senders instead of buffering
// unboundedly.
//
// The decoders never panic on malformed input (fuzz-verified, see
// FuzzListenDecode): a corrupt binary stream ends its connection at the
// first bad frame; a malformed text line is counted and skipped, matching
// TailSource's recoverable-error stance.
type ListenSource struct {
	ln   net.Listener
	recs chan Record
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	conns      atomic.Int64 // connections accepted
	decodeErrs atomic.Int64 // malformed text lines skipped + streams aborted
}

// Listen starts a trace listener on addr (":0" picks a free port). Drive it
// with Pump like any other Source; Close stops accepting and unblocks Next.
func Listen(addr string) (*ListenSource, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &ListenSource{
		ln:   ln,
		recs: make(chan Record, 256),
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *ListenSource) Addr() string { return s.ln.Addr().String() }

// Conns returns the number of connections accepted so far.
func (s *ListenSource) Conns() int64 { return s.conns.Load() }

// DecodeErrors returns the number of malformed lines skipped plus binary
// streams aborted.
func (s *ListenSource) DecodeErrors() int64 { return s.decodeErrs.Load() }

// Next yields the next record from any connection; io.EOF after Close.
func (s *ListenSource) Next() (Record, error) {
	select {
	case rec := <-s.recs:
		return rec, nil
	case <-s.stop:
		// Drain records already queued before reporting end-of-stream so a
		// sender's final records are not lost to the close race.
		select {
		case rec := <-s.recs:
			return rec, nil
		default:
			return Record{}, io.EOF
		}
	}
}

// Close stops accepting, ends every connection, and unblocks Next with
// io.EOF once the queued records drain.
func (s *ListenSource) Close() error {
	var err error
	s.once.Do(func() {
		close(s.stop)
		err = s.ln.Close()
	})
	s.wg.Wait()
	return err
}

func (s *ListenSource) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.conns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			// End the read promptly on Close: the conn unblocks with an
			// error instead of waiting for the peer.
			go func() {
				<-s.stop
				conn.Close()
			}()
			if err := decodeStream(conn, s.emit, &s.decodeErrs); err != nil {
				s.decodeErrs.Add(1)
			}
		}()
	}
}

// emit queues one decoded record; false once the source is closing.
func (s *ListenSource) emit(rec Record) bool {
	select {
	case s.recs <- rec:
		return true
	case <-s.stop:
		return false
	}
}

// decodeStream decodes one connection's byte stream: PFW1 binary when the
// magic leads, the text line protocol otherwise. emit returning false stops
// the decode cleanly. badLines counts skipped malformed text lines (nil
// disables counting). The returned error is the stream-fatal decode error,
// if any — never a panic, whatever the input.
func decodeStream(r io.Reader, emit func(Record) bool, badLines *atomic.Int64) error {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(WireMagic)); err == nil && string(magic) == WireMagic {
		wr := NewReader(br)
		for {
			rec, err := wr.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				// A binary stream is stateful (dictionaries): one bad frame
				// poisons everything after it, so the connection ends here.
				return err
			}
			if !emit(rec) {
				return nil
			}
		}
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 4096), maxWireString)
	for sc.Scan() {
		rec, skip, err := ParseLine(sc.Text())
		if err != nil {
			if badLines != nil {
				badLines.Add(1)
			}
			continue
		}
		if skip {
			continue
		}
		if !emit(rec) {
			return nil
		}
	}
	return sc.Err()
}

var _ Source = (*ListenSource)(nil)

package runtime

// Shard routing: events are distributed over the per-shard ingest queues by
// an FNV-1a hash of their shard key. Events with equal keys always land on
// the same shard, so they are applied by one consumer in ingest order;
// events with different keys may apply concurrently on different shards.

// DefaultShardKey is the routing used when Config.ShardKey is nil: samples
// shard by monitoring variable (independent SAR streams apply in parallel),
// while all detected-error events share one key — the error log is a single
// time-ordered stream (eventlog.Log.Append enforces monotonic timestamps),
// so its appends must stay serialized on one shard.
func DefaultShardKey(ev Event) string {
	if ev.Kind == KindSample {
		return ev.Variable
	}
	return "\x00errors"
}

// fnv1a is the 32-bit FNV-1a hash, inlined so routing never allocates.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

package runtime

// Shard routing: events are distributed over the per-shard ingest queues by
// an FNV-1a hash of their shard key. Events with equal keys always land on
// the same shard, so they are applied by one consumer in ingest order;
// events with different keys may apply concurrently on different shards.

// DefaultShardKey is the routing used when Config.ShardKey is nil: samples
// shard by monitoring variable (independent SAR streams apply in parallel),
// while all detected-error events share one key — the error log is a single
// time-ordered stream (eventlog.Log.Append enforces monotonic timestamps),
// so its appends must stay serialized on one shard. Tenant-labeled events
// prefix the key with the tenant ID (unit separator 0x1f cannot appear in
// variable names in practice), so every tenant's streams are ordered
// independently of every other tenant's — the routing contract the fleet
// runtime's consistent-hash ring refines. Events without a tenant keep the
// exact single-tenant keys.
func DefaultShardKey(ev Event) string {
	key := "\x00errors"
	if ev.Kind == KindSample {
		key = ev.Variable
	}
	if ev.Tenant != "" {
		return ev.Tenant + "\x1f" + key
	}
	return key
}

// fnv1a is the 32-bit FNV-1a hash, inlined so routing never allocates.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

package runtime

import (
	"context"
	"errors"
	"sync"
)

// ErrRejected is returned by Ring.Push under OverflowDropNewest when the
// ring is full: the pushed value was not admitted. Wrappers translate it
// into their drop accounting (the runtime and fleet both count the event
// as ingested-then-dropped, so ingested = applied + dropped keeps holding).
var ErrRejected = errors.New("runtime: event rejected by overflow policy")

// Ring is the bounded ingest buffer shared by the single-tenant runtime
// and internal/fleet: a mutex-guarded ring of T drained in chunks by a
// single consumer. It replaces the old channel-per-event queues — a
// channel send costs a scheduler round-trip per event, while the ring
// amortizes one lock acquisition over an entire consumer chunk and keeps
// the producer fast path to one short critical section with no atomics.
//
// Concurrency contract: any number of producers may Push; exactly one
// consumer goroutine calls Drain. Hooks and policy are fixed before the
// first Push. Push requires a non-nil ctx (used only by the Block policy).
//
// Overflow semantics match the channel queues they replace:
//
//   - Block: Push parks until the consumer frees space or ctx is
//     canceled (ctx.Err() returned, value not admitted).
//   - DropOldest: the oldest buffered value is evicted (OnEvict hook) to
//     make room; Push itself never fails. Eviction is exact — it happens
//     under the same lock as admission, with no racing consumer.
//   - DropNewest: Push returns ErrRejected and the value is not admitted.
//
// Close is idempotent. Pushes already parked under Block when Close is
// called still complete as the consumer frees space; Drain keeps
// returning items until the ring is closed, empty, and no pusher is
// parked, then returns 0.
type Ring[T any] struct {
	// OnEvict, when set, runs under the ring lock for every value evicted
	// by DropOldest, in eviction order. It must be fast and must not
	// touch the ring.
	OnEvict func(T)

	mu       sync.Mutex
	notEmpty sync.Cond
	buf      []T
	head     int // index of the oldest buffered value
	count    int
	policy   OverflowPolicy
	closed   bool
	pending  int64 // admitted but not yet Settle()d — the Barrier count
	blocked  int   // producers parked in the Block slow path
	waiters  []chan struct{}
	waiting  bool // consumer parked in Drain
}

// NewRing returns a ring holding up to capacity values of T with the
// given overflow policy. Capacity must be >= 1.
func NewRing[T any](capacity int, policy OverflowPolicy) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	r := &Ring[T]{buf: make([]T, capacity), policy: policy}
	r.notEmpty.L = &r.mu
	return r
}

// Push offers v to the ring. It returns nil when the value was admitted,
// ErrClosed when the ring was already closed, ErrRejected under
// DropNewest on a full ring, or ctx.Err() when a Block wait was canceled.
// Values travel by value — producers stamp anything the drop/trace
// accounting needs before pushing, so a rejected value is fully described
// by the caller's own copy.
func (r *Ring[T]) Push(ctx context.Context, v T) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	for r.count == len(r.buf) {
		switch r.policy {
		case DropNewest:
			r.mu.Unlock()
			return ErrRejected
		case DropOldest:
			old := r.buf[r.head]
			r.head++
			if r.head == len(r.buf) {
				r.head = 0
			}
			r.count--
			r.pending--
			if r.OnEvict != nil {
				r.OnEvict(old)
			}
		default: // OverflowBlock
			w := make(chan struct{})
			r.waiters = append(r.waiters, w)
			r.blocked++
			r.mu.Unlock()
			select {
			case <-w:
				r.mu.Lock()
			case <-ctx.Done():
				r.mu.Lock()
				select {
				case <-w:
					// Woken concurrently with cancellation: we consumed a
					// wake token for a freed slot we will not use — pass
					// it on so another parked producer is not orphaned.
					r.wake(1)
				default:
					r.dropWaiter(w)
				}
				r.blocked--
				if r.waiting {
					// The consumer may be parked waiting for either data
					// or the last blocked pusher to resolve at close.
					r.notEmpty.Signal()
				}
				r.mu.Unlock()
				return ctx.Err()
			}
			r.blocked--
			// Loop: another producer may have taken the freed slot.
		}
	}
	tail := r.head + r.count
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	r.buf[tail] = v
	r.count++
	r.pending++
	if r.waiting {
		r.notEmpty.Signal()
	}
	r.mu.Unlock()
	return nil
}

// Drain copies up to len(buf) of the oldest buffered values into buf and
// returns how many, blocking while the ring is empty. It returns 0 only
// when the ring is closed, empty, and no pusher is parked — the consumer's
// signal to exit. Single consumer only.
func (r *Ring[T]) Drain(buf []T) int {
	r.mu.Lock()
	for r.count == 0 {
		if r.closed && r.blocked == 0 {
			r.mu.Unlock()
			return 0
		}
		r.waiting = true
		r.notEmpty.Wait()
		r.waiting = false
	}
	n := r.count
	if n > len(buf) {
		n = len(buf)
	}
	first := len(r.buf) - r.head
	if first > n {
		first = n
	}
	copy(buf[:first], r.buf[r.head:r.head+first])
	copy(buf[first:n], r.buf[:n-first])
	r.head += n
	if r.head >= len(r.buf) {
		r.head -= len(r.buf)
	}
	r.count -= n
	r.wake(n)
	r.mu.Unlock()
	return n
}

// Settle marks n drained values fully processed (applied or shed),
// releasing them from the Pending count that Barrier watches.
func (r *Ring[T]) Settle(n int) {
	r.mu.Lock()
	r.pending -= int64(n)
	r.mu.Unlock()
}

// Pending reports how many admitted values have not been Settled yet.
// Zero means every value admitted before the call has been fully
// processed.
func (r *Ring[T]) Pending() int64 {
	r.mu.Lock()
	p := r.pending
	r.mu.Unlock()
	return p
}

// Depth reports how many values are buffered right now.
func (r *Ring[T]) Depth() int {
	r.mu.Lock()
	d := r.count
	r.mu.Unlock()
	return d
}

// Capacity reports the fixed ring capacity.
func (r *Ring[T]) Capacity() int { return len(r.buf) }

// Close marks the ring closed: new pushes fail with ErrClosed, parked
// pushes complete as space frees, and Drain returns 0 once everything in
// flight has drained. Idempotent.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.mu.Unlock()
}

// wake releases up to n parked producers. Called with mu held.
func (r *Ring[T]) wake(n int) {
	for n > 0 && len(r.waiters) > 0 {
		last := len(r.waiters) - 1
		close(r.waiters[last])
		r.waiters[last] = nil
		r.waiters = r.waiters[:last]
		n--
	}
}

// dropWaiter removes a canceled producer's wait channel. Called with mu
// held; no-op if the channel was already woken (and thus removed).
func (r *Ring[T]) dropWaiter(w chan struct{}) {
	for i, c := range r.waiters {
		if c == w {
			last := len(r.waiters) - 1
			r.waiters[i] = r.waiters[last]
			r.waiters[last] = nil
			r.waiters = r.waiters[:last]
			return
		}
	}
}

package runtime

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/eventlog"
	"repro/internal/obs"
)

// ErrRuntime is wrapped by all package errors.
var ErrRuntime = errors.New("runtime: invalid operation")

// ErrClosed is returned by Ingest after shutdown has begun.
var ErrClosed = fmt.Errorf("%w: runtime closed", ErrRuntime)

// OverflowPolicy selects what a full ingest queue does with new events.
type OverflowPolicy int

const (
	// Block applies backpressure: Ingest waits for queue space (or
	// context cancellation). No event is ever dropped.
	Block OverflowPolicy = iota
	// DropOldest evicts the oldest queued event to admit the new one —
	// fresh evidence beats stale evidence for online prediction.
	DropOldest
	// DropNewest rejects the incoming event, protecting the backlog —
	// first-come-first-served under pressure.
	DropNewest
)

// String returns the flag token for p.
func (p OverflowPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParsePolicy inverts String.
func ParsePolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "drop-newest":
		return DropNewest, nil
	default:
		return 0, fmt.Errorf("%w: unknown overflow policy %q", ErrRuntime, s)
	}
}

// EventKind discriminates the two monitoring inputs of the paper's case
// study: detected-error reports and periodic SAR-style samples.
type EventKind int

const (
	// KindError is a detected-error report (Sect. 3.1, stage 4).
	KindError EventKind = iota
	// KindSample is one periodic monitoring-variable sample.
	KindSample
)

// Event is one unit of monitoring ingest.
type Event struct {
	Kind EventKind
	// Tenant optionally labels the monitored instance the event came from
	// in multi-tenant deployments (internal/fleet). DefaultShardKey
	// prefixes the routing key with it, so each tenant's error stream and
	// per-variable sample streams stay independently ordered. Empty for
	// single-tenant pipelines — routing is then unchanged.
	Tenant string
	// Time is the domain timestamp [s] (simulation or epoch seconds —
	// whatever clock the runtime's layers evaluate against).
	Time float64
	// Error is set for KindError.
	Error eventlog.Event
	// Variable/Value are set for KindSample.
	Variable string
	Value    float64

	// Trace stamps on the tracer's monotonic clock, carried through the
	// pipeline so the whole span record is published with a single lock
	// acquisition at apply (or drop) time. Only events admitted by the
	// tracer's sampling gate carry stamps — unsampled events skip every
	// clock read.
	traceSampled bool
	traceStart   int64 // Ingest entry
	traceOffered int64 // queue offer (start of queue residency)
}

// traceKey is the routing-key label a trace retains for rendering.
func traceKey(ev Event) string {
	key := ev.Variable
	if ev.Kind == KindError {
		key = "errors"
	}
	if ev.Tenant != "" {
		return ev.Tenant + "/" + key
	}
	return key
}

// queue is the bounded ingest stage: a shared chunk Ring (the same helper
// internal/fleet drains) plus this runtime's drop/trace accounting. Trace
// sampling and stamping happen on the producer side (Runtime.Ingest), so
// every event — admitted, rejected or evicted — already carries the
// stamps its drop record needs when it reaches the ring.
type queue struct {
	ring    *Ring[Event]
	metrics *Metrics
	drops   *Counter    // per-shard drop counter (any reason); may be nil
	tracer  *obs.Tracer // nil disables span tracing
	shard   int
}

func newQueue(capacity int, policy OverflowPolicy, m *Metrics, drops *Counter, tracer *obs.Tracer, shard int) *queue {
	q := &queue{ring: NewRing[Event](capacity, policy), metrics: m, drops: drops, tracer: tracer, shard: shard}
	q.ring.OnEvict = q.evicted
	return q
}

// evicted accounts one DropOldest eviction. Runs under the ring lock.
func (q *queue) evicted(old Event) {
	q.metrics.DroppedOldest.Inc()
	q.dropped()
	q.traceDrop(old)
}

// dropped counts one shed event on this shard alongside the global
// per-reason counters.
func (q *queue) dropped() {
	if q.drops != nil {
		q.drops.Inc()
	}
}

// traceDrop publishes the shed event's partial trace (no-op for unsampled
// events).
func (q *queue) traceDrop(ev Event) {
	if ev.traceSampled && q.tracer != nil {
		q.tracer.PublishDropped(uint8(ev.Kind), traceKey(ev), q.shard,
			ev.traceStart, ev.traceOffered, q.tracer.Now())
	}
}

// depth returns the number of queued events.
func (q *queue) depth() int { return q.ring.Depth() }

// capacity returns the buffer size.
func (q *queue) capacity() int { return q.ring.Capacity() }

// push offers one event under the queue's overflow policy. It returns
// ErrClosed if shutdown has begun (the event is NOT counted ingested) and
// ctx.Err() if a blocked push was canceled (counted ingested + dropped).
// DropNewest rejections are counted but not surfaced as errors, matching
// the policy's contract.
// The event travels by pointer to avoid one more 136-byte copy per call;
// push never retains it, so the caller's copy stays on its stack.
func (q *queue) push(ctx context.Context, ev *Event) error {
	err := q.ring.Push(ctx, *ev)
	switch {
	case err == nil:
		q.metrics.Ingested.Inc()
		return nil
	case errors.Is(err, ErrClosed):
		return ErrClosed
	case errors.Is(err, ErrRejected):
		q.metrics.Ingested.Inc()
		q.metrics.DroppedNewest.Inc()
		q.dropped()
		q.traceDrop(*ev)
		return nil
	default: // canceled Block wait
		q.metrics.Ingested.Inc()
		q.metrics.DroppedCanceled.Inc()
		q.dropped()
		q.traceDrop(*ev)
		return err
	}
}

// close begins shutdown: new pushes are rejected, parked pushes complete
// as the consumer keeps draining, then Drain returns 0 and the consumer
// exits.
func (q *queue) close() { q.ring.Close() }

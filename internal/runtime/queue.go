package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"

	"repro/internal/eventlog"
	"repro/internal/obs"
)

// ErrRuntime is wrapped by all package errors.
var ErrRuntime = errors.New("runtime: invalid operation")

// ErrClosed is returned by Ingest after shutdown has begun.
var ErrClosed = fmt.Errorf("%w: runtime closed", ErrRuntime)

// OverflowPolicy selects what a full ingest queue does with new events.
type OverflowPolicy int

const (
	// Block applies backpressure: Ingest waits for queue space (or
	// context cancellation). No event is ever dropped.
	Block OverflowPolicy = iota
	// DropOldest evicts the oldest queued event to admit the new one —
	// fresh evidence beats stale evidence for online prediction.
	DropOldest
	// DropNewest rejects the incoming event, protecting the backlog —
	// first-come-first-served under pressure.
	DropNewest
)

// String returns the flag token for p.
func (p OverflowPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParsePolicy inverts String.
func ParsePolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "drop-newest":
		return DropNewest, nil
	default:
		return 0, fmt.Errorf("%w: unknown overflow policy %q", ErrRuntime, s)
	}
}

// EventKind discriminates the two monitoring inputs of the paper's case
// study: detected-error reports and periodic SAR-style samples.
type EventKind int

const (
	// KindError is a detected-error report (Sect. 3.1, stage 4).
	KindError EventKind = iota
	// KindSample is one periodic monitoring-variable sample.
	KindSample
)

// Event is one unit of monitoring ingest.
type Event struct {
	Kind EventKind
	// Tenant optionally labels the monitored instance the event came from
	// in multi-tenant deployments (internal/fleet). DefaultShardKey
	// prefixes the routing key with it, so each tenant's error stream and
	// per-variable sample streams stay independently ordered. Empty for
	// single-tenant pipelines — routing is then unchanged.
	Tenant string
	// Time is the domain timestamp [s] (simulation or epoch seconds —
	// whatever clock the runtime's layers evaluate against).
	Time float64
	// Error is set for KindError.
	Error eventlog.Event
	// Variable/Value are set for KindSample.
	Variable string
	Value    float64

	// Trace stamps on the tracer's monotonic clock, carried through the
	// pipeline so the whole span record is published with a single lock
	// acquisition at apply (or drop) time. Only events admitted by the
	// tracer's sampling gate carry stamps — unsampled events skip every
	// clock read.
	traceSampled bool
	traceStart   int64 // Ingest entry
	traceOffered int64 // queue offer (start of queue residency)
}

// traceKey is the routing-key label a trace retains for rendering.
func traceKey(ev Event) string {
	key := ev.Variable
	if ev.Kind == KindError {
		key = "errors"
	}
	if ev.Tenant != "" {
		return ev.Tenant + "/" + key
	}
	return key
}

// queue is the bounded ingest stage: a channel for the buffer (so blocked
// producers stay context-cancelable) plus a close gate that lets shutdown
// wait out in-flight producers before closing the channel.
type queue struct {
	ch     chan Event
	policy OverflowPolicy
	drops  *Counter    // per-shard drop counter (any reason); may be nil
	tracer *obs.Tracer // nil disables span tracing
	shard  int

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

func newQueue(capacity int, policy OverflowPolicy, drops *Counter, tracer *obs.Tracer, shard int) *queue {
	return &queue{ch: make(chan Event, capacity), policy: policy, drops: drops, tracer: tracer, shard: shard}
}

// dropped counts one shed event on this shard alongside the global
// per-reason counters.
func (q *queue) dropped() {
	if q.drops != nil {
		q.drops.Inc()
	}
}

// traceDrop publishes the shed event's partial trace (no-op for unsampled
// events).
func (q *queue) traceDrop(ev Event) {
	if ev.traceSampled && q.tracer != nil {
		q.tracer.PublishDropped(uint8(ev.Kind), traceKey(ev), q.shard,
			ev.traceStart, ev.traceOffered, q.tracer.Now())
	}
}

// depth returns the number of queued events.
func (q *queue) depth() int { return len(q.ch) }

// capacity returns the buffer size.
func (q *queue) capacity() int { return cap(q.ch) }

// push offers one event under the queue's overflow policy. It returns
// ErrClosed if shutdown has begun (the event is NOT counted ingested) and
// ctx.Err() if a blocked push was canceled (counted ingested + dropped).
func (q *queue) push(ctx context.Context, ev Event, m *Metrics) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.inflight.Add(1)
	q.mu.Unlock()
	defer q.inflight.Done()

	m.Ingested.Inc()
	if ev.traceSampled {
		ev.traceOffered = q.tracer.Now()
	}
	switch q.policy {
	case DropNewest:
		select {
		case q.ch <- ev:
		default:
			m.DroppedNewest.Inc()
			q.dropped()
			q.traceDrop(ev)
		}
		return nil
	case DropOldest:
		for {
			select {
			case q.ch <- ev:
				return nil
			default:
			}
			// Full: evict one (the consumer may win the race — then the
			// retry above succeeds without an eviction).
			select {
			case old := <-q.ch:
				m.DroppedOldest.Inc()
				q.dropped()
				q.traceDrop(old)
			default:
			}
			stdruntime.Gosched()
		}
	default: // Block
		select {
		case q.ch <- ev:
			return nil
		case <-ctx.Done():
			m.DroppedCanceled.Inc()
			q.dropped()
			q.traceDrop(ev)
			return ctx.Err()
		}
	}
}

// close begins shutdown: new pushes are rejected, in-flight pushes are
// waited out (the consumer must keep draining meanwhile), then the channel
// is closed so the consumer's range loop terminates after the drain.
func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.inflight.Wait()
	close(q.ch)
}

package runtime

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// failAt reports whether a ground-truth failure occurs at tick t, matching
// the lifecycle package's harness convention.
func failAt(t, every int) bool { return every > 0 && t%every == every-1 }

// tickClock is a deterministic domain clock: runCycle is its only caller,
// so cycle i observes now == i.
func tickClock() func() float64 {
	var n atomic.Int64
	return func() float64 { return float64(n.Add(1)) }
}

// waitCounter polls a pipeline counter until it reaches want.
func waitCounter(t *testing.T, what string, read func() int64, want int64, deadline time.Time) {
	t.Helper()
	for read() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s to reach %d (at %d)", what, want, read())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// recordFailures pre-records the failure schedule: the ledger keeps future
// failures until the watermark passes them.
func recordFailures(led *obs.Ledger, upTo, every int) {
	for f := 0; f <= upTo; f++ {
		if failAt(f, every) {
			led.RecordFailure(float64(f))
		}
	}
}

// swapEvents subscribes to lifecycle events and retains them in order.
type swapEvents struct {
	mu     sync.Mutex
	events []lifecycle.Event
}

func (s *swapEvents) record(e lifecycle.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *swapEvents) first(t lifecycle.EventType) (lifecycle.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.events {
		if e.Type == t {
			return e, true
		}
	}
	return lifecycle.Event{}, false
}

// retrainFake is a retrainable scripted predictor whose Evaluate reads the
// Apply-side state without synchronization — under -race this pins the
// runtime's contract that evaluation (and lifecycle Collect) never overlap
// an ingest Apply.
type retrainFake struct {
	score     func(now float64) float64
	next      core.LayerPredictor
	delay     time.Duration
	loadCheck func()
}

func (p *retrainFake) Evaluate(now float64) (float64, error) {
	if p.loadCheck != nil {
		p.loadCheck()
	}
	return p.score(now), nil
}

func (p *retrainFake) CaptureWindow(now float64) (any, error) { return now, nil }

func (p *retrainFake) Retrain(any) (core.LayerPredictor, error) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return p.next, nil
}

// TestRuntimeHotSwapUnderLoad drives a full pipeline — concurrent ingest
// producers, background (asynchronous) retraining, EvaluateNow-paced cycles
// — through a drift → shadow → swap → confirm episode. Run with -race: the
// swap is a pointer CAS racing live scoring, and the fake predictor reads
// Apply-side state to certify the evaluation exclusion.
func TestRuntimeHotSwapUnderLoad(t *testing.T) {
	const failEvery = 10
	var applied int // Apply-side state, guarded only by the runtime's stateMu
	incumbent := &retrainFake{
		score: func(now float64) float64 {
			if now >= 20 {
				return 0.3
			}
			return 0.1
		},
		delay: time.Millisecond,
		loadCheck: func() {
			if applied < 0 {
				panic("impossible")
			}
		},
	}
	incumbent.next = core.PredictorFunc(func(now float64) (float64, error) {
		if failAt(int(now)+1, failEvery) {
			return 1, nil
		}
		return 0, nil
	})
	layer := &core.Layer{Name: "app", Predictor: incumbent, Threshold: 0.5}
	eng := testEngine(t, defaultCoreCfg(), layer)

	led, err := obs.NewLedger(obs.LedgerConfig{LeadTime: 1, Window: 40}, "app")
	if err != nil {
		t.Fatal(err)
	}
	recordFailures(led, 100_000, failEvery)
	mgr, err := lifecycle.NewManager([]*core.Layer{layer}, led, lifecycle.Config{
		ScoreWarmup: 10, ShadowMinResolved: 10, ProbationResolved: 10, CooldownCycles: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log swapEvents
	mgr.Subscribe(log.record)

	rt, err := New(Config{
		Engine:    eng,
		Apply:     func(Event) error { applied++; return nil },
		Clock:     tickClock(),
		Ledger:    led,
		Lifecycle: mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rt.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// Full ingest load for the whole episode: four producers spam samples.
	stop := make(chan struct{})
	var producers sync.WaitGroup
	for p := 0; p < 4; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ev := Event{Kind: KindSample, Time: float64(i), Variable: "v" + strconv.Itoa(p), Value: float64(i)}
				if err := rt.Ingest(ctx, ev); err != nil {
					return // shutdown began
				}
			}
		}(p)
	}

	deadline := time.Now().Add(30 * time.Second)
	for mgr.Totals().Confirms == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no confirmed swap after %d cycles; totals = %+v",
				rt.metrics.Evaluations.Value(), mgr.Totals())
		}
		rt.EvaluateNow()
		time.Sleep(20 * time.Microsecond)
	}
	close(stop)
	producers.Wait()

	// Snapshot the HTTP surface while the pipeline still runs.
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/layers", nil))
	var statuses []lifecycle.LayerStatus
	if err := json.NewDecoder(rec.Body).Decode(&statuses); err != nil {
		t.Fatalf("/layers: %v", err)
	}
	mrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))

	if err := rt.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	if v := layer.Version(); v < 2 {
		t.Fatalf("layer version = %d, want ≥ 2 after hot-swap", v)
	}
	tot := mgr.Totals()
	if tot.Swaps < 1 || tot.Confirms < 1 {
		t.Fatalf("totals = %+v, want ≥1 swap and ≥1 confirm", tot)
	}
	sw, ok := log.first(lifecycle.EventSwapped)
	if !ok {
		t.Fatal("no swap event recorded")
	}
	if !(sw.CandidateF > sw.IncumbentF) {
		t.Fatalf("swap with candidate F %.3f ≤ incumbent F %.3f", sw.CandidateF, sw.IncumbentF)
	}
	// The pipeline never shed work: every ingested event applied, no cycle
	// was dropped on the floor.
	m := rt.Metrics()
	if m.Dropped() != 0 {
		t.Fatalf("dropped %d events under Block policy", m.Dropped())
	}
	if m.Ingested.Value() != m.Applied.Value() {
		t.Fatalf("ingested %d != applied %d", m.Ingested.Value(), m.Applied.Value())
	}

	if len(statuses) != 1 || statuses[0].Layer != "app" {
		t.Fatalf("/layers = %+v", statuses)
	}
	if statuses[0].Swaps < 1 || statuses[0].Version < 2 {
		t.Fatalf("/layers status = %+v, want swaps ≥ 1 and version ≥ 2", statuses[0])
	}
	expo := mrec.Body.String()
	for _, re := range []string{
		`pfm_swaps_total [1-9]`,
		`pfm_layer_version\{layer="app"\} [2-9]`,
		`pfm_retrains_total [1-9]`,
		`pfm_retrain_duration_seconds_count [1-9]`,
		`pfm_layer_eval_errors_total\{layer="app"\} 0`,
		`pfm_combiner_errors_total 0`,
	} {
		if !regexp.MustCompile(re).MatchString(expo) {
			t.Fatalf("metrics exposition missing %q", re)
		}
	}
}

// ---- drifted-trace smoke test ----

// errMirror is the Apply-side state of the smoke test: a time-ordered list
// of error-event timestamps. Unsynchronized by design — the runtime's state
// lock is the only thing keeping Apply and Evaluate/CaptureWindow apart.
type errMirror struct{ times []float64 }

func (m *errMirror) apply(ev Event) error {
	m.times = append(m.times, ev.Time)
	return nil
}

// count returns how many error events fall in (now−span, now].
func (m *errMirror) count(now, span float64) int {
	n := 0
	for i := len(m.times) - 1; i >= 0; i-- {
		if m.times[i] <= now-span {
			break
		}
		if m.times[i] <= now {
			n++
		}
	}
	return n
}

// ratePredictor warns when the two-tick error count reaches its scale — the
// smoke test's miniature failure model. Retraining refits the scale from the
// captured recent counts (1.5 × median), the same shape as recalibrating a
// threshold after an error-rate regime change.
type ratePredictor struct {
	m     *errMirror
	scale float64
	gen   uint64
}

func (p *ratePredictor) Evaluate(now float64) (float64, error) {
	return float64(p.m.count(now, 2)) / p.scale, nil
}

func (p *ratePredictor) CaptureWindow(now float64) (any, error) {
	counts := make([]float64, 0, 10)
	for k := 9; k >= 0; k-- {
		counts = append(counts, float64(p.m.count(now-float64(k), 2)))
	}
	return counts, nil
}

func (p *ratePredictor) Retrain(window any) (core.LayerPredictor, error) {
	counts := append([]float64(nil), window.([]float64)...)
	sort.Float64s(counts)
	scale := 1.5 * (counts[len(counts)/2-1] + counts[len(counts)/2]) / 2
	if scale < 1 {
		scale = 1
	}
	return &ratePredictor{m: p.m, scale: scale, gen: p.gen + 1}, nil
}

// TestHotSwapSmokeDriftedTrace replays a deterministic error-event trace
// with an injected distribution shift at tick 150: background error noise
// appears and pre-failure bursts grow, so the incumbent's fixed scale warns
// constantly and its F-measure collapses. The lifecycle must detect the
// drift, retrain a recalibrated candidate from the captured window, prove it
// in shadow and hot-swap it — without dropping a single evaluation cycle.
func TestHotSwapSmokeDriftedTrace(t *testing.T) {
	const (
		failEvery = 10
		shiftAt   = 150
		ticks     = 300
	)
	mirror := &errMirror{}
	incumbent := &ratePredictor{m: mirror, scale: 3}
	layer := &core.Layer{Name: "errrate", Predictor: incumbent, Threshold: 1}
	eng := testEngine(t, defaultCoreCfg(), layer)

	led, err := obs.NewLedger(obs.LedgerConfig{LeadTime: 1, Window: 40}, "errrate")
	if err != nil {
		t.Fatal(err)
	}
	recordFailures(led, ticks+failEvery, failEvery)
	mgr, err := lifecycle.NewManager([]*core.Layer{layer}, led, lifecycle.Config{
		ScoreWarmup: 30, ShadowMinResolved: 10, ProbationResolved: 20,
		CooldownCycles: 20, SyncRetrain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log swapEvents
	mgr.Subscribe(log.record)

	rt, err := New(Config{
		Engine:    eng,
		Apply:     mirror.apply,
		Clock:     tickClock(),
		Ledger:    led,
		Lifecycle: mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rt.Start(ctx); err != nil {
		t.Fatal(err)
	}

	// eventsAt is the trace generator: 2 background errors per tick after
	// the shift, and a pre-failure burst (3 before the shift, 8 after) one
	// tick ahead of each scheduled failure.
	eventsAt := func(tick int) int {
		n := 0
		if tick >= shiftAt {
			n += 2
		}
		if failAt(tick+1, failEvery) {
			if tick >= shiftAt {
				n += 8
			} else {
				n += 3
			}
		}
		return n
	}

	deadline := time.Now().Add(60 * time.Second)
	ingested := int64(0)
	for tick := 1; tick <= ticks; tick++ {
		for i := 0; i < eventsAt(tick); i++ {
			if err := rt.Ingest(ctx, Event{Kind: KindError, Time: float64(tick)}); err != nil {
				t.Fatal(err)
			}
			ingested++
		}
		// Gate each cycle on its events being applied, and each next tick on
		// the previous cycle having reached the act stage: the replay is then
		// bit-for-bit reproducible.
		waitCounter(t, "applied", rt.metrics.Applied.Value, ingested, deadline)
		rt.EvaluateNow()
		waitCounter(t, "evaluations", rt.metrics.Evaluations.Value, int64(tick), deadline)
	}
	if err := rt.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	// No dropped evaluation cycles: one cycle per replayed tick plus the
	// drain cycle Stop runs — a blocked or skipped cycle would show here.
	if got := rt.metrics.Evaluations.Value(); got != ticks+1 {
		t.Fatalf("evaluations = %d, want %d (one per tick + drain cycle)", got, ticks+1)
	}
	if rt.Metrics().Dropped() != 0 {
		t.Fatalf("dropped %d events", rt.Metrics().Dropped())
	}
	sw, ok := log.first(lifecycle.EventSwapped)
	if !ok {
		t.Fatalf("no hot-swap on the drifted trace; totals = %+v", mgr.Totals())
	}
	if !(sw.CandidateF > sw.IncumbentF) {
		t.Fatalf("swap with candidate F %.3f ≤ incumbent F %.3f", sw.CandidateF, sw.IncumbentF)
	}
	if layer.Version() < 2 {
		t.Fatalf("layer version = %d, want ≥ 2", layer.Version())
	}
	// The swapped-in predictor's rolling ledger F-measure must beat the
	// pre-swap incumbent's — the acceptance bar for the whole refactor.
	if endF := led.Quality("errrate").FMeasure(); !(endF > sw.IncumbentF) {
		t.Fatalf("post-swap rolling F %.3f ≤ pre-swap incumbent F %.3f", endF, sw.IncumbentF)
	}
	// The recalibrated scale is deterministic: replaying the same trace must
	// always fit the same candidate.
	cur, _ := layer.Current()
	rp, ok := cur.(*ratePredictor)
	if !ok {
		t.Fatalf("serving predictor is %T, want *ratePredictor", cur)
	}
	if rp.gen != 1 || rp.scale <= incumbent.scale {
		t.Fatalf("swapped predictor gen=%d scale=%.3f, want gen 1 and scale > %.1f",
			rp.gen, rp.scale, incumbent.scale)
	}
}

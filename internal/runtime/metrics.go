package runtime

import (
	"fmt"
	"io"
	"math"
	stdruntime "runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. It is padded to
// a cache line: hot-path counters are allocated back to back (Ingested is
// bumped by producers while Applied is bumped by shard consumers), and
// without the padding those adjacent atomics false-share a line, which
// shows up as several ns per event on the ingest fast path.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n ≥ 0.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket latency histogram with atomic cells. Bucket
// boundaries are upper bounds in seconds; observations above the last
// bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket where the cumulative count crosses the target rank —
// the standard histogram_quantile estimate. Observations beyond the last
// finite bound clamp to that bound. NaN while the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		if c := counts[i]; c > 0 && float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (bound-lower)*(rank-float64(cum))/float64(c)
		}
		cum += counts[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are the default latency buckets [s]: 1µs … 10s.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// metric is one labeled series inside a family.
type metric struct {
	labels string // rendered `{k="v",…}` or ""
	c      *Counter
	g      func() float64
	h      *Histogram
}

// family groups series sharing a metric name (one TYPE line per family).
type family struct {
	name, help, typ string
	series          []*metric
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is mutex-guarded; the hot path (Inc/Observe) is atomic.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels formats k,v pairs as `{k="v",…}`; empty input renders "".
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("runtime: labels must be key,value pairs")
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labels[i], labels[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// register appends a series to its family, creating the family on first use.
func (r *Registry) register(name, help, typ string, m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	f.series = append(f.series, m)
}

// Counter registers a counter series; labels are key,value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &metric{labels: renderLabels(labels), c: c})
	return c
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "gauge", &metric{labels: renderLabels(labels), g: fn})
}

// CounterFunc registers a counter series whose value is read at scrape
// time — for monotone counts owned by another subsystem (layer handles,
// the lifecycle manager) that the registry must not double-track.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "counter", &metric{labels: renderLabels(labels), g: fn})
}

// Histogram registers a histogram series with the given bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(name, help, "histogram", &metric{labels: renderLabels(labels), h: h})
	return h
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	r.mu.Unlock()
	for _, name := range order {
		r.mu.Lock()
		f := r.families[name]
		series := append([]*metric(nil), f.series...)
		r.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, m := range series {
			var err error
			switch {
			case m.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, m.labels, m.c.Value())
			case m.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, m.labels, m.g())
			case m.h != nil:
				err = writeHistogram(w, f.name, m.labels, m.h)
			}
			if err != nil {
				return err
			}
		}
		if f.typ == "histogram" {
			if err := writeQuantiles(w, f.name, series); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportQuantiles are the quantile gauges derived from every histogram
// family in the exposition.
var exportQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}

// writeQuantiles renders a derived gauge family `<name>_quantile` with
// p50/p95/p99 estimates interpolated from each histogram's buckets.
func writeQuantiles(w io.Writer, name string, series []*metric) error {
	qname := name + "_quantile"
	if _, err := fmt.Fprintf(w, "# HELP %s Quantiles interpolated from %s buckets.\n# TYPE %s gauge\n",
		qname, name, qname); err != nil {
		return err
	}
	for _, m := range series {
		if m.h == nil {
			continue
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(m.labels, "{"), "}")
		sep := ""
		if inner != "" {
			sep = ","
		}
		for _, eq := range exportQuantiles {
			if _, err := fmt.Fprintf(w, "%s{%s%squantile=%q} %g\n",
				qname, inner, sep, eq.label, m.h.Quantile(eq.q)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders cumulative buckets plus _sum and _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if err := writeBucket(w, name, inner, fmt.Sprintf("%g", bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := writeBucket(w, name, inner, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// writeBucket renders one cumulative le bucket, merging the series labels.
func writeBucket(w io.Writer, name, innerLabels, le string, cum int64) error {
	sep := ""
	if innerLabels != "" {
		sep = ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, innerLabels, sep, le, cum)
	return err
}

// Metrics is the runtime's observability surface: every stage of the
// pipeline feeds these counters and histograms; Registry renders them for
// scraping.
type Metrics struct {
	reg *Registry

	// Ingest stage.
	Ingested        *Counter // events presented to Ingest (not rejected-for-closed)
	Applied         *Counter // events delivered to the Apply callback
	ApplyErrors     *Counter // Apply calls that returned an error
	DroppedOldest   *Counter // evicted by DropOldest
	DroppedNewest   *Counter // rejected at the door by DropNewest
	DroppedCanceled *Counter // abandoned by context cancellation while blocked
	DroppedShutdown *Counter // backlog shed unapplied by a hard stop

	// Evaluate + act stages.
	Evaluations *Counter // completed MEA cycles
	Warnings    *Counter // cycles that raised a failure warning
	Actions     *Counter // countermeasures executed or scheduled
	Suppressed  *Counter // actions vetoed by the oscillation guard

	// Per-stage latency.
	IngestLatency *Histogram // queue admission (Ingest call) [s]
	ApplyLatency  *Histogram // state application per event [s]
	EvalLatency   *Histogram // layer scoring per cycle [s]
	ActLatency    *Histogram // serialized act decision per cycle [s]
}

// NewMetrics builds the runtime metric set on a fresh registry.
func NewMetrics() *Metrics {
	reg := NewRegistry()
	m := &Metrics{
		reg:             reg,
		Ingested:        reg.Counter("pfm_events_ingested_total", "Events presented to the ingest stage."),
		Applied:         reg.Counter("pfm_events_applied_total", "Events applied to predictor state."),
		ApplyErrors:     reg.Counter("pfm_events_apply_errors_total", "Apply callbacks that returned an error."),
		DroppedOldest:   reg.Counter("pfm_events_dropped_total", "Events dropped by overflow policy or cancellation.", "reason", "oldest"),
		DroppedNewest:   reg.Counter("pfm_events_dropped_total", "", "reason", "newest"),
		DroppedCanceled: reg.Counter("pfm_events_dropped_total", "", "reason", "canceled"),
		DroppedShutdown: reg.Counter("pfm_events_dropped_total", "", "reason", "shutdown"),
		Evaluations:     reg.Counter("pfm_evaluations_total", "Completed Monitor-Evaluate-Act cycles."),
		Warnings:        reg.Counter("pfm_warnings_total", "Failure warnings raised."),
		Actions:         reg.Counter("pfm_actions_total", "Countermeasures executed or scheduled."),
		Suppressed:      reg.Counter("pfm_actions_suppressed_total", "Actions vetoed by the oscillation guard."),
		IngestLatency:   reg.Histogram("pfm_stage_latency_seconds", "Per-stage latency.", nil, "stage", "ingest"),
		ApplyLatency:    reg.Histogram("pfm_stage_latency_seconds", "", nil, "stage", "apply"),
		EvalLatency:     reg.Histogram("pfm_stage_latency_seconds", "", nil, "stage", "evaluate"),
		ActLatency:      reg.Histogram("pfm_stage_latency_seconds", "", nil, "stage", "act"),
	}
	version, revision, vcsTime := buildIdentity()
	reg.GaugeFunc("pfm_build_info",
		"Build metadata carried in labels; the value is always 1.",
		func() float64 { return 1 },
		"version", version,
		"revision", revision,
		"vcstime", vcsTime,
		"goversion", stdruntime.Version(),
		"gomaxprocs", strconv.Itoa(stdruntime.GOMAXPROCS(0)))
	registerGoMemMetrics(reg)
	return m
}

// memStatsCache rate-limits runtime.ReadMemStats: the read stops the
// world, and one scrape evaluates three Go-memory series, so the gauges
// share a snapshot refreshed at most every memStatsTTL.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat stdruntime.MemStats
}

const memStatsTTL = 500 * time.Millisecond

func (c *memStatsCache) snapshot() stdruntime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); c.at.IsZero() || now.Sub(c.at) > memStatsTTL {
		stdruntime.ReadMemStats(&c.stat)
		c.at = now
	}
	return c.stat
}

// goMemCache is the process-wide snapshot shared by every registry: a
// scrape storm across planes (the runtime's /metrics and a fleet's both
// register these gauges) still stops the world at most once per TTL.
var goMemCache = &memStatsCache{}

// registerGoMemMetrics exposes the Go heap and GC gauges that make the
// columnar store's allocation profile observable next to the pipeline
// counters: steady heap, flat GC-cycle rate and negligible pause totals
// are the runbook's confirmation that the hot path is allocation-free.
func registerGoMemMetrics(reg *Registry) {
	cache := goMemCache
	reg.GaugeFunc("pfm_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(cache.snapshot().HeapAlloc) })
	reg.CounterFunc("pfm_go_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 { return float64(cache.snapshot().NumGC) })
	reg.CounterFunc("pfm_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time (runtime.MemStats.PauseTotalNs).",
		func() float64 { return float64(cache.snapshot().PauseTotalNs) / 1e9 })
}

// buildIdentity resolves the build metadata stamped into the binary: the
// main-module version ("(devel)" for plain `go build` trees) plus the
// vcs.revision and vcs.time settings embedded by builds inside a checkout
// ("unknown" when the info is absent, e.g. `go test` binaries).
func buildIdentity() (version, revision, vcsTime string) {
	version, revision, vcsTime = "unknown", "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	return
}

// Dropped returns the total events dropped across all reasons.
func (m *Metrics) Dropped() int64 {
	return m.DroppedOldest.Value() + m.DroppedNewest.Value() +
		m.DroppedCanceled.Value() + m.DroppedShutdown.Value()
}

// Registry exposes the underlying registry (to register app-level series
// such as queue depth gauges next to the pipeline metrics).
func (m *Metrics) Registry() *Registry { return m.reg }

// WritePrometheus renders all metrics in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

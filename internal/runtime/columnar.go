package runtime

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/eventlog"
)

// ErrColumnar is wrapped by all columnar-trace encoding errors.
var ErrColumnar = fmt.Errorf("%w: columnar trace", ErrRuntime)

// columnarMagic identifies the PFC1 single-tenant columnar trace format.
var columnarMagic = [4]byte{'P', 'F', 'C', '1'}

// Sanity caps for ReadColumnar: a corrupt header must not provoke a
// multi-gigabyte allocation before the bounds checks can reject it.
const (
	maxColumnarEvents  = 1 << 30
	maxColumnarStrings = 1 << 24
	maxColumnarStrLen  = 1 << 20
)

// ColumnarTrace is a single-tenant SCP trace in struct-of-arrays layout —
// the replay-side counterpart of the batched hot path. Where the text
// artifacts (data.log / data.sar.tsv / data.failures.tsv) cost a parse,
// an allocation and a cache miss per field, the columnar form keeps each
// field of every event contiguous, so a year of simulated operation
// decodes in a handful of large reads and replays at memory bandwidth.
//
// All per-event columns have length Len(). Errors and samples share the
// columns: Keys indexes Components (errors) or Vars (samples); Types,
// Sevs and Msgs are meaningful for errors only, Values for samples only.
// String columns hold dictionary indices — traces repeat a small set of
// components, variables and messages endlessly, so each distinct string
// is stored (and later allocated) exactly once.
type ColumnarTrace struct {
	Times  []float64 // event time [s], non-decreasing
	Kinds  []uint8   // uint8(KindError) or uint8(KindSample)
	Keys   []uint32  // index into Components (errors) or Vars (samples)
	Types  []int32   // error type ID
	Sevs   []uint8   // error severity (1..4)
	Msgs   []uint32  // index into Messages
	Values []float64 // sample value

	Vars       []string // sample variable dictionary
	Components []string // error component dictionary
	Messages   []string // error message dictionary

	Failures []float64 // ground-truth failure times, ascending
}

// Len returns the number of events in the trace.
func (c *ColumnarTrace) Len() int { return len(c.Times) }

// Event materializes event i as a runtime ingest event. The returned
// event borrows the trace's dictionary strings, so calling it for every
// event of a trace allocates nothing — i must be in [0, Len()) and the
// trace must have passed ReadColumnar validation (or come from a
// ColumnarBuilder).
func (c *ColumnarTrace) Event(i int) Event {
	if EventKind(c.Kinds[i]) == KindError {
		return Event{Kind: KindError, Time: c.Times[i], Error: eventlog.Event{
			Time:      c.Times[i],
			Component: c.Components[c.Keys[i]],
			Type:      int(c.Types[i]),
			Severity:  eventlog.Severity(c.Sevs[i]),
			Message:   c.Messages[c.Msgs[i]],
		}}
	}
	return Event{Kind: KindSample, Time: c.Times[i], Variable: c.Vars[c.Keys[i]], Value: c.Values[i]}
}

// CountKinds returns how many events are errors and how many are samples
// — replay drivers use the split to presize their mirror state.
func (c *ColumnarTrace) CountKinds() (errors, samples int) {
	for _, k := range c.Kinds {
		if EventKind(k) == KindError {
			errors++
		} else {
			samples++
		}
	}
	return errors, samples
}

// ColumnarBuilder assembles a ColumnarTrace from a time-ordered event
// stream, interning every string through per-column dictionaries (the
// same eventlog.Interner the in-memory columnar log uses — one intern
// machinery for both the on-disk and in-memory layouts).
type ColumnarBuilder struct {
	t     ColumnarTrace
	vars  eventlog.Interner
	comps eventlog.Interner
	msgs  eventlog.Interner
}

// NewColumnarBuilder returns an empty builder.
func NewColumnarBuilder() *ColumnarBuilder { return &ColumnarBuilder{} }

// Grow preallocates column capacity for n additional events.
func (b *ColumnarBuilder) Grow(n int) {
	if n <= 0 {
		return
	}
	t := &b.t
	t.Times = append(make([]float64, 0, len(t.Times)+n), t.Times...)
	t.Kinds = append(make([]uint8, 0, len(t.Kinds)+n), t.Kinds...)
	t.Keys = append(make([]uint32, 0, len(t.Keys)+n), t.Keys...)
	t.Types = append(make([]int32, 0, len(t.Types)+n), t.Types...)
	t.Sevs = append(make([]uint8, 0, len(t.Sevs)+n), t.Sevs...)
	t.Msgs = append(make([]uint32, 0, len(t.Msgs)+n), t.Msgs...)
	t.Values = append(make([]float64, 0, len(t.Values)+n), t.Values...)
}

func (b *ColumnarBuilder) checkTime(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: event time %g", ErrColumnar, t)
	}
	if n := len(b.t.Times); n > 0 && t < b.t.Times[n-1] {
		return fmt.Errorf("%w: event time %g before trace tail %g", ErrColumnar, t, b.t.Times[n-1])
	}
	return nil
}

// AddError appends one detected-error report. Events must arrive in
// non-decreasing time order and satisfy the eventlog append rules, so a
// replayed trace reconstructs into a mirror log without surprises.
func (b *ColumnarBuilder) AddError(e eventlog.Event) error {
	if err := b.checkTime(e.Time); err != nil {
		return err
	}
	if e.Severity < eventlog.SeverityInfo || e.Severity > eventlog.SeverityCritical {
		return fmt.Errorf("%w: severity %d", ErrColumnar, e.Severity)
	}
	if e.Type < math.MinInt32 || e.Type > math.MaxInt32 {
		return fmt.Errorf("%w: event type %d out of range", ErrColumnar, e.Type)
	}
	t := &b.t
	t.Times = append(t.Times, e.Time)
	t.Kinds = append(t.Kinds, uint8(KindError))
	t.Keys = append(t.Keys, b.comps.Intern(e.Component))
	t.Types = append(t.Types, int32(e.Type))
	t.Sevs = append(t.Sevs, uint8(e.Severity))
	t.Msgs = append(t.Msgs, b.msgs.Intern(e.Message))
	t.Values = append(t.Values, 0)
	return nil
}

// AddSample appends one monitoring-variable sample.
func (b *ColumnarBuilder) AddSample(at float64, variable string, v float64) error {
	if err := b.checkTime(at); err != nil {
		return err
	}
	t := &b.t
	t.Times = append(t.Times, at)
	t.Kinds = append(t.Kinds, uint8(KindSample))
	t.Keys = append(t.Keys, b.vars.Intern(variable))
	t.Types = append(t.Types, 0)
	t.Sevs = append(t.Sevs, 0)
	t.Msgs = append(t.Msgs, 0)
	t.Values = append(t.Values, v)
	return nil
}

// AddFailure records one ground-truth failure time (ascending).
func (b *ColumnarBuilder) AddFailure(at float64) error {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("%w: failure time %g", ErrColumnar, at)
	}
	if n := len(b.t.Failures); n > 0 && at < b.t.Failures[n-1] {
		return fmt.Errorf("%w: failure time %g before tail %g", ErrColumnar, at, b.t.Failures[n-1])
	}
	b.t.Failures = append(b.t.Failures, at)
	return nil
}

// Trace returns the assembled trace. The builder must not be used after.
func (b *ColumnarBuilder) Trace() *ColumnarTrace {
	b.t.Vars = b.vars.Strings()
	b.t.Components = b.comps.Strings()
	b.t.Messages = b.msgs.Strings()
	return &b.t
}

// AppendErrorsTo bulk-decodes the trace's error rows straight into a
// columnar log — dictionary indices remapped once per distinct string,
// column cells copied, zero per-event Event materialization. It returns
// the number of error events appended. This closes the disk→memory loop:
// a PFC1 trace lands in the in-memory columnar store in the same layout
// it had on disk.
func (c *ColumnarTrace) AppendErrorsTo(l *eventlog.Log) (int, error) {
	nErr, _ := c.CountKinds()
	if nErr == 0 {
		return 0, nil
	}
	cols := eventlog.Columns{
		Times:    make([]float64, 0, nErr),
		Types:    make([]int32, 0, nErr),
		Sevs:     make([]uint8, 0, nErr),
		Comps:    make([]uint32, 0, nErr),
		Msgs:     make([]uint32, 0, nErr),
		CompDict: c.Components,
		MsgDict:  c.Messages,
	}
	for i, k := range c.Kinds {
		if EventKind(k) != KindError {
			continue
		}
		cols.Times = append(cols.Times, c.Times[i])
		cols.Types = append(cols.Types, c.Types[i])
		cols.Sevs = append(cols.Sevs, c.Sevs[i])
		cols.Comps = append(cols.Comps, c.Keys[i])
		cols.Msgs = append(cols.Msgs, c.Msgs[i])
	}
	if err := l.AppendColumns(cols); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrColumnar, err)
	}
	return nErr, nil
}

// WriteTo serializes the trace in the PFC1 binary layout: a magic tag,
// the three string dictionaries (uvarint count, then uvarint length +
// bytes per string), the event count, the seven per-event columns as
// contiguous fixed-width little-endian blocks, and the failure times.
// Column-contiguous fixed-width blocks are the point: the reader gets
// each column back with one ReadFull and a branch-free decode loop.
func (c *ColumnarTrace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(p []byte) error {
		_, err := cw.Write(p)
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) error {
		return write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	if err := write(columnarMagic[:]); err != nil {
		return cw.n, err
	}
	for _, dict := range [][]string{c.Vars, c.Components, c.Messages} {
		if err := uv(uint64(len(dict))); err != nil {
			return cw.n, err
		}
		for _, s := range dict {
			if err := uv(uint64(len(s))); err != nil {
				return cw.n, err
			}
			if err := write([]byte(s)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := uv(uint64(c.Len())); err != nil {
		return cw.n, err
	}
	var b8 [8]byte
	for _, t := range c.Times {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(t))
		if err := write(b8[:]); err != nil {
			return cw.n, err
		}
	}
	if err := write(c.Kinds); err != nil {
		return cw.n, err
	}
	for _, k := range c.Keys {
		binary.LittleEndian.PutUint32(b8[:4], k)
		if err := write(b8[:4]); err != nil {
			return cw.n, err
		}
	}
	for _, t := range c.Types {
		binary.LittleEndian.PutUint32(b8[:4], uint32(t))
		if err := write(b8[:4]); err != nil {
			return cw.n, err
		}
	}
	if err := write(c.Sevs); err != nil {
		return cw.n, err
	}
	for _, m := range c.Msgs {
		binary.LittleEndian.PutUint32(b8[:4], m)
		if err := write(b8[:4]); err != nil {
			return cw.n, err
		}
	}
	for _, v := range c.Values {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		if err := write(b8[:]); err != nil {
			return cw.n, err
		}
	}
	if err := uv(uint64(len(c.Failures))); err != nil {
		return cw.n, err
	}
	for _, f := range c.Failures {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(f))
		if err := write(b8[:]); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadColumnar deserializes and validates a PFC1 trace: magic, bounds of
// every dictionary index, kind and severity codes, and time ordering.
// A trace it returns is safe to drive through Event without checks.
func ReadColumnar(r io.Reader) (*ColumnarTrace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrColumnar, err)
	}
	if magic != columnarMagic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrColumnar, magic[:], columnarMagic[:])
	}
	readDict := func(name string) ([]string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s count: %v", ErrColumnar, name, err)
		}
		if n > maxColumnarStrings {
			return nil, fmt.Errorf("%w: %s dictionary too large (%d)", ErrColumnar, name, n)
		}
		dict := make([]string, n)
		for i := range dict {
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %s[%d] length: %v", ErrColumnar, name, i, err)
			}
			if l > maxColumnarStrLen {
				return nil, fmt.Errorf("%w: %s[%d] too long (%d)", ErrColumnar, name, i, l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("%w: %s[%d]: %v", ErrColumnar, name, i, err)
			}
			dict[i] = string(buf)
		}
		return dict, nil
	}
	c := &ColumnarTrace{}
	var err error
	if c.Vars, err = readDict("vars"); err != nil {
		return nil, err
	}
	if c.Components, err = readDict("components"); err != nil {
		return nil, err
	}
	if c.Messages, err = readDict("messages"); err != nil {
		return nil, err
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: event count: %v", ErrColumnar, err)
	}
	if n64 > maxColumnarEvents {
		return nil, fmt.Errorf("%w: event count too large (%d)", ErrColumnar, n64)
	}
	n := int(n64)
	// One scratch block per column width: each column arrives with a
	// single ReadFull and decodes in a tight loop over the raw bytes.
	block := make([]byte, n*8)
	readF64s := func(name string) ([]float64, error) {
		if _, err := io.ReadFull(br, block[:n*8]); err != nil {
			return nil, fmt.Errorf("%w: %s column: %v", ErrColumnar, name, err)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(block[i*8:]))
		}
		return out, nil
	}
	readU32s := func(name string) ([]uint32, error) {
		if _, err := io.ReadFull(br, block[:n*4]); err != nil {
			return nil, fmt.Errorf("%w: %s column: %v", ErrColumnar, name, err)
		}
		out := make([]uint32, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(block[i*4:])
		}
		return out, nil
	}
	readU8s := func(name string) ([]uint8, error) {
		out := make([]uint8, n)
		if _, err := io.ReadFull(br, out); err != nil {
			return nil, fmt.Errorf("%w: %s column: %v", ErrColumnar, name, err)
		}
		return out, nil
	}
	if c.Times, err = readF64s("times"); err != nil {
		return nil, err
	}
	if c.Kinds, err = readU8s("kinds"); err != nil {
		return nil, err
	}
	if c.Keys, err = readU32s("keys"); err != nil {
		return nil, err
	}
	types, err := readU32s("types")
	if err != nil {
		return nil, err
	}
	c.Types = make([]int32, n)
	for i, t := range types {
		c.Types[i] = int32(t)
	}
	if c.Sevs, err = readU8s("sevs"); err != nil {
		return nil, err
	}
	if c.Msgs, err = readU32s("msgs"); err != nil {
		return nil, err
	}
	if c.Values, err = readF64s("values"); err != nil {
		return nil, err
	}
	nf, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: failure count: %v", ErrColumnar, err)
	}
	if nf > maxColumnarEvents {
		return nil, fmt.Errorf("%w: failure count too large (%d)", ErrColumnar, nf)
	}
	c.Failures = make([]float64, nf)
	var b8 [8]byte
	for i := range c.Failures {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("%w: failures[%d]: %v", ErrColumnar, i, err)
		}
		c.Failures[i] = math.Float64frombits(binary.LittleEndian.Uint64(b8[:]))
	}
	return c, c.validate()
}

// validate cross-checks the decoded columns so Event never indexes out of
// a dictionary or hands the mirror an event its Append would reject.
func (c *ColumnarTrace) validate() error {
	n := c.Len()
	for _, col := range []struct {
		name string
		l    int
	}{
		{"kinds", len(c.Kinds)}, {"keys", len(c.Keys)}, {"types", len(c.Types)},
		{"sevs", len(c.Sevs)}, {"msgs", len(c.Msgs)}, {"values", len(c.Values)},
	} {
		if col.l != n {
			return fmt.Errorf("%w: %s column length %d != %d events", ErrColumnar, col.name, col.l, n)
		}
	}
	prev := math.Inf(-1)
	for i := 0; i < n; i++ {
		t := c.Times[i]
		if math.IsNaN(t) || t < prev {
			return fmt.Errorf("%w: event %d time %g out of order", ErrColumnar, i, t)
		}
		prev = t
		switch EventKind(c.Kinds[i]) {
		case KindError:
			if int(c.Keys[i]) >= len(c.Components) {
				return fmt.Errorf("%w: event %d component index %d out of range", ErrColumnar, i, c.Keys[i])
			}
			if int(c.Msgs[i]) >= len(c.Messages) {
				return fmt.Errorf("%w: event %d message index %d out of range", ErrColumnar, i, c.Msgs[i])
			}
			if s := eventlog.Severity(c.Sevs[i]); s < eventlog.SeverityInfo || s > eventlog.SeverityCritical {
				return fmt.Errorf("%w: event %d severity %d", ErrColumnar, i, c.Sevs[i])
			}
		case KindSample:
			if int(c.Keys[i]) >= len(c.Vars) {
				return fmt.Errorf("%w: event %d variable index %d out of range", ErrColumnar, i, c.Keys[i])
			}
		default:
			return fmt.Errorf("%w: event %d kind %d", ErrColumnar, i, c.Kinds[i])
		}
	}
	prev = math.Inf(-1)
	for i, f := range c.Failures {
		if math.IsNaN(f) || f < prev {
			return fmt.Errorf("%w: failure %d time %g out of order", ErrColumnar, i, f)
		}
		prev = f
	}
	return nil
}

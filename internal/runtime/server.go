package runtime

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"` // "ok" | "stopping"
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	QueueCapacity int     `json:"queueCapacity"`
	Evaluations   int64   `json:"evaluations"`
	// LastCycleAgoSeconds is the age of the newest act decision; -1
	// before the first cycle completes.
	LastCycleAgoSeconds float64 `json:"lastCycleAgoSeconds"`
}

// health snapshots liveness.
func (r *Runtime) health() Health {
	h := Health{
		Status:              "ok",
		UptimeSeconds:       r.Uptime().Seconds(),
		QueueDepth:          r.queue.depth(),
		QueueCapacity:       r.queue.capacity(),
		Evaluations:         r.metrics.Evaluations.Value(),
		LastCycleAgoSeconds: -1,
	}
	if !r.Running() {
		h.Status = "stopping"
	}
	if last := r.LastCycle(); !last.IsZero() {
		h.LastCycleAgoSeconds = time.Since(last).Seconds()
	}
	return h
}

// Handler serves the observability endpoints:
//
//	GET /metrics  — Prometheus text exposition of the pipeline metrics
//	GET /healthz  — JSON liveness (200 while running, 503 once stopping)
func (r *Runtime) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := r.health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

// Serve starts the observability server on addr (e.g. ":9600"; ":0" picks
// a free port). It returns the server and the bound address; shut it down
// with srv.Shutdown or srv.Close.
func (r *Runtime) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

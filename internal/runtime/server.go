package runtime

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"` // "ok" | "stopping"
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Shards        int     `json:"shards"`
	QueueDepth    int     `json:"queueDepth"`    // summed across shards
	QueueCapacity int     `json:"queueCapacity"` // summed across shards
	Evaluations   int64   `json:"evaluations"`
	// LastCycleAgoSeconds is the age of the newest act decision; -1
	// before the first cycle completes.
	LastCycleAgoSeconds float64 `json:"lastCycleAgoSeconds"`
}

// health snapshots liveness.
func (r *Runtime) health() Health {
	h := Health{
		Status:              "ok",
		UptimeSeconds:       r.Uptime().Seconds(),
		Shards:              r.Shards(),
		QueueDepth:          r.QueueDepth(),
		QueueCapacity:       r.queueCapacity(),
		Evaluations:         r.metrics.Evaluations.Value(),
		LastCycleAgoSeconds: -1,
	}
	if !r.Running() {
		h.Status = "stopping"
	}
	if last := r.LastCycle(); !last.IsZero() {
		h.LastCycleAgoSeconds = time.Since(last).Seconds()
	}
	return h
}

// Handler serves the observability endpoints:
//
//	GET /metrics  — Prometheus text exposition of the pipeline metrics
//	GET /healthz  — JSON liveness (200 while running, 503 once stopping)
//
// With Config.Profiling set, the standard net/http/pprof handlers are also
// mounted under /debug/pprof/.
func (r *Runtime) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := r.health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	if r.cfg.Profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the observability server on addr (e.g. ":9600"; ":0" picks
// a free port). It returns the server and the bound address; shut it down
// with srv.Shutdown or srv.Close.
func (r *Runtime) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

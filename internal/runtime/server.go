package runtime

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/pfmmodel"
	"repro/internal/predict"
)

// Health is the /healthz and /readyz response body.
type Health struct {
	// Status is "ok" while serving, "draining" once a graceful Stop has
	// begun (queues flushing through Apply), and "stopped" after the
	// drain completes. Readiness returns 503 for both non-ok states;
	// liveness (/livez) stays 200 for the life of the process.
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Shards        int     `json:"shards"`
	QueueDepth    int     `json:"queueDepth"`    // summed across shards
	QueueCapacity int     `json:"queueCapacity"` // summed across shards
	Evaluations   int64   `json:"evaluations"`
	// LastCycleAgoSeconds is the age of the newest act decision; -1
	// before the first cycle completes.
	LastCycleAgoSeconds float64 `json:"lastCycleAgoSeconds"`
}

// health snapshots readiness state.
func (r *Runtime) health() Health {
	h := Health{
		Status:              "ok",
		UptimeSeconds:       r.Uptime().Seconds(),
		Shards:              r.Shards(),
		QueueDepth:          r.QueueDepth(),
		QueueCapacity:       r.queueCapacity(),
		Evaluations:         r.metrics.Evaluations.Value(),
		LastCycleAgoSeconds: -1,
	}
	switch {
	case r.stopped.Load():
		h.Status = "stopped"
	case !r.Running():
		h.Status = "draining"
	}
	if last := r.LastCycle(); !last.IsZero() {
		h.LastCycleAgoSeconds = time.Since(last).Seconds()
	}
	return h
}

// ServeHealth renders a readiness body: 200 while status is "ok", 503
// during drain ("draining") and after shutdown ("stopped"). Shared by
// /healthz and /readyz on both the single-tenant and fleet planes.
func ServeHealth(w http.ResponseWriter, h Health) {
	w.Header().Set("Content-Type", "application/json")
	if h.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}

// ServeLiveness answers liveness probes: the process is serving HTTP, so
// it is alive regardless of drain state — restarting a draining pod
// would turn every graceful shutdown into a kill.
func ServeLiveness(w http.ResponseWriter, status string) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"live\",\"pipeline\":%q}\n", status)
}

// kindLabel names an event kind byte for trace rendering.
func kindLabel(k uint8) string {
	switch EventKind(k) {
	case KindError:
		return "error"
	case KindSample:
		return "sample"
	default:
		return strconv.Itoa(int(k))
	}
}

// traceJSON is one trace in /tracez?format=json.
type traceJSON struct {
	ID      uint64           `json:"id"`
	Kind    string           `json:"kind"`
	Key     string           `json:"key"`
	Shard   int              `json:"shard"`
	State   string           `json:"state"` // "done" | "applied" | "dropped"
	TotalNs int64            `json:"total_ns"`
	Stages  map[string]int64 `json:"stages_ns"`
}

func toTraceJSON(v obs.TraceView) traceJSON {
	state := "applied"
	switch {
	case v.Dropped:
		state = "dropped"
	case v.Complete:
		state = "done"
	}
	stages := make(map[string]int64, obs.NumStages)
	for i, d := range v.Stages {
		// Incomplete traces omit the cycle stages they never reached.
		if d == 0 && i > obs.StageApply && !v.Complete {
			continue
		}
		stages[obs.StageNames[i]] = int64(d)
	}
	return traceJSON{
		ID: v.ID, Kind: kindLabel(v.Kind), Key: v.Key, Shard: v.Shard,
		State: state, TotalNs: int64(v.Total), Stages: stages,
	}
}

// serveTracez renders the slowest recent end-to-end traces: a human text
// table by default, JSON with ?format=json, count via ?n= (default 20).
func (r *Runtime) serveTracez(w http.ResponseWriter, req *http.Request) {
	n := 20
	if v, err := strconv.Atoi(req.URL.Query().Get("n")); err == nil && v > 0 {
		n = v
	}
	traces := r.cfg.Tracer.Slowest(n)
	if req.URL.Query().Get("format") == "json" {
		out := make([]traceJSON, len(traces))
		for i, v := range traces {
			out[i] = toTraceJSON(v)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "tracez: %d slowest of the %d most recent traces\n\n",
		len(traces), r.cfg.Tracer.Capacity())
	_ = obs.WriteText(w, traces, kindLabel)
}

// tableJSON renders a contingency table with its derived metrics; metric
// pointers are nil while their denominator is empty (JSON cannot carry NaN).
type tableJSON struct {
	TP        int      `json:"tp"`
	FP        int      `json:"fp"`
	TN        int      `json:"tn"`
	FN        int      `json:"fn"`
	Precision *float64 `json:"precision,omitempty"`
	Recall    *float64 `json:"recall,omitempty"`
	FPR       *float64 `json:"fpr,omitempty"`
	F1        *float64 `json:"f1,omitempty"`
}

func toTableJSON(c predict.ContingencyTable) tableJSON {
	finite := func(v float64) *float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return &v
	}
	f1 := c.FMeasure()
	return tableJSON{
		TP: c.TP, FP: c.FP, TN: c.TN, FN: c.FN,
		Precision: finite(c.Precision()), Recall: finite(c.Recall()),
		FPR: finite(c.FPR()), F1: finite(f1),
	}
}

// ledgerLayerJSON is one layer in the /ledger response.
type ledgerLayerJSON struct {
	Layer      string    `json:"layer"`
	Rolling    tableJSON `json:"rolling"`
	Cumulative tableJSON `json:"cumulative"`
	Pending    int       `json:"pending"`
}

// ledgerJSON is the /ledger response body.
type ledgerJSON struct {
	LeadTimeSeconds float64           `json:"leadTimeSeconds"`
	SlackSeconds    float64           `json:"slackSeconds"`
	WindowSeconds   float64           `json:"windowSeconds"`
	Watermark       float64           `json:"watermark"`
	Predictions     int64             `json:"predictions"`
	Failures        int64             `json:"failures"`
	Layers          []ledgerLayerJSON `json:"layers"`
	// Model compares the Section 5 CTMC under the combined layer's
	// measured cumulative quality against the paper's Table 2 reference;
	// absent until the table can parameterize the chain.
	Model *obs.ModelAssessment `json:"model,omitempty"`
}

// serveLedger renders the prediction-quality ledger as JSON.
func (r *Runtime) serveLedger(w http.ResponseWriter, _ *http.Request) {
	snap := r.cfg.Ledger.Snapshot()
	out := ledgerJSON{
		LeadTimeSeconds: snap.LeadTime,
		SlackSeconds:    snap.Slack,
		WindowSeconds:   snap.Window,
		Watermark:       snap.Watermark,
		Predictions:     snap.Predictions,
		Failures:        snap.Failures,
		Layers:          make([]ledgerLayerJSON, len(snap.Layers)),
	}
	for i, lq := range snap.Layers {
		out.Layers[i] = ledgerLayerJSON{
			Layer:      lq.Layer,
			Rolling:    toTableJSON(lq.Rolling),
			Cumulative: toTableJSON(lq.Cumulative),
			Pending:    lq.Pending,
		}
	}
	if a, err := obs.AssessModel(r.cfg.Ledger.Cumulative(obs.CombinedLayer), pfmmodel.DefaultParams()); err == nil {
		out.Model = &a
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// IncidentSummary is one bundle row in the /incidents list view.
type IncidentSummary struct {
	ID          string          `json:"id"`
	Scope       string          `json:"scope,omitempty"`
	Trigger     obs.TriggerKind `json:"trigger"`
	Time        float64         `json:"time"`
	Detail      string          `json:"detail,omitempty"`
	Confidence  float64         `json:"confidence"`
	Action      string          `json:"action,omitempty"`
	TraceID     uint64          `json:"trace_id,omitempty"`
	EventsTotal int             `json:"events_total"`
	TopSuspect  string          `json:"top_suspect,omitempty"`
}

// SummarizeIncident projects a bundle onto its list row.
func SummarizeIncident(b *obs.IncidentBundle) IncidentSummary {
	s := IncidentSummary{
		ID: b.ID, Scope: b.Scope, Trigger: b.Trigger, Time: b.Time,
		Detail: b.Detail, Confidence: b.Confidence, Action: b.Action,
		TraceID: b.TraceID, EventsTotal: b.EventsTotal,
	}
	if len(b.Suspects) > 0 {
		s.TopSuspect = b.Suspects[0].Component
	}
	return s
}

// ServeIncidents renders the /incidents plane over any bundle source:
// the newest-last summary list by default, one full bundle with ?id=.
// Shared by the single-tenant runtime and the fleet handler.
func ServeIncidents(w http.ResponseWriter, req *http.Request,
	list func() []*obs.IncidentBundle, get func(id string) *obs.IncidentBundle) {
	w.Header().Set("Content-Type", "application/json")
	if id := req.URL.Query().Get("id"); id != "" {
		b := get(id)
		if b == nil {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, "{\"error\":\"no bundle %q (evicted or never captured)\"}\n", id)
			return
		}
		_ = json.NewEncoder(w).Encode(b)
		return
	}
	bundles := list()
	out := make([]IncidentSummary, len(bundles))
	for i, b := range bundles {
		out[i] = SummarizeIncident(b)
	}
	_ = json.NewEncoder(w).Encode(out)
}

// Handler serves the observability endpoints:
//
//	GET /metrics   — Prometheus text exposition of the pipeline metrics
//	GET /healthz   — JSON readiness (200 while running, 503 once draining
//	                 or stopped); /readyz is an alias
//	GET /livez     — JSON liveness (200 for the life of the process)
//	GET /tracez    — slowest recent end-to-end traces (with Config.Tracer;
//	                 text table, or JSON with ?format=json)
//	GET /ledger    — prediction-quality ledger snapshot (with Config.Ledger)
//	GET /layers    — per-layer predictor lifecycle status: state, serving
//	                 version, drift/retrain/swap counters (with
//	                 Config.Lifecycle)
//	GET /incidents — flight-recorder bundles: summary list, or one full
//	                 bundle with ?id= (with Config.Recorder)
//
// With Config.Profiling set, the standard net/http/pprof handlers are also
// mounted under /debug/pprof/.
func (r *Runtime) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.metrics.WritePrometheus(w)
	})
	ready := func(w http.ResponseWriter, _ *http.Request) { ServeHealth(w, r.health()) }
	mux.HandleFunc("/healthz", ready)
	mux.HandleFunc("/readyz", ready)
	mux.HandleFunc("/livez", func(w http.ResponseWriter, _ *http.Request) {
		ServeLiveness(w, r.health().Status)
	})
	if r.cfg.Tracer != nil {
		mux.HandleFunc("/tracez", r.serveTracez)
	}
	if r.cfg.Ledger != nil {
		mux.HandleFunc("/ledger", r.serveLedger)
	}
	if r.cfg.Lifecycle != nil {
		mux.HandleFunc("/layers", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(r.cfg.Lifecycle.States())
		})
	}
	if r.cfg.Recorder != nil {
		mux.HandleFunc("/incidents", func(w http.ResponseWriter, req *http.Request) {
			ServeIncidents(w, req, r.cfg.Recorder.Bundles, r.cfg.Recorder.Bundle)
		})
	}
	if r.cfg.Profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the observability server on addr (e.g. ":9600"; ":0" picks
// a free port). It returns the server and the bound address; shut it down
// with srv.Shutdown or srv.Close.
func (r *Runtime) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

package runtime

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Pool is a fixed pool of long-lived workers for index-addressed fan-out —
// the shared evaluate stage. A single-runtime pipeline fans its layers
// across the workers (Evaluate); the fleet runtime reuses the same pool for
// cross-tenant batches (Do), so thousands of tenants share one set of
// evaluation goroutines instead of spawning per-tenant ones.
type Pool struct {
	tasks   chan poolJob
	workers int
	wg      sync.WaitGroup
}

// poolJob is one Do call: workers claim indices [0,n) via the shared atomic
// cursor and mark each completed index on done. Every worker that receives
// a copy participates until the cursor is exhausted.
type poolJob struct {
	fn   func(i int)
	n    int
	next *atomic.Int64
	done *sync.WaitGroup
}

func (j poolJob) run() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(i)
		j.done.Done()
	}
}

// NewPool starts workers goroutines (minimum 1). Close releases them.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan poolJob, workers), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for j := range p.tasks {
				j.run()
			}
		}()
	}
	return p
}

// Do runs fn(i) for every i in [0,n) across the pool's workers and returns
// once all n calls finished. The submitting goroutine participates too, so
// progress is guaranteed even when every worker is busy with another job.
// Output must be index-addressed (fn(i) writes only slot i of its result):
// then the result is independent of worker count and scheduling — the same
// determinism contract as internal/par. A nil pool runs inline and serial.
func (p *Pool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var done sync.WaitGroup
	done.Add(n)
	j := poolJob{fn: fn, n: n, next: &next, done: &done}
	for w := 0; w < p.workers; w++ {
		select {
		case p.tasks <- j:
		default:
			// Buffer full: enough copies are queued; the submitter and the
			// workers already holding a copy will drain the cursor.
		}
	}
	j.run()
	done.Wait()
}

// Evaluate scores every layer at time now and returns the per-layer score
// vector (NaN = abstained). Layers run concurrently up to the pool's
// worker count; Evaluate itself is safe for use from one goroutine at a
// time per result (the runtime's evaluate stage is that goroutine).
func (p *Pool) Evaluate(layers []*core.Layer, now float64) []float64 {
	out := make([]float64, len(layers))
	p.Do(len(layers), func(i int) {
		s, err := layers[i].Score(now)
		if err != nil {
			s = math.NaN() // abstain, same convention as core.EvaluateLayers
		}
		out[i] = s
	})
	return out
}

// Close stops the workers after in-flight jobs finish.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

package runtime

import (
	"math"
	"sync"

	"repro/internal/core"
)

// Pool is a fixed worker pool that scores MEA layers in parallel — the
// sharded evaluate stage. Workers are long-lived; each Evaluate call fans
// its layers across them and waits for the full score vector, so one slow
// layer no longer serializes the whole cycle behind it.
type Pool struct {
	tasks chan poolTask
	wg    sync.WaitGroup
}

type poolTask struct {
	layer *core.Layer
	now   float64
	out   []float64
	i     int
	done  *sync.WaitGroup
}

// NewPool starts workers goroutines (minimum 1). Close releases them.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan poolTask)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				s, err := t.layer.Score(t.now)
				if err != nil {
					s = math.NaN() // abstain, same convention as core.EvaluateLayers
				}
				t.out[t.i] = s
				t.done.Done()
			}
		}()
	}
	return p
}

// Evaluate scores every layer at time now and returns the per-layer score
// vector (NaN = abstained). Layers run concurrently up to the pool's
// worker count; Evaluate itself is safe for use from one goroutine at a
// time per result (the runtime's evaluate stage is that goroutine).
func (p *Pool) Evaluate(layers []*core.Layer, now float64) []float64 {
	out := make([]float64, len(layers))
	var done sync.WaitGroup
	done.Add(len(layers))
	for i, l := range layers {
		p.tasks <- poolTask{layer: l, now: now, out: out, i: i, done: &done}
	}
	done.Wait()
	return out
}

// Close stops the workers after in-flight tasks finish.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

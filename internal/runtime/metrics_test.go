package runtime

import (
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help text", "kind", "a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	reg.GaugeFunc("test_gauge", "a gauge", func() float64 { return 2.5 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		`test_total{kind="a"} 5`,
		"# TYPE test_gauge gauge",
		"test_gauge 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, "stage", "x")
	for _, v := range []float64{0.0005, 0.001, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.0515) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="x",le="0.001"} 2`, // 0.0005 and the exact bound
		`lat_seconds_bucket{stage="x",le="0.01"} 2`,
		`lat_seconds_bucket{stage="x",le="0.1"} 3`,
		`lat_seconds_bucket{stage="x",le="+Inf"} 4`,
		`lat_seconds_count{stage="x"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSharedFamilyRendersOneTypeLine(t *testing.T) {
	m := NewMetrics()
	m.DroppedOldest.Inc()
	m.DroppedNewest.Add(2)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE pfm_events_dropped_total"); got != 1 {
		t.Fatalf("TYPE lines for shared family = %d, want 1\n%s", got, out)
	}
	if !strings.Contains(out, `pfm_events_dropped_total{reason="oldest"} 1`) ||
		!strings.Contains(out, `pfm_events_dropped_total{reason="newest"} 2`) {
		t.Fatalf("missing labeled drop counters in:\n%s", out)
	}
	if m.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", m.Dropped())
	}
}

// TestServerEndpoints exercises /metrics and /healthz over a real listener,
// including the 503 flip once the pipeline stops.
func TestServerEndpoints(t *testing.T) {
	rt := startRuntime(t, func(Event) error { return nil }, 4, Block)
	srv, addr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := rt.Ingest(context.Background(), Event{Time: 1}); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"pfm_events_ingested_total",
		"pfm_queue_depth",
		"pfm_queue_capacity 4",
		"pfm_events_dropped_total",
		"pfm_stage_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body = get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after stop: %d %s", code, body)
	}
}

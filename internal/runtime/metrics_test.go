package runtime

import (
	"context"
	"io"
	"math"
	"net/http"
	stdruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help text", "kind", "a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	reg.GaugeFunc("test_gauge", "a gauge", func() float64 { return 2.5 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		`test_total{kind="a"} 5`,
		"# TYPE test_gauge gauge",
		"test_gauge 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1}, "stage", "x")
	for _, v := range []float64{0.0005, 0.001, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.0515) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="x",le="0.001"} 2`, // 0.0005 and the exact bound
		`lat_seconds_bucket{stage="x",le="0.01"} 2`,
		`lat_seconds_bucket{stage="x",le="0.1"} 3`,
		`lat_seconds_bucket{stage="x",le="+Inf"} 4`,
		`lat_seconds_count{stage="x"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSharedFamilyRendersOneTypeLine(t *testing.T) {
	m := NewMetrics()
	m.DroppedOldest.Inc()
	m.DroppedNewest.Add(2)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE pfm_events_dropped_total"); got != 1 {
		t.Fatalf("TYPE lines for shared family = %d, want 1\n%s", got, out)
	}
	if !strings.Contains(out, `pfm_events_dropped_total{reason="oldest"} 1`) ||
		!strings.Contains(out, `pfm_events_dropped_total{reason="newest"} 2`) {
		t.Fatalf("missing labeled drop counters in:\n%s", out)
	}
	if m.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", m.Dropped())
	}
}

// TestMemStatsCacheTTL pins the 500 ms ReadMemStats cache contract: a hit
// inside the TTL returns the identical snapshot even after GC activity, an
// expired entry refreshes, and every registry shares the one process-wide
// cache (a scrape storm across planes stops the world at most once per TTL).
func TestMemStatsCacheTTL(t *testing.T) {
	c := goMemCache
	reset := func(at time.Time) {
		c.mu.Lock()
		c.at = at
		c.mu.Unlock()
	}
	reset(time.Time{}) // force a fresh read
	s1 := c.snapshot()
	// Provoke GC state changes the cache must NOT see inside the TTL.
	garbage := make([][]byte, 4)
	for i := range garbage {
		garbage[i] = make([]byte, 1<<20)
	}
	garbage = nil
	_ = garbage
	stdruntime.GC()
	if s2 := c.snapshot(); s2 != s1 {
		t.Fatalf("cache hit returned a different snapshot:\nfirst %+v\nthen  %+v", s1, s2)
	}
	// Past the TTL the next read refreshes: NumGC advanced above.
	reset(time.Now().Add(-memStatsTTL - time.Second))
	if s3 := c.snapshot(); s3.NumGC <= s1.NumGC {
		t.Fatalf("expired cache did not refresh: NumGC %d -> %d", s1.NumGC, s3.NumGC)
	}
	// Both planes share the singleton: plant a sentinel snapshot and pin
	// the TTL window open; two independent metric sets must both render it.
	c.mu.Lock()
	c.stat.NumGC = 1234567
	c.at = time.Now()
	c.mu.Unlock()
	for i, m := range []*Metrics{NewMetrics(), NewMetrics()} {
		var sb strings.Builder
		if err := m.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "pfm_go_gc_cycles_total 1.234567e+06") {
			t.Fatalf("registry %d did not serve the shared cached snapshot", i)
		}
	}
	reset(time.Time{}) // leave a clean cache for other tests
}

// TestBuildInfoVCSLabels: pfm_build_info carries revision and vcstime
// labels resolved from the build settings ("unknown" in test binaries,
// never absent).
func TestBuildInfoVCSLabels(t *testing.T) {
	var sb strings.Builder
	if err := NewMetrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`revision="`, `vcstime="`, `version="`} {
		if !strings.Contains(out, want) {
			t.Fatalf("pfm_build_info missing %s label:\n%s", want, out)
		}
	}
	version, revision, vcsTime := buildIdentity()
	if version == "" || revision == "" || vcsTime == "" {
		t.Fatalf("buildIdentity returned empty fields: %q %q %q", version, revision, vcsTime)
	}
}

// TestServerEndpoints exercises /metrics and /healthz over a real listener,
// including the 503 flip once the pipeline stops.
func TestServerEndpoints(t *testing.T) {
	rt := startRuntime(t, func(Event) error { return nil }, 4, Block)
	srv, addr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := rt.Ingest(context.Background(), Event{Time: 1}); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body = get("/readyz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("readyz: %d %s", code, body)
	}
	if code, body = get("/livez"); code != http.StatusOK || !strings.Contains(body, `"status":"live"`) {
		t.Fatalf("livez: %d %s", code, body)
	}
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"pfm_events_ingested_total",
		"pfm_queue_depth",
		"pfm_queue_capacity 4",
		"pfm_events_dropped_total",
		"pfm_stage_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body = get("/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, `"status":"stopped"`) {
		t.Fatalf("healthz after stop: %d %s", code, body)
	}
	if code, body = get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after stop: %d %s", code, body)
	}
	// Liveness must survive the drain: the process still serves.
	if code, body = get("/livez"); code != http.StatusOK ||
		!strings.Contains(body, `"pipeline":"stopped"`) {
		t.Fatalf("livez after stop: %d %s", code, body)
	}
}

// TestReadinessDraining pins the intermediate readiness state: while a
// graceful Stop drains the queues through a slow Apply, readiness reports
// "draining" with 503, flipping to "stopped" when the drain lands.
func TestReadinessDraining(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	entered := make(chan struct{})
	rt := startRuntime(t, func(Event) error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	}, 8, Block)
	ctx := context.Background()
	if err := rt.Ingest(ctx, Event{Time: 1}); err != nil {
		t.Fatal(err)
	}
	<-entered // Apply is now wedged mid-drain
	stopped := make(chan error, 1)
	go func() { stopped <- rt.Stop(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for rt.health().Status != "draining" {
		if time.Now().After(deadline) {
			t.Fatalf("health never reported draining: %+v", rt.health())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-stopped; err != nil {
		t.Fatal(err)
	}
	if got := rt.health().Status; got != "stopped" {
		t.Fatalf("post-drain status = %q, want stopped", got)
	}
}

// Package runtime turns the batch-mode PFM library into a long-running
// service: a concurrent, wall-clock Monitor–Evaluate–Act pipeline over
// live event streams, the online counterpart of the simulation-clocked
// experiments (the paper's Fig. 1 loop and Sect. 6 blueprint describe
// exactly this shape — a control loop that keeps up with monitoring
// ingest).
//
// The pipeline has three stages, each context-driven with clean shutdown
// and drain:
//
//		producers ──Ingest──▶ [bounded queue] ──▶ apply to predictor state
//		                                             │ (serialized writes)
//		     ticker / EvaluateNow ──▶ evaluate stage ─┤ (parallel Layer.Evaluate
//		                                             │  in a worker pool)
//		                              act stage ◀────┘ (serialized core.ActOn)
//
//	  - Ingest accepts error events and monitoring samples through a bounded
//	    queue with an explicit overflow policy — Block (backpressure),
//	    DropOldest (keep the freshest evidence), or DropNewest (protect the
//	    backlog) — with per-policy drop counters. A single consumer applies
//	    events to the user's predictor-visible state under the runtime's
//	    state lock.
//	  - Evaluate fires on a wall-clock ticker (and on demand via
//	    EvaluateNow); per-layer predictors score in parallel in a worker
//	    pool, under the state read-lock, so layers see a consistent snapshot
//	    while ingest keeps queueing behind them.
//	  - Act consumes score vectors serially and calls core.Engine.ActOn,
//	    preserving the single cross-layer decision and oscillation-guard
//	    semantics of the batch engine.
//
// Observability is built in: every stage feeds an atomic-counter Metrics
// registry (events ingested/applied/dropped, evaluations, warnings,
// actions, per-stage latency histograms, queue depth) rendered in
// Prometheus text format, served with /healthz over stdlib net/http.
//
// Invariant (checked by the stress tests): after Stop returns, every
// event presented to Ingest was either applied or counted dropped —
// ingested = applied + dropped.
package runtime

package runtime

import (
	"context"
	stdruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/eventlog"
	"repro/internal/obs"
)

// Recorder acceptance trace: a failure every recFailEvery ticks, announced
// one tick ahead by a recBurst-event "disk-3" error burst over a steady
// one-event-per-tick "app-1" background — so the error-rate layer warns
// inside the lead time and the diagnoser has an unambiguous culprit.
const (
	recTicks     = 120
	recFailEvery = 20
	recBurst     = 6
)

// recorderTraceEvents returns the error events injected at tick.
func recorderTraceEvents(tick int) []eventlog.Event {
	evs := []eventlog.Event{{
		Time: float64(tick), Component: "app-1", Type: 1,
		Severity: eventlog.SeverityWarning, Message: "background noise",
	}}
	if failAt(tick+1, recFailEvery) {
		for i := 0; i < recBurst; i++ {
			evs = append(evs, eventlog.Event{
				Time: float64(tick), Component: "disk-3", Type: 7,
				Severity: eventlog.SeverityError, Message: "io stall",
			})
		}
	}
	return evs
}

// trainRecorderDiagnoser builds the offline reference: the full trace as
// one event log plus a diagnoser trained on its ground-truth failures.
// The same diagnoser serves the recorder during replay (over the live
// mirror) and the offline comparison (over this log) — bundle suspects
// must match DiagnoseRange on the same window either way.
func trainRecorderDiagnoser(t *testing.T) (*diagnose.Diagnoser, *eventlog.Log) {
	t.Helper()
	offline := eventlog.NewLog()
	var failures []float64
	for tick := 1; tick <= recTicks; tick++ {
		for _, e := range recorderTraceEvents(tick) {
			if err := offline.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		if failAt(tick, recFailEvery) {
			failures = append(failures, float64(tick))
		}
	}
	failWins, nonFailWins, err := diagnose.CollectWindowRanges(offline, failures, eventlog.ExtractConfig{
		DataWindow:       3,
		LeadTime:         0, // diagnose from the window adjacent to the failure
		MinEvents:        1,
		NonFailureStride: 7,
		NonFailureGuard:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := diagnose.TrainOnRanges(offline, failWins, nonFailWins, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, offline
}

// replayRecorderTrace drives one full gated replay of the recorder trace
// through a fresh pipeline (mirror log, error-rate layer, ledger, tracer,
// flight recorder) and returns the recorder and tracer after Stop. A
// single shard keeps the mirror appends serialized in ingest order, and
// ScoreDepth > recTicks rules out ring eviction — together with the
// applied/evaluations gating this makes the replay bit-for-bit
// reproducible, which the determinism assertions below rely on.
func replayRecorderTrace(t *testing.T, diag *diagnose.Diagnoser) (*obs.Recorder, *obs.Tracer) {
	t.Helper()
	mirror := eventlog.NewLog()
	layer := &core.Layer{
		Name: "errrate",
		Evaluate: func(now float64) (float64, error) {
			lo, hi := mirror.ScanWindow(now-1.5, now+1e-9)
			return float64(hi-lo) / 3, nil
		},
		Threshold: 1,
	}
	eng := testEngine(t, defaultCoreCfg(), layer)
	led, err := obs.NewLedger(obs.LedgerConfig{LeadTime: 1, Window: 40}, "errrate")
	if err != nil {
		t.Fatal(err)
	}
	recordFailures(led, recTicks+recFailEvery, recFailEvery)
	tracer := obs.NewTracer(512) // > total trace events: every span retained
	tracer.SetSampleInterval(1)
	rec, err := obs.NewRecorder(obs.RecorderConfig{
		Scope:         "replay",
		Layers:        []string{"errrate"},
		Window:        12,
		ScoreDepth:    recTicks + recFailEvery,
		WarnThreshold: 0.75,
		Refractory:    15, // < failure period: every episode captures
		MaxBundles:    64,
		Log:           mirror,
		Tracer:        tracer,
		Ledger:        led,
		Diagnose: func(from, to float64) []diagnose.Suspect {
			// The repo-wide now+1e-9 idiom makes the upper bound inclusive,
			// so the trigger tick's own burst is in the diagnosed window.
			return diag.DiagnoseRange(mirror, from, to+1e-9)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Engine:        eng,
		Apply:         func(ev Event) error { return mirror.Append(ev.Error) },
		Clock:         tickClock(),
		QueueCapacity: 256,
		Overflow:      Block,
		Shards:        1,
		Ledger:        led,
		Tracer:        tracer,
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rt.Start(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	ingested := int64(0)
	for tick := 1; tick <= recTicks; tick++ {
		for _, e := range recorderTraceEvents(tick) {
			if err := rt.Ingest(ctx, Event{Kind: KindError, Time: float64(tick), Error: e}); err != nil {
				t.Fatal(err)
			}
			ingested++
		}
		waitCounter(t, "applied", rt.metrics.Applied.Value, ingested, deadline)
		rt.EvaluateNow()
		waitCounter(t, "evaluations", rt.metrics.Evaluations.Value, int64(tick), deadline)
	}
	if err := rt.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	return rec, tracer
}

// recorderFingerprints renders the retained bundle set (oldest first) as
// one replay-deterministic string.
func recorderFingerprints(rec *obs.Recorder) string {
	var sb strings.Builder
	for _, b := range rec.Bundles() {
		sb.WriteString(b.Fingerprint())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestRecorderIncidentReplay is the flight-recorder acceptance test:
// replaying a trace with injected faults produces warn bundles whose trace
// ID names a complete /tracez span and whose top suspect matches an
// offline DiagnoseRange over the same window — and the bundle set is
// byte-identical across replays and across GOMAXPROCS settings.
func TestRecorderIncidentReplay(t *testing.T) {
	diag, offline := trainRecorderDiagnoser(t)
	rec, tracer := replayRecorderTrace(t, diag)

	bundles := rec.Bundles()
	if len(bundles) == 0 {
		t.Fatal("no incident bundles captured on the faulty trace")
	}
	complete := make(map[uint64]bool)
	for _, v := range tracer.Snapshot() {
		if v.Complete {
			complete[v.ID] = true
		}
	}
	warns := 0
	for _, b := range bundles {
		if b.Trigger != obs.TriggerWarn {
			continue
		}
		warns++
		// The triggering decision correlates with a real, complete span.
		if b.TraceID == 0 || !complete[b.TraceID] {
			t.Fatalf("bundle %s trace ID %d is not a complete tracer span", b.ID, b.TraceID)
		}
		// The embedded suspects blame the burst component and agree with an
		// offline diagnosis of the same window on the full-trace log.
		if len(b.Suspects) == 0 {
			t.Fatalf("bundle %s has no suspects", b.ID)
		}
		if b.Suspects[0].Component != "disk-3" {
			t.Fatalf("bundle %s top suspect = %+v, want disk-3", b.ID, b.Suspects[0])
		}
		off := diag.DiagnoseRange(offline, b.EventsFrom, b.EventsTo+1e-9)
		if len(off) == 0 || off[0] != b.Suspects[0] {
			t.Fatalf("bundle %s suspect %+v != offline DiagnoseRange %+v over [%g, %g]",
				b.ID, b.Suspects[0], off, b.EventsFrom, b.EventsTo)
		}
		if len(b.Scores) == 0 || len(b.Events) == 0 {
			t.Fatalf("bundle %s missing score history (%d) or events (%d)",
				b.ID, len(b.Scores), len(b.Events))
		}
	}
	// One warn capture per failure episode; the repeat warning on the
	// failure tick itself lands in the refractory window.
	episodes := recTicks / recFailEvery
	if warns != episodes {
		t.Fatalf("warn bundles = %d, want %d (one per failure episode)", warns, episodes)
	}
	if got := rec.Captured(obs.TriggerWarn); got != int64(episodes) {
		t.Fatalf("Captured(warn) = %d, want %d", got, episodes)
	}
	if rec.Suppressed() == 0 {
		t.Fatal("refractory gate suppressed nothing despite repeat warnings")
	}

	// Determinism contract: identical fingerprint sets across a second
	// replay and across GOMAXPROCS 1 and 4.
	want := recorderFingerprints(rec)
	again, _ := replayRecorderTrace(t, diag)
	if got := recorderFingerprints(again); got != want {
		t.Fatalf("second replay produced a different bundle set:\n%s\nvs\n%s", got, want)
	}
	prev := stdruntime.GOMAXPROCS(1)
	serial, _ := replayRecorderTrace(t, diag)
	stdruntime.GOMAXPROCS(4)
	wide, _ := replayRecorderTrace(t, diag)
	stdruntime.GOMAXPROCS(prev)
	if got := recorderFingerprints(serial); got != want {
		t.Fatalf("GOMAXPROCS(1) replay produced a different bundle set:\n%s\nvs\n%s", got, want)
	}
	if got := recorderFingerprints(wide); got != want {
		t.Fatalf("GOMAXPROCS(4) replay produced a different bundle set:\n%s\nvs\n%s", got, want)
	}
}

package runtime

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPoolDoCoversAllIndices checks every index is claimed exactly once for
// a range of fan-out sizes and worker counts, including n much larger than
// the worker count and a nil (inline) pool.
func TestPoolDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		var p *Pool
		if workers > 0 {
			p = NewPool(workers)
		}
		for _, n := range []int{0, 1, 7, 100, 1000} {
			hits := make([]atomic.Int32, n)
			p.Do(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
		if p != nil {
			p.Close()
		}
	}
}

// TestPoolDoDeterministic verifies index-addressed output is identical for
// every worker count — the shared-pool half of the internal/par contract the
// fleet's batched cross-tenant evaluation relies on.
func TestPoolDoDeterministic(t *testing.T) {
	const n = 513
	work := func(p *Pool) []float64 {
		out := make([]float64, n)
		p.Do(n, func(i int) { out[i] = float64(i)*1.5 + 1 })
		return out
	}
	want := work(nil)
	for _, workers := range []int{1, 2, 5, 16} {
		p := NewPool(workers)
		got := work(p)
		p.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %g, want %g", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPoolSequentialJobs runs many Do calls back to back on one pool; a
// stale worker from a previous job must never bleed into the next one.
func TestPoolSequentialJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 200; round++ {
		var sum atomic.Int64
		p.Do(10, func(i int) { sum.Add(int64(i)) })
		if got := sum.Load(); got != 45 {
			t.Fatalf("round %d: sum = %d, want 45", round, got)
		}
	}
}

// TestShardGaugesRenderZeroFromStart is the dashboard-gap regression test:
// every shard's depth gauge and drop counter must render (as 0) from
// construction on, even for shards that never receive an event, and still
// render 0 after shutdown.
func TestShardGaugesRenderZeroFromStart(t *testing.T) {
	const shards = 5
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply:  func(Event) error { return nil },
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var sb strings.Builder
		if err := rt.Metrics().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	check := func(stage string) {
		out := render()
		for _, want := range []string{
			`pfm_shard_queue_depth{shard="0"} 0`,
			`pfm_shard_queue_depth{shard="1"} 0`,
			`pfm_shard_queue_depth{shard="2"} 0`,
			`pfm_shard_queue_depth{shard="3"} 0`,
			`pfm_shard_queue_depth{shard="4"} 0`,
			`pfm_shard_dropped_total{shard="0"} 0`,
			`pfm_shard_dropped_total{shard="4"} 0`,
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: metrics missing %q:\n%s", stage, want, out)
			}
		}
	}
	check("before Start")
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	check("after Start, before traffic")
	// Traffic on one key touches at most one shard; the others stay 0.
	for i := 0; i < 10; i++ {
		if err := rt.Ingest(context.Background(), Event{Kind: KindSample, Variable: "cpu", Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	check("after Stop")
}

package runtime

import (
	"context"
	"sync"
	"testing"
)

// TestTenantShardKey checks the tenant-aware refinements of DefaultShardKey:
// untagged events keep their exact single-tenant keys, tenant-tagged streams
// are keyed per tenant, and tenant/variable concatenation cannot collide
// with a different split of the same bytes.
func TestTenantShardKey(t *testing.T) {
	plain := Event{Kind: KindSample, Variable: "cpu"}
	if got := DefaultShardKey(plain); got != "cpu" {
		t.Fatalf("untagged sample key = %q, want %q", got, "cpu")
	}
	a := Event{Kind: KindSample, Tenant: "t1", Variable: "cpu"}
	b := Event{Kind: KindSample, Tenant: "t2", Variable: "cpu"}
	if DefaultShardKey(a) == DefaultShardKey(b) {
		t.Fatal("same variable of different tenants shares a shard key")
	}
	if DefaultShardKey(a) == DefaultShardKey(plain) {
		t.Fatal("tenant-tagged key collides with the untagged key")
	}
	// Error streams are serialized per tenant, not globally.
	e1 := Event{Kind: KindError, Tenant: "t1"}
	e2 := Event{Kind: KindError, Tenant: "t2"}
	if DefaultShardKey(e1) == DefaultShardKey(e2) {
		t.Fatal("different tenants' error logs share a shard key")
	}
	if DefaultShardKey(e1) != DefaultShardKey(Event{Kind: KindError, Tenant: "t1"}) {
		t.Fatal("tenant error key is not stable")
	}
	// Ambiguous concatenations must not alias: tenant "ab" + variable "c"
	// vs tenant "a" + variable "bc".
	x := Event{Kind: KindSample, Tenant: "ab", Variable: "c"}
	y := Event{Kind: KindSample, Tenant: "a", Variable: "bc"}
	if DefaultShardKey(x) == DefaultShardKey(y) {
		t.Fatal("tenant/variable concatenation is ambiguous")
	}
}

// TestTenantPerStreamOrdering ingests interleaved tenant streams through a
// sharded runtime and verifies each (tenant, variable) stream applies in
// ingest order while tenants proceed independently.
func TestTenantPerStreamOrdering(t *testing.T) {
	var mu sync.Mutex
	perStream := make(map[string][]float64)
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply: func(ev Event) error {
			mu.Lock()
			k := ev.Tenant + "/" + ev.Variable
			perStream[k] = append(perStream[k], ev.Value)
			mu.Unlock()
			return nil
		},
		QueueCapacity: 64,
		Overflow:      Block,
		Shards:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	tenants := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	const perStreamEvents = 100
	for i := 0; i < perStreamEvents; i++ {
		for _, tn := range tenants {
			ev := Event{Kind: KindSample, Tenant: tn, Time: float64(i), Variable: "cpu", Value: float64(i)}
			if err := rt.Ingest(context.Background(), ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, tn := range tenants {
		got := perStream[tn+"/cpu"]
		if len(got) != perStreamEvents {
			t.Fatalf("tenant %q: applied %d events, want %d", tn, len(got), perStreamEvents)
		}
		for i, v := range got {
			if v != float64(i) {
				t.Fatalf("tenant %q: event %d applied out of order (value %g)", tn, i, v)
			}
		}
	}
}

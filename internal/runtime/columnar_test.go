package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/eventlog"
)

// buildTestTrace assembles a small mixed trace through the builder.
func buildTestTrace(t *testing.T) *ColumnarTrace {
	t.Helper()
	b := NewColumnarBuilder()
	b.Grow(16)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddError(eventlog.Event{Time: 1, Component: "disk", Type: 3, Severity: eventlog.SeverityError, Message: "io stall"}))
	must(b.AddSample(1, "cpu", 0.42))
	must(b.AddSample(1, "mem_free", 512))
	must(b.AddError(eventlog.Event{Time: 2.5, Component: "net", Type: 7, Severity: eventlog.SeverityCritical, Message: "link flap"}))
	must(b.AddError(eventlog.Event{Time: 2.5, Component: "disk", Type: 3, Severity: eventlog.SeverityError, Message: "io stall"}))
	must(b.AddSample(3, "cpu", 0.9))
	must(b.AddFailure(2.6))
	must(b.AddFailure(10))
	return b.Trace()
}

func TestColumnarRoundTrip(t *testing.T) {
	orig := buildTestTrace(t)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadColumnar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\n  wrote %+v\n  read  %+v", orig, got)
	}
}

func TestColumnarEventReconstruction(t *testing.T) {
	c := buildTestTrace(t)
	want := []Event{
		{Kind: KindError, Time: 1, Error: eventlog.Event{Time: 1, Component: "disk", Type: 3, Severity: eventlog.SeverityError, Message: "io stall"}},
		{Kind: KindSample, Time: 1, Variable: "cpu", Value: 0.42},
		{Kind: KindSample, Time: 1, Variable: "mem_free", Value: 512},
		{Kind: KindError, Time: 2.5, Error: eventlog.Event{Time: 2.5, Component: "net", Type: 7, Severity: eventlog.SeverityCritical, Message: "link flap"}},
		{Kind: KindError, Time: 2.5, Error: eventlog.Event{Time: 2.5, Component: "disk", Type: 3, Severity: eventlog.SeverityError, Message: "io stall"}},
		{Kind: KindSample, Time: 3, Variable: "cpu", Value: 0.9},
	}
	if c.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", c.Len(), len(want))
	}
	for i, w := range want {
		if got := c.Event(i); got != w {
			t.Errorf("Event(%d) = %+v, want %+v", i, got, w)
		}
	}
	ne, ns := c.CountKinds()
	if ne != 3 || ns != 3 {
		t.Fatalf("CountKinds() = (%d, %d), want (3, 3)", ne, ns)
	}
	// Dictionaries intern repeats: two distinct components, one repeated
	// message, two variables.
	if len(c.Components) != 2 || len(c.Messages) != 2 || len(c.Vars) != 2 {
		t.Fatalf("dictionaries = %d comps, %d msgs, %d vars; want 2, 2, 2",
			len(c.Components), len(c.Messages), len(c.Vars))
	}
}

func TestColumnarEventZeroAlloc(t *testing.T) {
	c := buildTestTrace(t)
	var sink Event
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < c.Len(); i++ {
			sink = c.Event(i)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Event() allocates %.1f per full-trace pass, want 0", allocs)
	}
}

func TestColumnarBuilderRejects(t *testing.T) {
	cases := []struct {
		name string
		add  func(*ColumnarBuilder) error
	}{
		{"time regression", func(b *ColumnarBuilder) error {
			if err := b.AddSample(5, "cpu", 1); err != nil {
				return nil // setup must pass
			}
			return b.AddError(eventlog.Event{Time: 4, Component: "c", Type: 1, Severity: eventlog.SeverityInfo})
		}},
		{"NaN time", func(b *ColumnarBuilder) error {
			return b.AddSample(math.NaN(), "cpu", 1)
		}},
		{"bad severity", func(b *ColumnarBuilder) error {
			return b.AddError(eventlog.Event{Time: 1, Component: "c", Type: 1, Severity: 9})
		}},
		{"failure regression", func(b *ColumnarBuilder) error {
			if err := b.AddFailure(7); err != nil {
				return nil
			}
			return b.AddFailure(6)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.add(NewColumnarBuilder()); !errors.Is(err, ErrColumnar) {
				t.Fatalf("err = %v, want ErrColumnar", err)
			}
		})
	}
}

func TestReadColumnarRejectsCorruption(t *testing.T) {
	var good bytes.Buffer
	if _, err := buildTestTrace(t).WriteTo(&good); err != nil {
		t.Fatal(err)
	}
	t.Run("bad magic", func(t *testing.T) {
		raw := append([]byte(nil), good.Bytes()...)
		raw[0] = 'X'
		if _, err := ReadColumnar(bytes.NewReader(raw)); !errors.Is(err, ErrColumnar) {
			t.Fatalf("err = %v, want ErrColumnar", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		raw := good.Bytes()[:good.Len()/2]
		if _, err := ReadColumnar(bytes.NewReader(raw)); !errors.Is(err, ErrColumnar) {
			t.Fatalf("err = %v, want ErrColumnar", err)
		}
	})
	t.Run("dict index out of range", func(t *testing.T) {
		// Corrupt a Keys entry to point past the dictionaries. The keys
		// column starts after magic, dicts, count uvarint and the times and
		// kinds columns; easier to corrupt via the struct and re-encode.
		c := buildTestTrace(t)
		c.Keys[0] = 99
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadColumnar(&buf); !errors.Is(err, ErrColumnar) {
			t.Fatalf("err = %v, want ErrColumnar", err)
		}
	})
	t.Run("time disorder", func(t *testing.T) {
		c := buildTestTrace(t)
		c.Times[2] = 0.5
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadColumnar(&buf); !errors.Is(err, ErrColumnar) {
			t.Fatalf("err = %v, want ErrColumnar", err)
		}
	})
}

// synthTrace builds a large synthetic trace shaped like an SCP recording
// (bursty errors over periodic samples) for the decode benchmarks.
func synthTrace(n int) *ColumnarTrace {
	b := NewColumnarBuilder()
	b.Grow(n)
	vars := []string{"cpu", "mem_free", "swap", "io"}
	for i := 0; i < n; i++ {
		t := float64(i)
		if i%10 == 0 {
			_ = b.AddError(eventlog.Event{
				Time: t, Component: fmt.Sprintf("comp-%d", i%7), Type: i % 5,
				Severity: eventlog.Severity(1 + i%4), Message: "synthetic burst",
			})
		} else {
			_ = b.AddSample(t, vars[i%len(vars)], float64(i%100)/100)
		}
	}
	for i := 0; i < n/1000; i++ {
		_ = b.AddFailure(float64(i * 1000))
	}
	return b.Trace()
}

func TestColumnarRoundTripLarge(t *testing.T) {
	orig := synthTrace(50000)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumnar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("large round trip mismatch")
	}
}

// BenchmarkColumnarDecode measures PFC1 decode throughput — the replay
// startup cost for a trace of 100k events.
func BenchmarkColumnarDecode(b *testing.B) {
	var buf bytes.Buffer
	trace := synthTrace(100000)
	if _, err := trace.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadColumnar(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarScan measures the zero-alloc event materialization
// sweep a replay performs over a decoded trace.
func BenchmarkColumnarScan(b *testing.B) {
	trace := synthTrace(100000)
	b.SetBytes(int64(trace.Len()))
	b.ResetTimer()
	var sink Event
	for i := 0; i < b.N; i++ {
		for j := 0; j < trace.Len(); j++ {
			sink = trace.Event(j)
		}
	}
	_ = sink
}

package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/act"
	"repro/internal/core"
)

// testEngine builds an externally clocked engine with the given layers.
func testEngine(t testing.TB, cfg core.Config, layers ...*core.Layer) *core.Engine {
	t.Helper()
	sel, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	a, err := act.New("noop", act.StateCleanup,
		act.Params{Cost: 0.1, SuccessProb: 0.9, Complexity: 0.1},
		func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(nil, layers, nil, sel, []*act.Action{a}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func quietLayer() *core.Layer {
	return &core.Layer{
		Name:      "quiet",
		Evaluate:  func(float64) (float64, error) { return 0, nil },
		Threshold: 0.5,
	}
}

func defaultCoreCfg() core.Config {
	return core.Config{EvalInterval: 1, LeadTime: 1, WarnThreshold: 0.5}
}

// gatedApply records applied event times and blocks every Apply call until
// release is closed; the first entry is signalled on entered.
type gatedApply struct {
	mu       sync.Mutex
	applied  []float64
	entered  chan struct{}
	release  chan struct{}
	signaled sync.Once
}

func newGatedApply() *gatedApply {
	return &gatedApply{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedApply) apply(ev Event) error {
	g.signaled.Do(func() { close(g.entered) })
	<-g.release
	g.mu.Lock()
	g.applied = append(g.applied, ev.Time)
	g.mu.Unlock()
	return nil
}

func (g *gatedApply) appliedTimes() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]float64(nil), g.applied...)
}

// startRuntime builds and starts a runtime over a quiet single-layer
// engine with the given queue setup.
func startRuntime(t *testing.T, apply func(Event) error, capacity int, policy OverflowPolicy) *Runtime {
	t.Helper()
	rt, err := New(Config{
		Engine:        testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply:         apply,
		QueueCapacity: capacity,
		Overflow:      policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return rt
}

// fillPastGate ingests event 1, waits until the consumer is inside Apply
// (so the queue is empty and under our control), then ingests events
// 2..n. With capacity 2 the queue outcome is fully deterministic.
func fillPastGate(t *testing.T, rt *Runtime, g *gatedApply, n int) {
	t.Helper()
	ctx := context.Background()
	if err := rt.Ingest(ctx, Event{Time: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never entered Apply")
	}
	for i := 2; i <= n; i++ {
		if err := rt.Ingest(ctx, Event{Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOverflowDropNewest(t *testing.T) {
	g := newGatedApply()
	rt := startRuntime(t, g.apply, 2, DropNewest)
	fillPastGate(t, rt, g, 10)
	close(g.release)
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	// Event 1 is in Apply; 2 and 3 fill the queue; 4..10 rejected.
	if got := g.appliedTimes(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("applied = %v, want [1 2 3]", got)
	}
	if m.DroppedNewest.Value() != 7 || m.Dropped() != 7 {
		t.Fatalf("dropped = %d (newest %d), want 7", m.Dropped(), m.DroppedNewest.Value())
	}
	if m.Ingested.Value() != m.Applied.Value()+m.Dropped() {
		t.Fatalf("invariant: ingested %d != applied %d + dropped %d",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped())
	}
}

func TestOverflowDropOldest(t *testing.T) {
	g := newGatedApply()
	rt := startRuntime(t, g.apply, 2, DropOldest)
	fillPastGate(t, rt, g, 10)
	close(g.release)
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	// Event 1 is in Apply; the queue keeps the freshest two: 9 and 10.
	if got := g.appliedTimes(); len(got) != 3 || got[0] != 1 || got[1] != 9 || got[2] != 10 {
		t.Fatalf("applied = %v, want [1 9 10]", got)
	}
	if m.DroppedOldest.Value() != 7 {
		t.Fatalf("dropped-oldest = %d, want 7", m.DroppedOldest.Value())
	}
	if m.Ingested.Value() != m.Applied.Value()+m.Dropped() {
		t.Fatalf("invariant: ingested %d != applied %d + dropped %d",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped())
	}
}

func TestOverflowBlockBackpressure(t *testing.T) {
	g := newGatedApply()
	rt := startRuntime(t, g.apply, 2, Block)
	fillPastGate(t, rt, g, 3) // 1 in Apply, 2..3 queued: queue now full

	// A further blocking Ingest must wait; give it a deadline and make
	// sure cancellation is accounted as a drop, not lost.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.Ingest(ctx, Event{Time: 4}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked ingest returned %v, want deadline exceeded", err)
	}
	if rt.Metrics().DroppedCanceled.Value() != 1 {
		t.Fatalf("dropped-canceled = %d, want 1", rt.Metrics().DroppedCanceled.Value())
	}

	// Unblock: a fresh blocking Ingest now succeeds once space frees up.
	done := make(chan error, 1)
	go func() { done <- rt.Ingest(context.Background(), Event{Time: 5}) }()
	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if got := g.appliedTimes(); len(got) != 4 {
		t.Fatalf("applied = %v, want 4 events (1,2,3,5)", got)
	}
	if m.Ingested.Value() != m.Applied.Value()+m.Dropped() {
		t.Fatalf("invariant: ingested %d != applied %d + dropped %d",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped())
	}
}

func TestGracefulShutdownDrain(t *testing.T) {
	var mu sync.Mutex
	applied := 0
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply: func(Event) error {
			mu.Lock()
			applied++
			mu.Unlock()
			return nil
		},
		QueueCapacity: 8,
		Overflow:      Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if err := rt.Ingest(context.Background(), Event{Time: float64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := applied
	mu.Unlock()
	if got != n {
		t.Fatalf("applied = %d, want %d (block policy must not lose events)", got, n)
	}
	m := rt.Metrics()
	if m.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", m.Dropped())
	}
	// Drain runs one final evaluation even without a ticker.
	if m.Evaluations.Value() < 1 {
		t.Fatal("no final evaluation after drain")
	}
	// The pipeline is closed now.
	if err := rt.Ingest(context.Background(), Event{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after stop returned %v, want ErrClosed", err)
	}
	// Stop is idempotent.
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicEvaluationWarnsActsAndGuards(t *testing.T) {
	hot := &core.Layer{
		Name:      "hot",
		Evaluate:  func(float64) (float64, error) { return 1, nil },
		Threshold: 0.5,
	}
	cfg := defaultCoreCfg()
	cfg.OscillationWindow = 3600 // all wall-clock cycles fall in one window
	cfg.MaxActionsPerWindow = 2
	eng := testEngine(t, cfg, hot)
	rt, err := New(Config{
		Engine:       eng,
		Apply:        func(Event) error { return nil },
		EvalInterval: 2 * time.Millisecond,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for rt.Metrics().Suppressed.Value() < 3 {
		select {
		case <-deadline:
			t.Fatal("oscillation guard never engaged")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.Actions.Value() != 2 {
		t.Fatalf("actions = %d, want exactly 2 (guard limit)", m.Actions.Value())
	}
	if int64(len(eng.Warnings())) != m.Warnings.Value() {
		t.Fatalf("engine warnings %d != metric %d", len(eng.Warnings()), m.Warnings.Value())
	}
	if m.Warnings.Value() != m.Actions.Value()+m.Suppressed.Value() {
		t.Fatalf("warnings %d != actions %d + suppressed %d",
			m.Warnings.Value(), m.Actions.Value(), m.Suppressed.Value())
	}
}

func TestEvaluateNowEventDriven(t *testing.T) {
	rt := startRuntime(t, func(Event) error { return nil }, 4, Block)
	rt.EvaluateNow()
	deadline := time.After(5 * time.Second)
	for rt.Metrics().Evaluations.Value() < 1 {
		select {
		case <-deadline:
			t.Fatal("EvaluateNow never produced a cycle")
		case <-time.After(time.Millisecond):
		}
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStress pushes 100k events from concurrent producers through the
// full pipeline with evaluation running, and checks the conservation
// invariant: every event presented to Ingest is either applied or counted
// dropped. Run with -race.
func TestStress(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	counting := &core.Layer{
		Name: "events",
		Evaluate: func(float64) (float64, error) {
			// Reads the Apply-written state under the runtime's read lock.
			return float64(seen % 2), nil
		},
		Threshold: 0.5,
	}
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), counting, quietLayer()),
		Apply: func(Event) error {
			mu.Lock()
			seen++
			mu.Unlock()
			return nil
		},
		QueueCapacity: 256,
		Overflow:      DropOldest,
		EvalInterval:  time.Millisecond,
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 4, 25000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				_ = rt.Ingest(context.Background(), Event{Time: float64(p*perProducer + i)})
				if i%1000 == 0 {
					rt.EvaluateNow()
				}
			}
		}(p)
	}
	wg.Wait()
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	total := int64(producers * perProducer)
	if m.Ingested.Value() != total {
		t.Fatalf("ingested = %d, want %d", m.Ingested.Value(), total)
	}
	if m.Ingested.Value() != m.Applied.Value()+m.Dropped() {
		t.Fatalf("invariant: ingested %d != applied %d + dropped %d",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped())
	}
	mu.Lock()
	gotSeen := int64(seen)
	mu.Unlock()
	if gotSeen != m.Applied.Value() {
		t.Fatalf("apply callback saw %d events, metrics say %d", gotSeen, m.Applied.Value())
	}
	if m.Evaluations.Value() < 1 {
		t.Fatal("no evaluations during stress run")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := testEngine(t, defaultCoreCfg(), quietLayer())
	cases := []Config{
		{Engine: nil, Apply: func(Event) error { return nil }},
		{Engine: eng, Apply: nil},
		{Engine: eng, Apply: func(Event) error { return nil }, QueueCapacity: -1},
		{Engine: eng, Apply: func(Event) error { return nil }, Workers: -2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: accepted", i)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []OverflowPolicy{Block, DropOldest, DropNewest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("roundtrip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("accepted bogus policy")
	}
}

package runtime

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	stdruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/hsmm"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/ubf"
)

// The batch/serial parity suite pins the tentpole invariant: batching is
// a throughput technique, not a semantics change. The same recorded
// timeline — events, MEA cycle times and ground-truth failures — must
// produce a byte-identical /ledger body and identical monotone pipeline
// counters whether cycles run one at a time through the event-driven
// path (EvaluateNow) or stacked through CycleBatch, across drain chunk
// sizes, shard counts and GOMAXPROCS. Latency histograms are exempt by
// design: a chunked drain observes once per chunk, so histogram counts
// legitimately scale with the chunk size.

// parityStep is one entry of the recorded timeline.
type parityStep struct {
	kind  int // 0 = event, 1 = cycle, 2 = failure
	ev    Event
	at    float64
	stack bool // cycle directly follows another cycle (no event between)
}

// parityTimeline builds the deterministic 120-sim-second scenario: two
// bursty error/sample phases around a quiet gap (60..100s) whose eight
// event-free cycles are exactly what CycleBatch stacks, plus three
// ground-truth failures.
func parityTimeline() []parityStep {
	var events []Event
	for t := 0.5; t < 120; t += 0.5 {
		phase := int(t) / 20 % 2
		if int(2*t)%2 == 0 && phase == 0 && t < 60 {
			events = append(events, Event{Kind: KindError, Time: t, Error: eventlog.Event{
				Time: t, Component: "app", Type: int(2*t) % 2,
				Severity: eventlog.SeverityError, Message: "burst",
			}})
			continue
		}
		if t >= 60 && t < 100 {
			continue // quiet gap: no events, cycles stack
		}
		v := "cpu"
		if int(2*t)%4 < 2 {
			v = "mem"
		}
		events = append(events, Event{Kind: KindSample, Time: t, Variable: v,
			Value: 0.3 + 0.5*math.Sin(t/7)})
	}
	var cycles []float64
	for c := 5.0; c <= 120; c += 5 {
		cycles = append(cycles, c)
	}
	failures := []float64{25.2, 70.3, 110.1}

	var steps []parityStep
	ei, ci, fi := 0, 0, 0
	lastWasCycle := false
	for ei < len(events) || ci < len(cycles) || fi < len(failures) {
		et, ct, ft := math.Inf(1), math.Inf(1), math.Inf(1)
		if ei < len(events) {
			et = events[ei].Time
		}
		if ci < len(cycles) {
			ct = cycles[ci]
		}
		if fi < len(failures) {
			ft = failures[fi]
		}
		switch {
		case ft <= ct && ft <= et:
			steps = append(steps, parityStep{kind: 2, at: ft})
			fi++
			lastWasCycle = false
		case ct <= et:
			steps = append(steps, parityStep{kind: 1, at: ct, stack: lastWasCycle})
			ci++
			lastWasCycle = true
		default:
			steps = append(steps, parityStep{kind: 0, ev: events[ei], at: et})
			ei++
			lastWasCycle = false
		}
	}
	return steps
}

// parityMirror is the predictor-visible state for the parity scenario:
// an error log (touched only by the error shard) and pre-populated
// per-variable series (each touched only by its variable's shard).
type parityMirror struct {
	log    *eventlog.Log
	series map[string]*paritySeries
}

type paritySeries struct {
	ts, vs []float64
}

func (s *paritySeries) last() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	return s.vs[len(s.vs)-1]
}

func newParityMirror() *parityMirror {
	return &parityMirror{
		log:    eventlog.NewLog(),
		series: map[string]*paritySeries{"cpu": {}, "mem": {}},
	}
}

func (m *parityMirror) apply(ev Event) error {
	switch ev.Kind {
	case KindError:
		return m.log.Append(ev.Error)
	case KindSample:
		s, ok := m.series[ev.Variable]
		if !ok {
			return fmt.Errorf("unknown variable %q", ev.Variable)
		}
		s.ts = append(s.ts, ev.Time)
		s.vs = append(s.vs, ev.Value)
		return nil
	default:
		return fmt.Errorf("unknown kind %d", ev.Kind)
	}
}

// trainParityModels fits the HSMM classifier and UBF network once, under
// a pinned GOMAXPROCS — training parallelism may regroup floating-point
// reductions across GOMAXPROCS values, and the parity matrix must vary
// only the runtime's batching knobs, never the models.
func trainParityModels(t *testing.T) (*hsmm.Classifier, *ubf.Network) {
	t.Helper()
	prev := stdruntime.GOMAXPROCS(2)
	defer stdruntime.GOMAXPROCS(prev)
	g := stats.NewRNG(41)
	var failure, nonFailure []eventlog.Sequence
	for i := 0; i < 8; i++ {
		f := eventlog.Sequence{Label: true}
		at := 0.0
		for j := 0; j < 8; j++ {
			at += 0.1 + 0.3*g.Float64()
			f.Times = append(f.Times, at)
			f.Types = append(f.Types, g.Intn(2))
		}
		failure = append(failure, f)
		nf := eventlog.Sequence{}
		at = 0.0
		for j := 0; j < 4; j++ {
			at += 1 + 2*g.Float64()
			nf.Times = append(nf.Times, at)
			nf.Types = append(nf.Types, g.Intn(2))
		}
		nonFailure = append(nonFailure, nf)
	}
	clf, err := hsmm.TrainClassifier(failure, nonFailure, hsmm.Config{States: 2, MaxIter: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(40, 2)
	y := make([]float64, 40)
	for i := 0; i < 40; i++ {
		a, b := g.Float64(), g.Float64()
		row := x.RowView(i)
		row[0], row[1] = a, b
		if a+b > 1 {
			y[i] = 1
		}
	}
	net, err := ubf.Train(x, y, ubf.TrainConfig{NumKernels: 4, Candidates: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return clf, net
}

// parityLayers wires fresh predictors over a run's mirror around the
// shared trained models: the real HSMM and UBF batch kernels plus a
// plain PredictorFunc exercising ScoreBatch's serial fallback.
func parityLayers(t *testing.T, m *parityMirror, clf *hsmm.Classifier, net *ubf.Network) []*core.Layer {
	t.Helper()
	hp, err := hsmm.NewPredictor(clf, func(now float64) (eventlog.Sequence, error) {
		seq := eventlog.Sequence{}
		for _, e := range m.log.WindowView(now-30, now+1e-9) {
			seq.Times = append(seq.Times, e.Time-(now-30))
			seq.Types = append(seq.Types, e.Type)
		}
		return seq, nil
	}, nil, hsmm.Config{States: 2, MaxIter: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	up, err := ubf.NewPredictor(net, func(now float64) ([]float64, error) {
		return []float64{m.series["cpu"].last(), m.series["mem"].last()}, nil
	}, nil, ubf.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return []*core.Layer{
		{Name: "burst", Predictor: hp, Threshold: 1},
		{Name: "surface", Predictor: up, Threshold: 0.6},
		{Name: "count", Predictor: core.PredictorFunc(func(now float64) (float64, error) {
			return float64(len(m.log.WindowView(now-30, now+1e-9))) / 20, nil
		}), Threshold: 1},
	}
}

// parityResult is everything the invariant covers: the /ledger body and
// the monotone pipeline counters.
type parityResult struct {
	ledger   string
	counters map[string]int64
}

// runParity replays the timeline through one runtime configuration.
// Serial mode drives every cycle through the event-driven EvaluateNow
// path and waits for it; batched mode stacks gap cycles and runs them
// through CycleBatch, exactly like the columnar replay driver.
func runParity(t *testing.T, steps []parityStep, clf *hsmm.Classifier, net *ubf.Network,
	serial bool, batch, shards, gmp int) parityResult {
	t.Helper()
	prev := stdruntime.GOMAXPROCS(gmp)
	defer stdruntime.GOMAXPROCS(prev)

	m := newParityMirror()
	layers := parityLayers(t, m, clf, net)
	sel, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	a, err := act.New("noop", act.StateCleanup,
		act.Params{Cost: 0.1, SuccessProb: 0.9, Complexity: 0.1},
		func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(nil, layers, nil, sel, []*act.Action{a}, nil, core.Config{
		EvalInterval: 5, LeadTime: 10, WarnThreshold: 0.3,
		OscillationWindow: 30, MaxActionsPerWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := obs.NewLedger(obs.LedgerConfig{LeadTime: 10, Slack: 5},
		"burst", "surface", "count")
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(64)
	var clock atomic.Uint64
	rt, err := New(Config{
		Engine:        eng,
		Apply:         m.apply,
		Clock:         func() float64 { return math.Float64frombits(clock.Load()) },
		QueueCapacity: 256,
		Overflow:      Block,
		Workers:       2,
		Shards:        shards,
		BatchSize:     batch,
		Tracer:        tracer,
		Ledger:        ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rt.Start(ctx); err != nil {
		t.Fatal(err)
	}

	waitCycles := func(target int64) {
		deadline := time.Now().Add(10 * time.Second)
		for rt.Cycles() < target {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d never completed", target)
			}
			stdruntime.Gosched()
		}
	}
	var stacked []float64
	flush := func() {
		if len(stacked) == 0 {
			return
		}
		if err := rt.Barrier(ctx); err != nil {
			t.Fatal(err)
		}
		clock.Store(math.Float64bits(stacked[len(stacked)-1]))
		rt.CycleBatch(stacked)
		stacked = stacked[:0]
	}
	for _, s := range steps {
		switch s.kind {
		case 0: // event
			flush()
			clock.Store(math.Float64bits(s.at))
			if err := rt.Ingest(ctx, s.ev); err != nil {
				t.Fatal(err)
			}
		case 1: // cycle
			if serial {
				if err := rt.Barrier(ctx); err != nil {
					t.Fatal(err)
				}
				clock.Store(math.Float64bits(s.at))
				target := rt.Cycles() + 1
				rt.EvaluateNow()
				waitCycles(target)
			} else {
				stacked = append(stacked, s.at)
			}
		case 2: // ground-truth failure
			flush()
			if err := rt.Barrier(ctx); err != nil {
				t.Fatal(err)
			}
			ledger.RecordFailure(s.at)
		}
	}
	flush()

	stopCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := rt.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/ledger", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	mm := rt.Metrics()
	return parityResult{
		ledger: string(body),
		counters: map[string]int64{
			"ingested":    mm.Ingested.Value(),
			"applied":     mm.Applied.Value(),
			"dropped":     mm.Dropped(),
			"evaluations": mm.Evaluations.Value(),
			"warnings":    mm.Warnings.Value(),
			"actions":     mm.Actions.Value(),
			"suppressed":  mm.Suppressed.Value(),
		},
	}
}

func TestBatchSerialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real predictors; skipped in -short")
	}
	steps := parityTimeline()
	// The timeline must actually exercise stacking: the quiet gap yields
	// consecutive cycle steps with no event between them.
	stackRun := 0
	for _, s := range steps {
		if s.kind == 1 && s.stack {
			stackRun++
		}
	}
	if stackRun < 5 {
		t.Fatalf("timeline stacks only %d cycles — scenario lost its quiet gap", stackRun)
	}
	clf, net := trainParityModels(t)

	ref := runParity(t, steps, clf, net, true, 1, 1, 1)
	if ref.counters["ingested"] == 0 || ref.counters["evaluations"] == 0 {
		t.Fatalf("degenerate reference run: %+v", ref.counters)
	}
	if ref.counters["warnings"] == 0 {
		t.Fatalf("reference run never warned — thresholds no longer exercise decisions")
	}
	configs := []struct {
		name               string
		serial             bool
		batch, shards, gmp int
	}{
		{"serial/batch=16/shards=1/gmp=4", true, 16, 1, 4},
		{"serial/batch=256/shards=3/gmp=4", true, 256, 3, 4},
		{"cyclebatch/batch=1/shards=1/gmp=1", false, 1, 1, 1},
		{"cyclebatch/batch=16/shards=1/gmp=4", false, 16, 1, 4},
		{"cyclebatch/batch=256/shards=3/gmp=4", false, 256, 3, 4},
		{"cyclebatch/batch=16/shards=3/gmp=1", false, 16, 3, 1},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			got := runParity(t, steps, clf, net, cfg.serial, cfg.batch, cfg.shards, cfg.gmp)
			if got.ledger != ref.ledger {
				t.Errorf("/ledger body diverged from serial reference:\nref: %s\ngot: %s",
					ref.ledger, got.ledger)
			}
			for k, want := range ref.counters {
				if got.counters[k] != want {
					t.Errorf("counter %s = %d, want %d", k, got.counters[k], want)
				}
			}
		})
	}
}

package runtime

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "", []float64{0.01, 0.1, 1}, nil...)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram quantile = %g, want NaN", h.Quantile(0.5))
	}
	// 10 observations in (0.01, 0.1]: the median interpolates inside that
	// bucket at rank 5/10 → 0.01 + (0.1-0.01)*5/10 = 0.055.
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.055) > 1e-12 {
		t.Fatalf("p50 = %g, want 0.055", got)
	}
	// Add 10 in (0.1, 1]: p99 lands in the second bucket near its top.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.99); got <= 0.1 || got > 1 {
		t.Fatalf("p99 = %g, want inside (0.1, 1]", got)
	}
	// Observations beyond the last finite bound clamp to it.
	h2 := reg.Histogram("q2_seconds", "", []float64{0.01, 0.1, 1})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow-bucket quantile = %g, want clamp to 1", got)
	}
	if got := h2.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %g, want NaN", got)
	}
}

func TestMetricsQuantileAndBuildInfoExport(t *testing.T) {
	m := NewMetrics()
	m.IngestLatency.Observe(0.002)
	m.IngestLatency.Observe(0.004)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pfm_stage_latency_seconds_quantile gauge",
		`pfm_stage_latency_seconds_quantile{stage="ingest",quantile="0.5"}`,
		`pfm_stage_latency_seconds_quantile{stage="ingest",quantile="0.95"}`,
		`pfm_stage_latency_seconds_quantile{stage="ingest",quantile="0.99"}`,
		"# TYPE pfm_build_info gauge",
		`goversion="go`,
		`gomaxprocs="`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The build info value must be exactly 1.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "pfm_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("build info line %q, want value 1", line)
		}
	}
}

// tracedRuntime starts a runtime with tracer + ledger over one layer whose
// score follows the last applied sample value, on a manually stepped clock.
func tracedRuntime(t *testing.T, clock *atomic.Int64) (*Runtime, *obs.Ledger) {
	t.Helper()
	var score atomic.Uint64
	layer := &core.Layer{
		Name: "level",
		Evaluate: func(float64) (float64, error) {
			return math.Float64frombits(score.Load()), nil
		},
		Threshold: 0.5,
	}
	led, err := obs.NewLedger(obs.LedgerConfig{LeadTime: 5}, "level")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), layer),
		Apply: func(ev Event) error {
			score.Store(math.Float64bits(ev.Value))
			return nil
		},
		Clock:         func() float64 { return float64(clock.Load()) },
		QueueCapacity: 16,
		Tracer:        obs.NewTracer(64),
		Ledger:        led,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return rt, led
}

func TestRuntimeEndToEndTracing(t *testing.T) {
	var clock atomic.Int64
	rt, _ := tracedRuntime(t, &clock)
	ctx := context.Background()
	if err := rt.Ingest(ctx, Event{Kind: KindSample, Time: 1, Variable: "load", Value: 0.9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event applied", func() bool { return rt.Metrics().Applied.Value() == 1 })
	rt.EvaluateNow()
	waitFor(t, "cycle completed", func() bool { return rt.Metrics().Evaluations.Value() >= 1 })
	waitFor(t, "trace completed", func() bool {
		for _, v := range rt.Tracer().Snapshot() {
			if v.Complete {
				return true
			}
		}
		return false
	})
	var done obs.TraceView
	for _, v := range rt.Tracer().Snapshot() {
		if v.Complete {
			done = v
		}
	}
	if done.Key != "load" || done.Kind != uint8(KindSample) || done.Shard != 0 {
		t.Fatalf("trace identity = %+v", done)
	}
	if done.Total <= 0 {
		t.Fatalf("trace total = %v, want > 0", done.Total)
	}
	for _, st := range []int{obs.StageQueue, obs.StageEvaluate} {
		if done.Stages[st] < 0 {
			t.Fatalf("stage %s negative: %v", obs.StageNames[st], done.Stages[st])
		}
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeLedgerJournaling(t *testing.T) {
	var clock atomic.Int64
	rt, led := tracedRuntime(t, &clock)
	ctx := context.Background()

	cycle := func(now int64) {
		clock.Store(now)
		before := rt.Metrics().Evaluations.Value()
		rt.EvaluateNow()
		waitFor(t, "cycle", func() bool { return rt.Metrics().Evaluations.Value() > before })
	}

	if err := rt.Ingest(ctx, Event{Kind: KindSample, Time: 1, Variable: "load", Value: 0.9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "applied", func() bool { return rt.Metrics().Applied.Value() == 1 })

	cycle(10)             // warns at t=10 (score 0.9 ≥ 0.5)
	led.RecordFailure(12) // ground truth inside (10, 15]
	cycle(20)             // resolves the t=10 prediction; t=20 stays pending
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	if got := led.Quality("level"); got.TP != 1 || got.FP != 0 {
		t.Fatalf("layer table = %+v, want exactly one TP", got)
	}
	if got := led.Quality(obs.CombinedLayer); got.TP != 1 {
		t.Fatalf("combined table = %+v, want one TP", got)
	}
	snap := led.Snapshot()
	// Three cycles × (layer + combined) journaled: the two explicit ones
	// plus the final drain cycle Stop runs.
	if snap.Predictions != 6 {
		t.Fatalf("journaled %d predictions, want 6", snap.Predictions)
	}
}

// TestObservabilityHandlers is the table-driven endpoint coverage: status
// codes, content types, and scrape/parse-ability of every endpoint.
func TestObservabilityHandlers(t *testing.T) {
	var clock atomic.Int64
	rt, led := tracedRuntime(t, &clock)
	defer rt.Stop(context.Background())
	ctx := context.Background()
	if err := rt.Ingest(ctx, Event{Kind: KindSample, Time: 1, Variable: "load", Value: 0.9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "applied", func() bool { return rt.Metrics().Applied.Value() == 1 })
	clock.Store(10)
	rt.EvaluateNow()
	waitFor(t, "cycle", func() bool { return rt.Metrics().Evaluations.Value() >= 1 })
	led.RecordFailure(12)

	srv, addr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		name         string
		path         string
		wantStatus   int
		wantType     string // Content-Type prefix
		bodyContains []string
		check        func(t *testing.T, body []byte)
	}{
		{
			name: "metrics", path: "/metrics",
			wantStatus: http.StatusOK, wantType: "text/plain",
			bodyContains: []string{
				"pfm_events_ingested_total 1",
				`pfm_shard_queue_depth{shard="0"} 0`,
				`pfm_ledger_precision{layer="level"}`,
				`pfm_ledger_outcomes{layer="combined",outcome="tp"}`,
				"pfm_build_info{",
				`pfm_stage_latency_seconds_quantile{stage="apply",quantile="0.99"}`,
			},
			check: checkScrapeParseable,
		},
		{
			name: "healthz", path: "/healthz",
			wantStatus: http.StatusOK, wantType: "application/json",
			bodyContains: []string{`"status":"ok"`},
			check: func(t *testing.T, body []byte) {
				var h Health
				if err := json.Unmarshal(body, &h); err != nil {
					t.Fatalf("healthz not JSON: %v", err)
				}
			},
		},
		{
			name: "tracez text", path: "/tracez",
			wantStatus: http.StatusOK, wantType: "text/plain",
			bodyContains: []string{"tracez:", "TRACE", "sample", "load"},
		},
		{
			name: "tracez json", path: "/tracez?format=json&n=5",
			wantStatus: http.StatusOK, wantType: "application/json",
			check: func(t *testing.T, body []byte) {
				var traces []traceJSON
				if err := json.Unmarshal(body, &traces); err != nil {
					t.Fatalf("tracez not JSON: %v", err)
				}
				if len(traces) == 0 || len(traces) > 5 {
					t.Fatalf("tracez returned %d traces", len(traces))
				}
				if traces[0].Kind != "sample" || traces[0].Key != "load" {
					t.Fatalf("trace = %+v", traces[0])
				}
			},
		},
		{
			name: "ledger", path: "/ledger",
			wantStatus: http.StatusOK, wantType: "application/json",
			bodyContains: []string{`"layer":"level"`, `"layer":"combined"`},
			check: func(t *testing.T, body []byte) {
				var lj ledgerJSON
				if err := json.Unmarshal(body, &lj); err != nil {
					t.Fatalf("ledger not JSON: %v", err)
				}
				if lj.LeadTimeSeconds != 5 || lj.Failures != 1 {
					t.Fatalf("ledger body = %+v", lj)
				}
			},
		},
		{name: "unknown", path: "/nope", wantStatus: http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get("http://" + addr + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantType != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), tc.wantType) {
				t.Fatalf("content type = %q, want prefix %q", resp.Header.Get("Content-Type"), tc.wantType)
			}
			for _, want := range tc.bodyContains {
				if !strings.Contains(string(body), want) {
					t.Fatalf("body missing %q:\n%s", want, body)
				}
			}
			if tc.check != nil {
				tc.check(t, body)
			}
		})
	}
}

// checkScrapeParseable asserts the exposition is structurally valid
// Prometheus text: every non-comment line is `name{labels} value`, and every
// series name was introduced by a TYPE line.
func checkScrapeParseable(t *testing.T, body []byte) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			if parts[3] == "histogram" {
				typed[parts[2]+"_bucket"] = true
				typed[parts[2]+"_sum"] = true
				typed[parts[2]+"_count"] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = name[:i]
		}
		if !typed[name] {
			t.Fatalf("series %q has no TYPE line", name)
		}
	}
}

// TestEndpointsAbsentWithoutObservers pins that /tracez and /ledger are
// only mounted when their backing stores are configured.
func TestEndpointsAbsentWithoutObservers(t *testing.T) {
	rt := startRuntime(t, func(Event) error { return nil }, 4, Block)
	defer rt.Stop(context.Background())
	srv, addr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/tracez", "/ledger"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without backing store: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestGracefulStopMetricsConsistent pins the shutdown invariant on the
// drain path: every ingested event is accounted applied or dropped, and the
// per-shard depth gauges render zero after Stop.
func TestGracefulStopMetricsConsistent(t *testing.T) {
	rt := startRuntime(t, func(Event) error { return nil }, 8, Block)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := rt.Ingest(ctx, Event{Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.Ingested.Value() != m.Applied.Value()+m.Dropped() {
		t.Fatalf("ingested %d != applied %d + dropped %d",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped())
	}
	if rt.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after graceful stop", rt.QueueDepth())
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pfm_shard_queue_depth{shard="0"} 0`) {
		t.Fatalf("depth gauge not flushed to 0:\n%s", sb.String())
	}
}

// TestHardStopShedsBacklogConsistently pins the fix for the hard-stop
// drain: a canceled Stop context must not wait for the backlog to be
// applied — remaining events are shed, counted as reason="shutdown" drops,
// and the depth gauges flush to zero, preserving ingested = applied +
// dropped.
func TestHardStopShedsBacklogConsistently(t *testing.T) {
	g := newGatedApply()
	rt := startRuntime(t, g.apply, 8, Block)
	fillPastGate(t, rt, g, 6) // event 1 inside Apply, events 2..6 queued

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	stopDone := make(chan error, 1)
	go func() { stopDone <- rt.Stop(canceled) }()
	// Stop hard-cancels immediately; release the gate so the consumer can
	// observe the hard stop and shed the backlog.
	time.Sleep(10 * time.Millisecond)
	close(g.release)
	var stopErr error
	select {
	case stopErr = <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return after hard stop")
	}
	if stopErr == nil {
		t.Fatal("hard stop returned nil, want context error")
	}

	m := rt.Metrics()
	if m.DroppedShutdown.Value() == 0 {
		t.Fatalf("no shutdown drops recorded (applied=%d)", m.Applied.Value())
	}
	if m.Ingested.Value() != m.Applied.Value()+m.Dropped() {
		t.Fatalf("ingested %d != applied %d + dropped %d",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped())
	}
	if rt.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after hard stop", rt.QueueDepth())
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `pfm_shard_queue_depth{shard="0"} 0`) {
		t.Fatalf("depth gauge not flushed to 0 after hard stop:\n%s", out)
	}
	if !strings.Contains(out, `pfm_events_dropped_total{reason="shutdown"}`) {
		t.Fatalf("shutdown drop reason missing:\n%s", out)
	}
}

package runtime

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eventlog"
)

func TestDefaultShardKey(t *testing.T) {
	a := Event{Kind: KindSample, Variable: "cpu"}
	b := Event{Kind: KindSample, Variable: "mem_free"}
	if DefaultShardKey(a) == DefaultShardKey(b) {
		t.Fatal("distinct variables share a shard key")
	}
	if DefaultShardKey(a) != "cpu" {
		t.Fatalf("sample key = %q, want variable name", DefaultShardKey(a))
	}
	// All error events stay on one key: the error log is a single
	// time-ordered stream.
	e1 := Event{Kind: KindError, Error: eventlog.Event{Component: "disk"}}
	e2 := Event{Kind: KindError, Error: eventlog.Event{Component: "net"}}
	if DefaultShardKey(e1) != DefaultShardKey(e2) {
		t.Fatal("error events routed to different shards")
	}
	if DefaultShardKey(e1) == DefaultShardKey(a) {
		t.Fatal("error key collides with a sample variable name")
	}
}

func TestShardRoutingIsStable(t *testing.T) {
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply:  func(Event) error { return nil },
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", rt.Shards())
	}
	for _, v := range []string{"cpu", "mem_free", "swap", "io", "net"} {
		ev := Event{Kind: KindSample, Variable: v}
		q := rt.shardFor(ev)
		for i := 0; i < 10; i++ {
			if rt.shardFor(ev) != q {
				t.Fatalf("routing for %q is not stable", v)
			}
		}
	}
}

// TestShardedPerKeyOrdering ingests interleaved streams for several keys
// through a multi-shard runtime and verifies each key's events are applied
// in ingest order (cross-key order is unconstrained by design).
func TestShardedPerKeyOrdering(t *testing.T) {
	var mu sync.Mutex
	perKey := make(map[string][]float64)
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply: func(ev Event) error {
			// Same-key events are serialized by shard routing; the map needs
			// its own lock only because different keys apply concurrently.
			mu.Lock()
			perKey[ev.Variable] = append(perKey[ev.Variable], ev.Value)
			mu.Unlock()
			return nil
		},
		QueueCapacity: 64,
		Overflow:      Block,
		Shards:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	keys := []string{"cpu", "mem_free", "swap", "io", "net", "disk", "proc"}
	const perKeyEvents = 200
	for i := 0; i < perKeyEvents; i++ {
		for _, k := range keys {
			ev := Event{Kind: KindSample, Time: float64(i), Variable: k, Value: float64(i)}
			if err := rt.Ingest(context.Background(), ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		got := perKey[k]
		if len(got) != perKeyEvents {
			t.Fatalf("key %q: applied %d events, want %d", k, len(got), perKeyEvents)
		}
		for i, v := range got {
			if v != float64(i) {
				t.Fatalf("key %q: event %d applied out of order (value %g)", k, i, v)
			}
		}
	}
	if got := rt.Metrics().Applied.Value(); got != int64(len(keys)*perKeyEvents) {
		t.Fatalf("applied = %d, want %d", got, len(keys)*perKeyEvents)
	}
}

// TestShardedParallelApply proves shards actually apply concurrently: one
// shard's Apply blocks while another shard's events still flow.
func TestShardedParallelApply(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	fastApplied := 0
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply: func(ev Event) error {
			if ev.Variable == "slow" {
				once.Do(func() { close(blocked) })
				<-release
				return nil
			}
			mu.Lock()
			fastApplied++
			mu.Unlock()
			return nil
		},
		QueueCapacity: 64,
		Overflow:      Block,
		Shards:        8,
		// Route by variable but force "slow" and "fast" apart regardless of
		// how FNV distributes them over 8 shards.
		ShardKey: func(ev Event) string { return ev.Variable },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the two test keys land on different shards; if FNV ever maps
	// them together the test premise is void.
	if rt.shardFor(Event{Variable: "slow"}) == rt.shardFor(Event{Variable: "fast"}) {
		t.Skip("keys collided on one shard; pick different names")
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rt.Ingest(ctx, Event{Kind: KindSample, Variable: "slow"}); err != nil {
		t.Fatal(err)
	}
	<-blocked
	const n = 50
	for i := 0; i < n; i++ {
		if err := rt.Ingest(ctx, Event{Kind: KindSample, Variable: "fast", Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		done := fastApplied == n
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			close(release)
			t.Fatal("fast shard starved while slow shard blocked: shards are not parallel")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShardMetricsExposed checks the per-shard depth gauges and drop
// counters render, and that a shard-local drop is attributed to the right
// shard.
func TestShardMetricsExposed(t *testing.T) {
	g := newGatedApply()
	rt, err := New(Config{
		Engine:        testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply:         g.apply,
		QueueCapacity: 1,
		Overflow:      DropNewest,
		Shards:        2,
		ShardKey:      func(ev Event) string { return ev.Variable },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Saturate one shard: first event enters Apply (gated), second fills
	// the depth-1 queue, third is dropped — all on the same key.
	ctx := context.Background()
	target := rt.shardFor(Event{Variable: "hot"})
	for i := 0; i < 3; i++ {
		if err := rt.Ingest(ctx, Event{Kind: KindSample, Variable: "hot"}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			select {
			case <-g.entered:
			case <-time.After(5 * time.Second):
				t.Fatal("consumer never entered Apply")
			}
		}
	}
	if got := target.drops.Value(); got != 1 {
		t.Fatalf("target shard drops = %d, want 1", got)
	}
	for _, q := range rt.queues {
		if q != target && q.drops.Value() != 0 {
			t.Fatalf("drop attributed to the wrong shard")
		}
	}
	var sb strings.Builder
	if err := rt.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pfm_shard_queue_depth{shard="0"}`,
		`pfm_shard_queue_depth{shard="1"}`,
		`pfm_shard_dropped_total{shard="0"}`,
		`pfm_shard_dropped_total{shard="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	close(g.release)
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStress runs concurrent producers over many keys against a
// multi-shard pipeline with evaluation on, checking the conservation
// invariant. Run with -race: this exercises parallel Apply under the
// shared lock against exclusive-lock evaluation.
func TestShardedStress(t *testing.T) {
	vars := []string{"cpu", "mem_free", "swap", "io"}
	counts := make(map[string]*int)
	var locks [4]sync.Mutex
	for _, v := range vars {
		counts[v] = new(int)
	}
	rt, err := New(Config{
		Engine: testEngine(t, defaultCoreCfg(), quietLayer()),
		Apply: func(ev Event) error {
			// Per-key counters: same key → same shard → serialized, but the
			// race detector still wants explicit happens-before per counter.
			for i, v := range vars {
				if v == ev.Variable {
					locks[i].Lock()
					*counts[v]++
					locks[i].Unlock()
				}
			}
			return nil
		},
		QueueCapacity: 128,
		Overflow:      Block,
		Shards:        4,
		EvalInterval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ev := Event{Kind: KindSample, Time: float64(i), Variable: vars[i%len(vars)]}
				if err := rt.Ingest(context.Background(), ev); err != nil {
					t.Error(err)
					return
				}
				if i%500 == 0 {
					rt.EvaluateNow()
				}
			}
		}(p)
	}
	wg.Wait()
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	total := int64(producers * perProducer)
	if m.Ingested.Value() != total || m.Applied.Value() != total || m.Dropped() != 0 {
		t.Fatalf("ingested %d applied %d dropped %d, want %d/%d/0",
			m.Ingested.Value(), m.Applied.Value(), m.Dropped(), total, total)
	}
	sum := 0
	for _, v := range vars {
		sum += *counts[v]
	}
	if int64(sum) != total {
		t.Fatalf("per-key counts sum to %d, want %d", sum, total)
	}
}

// TestProfilingEndpointOptIn verifies /debug/pprof/ serves only when the
// Profiling flag is set.
func TestProfilingEndpointOptIn(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		rt, err := New(Config{
			Engine:    testEngine(t, defaultCoreCfg(), quietLayer()),
			Apply:     func(Event) error { return nil },
			Profiling: enabled,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		srv, addr, err := rt.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + addr + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if enabled && resp.StatusCode != http.StatusOK {
			t.Fatalf("profiling on: /debug/pprof/ returned %d", resp.StatusCode)
		}
		if enabled && !strings.Contains(string(body), "goroutine") {
			t.Fatalf("profiling on: index missing profile list:\n%s", body)
		}
		if !enabled && resp.StatusCode == http.StatusOK {
			t.Fatal("profiling off: /debug/pprof/ still served")
		}
		srv.Close()
		if err := rt.Stop(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config parameterizes the streaming runtime.
type Config struct {
	// Engine supplies the layers and the serialized Act semantics
	// (cross-layer decision, oscillation guard, Table 1 accounting). It
	// may be externally clocked (core.New with a nil sim engine).
	Engine *core.Engine
	// Apply integrates one ingested event into the predictor-visible
	// state (e.g. append to an eventlog.Log or a timeseries.Series).
	// Calls are serialized and run under the runtime's state write-lock;
	// Layer.Evaluate closures run under the matching read-lock, so Apply
	// and the layers may share state without their own locking.
	Apply func(Event) error
	// Clock maps wall time to the domain time passed to Layer.Evaluate
	// and Engine.ActOn. Nil defaults to seconds since Start.
	Clock func() float64
	// QueueCapacity bounds the ingest queue (default 1024).
	QueueCapacity int
	// Overflow is the full-queue policy (default Block).
	Overflow OverflowPolicy
	// EvalInterval is the wall-clock MEA cadence. Zero disables the
	// ticker; cycles then run only via EvaluateNow.
	EvalInterval time.Duration
	// Workers sizes the layer-evaluation pool (default GOMAXPROCS, or
	// the layer count if smaller). 1 evaluates sequentially.
	Workers int
	// Metrics receives pipeline observability; nil allocates a fresh set.
	Metrics *Metrics
}

// cycleResult carries one score vector from the evaluate to the act stage.
type cycleResult struct {
	now    float64
	scores []float64
}

// Runtime is the concurrent streaming MEA pipeline. Construct with New,
// drive with Start/Ingest/EvaluateNow, finish with Stop.
type Runtime struct {
	cfg     Config
	engine  *core.Engine
	layers  []*core.Layer
	queue   *queue
	pool    *Pool
	metrics *Metrics

	// stateMu guards the user's predictor state: Apply holds the write
	// lock, layer evaluation the read lock.
	stateMu sync.RWMutex

	evalReq  chan struct{}
	actCh    chan cycleResult
	evalStop chan struct{} // closed after ingest drain: evaluator exits
	hardCtx  context.Context
	hardStop context.CancelFunc
	wg       sync.WaitGroup

	started   atomic.Bool
	stopping  atomic.Bool
	stopOnce  sync.Once
	stopErr   error
	startWall time.Time
	lastCycle atomic.Int64 // unix nanos of the last completed act round
}

// New validates the configuration and assembles a runtime (not yet
// running; call Start).
func New(cfg Config) (*Runtime, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrRuntime)
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("%w: nil Apply", ErrRuntime)
	}
	if cfg.QueueCapacity < 0 || cfg.EvalInterval < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: negative capacity/interval/workers", ErrRuntime)
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 1024
	}
	layers := cfg.Engine.Layers()
	if cfg.Workers == 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
		if len(layers) < cfg.Workers {
			cfg.Workers = len(layers)
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	r := &Runtime{
		cfg:     cfg,
		engine:  cfg.Engine,
		layers:  layers,
		queue:   newQueue(cfg.QueueCapacity, cfg.Overflow),
		metrics: cfg.Metrics,
		evalReq: make(chan struct{}, 1),
		actCh:   make(chan cycleResult, 1),
	}
	r.metrics.Registry().GaugeFunc("pfm_queue_depth",
		"Events waiting in the ingest queue.", func() float64 { return float64(r.queue.depth()) })
	r.metrics.Registry().GaugeFunc("pfm_queue_capacity",
		"Ingest queue capacity.", func() float64 { return float64(r.queue.capacity()) })
	return r, nil
}

// Metrics returns the pipeline's metric set.
func (r *Runtime) Metrics() *Metrics { return r.metrics }

// QueueDepth returns the current ingest backlog.
func (r *Runtime) QueueDepth() int { return r.queue.depth() }

// Start launches the pipeline stages. ctx cancellation hard-stops the
// pipeline (no drain); use Stop for graceful shutdown.
func (r *Runtime) Start(ctx context.Context) error {
	if !r.started.CompareAndSwap(false, true) {
		return fmt.Errorf("%w: already started", ErrRuntime)
	}
	r.startWall = time.Now()
	if r.cfg.Clock == nil {
		start := r.startWall
		r.cfg.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	r.hardCtx, r.hardStop = context.WithCancel(ctx)
	r.evalStop = make(chan struct{})
	if r.cfg.Workers > 1 {
		r.pool = NewPool(r.cfg.Workers)
	}
	r.wg.Add(3)
	go r.consumeLoop()
	go r.evaluateLoop()
	go r.actLoop()
	// Hard-stop path: if the parent context dies without a graceful Stop,
	// close the queue so the consumer's drain loop can terminate.
	go func() {
		<-r.hardCtx.Done()
		r.stopping.Store(true)
		r.queue.close()
	}()
	return nil
}

// Ingest offers one event to the pipeline under the configured overflow
// policy. Under Block it waits for queue space until ctx is canceled. It
// returns ErrClosed once shutdown has begun.
func (r *Runtime) Ingest(ctx context.Context, ev Event) error {
	start := time.Now()
	err := r.queue.push(ctx, ev, r.metrics)
	if !errors.Is(err, ErrClosed) {
		r.metrics.IngestLatency.Observe(time.Since(start).Seconds())
	}
	return err
}

// EvaluateNow requests an immediate MEA cycle (event-driven evaluation).
// Coalesces if a request is already pending.
func (r *Runtime) EvaluateNow() {
	select {
	case r.evalReq <- struct{}{}:
	default:
	}
}

// consumeLoop is the single ingest consumer: it applies queued events to
// the predictor state under the write lock, then signals the evaluator to
// shut down once the queue has fully drained.
func (r *Runtime) consumeLoop() {
	defer r.wg.Done()
	for ev := range r.queue.ch {
		start := time.Now()
		r.stateMu.Lock()
		err := r.cfg.Apply(ev)
		r.stateMu.Unlock()
		r.metrics.Applied.Inc()
		if err != nil {
			r.metrics.ApplyErrors.Inc()
		}
		r.metrics.ApplyLatency.Observe(time.Since(start).Seconds())
	}
	// Queue closed and drained: release the evaluate stage.
	close(r.evalStop)
}

// evaluateLoop runs MEA cycles on the ticker and on demand, scoring the
// layers in the worker pool under the state read lock.
func (r *Runtime) evaluateLoop() {
	defer r.wg.Done()
	defer close(r.actCh)
	var tick <-chan time.Time
	if r.cfg.EvalInterval > 0 {
		t := time.NewTicker(r.cfg.EvalInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-r.hardCtx.Done():
			return
		case <-r.evalStop:
			// Drain complete: one final cycle so late events still reach
			// a decision, then shut the act stage.
			r.runCycle()
			return
		case <-tick:
		case <-r.evalReq:
		}
		r.runCycle()
	}
}

// runCycle scores all layers (parallel when pooled) and hands the vector
// to the act stage. Blocks on the act channel — act backpressure
// throttles evaluation rather than piling up unacted scores.
func (r *Runtime) runCycle() {
	start := time.Now()
	now := r.cfg.Clock()
	r.stateMu.RLock()
	var scores []float64
	if r.pool != nil {
		scores = r.pool.Evaluate(r.layers, now)
	} else {
		scores = r.engine.EvaluateLayers(now)
	}
	r.stateMu.RUnlock()
	r.metrics.EvalLatency.Observe(time.Since(start).Seconds())
	select {
	case r.actCh <- cycleResult{now: now, scores: scores}:
	case <-r.hardCtx.Done():
	}
}

// actLoop is the serialized act stage: one cross-layer decision at a time
// through core.Engine.ActOn.
func (r *Runtime) actLoop() {
	defer r.wg.Done()
	for res := range r.actCh {
		start := time.Now()
		d := r.engine.ActOn(res.now, res.scores)
		r.metrics.Evaluations.Inc()
		if d.Warned {
			r.metrics.Warnings.Inc()
		}
		if d.Executed {
			r.metrics.Actions.Inc()
		}
		if d.Suppressed {
			r.metrics.Suppressed.Inc()
		}
		r.metrics.ActLatency.Observe(time.Since(start).Seconds())
		r.lastCycle.Store(time.Now().UnixNano())
	}
}

// Stop shuts the pipeline down gracefully: reject new ingest, drain the
// queue through Apply, run a final evaluation, let the act stage finish,
// then release the workers. If ctx expires first, the pipeline is
// hard-stopped and ctx's error returned. Stop is idempotent.
func (r *Runtime) Stop(ctx context.Context) error {
	if !r.started.Load() {
		return fmt.Errorf("%w: not started", ErrRuntime)
	}
	r.stopOnce.Do(func() {
		r.stopping.Store(true)
		r.queue.close()
		done := make(chan struct{})
		go func() {
			r.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			r.hardStop()
			<-done
			r.stopErr = ctx.Err()
		}
		r.hardStop()
		if r.pool != nil {
			r.pool.Close()
		}
	})
	return r.stopErr
}

// Running reports whether the pipeline is started and not yet stopping.
func (r *Runtime) Running() bool { return r.started.Load() && !r.stopping.Load() }

// Uptime returns the wall-clock time since Start.
func (r *Runtime) Uptime() time.Duration {
	if !r.started.Load() {
		return 0
	}
	return time.Since(r.startWall)
}

// LastCycle returns when the act stage last completed a decision (zero
// time if no cycle has completed yet).
func (r *Runtime) LastCycle() time.Time {
	ns := r.lastCycle.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

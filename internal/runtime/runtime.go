package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config parameterizes the streaming runtime.
type Config struct {
	// Engine supplies the layers and the serialized Act semantics
	// (cross-layer decision, oscillation guard, Table 1 accounting). It
	// may be externally clocked (core.New with a nil sim engine).
	Engine *core.Engine
	// Apply integrates one ingested event into the predictor-visible
	// state (e.g. append to an eventlog.Log or a timeseries.Series).
	// Apply and Layer.Evaluate never overlap: Apply runs under the shared
	// side of the runtime's state lock, evaluation under the exclusive
	// side. With Shards == 1 (the default) Apply calls are additionally
	// fully serialized, so Apply and the layers may share state without
	// their own locking. With Shards > 1, events whose ShardKey matches
	// stay serialized and ordered, but Apply may run concurrently for
	// events of different keys — state reached from more than one key
	// needs its own synchronization.
	Apply func(Event) error
	// Clock maps wall time to the domain time passed to Layer.Evaluate
	// and Engine.ActOn. Nil defaults to seconds since Start.
	Clock func() float64
	// QueueCapacity bounds each ingest shard's queue (default 1024).
	QueueCapacity int
	// Overflow is the full-queue policy (default Block).
	Overflow OverflowPolicy
	// Shards is the number of parallel ingest shards (default 1). Each
	// shard owns a bounded queue and one consumer goroutine; events are
	// routed by FNV-1a hash of their shard key, so per-key ordering is
	// preserved while independent monitor streams apply in parallel.
	Shards int
	// ShardKey overrides event→key routing (nil uses DefaultShardKey:
	// samples by Variable, all error events on one key). Ignored when
	// Shards == 1.
	ShardKey func(Event) string
	// Profiling exposes net/http/pprof handlers under /debug/pprof/ on
	// the runtime's Handler. Off by default — profiles reveal operational
	// detail, so they are opt-in.
	Profiling bool
	// EvalInterval is the wall-clock MEA cadence. Zero disables the
	// ticker; cycles then run only via EvaluateNow.
	EvalInterval time.Duration
	// Workers sizes the layer-evaluation pool (default GOMAXPROCS, or
	// the layer count if smaller). 1 evaluates sequentially.
	Workers int
	// Metrics receives pipeline observability; nil allocates a fresh set.
	Metrics *Metrics
}

// cycleResult carries one score vector from the evaluate to the act stage.
type cycleResult struct {
	now    float64
	scores []float64
}

// Runtime is the concurrent streaming MEA pipeline. Construct with New,
// drive with Start/Ingest/EvaluateNow, finish with Stop.
type Runtime struct {
	cfg     Config
	engine  *core.Engine
	layers  []*core.Layer
	queues  []*queue // one bounded queue + consumer per ingest shard
	pool    *Pool
	metrics *Metrics

	// stateMu guards the user's predictor state: shard consumers hold the
	// read (shared) lock around Apply so independent shards apply in
	// parallel, layer evaluation holds the write (exclusive) lock. Apply
	// and evaluation therefore never overlap.
	stateMu sync.RWMutex

	// consumersWg tracks the shard consumers; the evaluator's drain signal
	// fires once all of them have exhausted their queues.
	consumersWg sync.WaitGroup

	evalReq  chan struct{}
	actCh    chan cycleResult
	evalStop chan struct{} // closed after ingest drain: evaluator exits
	hardCtx  context.Context
	hardStop context.CancelFunc
	wg       sync.WaitGroup

	started   atomic.Bool
	stopping  atomic.Bool
	stopOnce  sync.Once
	stopErr   error
	startWall time.Time
	lastCycle atomic.Int64 // unix nanos of the last completed act round
}

// New validates the configuration and assembles a runtime (not yet
// running; call Start).
func New(cfg Config) (*Runtime, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrRuntime)
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("%w: nil Apply", ErrRuntime)
	}
	if cfg.QueueCapacity < 0 || cfg.EvalInterval < 0 || cfg.Workers < 0 || cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: negative capacity/interval/workers/shards", ErrRuntime)
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.ShardKey == nil {
		cfg.ShardKey = DefaultShardKey
	}
	layers := cfg.Engine.Layers()
	if cfg.Workers == 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
		if len(layers) < cfg.Workers {
			cfg.Workers = len(layers)
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	r := &Runtime{
		cfg:     cfg,
		engine:  cfg.Engine,
		layers:  layers,
		queues:  make([]*queue, cfg.Shards),
		metrics: cfg.Metrics,
		evalReq: make(chan struct{}, 1),
		actCh:   make(chan cycleResult, 1),
	}
	reg := r.metrics.Registry()
	for s := range r.queues {
		// Per-shard series share their family: help text on the first only.
		depthHelp, dropHelp := "", ""
		if s == 0 {
			depthHelp = "Events waiting per ingest shard."
			dropHelp = "Events dropped per ingest shard (all reasons)."
		}
		drops := reg.Counter("pfm_shard_dropped_total", dropHelp, "shard", strconv.Itoa(s))
		r.queues[s] = newQueue(cfg.QueueCapacity, cfg.Overflow, drops)
		q := r.queues[s]
		reg.GaugeFunc("pfm_shard_queue_depth", depthHelp,
			func() float64 { return float64(q.depth()) }, "shard", strconv.Itoa(s))
	}
	reg.GaugeFunc("pfm_queue_depth",
		"Events waiting across all ingest shard queues.", func() float64 { return float64(r.QueueDepth()) })
	reg.GaugeFunc("pfm_queue_capacity",
		"Total ingest queue capacity across shards.", func() float64 { return float64(r.queueCapacity()) })
	return r, nil
}

// Metrics returns the pipeline's metric set.
func (r *Runtime) Metrics() *Metrics { return r.metrics }

// QueueDepth returns the current ingest backlog summed across shards.
func (r *Runtime) QueueDepth() int {
	total := 0
	for _, q := range r.queues {
		total += q.depth()
	}
	return total
}

// queueCapacity returns the total buffer capacity across shards.
func (r *Runtime) queueCapacity() int {
	total := 0
	for _, q := range r.queues {
		total += q.capacity()
	}
	return total
}

// Shards returns the number of ingest shards.
func (r *Runtime) Shards() int { return len(r.queues) }

// shardFor routes an event to its shard queue by hashing the shard key.
func (r *Runtime) shardFor(ev Event) *queue {
	if len(r.queues) == 1 {
		return r.queues[0]
	}
	return r.queues[fnv1a(r.cfg.ShardKey(ev))%uint32(len(r.queues))]
}

// Start launches the pipeline stages. ctx cancellation hard-stops the
// pipeline (no drain); use Stop for graceful shutdown.
func (r *Runtime) Start(ctx context.Context) error {
	if !r.started.CompareAndSwap(false, true) {
		return fmt.Errorf("%w: already started", ErrRuntime)
	}
	r.startWall = time.Now()
	if r.cfg.Clock == nil {
		start := r.startWall
		r.cfg.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	r.hardCtx, r.hardStop = context.WithCancel(ctx)
	r.evalStop = make(chan struct{})
	if r.cfg.Workers > 1 {
		r.pool = NewPool(r.cfg.Workers)
	}
	r.wg.Add(len(r.queues) + 3)
	r.consumersWg.Add(len(r.queues))
	for s := range r.queues {
		go r.consumeLoop(r.queues[s])
	}
	// Release the evaluate stage only after every shard has drained.
	go func() {
		defer r.wg.Done()
		r.consumersWg.Wait()
		close(r.evalStop)
	}()
	go r.evaluateLoop()
	go r.actLoop()
	// Hard-stop path: if the parent context dies without a graceful Stop,
	// close the queues so the consumers' drain loops can terminate.
	go func() {
		<-r.hardCtx.Done()
		r.stopping.Store(true)
		for _, q := range r.queues {
			q.close()
		}
	}()
	return nil
}

// Ingest offers one event to the pipeline under the configured overflow
// policy. Under Block it waits for queue space until ctx is canceled. It
// returns ErrClosed once shutdown has begun.
func (r *Runtime) Ingest(ctx context.Context, ev Event) error {
	start := time.Now()
	err := r.shardFor(ev).push(ctx, ev, r.metrics)
	if !errors.Is(err, ErrClosed) {
		r.metrics.IngestLatency.Observe(time.Since(start).Seconds())
	}
	return err
}

// EvaluateNow requests an immediate MEA cycle (event-driven evaluation).
// Coalesces if a request is already pending.
func (r *Runtime) EvaluateNow() {
	select {
	case r.evalReq <- struct{}{}:
	default:
	}
}

// consumeLoop is one shard's ingest consumer: it applies the shard's
// queued events to the predictor state under the shared state lock, so
// consumers of different shards apply concurrently while evaluation (which
// takes the exclusive lock) still never overlaps an Apply.
func (r *Runtime) consumeLoop(q *queue) {
	defer r.wg.Done()
	defer r.consumersWg.Done()
	for ev := range q.ch {
		start := time.Now()
		r.stateMu.RLock()
		err := r.cfg.Apply(ev)
		r.stateMu.RUnlock()
		r.metrics.Applied.Inc()
		if err != nil {
			r.metrics.ApplyErrors.Inc()
		}
		r.metrics.ApplyLatency.Observe(time.Since(start).Seconds())
	}
}

// evaluateLoop runs MEA cycles on the ticker and on demand, scoring the
// layers in the worker pool under the state read lock.
func (r *Runtime) evaluateLoop() {
	defer r.wg.Done()
	defer close(r.actCh)
	var tick <-chan time.Time
	if r.cfg.EvalInterval > 0 {
		t := time.NewTicker(r.cfg.EvalInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-r.hardCtx.Done():
			return
		case <-r.evalStop:
			// Drain complete: one final cycle so late events still reach
			// a decision, then shut the act stage.
			r.runCycle()
			return
		case <-tick:
		case <-r.evalReq:
		}
		r.runCycle()
	}
}

// runCycle scores all layers (parallel when pooled) and hands the vector
// to the act stage. Blocks on the act channel — act backpressure
// throttles evaluation rather than piling up unacted scores.
func (r *Runtime) runCycle() {
	start := time.Now()
	now := r.cfg.Clock()
	// Exclusive lock: evaluation sees a quiescent state snapshot even when
	// several shard consumers apply concurrently under the shared lock.
	r.stateMu.Lock()
	var scores []float64
	if r.pool != nil {
		scores = r.pool.Evaluate(r.layers, now)
	} else {
		scores = r.engine.EvaluateLayers(now)
	}
	r.stateMu.Unlock()
	r.metrics.EvalLatency.Observe(time.Since(start).Seconds())
	select {
	case r.actCh <- cycleResult{now: now, scores: scores}:
	case <-r.hardCtx.Done():
	}
}

// actLoop is the serialized act stage: one cross-layer decision at a time
// through core.Engine.ActOn.
func (r *Runtime) actLoop() {
	defer r.wg.Done()
	for res := range r.actCh {
		start := time.Now()
		d := r.engine.ActOn(res.now, res.scores)
		r.metrics.Evaluations.Inc()
		if d.Warned {
			r.metrics.Warnings.Inc()
		}
		if d.Executed {
			r.metrics.Actions.Inc()
		}
		if d.Suppressed {
			r.metrics.Suppressed.Inc()
		}
		r.metrics.ActLatency.Observe(time.Since(start).Seconds())
		r.lastCycle.Store(time.Now().UnixNano())
	}
}

// Stop shuts the pipeline down gracefully: reject new ingest, drain the
// queue through Apply, run a final evaluation, let the act stage finish,
// then release the workers. If ctx expires first, the pipeline is
// hard-stopped and ctx's error returned. Stop is idempotent.
func (r *Runtime) Stop(ctx context.Context) error {
	if !r.started.Load() {
		return fmt.Errorf("%w: not started", ErrRuntime)
	}
	r.stopOnce.Do(func() {
		r.stopping.Store(true)
		for _, q := range r.queues {
			q.close()
		}
		done := make(chan struct{})
		go func() {
			r.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			r.hardStop()
			<-done
			r.stopErr = ctx.Err()
		}
		r.hardStop()
		if r.pool != nil {
			r.pool.Close()
		}
	})
	return r.stopErr
}

// Running reports whether the pipeline is started and not yet stopping.
func (r *Runtime) Running() bool { return r.started.Load() && !r.stopping.Load() }

// Uptime returns the wall-clock time since Start.
func (r *Runtime) Uptime() time.Duration {
	if !r.started.Load() {
		return 0
	}
	return time.Since(r.startWall)
}

// LastCycle returns when the act stage last completed a decision (zero
// time if no cycle has completed yet).
func (r *Runtime) LastCycle() time.Time {
	ns := r.lastCycle.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	stdruntime "runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/predict"
)

// Config parameterizes the streaming runtime.
type Config struct {
	// Engine supplies the layers and the serialized Act semantics
	// (cross-layer decision, oscillation guard, Table 1 accounting). It
	// may be externally clocked (core.New with a nil sim engine).
	Engine *core.Engine
	// Apply integrates one ingested event into the predictor-visible
	// state (e.g. append to an eventlog.Log or a timeseries.Series).
	// Apply and Layer.Evaluate never overlap: Apply runs under the shared
	// side of the runtime's state lock, evaluation under the exclusive
	// side. With Shards == 1 (the default) Apply calls are additionally
	// fully serialized, so Apply and the layers may share state without
	// their own locking. With Shards > 1, events whose ShardKey matches
	// stay serialized and ordered, but Apply may run concurrently for
	// events of different keys — state reached from more than one key
	// needs its own synchronization.
	Apply func(Event) error
	// Clock maps wall time to the domain time passed to Layer.Evaluate
	// and Engine.ActOn. Nil defaults to seconds since Start.
	Clock func() float64
	// QueueCapacity bounds each ingest shard's queue (default 1024).
	QueueCapacity int
	// Overflow is the full-queue policy (default Block).
	Overflow OverflowPolicy
	// BatchSize is the drain-amortization unit: each shard consumer takes
	// up to BatchSize events per queue drain and applies them under one
	// state-lock acquisition with one latency observation (default 64).
	// 1 reproduces the event-at-a-time path — batching is observationally
	// invisible either way (ledger state, counters and act decisions are
	// byte-identical across batch sizes; only the histograms' observation
	// granularity changes).
	BatchSize int
	// Shards is the number of parallel ingest shards (default 1). Each
	// shard owns a bounded queue and one consumer goroutine; events are
	// routed by FNV-1a hash of their shard key, so per-key ordering is
	// preserved while independent monitor streams apply in parallel.
	Shards int
	// ShardKey overrides event→key routing (nil uses DefaultShardKey:
	// samples by Variable, all error events on one key). Ignored when
	// Shards == 1.
	ShardKey func(Event) string
	// Profiling exposes net/http/pprof handlers under /debug/pprof/ on
	// the runtime's Handler. Off by default — profiles reveal operational
	// detail, so they are opt-in.
	Profiling bool
	// EvalInterval is the wall-clock MEA cadence. Zero disables the
	// ticker; cycles then run only via EvaluateNow.
	EvalInterval time.Duration
	// Workers sizes the layer-evaluation pool (default GOMAXPROCS, or
	// the layer count if smaller). 1 evaluates sequentially.
	Workers int
	// Metrics receives pipeline observability; nil allocates a fresh set.
	Metrics *Metrics
	// Tracer records end-to-end spans (ingest→queue→apply→evaluate→act)
	// for every event into a ring of recent traces, rendered by /tracez.
	// Nil disables tracing (the hot path then skips all stamping).
	Tracer *obs.Tracer
	// Ledger journals every per-layer prediction and combined decision the
	// act stage emits, for online Sect. 3.3 quality accounting. The caller
	// feeds ground-truth failures via Ledger.RecordFailure. Nil disables
	// the ledger. When set, per-layer precision/recall/fpr/F1 gauges are
	// registered on the metric registry and /ledger serves the journal.
	Ledger *obs.Ledger
	// Lifecycle drives drift-triggered retraining and zero-downtime
	// predictor hot-swaps for the engine's layers: candidate windows are
	// captured and shadow candidates scored inside each cycle's evaluation
	// exclusion (Manager.Collect), shadow predictions are journaled to the
	// Ledger under "<layer>#candidate", and promotion/rollback decisions
	// run on the act stage (Manager.ObserveCycle). Requires Ledger. Nil
	// disables the lifecycle. When set, layer-version gauges, swap/retrain
	// counters, a retrain-duration histogram and the /layers endpoint are
	// registered.
	Lifecycle *lifecycle.Manager
	// Recorder is the prediction-triggered flight recorder: the act stage
	// feeds it every cycle's decision (Recorder.Observe), pending
	// incident captures are assembled inside the evaluation exclusion
	// (Recorder.Collect), lifecycle drift/rollback events fire its
	// external triggers, and Stop flushes the tail. Nil disables it. When
	// set, pfm_incidents_total / pfm_incident_bundle_seconds are
	// registered and /incidents serves the retained bundles.
	Recorder *obs.Recorder
}

// cycleResult carries one score vector from the evaluate to the act stage,
// with the cycle's evaluation span on the tracer clock.
type cycleResult struct {
	now       float64
	scores    []float64
	cands     []lifecycle.CandidateScore // shadow-candidate scores this cycle
	evalStart int64
	evalEnd   int64
}

// Runtime is the concurrent streaming MEA pipeline. Construct with New,
// drive with Start/Ingest/EvaluateNow, finish with Stop.
type Runtime struct {
	cfg     Config
	engine  *core.Engine
	layers  []*core.Layer
	queues  []*queue // one bounded queue + consumer per ingest shard
	pool    *Pool
	metrics *Metrics

	// stateMu guards the user's predictor state: shard consumers hold the
	// read (shared) lock around Apply so independent shards apply in
	// parallel, layer evaluation holds the write (exclusive) lock. Apply
	// and evaluation therefore never overlap.
	stateMu sync.RWMutex

	// consumersWg tracks the shard consumers; the evaluator's drain signal
	// fires once all of them have exhausted their queues.
	consumersWg sync.WaitGroup

	evalReq  chan struct{}
	actCh    chan cycleResult
	evalStop chan struct{} // closed after ingest drain: evaluator exits
	hardCtx  context.Context
	hardStop context.CancelFunc
	wg       sync.WaitGroup

	started   atomic.Bool
	stopping  atomic.Bool
	stopped   atomic.Bool // graceful drain complete (readiness: "stopped")
	stopOnce  sync.Once
	stopErr   error
	startWall time.Time
	lastCycle atomic.Int64 // unix nanos of the last completed act round
	cycles    atomic.Int64 // completed act rounds since Start

	// ingestGate drives both producer-side sampling decisions from one
	// shared atomic per Ingest call: the ingest-latency histogram observes
	// 1 in ingestLatencyEvery calls (two clock reads per event would
	// dominate the batched hot path), and trace sampling admits 1 in
	// sampleEvery calls (the tracer's interval, cached at construction).
	ingestGate  atomic.Uint64
	sampleEvery uint64 // 0 = tracing off
	sampleMask  uint64 // sampleEvery-1 when it is a power of two, else 0

	// scoreFree recycles cycle score vectors between the evaluate and act
	// stages (cap > 1: the evaluator may start the next cycle while the
	// act stage still holds the previous vector).
	scoreFree chan []float64

	// cycleMu serializes CycleBatch callers; batchScores/batchRow are its
	// reused layer-major score matrix and per-cycle row view.
	cycleMu     sync.Mutex
	batchScores []float64
	batchRow    []float64
}

// ingestLatencyEvery is the ingest-latency sampling interval (power of
// two). Symmetric across tracing on/off, so the tracing-overhead budget
// comparison stays apples-to-apples.
const ingestLatencyEvery = 16

// New validates the configuration and assembles a runtime (not yet
// running; call Start).
func New(cfg Config) (*Runtime, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrRuntime)
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("%w: nil Apply", ErrRuntime)
	}
	if cfg.QueueCapacity < 0 || cfg.EvalInterval < 0 || cfg.Workers < 0 || cfg.Shards < 0 || cfg.BatchSize < 0 {
		return nil, fmt.Errorf("%w: negative capacity/interval/workers/shards/batch", ErrRuntime)
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.ShardKey == nil {
		cfg.ShardKey = DefaultShardKey
	}
	layers := cfg.Engine.Layers()
	if cfg.Workers == 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
		if len(layers) < cfg.Workers {
			cfg.Workers = len(layers)
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	r := &Runtime{
		cfg:       cfg,
		engine:    cfg.Engine,
		layers:    layers,
		queues:    make([]*queue, cfg.Shards),
		metrics:   cfg.Metrics,
		evalReq:   make(chan struct{}, 1),
		actCh:     make(chan cycleResult, 1),
		scoreFree: make(chan []float64, 4),
	}
	if cfg.Tracer != nil {
		r.sampleEvery = uint64(cfg.Tracer.Interval())
		if r.sampleEvery > 1 && r.sampleEvery&(r.sampleEvery-1) == 0 {
			// Power-of-two interval (the default is 16): a mask beats the
			// hardware division n%every would cost on every single event.
			r.sampleMask = r.sampleEvery - 1
		}
	}
	reg := r.metrics.Registry()
	for s := range r.queues {
		// Per-shard series share their family: help text on the first only.
		depthHelp, dropHelp := "", ""
		if s == 0 {
			depthHelp = "Events waiting per ingest shard."
			dropHelp = "Events dropped per ingest shard (all reasons)."
		}
		drops := reg.Counter("pfm_shard_dropped_total", dropHelp, "shard", strconv.Itoa(s))
		r.queues[s] = newQueue(cfg.QueueCapacity, cfg.Overflow, r.metrics, drops, cfg.Tracer, s)
		q := r.queues[s]
		reg.GaugeFunc("pfm_shard_queue_depth", depthHelp,
			func() float64 { return float64(q.depth()) }, "shard", strconv.Itoa(s))
	}
	reg.GaugeFunc("pfm_queue_depth",
		"Events waiting across all ingest shard queues.", func() float64 { return float64(r.QueueDepth()) })
	reg.GaugeFunc("pfm_queue_capacity",
		"Total ingest queue capacity across shards.", func() float64 { return float64(r.queueCapacity()) })
	if cfg.Ledger != nil {
		registerLedgerGauges(reg, cfg.Ledger, layers)
	}
	// Layer evaluation failures were previously swallowed as silent NaN
	// abstentions; surface them per layer, and combiner failures engine-wide.
	evalErrHelp := "Layer evaluations that returned an error (scored as abstain)."
	for _, l := range layers {
		layer := l
		reg.CounterFunc("pfm_layer_eval_errors_total", evalErrHelp,
			func() float64 { return float64(layer.EvalErrors()) }, "layer", layer.Name)
		evalErrHelp = ""
	}
	reg.CounterFunc("pfm_combiner_errors_total",
		"Act rounds whose combiner failed (confidence forced to 0).",
		func() float64 { return float64(cfg.Engine.CombinerErrors()) })
	if cfg.Lifecycle != nil {
		if cfg.Ledger == nil {
			return nil, fmt.Errorf("%w: Lifecycle requires Ledger (shadow validation reads live quality)", ErrRuntime)
		}
		registerLifecycleMetrics(reg, cfg.Lifecycle, layers)
	}
	if cfg.Recorder != nil {
		registerRecorderMetrics(reg, cfg.Recorder)
		if cfg.Lifecycle != nil {
			// Drift and rollback events originate deterministically in
			// ObserveCycle (act stage), so they are replay-stable triggers;
			// retrain-done is wall-clock timed and deliberately not wired.
			rec := cfg.Recorder
			cfg.Lifecycle.Subscribe(func(e lifecycle.Event) {
				switch e.Type {
				case lifecycle.EventDrift:
					rec.TriggerEvent(obs.TriggerDrift, e.Time, e.Layer)
				case lifecycle.EventRolledBack:
					rec.TriggerEvent(obs.TriggerRollback, e.Time, e.Layer)
				}
			})
		}
	}
	return r, nil
}

// registerRecorderMetrics exposes the flight recorder's trigger counters
// and the bundle-assembly latency histogram.
func registerRecorderMetrics(reg *Registry, rec *obs.Recorder) {
	capturedHelp := "Incident bundles captured, by trigger kind."
	for _, k := range obs.TriggerKinds {
		kind := k
		reg.CounterFunc("pfm_incidents_total", capturedHelp,
			func() float64 { return float64(rec.Captured(kind)) }, "trigger", string(kind))
		capturedHelp = ""
	}
	reg.CounterFunc("pfm_incidents_suppressed_total",
		"Triggers swallowed by the refractory rate limit.",
		func() float64 { return float64(rec.Suppressed()) })
	bundleDur := reg.Histogram("pfm_incident_bundle_seconds",
		"Wall time spent assembling one incident bundle.",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1})
	rec.Subscribe(func(b *obs.IncidentBundle) { bundleDur.Observe(b.CaptureSeconds) })
}

// registerLifecycleMetrics exposes the predictor-lifecycle observability:
// serving version per layer, episode counters, and the retrain-duration
// histogram (fed by lifecycle events).
func registerLifecycleMetrics(reg *Registry, mgr *lifecycle.Manager, layers []*core.Layer) {
	versionHelp := "Serving predictor version per layer (bumped by hot-swap and rollback)."
	for _, l := range layers {
		layer := l
		reg.GaugeFunc("pfm_layer_version", versionHelp,
			func() float64 { return float64(layer.Version()) }, "layer", layer.Name)
		versionHelp = ""
	}
	counters := []struct {
		name, help string
		f          func(lifecycle.Totals) int
	}{
		{"pfm_drift_detected_total", "Drift detections across layers.", func(t lifecycle.Totals) int { return t.Drifts }},
		{"pfm_retrains_total", "Candidate retrains started.", func(t lifecycle.Totals) int { return t.Retrains }},
		{"pfm_retrain_errors_total", "Retrains that failed (capture or fit).", func(t lifecycle.Totals) int { return t.RetrainErrors }},
		{"pfm_swaps_total", "Predictor hot-swaps (candidate promoted).", func(t lifecycle.Totals) int { return t.Swaps }},
		{"pfm_swap_rollbacks_total", "Swaps rolled back after probation regression.", func(t lifecycle.Totals) int { return t.Rollbacks }},
		{"pfm_swap_confirms_total", "Swaps confirmed after probation.", func(t lifecycle.Totals) int { return t.Confirms }},
	}
	for _, c := range counters {
		f := c.f
		reg.CounterFunc(c.name, c.help, func() float64 { return float64(f(mgr.Totals())) })
	}
	retrainDur := reg.Histogram("pfm_retrain_duration_seconds",
		"Wall time of candidate retrains (succeeded or failed).",
		[]float64{1e-3, 1e-2, 1e-1, 1, 10, 60, 600})
	mgr.Subscribe(func(e lifecycle.Event) {
		if e.Type == lifecycle.EventRetrainDone || e.Type == lifecycle.EventRetrainFailed {
			retrainDur.Observe(e.Duration)
		}
	})
}

// registerLedgerGauges exposes the ledger's rolling-window Sect. 3.3
// quality metrics for every engine layer plus the combined decision.
// Gauges render NaN while a metric's denominator is still empty.
func registerLedgerGauges(reg *Registry, led *obs.Ledger, layers []*core.Layer) {
	names := make([]string, 0, len(layers)+1)
	for _, l := range layers {
		names = append(names, l.Name)
	}
	names = append(names, obs.CombinedLayer)
	quality := []struct {
		metric, help string
		f            func(predict.ContingencyTable) float64
	}{
		{"pfm_ledger_precision", "Rolling-window precision per prediction layer.", predict.ContingencyTable.Precision},
		{"pfm_ledger_recall", "Rolling-window recall per prediction layer.", predict.ContingencyTable.Recall},
		{"pfm_ledger_fpr", "Rolling-window false positive rate per prediction layer.", predict.ContingencyTable.FPR},
		{"pfm_ledger_f1", "Rolling-window F-measure per prediction layer.", predict.ContingencyTable.FMeasure},
	}
	for _, qm := range quality {
		help := qm.help
		for _, name := range names {
			f, layer := qm.f, name
			reg.GaugeFunc(qm.metric, help, func() float64 { return f(led.Quality(layer)) }, "layer", layer)
			help = "" // one HELP line per family
		}
	}
	outcomeHelp := "Rolling-window contingency counts per layer and outcome."
	for _, name := range names {
		layer := name
		for _, oc := range []struct {
			outcome string
			f       func(predict.ContingencyTable) int
		}{
			{"tp", func(c predict.ContingencyTable) int { return c.TP }},
			{"fp", func(c predict.ContingencyTable) int { return c.FP }},
			{"tn", func(c predict.ContingencyTable) int { return c.TN }},
			{"fn", func(c predict.ContingencyTable) int { return c.FN }},
		} {
			f := oc.f
			reg.GaugeFunc("pfm_ledger_outcomes", outcomeHelp,
				func() float64 { return float64(f(led.Quality(layer))) },
				"layer", layer, "outcome", oc.outcome)
			outcomeHelp = ""
		}
	}
}

// Tracer returns the configured span tracer (nil when tracing is off).
func (r *Runtime) Tracer() *obs.Tracer { return r.cfg.Tracer }

// Ledger returns the configured prediction ledger (nil when disabled).
func (r *Runtime) Ledger() *obs.Ledger { return r.cfg.Ledger }

// Lifecycle returns the configured predictor-lifecycle manager (nil when
// disabled).
func (r *Runtime) Lifecycle() *lifecycle.Manager { return r.cfg.Lifecycle }

// Recorder returns the configured flight recorder (nil when disabled).
func (r *Runtime) Recorder() *obs.Recorder { return r.cfg.Recorder }

// Metrics returns the pipeline's metric set.
func (r *Runtime) Metrics() *Metrics { return r.metrics }

// QueueDepth returns the current ingest backlog summed across shards.
func (r *Runtime) QueueDepth() int {
	total := 0
	for _, q := range r.queues {
		total += q.depth()
	}
	return total
}

// queueCapacity returns the total buffer capacity across shards.
func (r *Runtime) queueCapacity() int {
	total := 0
	for _, q := range r.queues {
		total += q.capacity()
	}
	return total
}

// Shards returns the number of ingest shards.
func (r *Runtime) Shards() int { return len(r.queues) }

// shardFor routes an event to its shard queue by hashing the shard key.
func (r *Runtime) shardFor(ev Event) *queue {
	if len(r.queues) == 1 {
		return r.queues[0]
	}
	return r.queues[fnv1a(r.cfg.ShardKey(ev))%uint32(len(r.queues))]
}

// Start launches the pipeline stages. ctx cancellation hard-stops the
// pipeline (no drain); use Stop for graceful shutdown.
func (r *Runtime) Start(ctx context.Context) error {
	if !r.started.CompareAndSwap(false, true) {
		return fmt.Errorf("%w: already started", ErrRuntime)
	}
	r.startWall = time.Now()
	if r.cfg.Clock == nil {
		start := r.startWall
		r.cfg.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	r.hardCtx, r.hardStop = context.WithCancel(ctx)
	r.evalStop = make(chan struct{})
	if r.cfg.Workers > 1 {
		r.pool = NewPool(r.cfg.Workers)
	}
	r.wg.Add(len(r.queues) + 3)
	r.consumersWg.Add(len(r.queues))
	for s := range r.queues {
		go r.consumeLoop(r.queues[s])
	}
	// Release the evaluate stage only after every shard has drained.
	go func() {
		defer r.wg.Done()
		r.consumersWg.Wait()
		close(r.evalStop)
	}()
	go r.evaluateLoop()
	go r.actLoop()
	// Hard-stop path: if the parent context dies without a graceful Stop,
	// close the queues so the consumers' drain loops can terminate.
	go func() {
		<-r.hardCtx.Done()
		r.stopping.Store(true)
		for _, q := range r.queues {
			q.close()
		}
	}()
	return nil
}

// Ingest offers one event to the pipeline under the configured overflow
// policy. Under Block it waits for queue space until ctx is canceled. It
// returns ErrClosed once shutdown has begun.
//
// One shared atomic per call drives both producer-side samplers: trace
// sampling admits one in tracer-interval events (the first call always
// samples, like Tracer.Sample) and the ingest-latency histogram observes
// one in ingestLatencyEvery calls — the unsampled hot path pays no clock
// read and no further tracer bookkeeping.
func (r *Runtime) Ingest(ctx context.Context, ev Event) error {
	n := r.ingestGate.Add(1)
	var start time.Time
	timed := n&(ingestLatencyEvery-1) == 1
	if timed {
		start = time.Now()
	}
	sampled := false
	if r.sampleMask != 0 {
		sampled = n&r.sampleMask == 1
	} else if r.sampleEvery != 0 {
		sampled = r.sampleEvery == 1 || n%r.sampleEvery == 1
	}
	if sampled {
		ev.traceSampled = true
		// The offer follows the ingest bookkeeping by nanoseconds, so the
		// ingest span collapses into one stamp for both.
		now := r.cfg.Tracer.Now()
		ev.traceStart = now
		ev.traceOffered = now
	}
	err := r.shardFor(ev).push(ctx, &ev)
	if timed && !errors.Is(err, ErrClosed) {
		r.metrics.IngestLatency.Observe(time.Since(start).Seconds())
	}
	return err
}

// Barrier blocks until every event admitted to the ingest queues before
// the call has been fully processed (applied, or shed by a drop policy or
// shutdown). Replay drivers use it to line ingest windows up with
// synchronous evaluation (CycleBatch) without sleeping.
func (r *Runtime) Barrier(ctx context.Context) error {
	for spin := 0; ; spin++ {
		settled := true
		for _, q := range r.queues {
			if q.ring.Pending() != 0 {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		// The consumers are usually a few events from settling, so yield
		// first: a timer sleep here costs the timer's wake-up granularity
		// (around a millisecond on a loaded box) per barrier, which would
		// dominate a replay that barriers at every evaluation cadence.
		if spin < 1000 {
			stdruntime.Gosched()
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// Cycles returns how many act rounds have completed since Start — a
// deterministic synchronization point for tests and replay drivers
// (LastCycle is wall-clock-based and can collide across fast cycles).
func (r *Runtime) Cycles() int64 { return r.cycles.Load() }

// EvaluateNow requests an immediate MEA cycle (event-driven evaluation).
// Coalesces if a request is already pending.
func (r *Runtime) EvaluateNow() {
	select {
	case r.evalReq <- struct{}{}:
	default:
	}
}

// consumeLoop is one shard's ingest consumer: it drains the shard ring in
// chunks of up to Config.BatchSize and applies each chunk to the predictor
// state under one shared state-lock acquisition, so consumers of different
// shards apply concurrently while evaluation (which takes the exclusive
// lock) still never overlaps an Apply. The goroutine carries pprof labels
// so -pprof CPU profiles attribute time to drain per shard vs the
// evaluate and act stages.
func (r *Runtime) consumeLoop(q *queue) {
	defer r.wg.Done()
	defer r.consumersWg.Done()
	pprof.Do(context.Background(),
		pprof.Labels("shard", strconv.Itoa(q.shard), "stage", "drain"),
		func(context.Context) { r.drainLoop(q) })
}

// drainLoop is the chunked drain body: one ring drain, one lock, one
// apply-latency observation and one settle per chunk; per-event work is
// the Apply call plus (for sampled events) the span publish.
func (r *Runtime) drainLoop(q *queue) {
	tr := r.cfg.Tracer
	buf := make([]Event, r.cfg.BatchSize)
	for {
		n := q.ring.Drain(buf)
		if n == 0 {
			return
		}
		chunk := buf[:n]
		// Hard stop: shed the remaining backlog instead of applying it, so
		// shutdown is prompt and the depth gauges and drop counters settle
		// on consistent final values (ingested = applied + dropped).
		if r.hardCtx.Err() != nil {
			for i := range chunk {
				r.metrics.DroppedShutdown.Inc()
				q.dropped()
				q.traceDrop(chunk[i])
			}
			q.ring.Settle(n)
			continue
		}
		var dequeued int64
		if tr != nil {
			dequeued = tr.Now()
		}
		start := time.Now()
		r.stateMu.RLock()
		for i := range chunk {
			if err := r.cfg.Apply(chunk[i]); err != nil {
				r.metrics.ApplyErrors.Inc()
			}
		}
		r.stateMu.RUnlock()
		r.metrics.Applied.Add(int64(n))
		r.metrics.ApplyLatency.Observe(time.Since(start).Seconds())
		if tr != nil {
			for i := range chunk {
				if chunk[i].traceSampled {
					tr.PublishApplied(uint8(chunk[i].Kind), traceKey(chunk[i]), q.shard,
						chunk[i].traceStart, chunk[i].traceOffered, dequeued, tr.Now())
				}
			}
		}
		q.ring.Settle(n)
	}
}

// evaluateLoop runs MEA cycles on the ticker and on demand, scoring the
// layers in the worker pool under the state read lock.
func (r *Runtime) evaluateLoop() {
	defer r.wg.Done()
	defer close(r.actCh)
	var tick <-chan time.Time
	if r.cfg.EvalInterval > 0 {
		t := time.NewTicker(r.cfg.EvalInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-r.hardCtx.Done():
			return
		case <-r.evalStop:
			// Drain complete: one final cycle so late events still reach
			// a decision, then shut the act stage.
			r.runCycle()
			return
		case <-tick:
		case <-r.evalReq:
		}
		r.runCycle()
	}
}

// runCycle scores all layers (parallel when pooled) and hands the vector
// to the act stage. Blocks on the act channel — act backpressure
// throttles evaluation rather than piling up unacted scores.
func (r *Runtime) runCycle() {
	start := time.Now()
	evalStart := r.cfg.Tracer.Now()
	now := r.cfg.Clock()
	// Exclusive lock: evaluation sees a quiescent state snapshot even when
	// several shard consumers apply concurrently under the shared lock.
	r.stateMu.Lock()
	scores := r.getScores()
	r.scoreInto(now, scores)
	// Lifecycle steps that must not overlap Apply: retrain-window capture
	// and shadow-candidate scoring run under the same exclusion the layer
	// evaluations just used. Swaps themselves are pointer CASes elsewhere
	// and never extend this critical section.
	var cands []lifecycle.CandidateScore
	if r.cfg.Lifecycle != nil {
		cands = r.cfg.Lifecycle.Collect(now)
	}
	// Incident assembly also needs the exclusion: bundles slice the
	// Apply-side event log, which only this lock quiesces.
	r.cfg.Recorder.Collect()
	r.stateMu.Unlock()
	r.metrics.EvalLatency.Observe(time.Since(start).Seconds())
	select {
	case r.actCh <- cycleResult{now: now, scores: scores, cands: cands, evalStart: evalStart, evalEnd: r.cfg.Tracer.Now()}:
	case <-r.hardCtx.Done():
	}
}

// scoreInto scores every layer at now into out (len(r.layers)), NaN for
// errored evaluations — core.Engine.EvaluateLayers semantics without the
// per-cycle allocation (out comes from the scoreFree freelist or the
// CycleBatch scratch matrix).
func (r *Runtime) scoreInto(now float64, out []float64) {
	if r.pool != nil {
		r.pool.Do(len(r.layers), func(i int) {
			s, err := r.layers[i].Score(now)
			if err != nil {
				s = math.NaN()
			}
			out[i] = s
		})
		return
	}
	for i, l := range r.layers {
		s, err := l.Score(now)
		if err != nil {
			s = math.NaN()
		}
		out[i] = s
	}
}

// getScores takes a cycle score vector from the freelist (or allocates).
func (r *Runtime) getScores() []float64 {
	select {
	case s := <-r.scoreFree:
		return s
	default:
		return make([]float64, len(r.layers))
	}
}

// putScores returns a vector to the freelist once the act stage is done
// with it. Cycle observers must not retain the slice (documented on
// core.Engine.SetCycleObserver).
func (r *Runtime) putScores(s []float64) {
	select {
	case r.scoreFree <- s:
	default:
	}
}

// actLoop is the serialized act stage: one cross-layer decision at a time
// through core.Engine.ActOn.
func (r *Runtime) actLoop() {
	defer r.wg.Done()
	for res := range r.actCh {
		r.actOne(res)
		r.putScores(res.scores)
	}
}

// actOne runs the act stage for one completed evaluation: the cross-layer
// decision, act metrics, trace completion, ledger journaling, lifecycle
// observation and cycle accounting. Both the streaming act stage and
// CycleBatch go through this one path, which is what keeps batched cycles
// byte-identical to streamed ones.
func (r *Runtime) actOne(res cycleResult) {
	tr := r.cfg.Tracer
	start := time.Now()
	actStart := tr.Now()
	d := r.engine.ActOn(res.now, res.scores)
	actEnd := tr.Now()
	r.metrics.Evaluations.Inc()
	if d.Warned {
		r.metrics.Warnings.Inc()
	}
	if d.Executed {
		r.metrics.Actions.Inc()
	}
	if d.Suppressed {
		r.metrics.Suppressed.Inc()
	}
	r.metrics.ActLatency.Observe(time.Since(start).Seconds())
	tr.CompleteCycle(res.evalStart, res.evalEnd, actStart, actEnd)
	r.journalCycle(res, d)
	if r.cfg.Lifecycle != nil {
		r.cfg.Lifecycle.ObserveCycle(res.now, res.scores)
	}
	// Flight-recorder observation runs after ObserveCycle so lifecycle
	// drift/rollback triggers of this cycle precede the decision triggers'
	// refractory accounting deterministically. CompleteCycle already ran,
	// so a firing trigger correlates with this cycle's newest span.
	r.cfg.Recorder.Observe(res.now, res.scores, obs.CycleObservation{
		Warned:        d.Warned,
		Executed:      d.Executed,
		Confidence:    d.Confidence,
		Action:        d.ActionName,
		LayerVersions: d.LayerVersions,
	})
	r.lastCycle.Store(time.Now().UnixNano())
	r.cycles.Add(1)
}

// CycleBatch runs one synchronous MEA cycle per time in nows (ascending),
// scoring every layer over the whole batch under a single evaluation
// exclusion through the engine's batched entry point, then acting on each
// cycle in order through the same actOne path the streaming act stage
// uses — so ledger state, monotone counters and act decisions are
// byte-identical to len(nows) event-driven cycles at the same times.
//
// Callers must quiesce the streaming evaluate stage first (EvalInterval
// == 0 and no concurrent EvaluateNow) and call before Stop; CycleBatch
// calls themselves serialize. Typical use: a columnar replay ingests a
// window of events, Barriers, then stacks the cycle times that fell due
// in the gap — amortizing the exclusive lock and the versioned-predictor
// handle loads across the whole stack.
func (r *Runtime) CycleBatch(nows []float64) {
	if len(nows) == 0 {
		return
	}
	r.cycleMu.Lock()
	defer r.cycleMu.Unlock()
	k := len(r.layers)
	if cap(r.batchScores) < k*len(nows) {
		r.batchScores = make([]float64, k*len(nows))
	}
	if r.batchRow == nil {
		r.batchRow = make([]float64, k)
	}
	scores := r.batchScores[:k*len(nows)]
	start := time.Now()
	evalStart := r.cfg.Tracer.Now()
	r.stateMu.Lock()
	if r.pool != nil && k > 1 {
		nr := len(nows)
		r.pool.Do(k, func(j int) {
			r.layers[j].ScoreBatch(nows, scores[j*nr:(j+1)*nr])
		})
	} else {
		r.engine.EvaluateLayersBatch(nows, scores)
	}
	var cands [][]lifecycle.CandidateScore
	if r.cfg.Lifecycle != nil {
		cands = make([][]lifecycle.CandidateScore, len(nows))
		for i, now := range nows {
			cands[i] = r.cfg.Lifecycle.Collect(now)
		}
	}
	// Assemble incidents triggered since the previous batch while the
	// exclusion is held (triggers raised by this batch's act stage below
	// are captured by the next batch, or by the Stop-time Flush).
	r.cfg.Recorder.Collect()
	r.stateMu.Unlock()
	r.metrics.EvalLatency.Observe(time.Since(start).Seconds())
	evalEnd := r.cfg.Tracer.Now()
	for i, now := range nows {
		for j := 0; j < k; j++ {
			r.batchRow[j] = scores[j*len(nows)+i]
		}
		res := cycleResult{now: now, scores: r.batchRow, evalStart: evalStart, evalEnd: evalEnd}
		if cands != nil {
			res.cands = cands[i]
		}
		r.actOne(res)
	}
}

// journalCycle records the cycle's per-layer predictions and the combined
// cross-layer decision into the quality ledger. A layer whose score is NaN
// abstained and is not journaled. The ledger's ground-truth watermark
// advances to the cycle's domain time: the caller of RecordFailure must
// keep failures current up to the domain clock (pfmd records them from the
// mirrored stream as they occur).
func (r *Runtime) journalCycle(res cycleResult, d core.Decision) {
	led := r.cfg.Ledger
	if led == nil {
		return
	}
	for i, l := range r.layers {
		if i >= len(res.scores) || math.IsNaN(res.scores[i]) {
			continue
		}
		led.RecordPrediction(l.Name, res.now, res.scores[i] >= l.Threshold, res.scores[i])
	}
	// Shadow candidates journal under their "<layer>#candidate" rows so the
	// lifecycle can compare their quality to the incumbents'; a candidate
	// whose evaluation errored abstains, like a NaN layer score.
	for _, c := range res.cands {
		if c.Err == nil {
			led.RecordPrediction(c.Name, res.now, c.Score >= c.Threshold, c.Score)
		}
	}
	led.RecordPrediction(obs.CombinedLayer, res.now, d.Warned, d.Confidence)
	led.Advance(res.now)
}

// Stop shuts the pipeline down gracefully: reject new ingest, drain the
// queue through Apply, run a final evaluation, let the act stage finish,
// then release the workers. If ctx expires first, the pipeline is
// hard-stopped and ctx's error returned. Stop is idempotent.
func (r *Runtime) Stop(ctx context.Context) error {
	if !r.started.Load() {
		return fmt.Errorf("%w: not started", ErrRuntime)
	}
	r.stopOnce.Do(func() {
		r.stopping.Store(true)
		for _, q := range r.queues {
			q.close()
		}
		done := make(chan struct{})
		go func() {
			r.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			r.hardStop()
			<-done
			r.stopErr = ctx.Err()
		}
		r.hardStop()
		if r.pool != nil {
			r.pool.Close()
		}
		if r.cfg.Lifecycle != nil {
			r.cfg.Lifecycle.Wait() // let in-flight background retrains land
		}
		// The pipeline is quiesced (no Apply, no cycles): capture triggers
		// the final cycle raised and deliver undelivered bundles.
		r.cfg.Recorder.Flush()
		r.stopped.Store(true)
	})
	return r.stopErr
}

// Running reports whether the pipeline is started and not yet stopping.
func (r *Runtime) Running() bool { return r.started.Load() && !r.stopping.Load() }

// Uptime returns the wall-clock time since Start.
func (r *Runtime) Uptime() time.Duration {
	if !r.started.Load() {
		return 0
	}
	return time.Since(r.startWall)
}

// LastCycle returns when the act stage last completed a decision (zero
// time if no cycle has completed yet).
func (r *Runtime) LastCycle() time.Time {
	ns := r.lastCycle.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

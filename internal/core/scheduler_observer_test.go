package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/act"
	"repro/internal/sim"
)

// timedTarget records the simulation time of every state cleanup.
type timedTarget struct {
	scriptedTarget
	eng     *sim.Engine
	fireLog []float64
}

func (s *timedTarget) CleanupState() error {
	s.fireLog = append(s.fireLog, s.eng.Now())
	return s.scriptedTarget.CleanupState()
}

// TestActOnSchedulerDeadline covers the previously untested scheduler path
// of ActOn: with SetScheduler installed, a warning's action is not executed
// inline but handed to the low-utilization scheduler with deadline
// now + LeadTime, and under sustained high utilization it fires exactly at
// deadline − margin on the simulation clock.
func TestActOnSchedulerDeadline(t *testing.T) {
	se := sim.NewEngine()
	tgt := &timedTarget{eng: se}
	tgt.util = 0.99 // always busy: polls never admit the action early
	a, err := act.NewStateCleanup(tgt, act.Params{Cost: 0.5, SuccessProb: 0.9, Complexity: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	const (
		leadTime = 30.0
		margin   = 5.0
		nowEval  = 10.0
	)
	eng, err := New(nil, []*Layer{constLayer("app", 0.9)}, nil, testSelector(t),
		[]*act.Action{a}, nil, Config{EvalInterval: 10, LeadTime: leadTime, WarnThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := act.NewScheduler(se, tgt, 0.5, 1, margin)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetScheduler(sched)

	if err := se.Schedule(nowEval, func() {
		d := eng.ActOn(se.Now(), []float64{0.9})
		if !d.Warned || !d.Executed || d.ActionName != a.Name() {
			t.Errorf("scheduled decision = %+v, want warned+executed", d)
		}
		if len(tgt.fireLog) != 0 {
			t.Error("action executed inline despite the scheduler")
		}
	}); err != nil {
		t.Fatal(err)
	}
	se.Run(100)

	wantFire := nowEval + leadTime - margin // deadline now+Δtl, margin before it
	if len(tgt.fireLog) != 1 || tgt.fireLog[0] != wantFire {
		t.Fatalf("fire log = %v, want one execution at %g", tgt.fireLog, wantFire)
	}
	if eng.ActionsTaken() != 1 {
		t.Fatalf("ActionsTaken = %d, want 1", eng.ActionsTaken())
	}
}

// TestActOnSchedulerLowUtilization: with headroom available the scheduled
// action runs at the first poll, well before the deadline.
func TestActOnSchedulerLowUtilization(t *testing.T) {
	se := sim.NewEngine()
	tgt := &timedTarget{eng: se}
	tgt.util = 0.05
	a, err := act.NewStateCleanup(tgt, act.Params{Cost: 0.5, SuccessProb: 0.9, Complexity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(nil, []*Layer{constLayer("app", 0.9)}, nil, testSelector(t),
		[]*act.Action{a}, nil, Config{EvalInterval: 10, LeadTime: 30, WarnThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := act.NewScheduler(se, tgt, 0.5, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetScheduler(sched)
	if err := se.Schedule(2, func() { eng.ActOn(se.Now(), []float64{0.9}) }); err != nil {
		t.Fatal(err)
	}
	se.Run(100)
	if len(tgt.fireLog) != 1 || tgt.fireLog[0] != 2 {
		t.Fatalf("fire log = %v, want immediate execution at t=2", tgt.fireLog)
	}
}

// TestConcurrentSetCycleObserver swaps the cycle observer while ActOn
// cycles are in flight from several goroutines (run with -race): no
// observation may tear, and after the dust settles a freshly installed
// observer sees every subsequent round.
func TestConcurrentSetCycleObserver(t *testing.T) {
	eng, err := New(nil, []*Layer{constLayer("app", 0.9)}, nil, testSelector(t),
		testActions(t, &scriptedTarget{}), func(float64) bool { return true }, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	var observed atomic.Int64
	counting := func(now float64, scores []float64, d Decision) {
		_ = scores[0] // touch the borrowed slice while it is valid
		observed.Add(1)
	}

	const actors = 4
	var actWG, swapWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < actors; g++ {
		actWG.Add(1)
		go func(g int) {
			defer actWG.Done()
			for i := 0; i < 500; i++ {
				eng.ActOn(float64(g*1000+i), []float64{0.9})
			}
		}(g)
	}
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				eng.SetCycleObserver(counting)
			} else {
				eng.SetCycleObserver(nil)
			}
		}
	}()
	actWG.Wait()
	close(stop)
	swapWG.Wait()

	// Deterministic tail: a pinned observer must see every further round.
	eng.SetCycleObserver(counting)
	before := observed.Load()
	for i := 0; i < 10; i++ {
		eng.ActOn(float64(10000+i), []float64{0.9})
	}
	if got := observed.Load() - before; got != 10 {
		t.Fatalf("pinned observer saw %d of 10 rounds", got)
	}
}

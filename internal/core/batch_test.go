package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// batchStub is a BatchPredictor whose per-time score is a pure function of
// the time, so serial and batched evaluation must agree bit-for-bit. It
// counts kernel invocations to prove the batch path really is one call.
type batchStub struct {
	calls int
	err   error
}

func (p *batchStub) score(now float64) float64 { return math.Sin(3*now) + 0.25*now }

func (p *batchStub) Evaluate(now float64) (float64, error) {
	if p.err != nil {
		return 0, p.err
	}
	return p.score(now), nil
}

func (p *batchStub) EvaluateBatch(nows []float64, out []float64) error {
	p.calls++
	if p.err != nil {
		return p.err
	}
	for i, now := range nows {
		out[i] = p.score(now)
	}
	return nil
}

func batchTimes(n int) []float64 {
	nows := make([]float64, n)
	for i := range nows {
		nows[i] = 0.1 + 0.7*float64(i)
	}
	return nows
}

// TestScoreBatchKernelPath: a BatchPredictor layer scores the whole batch
// in one kernel call, bit-identical to a serial Score scan.
func TestScoreBatchKernelPath(t *testing.T) {
	stub := &batchStub{}
	l := &Layer{Name: "batched", Threshold: 0.5}
	l.SwapPredictor(stub)

	nows := batchTimes(17)
	want := make([]float64, len(nows))
	for i, now := range nows {
		s, err := l.Score(now)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}

	out := make([]float64, len(nows))
	l.ScoreBatch(nows, out)
	if stub.calls != 1 {
		t.Fatalf("kernel calls = %d, want 1", stub.calls)
	}
	for i := range out {
		if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
			t.Fatalf("out[%d] = %g, serial Score = %g — batch must be bit-identical", i, out[i], want[i])
		}
	}
	if got := l.EvalErrors(); got != 0 {
		t.Fatalf("EvalErrors = %d after clean runs, want 0", got)
	}
}

// TestScoreBatchKernelError: a failing batch kernel abstains the whole
// chunk and accounts one evaluation error per time — the same count a
// uniformly failing serial scan would produce.
func TestScoreBatchKernelError(t *testing.T) {
	stub := &batchStub{err: errors.New("window capture failed")}
	l := &Layer{Name: "failing", Threshold: 0.5}
	l.SwapPredictor(stub)

	nows := batchTimes(9)
	out := make([]float64, len(nows))
	for i := range out {
		out[i] = 42 // ensure every slot is overwritten
	}
	l.ScoreBatch(nows, out)
	for i, s := range out {
		if !math.IsNaN(s) {
			t.Fatalf("out[%d] = %g, want NaN abstention", i, s)
		}
	}
	if got := l.EvalErrors(); got != int64(len(nows)) {
		t.Fatalf("EvalErrors = %d, want %d (one per batched time)", got, len(nows))
	}
}

// erraticPredictor is a plain LayerPredictor (no batch kernel) that fails
// only at one specific time, exercising ScoreBatch's serial fallback.
type erraticPredictor struct{ failAt float64 }

func (p *erraticPredictor) Evaluate(now float64) (float64, error) {
	if now == p.failAt {
		return 0, errors.New("transient")
	}
	return 2 * now, nil
}

// TestScoreBatchSerialFallback: a non-batch predictor is scanned per time
// with accounting identical to Score — a single failing time abstains only
// its own slot and counts one error.
func TestScoreBatchSerialFallback(t *testing.T) {
	nows := batchTimes(8)
	l := &Layer{Name: "fallback", Threshold: 0.5}
	l.SwapPredictor(&erraticPredictor{failAt: nows[3]})

	out := make([]float64, len(nows))
	l.ScoreBatch(nows, out)
	for i, s := range out {
		if i == 3 {
			if !math.IsNaN(s) {
				t.Fatalf("out[3] = %g, want NaN for the failing time", s)
			}
			continue
		}
		if want := 2 * nows[i]; math.Float64bits(s) != math.Float64bits(want) {
			t.Fatalf("out[%d] = %g, want %g", i, s, want)
		}
	}
	if got := l.EvalErrors(); got != 1 {
		t.Fatalf("EvalErrors = %d, want 1 (only the failing time)", got)
	}
}

// TestEvaluateLayersBatchLayout pins the layer-major flat matrix contract:
// out[j*len(nows)+i] is layer j at nows[i], equal to what a serial
// EvaluateLayers sweep produces, and a mis-sized out panics.
func TestEvaluateLayersBatchLayout(t *testing.T) {
	layers := []*Layer{
		{Name: "kernel", Threshold: 0.5, Predictor: &batchStub{}},
		constLayer("flat", 0.4),
		{Name: "sometimes", Threshold: 0.5, Evaluate: func(now float64) (float64, error) {
			if now > 2 {
				return 0, errors.New("late failure")
			}
			return now / 10, nil
		}},
	}
	eng, err := New(nil, layers, nil, testSelector(t), testActions(t, &scriptedTarget{}), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}

	nows := batchTimes(5)
	out := make([]float64, len(layers)*len(nows))
	eng.EvaluateLayersBatch(nows, out)
	for i, now := range nows {
		row := eng.EvaluateLayers(now)
		for j := range layers {
			got, want := out[j*len(nows)+i], row[j]
			if math.Float64bits(got) != math.Float64bits(want) &&
				!(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("out[%d*%d+%d] = %g, EvaluateLayers(%g)[%d] = %g",
					j, len(nows), i, got, now, j, want)
			}
		}
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mis-sized out did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "EvaluateLayersBatch") {
			t.Fatalf("panic = %v, want an EvaluateLayersBatch size message", r)
		}
	}()
	eng.EvaluateLayersBatch(nows, out[:len(out)-1])
}

// Package core is the paper's primary contribution made executable: the
// Monitor–Evaluate–Act cycle (Fig. 1) wired across system layers per the
// architectural blueprint (Fig. 11).
//
// Each layer owns a failure predictor tailored to its data (hardware
// counters, VMM metrics, application error logs …). The Act stage spans all
// layers: per-layer scores are combined (optionally by a stacked
// meta-learner, Sect. 6), and a single cross-layer decision selects and
// schedules the countermeasure — preventing conflicting actions like a VM
// migration racing a hardware restart. Every prediction outcome is
// accounted against ground truth in the Table 1 matrix, and a control-loop
// oscillation guard (Sect. 2) bounds the action rate.
//
// # Locking contract
//
// Engine is safe for concurrent use: ActOn, Start, Stop, EvaluateNow and
// every accessor (Warnings, Outcomes, Report, …) serialize on an internal
// mutex, so the cross-layer decision, the oscillation guard, and the
// Table 1 accounting always observe a consistent state even when driven
// from multiple goroutines (e.g. by internal/runtime's act stage).
// Two things remain the caller's responsibility:
//
//   - Layer.Evaluate closures are invoked OUTSIDE the engine mutex — by
//     EvaluateLayers sequentially, or concurrently with each other by a
//     worker pool. They must be safe with respect to whatever state they
//     read (internal/runtime guards predictor state with an RWMutex).
//   - Action Execute closures and the truth oracle run INSIDE the mutex
//     (the act stage is deliberately serialized); they must not call back
//     into the engine.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/act"
	"repro/internal/predict"
	"repro/internal/sim"
)

// ErrCore is wrapped by all package errors.
var ErrCore = errors.New("core: invalid configuration")

// Layer is one level of the Fig. 11 architecture: a named predictor over
// that layer's monitoring data. The serving predictor lives behind an
// atomically swappable, versioned handle (see LayerPredictor): construct
// the layer with either an Evaluate closure (wrapped as the version-1
// predictor) or an explicit Predictor, then score through Score and replace
// through SwapPredictor.
type Layer struct {
	// Name identifies the layer ("hardware", "vmm", "os", "application").
	Name string
	// Evaluate returns the layer's failure-proneness score at time now.
	// It is wrapped into the initial predictor when Predictor is nil; set
	// at construction only — later changes are ignored once the handle is
	// installed (use SwapPredictor instead).
	Evaluate func(now float64) (float64, error)
	// Predictor is the initial serving predictor (takes precedence over
	// Evaluate). Set at construction only; replace via SwapPredictor.
	Predictor LayerPredictor
	// Threshold is the layer's decision boundary; the layer votes
	// "failure-prone" when score ≥ Threshold.
	Threshold float64

	// handle holds the serving (predictor, version) pair; swaps are a
	// single pointer exchange, so scoring is never blocked.
	handle atomic.Pointer[versionedPredictor]
	// evalErrors counts failed Score calls across predictor versions.
	evalErrors atomic.Int64
}

// Combiner fuses per-layer scores into a single probability-like
// confidence in [0,1]. meta.Stacker.Score satisfies this signature.
type Combiner func(layerScores []float64) (float64, error)

// Config parameterizes the MEA engine.
type Config struct {
	// EvalInterval is the period of the Evaluate step [s].
	EvalInterval float64
	// LeadTime Δtl is the anticipated time-to-failure of a warning [s].
	LeadTime float64
	// Confidence threshold above which a warning is raised.
	WarnThreshold float64
	// OscillationWindow and MaxActionsPerWindow bound the action rate
	// (control-loop stability guard). Zero window disables the guard.
	OscillationWindow   float64
	MaxActionsPerWindow int
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.EvalInterval <= 0 || math.IsNaN(c.EvalInterval) {
		return fmt.Errorf("%w: eval interval %g", ErrCore, c.EvalInterval)
	}
	if c.LeadTime < 0 {
		return fmt.Errorf("%w: lead time %g", ErrCore, c.LeadTime)
	}
	if c.WarnThreshold < 0 || c.WarnThreshold > 1 {
		return fmt.Errorf("%w: warn threshold %g", ErrCore, c.WarnThreshold)
	}
	if c.OscillationWindow < 0 || c.MaxActionsPerWindow < 0 {
		return fmt.Errorf("%w: oscillation guard window=%g max=%d",
			ErrCore, c.OscillationWindow, c.MaxActionsPerWindow)
	}
	return nil
}

// OutcomeMatrix is the Table 1 accounting: prediction outcome × action.
type OutcomeMatrix struct {
	// Counts[outcome][action name] — "none" for no action.
	Counts map[predict.Outcome]map[string]int
}

// add records one cycle.
func (m *OutcomeMatrix) add(o predict.Outcome, action string) {
	if m.Counts == nil {
		m.Counts = make(map[predict.Outcome]map[string]int)
	}
	if m.Counts[o] == nil {
		m.Counts[o] = make(map[string]int)
	}
	m.Counts[o][action]++
}

// Table returns the contingency table implied by the matrix.
func (m OutcomeMatrix) Table() predict.ContingencyTable {
	var c predict.ContingencyTable
	for o, byAction := range m.Counts {
		n := 0
		for _, k := range byAction {
			n += k
		}
		switch o {
		case predict.TruePositive:
			c.TP += n
		case predict.FalsePositive:
			c.FP += n
		case predict.TrueNegative:
			c.TN += n
		case predict.FalseNegative:
			c.FN += n
		}
	}
	return c
}

// Engine drives the MEA cycle on a simulation clock, or — constructed with
// a nil clock and driven through EvaluateLayers/ActOn — on any external
// clock (wall time in internal/runtime).
type Engine struct {
	cfg      Config
	sim      *sim.Engine
	layers   []*Layer
	combiner Combiner
	selector *act.Selector
	actions  []*act.Action
	// truth returns whether a failure is genuinely imminent within the
	// horizon (ground-truth oracle for outcome accounting).
	truth func(horizon float64) bool

	// combinerErrs counts Act rounds whose combiner failed (confidence
	// forced to 0) — surfaced as pfm_combiner_errors_total.
	combinerErrs atomic.Int64

	// mu guards all mutable state below (see the package locking contract).
	mu          sync.Mutex
	scheduler   *act.Scheduler
	warnings    []predict.Warning
	outcomes    OutcomeMatrix
	actionTimes []float64
	suppressed  int
	running     bool
	observer    CycleObserver
}

// SetScheduler routes selected actions through a low-utilization scheduler
// (Sect. 2: "its execution needs to be scheduled, e.g., at times of low
// system utilization") instead of executing them immediately. The warning's
// deadline (now + lead time) bounds the deferral. Call before Start.
func (e *Engine) SetScheduler(s *act.Scheduler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scheduler = s
}

// New assembles an engine. combiner may be nil (mean of layer votes);
// truth may be nil (outcome accounting disabled); simEngine may be nil for
// an externally clocked engine (Start is then unavailable — drive it with
// EvaluateLayers + ActOn instead).
func New(
	simEngine *sim.Engine,
	layers []*Layer,
	combiner Combiner,
	selector *act.Selector,
	actions []*act.Action,
	truth func(horizon float64) bool,
	cfg Config,
) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("%w: at least one layer required", ErrCore)
	}
	for i, l := range layers {
		if l == nil || l.Name == "" || (l.Evaluate == nil && l.Predictor == nil) {
			return nil, fmt.Errorf("%w: layer %d must have a name and a predictor", ErrCore, i)
		}
		l.current() // install the version-1 predictor eagerly
	}
	if selector == nil {
		return nil, fmt.Errorf("%w: nil selector", ErrCore)
	}
	if len(actions) == 0 {
		return nil, fmt.Errorf("%w: at least one action required", ErrCore)
	}
	return &Engine{
		cfg:      cfg,
		sim:      simEngine,
		layers:   layers,
		combiner: combiner,
		selector: selector,
		actions:  actions,
		truth:    truth,
	}, nil
}

// Start arms the recurring MEA cycle; it keeps running until Stop. It
// requires a simulation clock (New with a non-nil sim engine).
func (e *Engine) Start() error {
	if e.sim == nil {
		return fmt.Errorf("%w: no simulation clock (externally clocked engine)", ErrCore)
	}
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return fmt.Errorf("%w: already running", ErrCore)
	}
	e.running = true
	e.mu.Unlock()
	return e.sim.Every(e.cfg.EvalInterval, func() bool {
		e.mu.Lock()
		running := e.running
		e.mu.Unlock()
		if !running {
			return false
		}
		e.cycle()
		return true
	})
}

// Stop halts the cycle at the next tick.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.running = false
}

// EvaluateNow performs one MEA round immediately, outside the periodic
// schedule — the hook for event-driven evaluation (e.g. on every new error
// report rather than on a timer; Sect. 3.1 notes that detected-error
// prediction is inherently event-driven). No-op on an externally clocked
// engine (use EvaluateLayers + ActOn there).
func (e *Engine) EvaluateNow() {
	if e.sim == nil {
		return
	}
	e.cycle()
}

// cycle performs one Monitor–Evaluate–Act round on the simulation clock.
func (e *Engine) cycle() {
	now := e.sim.Now()
	e.ActOn(now, e.EvaluateLayers(now))
}

// Layers returns the engine's layers (copy of the slice; the *Layer values
// are shared and must not be mutated after New).
func (e *Engine) Layers() []*Layer {
	return append([]*Layer(nil), e.layers...)
}

// EvaluateLayers runs every layer predictor sequentially at time now —
// through each layer's versioned handle — and returns the per-layer
// scores. A failing layer abstains, marked NaN (and counted on the layer's
// EvalErrors) — ActOn treats NaN as "no evidence either way". The engine
// mutex is NOT held: callers may instead score the layers themselves (e.g.
// in a worker pool) and feed the result to ActOn.
func (e *Engine) EvaluateLayers(now float64) []float64 {
	scores := make([]float64, len(e.layers))
	for i, l := range e.layers {
		s, err := l.Score(now)
		if err != nil {
			scores[i] = math.NaN()
			continue
		}
		scores[i] = s
	}
	return scores
}

// EvaluateLayersBatch scores every layer at each time in nows into the
// layer-major flat score matrix out: out[j*len(nows)+i] is layer j at
// nows[i], so each layer's whole batch is one contiguous segment a batch
// kernel writes in place (no per-layer scratch). len(out) must be
// len(Layers())*len(nows) — anything else panics, like a mis-sized copy.
// Like EvaluateLayers the engine mutex is NOT held; each layer loads its
// versioned predictor handle once per batch (ScoreBatch), and scores are
// bit-identical to len(nows) EvaluateLayers calls. Feed each time's row
// (the i-strided column of out) to ActOn.
func (e *Engine) EvaluateLayersBatch(nows []float64, out []float64) {
	if len(out) != len(e.layers)*len(nows) {
		panic(fmt.Sprintf("core: EvaluateLayersBatch out has len %d, want %d layers x %d times",
			len(out), len(e.layers), len(nows)))
	}
	for j, l := range e.layers {
		l.ScoreBatch(nows, out[j*len(nows):(j+1)*len(nows)])
	}
}

// CycleObserver receives every completed Act round: the evaluation time,
// the raw per-layer scores (indexed like the engine's layers, NaN for
// abstaining layers), and the cross-layer decision. It is invoked OUTSIDE
// the engine mutex, after the decision is committed — with concurrent ActOn
// callers, observations may therefore arrive out of order. The scores slice
// is borrowed from the caller; observers must not retain it.
type CycleObserver func(now float64, scores []float64, d Decision)

// SetCycleObserver installs the observer (nil disables). This is the hook
// the observability layer uses to journal per-layer predictions into the
// quality ledger without core depending on it.
func (e *Engine) SetCycleObserver(fn CycleObserver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observer = fn
}

// Decision is the outcome of one Act round.
type Decision struct {
	Time       float64 // evaluation time
	Confidence float64 // combined cross-layer confidence in [0,1]
	Warned     bool    // a failure warning was raised
	ActionName string  // executed/scheduled action, "none" otherwise
	Executed   bool    // an action was executed or scheduled
	Suppressed bool    // the oscillation guard vetoed the action
	// CombinerErr reports that the combiner failed on this round and the
	// confidence was forced to 0 (counted on Engine.CombinerErrors).
	CombinerErr bool
	// LayerVersions is each layer's serving predictor version at decision
	// time, indexed like the engine's layers. With a concurrent hot-swap
	// the scores may have been produced by the version just replaced; the
	// versions recorded here are the ones the decision was committed
	// against.
	LayerVersions []uint64
}

// ActOn performs the serialized cross-layer Act stage on externally
// produced layer scores: combine, warn, select the countermeasure, apply
// the oscillation guard, and account the outcome. scores must be indexed
// like the engine's layers; NaN marks an abstaining layer. It is the
// single point of cross-layer decision making — concurrent callers are
// serialized on the engine mutex, preserving the one-decision-at-a-time
// semantics of the simulation-clocked cycle.
func (e *Engine) ActOn(now float64, scores []float64) Decision {
	d, pending := e.DecideOn(now, scores)
	if pending != nil {
		pending.Commit(&d)
	}
	e.mu.Lock()
	observer := e.observer
	e.mu.Unlock()
	if observer != nil {
		observer(now, scores, d)
	}
	return d
}

// PendingAct is a warn decision's selected-but-not-yet-executed
// countermeasure, returned by DecideOn so a coordinator (e.g. the fleet's
// criticality-weighted act budget) can order executions across engines
// before committing them. Exactly one of Commit or Drop must be called;
// both are idempotent after the first resolution.
type PendingAct struct {
	e        *Engine
	action   *act.Action
	now      float64
	imminent bool
	resolved bool
}

// Action returns the selected countermeasure's name.
func (p *PendingAct) Action() string { return p.action.Name() }

// Commit executes (or schedules) the pending countermeasure and records it
// against the oscillation guard, updating d's ActionName/Executed — the
// second half of what ActOn does inline.
func (p *PendingAct) Commit(d *Decision) {
	e := p.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if p.resolved {
		return
	}
	p.resolved = true
	e.actionTimes = append(e.actionTimes, p.now)
	if e.scheduler != nil {
		if schedErr := e.scheduler.Schedule(p.action, p.now+e.cfg.LeadTime, nil); schedErr == nil {
			d.ActionName = p.action.Name()
			d.Executed = true
		}
	} else if execErr := p.action.Execute(); execErr == nil {
		d.ActionName = p.action.Name()
		d.Executed = true
	}
	if e.truth != nil {
		e.outcomes.add(predict.Classify(true, p.imminent), d.ActionName)
	}
}

// Drop releases the pending countermeasure without executing it (a budget
// denial). The oscillation guard does not count it — nothing ran — and the
// outcome matrix books the warning with no action.
func (p *PendingAct) Drop(d *Decision) {
	e := p.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if p.resolved {
		return
	}
	p.resolved = true
	if e.truth != nil {
		e.outcomes.add(predict.Classify(true, p.imminent), d.ActionName)
	}
}

// DecideOn is ActOn with the execution deferred: it combines, warns, selects
// the countermeasure and applies the oscillation guard, but when the guard
// admits an action it returns it as a PendingAct instead of executing. The
// caller resolves the pending act with Commit or Drop (the returned Decision
// reports Executed only after Commit). Unlike ActOn it never invokes the
// cycle observer — a deferred decision has no single commit point the
// observer could meaningfully see. Decide/commit pairs on one engine must
// not interleave with other decisions on the same engine.
func (e *Engine) DecideOn(now float64, scores []float64) (Decision, *PendingAct) {
	// Combine outside observable state: abstaining layers contribute their
	// threshold (neutral) to the combiner input and no vote.
	input := make([]float64, len(e.layers))
	votes := 0
	usable := 0
	for i, l := range e.layers {
		s := math.NaN()
		if i < len(scores) {
			s = scores[i]
		}
		if math.IsNaN(s) {
			input[i] = l.Threshold // neutral
			continue
		}
		input[i] = s
		usable++
		if s >= l.Threshold {
			votes++
		}
	}
	confidence := 0.0
	combinerErr := false
	if e.combiner != nil {
		c, err := e.combiner(input)
		if err == nil {
			confidence = clamp01(c)
		} else {
			combinerErr = true
			e.combinerErrs.Add(1)
		}
	} else if usable > 0 {
		confidence = float64(votes) / float64(len(e.layers))
	}
	versions := make([]uint64, len(e.layers))
	for i, l := range e.layers {
		versions[i] = l.Version()
	}

	positive := confidence >= e.cfg.WarnThreshold
	imminent := false
	if e.truth != nil {
		imminent = e.truth(e.cfg.LeadTime + e.cfg.EvalInterval)
	}

	e.mu.Lock()
	d := Decision{
		Time: now, Confidence: confidence, ActionName: "none",
		CombinerErr: combinerErr, LayerVersions: versions,
	}
	var pending *PendingAct
	if positive {
		d.Warned = true
		e.warnings = append(e.warnings, predict.Warning{
			Time:       now,
			LeadTime:   e.cfg.LeadTime,
			Confidence: confidence,
			Source:     "mea",
		})
		// Act: select the countermeasure; the oscillation guard may veto.
		action, _, worth, err := e.selector.Select(e.actions, confidence)
		if err == nil && worth {
			if e.guardAllows(now) {
				pending = &PendingAct{e: e, action: action, now: now, imminent: imminent}
			} else {
				e.suppressed++
				d.Suppressed = true
			}
		}
	}
	// With a pending act the outcome row is booked at Commit/Drop time,
	// once the final ActionName is known.
	if e.truth != nil && pending == nil {
		e.outcomes.add(predict.Classify(positive, imminent), d.ActionName)
	}
	e.mu.Unlock()
	return d, pending
}

// guardAllows applies the oscillation guard.
func (e *Engine) guardAllows(now float64) bool {
	if e.cfg.OscillationWindow <= 0 {
		return true
	}
	recent := 0
	for i := len(e.actionTimes) - 1; i >= 0; i-- {
		if now-e.actionTimes[i] > e.cfg.OscillationWindow {
			break
		}
		recent++
	}
	return recent < e.cfg.MaxActionsPerWindow
}

// Warnings returns all raised failure warnings.
func (e *Engine) Warnings() []predict.Warning {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]predict.Warning(nil), e.warnings...)
}

// Outcomes returns a snapshot of the Table 1 accounting matrix.
func (e *Engine) Outcomes() OutcomeMatrix {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := OutcomeMatrix{}
	for o, byAction := range e.outcomes.Counts {
		for a, n := range byAction {
			if snap.Counts == nil {
				snap.Counts = make(map[predict.Outcome]map[string]int)
			}
			if snap.Counts[o] == nil {
				snap.Counts[o] = make(map[string]int)
			}
			snap.Counts[o][a] = n
		}
	}
	return snap
}

// CombinerErrors returns how many Act rounds failed in the combiner (the
// confidence was silently forced to 0 before this counter existed).
func (e *Engine) CombinerErrors() int64 { return e.combinerErrs.Load() }

// SuppressedActions returns how many actions the oscillation guard vetoed.
func (e *Engine) SuppressedActions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.suppressed
}

// ActionsTaken returns how many actions were executed.
func (e *Engine) ActionsTaken() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.actionTimes)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

package core

import "math"

// LayerPredictor is a layer's failure predictor as a first-class value with
// a lifecycle, replacing the bare Evaluate closure: the serving predictor
// lives behind the layer's atomically swappable, versioned handle, so a
// drifted predictor can be retrained and replaced without stopping the MEA
// pipeline (Sect. 6: online change point detection "can be used to
// determine whether the parameters have to be re-adjusted").
type LayerPredictor interface {
	// Evaluate returns the layer's failure-proneness score at time now.
	// It is invoked outside the engine mutex, under whatever exclusion
	// the caller provides (see the package locking contract).
	Evaluate(now float64) (float64, error)
}

// PredictorFunc adapts a bare evaluate closure to LayerPredictor.
type PredictorFunc func(now float64) (float64, error)

// Evaluate implements LayerPredictor.
func (f PredictorFunc) Evaluate(now float64) (float64, error) { return f(now) }

// BatchPredictor is the optional batched-evaluation capability of a
// LayerPredictor: one call scores a whole slice of times, letting
// table-driven predictors amortize feature extraction and score through
// the allocation-free batch kernels (hsmm.Classifier.ScoreAllInto,
// ubf.Network.PredictRowsInto) on the online path. The contract is
// strict: a successful EvaluateBatch(nows, out) must write bit-identical
// scores to len(nows) successive Evaluate calls — that is what keeps
// batch boundaries observationally invisible. On error the whole batch
// abstains (see Layer.ScoreBatch for the accounting).
type BatchPredictor interface {
	LayerPredictor
	// EvaluateBatch scores the layer at every time in nows into
	// out[:len(nows)].
	EvaluateBatch(nows []float64, out []float64) error
}

// Retrainer is the optional retraining capability of a LayerPredictor. The
// two phases split along the runtime's locking contract:
//
//   - CaptureWindow runs under the same exclusion as Evaluate (no ingest
//     Apply concurrent with it) and must copy everything retraining needs —
//     it is the only chance to read predictor-visible state safely.
//   - Retrain runs OFF the hot path (a background goroutine) on the
//     captured window only; it must not touch live predictor state. It
//     returns a fresh candidate, leaving the receiver serving unchanged.
//
// Retraining must preserve the repo's determinism contract: a given
// predictor generation retrains bit-identically for a given window at any
// GOMAXPROCS (derive the training seed from the base seed and generation,
// never from wall time).
type Retrainer interface {
	CaptureWindow(now float64) (window any, err error)
	Retrain(window any) (LayerPredictor, error)
}

// Snapshotter is the optional parameter-snapshot capability of a
// LayerPredictor: a serialized copy of the model parameters (for the
// /layers endpoint, audit logs, or warm restarts).
type Snapshotter interface {
	Snapshot() ([]byte, error)
}

// versionedPredictor is one immutable (predictor, version) pair behind a
// layer's handle. Swaps replace the whole pair, so readers always observe a
// consistent predictor/version combination.
type versionedPredictor struct {
	p       LayerPredictor
	version uint64
}

// current returns the layer's serving (predictor, version) pair, installing
// version 1 from the Predictor/Evaluate fields on first use. Lock-free and
// safe for concurrent use.
func (l *Layer) current() *versionedPredictor {
	if vp := l.handle.Load(); vp != nil {
		return vp
	}
	p := l.Predictor
	if p == nil && l.Evaluate != nil {
		p = PredictorFunc(l.Evaluate)
	}
	if p == nil {
		p = PredictorFunc(func(float64) (float64, error) {
			return 0, ErrCore
		})
	}
	vp := &versionedPredictor{p: p, version: 1}
	if l.handle.CompareAndSwap(nil, vp) {
		return vp
	}
	return l.handle.Load()
}

// Score evaluates the layer through its versioned handle — the one
// evaluation path used by the engine, the runtime's worker pool, and any
// external scorer. Evaluation failures are counted (EvalErrors) before
// being returned; callers translate them into an abstention (NaN score).
func (l *Layer) Score(now float64) (float64, error) {
	s, err := l.current().p.Evaluate(now)
	if err != nil {
		l.evalErrors.Add(1)
		return 0, err
	}
	return s, nil
}

// ScoreBatch evaluates the layer at every time in nows into out[i]
// (NaN = abstain), loading the versioned predictor handle once for the
// whole batch — every score in a batch comes from one predictor version,
// exactly as a serial scan that raced no swap would produce. A predictor
// implementing BatchPredictor scores the batch in one kernel call; a
// batch failure abstains every time in the batch and counts len(nows)
// evaluation errors, the accounting of a uniformly failing serial scan.
// Other predictors fall back to a per-time scan with accounting identical
// to Score.
func (l *Layer) ScoreBatch(nows []float64, out []float64) {
	out = out[:len(nows)]
	vp := l.current()
	if bp, ok := vp.p.(BatchPredictor); ok {
		if err := bp.EvaluateBatch(nows, out); err != nil {
			l.evalErrors.Add(int64(len(nows)))
			for i := range out {
				out[i] = math.NaN()
			}
		}
		return
	}
	for i, now := range nows {
		s, err := vp.p.Evaluate(now)
		if err != nil {
			l.evalErrors.Add(1)
			s = math.NaN()
		}
		out[i] = s
	}
}

// Current returns the serving predictor and its version.
func (l *Layer) Current() (LayerPredictor, uint64) {
	vp := l.current()
	return vp.p, vp.version
}

// Version returns the serving predictor's version (1 for the initial
// predictor; each swap bumps it by one, including rollbacks).
func (l *Layer) Version() uint64 { return l.current().version }

// SwapPredictor atomically replaces the serving predictor and bumps the
// version. The swap is a single pointer exchange: in-flight Evaluate calls
// finish on the predictor they loaded, new calls score through the
// replacement — no evaluation cycle is ever blocked. It returns the
// previous predictor (retained by lifecycle managers for rollback) and the
// new version.
func (l *Layer) SwapPredictor(p LayerPredictor) (prev LayerPredictor, version uint64) {
	for {
		cur := l.current()
		next := &versionedPredictor{p: p, version: cur.version + 1}
		if l.handle.CompareAndSwap(cur, next) {
			return cur.p, next.version
		}
	}
}

// EvalErrors returns how many Score calls failed over the layer's lifetime
// (across all predictor versions) — the counter behind the runtime's
// pfm_layer_eval_errors_total metric.
func (l *Layer) EvalErrors() int64 { return l.evalErrors.Load() }

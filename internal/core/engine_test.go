package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/act"
	"repro/internal/predict"
	"repro/internal/sim"
)

// scriptedTarget counts countermeasure executions.
type scriptedTarget struct {
	cleanups int
	util     float64
}

func (s *scriptedTarget) CleanupState() error       { s.cleanups++; return nil }
func (s *scriptedTarget) Failover() error           { return nil }
func (s *scriptedTarget) ShedLoad(float64) error    { return nil }
func (s *scriptedTarget) PrepareRepair() error      { return nil }
func (s *scriptedTarget) Restart() (float64, error) { return 0, nil }
func (s *scriptedTarget) Utilization() float64      { return s.util }

func testActions(t *testing.T, target act.Target) []*act.Action {
	t.Helper()
	a, err := act.NewStateCleanup(target, act.Params{Cost: 0.5, SuccessProb: 0.9, Complexity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return []*act.Action{a}
}

func testSelector(t *testing.T) *act.Selector {
	t.Helper()
	s, err := act.NewSelector(act.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// constLayer always returns the given score with threshold 0.5.
func constLayer(name string, score float64) *Layer {
	return &Layer{
		Name:      name,
		Evaluate:  func(float64) (float64, error) { return score, nil },
		Threshold: 0.5,
	}
}

func defaultCfg() Config {
	return Config{EvalInterval: 10, LeadTime: 30, WarnThreshold: 0.5}
}

func TestValidation(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	layers := []*Layer{constLayer("app", 1)}
	sel := testSelector(t)
	acts := testActions(t, tgt)
	cases := []struct {
		name string
		f    func() (*Engine, error)
	}{
		{"no layers", func() (*Engine, error) {
			return New(se, nil, nil, sel, acts, nil, defaultCfg())
		}},
		{"anonymous layer", func() (*Engine, error) {
			return New(se, []*Layer{{Evaluate: func(float64) (float64, error) { return 0, nil }}}, nil, sel, acts, nil, defaultCfg())
		}},
		{"nil selector", func() (*Engine, error) {
			return New(se, layers, nil, nil, acts, nil, defaultCfg())
		}},
		{"no actions", func() (*Engine, error) {
			return New(se, layers, nil, sel, nil, nil, defaultCfg())
		}},
		{"bad interval", func() (*Engine, error) {
			cfg := defaultCfg()
			cfg.EvalInterval = 0
			return New(se, layers, nil, sel, acts, nil, cfg)
		}},
		{"bad threshold", func() (*Engine, error) {
			cfg := defaultCfg()
			cfg.WarnThreshold = 2
			return New(se, layers, nil, sel, acts, nil, cfg)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.f(); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestWarningTriggersAction(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	eng, err := New(se,
		[]*Layer{constLayer("app", 0.9)},
		nil, testSelector(t), testActions(t, tgt),
		func(float64) bool { return true },
		defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(100)
	if len(eng.Warnings()) != 10 {
		t.Fatalf("warnings = %d", len(eng.Warnings()))
	}
	if tgt.cleanups != 10 {
		t.Fatalf("cleanups = %d", tgt.cleanups)
	}
	table := eng.Outcomes().Table()
	if table.TP != 10 || table.FP+table.TN+table.FN != 0 {
		t.Fatalf("outcomes = %v", table)
	}
}

func TestNegativePredictionDoesNothing(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	eng, err := New(se,
		[]*Layer{constLayer("app", 0.1)},
		nil, testSelector(t), testActions(t, tgt),
		func(float64) bool { return false },
		defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(100)
	if len(eng.Warnings()) != 0 || tgt.cleanups != 0 {
		t.Fatalf("negative prediction acted: warnings=%d cleanups=%d",
			len(eng.Warnings()), tgt.cleanups)
	}
	if eng.Outcomes().Table().TN != 10 {
		t.Fatalf("outcomes = %v", eng.Outcomes().Table())
	}
}

func TestTable1AllFourOutcomes(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	// The layer alternates positive/negative; the truth alternates at half
	// the rate, producing all four outcomes.
	i := 0
	layer := &Layer{
		Name: "app",
		Evaluate: func(float64) (float64, error) {
			i++
			if i%2 == 0 {
				return 1, nil
			}
			return 0, nil
		},
		Threshold: 0.5,
	}
	j := 0
	truth := func(float64) bool {
		j++
		return (j/2)%2 == 0
	}
	eng, err := New(se, []*Layer{layer}, nil, testSelector(t), testActions(t, tgt), truth, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(400)
	table := eng.Outcomes().Table()
	if table.TP == 0 || table.FP == 0 || table.TN == 0 || table.FN == 0 {
		t.Fatalf("missing outcomes: %v", table)
	}
	// Per Table 1: actions only on positive predictions.
	for _, o := range []predict.Outcome{predict.TrueNegative, predict.FalseNegative} {
		for action, n := range eng.Outcomes().Counts[o] {
			if action != "none" && n > 0 {
				t.Fatalf("action %q taken on %v", action, o)
			}
		}
	}
}

func TestLayerVoting(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	layers := []*Layer{
		constLayer("hw", 0.9),
		constLayer("vmm", 0.1),
		constLayer("app", 0.9),
	}
	cfg := defaultCfg()
	cfg.WarnThreshold = 0.6 // 2 of 3 votes
	eng, err := New(se, layers, nil, testSelector(t), testActions(t, tgt), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(50)
	if len(eng.Warnings()) != 5 {
		t.Fatalf("2/3 votes should warn: %d", len(eng.Warnings()))
	}
	if w := eng.Warnings()[0]; w.Confidence < 0.66 || w.Confidence > 0.67 {
		t.Fatalf("confidence = %g", w.Confidence)
	}
}

func TestFailingLayerAbstains(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	layers := []*Layer{
		{Name: "broken", Evaluate: func(float64) (float64, error) {
			return 0, errors.New("sensor offline")
		}, Threshold: 0.5},
		constLayer("app", 0.9),
	}
	cfg := defaultCfg()
	cfg.WarnThreshold = 0.5
	eng, err := New(se, layers, nil, testSelector(t), testActions(t, tgt), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(20)
	// One of two layers votes: confidence 0.5 ≥ threshold → warning.
	if len(eng.Warnings()) != 2 {
		t.Fatalf("warnings with abstaining layer = %d", len(eng.Warnings()))
	}
}

func TestCustomCombiner(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	combined := func(scores []float64) (float64, error) {
		// A stacker that trusts only the second layer.
		return scores[1], nil
	}
	layers := []*Layer{constLayer("noisy", 1), constLayer("trusted", 0.2)}
	eng, err := New(se, layers, combined, testSelector(t), testActions(t, tgt), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(50)
	if len(eng.Warnings()) != 0 {
		t.Fatal("combiner override ignored")
	}
}

// TestOscillationGuard is the library-level E12 experiment: a flapping
// predictor would fire an action every cycle; the guard bounds the rate.
func TestOscillationGuard(t *testing.T) {
	run := func(window float64, maxActions int) (*Engine, *scriptedTarget) {
		se := sim.NewEngine()
		tgt := &scriptedTarget{}
		cfg := defaultCfg()
		cfg.OscillationWindow = window
		cfg.MaxActionsPerWindow = maxActions
		eng, err := New(se, []*Layer{constLayer("flappy", 0.9)}, nil,
			testSelector(t), testActions(t, tgt), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		se.Run(1000)
		return eng, tgt
	}
	unguarded, utgt := run(0, 0)
	if utgt.cleanups != 100 {
		t.Fatalf("unguarded actions = %d", utgt.cleanups)
	}
	guarded, gtgt := run(100, 2)
	if gtgt.cleanups >= utgt.cleanups/2 {
		t.Fatalf("guard ineffective: %d vs %d", gtgt.cleanups, utgt.cleanups)
	}
	if guarded.SuppressedActions() == 0 {
		t.Fatal("no suppressions recorded")
	}
	if guarded.ActionsTaken()+guarded.SuppressedActions() != unguarded.ActionsTaken() {
		t.Fatalf("actions %d + suppressed %d ≠ %d",
			guarded.ActionsTaken(), guarded.SuppressedActions(), unguarded.ActionsTaken())
	}
}

func TestStartStop(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	eng, err := New(se, []*Layer{constLayer("app", 0.9)}, nil,
		testSelector(t), testActions(t, tgt), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	se.Run(30)
	eng.Stop()
	se.Run(100)
	if len(eng.Warnings()) != 3 {
		t.Fatalf("warnings after stop = %d", len(eng.Warnings()))
	}
}

func TestTranslucencyReport(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	eng, err := New(se, []*Layer{constLayer("hw", 0.9), constLayer("app", 0.9)}, nil,
		testSelector(t), testActions(t, tgt),
		func(float64) bool { return true }, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(50)
	r := eng.Report()
	if len(r.Layers) != 2 || r.Warnings != 5 || r.Actions != 5 {
		t.Fatalf("report = %+v", r)
	}
	text := r.String()
	for _, want := range []string{"hw", "app", "warnings: 5", "TP", "state-cleanup"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
}

func TestEvaluateNowEventDriven(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{}
	eng, err := New(se, []*Layer{constLayer("app", 0.9)}, nil,
		testSelector(t), testActions(t, tgt),
		func(float64) bool { return true }, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	// No Start: evaluation is driven purely by external events.
	for i := 0; i < 3; i++ {
		if err := se.Schedule(float64(i+1), eng.EvaluateNow); err != nil {
			t.Fatal(err)
		}
	}
	se.Run(10)
	if len(eng.Warnings()) != 3 {
		t.Fatalf("event-driven warnings = %d", len(eng.Warnings()))
	}
	if tgt.cleanups != 3 {
		t.Fatalf("event-driven actions = %d", tgt.cleanups)
	}
	// Mixing with the periodic schedule also works.
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	se.Run(30) // periodic ticks at 20, 30
	if len(eng.Warnings()) != 5 {
		t.Fatalf("mixed-mode warnings = %d", len(eng.Warnings()))
	}
}

func TestSchedulerDefersActionToLowUtilization(t *testing.T) {
	se := sim.NewEngine()
	tgt := &scriptedTarget{util: 0.95} // busy at warning time
	eng, err := New(se, []*Layer{constLayer("app", 0.9)}, nil,
		testSelector(t), testActions(t, tgt), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := act.NewScheduler(se, tgt, 0.5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetScheduler(sched)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// First evaluation at t=10 warns but the system is busy; load drops
	// at t=14, so the poll at ~t=14-16 executes the deferred action well
	// before the t=40 deadline.
	_ = se.Schedule(14, func() { tgt.util = 0.1 })
	se.Run(16)
	if tgt.cleanups == 0 {
		t.Fatal("deferred action never executed after load dropped")
	}
	if len(eng.Warnings()) == 0 {
		t.Fatal("no warnings")
	}
}

// TestExternallyClockedEngine drives an engine without a simulation clock
// through EvaluateLayers + ActOn, the path internal/runtime uses.
func TestExternallyClockedEngine(t *testing.T) {
	tgt := &scriptedTarget{}
	eng, err := New(nil, []*Layer{constLayer("app", 0.9)}, nil,
		testSelector(t), testActions(t, tgt), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err == nil {
		t.Fatal("Start accepted without a simulation clock")
	}
	d := eng.ActOn(10, eng.EvaluateLayers(10))
	if !d.Warned || !d.Executed {
		t.Fatalf("decision %+v: expected warning + action", d)
	}
	if tgt.cleanups == 0 {
		t.Fatal("action not executed")
	}
	if got := len(eng.Warnings()); got != 1 {
		t.Fatalf("warnings = %d, want 1", got)
	}
}

// TestActOnAbstainingLayer checks that NaN scores abstain exactly like a
// failing Evaluate in the simulation-clocked cycle: neutral combiner
// input, no vote.
func TestActOnAbstainingLayer(t *testing.T) {
	tgt := &scriptedTarget{}
	broken := &Layer{
		Name:      "broken",
		Evaluate:  func(float64) (float64, error) { return 0, errors.New("down") },
		Threshold: 0.5,
	}
	eng, err := New(nil, []*Layer{constLayer("app", 0.9), broken}, nil,
		testSelector(t), testActions(t, tgt), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	scores := eng.EvaluateLayers(0)
	if !math.IsNaN(scores[1]) {
		t.Fatalf("broken layer score = %g, want NaN", scores[1])
	}
	// One vote out of two layers = 0.5 ≥ default WarnThreshold.
	if d := eng.ActOn(0, scores); !d.Warned {
		t.Fatalf("decision %+v: expected warning despite abstaining layer", d)
	}
}

// TestEngineConcurrentActOn hammers the serialized act stage and the
// accessors from many goroutines; run with -race to validate the locking
// contract.
func TestEngineConcurrentActOn(t *testing.T) {
	tgt := &scriptedTarget{}
	cfg := defaultCfg()
	cfg.OscillationWindow = 1e9 // everything within one window
	cfg.MaxActionsPerWindow = 50
	eng, err := New(nil, []*Layer{constLayer("app", 0.9)}, nil,
		testSelector(t), testActions(t, tgt),
		func(float64) bool { return true }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				eng.ActOn(float64(g*rounds+i), []float64{0.9})
				_ = eng.ActionsTaken()
				_ = eng.Report()
			}
		}(g)
	}
	wg.Wait()
	warned := len(eng.Warnings())
	if warned != goroutines*rounds {
		t.Fatalf("warnings = %d, want %d", warned, goroutines*rounds)
	}
	if got := eng.ActionsTaken() + eng.SuppressedActions(); got != warned {
		t.Fatalf("taken+suppressed = %d, want %d", got, warned)
	}
	if eng.SuppressedActions() == 0 {
		t.Fatal("oscillation guard never engaged under concurrency")
	}
	if n := eng.Outcomes().Table().TP; n != warned {
		t.Fatalf("TP = %d, want %d", n, warned)
	}
}

// TestCycleObserver verifies that every Act round reaches the installed
// observer with the raw scores and the committed decision, and that a nil
// observer disables the hook.
func TestCycleObserver(t *testing.T) {
	tgt := &scriptedTarget{}
	eng, err := New(nil, []*Layer{constLayer("app", 0.9), constLayer("os", 0.1)}, nil,
		testSelector(t), testActions(t, tgt),
		func(float64) bool { return true }, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	type obs struct {
		now    float64
		scores []float64
		d      Decision
	}
	var mu sync.Mutex
	var seen []obs
	eng.SetCycleObserver(func(now float64, scores []float64, d Decision) {
		mu.Lock()
		seen = append(seen, obs{now, append([]float64(nil), scores...), d})
		mu.Unlock()
	})

	d1 := eng.ActOn(5, []float64{0.9, 0.1})
	d2 := eng.ActOn(6, []float64{0.1, math.NaN()})
	if len(seen) != 2 {
		t.Fatalf("observer saw %d rounds, want 2", len(seen))
	}
	if seen[0].now != 5 || !reflect.DeepEqual(seen[0].d, d1) || !seen[0].d.Warned {
		t.Fatalf("first observation = %+v, decision %+v", seen[0], d1)
	}
	if seen[0].scores[0] != 0.9 || seen[0].scores[1] != 0.1 {
		t.Fatalf("observer scores = %v", seen[0].scores)
	}
	if !reflect.DeepEqual(seen[1].d, d2) || seen[1].d.Warned || !math.IsNaN(seen[1].scores[1]) {
		t.Fatalf("second observation = %+v", seen[1])
	}

	eng.SetCycleObserver(nil)
	eng.ActOn(7, []float64{0.9, 0.9})
	if len(seen) != 2 {
		t.Fatalf("nil observer still invoked (%d observations)", len(seen))
	}
}

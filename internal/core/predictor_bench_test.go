package core

import (
	"sync"
	"testing"
)

// BenchmarkLayerSwap measures a hot-swap against a layer whose handle is
// being scored concurrently — the zero-downtime claim in numbers: the CAS
// loop must stay nanosecond-scale and allocation-light no matter how hard
// the read side hammers the handle.
func BenchmarkLayerSwap(b *testing.B) {
	layer := &Layer{
		Name:      "bench",
		Predictor: PredictorFunc(func(float64) (float64, error) { return 0.5, nil }),
		Threshold: 0.5,
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = layer.Score(float64(i))
		}
	}()
	replacement := PredictorFunc(func(float64) (float64, error) { return 0.7, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.SwapPredictor(replacement)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkLayerScore pins the versioned handle's read-side overhead: one
// atomic load per evaluation, no allocation.
func BenchmarkLayerScore(b *testing.B) {
	layer := &Layer{
		Name:      "bench",
		Predictor: PredictorFunc(func(float64) (float64, error) { return 0.5, nil }),
		Threshold: 0.5,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = layer.Score(float64(i))
	}
}

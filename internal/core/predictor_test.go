package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// constPredictor is a fixed-score LayerPredictor for handle tests.
type constPredictor struct {
	score float64
	err   error
}

func (p *constPredictor) Evaluate(float64) (float64, error) { return p.score, p.err }

// TestLayerHandleVersioning pins the versioned-handle contract: the
// initial predictor serves as version 1, every swap bumps the version and
// redirects Score, and the previous predictor comes back for rollback.
func TestLayerHandleVersioning(t *testing.T) {
	l := &Layer{Name: "app", Evaluate: func(float64) (float64, error) { return 0.25, nil }}
	if v := l.Version(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}
	if s, err := l.Score(0); err != nil || s != 0.25 {
		t.Fatalf("Score through wrapped closure = %v, %v", s, err)
	}

	repl := &constPredictor{score: 0.75}
	prev, v := l.SwapPredictor(repl)
	if v != 2 {
		t.Fatalf("version after swap = %d, want 2", v)
	}
	if s, _ := l.Score(0); s != 0.75 {
		t.Fatalf("Score after swap = %g, want 0.75", s)
	}
	if s, err := prev.Evaluate(0); err != nil || s != 0.25 {
		t.Fatalf("previous predictor = %v, %v; want the original closure", s, err)
	}

	// Rollback is just another swap: the version keeps rising.
	if _, v := l.SwapPredictor(prev); v != 3 {
		t.Fatalf("version after rollback = %d, want 3", v)
	}
	if s, _ := l.Score(0); s != 0.25 {
		t.Fatalf("Score after rollback = %g, want 0.25", s)
	}
	if p, v := l.Current(); v != 3 {
		t.Fatalf("Current version = %d, want 3", v)
	} else if s, _ := p.Evaluate(0); s != 0.25 {
		t.Fatalf("Current predictor scores %g, want the original 0.25", s)
	}
}

// TestLayerPredictorFieldPrecedence: an explicit Predictor wins over the
// legacy Evaluate closure.
func TestLayerPredictorFieldPrecedence(t *testing.T) {
	l := &Layer{
		Name:      "app",
		Evaluate:  func(float64) (float64, error) { return 0.1, nil },
		Predictor: &constPredictor{score: 0.9},
	}
	if s, _ := l.Score(0); s != 0.9 {
		t.Fatalf("Score = %g, want the explicit predictor's 0.9", s)
	}
}

// TestLayerEvalErrorsCounted: failed evaluations are counted per layer —
// through EvaluateLayers (engine path) and direct Score calls alike.
func TestLayerEvalErrorsCounted(t *testing.T) {
	boom := errors.New("sensor offline")
	bad := &Layer{Name: "bad", Predictor: &constPredictor{err: boom}, Threshold: 0.5}
	good := constLayer("good", 0.9)
	eng, err := New(nil, []*Layer{bad, good}, nil, testSelector(t),
		testActions(t, &scriptedTarget{}), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	scores := eng.EvaluateLayers(1)
	if !math.IsNaN(scores[0]) || scores[1] != 0.9 {
		t.Fatalf("scores = %v, want [NaN 0.9]", scores)
	}
	if n := bad.EvalErrors(); n != 1 {
		t.Fatalf("bad.EvalErrors = %d, want 1", n)
	}
	if n := good.EvalErrors(); n != 0 {
		t.Fatalf("good.EvalErrors = %d, want 0", n)
	}
	if _, err := bad.Score(2); err == nil {
		t.Fatal("Score should surface the evaluation error")
	}
	if n := bad.EvalErrors(); n != 2 {
		t.Fatalf("bad.EvalErrors = %d, want 2", n)
	}
}

// TestActOnCombinerErrorCounted: a failing combiner no longer disappears —
// the decision is flagged and the engine counts it.
func TestActOnCombinerErrorCounted(t *testing.T) {
	combiner := func([]float64) (float64, error) { return 0, errors.New("degenerate weights") }
	eng, err := New(nil, []*Layer{constLayer("app", 0.9)}, combiner, testSelector(t),
		testActions(t, &scriptedTarget{}), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	d := eng.ActOn(1, []float64{0.9})
	if !d.CombinerErr || d.Confidence != 0 || d.Warned {
		t.Fatalf("decision = %+v, want CombinerErr with zero confidence", d)
	}
	if n := eng.CombinerErrors(); n != 1 {
		t.Fatalf("CombinerErrors = %d, want 1", n)
	}
}

// TestDecisionLayerVersions: decisions carry the serving version of every
// layer, and they track hot swaps.
func TestDecisionLayerVersions(t *testing.T) {
	l1 := constLayer("a", 0.9)
	l2 := constLayer("b", 0.1)
	eng, err := New(nil, []*Layer{l1, l2}, nil, testSelector(t),
		testActions(t, &scriptedTarget{}), nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	d := eng.ActOn(1, eng.EvaluateLayers(1))
	if len(d.LayerVersions) != 2 || d.LayerVersions[0] != 1 || d.LayerVersions[1] != 1 {
		t.Fatalf("versions = %v, want [1 1]", d.LayerVersions)
	}
	l2.SwapPredictor(&constPredictor{score: 0.2})
	d = eng.ActOn(2, eng.EvaluateLayers(2))
	if d.LayerVersions[0] != 1 || d.LayerVersions[1] != 2 {
		t.Fatalf("versions after swap = %v, want [1 2]", d.LayerVersions)
	}
}

// TestConcurrentSwapAndScore hammers SwapPredictor against Score from many
// goroutines (run with -race): every Score must observe a coherent
// predictor and the version must end exactly at 1 + swaps.
func TestConcurrentSwapAndScore(t *testing.T) {
	l := &Layer{Name: "hot", Predictor: &constPredictor{score: 0.5}}
	const (
		swappers = 4
		swapsPer = 250
		scorers  = 4
	)
	var wg sync.WaitGroup
	for s := 0; s < swappers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < swapsPer; i++ {
				l.SwapPredictor(&constPredictor{score: float64(s)})
			}
		}(s)
	}
	for s := 0; s < scorers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, err := l.Score(float64(i)); err != nil {
					t.Errorf("Score: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := l.Version(); v != 1+swappers*swapsPer {
		t.Fatalf("final version = %d, want %d", v, 1+swappers*swapsPer)
	}
}

// TestPredictorFuncAdapter keeps the adapter honest.
func TestPredictorFuncAdapter(t *testing.T) {
	p := PredictorFunc(func(now float64) (float64, error) {
		if now < 0 {
			return 0, fmt.Errorf("negative time")
		}
		return now * 2, nil
	})
	if s, err := p.Evaluate(3); err != nil || s != 6 {
		t.Fatalf("Evaluate = %v, %v", s, err)
	}
	if _, err := p.Evaluate(-1); err == nil {
		t.Fatal("error should pass through")
	}
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/predict"
)

// TranslucencyReport is the Sect. 6 "translucency" view: insight into
// dependability and prediction behaviour at all levels while the MEA
// methods run.
type TranslucencyReport struct {
	Layers     []string
	Warnings   int
	Actions    int
	Suppressed int
	Outcomes   OutcomeMatrix
	Quality    predict.ContingencyTable
}

// Report assembles the current translucency snapshot. Safe for concurrent
// use (see the package locking contract).
func (e *Engine) Report() TranslucencyReport {
	names := make([]string, len(e.layers))
	for i, l := range e.layers {
		names[i] = l.Name
	}
	outcomes := e.Outcomes()
	e.mu.Lock()
	defer e.mu.Unlock()
	return TranslucencyReport{
		Layers:     names,
		Warnings:   len(e.warnings),
		Actions:    len(e.actionTimes),
		Suppressed: e.suppressed,
		Outcomes:   outcomes,
		Quality:    outcomes.Table(),
	}
}

// String renders the report, including the Table 1 matrix.
func (r TranslucencyReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "layers: %s\n", strings.Join(r.Layers, ", "))
	fmt.Fprintf(&sb, "warnings: %d  actions: %d  suppressed-by-guard: %d\n",
		r.Warnings, r.Actions, r.Suppressed)
	fmt.Fprintf(&sb, "prediction quality: %s\n", r.Quality)
	outcomes := []predict.Outcome{
		predict.TruePositive, predict.FalsePositive,
		predict.TrueNegative, predict.FalseNegative,
	}
	for _, o := range outcomes {
		byAction := r.Outcomes.Counts[o]
		if len(byAction) == 0 {
			continue
		}
		actions := make([]string, 0, len(byAction))
		for a := range byAction {
			actions = append(actions, a)
		}
		sort.Strings(actions)
		fmt.Fprintf(&sb, "%s:", o)
		for _, a := range actions {
			fmt.Fprintf(&sb, " %s=%d", a, byAction[a])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

package core

// Package ctmc implements continuous-time Markov chains: generator
// matrices, steady-state and transient solutions, absorbing-chain analysis
// and phase-type distributions. It is the engine behind the paper's
// Section 5 availability/reliability model (Fig. 9, Eqs. 7–13).
package ctmc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrChain is wrapped by all chain-construction and solver errors.
var ErrChain = errors.New("ctmc: invalid chain")

// Chain is a finite-state CTMC described by its infinitesimal generator.
// Off-diagonal entries are transition rates; diagonal entries are maintained
// as the negated row sums.
type Chain struct {
	names []string
	q     *mat.Matrix
}

// New returns a chain with one state per name and no transitions.
func New(names ...string) *Chain {
	if len(names) == 0 {
		panic("ctmc: chain needs at least one state")
	}
	return &Chain{
		names: append([]string(nil), names...),
		q:     mat.New(len(names), len(names)),
	}
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return len(c.names) }

// StateName returns the name of state i.
func (c *Chain) StateName(i int) string { return c.names[i] }

// StateIndex returns the index of the named state, or -1.
func (c *Chain) StateIndex(name string) int {
	for i, n := range c.names {
		if n == name {
			return i
		}
	}
	return -1
}

// SetRate sets the transition rate from state i to state j (i ≠ j) and
// rebalances the diagonal so rows keep summing to zero.
func (c *Chain) SetRate(i, j int, rate float64) error {
	n := c.NumStates()
	if i < 0 || i >= n || j < 0 || j >= n {
		return fmt.Errorf("%w: state index out of range (%d,%d)", ErrChain, i, j)
	}
	if i == j {
		return fmt.Errorf("%w: cannot set diagonal rate (%d,%d)", ErrChain, i, j)
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("%w: rate %g from %q to %q", ErrChain, rate, c.names[i], c.names[j])
	}
	old := c.q.At(i, j)
	c.q.Set(i, j, rate)
	c.q.Add(i, i, old-rate)
	return nil
}

// Rate returns the transition rate from state i to state j.
func (c *Chain) Rate(i, j int) float64 { return c.q.At(i, j) }

// Generator returns a copy of the infinitesimal generator matrix Q.
func (c *Chain) Generator() *mat.Matrix { return c.q.Clone() }

// SteadyState returns the stationary distribution π with πQ = 0, Σπ = 1.
// The chain must be irreducible over the states that carry probability;
// a singular system (e.g. absorbing chains) returns an error.
func (c *Chain) SteadyState() ([]float64, error) {
	n := c.NumStates()
	// Solve Qᵀ π = 0 with the last balance equation replaced by Σπ = 1.
	a := c.q.Transpose()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("%w: steady state: %v", ErrChain, err)
	}
	for i, p := range pi {
		if p < -1e-9 {
			return nil, fmt.Errorf("%w: negative steady-state probability %g in state %q", ErrChain, p, c.names[i])
		}
		if p < 0 {
			pi[i] = 0
		}
	}
	return mat.Normalize(pi), nil
}

// TransientDistribution returns the state distribution at time t ≥ 0 given
// the initial distribution p0, using uniformization (with a matrix-
// exponential fallback when the uniformization constant would demand an
// excessive number of terms).
func (c *Chain) TransientDistribution(p0 []float64, t float64) ([]float64, error) {
	n := c.NumStates()
	if len(p0) != n {
		return nil, fmt.Errorf("%w: initial distribution has length %d, want %d", ErrChain, len(p0), n)
	}
	if t < 0 {
		return nil, fmt.Errorf("%w: negative time %g", ErrChain, t)
	}
	if t == 0 {
		return mat.CloneVec(p0), nil
	}
	// Uniformization constant: Λ ≥ max_i |q_ii|.
	lambda := 0.0
	for i := 0; i < n; i++ {
		if a := -c.q.At(i, i); a > lambda {
			lambda = a
		}
	}
	if lambda == 0 {
		return mat.CloneVec(p0), nil // no transitions at all
	}
	lt := lambda * t
	if lt > 400 {
		return c.transientExpm(p0, t)
	}
	// P = I + Q/Λ.
	p := mat.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.Add(i, j, c.q.At(i, j)/lambda)
		}
	}
	// π(t) = Σ_k Poisson(Λt; k) · p0 Pᵏ, truncated once the accumulated
	// Poisson mass covers 1-1e-12.
	out := make([]float64, n)
	vk := mat.CloneVec(p0)
	logWeight := -lt // log Poisson(Λt; 0)
	cum := 0.0
	for k := 0; ; k++ {
		w := math.Exp(logWeight)
		mat.AddScaled(out, w, vk)
		cum += w
		if cum >= 1-1e-12 || k > 100000 {
			break
		}
		next, err := p.VecMul(vk)
		if err != nil {
			return nil, err
		}
		vk = next
		logWeight += math.Log(lt) - math.Log(float64(k+1))
	}
	return mat.Normalize(out), nil
}

// transientExpm computes p0·exp(tQ) directly.
func (c *Chain) transientExpm(p0 []float64, t float64) ([]float64, error) {
	e, err := mat.Expm(c.q.Clone().Scale(t))
	if err != nil {
		return nil, fmt.Errorf("%w: transient expm: %v", ErrChain, err)
	}
	out, err := e.VecMul(p0)
	if err != nil {
		return nil, err
	}
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		}
	}
	return mat.Normalize(out), nil
}

package ctmc_test

import (
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/mat"
)

// A two-state availability model: the classic up/down chain.
func ExampleChain_SteadyState() {
	c := ctmc.New("up", "down")
	if err := c.SetRate(0, 1, 1.0/1000); err != nil { // MTTF 1000 s
		fmt.Println("error:", err)
		return
	}
	if err := c.SetRate(1, 0, 1.0/100); err != nil { // MTTR 100 s
		fmt.Println("error:", err)
		return
	}
	pi, err := c.SteadyState()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("availability %.4f\n", pi[0])
	// Output:
	// availability 0.9091
}

// Phase-type distributions: the Erlang-2 time to absorption.
func ExampleNewPhaseType() {
	sub, err := mat.FromRows([][]float64{
		{-2, 2},
		{0, -2},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p, err := ctmc.NewPhaseType([]float64{1, 0}, sub)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mean, err := p.Mean()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cdf, err := p.CDF(1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mean %.2f  F(1) %.3f\n", mean, cdf)
	// Output:
	// mean 1.00  F(1) 0.594
}

package ctmc

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// expPhase builds the 1-phase (exponential) distribution with rate lambda.
func expPhase(t *testing.T, lambda float64) *PhaseType {
	t.Helper()
	sub := mat.New(1, 1)
	sub.Set(0, 0, -lambda)
	p, err := NewPhaseType([]float64{1}, sub)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPhaseTypeExponential(t *testing.T) {
	lambda := 0.8
	p := expPhase(t, lambda)
	for _, x := range []float64{0.1, 1, 3} {
		cdf, err := p.CDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 - math.Exp(-lambda*x); math.Abs(cdf-want) > 1e-10 {
			t.Fatalf("CDF(%g) = %g, want %g", x, cdf, want)
		}
		pdf, err := p.PDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if want := lambda * math.Exp(-lambda*x); math.Abs(pdf-want) > 1e-10 {
			t.Fatalf("PDF(%g) = %g, want %g", x, pdf, want)
		}
		h, err := p.Hazard(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-lambda) > 1e-10 {
			t.Fatalf("exponential hazard at %g = %g, want constant %g", x, h, lambda)
		}
	}
	mean, err := p.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1/lambda) > 1e-12 {
		t.Fatalf("Mean = %g, want %g", mean, 1/lambda)
	}
}

func TestPhaseTypeErlang2(t *testing.T) {
	lambda := 2.0
	sub, _ := mat.FromRows([][]float64{
		{-lambda, lambda},
		{0, -lambda},
	})
	p, err := NewPhaseType([]float64{1, 0}, sub)
	if err != nil {
		t.Fatal(err)
	}
	// Erlang-2 density: λ² t e^{-λt}.
	for _, x := range []float64{0.2, 0.5, 1.5} {
		pdf, err := p.PDF(x)
		if err != nil {
			t.Fatal(err)
		}
		want := lambda * lambda * x * math.Exp(-lambda*x)
		if math.Abs(pdf-want) > 1e-10 {
			t.Fatalf("Erlang2 PDF(%g) = %g, want %g", x, pdf, want)
		}
	}
	mean, err := p.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2/lambda) > 1e-12 {
		t.Fatalf("Erlang2 mean = %g, want %g", mean, 2/lambda)
	}
	// Erlang hazard is increasing from 0 toward λ.
	h1, _ := p.Hazard(0.1)
	h2, _ := p.Hazard(1)
	if h1 >= h2 || h2 > lambda {
		t.Fatalf("Erlang2 hazard not increasing toward λ: %g, %g", h1, h2)
	}
}

func TestPhaseTypeBoundaries(t *testing.T) {
	p := expPhase(t, 1)
	if cdf, _ := p.CDF(0); cdf != 0 {
		t.Fatalf("CDF(0) = %g", cdf)
	}
	if cdf, _ := p.CDF(-5); cdf != 0 {
		t.Fatalf("CDF(-5) = %g", cdf)
	}
	if pdf, _ := p.PDF(-1); pdf != 0 {
		t.Fatalf("PDF(-1) = %g", pdf)
	}
	if s, _ := p.Survival(0); s != 1 {
		t.Fatalf("Survival(0) = %g", s)
	}
}

func TestNewPhaseTypeValidation(t *testing.T) {
	good := mat.New(1, 1)
	good.Set(0, 0, -1)
	cases := []struct {
		name  string
		alpha []float64
		sub   func() *mat.Matrix
	}{
		{"alpha wrong length", []float64{0.5, 0.5}, func() *mat.Matrix { return good.Clone() }},
		{"alpha not normalized", []float64{0.7}, func() *mat.Matrix { return good.Clone() }},
		{"negative alpha", []float64{-1}, func() *mat.Matrix { return good.Clone() }},
		{"positive diagonal", []float64{1}, func() *mat.Matrix {
			m := mat.New(1, 1)
			m.Set(0, 0, 1)
			return m
		}},
		{"positive row sum", []float64{1}, func() *mat.Matrix {
			m, _ := mat.FromRows([][]float64{{-1, 2}})
			big := mat.New(2, 2)
			big.Set(0, 0, -1)
			big.Set(0, 1, 2)
			big.Set(1, 1, -1)
			_ = m
			return big
		}},
		{"negative off-diagonal", []float64{1, 0}, func() *mat.Matrix {
			m := mat.New(2, 2)
			m.Set(0, 0, -1)
			m.Set(0, 1, -0.5)
			m.Set(1, 1, -1)
			return m
		}},
	}
	for _, tc := range cases {
		if _, err := NewPhaseType(tc.alpha, tc.sub()); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
}

func TestAbsorbingFrom(t *testing.T) {
	// up → degraded → down(absorbing); up → down directly as well.
	c := New("up", "degraded", "down")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.SetRate(0, 1, 0.5))
	must(c.SetRate(0, 2, 0.1))
	must(c.SetRate(1, 2, 1.0))
	must(c.SetRate(1, 0, 0.2))
	p, err := AbsorbingFrom(c, []int{2}, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPhases() != 2 {
		t.Fatalf("phases = %d, want 2", p.NumPhases())
	}
	// CDF must be a valid distribution function.
	prev := 0.0
	for _, x := range []float64{0.5, 1, 2, 5, 20} {
		f, err := p.CDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if f < prev || f > 1 {
			t.Fatalf("CDF(%g) = %g not monotone in [0,1]", x, f)
		}
		prev = f
	}
	if prev < 0.99 {
		t.Fatalf("CDF(20) = %g, should be near 1", prev)
	}
	// Mean time to absorption is positive and finite.
	mean, err := p.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || math.IsInf(mean, 0) {
		t.Fatalf("mean = %g", mean)
	}
	// Cross-check the mean against numeric integration of the survival fn.
	integral := 0.0
	dt := 0.01
	for x := 0.0; x < 60; x += dt {
		s, err := p.Survival(x + dt/2)
		if err != nil {
			t.Fatal(err)
		}
		integral += s * dt
	}
	if math.Abs(integral-mean) > 0.01*mean {
		t.Fatalf("∫R = %g vs analytic mean %g", integral, mean)
	}
}

func TestAbsorbingFromValidation(t *testing.T) {
	c := New("a", "b")
	if err := c.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := AbsorbingFrom(c, nil, []float64{1, 0}); err == nil {
		t.Fatal("empty absorbing set did not error")
	}
	if _, err := AbsorbingFrom(c, []int{0, 1}, []float64{1, 0}); err == nil {
		t.Fatal("all-absorbing set did not error")
	}
	if _, err := AbsorbingFrom(c, []int{1}, []float64{0, 1}); err == nil {
		t.Fatal("mass on absorbing state did not error")
	}
	if _, err := AbsorbingFrom(c, []int{5}, []float64{1, 0}); err == nil {
		t.Fatal("out-of-range absorbing state did not error")
	}
	if _, err := AbsorbingFrom(c, []int{1}, []float64{1}); err == nil {
		t.Fatal("bad alpha length did not error")
	}
}

package ctmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// twoState builds the classic up/down availability chain.
func twoState(t *testing.T, lambda, mu float64) *Chain {
	t.Helper()
	c := New("up", "down")
	if err := c.SetRate(0, 1, lambda); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(1, 0, mu); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetRateValidation(t *testing.T) {
	c := New("a", "b")
	if err := c.SetRate(0, 0, 1); err == nil {
		t.Fatal("diagonal SetRate did not error")
	}
	if err := c.SetRate(0, 5, 1); err == nil {
		t.Fatal("out-of-range SetRate did not error")
	}
	if err := c.SetRate(0, 1, -2); err == nil {
		t.Fatal("negative rate did not error")
	}
	if err := c.SetRate(0, 1, math.NaN()); err == nil {
		t.Fatal("NaN rate did not error")
	}
}

func TestSetRateRebalancesDiagonal(t *testing.T) {
	c := New("a", "b", "c")
	if err := c.SetRate(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRate(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.Generator().At(0, 0); got != -5 {
		t.Fatalf("diagonal = %g, want -5", got)
	}
	// Overwriting a rate must rebalance, not accumulate.
	if err := c.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Generator().At(0, 0); got != -4 {
		t.Fatalf("diagonal after overwrite = %g, want -4", got)
	}
}

func TestStateLookup(t *testing.T) {
	c := New("up", "down")
	if c.StateIndex("down") != 1 || c.StateIndex("nope") != -1 {
		t.Fatal("StateIndex wrong")
	}
	if c.StateName(0) != "up" {
		t.Fatal("StateName wrong")
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	lambda, mu := 0.2, 1.5
	c := twoState(t, lambda, mu)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	wantUp := mu / (lambda + mu)
	if math.Abs(pi[0]-wantUp) > 1e-12 {
		t.Fatalf("π(up) = %g, want %g", pi[0], wantUp)
	}
	if math.Abs(pi[0]+pi[1]-1) > 1e-12 {
		t.Fatalf("π does not sum to 1: %v", pi)
	}
}

func TestTransientTwoStateClosedForm(t *testing.T) {
	lambda, mu := 0.7, 0.3
	c := twoState(t, lambda, mu)
	p0 := []float64{1, 0}
	for _, tt := range []float64{0, 0.1, 0.5, 1, 5, 20} {
		got, err := c.TransientDistribution(p0, tt)
		if err != nil {
			t.Fatal(err)
		}
		pinf := mu / (lambda + mu)
		want := pinf + (1-pinf)*math.Exp(-(lambda+mu)*tt)
		if math.Abs(got[0]-want) > 1e-9 {
			t.Fatalf("p_up(%g) = %g, want %g", tt, got[0], want)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := twoState(t, 0.4, 0.9)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.TransientDistribution([]float64{0, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(pt[i]-pi[i]) > 1e-9 {
			t.Fatalf("transient(100) = %v, steady = %v", pt, pi)
		}
	}
}

func TestTransientExpmFallbackAgreesWithUniformization(t *testing.T) {
	// Large Λt forces the expm path; compare it against uniformization on
	// a shorter horizon via the semigroup property.
	c := twoState(t, 50, 80) // Λ = 130, t = 5 → Λt = 650 > 400
	p0 := []float64{1, 0}
	viaExpm, err := c.TransientDistribution(p0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Two uniformization half-steps (Λt = 325 > 400? no: 130*2.5=325 ≤ 400).
	half, err := c.TransientDistribution(p0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.TransientDistribution(half, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if math.Abs(full[i]-viaExpm[i]) > 1e-9 {
			t.Fatalf("expm path %v vs uniformization %v", viaExpm, full)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.TransientDistribution([]float64{1}, 1); err == nil {
		t.Fatal("bad p0 length did not error")
	}
	if _, err := c.TransientDistribution([]float64{1, 0}, -1); err == nil {
		t.Fatal("negative time did not error")
	}
	got, err := c.TransientDistribution([]float64{0.25, 0.75}, 0)
	if err != nil || got[0] != 0.25 {
		t.Fatalf("t=0 should return p0: %v, %v", got, err)
	}
}

func TestTransientNoTransitions(t *testing.T) {
	c := New("only")
	got, err := c.TransientDistribution([]float64{1}, 10)
	if err != nil || got[0] != 1 {
		t.Fatalf("single-state transient = %v, %v", got, err)
	}
}

// Property: for random irreducible chains, the steady state satisfies
// πQ ≈ 0 and transient distributions remain valid probability vectors.
func TestSteadyStateBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		c := New(names...)
		// Dense positive rates guarantee irreducibility.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if err := c.SetRate(i, j, 0.05+rng.Float64()*3); err != nil {
					return false
				}
			}
		}
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		// πQ = 0 means Σ_i π_i q_ij = 0 for all j.
		q := c.Generator()
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += pi[i] * q.At(i, j)
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		// Transient at a random time is a probability vector.
		pt, err := c.TransientDistribution(mat.Basis(n, rng.Intn(n)), rng.Float64()*10)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pt {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyStateAbsorbingFails(t *testing.T) {
	c := New("a", "b")
	if err := c.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// State b is absorbing: no unique positive steady state via the linear
	// solve on an irreducible assumption — here the solve succeeds with all
	// mass on b, which is in fact the correct limiting distribution.
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[1]-1) > 1e-12 {
		t.Fatalf("absorbing steady state = %v, want all mass on b", pi)
	}
}

package ctmc

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// PhaseType is a continuous phase-type distribution: the time to absorption
// of a CTMC with transient sub-generator T and initial distribution alpha
// over the transient states (Eqs. 11–12 of the paper).
type PhaseType struct {
	alpha []float64
	t     *mat.Matrix
	exit  []float64 // t0 = -T·1, the absorption rate vector
}

// NewPhaseType validates and constructs a phase-type distribution. The
// sub-generator must have non-negative off-diagonals, non-positive
// diagonals, and row sums ≤ 0 (slack is the absorption rate).
func NewPhaseType(alpha []float64, t *mat.Matrix) (*PhaseType, error) {
	n := t.Rows
	if t.Cols != n {
		return nil, fmt.Errorf("%w: sub-generator is %dx%d", ErrChain, t.Rows, t.Cols)
	}
	if len(alpha) != n {
		return nil, fmt.Errorf("%w: alpha has length %d, want %d", ErrChain, len(alpha), n)
	}
	sum := 0.0
	for _, a := range alpha {
		if a < 0 {
			return nil, fmt.Errorf("%w: negative initial probability %g", ErrChain, a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: alpha sums to %g", ErrChain, sum)
	}
	exit := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			v := t.At(i, j)
			if i == j {
				if v > 1e-12 {
					return nil, fmt.Errorf("%w: positive diagonal %g at state %d", ErrChain, v, i)
				}
			} else if v < 0 {
				return nil, fmt.Errorf("%w: negative rate %g at (%d,%d)", ErrChain, v, i, j)
			}
			rowSum += v
		}
		if rowSum > 1e-9 {
			return nil, fmt.Errorf("%w: row %d of sub-generator sums to %g > 0", ErrChain, i, rowSum)
		}
		exit[i] = -rowSum
	}
	return &PhaseType{alpha: mat.CloneVec(alpha), t: t.Clone(), exit: exit}, nil
}

// AbsorbingFrom extracts the phase-type distribution of the first passage
// from the chain c into any of the absorbing states, starting from the
// distribution alphaFull over all states of c. Probability mass that
// alphaFull places on absorbing states is rejected.
func AbsorbingFrom(c *Chain, absorbing []int, alphaFull []float64) (*PhaseType, error) {
	n := c.NumStates()
	if len(alphaFull) != n {
		return nil, fmt.Errorf("%w: alpha has length %d, want %d", ErrChain, len(alphaFull), n)
	}
	isAbs := make(map[int]bool, len(absorbing))
	for _, a := range absorbing {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("%w: absorbing state %d out of range", ErrChain, a)
		}
		isAbs[a] = true
	}
	if len(isAbs) == 0 || len(isAbs) == n {
		return nil, fmt.Errorf("%w: need a non-empty strict subset of absorbing states", ErrChain)
	}
	var transient []int
	for i := 0; i < n; i++ {
		if !isAbs[i] {
			transient = append(transient, i)
		} else if alphaFull[i] != 0 {
			return nil, fmt.Errorf("%w: initial probability %g on absorbing state %q", ErrChain, alphaFull[i], c.StateName(i))
		}
	}
	m := len(transient)
	sub := mat.New(m, m)
	alpha := make([]float64, m)
	for a, i := range transient {
		alpha[a] = alphaFull[i]
		for b, j := range transient {
			sub.Set(a, b, c.q.At(i, j))
		}
	}
	return NewPhaseType(alpha, sub)
}

// expAt returns alpha·exp(xT) for x ≥ 0.
func (p *PhaseType) expAt(x float64) ([]float64, error) {
	e, err := mat.Expm(p.t.Clone().Scale(x))
	if err != nil {
		return nil, err
	}
	return e.VecMul(p.alpha)
}

// CDF returns F(t) = 1 − α·exp(tT)·1 (Eq. 11).
func (p *PhaseType) CDF(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	v, err := p.expAt(t)
	if err != nil {
		return 0, err
	}
	f := 1 - mat.SumVec(v)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f, nil
}

// PDF returns f(t) = α·exp(tT)·t0 (Eq. 12).
func (p *PhaseType) PDF(t float64) (float64, error) {
	if t < 0 {
		return 0, nil
	}
	v, err := p.expAt(t)
	if err != nil {
		return 0, err
	}
	f := mat.Dot(v, p.exit)
	if f < 0 {
		f = 0
	}
	return f, nil
}

// Survival returns R(t) = 1 − F(t) (Eq. 9: reliability).
func (p *PhaseType) Survival(t float64) (float64, error) {
	f, err := p.CDF(t)
	if err != nil {
		return 0, err
	}
	return 1 - f, nil
}

// Hazard returns h(t) = f(t)/(1 − F(t)) (Eq. 10).
func (p *PhaseType) Hazard(t float64) (float64, error) {
	v, err := p.expAt(math.Max(t, 0))
	if err != nil {
		return 0, err
	}
	surv := mat.SumVec(v)
	if surv <= 0 {
		return math.Inf(1), nil
	}
	return mat.Dot(v, p.exit) / surv, nil
}

// Quantile returns the time t with F(t) = q, solved by bisection on the
// monotone CDF (Eq. 11). q must lie in (0, 1).
func (p *PhaseType) Quantile(q float64) (float64, error) {
	if math.IsNaN(q) || q <= 0 || q >= 1 {
		return 0, fmt.Errorf("%w: quantile %g outside (0,1)", ErrChain, q)
	}
	mean, err := p.Mean()
	if err != nil {
		return 0, err
	}
	lo, hi := 0.0, math.Max(mean, 1e-12)
	for i := 0; i < 200; i++ {
		f, err := p.CDF(hi)
		if err != nil {
			return 0, err
		}
		if f >= q {
			break
		}
		lo, hi = hi, hi*2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(hi, 1); i++ {
		mid := lo + (hi-lo)/2
		f, err := p.CDF(mid)
		if err != nil {
			return 0, err
		}
		if f < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Mean returns E[T] = −α·T⁻¹·1, the mean time to absorption.
func (p *PhaseType) Mean() (float64, error) {
	// Solve Tᵀ y = alpha, then mean = -Σ y.
	f, err := mat.Factorize(p.t.Transpose())
	if err != nil {
		return 0, fmt.Errorf("%w: mean: %v", ErrChain, err)
	}
	y, err := f.SolveVec(p.alpha)
	if err != nil {
		return 0, err
	}
	return -mat.SumVec(y), nil
}

// NumPhases returns the number of transient phases.
func (p *PhaseType) NumPhases() int { return len(p.alpha) }

// Package predict defines the common prediction vocabulary of the library:
// prediction outcomes, contingency tables with the Sect. 3.3 quality
// metrics (precision, recall, false positive rate, F-measure), threshold
// sweeps, ROC curves with AUC, and dataset-splitting utilities.
package predict

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// ErrPredict is wrapped by all evaluation errors.
var ErrPredict = errors.New("predict: invalid operation")

// Outcome classifies one prediction against ground truth (Table 1 rows).
type Outcome int

// The four prediction outcomes.
const (
	TruePositive Outcome = iota + 1
	FalsePositive
	TrueNegative
	FalseNegative
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case TruePositive:
		return "TP"
	case FalsePositive:
		return "FP"
	case TrueNegative:
		return "TN"
	case FalseNegative:
		return "FN"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Classify returns the outcome of a single prediction.
func Classify(predicted, actual bool) Outcome {
	switch {
	case predicted && actual:
		return TruePositive
	case predicted && !actual:
		return FalsePositive
	case !predicted && !actual:
		return TrueNegative
	default:
		return FalseNegative
	}
}

// ContingencyTable counts prediction outcomes.
type ContingencyTable struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *ContingencyTable) Add(predicted, actual bool) {
	switch Classify(predicted, actual) {
	case TruePositive:
		c.TP++
	case FalsePositive:
		c.FP++
	case TrueNegative:
		c.TN++
	case FalseNegative:
		c.FN++
	}
}

// Total returns the number of recorded predictions.
func (c ContingencyTable) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision is TP/(TP+FP): the fraction of correct failure warnings.
// NaN when no warnings were raised.
func (c ContingencyTable) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall (true positive rate) is TP/(TP+FN): the fraction of failures that
// were predicted. NaN when there were no failures.
func (c ContingencyTable) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR is FP/(FP+TN): the fraction of non-failures falsely warned about.
// NaN when there were no non-failures.
func (c ContingencyTable) FPR() float64 {
	if c.FP+c.TN == 0 {
		return math.NaN()
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// FMeasure is the harmonic mean of precision and recall; 0 when either is
// undefined or zero.
func (c ContingencyTable) FMeasure() float64 {
	p, r := c.Precision(), c.Recall()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP+TN)/total; NaN for an empty table.
func (c ContingencyTable) Accuracy() float64 {
	if c.Total() == 0 {
		return math.NaN()
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// String renders the table with its derived metrics.
func (c ContingencyTable) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d precision=%.3f recall=%.3f fpr=%.4f F=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.FPR(), c.FMeasure())
}

// Scored pairs a predictor's raw score with the ground truth; higher scores
// mean "more failure-prone".
type Scored struct {
	Score  float64
	Actual bool
}

// Evaluate thresholds the scored predictions: a warning is raised when
// score ≥ threshold.
func Evaluate(scored []Scored, threshold float64) ContingencyTable {
	var c ContingencyTable
	for _, s := range scored {
		c.Add(s.Score >= threshold, s.Actual)
	}
	return c
}

// ROCPoint is one operating point of a Receiver Operating Characteristic.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true positive rate (recall)
	FPR       float64 // false positive rate
}

// ROC computes the ROC curve by sweeping the threshold across all distinct
// scores, from most to least conservative. The returned curve starts at
// (0,0) (threshold +Inf) and ends at (1,1) (threshold −Inf). It requires at
// least one positive and one negative example.
func ROC(scored []Scored) ([]ROCPoint, error) {
	pos, neg := 0, 0
	for _, s := range scored {
		if s.Actual {
			pos++
		} else {
			neg++
		}
		if math.IsNaN(s.Score) {
			return nil, fmt.Errorf("%w: NaN score", ErrPredict)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("%w: ROC needs both classes (pos=%d, neg=%d)", ErrPredict, pos, neg)
	}
	sorted := append([]Scored(nil), scored...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })

	curve := []ROCPoint{{Threshold: math.Inf(1), TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(sorted); {
		// Consume all examples tied at this score before emitting a point.
		score := sorted[i].Score
		for i < len(sorted) && sorted[i].Score == score {
			if sorted[i].Actual {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, ROCPoint{
			Threshold: score,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return curve, nil
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func AUC(curve []ROCPoint) (float64, error) {
	if len(curve) < 2 {
		return 0, fmt.Errorf("%w: AUC needs ≥ 2 ROC points", ErrPredict)
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		if dx < 0 {
			return 0, fmt.Errorf("%w: ROC curve not sorted by FPR", ErrPredict)
		}
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area, nil
}

// AUCOf is a convenience composing ROC and AUC.
func AUCOf(scored []Scored) (float64, error) {
	curve, err := ROC(scored)
	if err != nil {
		return 0, err
	}
	return AUC(curve)
}

// MaxFMeasure sweeps all distinct scores and returns the threshold that
// maximizes the F-measure together with the contingency table at that
// threshold (the operating point the paper reports in Sect. 3.3).
func MaxFMeasure(scored []Scored) (threshold float64, best ContingencyTable, err error) {
	if len(scored) == 0 {
		return 0, ContingencyTable{}, fmt.Errorf("%w: empty evaluation set", ErrPredict)
	}
	distinct := make(map[float64]bool, len(scored))
	for _, s := range scored {
		distinct[s.Score] = true
	}
	bestF := -1.0
	for th := range distinct {
		c := Evaluate(scored, th)
		if f := c.FMeasure(); f > bestF || (f == bestF && th > threshold) {
			bestF, threshold, best = f, th, c
		}
	}
	return threshold, best, nil
}

// Split partitions indices [0,n) into a training and test set with the
// given training fraction, shuffled by rng.
func Split(n int, trainFrac float64, rng *stats.RNG) (train, test []int, err error) {
	if n <= 1 || trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("%w: split n=%d frac=%g", ErrPredict, n, trainFrac)
	}
	perm := rng.Perm(n)
	cut := int(math.Round(float64(n) * trainFrac))
	if cut == 0 {
		cut = 1
	}
	if cut == n {
		cut = n - 1
	}
	return perm[:cut], perm[cut:], nil
}

// KFold partitions indices [0,n) into k shuffled folds of near-equal size.
func KFold(n, k int, rng *stats.RNG) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("%w: kfold n=%d k=%d", ErrPredict, n, k)
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds, nil
}

package predict

import (
	"fmt"
	"math"
	"sort"
)

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PrecisionRecall computes the precision-recall curve by sweeping the
// threshold across all distinct scores from most to least conservative.
// It requires at least one positive example.
func PrecisionRecall(scored []Scored) ([]PRPoint, error) {
	pos := 0
	for _, s := range scored {
		if s.Actual {
			pos++
		}
		if math.IsNaN(s.Score) {
			return nil, fmt.Errorf("%w: NaN score", ErrPredict)
		}
	}
	if pos == 0 {
		return nil, fmt.Errorf("%w: precision-recall needs positives", ErrPredict)
	}
	sorted := append([]Scored(nil), scored...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })

	var curve []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(sorted); {
		score := sorted[i].Score
		for i < len(sorted) && sorted[i].Score == score {
			if sorted[i].Actual {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, PRPoint{
			Threshold: score,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(pos),
		})
	}
	return curve, nil
}

// Breakeven returns the precision-recall breakeven point — the paper's
// alternative single-number summary ("the value of the point where
// precision equals recall", Sect. 3.3) — approximated as the curve point
// minimizing |precision − recall|, interpolated linearly when the curve
// crosses the diagonal between two points.
func Breakeven(scored []Scored) (float64, error) {
	curve, err := PrecisionRecall(scored)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	value := 0.0
	for i, p := range curve {
		if diff := math.Abs(p.Precision - p.Recall); diff < best {
			best = diff
			value = (p.Precision + p.Recall) / 2
		}
		if i == 0 {
			continue
		}
		// Interpolate across a diagonal crossing.
		prev := curve[i-1]
		d0 := prev.Precision - prev.Recall
		d1 := p.Precision - p.Recall
		if d0*d1 < 0 {
			t := d0 / (d0 - d1)
			pr := prev.Precision + t*(p.Precision-prev.Precision)
			re := prev.Recall + t*(p.Recall-prev.Recall)
			if diff := math.Abs(pr - re); diff < best {
				best = diff
				value = (pr + re) / 2
			}
		}
	}
	return value, nil
}

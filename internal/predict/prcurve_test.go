package predict

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestPrecisionRecallPerfect(t *testing.T) {
	scored := []Scored{
		{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false},
	}
	curve, err := PrecisionRecall(scored)
	if err != nil {
		t.Fatal(err)
	}
	// At the most conservative threshold precision is 1; the final point
	// has recall 1.
	if curve[0].Precision != 1 {
		t.Fatalf("first precision = %g", curve[0].Precision)
	}
	last := curve[len(curve)-1]
	if last.Recall != 1 || last.Precision != 0.5 {
		t.Fatalf("last point = %+v", last)
	}
	be, err := Breakeven(scored)
	if err != nil {
		t.Fatal(err)
	}
	if be != 1 {
		t.Fatalf("perfect breakeven = %g", be)
	}
}

func TestPrecisionRecallValidation(t *testing.T) {
	if _, err := PrecisionRecall([]Scored{{0.5, false}}); err == nil {
		t.Fatal("no positives accepted")
	}
	if _, err := PrecisionRecall([]Scored{{math.NaN(), true}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Breakeven(nil); err == nil {
		t.Fatal("empty breakeven accepted")
	}
}

func TestBreakevenMatchesKnownCrossing(t *testing.T) {
	// Two positives, two negatives, interleaved: at threshold 0.7
	// precision=1, recall=0.5; at 0.5: precision=2/3, recall=1... the
	// crossing lies between.
	scored := []Scored{
		{0.9, true}, {0.7, false}, {0.5, true}, {0.3, false},
	}
	be, err := Breakeven(scored)
	if err != nil {
		t.Fatal(err)
	}
	if be < 0.5 || be > 1 {
		t.Fatalf("breakeven = %g out of plausible range", be)
	}
}

func TestBreakevenTracksPredictorQuality(t *testing.T) {
	g := stats.NewRNG(8)
	mk := func(sep float64) []Scored {
		scored := make([]Scored, 600)
		for i := range scored {
			actual := g.Bernoulli(0.3)
			mean := 0.0
			if actual {
				mean = sep
			}
			scored[i] = Scored{Score: mean + g.NormFloat64(), Actual: actual}
		}
		return scored
	}
	weak, err := Breakeven(mk(0.5))
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Breakeven(mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if strong <= weak {
		t.Fatalf("breakeven should grow with separation: weak=%g strong=%g", weak, strong)
	}
	if strong < 0.8 {
		t.Fatalf("strong separation breakeven = %g", strong)
	}
}

// Property: precision-recall recall values are non-decreasing along the
// threshold sweep.
func TestPRRecallMonotone(t *testing.T) {
	g := stats.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		scored := make([]Scored, 50)
		hasPos := false
		for i := range scored {
			scored[i] = Scored{Score: g.Float64(), Actual: g.Bernoulli(0.4)}
			hasPos = hasPos || scored[i].Actual
		}
		if !hasPos {
			continue
		}
		curve, err := PrecisionRecall(scored)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].Recall < curve[i-1].Recall {
				t.Fatalf("recall not monotone at %d", i)
			}
		}
	}
}

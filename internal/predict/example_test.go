package predict_test

import (
	"fmt"

	"repro/internal/predict"
)

// Evaluating a failure predictor with the Sect. 3.3 metrics.
func ExampleContingencyTable() {
	var table predict.ContingencyTable
	// 10 predictions against ground truth.
	outcomes := []struct{ predicted, actual bool }{
		{true, true}, {true, true}, {true, false},
		{false, true}, {false, false}, {false, false},
		{false, false}, {false, false}, {false, false}, {false, false},
	}
	for _, o := range outcomes {
		table.Add(o.predicted, o.actual)
	}
	fmt.Printf("precision %.2f recall %.2f fpr %.2f\n",
		table.Precision(), table.Recall(), table.FPR())
	// Output:
	// precision 0.67 recall 0.67 fpr 0.14
}

// Sweeping thresholds: ROC curve, AUC, and the max-F operating point.
func ExampleMaxFMeasure() {
	scored := []predict.Scored{
		{Score: 0.95, Actual: true},
		{Score: 0.80, Actual: true},
		{Score: 0.60, Actual: false},
		{Score: 0.55, Actual: true},
		{Score: 0.30, Actual: false},
		{Score: 0.10, Actual: false},
	}
	auc, err := predict.AUCOf(scored)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	threshold, table, err := predict.MaxFMeasure(scored)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("AUC %.3f\n", auc)
	fmt.Printf("best threshold %.2f with F %.3f\n", threshold, table.FMeasure())
	// Output:
	// AUC 0.889
	// best threshold 0.55 with F 0.857
}

package predict

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		predicted, actual bool
		want              Outcome
	}{
		{true, true, TruePositive},
		{true, false, FalsePositive},
		{false, false, TrueNegative},
		{false, true, FalseNegative},
	}
	for _, tc := range cases {
		if got := Classify(tc.predicted, tc.actual); got != tc.want {
			t.Fatalf("Classify(%v,%v) = %v", tc.predicted, tc.actual, got)
		}
	}
}

func TestContingencyMetricsPaperInterpretation(t *testing.T) {
	// The paper's worked interpretation (Sect. 3.3): precision 0.8 means
	// 80% of warnings are correct; recall 0.9 means 90% of failures are
	// caught; fpr 0.1 means 10% of non-failures falsely warned.
	c := ContingencyTable{TP: 72, FP: 18, FN: 8, TN: 162}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("precision = %g", got)
	}
	if got := c.Recall(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("recall = %g", got)
	}
	if got := c.FPR(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("fpr = %g", got)
	}
	wantF := 2 * 0.8 * 0.9 / 1.7
	if got := c.FMeasure(); math.Abs(got-wantF) > 1e-12 {
		t.Fatalf("F = %g, want %g", got, wantF)
	}
	if got := c.Accuracy(); math.Abs(got-234.0/260.0) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
}

func TestMetricsDegenerateCases(t *testing.T) {
	var empty ContingencyTable
	if !math.IsNaN(empty.Precision()) || !math.IsNaN(empty.Recall()) ||
		!math.IsNaN(empty.FPR()) || !math.IsNaN(empty.Accuracy()) {
		t.Fatal("degenerate metrics should be NaN")
	}
	if empty.FMeasure() != 0 {
		t.Fatal("degenerate F-measure should be 0")
	}
}

func TestAddAccumulates(t *testing.T) {
	var c ContingencyTable
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, false)
	c.Add(false, true)
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 || c.Total() != 4 {
		t.Fatalf("table = %+v", c)
	}
}

func TestEvaluateThreshold(t *testing.T) {
	scored := []Scored{
		{0.9, true}, {0.8, false}, {0.4, true}, {0.1, false},
	}
	c := Evaluate(scored, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("Evaluate = %+v", c)
	}
	// Threshold at the score value is inclusive.
	c = Evaluate(scored, 0.9)
	if c.TP != 1 || c.FP != 0 {
		t.Fatalf("inclusive threshold = %+v", c)
	}
}

func TestROCPerfectPredictor(t *testing.T) {
	scored := []Scored{
		{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false},
	}
	auc, err := AUCOf(scored)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("perfect AUC = %g", auc)
	}
}

func TestROCInvertedPredictor(t *testing.T) {
	scored := []Scored{
		{0.9, false}, {0.8, false}, {0.2, true}, {0.1, true},
	}
	auc, err := AUCOf(scored)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("inverted AUC = %g", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	g := stats.NewRNG(5)
	scored := make([]Scored, 4000)
	for i := range scored {
		scored[i] = Scored{Score: g.Float64(), Actual: g.Bernoulli(0.3)}
	}
	auc, err := AUCOf(scored)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %g, want ≈0.5", auc)
	}
}

func TestROCEndpointsAndTies(t *testing.T) {
	scored := []Scored{
		{0.5, true}, {0.5, false}, {0.5, true}, {0.2, false},
	}
	curve, err := ROC(scored)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Fatalf("ROC start = %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC end = %+v", last)
	}
	// Ties at 0.5 are a single point: 3 points total (start, tie, end).
	if len(curve) != 3 {
		t.Fatalf("ROC has %d points: %v", len(curve), curve)
	}
}

func TestROCValidation(t *testing.T) {
	if _, err := ROC([]Scored{{0.5, true}}); err == nil {
		t.Fatal("single-class ROC accepted")
	}
	if _, err := ROC([]Scored{{math.NaN(), true}, {0.1, false}}); err == nil {
		t.Fatal("NaN score accepted")
	}
	if _, err := AUC(nil); err == nil {
		t.Fatal("empty AUC accepted")
	}
}

// Property: AUC is always within [0,1], and relabeling scores by a strictly
// increasing transform leaves AUC unchanged.
func TestAUCInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		n := 10 + g.Intn(50)
		scored := make([]Scored, n)
		hasPos, hasNeg := false, false
		for i := range scored {
			scored[i] = Scored{Score: g.Float64(), Actual: g.Bernoulli(0.4)}
			if scored[i].Actual {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		auc1, err := AUCOf(scored)
		if err != nil {
			return false
		}
		transformed := make([]Scored, n)
		for i, s := range scored {
			transformed[i] = Scored{Score: math.Exp(3*s.Score) + 7, Actual: s.Actual}
		}
		auc2, err := AUCOf(transformed)
		if err != nil {
			return false
		}
		return auc1 >= 0 && auc1 <= 1 && math.Abs(auc1-auc2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFMeasure(t *testing.T) {
	scored := []Scored{
		{0.9, true}, {0.85, true}, {0.6, false}, {0.5, true}, {0.2, false}, {0.1, false},
	}
	th, c, err := MaxFMeasure(scored)
	if err != nil {
		t.Fatal(err)
	}
	// Best operating point: threshold 0.85 gives P=1, R=2/3, F=0.8;
	// threshold 0.5 gives P=0.75, R=1, F≈0.857 — the latter wins.
	if th != 0.5 {
		t.Fatalf("best threshold = %g (table %v)", th, c)
	}
	if math.Abs(c.FMeasure()-6.0/7.0) > 1e-12 {
		t.Fatalf("best F = %g", c.FMeasure())
	}
	if _, _, err := MaxFMeasure(nil); err == nil {
		t.Fatal("empty MaxFMeasure accepted")
	}
}

func TestSplit(t *testing.T) {
	g := stats.NewRNG(3)
	train, test, err := Split(10, 0.7, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 7 || len(test) != 3 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int(nil), train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Fatal("split lost indices")
	}
	if _, _, err := Split(1, 0.5, g); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, _, err := Split(10, 1.0, g); err == nil {
		t.Fatal("frac=1 accepted")
	}
}

func TestKFold(t *testing.T) {
	g := stats.NewRNG(3)
	folds, err := KFold(10, 3, g)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range folds {
		total += len(f)
	}
	if total != 10 || len(folds) != 3 {
		t.Fatalf("folds = %v", folds)
	}
	if _, err := KFold(3, 5, g); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := KFold(10, 1, g); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestMatchWarnings(t *testing.T) {
	warnings := []Warning{
		{Time: 100, LeadTime: 50},  // covers failure at 130 → TP
		{Time: 300, LeadTime: 50},  // no failure in [300,360] → FP
		{Time: 500, LeadTime: 100}, // covers failure at 580 → TP
	}
	failures := []float64{130, 580, 900} // failure at 900 missed → FN
	c := MatchWarnings(warnings, failures, 10, 20)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("MatchWarnings = %+v", c)
	}
	if c.TN != 20-2-1-1 {
		t.Fatalf("TN = %d", c.TN)
	}
	// A single failure cannot satisfy two warnings.
	double := []Warning{{Time: 100, LeadTime: 50}, {Time: 110, LeadTime: 50}}
	c = MatchWarnings(double, []float64{130}, 0, 10)
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("double-counted failure: %+v", c)
	}
}

func TestWarningDeadline(t *testing.T) {
	w := Warning{Time: 10, LeadTime: 5}
	if w.Deadline() != 15 {
		t.Fatalf("Deadline = %g", w.Deadline())
	}
}

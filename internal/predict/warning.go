package predict

import "fmt"

// Warning is a failure warning emitted by an online predictor: the
// prediction time, the lead time Δtl until the anticipated failure, and the
// predictor's confidence (its raw score mapped to [0,1] where possible).
type Warning struct {
	Time       float64 // when the warning was raised [s]
	LeadTime   float64 // anticipated time until failure [s]
	Confidence float64 // predictor confidence in [0,1]
	Source     string  // predictor that raised it (layer name in Fig. 11)
}

// Deadline returns the anticipated failure time.
func (w Warning) Deadline() float64 { return w.Time + w.LeadTime }

// String renders the warning.
func (w Warning) String() string {
	return fmt.Sprintf("warning[t=%.1f +%.0fs conf=%.2f src=%s]", w.Time, w.LeadTime, w.Confidence, w.Source)
}

// MatchWarnings pairs warnings against actual failure times and returns the
// contingency table: a warning is a true positive if a failure occurs
// within [Time, Time+LeadTime+slack]; a failure with no covering warning is
// a false negative. The negatives count is calibrated by the number of
// evaluation points (prediction opportunities) supplied by the caller.
func MatchWarnings(warnings []Warning, failures []float64, slack float64, evaluations int) ContingencyTable {
	var c ContingencyTable
	usedFailure := make([]bool, len(failures))
	for _, w := range warnings {
		hit := false
		for i, f := range failures {
			if usedFailure[i] {
				continue
			}
			if f >= w.Time && f <= w.Deadline()+slack {
				usedFailure[i] = true
				hit = true
				break
			}
		}
		if hit {
			c.TP++
		} else {
			c.FP++
		}
	}
	for _, used := range usedFailure {
		if !used {
			c.FN++
		}
	}
	if tn := evaluations - c.TP - c.FP - c.FN; tn > 0 {
		c.TN = tn
	}
	return c
}

package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpmZeroIsIdentity(t *testing.T) {
	e, err := Expm(New(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equalish(Identity(4), 1e-14) {
		t.Fatalf("exp(0) = %v, want I", e)
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, -2)
	a.Set(2, 2, 0.5)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{math.E, math.Exp(-2), math.Exp(0.5)} {
		if math.Abs(e.At(i, i)-want) > 1e-12 {
			t.Fatalf("exp(diag)[%d,%d] = %g, want %g", i, i, e.At(i, i), want)
		}
	}
}

func TestExpmNilpotent(t *testing.T) {
	// For strictly upper triangular 2x2 N, exp(N) = I + N exactly.
	a := New(2, 2)
	a.Set(0, 1, 3)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{1, 3}, {0, 1}})
	if !e.Equalish(want, 1e-13) {
		t.Fatalf("exp(nilpotent) = %v, want %v", e, want)
	}
}

func TestExpmLargeNormUsesScaling(t *testing.T) {
	// A = diag(10, -10): large norm forces the scaling-and-squaring path.
	a := New(2, 2)
	a.Set(0, 0, 10)
	a.Set(1, 1, -10)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(e.At(0, 0)-math.Exp(10)) / math.Exp(10); rel > 1e-10 {
		t.Fatalf("exp(10) relative error %g", rel)
	}
	if math.Abs(e.At(1, 1)-math.Exp(-10)) > 1e-10 {
		t.Fatalf("exp(-10) = %g", e.At(1, 1))
	}
}

// Property: exp(A)·exp(−A) = I for random small matrices.
func TestExpmInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		ea, err := Expm(a)
		if err != nil {
			return false
		}
		ena, err := Expm(a.Clone().Scale(-1))
		if err != nil {
			return false
		}
		prod, err := ea.Mul(ena)
		if err != nil {
			return false
		}
		return prod.Equalish(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: exp((s+t)A) = exp(sA)·exp(tA) — the semigroup property used by
// the CTMC transient solver.
func TestExpmSemigroupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64() * 0.5
		}
		s, u := math.Abs(rng.NormFloat64()), math.Abs(rng.NormFloat64())
		whole, err := Expm(a.Clone().Scale(s + u))
		if err != nil {
			return false
		}
		es, err := Expm(a.Clone().Scale(s))
		if err != nil {
			return false
		}
		eu, err := Expm(a.Clone().Scale(u))
		if err != nil {
			return false
		}
		parts, err := es.Mul(eu)
		if err != nil {
			return false
		}
		return whole.Equalish(parts, 1e-7*math.Max(1, whole.NormInf()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpmGeneratorRowSumsPreserved(t *testing.T) {
	// For a CTMC generator Q (rows sum to 0), exp(tQ) is stochastic:
	// rows sum to 1 and entries are non-negative.
	q, _ := FromRows([][]float64{
		{-2, 1.5, 0.5},
		{0.3, -0.5, 0.2},
		{1, 0, -1},
	})
	p, err := Expm(q.Clone().Scale(0.7))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		s := 0.0
		for c := 0; c < 3; c++ {
			v := p.At(r, c)
			if v < -1e-12 {
				t.Fatalf("negative transition probability %g at (%d,%d)", v, r, c)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-10 {
			t.Fatalf("row %d of exp(tQ) sums to %g", r, s)
		}
	}
}

func TestExpmNonSquare(t *testing.T) {
	if _, err := Expm(New(2, 3)); err == nil {
		t.Fatal("Expm of non-square matrix did not error")
	}
}

// Package mat provides the small dense linear-algebra substrate used by the
// CTMC engine and the statistical learners: vectors, row-major matrices,
// LU-based linear solves, and the matrix exponential.
//
// The package is deliberately minimal — it implements exactly what the PFM
// stack needs (systems of a few dozen states, kernel design matrices with a
// few thousand rows) with no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimension is returned (wrapped) when operand shapes do not conform.
var ErrDimension = errors.New("mat: dimension mismatch")

// ErrSingular is returned (wrapped) when a matrix is numerically singular.
var ErrSingular = errors.New("mat: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrDimension)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrDimension, i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v onto the element at row r, column c.
func (m *Matrix) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[r*m.Cols:(r+1)*m.Cols])
	return out
}

// RowView returns row r as a view into the backing store — no copy. The
// returned slice must not be modified; it is the read path for hot loops
// that scan every row and would otherwise allocate per row.
func (m *Matrix) RowView(r int) []float64 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// Scale multiplies every element of m by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMat returns m + b as a new matrix.
func (m *Matrix) AddMat(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out, nil
}

// Sub returns m - b as a new matrix.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out, nil
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, a := range mi {
			if a == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range bk {
				oi[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: mulvec %dx%d by vector of length %d", ErrDimension, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// VecMul returns the vector-matrix product x*m (x treated as a row vector).
func (m *Matrix) VecMul(x []float64) ([]float64, error) {
	if m.Rows != len(x) {
		return nil, fmt.Errorf("%w: vecmul vector of length %d by %dx%d", ErrDimension, len(x), m.Rows, m.Cols)
	}
	out := make([]float64, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// NormInf returns the maximum absolute row sum.
func (m *Matrix) NormInf() float64 {
	max := 0.0
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for c := 0; c < m.Cols; c++ {
			s += math.Abs(m.Data[r*m.Cols+c])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Norm1 returns the maximum absolute column sum.
func (m *Matrix) Norm1() float64 {
	max := 0.0
	for c := 0; c < m.Cols; c++ {
		s := 0.0
		for r := 0; r < m.Rows; r++ {
			s += math.Abs(m.Data[r*m.Cols+c])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Equalish reports whether m and b have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders m for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for r := 0; r < m.Rows; r++ {
		sb.WriteString("[")
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(r, c))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d with %d entries", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix is not zeroed")
		}
	}
}

func TestNewPanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 2) did not panic")
		}
	}()
	New(0, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows layout wrong: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged FromRows did not error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty FromRows did not error")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(3)[%d,%d] = %g", r, c, id.At(r, c))
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equalish(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestMulDimensionError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("incompatible Mul did not error")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
	z, err := a.VecMul([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("VecMul = %v", z)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		return a.Transpose().Transpose().Equalish(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := a.NormInf(); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
	if got := a.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %g, want 6", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.AddMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 5 || sum.At(1, 1) != 5 {
		t.Fatalf("AddMat = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equalish(a, 1e-15) {
		t.Fatalf("Sub did not invert AddMat: %v", diff)
	}
	if got := a.Clone().Scale(2).At(1, 0); got != 6 {
		t.Fatalf("Scale(2) at (1,0) = %g", got)
	}
}

func TestRowColAccessors(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := a.Row(1)
	c := a.Col(2)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col(2) = %v", c)
	}
	// Mutating the copies must not touch the matrix.
	r[0], c[0] = -1, -1
	if a.At(1, 0) != 4 || a.At(0, 2) != 3 {
		t.Fatal("Row/Col returned aliases, want copies")
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		mk := func() *Matrix {
			m := New(n, n)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equalish(abc2, 1e-9*math.Max(1, abc1.NormInf()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("Solve = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	_, err := Solve(a, []float64{1, 2})
	if err == nil {
		t.Fatal("singular system did not error")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("error %v is not ErrSingular", err)
	}
}

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(New(2, 3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("Factorize(2x3) error = %v, want ErrDimension", err)
	}
}

// Property: solving A*x = A*x0 recovers x0 for random well-conditioned A.
func TestSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(x0)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-x0[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Fatalf("Det = %g, want -14", got)
	}
}

func TestInverse(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	if !prod.Equalish(Identity(2), 1e-12) {
		t.Fatalf("A*A⁻¹ = %v, want I", prod)
	}
}

func TestSolveMatMatchesSolveVec(t *testing.T) {
	a, _ := FromRows([][]float64{{5, 1}, {-1, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	x, err := f.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	col0, _ := f.SolveVec([]float64{1, 0})
	if math.Abs(x.At(0, 0)-col0[0]) > 1e-14 || math.Abs(x.At(1, 0)-col0[1]) > 1e-14 {
		t.Fatal("SolveMat disagrees with SolveVec")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system: the LS solution is the exact one.
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	x0 := []float64{2, -3}
	b, _ := a.MulVec(x0)
	x, err := SolveLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if math.Abs(x[i]-x0[i]) > 1e-10 {
			t.Fatalf("lstsq = %v, want %v", x, x0)
		}
	}
}

func TestSolveLeastSquaresRidgeShrinks(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	b := []float64{1, 1}
	x0, err := SolveLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := SolveLeastSquares(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink solution: %v vs %v", x1, x0)
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	a := New(3, 2)
	if _, err := SolveLeastSquares(a, []float64{1, 2}, 0); err == nil {
		t.Fatal("mismatched rhs did not error")
	}
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}, -1); err == nil {
		t.Fatal("negative ridge did not error")
	}
}

package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, -5, 6}); got != 12 {
		t.Fatalf("Dot = %g, want 12", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Dot did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 1}
	AddScaled(dst, 2, []float64{3, -1})
	if dst[0] != 7 || dst[1] != -1 {
		t.Fatalf("AddScaled = %v", dst)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float64{2, 6})
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Fatalf("Normalize = %v", v)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize(0) = %v, want unchanged", z)
	}
}

func TestNorm2AndInf(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %g", got)
	}
	if got := NormInfVec([]float64{-7, 3}); got != 7 {
		t.Fatalf("NormInfVec = %g", got)
	}
}

func TestOnesBasis(t *testing.T) {
	if v := Ones(3); v[0] != 1 || v[2] != 1 {
		t.Fatalf("Ones = %v", v)
	}
	if v := Basis(4, 2); v[2] != 1 || SumVec(v) != 1 {
		t.Fatalf("Basis = %v", v)
	}
}

func TestCloneVecIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := CloneVec(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("CloneVec aliased its input")
	}
}

// Property: Cauchy–Schwarz |a·b| ≤ ‖a‖‖b‖.
func TestCauchySchwarz(t *testing.T) {
	f := func(a, b [4]float64) bool {
		as, bs := a[:], b[:]
		// Squash quick's unbounded floats into a finite range so the
		// products cannot overflow to ±Inf.
		for i := range as {
			as[i] = math.Tanh(as[i] / 1e100)
			bs[i] = math.Tanh(bs[i] / 1e100)
		}
		lhs := math.Abs(Dot(as, bs))
		rhs := Norm2(as) * Norm2(bs)
		return lhs <= rhs*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

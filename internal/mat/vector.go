package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddScaled computes dst += s*src in place and returns dst.
func AddScaled(dst []float64, s float64, src []float64) []float64 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: addscaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += s * v
	}
	return dst
}

// ScaleVec multiplies every element of v by s in place and returns v.
func ScaleVec(v []float64, s float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInfVec returns the maximum absolute entry of v.
func NormInfVec(v []float64) float64 {
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// SumVec returns the sum of all entries of v.
func SumVec(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize scales v in place so its entries sum to one and returns v.
// A zero vector is left unchanged.
func Normalize(v []float64) []float64 {
	s := SumVec(v)
	if s == 0 {
		return v
	}
	return ScaleVec(v, 1/s)
}

// Ones returns a vector of n ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Basis returns the n-length unit vector with a one at index i.
func Basis(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

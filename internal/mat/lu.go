package mat

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting of a square matrix:
// P*A = L*U, stored compactly in lu with the pivot sequence in piv.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64 // +1 or -1, determinant sign from row swaps
}

// Factorize computes the LU factorization of the square matrix a.
// It returns ErrSingular (wrapped) if a pivot is exactly zero.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest |entry| in column k at/below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				max, p = a, i
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			for c := 0; c < n; c++ {
				lu.Data[p*n+c], lu.Data[k*n+c] = lu.Data[k*n+c], lu.Data[p*n+c]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for c := k + 1; c < n; c++ {
				lu.Data[i*n+c] -= m * lu.Data[k*n+c]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A*x = b for x using the factorization.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve with rhs length %d, want %d", ErrDimension, len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// SolveMat solves A*X = B column by column.
func (f *LU) SolveMat(b *Matrix) (*Matrix, error) {
	if b.Rows != f.lu.Rows {
		return nil, fmt.Errorf("%w: solve with rhs %dx%d, want %d rows", ErrDimension, b.Rows, b.Cols, f.lu.Rows)
	}
	out := New(b.Rows, b.Cols)
	for c := 0; c < b.Cols; c++ {
		col, err := f.SolveVec(b.Col(c))
		if err != nil {
			return nil, err
		}
		for r, v := range col {
			out.Set(r, c, v)
		}
	}
	return out, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.sign
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the square system a*x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Inverse returns the inverse of the square matrix a.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Identity(a.Rows))
}

// SolveLeastSquares solves the (possibly overdetermined) system a*x ≈ b in
// the least-squares sense with Tikhonov regularization strength ridge ≥ 0,
// via the normal equations (AᵀA + ridge·I) x = Aᵀb. This is adequate for the
// modest kernel design matrices used by the UBF learner.
func SolveLeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: lstsq with %d rows and rhs length %d", ErrDimension, a.Rows, len(b))
	}
	if ridge < 0 {
		return nil, fmt.Errorf("mat: negative ridge %g", ridge)
	}
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.Rows; i++ {
		ata.Add(i, i, ridge)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return Solve(ata, atb)
}

package mat

import (
	"fmt"
	"math"
)

// padé coefficients for the degree-13 diagonal approximant (Higham 2005).
var pade13 = [...]float64{
	64764752532480000, 32382376266240000, 7771770303897600,
	1187353796428800, 129060195264000, 10559470521600,
	670442572800, 33522128640, 1323241920,
	40840800, 960960, 16380, 182, 1,
}

// thetas for choosing lower-degree approximants (Higham 2005, Table 2.3).
var padeThetas = []struct {
	degree int
	theta  float64
}{
	{3, 1.495585217958292e-2},
	{5, 2.539398330063230e-1},
	{7, 9.504178996162932e-1},
	{9, 2.097847961257068},
	{13, 5.371920351148152},
}

var padeCoeffs = map[int][]float64{
	3:  {120, 60, 12, 1},
	5:  {30240, 15120, 3360, 420, 30, 1},
	7:  {17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1},
	9:  {17643225600, 8821612800, 2075673600, 302702400, 30270240, 2162160, 110880, 3960, 90, 1},
	13: pade13[:],
}

// Expm returns the matrix exponential exp(a) using the scaling-and-squaring
// method with Padé approximation (Higham 2005). a must be square.
func Expm(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: expm of %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	norm := a.Norm1()
	for _, pt := range padeThetas[:len(padeThetas)-1] {
		if norm <= pt.theta {
			return padeApprox(a, pt.degree)
		}
	}
	// Scaling and squaring with degree 13.
	theta13 := padeThetas[len(padeThetas)-1].theta
	s := 0
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
	}
	scaled := a.Clone().Scale(math.Pow(2, -float64(s)))
	e, err := padeApprox(scaled, 13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s; i++ {
		e, err = e.Mul(e)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// padeApprox evaluates the [m/m] Padé approximant of exp at a.
func padeApprox(a *Matrix, degree int) (*Matrix, error) {
	c := padeCoeffs[degree]
	n := a.Rows
	a2, err := a.Mul(a)
	if err != nil {
		return nil, err
	}
	// U = A * (sum of odd-coefficient powers), V = sum of even-coefficient powers.
	// Evaluate via Horner in A².
	evenSum := Identity(n).Scale(c[0])
	oddSum := Identity(n).Scale(c[1])
	pow := Identity(n) // A^(2k)
	for k := 1; 2*k <= degree; k++ {
		pow, err = pow.Mul(a2)
		if err != nil {
			return nil, err
		}
		if 2*k < len(c) {
			evenSum, err = evenSum.AddMat(pow.Clone().Scale(c[2*k]))
			if err != nil {
				return nil, err
			}
		}
		if 2*k+1 < len(c) {
			oddSum, err = oddSum.AddMat(pow.Clone().Scale(c[2*k+1]))
			if err != nil {
				return nil, err
			}
		}
	}
	u, err := a.Mul(oddSum)
	if err != nil {
		return nil, err
	}
	v := evenSum
	// exp(A) ≈ (V - U)⁻¹ (V + U)
	num, err := v.AddMat(u)
	if err != nil {
		return nil, err
	}
	den, err := v.Sub(u)
	if err != nil {
		return nil, err
	}
	f, err := Factorize(den)
	if err != nil {
		return nil, fmt.Errorf("expm: %w", err)
	}
	return f.SolveMat(num)
}

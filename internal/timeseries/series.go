// Package timeseries provides the time-series representation shared by the
// monitoring layer and the symptom-based failure predictors: append-only
// series of (time, value) points with windowing, resampling, smoothing,
// trend estimation, and feature extraction for learning.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSeries is wrapped by all series errors.
var ErrSeries = errors.New("timeseries: invalid operation")

// Point is one observation.
type Point struct {
	T float64 // observation time [s]
	V float64 // observed value
}

// Series is an append-only, time-ordered sequence of observations of one
// monitored variable.
type Series struct {
	Name   string
	points []Point
}

// New returns an empty series for the named variable.
func New(name string) *Series {
	return &Series{Name: name}
}

// FromPoints builds a series from points, which must be strictly increasing
// in time.
func FromPoints(name string, pts []Point) (*Series, error) {
	s := New(name)
	for _, p := range pts {
		if err := s.Append(p.T, p.V); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Append adds an observation; time must strictly increase.
func (s *Series) Append(t, v float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: time %g", ErrSeries, t)
	}
	if n := len(s.points); n > 0 && t <= s.points[n-1].T {
		return fmt.Errorf("%w: time %g not after %g", ErrSeries, t, s.points[n-1].T)
	}
	s.points = append(s.points, Point{T: t, V: v})
	return nil
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th observation.
func (s *Series) At(i int) Point { return s.points[i] }

// Last returns the most recent observation and whether one exists.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Values returns a copy of all observed values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.V
	}
	return out
}

// Times returns a copy of all observation times.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.T
	}
	return out
}

// Window returns the sub-series with times in the half-open interval
// [from, to).
func (s *Series) Window(from, to float64) *Series {
	lo := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= from })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= to })
	out := New(s.Name)
	out.points = append(out.points, s.points[lo:hi]...)
	return out
}

// ValueAt returns the latest observed value at or before t (zero-order
// hold), and whether any observation exists at or before t.
func (s *Series) ValueAt(t float64) (float64, bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].V, true
}

// Resample aggregates the series into buckets of width step (starting at
// the first observation), taking the mean of each non-empty bucket. The
// resampled point carries the bucket start time.
func (s *Series) Resample(step float64) (*Series, error) {
	if step <= 0 || math.IsNaN(step) {
		return nil, fmt.Errorf("%w: resample step %g", ErrSeries, step)
	}
	out := New(s.Name)
	if len(s.points) == 0 {
		return out, nil
	}
	start := s.points[0].T
	bucket := 0
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			// Bucket start times strictly increase, so Append cannot fail.
			_ = out.Append(start+float64(bucket)*step, sum/float64(n))
		}
	}
	for _, p := range s.points {
		b := int((p.T - start) / step)
		if b != bucket {
			flush()
			bucket = b
			sum, n = 0, 0
		}
		sum += p.V
		n++
	}
	flush()
	return out, nil
}

// Smooth returns an exponentially smoothed copy with factor alpha ∈ (0,1].
func (s *Series) Smooth(alpha float64) (*Series, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("%w: smoothing factor %g", ErrSeries, alpha)
	}
	out := New(s.Name)
	prev := 0.0
	for i, p := range s.points {
		v := p.V
		if i > 0 {
			v = alpha*p.V + (1-alpha)*prev
		}
		_ = out.Append(p.T, v)
		prev = v
	}
	return out, nil
}

// LinearTrend fits v ≈ slope·t + intercept by ordinary least squares.
// It returns an error for fewer than two points or constant time.
func (s *Series) LinearTrend() (slope, intercept float64, err error) {
	n := len(s.points)
	if n < 2 {
		return 0, 0, fmt.Errorf("%w: trend needs ≥ 2 points", ErrSeries)
	}
	var st, sv, stt, stv float64
	for _, p := range s.points {
		st += p.T
		sv += p.V
		stt += p.T * p.T
		stv += p.T * p.V
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den == 0 {
		return 0, 0, fmt.Errorf("%w: degenerate time axis", ErrSeries)
	}
	slope = (fn*stv - st*sv) / den
	intercept = (sv - slope*st) / fn
	return slope, intercept, nil
}

// Rate returns the difference quotient series (dV/dT between consecutive
// observations), timestamped at the later observation.
func (s *Series) Rate() *Series {
	out := New(s.Name + ".rate")
	for i := 1; i < len(s.points); i++ {
		dt := s.points[i].T - s.points[i-1].T
		// Times strictly increase, so dt > 0 and Append cannot fail.
		_ = out.Append(s.points[i].T, (s.points[i].V-s.points[i-1].V)/dt)
	}
	return out
}

package timeseries

import (
	"math"
	"testing"
)

func buildSpecs(t *testing.T) []FeatureSpec {
	t.Helper()
	mem := mustSeries(t, "mem",
		Point{0, 100}, Point{10, 90}, Point{20, 80}, Point{30, 70})
	cpu := mustSeries(t, "cpu",
		Point{0, 0.2}, Point{10, 0.4}, Point{20, 0.6}, Point{30, 0.8})
	return []FeatureSpec{
		{Series: mem, Window: 25, WithMean: true, WithTrend: true},
		{Series: cpu},
	}
}

func TestFeatureSpecColumns(t *testing.T) {
	specs := buildSpecs(t)
	if got := specs[0].NumColumns(); got != 3 {
		t.Fatalf("NumColumns = %d", got)
	}
	names := specs[0].ColumnNames()
	if len(names) != 3 || names[1] != "mem.mean" || names[2] != "mem.trend" {
		t.Fatalf("names = %v", names)
	}
	if specs[1].NumColumns() != 1 {
		t.Fatal("raw-only spec should have one column")
	}
}

func TestBuildMatrix(t *testing.T) {
	specs := buildSpecs(t)
	m, names, err := BuildMatrix(specs, []float64{20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 4 {
		t.Fatalf("matrix is %dx%d", m.Rows, m.Cols)
	}
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	// Raw mem at t=20 is 80; at t=30 is 70.
	if m.At(0, 0) != 80 || m.At(1, 0) != 70 {
		t.Fatalf("raw mem column = %g, %g", m.At(0, 0), m.At(1, 0))
	}
	// Window mean at t=20 over [−5,20] covers {100,90,80} → 90.
	if m.At(0, 1) != 90 {
		t.Fatalf("mem.mean at 20 = %g", m.At(0, 1))
	}
	// Trend of mem is −1 per second.
	if math.Abs(m.At(0, 2)+1) > 1e-9 {
		t.Fatalf("mem.trend = %g", m.At(0, 2))
	}
	// cpu raw column.
	if m.At(1, 3) != 0.8 {
		t.Fatalf("cpu at 30 = %g", m.At(1, 3))
	}
}

func TestBuildMatrixErrors(t *testing.T) {
	specs := buildSpecs(t)
	if _, _, err := BuildMatrix(nil, []float64{1}); err == nil {
		t.Fatal("no specs accepted")
	}
	if _, _, err := BuildMatrix(specs, nil); err == nil {
		t.Fatal("no times accepted")
	}
	// Time before any observation.
	if _, _, err := BuildMatrix(specs, []float64{-5}); err == nil {
		t.Fatal("pre-history time accepted")
	}
}

func TestStandardizeRoundTrip(t *testing.T) {
	specs := buildSpecs(t)
	m, _, err := BuildMatrix(specs, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Clone()
	means, stds := StandardizeColumns(m)
	// Each column must now have ≈0 mean.
	for c := 0; c < m.Cols; c++ {
		sum := 0.0
		for r := 0; r < m.Rows; r++ {
			sum += m.At(r, c)
		}
		if math.Abs(sum) > 1e-9 {
			t.Fatalf("column %d mean %g after standardize", c, sum/3)
		}
	}
	// Applying the same transform to the original reproduces the z-scores.
	again := orig.Clone()
	if err := ApplyStandardization(again, means, stds); err != nil {
		t.Fatal(err)
	}
	if !again.Equalish(m, 1e-12) {
		t.Fatal("ApplyStandardization does not reproduce StandardizeColumns")
	}
	if err := ApplyStandardization(again, means[:1], stds); err == nil {
		t.Fatal("mismatched transform accepted")
	}
}

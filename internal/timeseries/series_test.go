package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func mustSeries(t *testing.T, name string, pts ...Point) *Series {
	t.Helper()
	s, err := FromPoints(name, pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendOrdering(t *testing.T) {
	s := New("x")
	if err := s.Append(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 11); err == nil {
		t.Fatal("duplicate time accepted")
	}
	if err := s.Append(0.5, 9); err == nil {
		t.Fatal("decreasing time accepted")
	}
	if err := s.Append(math.NaN(), 1); err == nil {
		t.Fatal("NaN time accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLastAndAt(t *testing.T) {
	s := mustSeries(t, "x", Point{1, 10}, Point{2, 20})
	last, ok := s.Last()
	if !ok || last.V != 20 {
		t.Fatalf("Last = %v, %v", last, ok)
	}
	if s.At(0).V != 10 {
		t.Fatal("At(0) wrong")
	}
	empty := New("e")
	if _, ok := empty.Last(); ok {
		t.Fatal("empty Last should be not-ok")
	}
}

func TestWindow(t *testing.T) {
	s := mustSeries(t, "x", Point{1, 1}, Point{2, 2}, Point{3, 3}, Point{4, 4})
	w := s.Window(2, 4)
	if w.Len() != 2 || w.At(0).T != 2 || w.At(1).T != 3 {
		t.Fatalf("Window(2,4) = %v", w.Times())
	}
	if s.Window(10, 20).Len() != 0 {
		t.Fatal("out-of-range window not empty")
	}
	// Window on an empty series.
	if New("e").Window(0, 1).Len() != 0 {
		t.Fatal("empty series window not empty")
	}
}

func TestValueAtZeroOrderHold(t *testing.T) {
	s := mustSeries(t, "x", Point{1, 10}, Point{3, 30})
	if _, ok := s.ValueAt(0.5); ok {
		t.Fatal("value before first observation should be not-ok")
	}
	if v, ok := s.ValueAt(1); !ok || v != 10 {
		t.Fatalf("ValueAt(1) = %g, %v", v, ok)
	}
	if v, _ := s.ValueAt(2.9); v != 10 {
		t.Fatalf("ValueAt(2.9) = %g, want hold of 10", v)
	}
	if v, _ := s.ValueAt(100); v != 30 {
		t.Fatalf("ValueAt(100) = %g", v)
	}
}

func TestResample(t *testing.T) {
	s := mustSeries(t, "x",
		Point{0, 1}, Point{0.5, 3}, // bucket 0: mean 2
		Point{1.2, 10}, // bucket 1: mean 10
		Point{3.1, 7},  // bucket 3: mean 7 (bucket 2 empty)
	)
	r, err := s.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("resample len = %d: %v", r.Len(), r.Values())
	}
	if r.At(0).V != 2 || r.At(1).V != 10 || r.At(2).V != 7 {
		t.Fatalf("resample values = %v", r.Values())
	}
	if r.At(2).T != 3 {
		t.Fatalf("bucket start time = %g", r.At(2).T)
	}
	if _, err := s.Resample(0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSmooth(t *testing.T) {
	s := mustSeries(t, "x", Point{0, 0}, Point{1, 1}, Point{2, 1})
	sm, err := s.Smooth(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sm.At(1).V != 0.5 || sm.At(2).V != 0.75 {
		t.Fatalf("smooth = %v", sm.Values())
	}
	if _, err := s.Smooth(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := s.Smooth(1.5); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
}

func TestLinearTrend(t *testing.T) {
	s := mustSeries(t, "x", Point{0, 1}, Point{1, 3}, Point{2, 5})
	slope, intercept, err := s.LinearTrend()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("trend = %g, %g", slope, intercept)
	}
	if _, _, err := New("e").LinearTrend(); err == nil {
		t.Fatal("empty trend accepted")
	}
}

func TestRate(t *testing.T) {
	s := mustSeries(t, "mem", Point{0, 100}, Point{2, 90}, Point{3, 85})
	r := s.Rate()
	if r.Len() != 2 {
		t.Fatalf("rate len = %d", r.Len())
	}
	if r.At(0).V != -5 || r.At(1).V != -5 {
		t.Fatalf("rate = %v", r.Values())
	}
	if r.Name != "mem.rate" {
		t.Fatalf("rate name = %q", r.Name)
	}
}

// Property: resampling preserves the overall mean when all buckets have the
// same number of points.
func TestResamplePreservesMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		vals := make([]float64, 12)
		x := float64(seed % 1000)
		for i := range vals {
			x = math.Mod(x*1103515245+12345, 1000)
			vals[i] = x
		}
		s := New("p")
		for i, v := range vals {
			if err := s.Append(float64(i), v); err != nil {
				return false
			}
		}
		r, err := s.Resample(3) // buckets of exactly 3 points each
		if err != nil {
			return false
		}
		var orig, res float64
		for _, v := range vals {
			orig += v
		}
		orig /= float64(len(vals))
		for _, v := range r.Values() {
			res += v
		}
		res /= float64(r.Len())
		return math.Abs(orig-res) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

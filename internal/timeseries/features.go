package timeseries

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/stats"
)

// FeatureSpec describes how one monitored variable contributes columns to a
// feature matrix: the raw value plus optional window statistics, as used by
// the UBF case study (Sect. 3.2: "workload, number of semaphore operations
// per second, and memory consumption").
type FeatureSpec struct {
	Series *Series
	// Window is the look-back horizon [s] for the derived statistics.
	// Zero disables the derived columns.
	Window float64
	// WithMean adds the window mean, WithTrend the window linear slope.
	WithMean, WithTrend bool
}

// NumColumns returns how many feature columns the spec produces.
func (f FeatureSpec) NumColumns() int {
	n := 1
	if f.Window > 0 && f.WithMean {
		n++
	}
	if f.Window > 0 && f.WithTrend {
		n++
	}
	return n
}

// ColumnNames returns one name per produced column.
func (f FeatureSpec) ColumnNames() []string {
	names := []string{f.Series.Name}
	if f.Window > 0 && f.WithMean {
		names = append(names, f.Series.Name+".mean")
	}
	if f.Window > 0 && f.WithTrend {
		names = append(names, f.Series.Name+".trend")
	}
	return names
}

// BuildMatrix samples every spec at each of the given times (zero-order
// hold) and assembles the design matrix: one row per time, columns in spec
// order. A time with no observation yet in some series is an error — the
// caller should restrict times to the monitored horizon.
func BuildMatrix(specs []FeatureSpec, times []float64) (*mat.Matrix, []string, error) {
	if len(specs) == 0 || len(times) == 0 {
		return nil, nil, fmt.Errorf("%w: BuildMatrix needs specs and times", ErrSeries)
	}
	cols := 0
	var names []string
	for _, sp := range specs {
		cols += sp.NumColumns()
		names = append(names, sp.ColumnNames()...)
	}
	m := mat.New(len(times), cols)
	for r, t := range times {
		c := 0
		for _, sp := range specs {
			v, ok := sp.Series.ValueAt(t)
			if !ok {
				return nil, nil, fmt.Errorf("%w: series %q has no observation at or before t=%g", ErrSeries, sp.Series.Name, t)
			}
			m.Set(r, c, v)
			c++
			if sp.Window > 0 && (sp.WithMean || sp.WithTrend) {
				w := sp.Series.Window(t-sp.Window, t+1e-9)
				if sp.WithMean {
					mean := v
					if w.Len() > 0 {
						mean = stats.Mean(w.Values())
					}
					m.Set(r, c, mean)
					c++
				}
				if sp.WithTrend {
					slope := 0.0
					if w.Len() >= 2 {
						s, _, err := w.LinearTrend()
						if err == nil {
							slope = s
						}
					}
					m.Set(r, c, slope)
					c++
				}
			}
		}
	}
	return m, names, nil
}

// StandardizeColumns z-scores each column of m in place and returns the
// per-column means and standard deviations so the same transform can be
// applied to future data.
func StandardizeColumns(m *mat.Matrix) (means, stds []float64) {
	means = make([]float64, m.Cols)
	stds = make([]float64, m.Cols)
	for c := 0; c < m.Cols; c++ {
		col := m.Col(c)
		z, mean, std := stats.Standardize(col)
		means[c], stds[c] = mean, std
		for r, v := range z {
			m.Set(r, c, v)
		}
	}
	return means, stds
}

// ApplyStandardization z-scores the columns of m with the given transform.
func ApplyStandardization(m *mat.Matrix, means, stds []float64) error {
	if len(means) != m.Cols || len(stds) != m.Cols {
		return fmt.Errorf("%w: standardization has %d/%d entries for %d columns", ErrSeries, len(means), len(stds), m.Cols)
	}
	for c := 0; c < m.Cols; c++ {
		std := stds[c]
		if std == 0 {
			std = 1
		}
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, (m.At(r, c)-means[c])/std)
		}
	}
	return nil
}

package ubf

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
)

// retrainGolden mirrors stats.RNG.Split's stream-derivation constant: the
// retrain seed for generation g is Seed ^ (retrainGolden · g), so every
// generation trains from an independent, reproducible stream with no wall
// clock involved.
const retrainGolden = int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)

// RetrainSeed derives the deterministic training seed for a retrain
// generation (generation 0 is the initial fit).
func RetrainSeed(base int64, generation uint64) int64 {
	return base ^ retrainGolden*int64(generation)
}

// Window is the training window captured for a UBF refit: a design matrix
// of feature rows and their regression targets. Both are owned by the
// window (CaptureWindow copies), so a background Retrain can read them
// while the live system keeps moving.
type Window struct {
	X *mat.Matrix
	Y []float64
}

// Predictor adapts a trained Network to the core predictor lifecycle:
// it evaluates the network on live features and can refit itself from a
// captured window under a generation-derived seed. Predictors are
// immutable — Retrain returns a new Predictor at generation+1 — which is
// exactly the shape core.Layer's versioned handle wants.
type Predictor struct {
	net      *Network
	features func(now float64) ([]float64, error)
	window   func(now float64) (*mat.Matrix, []float64, error)
	cfg      TrainConfig
	gen      uint64
}

var (
	_ core.LayerPredictor = (*Predictor)(nil)
	_ core.BatchPredictor = (*Predictor)(nil)
	_ core.Retrainer      = (*Predictor)(nil)
	_ core.Snapshotter    = (*Predictor)(nil)
)

// NewPredictor wraps a trained network. features maps evaluation time to
// the network's input vector. window (optional — without it the predictor
// is not retrainable and CaptureWindow errors) returns the recent training
// set at capture time; it is called under the runtime's evaluation
// exclusion and must return data the predictor may retain. cfg.Seed is the
// base of the generation seed chain.
func NewPredictor(
	net *Network,
	features func(now float64) ([]float64, error),
	window func(now float64) (*mat.Matrix, []float64, error),
	cfg TrainConfig,
) (*Predictor, error) {
	if net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrUBF)
	}
	if features == nil {
		return nil, fmt.Errorf("%w: nil feature source", ErrUBF)
	}
	return &Predictor{net: net, features: features, window: window, cfg: cfg}, nil
}

// Network exposes the wrapped network (read-only by convention).
func (p *Predictor) Network() *Network { return p.net }

// Generation returns the retrain generation (0 = initial fit).
func (p *Predictor) Generation() uint64 { return p.gen }

// Evaluate computes the failure-probability score at time now.
func (p *Predictor) Evaluate(now float64) (float64, error) {
	x, err := p.features(now)
	if err != nil {
		return 0, err
	}
	return p.net.Predict(x)
}

// EvaluateBatch implements core.BatchPredictor: it packs the feature rows
// for every evaluation time into one flat row-major design matrix and
// scores it through the fused batch kernel (PredictRowsInto), which runs
// the same scalar kernel per row as Predict — bit-identical to per-time
// Evaluate, with one versioned-handle load and one kernel sweep per
// batch. A failing feature source or a dimension mismatch fails the whole
// batch (the layer then abstains for every time in it).
func (p *Predictor) EvaluateBatch(nows []float64, out []float64) error {
	if len(nows) == 0 {
		return nil
	}
	m := mat.New(len(nows), p.net.Dim())
	for i, now := range nows {
		x, err := p.features(now)
		if err != nil {
			return err
		}
		if len(x) != p.net.Dim() {
			return fmt.Errorf("%w: feature dim %d at t=%g, want %d", ErrUBF, len(x), now, p.net.Dim())
		}
		copy(m.RowView(i), x)
	}
	return p.net.PredictRowsInto(m, out[:len(nows)])
}

// CaptureWindow snapshots the current training window. It copies the
// returned design matrix and targets so the background refit shares
// nothing with the caller.
func (p *Predictor) CaptureWindow(now float64) (any, error) {
	if p.window == nil {
		return nil, fmt.Errorf("%w: predictor has no window source", ErrUBF)
	}
	x, y, err := p.window(now)
	if err != nil {
		return nil, err
	}
	if x == nil || x.Rows == 0 || x.Rows != len(y) {
		return nil, fmt.Errorf("%w: window %dx? vs %d targets", ErrUBF, rowsOf(x), len(y))
	}
	yc := make([]float64, len(y))
	copy(yc, y)
	return &Window{X: x.Clone(), Y: yc}, nil
}

func rowsOf(x *mat.Matrix) int {
	if x == nil {
		return 0
	}
	return x.Rows
}

// Retrain fits a fresh network on the captured window with the next
// generation's derived seed and returns the candidate predictor. The
// receiver is untouched — it keeps serving until the caller swaps.
func (p *Predictor) Retrain(window any) (core.LayerPredictor, error) {
	w, ok := window.(*Window)
	if !ok {
		return nil, fmt.Errorf("%w: retrain window is %T, want *ubf.Window", ErrUBF, window)
	}
	cfg := p.cfg
	cfg.Seed = RetrainSeed(p.cfg.Seed, p.gen+1)
	net, err := Train(w.X, w.Y, cfg)
	if err != nil {
		return nil, err
	}
	return &Predictor{
		net:      net,
		features: p.features,
		window:   p.window,
		cfg:      p.cfg, // keep the base seed so the chain stays anchored
		gen:      p.gen + 1,
	}, nil
}

// predictorSnapshot is the stable JSON shape of a predictor snapshot.
type predictorSnapshot struct {
	Kind       string   `json:"kind"`
	Generation uint64   `json:"generation"`
	Network    *Network `json:"network"`
}

// Snapshot serializes the serving network and generation for audit trails
// and the /layers endpoint.
func (p *Predictor) Snapshot() ([]byte, error) {
	return json.Marshal(predictorSnapshot{Kind: "ubf", Generation: p.gen, Network: p.net})
}

package ubf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/stats"
)

// SubsetEvaluator scores a candidate variable subset; lower is better.
// Implementations typically cross-validate a model restricted to the
// subset. An empty subset must be scorable (e.g. predict the mean).
type SubsetEvaluator func(subset []int) (float64, error)

// SelectorConfig controls PWASelect.
type SelectorConfig struct {
	// Iterations is the number of proposal rounds (default 60).
	Iterations int
	// Seed drives the probabilistic proposals.
	Seed int64
	// StartTemp scales the initial acceptance looseness (default 1).
	StartTemp float64
}

func (c SelectorConfig) withDefaults() SelectorConfig {
	if c.Iterations == 0 {
		c.Iterations = 60
	}
	if c.StartTemp == 0 {
		c.StartTemp = 1
	}
	return c
}

// PWASelect implements the Probabilistic Wrapper Approach: a stochastic
// wrapper that interleaves forward-selection moves (add a variable) and
// backward-elimination moves (drop a variable), accepting worsening moves
// with a probability that cools over the run. It returns the best subset
// found and its score.
func PWASelect(numVars int, eval SubsetEvaluator, cfg SelectorConfig) ([]int, float64, error) {
	cfg = cfg.withDefaults()
	if numVars < 1 {
		return nil, 0, fmt.Errorf("%w: %d variables", ErrUBF, numVars)
	}
	if cfg.Iterations < 1 || cfg.StartTemp <= 0 {
		return nil, 0, fmt.Errorf("%w: iterations=%d temp=%g", ErrUBF, cfg.Iterations, cfg.StartTemp)
	}
	g := stats.NewRNG(cfg.Seed)
	current := map[int]bool{}
	// Start from a random half-subset so both move types are available.
	for v := 0; v < numVars; v++ {
		if g.Bernoulli(0.5) {
			current[v] = true
		}
	}
	curScore, err := eval(setToSlice(current))
	if err != nil {
		return nil, 0, fmt.Errorf("evaluate initial subset: %w", err)
	}
	best := setToSlice(current)
	bestScore := curScore

	for it := 0; it < cfg.Iterations; it++ {
		temp := cfg.StartTemp * (1 - float64(it)/float64(cfg.Iterations))
		v := g.Intn(numVars)
		candidate := cloneSet(current)
		if candidate[v] {
			delete(candidate, v) // backward elimination move
		} else {
			candidate[v] = true // forward selection move
		}
		score, err := eval(setToSlice(candidate))
		if err != nil {
			return nil, 0, fmt.Errorf("evaluate subset at iteration %d: %w", it, err)
		}
		accept := score <= curScore
		if !accept && temp > 0 {
			// Worsening moves accepted with cooling probability.
			rel := (score - curScore) / (math.Abs(curScore) + 1e-12)
			accept = g.Bernoulli(math.Exp(-rel / temp))
		}
		if accept {
			current, curScore = candidate, score
		}
		if score < bestScore {
			bestScore = score
			best = setToSlice(candidate)
		}
	}
	return best, bestScore, nil
}

// ForwardSelect greedily adds the variable that most improves the score
// until no addition improves it (classic forward selection).
func ForwardSelect(numVars int, eval SubsetEvaluator) ([]int, float64, error) {
	if numVars < 1 {
		return nil, 0, fmt.Errorf("%w: %d variables", ErrUBF, numVars)
	}
	current := map[int]bool{}
	curScore, err := eval(nil)
	if err != nil {
		return nil, 0, fmt.Errorf("evaluate empty subset: %w", err)
	}
	for {
		bestV, bestScore := -1, curScore
		for v := 0; v < numVars; v++ {
			if current[v] {
				continue
			}
			candidate := cloneSet(current)
			candidate[v] = true
			score, err := eval(setToSlice(candidate))
			if err != nil {
				return nil, 0, err
			}
			if score < bestScore {
				bestV, bestScore = v, score
			}
		}
		if bestV < 0 {
			return setToSlice(current), curScore, nil
		}
		current[bestV] = true
		curScore = bestScore
	}
}

// BackwardEliminate greedily removes the variable whose removal most
// improves the score, starting from the full set (classic backward
// elimination).
func BackwardEliminate(numVars int, eval SubsetEvaluator) ([]int, float64, error) {
	if numVars < 1 {
		return nil, 0, fmt.Errorf("%w: %d variables", ErrUBF, numVars)
	}
	current := map[int]bool{}
	for v := 0; v < numVars; v++ {
		current[v] = true
	}
	curScore, err := eval(setToSlice(current))
	if err != nil {
		return nil, 0, fmt.Errorf("evaluate full subset: %w", err)
	}
	for len(current) > 0 {
		bestV, bestScore := -1, curScore
		for v := range current {
			candidate := cloneSet(current)
			delete(candidate, v)
			score, err := eval(setToSlice(candidate))
			if err != nil {
				return nil, 0, err
			}
			if score < bestScore {
				bestV, bestScore = v, score
			}
		}
		if bestV < 0 {
			break
		}
		delete(current, bestV)
		curScore = bestScore
	}
	return setToSlice(current), curScore, nil
}

// SubsetColumns returns a copy of m restricted to the given columns, in the
// given order. An empty subset yields a single all-ones column (intercept
// only).
func SubsetColumns(m *mat.Matrix, cols []int) (*mat.Matrix, error) {
	if len(cols) == 0 {
		out := mat.New(m.Rows, 1)
		for r := 0; r < m.Rows; r++ {
			out.Set(r, 0, 1)
		}
		return out, nil
	}
	out := mat.New(m.Rows, len(cols))
	for j, c := range cols {
		if c < 0 || c >= m.Cols {
			return nil, fmt.Errorf("%w: column %d out of range", ErrUBF, c)
		}
		for r := 0; r < m.Rows; r++ {
			out.Set(r, j, m.At(r, c))
		}
	}
	return out, nil
}

// LinearCVEvaluator returns a SubsetEvaluator that scores subsets by k-fold
// cross-validated MSE of a ridge linear model on the selected columns —
// the cheap inner model a wrapper needs to stay tractable.
func LinearCVEvaluator(x *mat.Matrix, y []float64, folds int, ridge float64, seed int64) (SubsetEvaluator, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrUBF, x.Rows, len(y))
	}
	if folds < 2 || folds > x.Rows {
		return nil, fmt.Errorf("%w: %d folds for %d rows", ErrUBF, folds, x.Rows)
	}
	// Precompute the fold partition once: all subsets are scored on the
	// same row split, and the wrapper search — which calls the evaluator
	// hundreds of times — never rebuilds the index lists.
	g := stats.NewRNG(seed)
	assign := make([]int, x.Rows)
	for i, p := range g.Perm(x.Rows) {
		assign[p] = i % folds
	}
	trainRowsByFold := make([][]int, folds)
	testRowsByFold := make([][]int, folds)
	for r := 0; r < x.Rows; r++ {
		f := assign[r]
		testRowsByFold[f] = append(testRowsByFold[f], r)
		for o := 0; o < folds; o++ {
			if o != f {
				trainRowsByFold[o] = append(trainRowsByFold[o], r)
			}
		}
	}
	return func(subset []int) (float64, error) {
		sub, err := SubsetColumns(x, subset)
		if err != nil {
			return 0, err
		}
		totalSE, n := 0.0, 0
		for f := 0; f < folds; f++ {
			trainRows, testRows := trainRowsByFold[f], testRowsByFold[f]
			w, err := ridgeFit(sub, y, trainRows, ridge)
			if err != nil {
				return 0, err
			}
			for _, r := range testRows {
				pred := w[0]
				for c := 0; c < sub.Cols; c++ {
					pred += w[c+1] * sub.At(r, c)
				}
				d := pred - y[r]
				totalSE += d * d
				n++
			}
		}
		return totalSE / float64(n), nil
	}, nil
}

// ridgeFit fits [bias, coefs] on the selected rows.
func ridgeFit(x *mat.Matrix, y []float64, rows []int, ridge float64) ([]float64, error) {
	design := mat.New(len(rows), x.Cols+1)
	target := make([]float64, len(rows))
	for i, r := range rows {
		design.Set(i, 0, 1)
		for c := 0; c < x.Cols; c++ {
			design.Set(i, c+1, x.At(r, c))
		}
		target[i] = y[r]
	}
	return mat.SolveLeastSquares(design, target, ridge)
}

func cloneSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

func setToSlice(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

package ubf

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/stats"
)

// trainWindow builds a synthetic regression window y = f(x) + noise.
func trainWindow(t *testing.T, seed int64, n int, shift float64) (*mat.Matrix, []float64) {
	t.Helper()
	g := stats.NewRNG(seed)
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := g.Float64(), g.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Sin(3*a) + 0.5*b + shift + 0.01*g.NormFloat64()
	}
	return x, y
}

func testPredictor(t *testing.T, winShift float64) *Predictor {
	t.Helper()
	x, y := trainWindow(t, 11, 60, 0)
	cfg := TrainConfig{NumKernels: 4, Candidates: 6, Refinements: 3, Seed: 5}
	net, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wx, wy := trainWindow(t, 12, 60, winShift)
	p, err := NewPredictor(net,
		func(now float64) ([]float64, error) { return []float64{0.3, 0.7}, nil },
		func(now float64) (*mat.Matrix, []float64, error) { return wx, wy, nil },
		cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPredictorEvaluate(t *testing.T) {
	p := testPredictor(t, 0)
	s, err := p.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Network().Predict([]float64{0.3, 0.7})
	if err != nil || s != want {
		t.Fatalf("Evaluate = %g, want network prediction %g (err %v)", s, want, err)
	}
}

// TestPredictorRetrainDeterministic: the full capture→retrain path must be
// bit-identical across repetitions and across GOMAXPROCS settings (the
// issue's acceptance criterion for retraining determinism). Snapshots
// compare the serialized networks byte-for-byte.
func TestPredictorRetrainDeterministic(t *testing.T) {
	p := testPredictor(t, 0.5)
	retrainOnce := func() []byte {
		w, err := p.CaptureWindow(100)
		if err != nil {
			t.Fatal(err)
		}
		cand, err := p.Retrain(w)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := cand.(*Predictor).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	ref := retrainOnce()
	for _, procs := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		prev := runtime.GOMAXPROCS(procs)
		got := retrainOnce()
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(ref, got) {
			t.Fatalf("retrain not bit-identical at GOMAXPROCS=%d", procs)
		}
	}
}

// TestPredictorRetrainGenerationChain: generations advance and their seeds
// derive from the base seed, not from each other's mutated copies.
func TestPredictorRetrainGenerationChain(t *testing.T) {
	p := testPredictor(t, 0.5)
	if p.Generation() != 0 {
		t.Fatalf("initial generation = %d", p.Generation())
	}
	w, err := p.CaptureWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := p.Retrain(w)
	if err != nil {
		t.Fatal(err)
	}
	g1 := c1.(*Predictor)
	if g1.Generation() != 1 {
		t.Fatalf("candidate generation = %d, want 1", g1.Generation())
	}
	// Retraining the candidate advances to generation 2 with a distinct
	// derived seed — RetrainSeed must differ across generations.
	if RetrainSeed(5, 1) == RetrainSeed(5, 2) {
		t.Fatal("generation seeds collide")
	}
	c2, err := g1.Retrain(w)
	if err != nil {
		t.Fatal(err)
	}
	if c2.(*Predictor).Generation() != 2 {
		t.Fatalf("second candidate generation = %d, want 2", c2.(*Predictor).Generation())
	}
	// The incumbent is untouched by retraining.
	if p.Generation() != 0 {
		t.Fatal("Retrain mutated the incumbent")
	}
}

// TestPredictorCaptureCopies: mutating the source window after capture
// must not leak into the retrain data.
func TestPredictorCaptureCopies(t *testing.T) {
	x, y := trainWindow(t, 21, 40, 0)
	net, err := Train(x, y, TrainConfig{NumKernels: 3, Candidates: 4, Refinements: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(net,
		func(float64) ([]float64, error) { return []float64{0.5, 0.5}, nil },
		func(float64) (*mat.Matrix, []float64, error) { return x, y, nil },
		TrainConfig{NumKernels: 3, Candidates: 4, Refinements: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wAny, err := p.CaptureWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	w := wAny.(*Window)
	x.Set(0, 0, 999)
	y[0] = 999
	if w.X.At(0, 0) == 999 || w.Y[0] == 999 {
		t.Fatal("captured window aliases the live training data")
	}
}

func TestPredictorWithoutWindowSource(t *testing.T) {
	x, y := trainWindow(t, 31, 40, 0)
	net, err := Train(x, y, TrainConfig{NumKernels: 3, Candidates: 4, Refinements: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(net,
		func(float64) ([]float64, error) { return []float64{0.5, 0.5}, nil }, nil,
		TrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureWindow(0); err == nil {
		t.Fatal("CaptureWindow should fail without a window source")
	}
	if _, err := p.Retrain("bogus"); err == nil {
		t.Fatal("Retrain should reject a foreign window type")
	}
	var _ core.LayerPredictor = p
}

// TestPredictorEvaluateBatch: the fused batch kernel must score every
// time bit-identically to per-time Evaluate — this is the core.BatchPredictor
// contract the runtime's chunk-parity guarantee rests on.
func TestPredictorEvaluateBatch(t *testing.T) {
	x, y := trainWindow(t, 11, 60, 0)
	cfg := TrainConfig{NumKernels: 4, Candidates: 6, Refinements: 3, Seed: 5}
	net, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(net,
		func(now float64) ([]float64, error) {
			return []float64{0.3 + 0.01*now, 0.7 - 0.02*now}, nil
		},
		func(now float64) (*mat.Matrix, []float64, error) { return x, y, nil },
		cfg)
	if err != nil {
		t.Fatal(err)
	}
	nows := []float64{0, 1.5, 3, 7.25, 12}
	out := make([]float64, len(nows))
	if err := p.EvaluateBatch(nows, out); err != nil {
		t.Fatal(err)
	}
	for i, now := range nows {
		want, err := p.Evaluate(now)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("EvaluateBatch[%d] = %g, Evaluate(%g) = %g — want bit-identical", i, out[i], now, want)
		}
	}
	if err := p.EvaluateBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestPredictorEvaluateBatchFeatureError: a failing feature source fails
// the whole batch — the layer above turns that into a full-chunk abstain.
func TestPredictorEvaluateBatchFeatureError(t *testing.T) {
	p := testPredictor(t, 0)
	bad, err := NewPredictor(p.Network(),
		func(now float64) ([]float64, error) {
			if now > 1 {
				return nil, ErrUBF
			}
			return []float64{0.3, 0.7}, nil
		},
		func(now float64) (*mat.Matrix, []float64, error) { return nil, nil, ErrUBF },
		TrainConfig{NumKernels: 4, Candidates: 6, Refinements: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	if err := bad.EvaluateBatch([]float64{0, 0.5, 2}, out); err == nil {
		t.Fatal("batch with a failing feature source did not error")
	}
}

package ubf

import (
	"math"

	"repro/internal/mat"
)

// evalSet is the evaluation-ready form of a kernel bank. Kernel holds its
// parameters the way the paper states them (center, width, mixture,
// direction), which is the right shape for search and serialization but a
// poor one for the inner loops: evaluating K kernels over N rows through
// []Kernel chases K slice headers per row and redoes the 1/(2w²) and u/w
// arithmetic every call. evalSet flattens the bank once — contiguous
// center and direction matrices (directions pre-scaled by 1/w) plus the
// per-kernel Gaussian exponent factor — so batch evaluation is a single
// fused pass per row with no per-call allocation.
type evalSet struct {
	dim, k  int
	centers []float64 // k×dim, row-major
	dirs    []float64 // k×dim, row-major, pre-scaled by 1/w
	inv2w2  []float64 // per kernel: 1/(2w²)
	mix     []float64 // per kernel: m
}

// newEvalSet flattens kernels for evaluation in dimension dim.
func newEvalSet(kernels []Kernel, dim int) *evalSet {
	k := len(kernels)
	es := &evalSet{
		dim:     dim,
		k:       k,
		centers: make([]float64, k*dim),
		dirs:    make([]float64, k*dim),
		inv2w2:  make([]float64, k),
		mix:     make([]float64, k),
	}
	for i, kn := range kernels {
		copy(es.centers[i*dim:], kn.Center)
		invW := 1 / kn.Width
		for j, u := range kn.Dir {
			es.dirs[i*dim+j] = u * invW
		}
		es.inv2w2[i] = 1 / (2 * kn.Width * kn.Width)
		es.mix[i] = kn.Mix
	}
	return es
}

// kernelsInto writes k₁(x)…k_K(x) into dst[:k]. The squared distance and
// the sigmoid projection share one pass over the coordinates.
func (es *evalSet) kernelsInto(x, dst []float64) {
	for i := 0; i < es.k; i++ {
		off := i * es.dim
		d2, z := 0.0, 0.0
		for j, xv := range x {
			d := xv - es.centers[off+j]
			d2 += d * d
			z += es.dirs[off+j] * d
		}
		m := es.mix[i]
		v := 0.0
		if m > 0 {
			v = m * math.Exp(-d2*es.inv2w2[i])
		}
		if m < 1 {
			v += (1 - m) / (1 + math.Exp(-z))
		}
		dst[i] = v
	}
}

// predict returns w₀ + Σᵢ wᵢ·kᵢ(x) without scratch: kernel values are
// folded into the accumulator as they are produced.
func (es *evalSet) predict(x, weights []float64) float64 {
	y := weights[0]
	for i := 0; i < es.k; i++ {
		off := i * es.dim
		d2, z := 0.0, 0.0
		for j, xv := range x {
			d := xv - es.centers[off+j]
			d2 += d * d
			z += es.dirs[off+j] * d
		}
		m := es.mix[i]
		v := 0.0
		if m > 0 {
			v = m * math.Exp(-d2*es.inv2w2[i])
		}
		if m < 1 {
			v += (1 - m) / (1 + math.Exp(-z))
		}
		y += weights[i+1] * v
	}
	return y
}

// designInto fills dst with the design-matrix rows [1, k₁(x_r), …, k_K(x_r)]
// for every row r of x; dst must have length x.Rows·(k+1).
func (es *evalSet) designInto(x *mat.Matrix, dst []float64) {
	stride := es.k + 1
	for r := 0; r < x.Rows; r++ {
		row := dst[r*stride : (r+1)*stride]
		row[0] = 1
		es.kernelsInto(x.RowView(r), row[1:])
	}
}

// predictInto fills out[r] with the network output on row r of x.
func (es *evalSet) predictInto(x *mat.Matrix, weights, out []float64) {
	for r := 0; r < x.Rows; r++ {
		out[r] = es.predict(x.RowView(r), weights)
	}
}

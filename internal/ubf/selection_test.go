package ubf

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/stats"
)

// selectionData builds a regression problem on six variables where only a
// *pair* of variables (0 and 1) is informative — individually each looks
// useless, which is exactly the trap greedy forward selection falls into.
// Variables 2–5 are pure noise.
func selectionData(g *stats.RNG, n int) (*mat.Matrix, []float64) {
	x := mat.New(n, 6)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := g.NormFloat64() * 5 // large common component
		s := g.NormFloat64()     // the actual signal
		x.Set(i, 0, a)
		x.Set(i, 1, s-a)
		for c := 2; c < 6; c++ {
			x.Set(i, c, g.NormFloat64())
		}
		y[i] = s + g.NormFloat64()*0.05
	}
	return x, y
}

func mustEval(t *testing.T, x *mat.Matrix, y []float64) SubsetEvaluator {
	t.Helper()
	eval, err := LinearCVEvaluator(x, y, 5, 1e-6, 42)
	if err != nil {
		t.Fatal(err)
	}
	return eval
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestLinearCVEvaluatorOrdersSubsets(t *testing.T) {
	g := stats.NewRNG(1)
	x, y := selectionData(g, 200)
	eval := mustEval(t, x, y)
	full, err := eval([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if full >= empty {
		t.Fatalf("informative pair (%g) not better than empty (%g)", full, empty)
	}
}

func TestPWAFindsInteractingPair(t *testing.T) {
	g := stats.NewRNG(2)
	x, y := selectionData(g, 200)
	eval := mustEval(t, x, y)
	subset, score, err := PWASelect(6, eval, SelectorConfig{Iterations: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(subset, 0) || !contains(subset, 1) {
		t.Fatalf("PWA subset %v missing the interacting pair (score %g)", subset, score)
	}
}

// TestPWAMatchesOrBeatsGreedyStrategies checks the Sect. 3.2 claim (E8) in
// its testable form: the probabilistic wrapper is never worse than greedy
// forward selection or backward elimination on the same evaluator (the
// full measured comparison is reported by the E8 experiment harness).
func TestPWAMatchesOrBeatsGreedyStrategies(t *testing.T) {
	g := stats.NewRNG(4)
	x, y := selectionData(g, 200)
	eval := mustEval(t, x, y)
	_, pwaScore, err := PWASelect(6, eval, SelectorConfig{Iterations: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fwdSubset, fwdScore, err := ForwardSelect(6, eval)
	if err != nil {
		t.Fatal(err)
	}
	if pwaScore > fwdScore {
		t.Fatalf("PWA (%g) worse than forward selection (%g, subset %v)",
			pwaScore, fwdScore, fwdSubset)
	}
	bwdSubset, bwdScore, err := BackwardEliminate(6, eval)
	if err != nil {
		t.Fatal(err)
	}
	if pwaScore > bwdScore {
		t.Fatalf("PWA (%g) worse than backward elimination (%g, subset %v)",
			pwaScore, bwdScore, bwdSubset)
	}
}

func TestBackwardEliminationDropsNoise(t *testing.T) {
	g := stats.NewRNG(6)
	x, y := selectionData(g, 200)
	eval := mustEval(t, x, y)
	subset, _, err := BackwardEliminate(6, eval)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(subset, 0) || !contains(subset, 1) {
		t.Fatalf("backward elimination dropped the signal pair: %v", subset)
	}
	if len(subset) > 4 {
		t.Fatalf("backward elimination kept too much noise: %v", subset)
	}
}

func TestSelectorValidation(t *testing.T) {
	eval := func([]int) (float64, error) { return 0, nil }
	if _, _, err := PWASelect(0, eval, SelectorConfig{}); err == nil {
		t.Fatal("zero vars accepted")
	}
	if _, _, err := PWASelect(3, eval, SelectorConfig{Iterations: -1}); err == nil {
		t.Fatal("negative iterations accepted")
	}
	if _, _, err := ForwardSelect(0, eval); err == nil {
		t.Fatal("forward zero vars accepted")
	}
	if _, _, err := BackwardEliminate(0, eval); err == nil {
		t.Fatal("backward zero vars accepted")
	}
}

func TestSubsetColumns(t *testing.T) {
	m, _ := mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	sub, err := SubsetColumns(m, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0) != 3 || sub.At(0, 1) != 1 || sub.At(1, 0) != 6 {
		t.Fatalf("subset = %v", sub)
	}
	empty, err := SubsetColumns(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Cols != 1 || empty.At(0, 0) != 1 {
		t.Fatal("empty subset should be an intercept column")
	}
	if _, err := SubsetColumns(m, []int{7}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestLinearCVEvaluatorValidation(t *testing.T) {
	x := mat.New(4, 2)
	if _, err := LinearCVEvaluator(x, []float64{1, 2}, 2, 0, 1); err == nil {
		t.Fatal("mismatched targets accepted")
	}
	if _, err := LinearCVEvaluator(x, []float64{1, 2, 3, 4}, 1, 0, 1); err == nil {
		t.Fatal("single fold accepted")
	}
	if _, err := LinearCVEvaluator(x, []float64{1, 2, 3, 4}, 9, 0, 1); err == nil {
		t.Fatal("folds > rows accepted")
	}
}

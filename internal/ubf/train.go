package ubf

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/stats"
)

// TrainConfig controls UBF training.
type TrainConfig struct {
	// NumKernels is the number of basis functions (default 8).
	NumKernels int
	// Candidates is the number of random kernel configurations tried
	// (default 20).
	Candidates int
	// Refinements is the number of local perturbation rounds applied to
	// the best candidate (default 10).
	Refinements int
	// Ridge is the output-weight regularization (default 1e-4).
	Ridge float64
	// Seed drives all randomness.
	Seed int64
	// PureRBF forces Mix = 1 (plain radial basis functions) — the
	// ablation baseline for the mixed-kernel design (DESIGN.md).
	PureRBF bool
}

// withDefaults fills zero fields.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.NumKernels == 0 {
		c.NumKernels = 8
	}
	if c.Candidates == 0 {
		c.Candidates = 20
	}
	if c.Refinements == 0 {
		c.Refinements = 10
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-4
	}
	return c
}

// validate rejects unusable configurations.
func (c TrainConfig) validate() error {
	if c.NumKernels < 1 || c.Candidates < 1 || c.Refinements < 0 {
		return fmt.Errorf("%w: kernels=%d candidates=%d refinements=%d",
			ErrUBF, c.NumKernels, c.Candidates, c.Refinements)
	}
	if c.Ridge < 0 || math.IsNaN(c.Ridge) {
		return fmt.Errorf("%w: ridge %g", ErrUBF, c.Ridge)
	}
	return nil
}

// Train fits a UBF network to the regression targets y (one per row of x).
// Kernel parameters are found by randomized search (candidates) followed by
// local refinement; output weights by ridge least squares at every step.
func Train(x *mat.Matrix, y []float64, cfg TrainConfig) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrUBF, x.Rows, len(y))
	}
	if x.Rows < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 training rows", ErrUBF)
	}
	g := stats.NewRNG(cfg.Seed)
	scale := widthScale(x)

	// Random candidates are independent, so they follow the repo's parallel
	// determinism contract: one RNG stream per candidate, split in index
	// order before the fan-out; each worker writes only its own slot; the
	// best is chosen by a fixed-order scan. The result is bit-identical at
	// any worker count.
	streams := make([]*stats.RNG, cfg.Candidates)
	for c := range streams {
		streams[c] = g.Split(int64(c))
	}
	nets := make([]*Network, cfg.Candidates)
	errs := make([]float64, cfg.Candidates)
	par.For(cfg.Candidates, func(c int) {
		nets[c], errs[c] = tryKernels(randomKernels(cfg, x, scale, streams[c]), x, y, cfg.Ridge)
	})
	var best *Network
	bestErr := math.Inf(1)
	for c := range nets {
		if nets[c] != nil && errs[c] < bestErr {
			best, bestErr = nets[c], errs[c]
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no candidate configuration was solvable", ErrUBF)
	}
	// Refinement is inherently serial — each round perturbs the incumbent —
	// but every round draws from its own pre-split stream.
	for r := 0; r < cfg.Refinements; r++ {
		rg := g.Split(int64(cfg.Candidates + r))
		if net, e := tryKernels(perturbKernels(best.Kernels, scale, cfg, rg), x, y, cfg.Ridge); net != nil && e < bestErr {
			best, bestErr = net, e
		}
	}
	return best, nil
}

// tryKernels fits output weights for a kernel configuration and returns the
// network with its training MSE, or (nil, +Inf) if the fit is unsolvable.
func tryKernels(kernels []Kernel, x *mat.Matrix, y []float64, ridge float64) (*Network, float64) {
	net, err := fitWeights(kernels, x, y, ridge)
	if err != nil {
		return nil, math.Inf(1)
	}
	pred, err := net.PredictRows(x)
	if err != nil {
		return nil, math.Inf(1)
	}
	return net, mse(pred, y)
}

// fitWeights solves for output weights with the kernels fixed. The design
// matrix is built through the flattened kernel bank, which the returned
// network keeps for its own evaluation paths.
func fitWeights(kernels []Kernel, x *mat.Matrix, y []float64, ridge float64) (*Network, error) {
	es := newEvalSet(kernels, x.Cols)
	phi := mat.New(x.Rows, len(kernels)+1)
	es.designInto(x, phi.Data)
	w, err := mat.SolveLeastSquares(phi, y, ridge)
	if err != nil {
		return nil, err
	}
	return &Network{Kernels: kernels, Weights: w, dim: x.Cols, eval: es}, nil
}

// widthScale estimates a characteristic length scale of the data: the mean
// per-column standard deviation (≥ a small floor).
func widthScale(x *mat.Matrix) float64 {
	total := 0.0
	for c := 0; c < x.Cols; c++ {
		sd := stats.StdDev(x.Col(c))
		if math.IsNaN(sd) {
			sd = 0
		}
		total += sd
	}
	scale := total / float64(x.Cols)
	if scale < 1e-3 {
		scale = 1e-3
	}
	return scale
}

// randomKernels draws a kernel configuration: centers at random training
// rows, widths around the data scale, random mixtures and directions.
func randomKernels(cfg TrainConfig, x *mat.Matrix, scale float64, g *stats.RNG) []Kernel {
	kernels := make([]Kernel, cfg.NumKernels)
	for i := range kernels {
		center := x.Row(g.Intn(x.Rows))
		kernels[i] = Kernel{
			Center: center,
			Width:  scale * math.Exp(g.NormFloat64()*0.7),
			Mix:    mixFor(cfg, g.Float64()),
			Dir:    randomUnit(x.Cols, g),
		}
	}
	return kernels
}

// perturbKernels jitters a configuration for local refinement.
func perturbKernels(base []Kernel, scale float64, cfg TrainConfig, g *stats.RNG) []Kernel {
	out := make([]Kernel, len(base))
	for i, k := range base {
		c := mat.CloneVec(k.Center)
		for j := range c {
			c[j] += g.NormFloat64() * scale * 0.2
		}
		w := k.Width * math.Exp(g.NormFloat64()*0.2)
		m := k.Mix + g.NormFloat64()*0.1
		if m < 0 {
			m = 0
		}
		if m > 1 {
			m = 1
		}
		out[i] = Kernel{
			Center: c,
			Width:  w,
			Mix:    mixFor(cfg, m),
			Dir:    mat.CloneVec(k.Dir),
		}
	}
	return out
}

// mixFor clamps the mixture to 1 when the pure-RBF ablation is requested.
func mixFor(cfg TrainConfig, m float64) float64 {
	if cfg.PureRBF {
		return 1
	}
	return m
}

// randomUnit draws a uniformly random unit vector.
func randomUnit(dim int, g *stats.RNG) []float64 {
	v := make([]float64, dim)
	for {
		for i := range v {
			v[i] = g.NormFloat64()
		}
		if n := mat.Norm2(v); n > 1e-12 {
			return mat.ScaleVec(v, 1/n)
		}
	}
}

package ubf

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/stats"
)

// TrainConfig controls UBF training.
type TrainConfig struct {
	// NumKernels is the number of basis functions (default 8).
	NumKernels int
	// Candidates is the number of random kernel configurations tried
	// (default 20).
	Candidates int
	// Refinements is the number of local perturbation rounds applied to
	// the best candidate (default 10).
	Refinements int
	// Ridge is the output-weight regularization (default 1e-4).
	Ridge float64
	// Seed drives all randomness.
	Seed int64
	// PureRBF forces Mix = 1 (plain radial basis functions) — the
	// ablation baseline for the mixed-kernel design (DESIGN.md).
	PureRBF bool
}

// withDefaults fills zero fields.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.NumKernels == 0 {
		c.NumKernels = 8
	}
	if c.Candidates == 0 {
		c.Candidates = 20
	}
	if c.Refinements == 0 {
		c.Refinements = 10
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-4
	}
	return c
}

// validate rejects unusable configurations.
func (c TrainConfig) validate() error {
	if c.NumKernels < 1 || c.Candidates < 1 || c.Refinements < 0 {
		return fmt.Errorf("%w: kernels=%d candidates=%d refinements=%d",
			ErrUBF, c.NumKernels, c.Candidates, c.Refinements)
	}
	if c.Ridge < 0 || math.IsNaN(c.Ridge) {
		return fmt.Errorf("%w: ridge %g", ErrUBF, c.Ridge)
	}
	return nil
}

// Train fits a UBF network to the regression targets y (one per row of x).
// Kernel parameters are found by randomized search (candidates) followed by
// local refinement; output weights by ridge least squares at every step.
func Train(x *mat.Matrix, y []float64, cfg TrainConfig) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrUBF, x.Rows, len(y))
	}
	if x.Rows < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 training rows", ErrUBF)
	}
	g := stats.NewRNG(cfg.Seed)
	scale := widthScale(x)

	var best *Network
	bestErr := math.Inf(1)
	try := func(kernels []Kernel) {
		net, err := fitWeights(kernels, x, y, cfg.Ridge)
		if err != nil {
			return
		}
		pred, err := net.PredictRows(x)
		if err != nil {
			return
		}
		if e := mse(pred, y); e < bestErr {
			bestErr, best = e, net
		}
	}
	for c := 0; c < cfg.Candidates; c++ {
		try(randomKernels(cfg, x, scale, g))
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no candidate configuration was solvable", ErrUBF)
	}
	for r := 0; r < cfg.Refinements; r++ {
		try(perturbKernels(best.Kernels, scale, cfg, g))
	}
	return best, nil
}

// fitWeights solves for output weights with the kernels fixed.
func fitWeights(kernels []Kernel, x *mat.Matrix, y []float64, ridge float64) (*Network, error) {
	phi := designMatrix(kernels, x)
	w, err := mat.SolveLeastSquares(phi, y, ridge)
	if err != nil {
		return nil, err
	}
	return &Network{Kernels: kernels, Weights: w, dim: x.Cols}, nil
}

// widthScale estimates a characteristic length scale of the data: the mean
// per-column standard deviation (≥ a small floor).
func widthScale(x *mat.Matrix) float64 {
	total := 0.0
	for c := 0; c < x.Cols; c++ {
		sd := stats.StdDev(x.Col(c))
		if math.IsNaN(sd) {
			sd = 0
		}
		total += sd
	}
	scale := total / float64(x.Cols)
	if scale < 1e-3 {
		scale = 1e-3
	}
	return scale
}

// randomKernels draws a kernel configuration: centers at random training
// rows, widths around the data scale, random mixtures and directions.
func randomKernels(cfg TrainConfig, x *mat.Matrix, scale float64, g *stats.RNG) []Kernel {
	kernels := make([]Kernel, cfg.NumKernels)
	for i := range kernels {
		center := x.Row(g.Intn(x.Rows))
		kernels[i] = Kernel{
			Center: center,
			Width:  scale * math.Exp(g.NormFloat64()*0.7),
			Mix:    mixFor(cfg, g.Float64()),
			Dir:    randomUnit(x.Cols, g),
		}
	}
	return kernels
}

// perturbKernels jitters a configuration for local refinement.
func perturbKernels(base []Kernel, scale float64, cfg TrainConfig, g *stats.RNG) []Kernel {
	out := make([]Kernel, len(base))
	for i, k := range base {
		c := mat.CloneVec(k.Center)
		for j := range c {
			c[j] += g.NormFloat64() * scale * 0.2
		}
		w := k.Width * math.Exp(g.NormFloat64()*0.2)
		m := k.Mix + g.NormFloat64()*0.1
		if m < 0 {
			m = 0
		}
		if m > 1 {
			m = 1
		}
		out[i] = Kernel{
			Center: c,
			Width:  w,
			Mix:    mixFor(cfg, m),
			Dir:    mat.CloneVec(k.Dir),
		}
	}
	return out
}

// mixFor clamps the mixture to 1 when the pure-RBF ablation is requested.
func mixFor(cfg TrainConfig, m float64) float64 {
	if cfg.PureRBF {
		return 1
	}
	return m
}

// randomUnit draws a uniformly random unit vector.
func randomUnit(dim int, g *stats.RNG) []float64 {
	v := make([]float64, dim)
	for {
		for i := range v {
			v[i] = g.NormFloat64()
		}
		if n := mat.Norm2(v); n > 1e-12 {
			return mat.ScaleVec(v, 1/n)
		}
	}
}

package ubf

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/stats"
)

func unitDir(dim int) []float64 {
	d := make([]float64, dim)
	d[0] = 1
	return d
}

func TestGaussianKernelPeaksAtCenter(t *testing.T) {
	k := Kernel{Center: []float64{1, 2}, Width: 0.5, Mix: 1, Dir: unitDir(2)}
	if got := k.Eval([]float64{1, 2}); got != 1 {
		t.Fatalf("γ(center) = %g", got)
	}
	near := k.Eval([]float64{1.1, 2})
	far := k.Eval([]float64{3, 2})
	if !(near < 1 && far < near) {
		t.Fatalf("γ not decaying: near=%g far=%g", near, far)
	}
}

func TestSigmoidKernelSteps(t *testing.T) {
	k := Kernel{Center: []float64{0}, Width: 1, Mix: 0, Dir: []float64{1}}
	if got := k.Eval([]float64{0}); got != 0.5 {
		t.Fatalf("δ(center) = %g", got)
	}
	lo := k.Eval([]float64{-10})
	hi := k.Eval([]float64{10})
	if lo > 0.01 || hi < 0.99 {
		t.Fatalf("δ step = %g…%g", lo, hi)
	}
}

func TestMixedKernelInterpolates(t *testing.T) {
	x := []float64{0.3}
	g := Kernel{Center: []float64{0}, Width: 1, Mix: 1, Dir: []float64{1}}
	s := Kernel{Center: []float64{0}, Width: 1, Mix: 0, Dir: []float64{1}}
	m := Kernel{Center: []float64{0}, Width: 1, Mix: 0.4, Dir: []float64{1}}
	want := 0.4*g.Eval(x) + 0.6*s.Eval(x)
	if got := m.Eval(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mixture = %g, want %g", got, want)
	}
}

func TestKernelValidate(t *testing.T) {
	good := Kernel{Center: []float64{0}, Width: 1, Mix: 0.5, Dir: []float64{1}}
	if err := good.Validate(1); err != nil {
		t.Fatal(err)
	}
	bad := []Kernel{
		{Center: []float64{0, 0}, Width: 1, Mix: 0.5, Dir: []float64{1, 0}},
		{Center: []float64{0}, Width: 0, Mix: 0.5, Dir: []float64{1}},
		{Center: []float64{0}, Width: 1, Mix: -0.1, Dir: []float64{1}},
		{Center: []float64{0}, Width: 1, Mix: 1.1, Dir: []float64{1}},
	}
	for i, k := range bad {
		dim := 1
		if err := k.Validate(dim); err == nil {
			t.Fatalf("bad kernel %d accepted", i)
		}
	}
}

func TestNetworkPredictDims(t *testing.T) {
	n := &Network{
		Kernels: []Kernel{{Center: []float64{0}, Width: 1, Mix: 1, Dir: []float64{1}}},
		Weights: []float64{0.5, 2},
		dim:     1,
	}
	y, err := n.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if y != 2.5 { // bias 0.5 + 2·γ(0)=2
		t.Fatalf("Predict = %g", y)
	}
	if _, err := n.Predict([]float64{0, 1}); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := n.PredictRows(mat.New(2, 3)); err == nil {
		t.Fatal("wrong matrix dim accepted")
	}
}

// trainData builds (x, y) rows sampling f over [-3, 3].
func trainData(f func(float64) float64, n int, g *stats.RNG) (*mat.Matrix, []float64) {
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := -3 + 6*g.Float64()
		x.Set(i, 0, v)
		y[i] = f(v)
	}
	return x, y
}

func TestTrainApproximatesSmoothFunction(t *testing.T) {
	g := stats.NewRNG(1)
	f := func(v float64) float64 { return math.Sin(v) }
	x, y := trainData(f, 150, g)
	net, err := Train(x, y, TrainConfig{NumKernels: 10, Candidates: 15, Refinements: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against predicting the mean (variance of y).
	pred, err := net.PredictRows(x)
	if err != nil {
		t.Fatal(err)
	}
	baseline := stats.Variance(y)
	if got := mse(pred, y); got > baseline*0.1 {
		t.Fatalf("UBF MSE %g vs mean-baseline %g", got, baseline)
	}
}

// TestMixedKernelsBeatPureRBFOnStep exercises the paper's motivation for
// UBF over RBF: a step-shaped target is natural for the sigmoid component,
// so mixed kernels should fit it at least as well as pure Gaussians.
func TestMixedKernelsBeatPureRBFOnStep(t *testing.T) {
	g := stats.NewRNG(3)
	f := func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	}
	x, y := trainData(f, 200, g)
	// The seed pins a draw where the advantage is clear-cut; the property
	// holds for most seeds but randomized search keeps it from being
	// universal at this small budget.
	cfg := TrainConfig{NumKernels: 4, Candidates: 25, Refinements: 15, Seed: 7}
	mixed, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pure := cfg
	pure.PureRBF = true
	rbf, err := Train(x, y, pure)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mixed.PredictRows(x)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := rbf.PredictRows(x)
	if err != nil {
		t.Fatal(err)
	}
	if mse(mp, y) > mse(rp, y)*1.05 {
		t.Fatalf("mixed MSE %g worse than pure RBF %g on step target", mse(mp, y), mse(rp, y))
	}
	// The pure-RBF ablation must really be pure.
	for _, k := range rbf.Kernels {
		if k.Mix != 1 {
			t.Fatalf("PureRBF produced mixture %g", k.Mix)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	x := mat.New(5, 1)
	y := []float64{1, 2, 3, 4, 5}
	if _, err := Train(x, y[:3], TrainConfig{}); err == nil {
		t.Fatal("mismatched rows accepted")
	}
	if _, err := Train(mat.New(1, 1), []float64{1}, TrainConfig{}); err == nil {
		t.Fatal("single row accepted")
	}
	if _, err := Train(x, y, TrainConfig{NumKernels: -1}); err == nil {
		t.Fatal("negative kernels accepted")
	}
	if _, err := Train(x, y, TrainConfig{Ridge: -1}); err == nil {
		t.Fatal("negative ridge accepted")
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	g := stats.NewRNG(5)
	x, y := trainData(math.Tanh, 60, g)
	cfg := TrainConfig{NumKernels: 5, Candidates: 5, Refinements: 3, Seed: 11}
	a, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predict([]float64{0.5})
	pb, _ := b.Predict([]float64{0.5})
	if pa != pb {
		t.Fatalf("same seed, different networks: %g vs %g", pa, pb)
	}
}

package ubf

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestNetworkSerializationRoundTrip(t *testing.T) {
	g := stats.NewRNG(61)
	x, y := trainData(math.Sin, 80, g)
	net, err := Train(x, y, TrainConfig{NumKernels: 5, Candidates: 5, Refinements: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{-2, -0.5, 0, 1.3, 2.9} {
		want, err := net.Predict([]float64{probe})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Predict([]float64{probe})
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("prediction drift at %g: %g vs %g", probe, got, want)
		}
	}
	if loaded.Dim() != 1 {
		t.Fatalf("Dim = %d", loaded.Dim())
	}
}

func TestNetworkUnmarshalValidation(t *testing.T) {
	good := `{"dim":1,"kernels":[{"Center":[0],"Width":1,"Mix":0.5,"Dir":[1]}],"weights":[0.1,0.2]}`
	var ok Network
	if err := json.Unmarshal([]byte(good), &ok); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"zero dim":         `{"dim":0,"kernels":[],"weights":[0]}`,
		"weight mismatch":  `{"dim":1,"kernels":[],"weights":[0,1]}`,
		"bad kernel width": `{"dim":1,"kernels":[{"Center":[0],"Width":0,"Mix":0.5,"Dir":[1]}],"weights":[0,1]}`,
		"kernel dim":       `{"dim":2,"kernels":[{"Center":[0],"Width":1,"Mix":0.5,"Dir":[1]}],"weights":[0,1]}`,
		"garbage":          `{`,
	}
	for name, in := range cases {
		var n Network
		if err := json.Unmarshal([]byte(in), &n); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := LoadNetwork(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

// Package ubf implements the paper's Universal Basis Functions failure
// predictor (Sect. 3.2): function approximation over monitored system
// variables with mixed kernels
//
//	k_i(x) = m_i·γ(x; λγ_i) + (1−m_i)·δ(x; λδ_i)        (Eq. 1)
//
// where γ is a Gaussian and δ a sigmoid kernel. By optimizing the mixture
// weight m_i along with the kernel parameters, a UBF network models peaked,
// stepping, or mixed behaviour in different regions of the input space.
// Output-layer weights are fitted by regularized least squares; kernel
// parameters by randomized search with local refinement.
//
// The package also provides the Probabilistic Wrapper Approach (PWA) for
// variable selection, combining forward selection and backward elimination
// in a probabilistic framework, plus both classic strategies for the E8
// comparison experiment.
package ubf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrUBF is wrapped by all package errors.
var ErrUBF = errors.New("ubf: invalid operation")

// Kernel is one universal basis function (Eq. 1): a convex mixture of a
// Gaussian kernel γ and a sigmoid kernel δ sharing the center.
type Kernel struct {
	Center []float64 // kernel location λ.c
	Width  float64   // length scale λ.w > 0
	Mix    float64   // m ∈ [0,1]: 1 = pure Gaussian, 0 = pure sigmoid
	Dir    []float64 // sigmoid direction (unit vector)
}

// Validate checks the kernel parameters.
func (k Kernel) Validate(dim int) error {
	if len(k.Center) != dim || len(k.Dir) != dim {
		return fmt.Errorf("%w: kernel dims center=%d dir=%d, want %d", ErrUBF, len(k.Center), len(k.Dir), dim)
	}
	if k.Width <= 0 || math.IsNaN(k.Width) {
		return fmt.Errorf("%w: kernel width %g", ErrUBF, k.Width)
	}
	if k.Mix < 0 || k.Mix > 1 || math.IsNaN(k.Mix) {
		return fmt.Errorf("%w: mixture weight %g", ErrUBF, k.Mix)
	}
	return nil
}

// Eval returns k(x) = m·γ(x) + (1−m)·δ(x).
func (k Kernel) Eval(x []float64) float64 {
	g := 0.0
	if k.Mix > 0 {
		g = k.gaussian(x)
	}
	s := 0.0
	if k.Mix < 1 {
		s = k.sigmoid(x)
	}
	return k.Mix*g + (1-k.Mix)*s
}

// gaussian is γ(x) = exp(−‖x−c‖² / (2w²)).
func (k Kernel) gaussian(x []float64) float64 {
	d2 := 0.0
	for i, c := range k.Center {
		d := x[i] - c
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * k.Width * k.Width))
}

// sigmoid is δ(x) = 1 / (1 + exp(−u·(x−c)/w)).
func (k Kernel) sigmoid(x []float64) float64 {
	z := 0.0
	for i, c := range k.Center {
		z += k.Dir[i] * (x[i] - c)
	}
	return 1 / (1 + math.Exp(-z/k.Width))
}

// Network is a trained UBF network: f(x) = w₀ + Σᵢ wᵢ·kᵢ(x).
type Network struct {
	Kernels []Kernel
	Weights []float64 // len(Kernels)+1; Weights[0] is the bias
	dim     int
}

// Dim returns the expected input dimension.
func (n *Network) Dim() int { return n.dim }

// Predict evaluates the network at x.
func (n *Network) Predict(x []float64) (float64, error) {
	if len(x) != n.dim {
		return 0, fmt.Errorf("%w: input dim %d, want %d", ErrUBF, len(x), n.dim)
	}
	y := n.Weights[0]
	for i, k := range n.Kernels {
		y += n.Weights[i+1] * k.Eval(x)
	}
	return y, nil
}

// PredictRows evaluates the network on every row of m.
func (n *Network) PredictRows(m *mat.Matrix) ([]float64, error) {
	if m.Cols != n.dim {
		return nil, fmt.Errorf("%w: matrix has %d columns, want %d", ErrUBF, m.Cols, n.dim)
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		y, err := n.Predict(m.Row(r))
		if err != nil {
			return nil, err
		}
		out[r] = y
	}
	return out, nil
}

// designMatrix builds Φ: rows [1, k₁(x), …, k_K(x)].
func designMatrix(kernels []Kernel, x *mat.Matrix) *mat.Matrix {
	phi := mat.New(x.Rows, len(kernels)+1)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		phi.Set(r, 0, 1)
		for i, k := range kernels {
			phi.Set(r, i+1, k.Eval(row))
		}
	}
	return phi
}

// mse returns the mean squared error of predictions vs targets.
func mse(pred, y []float64) float64 {
	s := 0.0
	for i, p := range pred {
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(y))
}

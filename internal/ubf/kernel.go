// Package ubf implements the paper's Universal Basis Functions failure
// predictor (Sect. 3.2): function approximation over monitored system
// variables with mixed kernels
//
//	k_i(x) = m_i·γ(x; λγ_i) + (1−m_i)·δ(x; λδ_i)        (Eq. 1)
//
// where γ is a Gaussian and δ a sigmoid kernel. By optimizing the mixture
// weight m_i along with the kernel parameters, a UBF network models peaked,
// stepping, or mixed behaviour in different regions of the input space.
// Output-layer weights are fitted by regularized least squares; kernel
// parameters by randomized search with local refinement.
//
// The package also provides the Probabilistic Wrapper Approach (PWA) for
// variable selection, combining forward selection and backward elimination
// in a probabilistic framework, plus both classic strategies for the E8
// comparison experiment.
package ubf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrUBF is wrapped by all package errors.
var ErrUBF = errors.New("ubf: invalid operation")

// Kernel is one universal basis function (Eq. 1): a convex mixture of a
// Gaussian kernel γ and a sigmoid kernel δ sharing the center.
type Kernel struct {
	Center []float64 // kernel location λ.c
	Width  float64   // length scale λ.w > 0
	Mix    float64   // m ∈ [0,1]: 1 = pure Gaussian, 0 = pure sigmoid
	Dir    []float64 // sigmoid direction (unit vector)
}

// Validate checks the kernel parameters.
func (k Kernel) Validate(dim int) error {
	if len(k.Center) != dim || len(k.Dir) != dim {
		return fmt.Errorf("%w: kernel dims center=%d dir=%d, want %d", ErrUBF, len(k.Center), len(k.Dir), dim)
	}
	if k.Width <= 0 || math.IsNaN(k.Width) {
		return fmt.Errorf("%w: kernel width %g", ErrUBF, k.Width)
	}
	if k.Mix < 0 || k.Mix > 1 || math.IsNaN(k.Mix) {
		return fmt.Errorf("%w: mixture weight %g", ErrUBF, k.Mix)
	}
	return nil
}

// Eval returns k(x) = m·γ(x) + (1−m)·δ(x).
func (k Kernel) Eval(x []float64) float64 {
	g := 0.0
	if k.Mix > 0 {
		g = k.gaussian(x)
	}
	s := 0.0
	if k.Mix < 1 {
		s = k.sigmoid(x)
	}
	return k.Mix*g + (1-k.Mix)*s
}

// gaussian is γ(x) = exp(−‖x−c‖² / (2w²)).
func (k Kernel) gaussian(x []float64) float64 {
	d2 := 0.0
	for i, c := range k.Center {
		d := x[i] - c
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * k.Width * k.Width))
}

// sigmoid is δ(x) = 1 / (1 + exp(−u·(x−c)/w)).
func (k Kernel) sigmoid(x []float64) float64 {
	z := 0.0
	for i, c := range k.Center {
		z += k.Dir[i] * (x[i] - c)
	}
	return 1 / (1 + math.Exp(-z/k.Width))
}

// Network is a trained UBF network: f(x) = w₀ + Σᵢ wᵢ·kᵢ(x).
type Network struct {
	Kernels []Kernel
	Weights []float64 // len(Kernels)+1; Weights[0] is the bias
	dim     int
	// eval is the flattened kernel bank every evaluation path runs through.
	// Training and deserialization build it eagerly; the lazy fallback in
	// flat() only serves in-package literals and is not safe for concurrent
	// first use.
	eval *evalSet
}

// Dim returns the expected input dimension.
func (n *Network) Dim() int { return n.dim }

// flat returns the flattened kernel bank, building it on first use.
func (n *Network) flat() *evalSet {
	if n.eval == nil {
		n.eval = newEvalSet(n.Kernels, n.dim)
	}
	return n.eval
}

// Predict evaluates the network at x.
func (n *Network) Predict(x []float64) (float64, error) {
	if len(x) != n.dim {
		return 0, fmt.Errorf("%w: input dim %d, want %d", ErrUBF, len(x), n.dim)
	}
	return n.flat().predict(x, n.Weights), nil
}

// PredictRows evaluates the network on every row of m.
func (n *Network) PredictRows(m *mat.Matrix) ([]float64, error) {
	out := make([]float64, m.Rows)
	if err := n.PredictRowsInto(m, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictRowsInto evaluates the network on every row of m into out
// (len m.Rows) without allocating.
func (n *Network) PredictRowsInto(m *mat.Matrix, out []float64) error {
	if m.Cols != n.dim {
		return fmt.Errorf("%w: matrix has %d columns, want %d", ErrUBF, m.Cols, n.dim)
	}
	if len(out) != m.Rows {
		return fmt.Errorf("%w: out has %d slots for %d rows", ErrUBF, len(out), m.Rows)
	}
	n.flat().predictInto(m, n.Weights, out)
	return nil
}

// EvalAll fills dst with the design-matrix rows [1, k₁(x_r), …, k_K(x_r)]
// for every row r of m. dst must have length m.Rows·(len(Kernels)+1). This
// is the batched kernel under training, cross-validation, and scoring; it
// performs no allocation.
func (n *Network) EvalAll(m *mat.Matrix, dst []float64) error {
	if m.Cols != n.dim {
		return fmt.Errorf("%w: matrix has %d columns, want %d", ErrUBF, m.Cols, n.dim)
	}
	if want := m.Rows * (len(n.Kernels) + 1); len(dst) != want {
		return fmt.Errorf("%w: dst has %d slots, want %d", ErrUBF, len(dst), want)
	}
	n.flat().designInto(m, dst)
	return nil
}

// mse returns the mean squared error of predictions vs targets.
func mse(pred, y []float64) float64 {
	s := 0.0
	for i, p := range pred {
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(y))
}

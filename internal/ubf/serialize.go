package ubf

import (
	"encoding/json"
	"fmt"
	"io"
)

// networkJSON is the stable on-disk representation of a Network.
type networkJSON struct {
	Dim     int       `json:"dim"`
	Kernels []Kernel  `json:"kernels"`
	Weights []float64 `json:"weights"`
}

// MarshalJSON serializes the trained network.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{Dim: n.dim, Kernels: n.Kernels, Weights: n.Weights})
}

// UnmarshalJSON restores a network serialized with MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var dto networkJSON
	if err := json.Unmarshal(data, &dto); err != nil {
		return fmt.Errorf("%w: %v", ErrUBF, err)
	}
	if dto.Dim < 1 {
		return fmt.Errorf("%w: dimension %d", ErrUBF, dto.Dim)
	}
	if len(dto.Weights) != len(dto.Kernels)+1 {
		return fmt.Errorf("%w: %d weights for %d kernels", ErrUBF, len(dto.Weights), len(dto.Kernels))
	}
	for i, k := range dto.Kernels {
		if err := k.Validate(dto.Dim); err != nil {
			return fmt.Errorf("kernel %d: %w", i, err)
		}
	}
	*n = Network{
		Kernels: dto.Kernels,
		Weights: dto.Weights,
		dim:     dto.Dim,
		eval:    newEvalSet(dto.Kernels, dto.Dim),
	}
	return nil
}

// SaveNetwork writes the network to w as JSON.
func SaveNetwork(w io.Writer, n *Network) error {
	return json.NewEncoder(w).Encode(n)
}

// LoadNetwork reads a network written by SaveNetwork.
func LoadNetwork(r io.Reader) (*Network, error) {
	var n Network
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrUBF, err)
	}
	return &n, nil
}

package ubf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Property: every UBF kernel value lies in [0, 1] for any valid parameters
// and any input — both γ and δ are bounded, so their convex mixture is too.
func TestKernelBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		dim := 1 + g.Intn(4)
		center := make([]float64, dim)
		dir := make([]float64, dim)
		for i := range center {
			center[i] = g.NormFloat64() * 10
			dir[i] = g.NormFloat64()
		}
		norm := 0.0
		for _, v := range dir {
			norm += v * v
		}
		if norm == 0 {
			dir[0] = 1
			norm = 1
		}
		norm = math.Sqrt(norm)
		for i := range dir {
			dir[i] /= norm
		}
		k := Kernel{
			Center: center,
			Width:  0.01 + g.Float64()*10,
			Mix:    g.Float64(),
			Dir:    dir,
		}
		if err := k.Validate(dim); err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, dim)
			for i := range x {
				x[i] = g.NormFloat64() * 20
			}
			v := k.Eval(x)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: PWA always returns a valid subset (sorted, unique, in range)
// regardless of the evaluator's landscape.
func TestPWASubsetValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		n := 2 + g.Intn(8)
		// A deterministic but arbitrary landscape.
		eval := func(subset []int) (float64, error) {
			s := 1.0
			for _, v := range subset {
				s += math.Sin(float64(v)*float64(seed%97)) * 0.3
			}
			return s, nil
		}
		subset, _, err := PWASelect(n, eval, SelectorConfig{Iterations: 30, Seed: seed})
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		prev := -1
		for _, v := range subset {
			if v < 0 || v >= n || seen[v] || v <= prev {
				return false
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

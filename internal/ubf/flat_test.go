package ubf

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"repro/internal/mat"
	"repro/internal/stats"
)

// TestEvalAllMatchesScalarKernels pins the flattened batch path to the
// scalar Kernel.Eval reference. The flat form precomputes 1/(2w²) and u/w,
// so agreement is to rounding, not bit-exact.
func TestEvalAllMatchesScalarKernels(t *testing.T) {
	g := stats.NewRNG(11)
	x, y := trainData(math.Sin, 60, g)
	net, err := Train(x, y, TrainConfig{NumKernels: 6, Candidates: 5, Refinements: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	k := len(net.Kernels)
	dst := make([]float64, x.Rows*(k+1))
	if err := net.EvalAll(x, dst); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		if got := dst[r*(k+1)]; got != 1 {
			t.Fatalf("row %d: bias column %g, want 1", r, got)
		}
		for i, kn := range net.Kernels {
			want := kn.Eval(row)
			got := dst[r*(k+1)+i+1]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("row %d kernel %d: flat %g vs scalar %g", r, i, got, want)
			}
		}
	}
	// Predict must agree with the explicit weight dot product over EvalAll.
	for r := 0; r < x.Rows; r++ {
		want := 0.0
		for i, w := range net.Weights {
			want += w * dst[r*(k+1)+i]
		}
		got, err := net.Predict(x.Row(r))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("row %d: Predict %g vs Φ·w %g", r, got, want)
		}
	}
}

// TestEvalAllErrors exercises the dimension and size checks.
func TestEvalAllErrors(t *testing.T) {
	g := stats.NewRNG(13)
	x, y := trainData(math.Sin, 20, g)
	net, err := Train(x, y, TrainConfig{NumKernels: 3, Candidates: 3, Refinements: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.EvalAll(mat.New(4, 2), make([]float64, 4*4)); err == nil {
		t.Fatal("wrong column count accepted")
	}
	if err := net.EvalAll(x, make([]float64, 3)); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := net.PredictRowsInto(x, make([]float64, 3)); err == nil {
		t.Fatal("short out accepted")
	}
}

// TestEvalAllZeroAlloc verifies the batched kernel allocates nothing in
// steady state — the property the case-study scoring loops rely on.
func TestEvalAllZeroAlloc(t *testing.T) {
	g := stats.NewRNG(15)
	x, y := trainData(math.Sin, 100, g)
	net, err := Train(x, y, TrainConfig{NumKernels: 8, Candidates: 4, Refinements: 2, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, x.Rows*(len(net.Kernels)+1))
	out := make([]float64, x.Rows)
	allocs := testing.AllocsPerRun(20, func() {
		if err := net.EvalAll(x, dst); err != nil {
			t.Fatal(err)
		}
		if err := net.PredictRowsInto(x, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalAll+PredictRowsInto allocate %g per run, want 0", allocs)
	}
}

// TestTrainBitIdenticalAcrossGOMAXPROCS verifies the parallel candidate
// search honours the determinism contract: the serialized model trained
// with one worker is byte-identical to the one trained with many.
func TestTrainBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	g := stats.NewRNG(17)
	x, y := trainData(func(v float64) float64 { return v*v - math.Cos(3*v) }, 120, g)
	cfg := TrainConfig{NumKernels: 6, Candidates: 12, Refinements: 6, Seed: 18}

	train := func(procs int) []byte {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		net, err := Train(x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(net)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	serial := train(1)
	for _, procs := range []int{2, 4, 8} {
		if got := train(procs); string(got) != string(serial) {
			t.Fatalf("model differs between GOMAXPROCS=1 and %d", procs)
		}
	}
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/par"
	ts "repro/internal/timeseries"
	"repro/internal/ubf"
)

// StrategyResult is one row of the E8 variable-selection comparison.
type StrategyResult struct {
	Strategy string
	CVError  float64 // cross-validated MSE of the inner model
	NumVars  int
	TestAUC  float64 // AUC of the UBF net trained on the selected subset
	Selected []string
}

// SelectionResult aggregates E8.
type SelectionResult struct {
	Strategies []StrategyResult
}

// Rows renders the comparison.
func (r SelectionResult) Rows() []Row {
	rows := make([]Row, 0, len(r.Strategies))
	for _, s := range r.Strategies {
		rows = append(rows, Row{
			Name: s.Strategy,
			Values: map[string]float64{
				"cvMSE": s.CVError,
				"vars":  float64(s.NumVars),
				"AUC":   s.TestAUC,
			},
			Order: []string{"cvMSE", "vars", "AUC"},
		})
	}
	return rows
}

// ByStrategy returns the named strategy's row.
func (r SelectionResult) ByStrategy(name string) (StrategyResult, bool) {
	for _, s := range r.Strategies {
		if s.Strategy == name {
			return s, true
		}
	}
	return StrategyResult{}, false
}

// expertVariables is the "(human) domain expert" choice the paper compares
// PWA against: the variables an operator would name first.
var expertVariables = []string{"mem_free", "cpu", "load"}

// RunSelectionComparison reproduces E8: PWA versus forward selection,
// backward elimination, the expert subset, and all variables — compared by
// inner cross-validation error and by the test AUC of the resulting UBF
// predictor.
func RunSelectionComparison(cfg CaseStudyConfig) (SelectionResult, error) {
	ds, err := buildDataset(cfg)
	if err != nil {
		return SelectionResult{}, err
	}
	specs, err := ds.ubfSpecs()
	if err != nil {
		return SelectionResult{}, err
	}
	trainX, names, err := ts.BuildMatrix(specs, ds.trainTimes)
	if err != nil {
		return SelectionResult{}, err
	}
	testX, _, err := ts.BuildMatrix(specs, ds.testTimes)
	if err != nil {
		return SelectionResult{}, err
	}
	means, stds := ts.StandardizeColumns(trainX)
	if err := ts.ApplyStandardization(testX, means, stds); err != nil {
		return SelectionResult{}, err
	}
	target, err := ds.sys.SAR("frac_slow")
	if err != nil {
		return SelectionResult{}, err
	}
	y := make([]float64, len(ds.trainTimes))
	for i, t := range ds.trainTimes {
		v, ok := target.ValueAt(t + cfg.LeadTime)
		if !ok {
			return SelectionResult{}, fmt.Errorf("%w: no target at %g", ErrExperiment, t)
		}
		y[i] = math.Log10(v + 1e-6)
	}
	eval, err := ubf.LinearCVEvaluator(trainX, y, 5, 1e-6, cfg.Seed+300)
	if err != nil {
		return SelectionResult{}, err
	}

	all := make([]int, trainX.Cols)
	for i := range all {
		all[i] = i
	}
	expert := indicesOf(names, expertVariables)

	type strategy struct {
		name string
		run  func() ([]int, float64, error)
	}
	strategies := []strategy{
		{"PWA", func() ([]int, float64, error) {
			return ubf.PWASelect(trainX.Cols, eval, ubf.SelectorConfig{
				Iterations: 250,
				Seed:       cfg.Seed + 301,
			})
		}},
		{"forward", func() ([]int, float64, error) {
			return ubf.ForwardSelect(trainX.Cols, eval)
		}},
		{"backward", func() ([]int, float64, error) {
			return ubf.BackwardEliminate(trainX.Cols, eval)
		}},
		{"expert", func() ([]int, float64, error) {
			score, err := eval(expert)
			return expert, score, err
		}},
		{"all", func() ([]int, float64, error) {
			score, err := eval(all)
			return all, score, err
		}},
	}

	// Each strategy is self-contained (own seed, read-only shared data), so
	// the five searches run in parallel; results assemble in declaration
	// order and the first error in that order is the one reported, exactly
	// as the serial loop would.
	rows := make([]StrategyResult, len(strategies))
	errs := make([]error, len(strategies))
	par.ForN(cfg.Workers, len(strategies), func(i int) {
		s := strategies[i]
		subset, cvErr, err := s.run()
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", s.name, err)
			return
		}
		auc, err := ds.subsetAUC(trainX, testX, y, subset, cfg)
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", s.name, err)
			return
		}
		selected := make([]string, 0, len(subset))
		for _, c := range subset {
			selected = append(selected, names[c])
		}
		rows[i] = StrategyResult{
			Strategy: s.name,
			CVError:  cvErr,
			NumVars:  len(subset),
			TestAUC:  auc,
			Selected: selected,
		}
	})
	for _, err := range errs {
		if err != nil {
			return SelectionResult{}, err
		}
	}
	return SelectionResult{Strategies: rows}, nil
}

// subsetAUC trains a UBF net on the column subset and scores the test grid.
func (ds *dataset) subsetAUC(trainX, testX *mat.Matrix, y []float64, subset []int, cfg CaseStudyConfig) (float64, error) {
	subTrain, err := ubf.SubsetColumns(trainX, subset)
	if err != nil {
		return 0, err
	}
	subTest, err := ubf.SubsetColumns(testX, subset)
	if err != nil {
		return 0, err
	}
	net, err := ubf.Train(subTrain, y, ubf.TrainConfig{
		NumKernels:  cfg.UBFKernels,
		Candidates:  15,
		Refinements: 10,
		Seed:        cfg.Seed + 302,
	})
	if err != nil {
		return 0, err
	}
	scores, err := net.PredictRows(subTest)
	if err != nil {
		return 0, err
	}
	return aucOf(scores, ds.testLabels)
}

// indicesOf maps variable names to their column indices (raw columns carry
// the plain variable name).
func indicesOf(names []string, wanted []string) []int {
	var out []int
	for _, w := range wanted {
		for i, n := range names {
			if n == w {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

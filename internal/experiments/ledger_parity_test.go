package experiments

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/predict"
)

// TestLedgerMatchesOfflineEvaluator pins the tentpole acceptance criterion:
// streaming a replayed SCP trace through the online prediction ledger must
// reproduce the offline Sect. 3.3 evaluator's contingency table EXACTLY —
// same (t, t+Δtl+Δtp] matching rule, same TP/FP/TN/FN counts — even though
// the ledger sees predictions and ground-truth failures interleaved in time
// order and resolves them incrementally at a moving watermark.
func TestLedgerMatchesOfflineEvaluator(t *testing.T) {
	cfg := DefaultCaseStudyConfig()
	cfg.TrainDays, cfg.TestDays = 2, 3 // enough failures, fast
	ds, err := buildDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.testTimes) == 0 {
		t.Fatal("empty evaluation grid")
	}

	// Deterministic synthetic scores: parity is about the matching rule,
	// not predictor quality, so any threshold-straddling score stream works.
	const threshold = 0.5
	scores := make([]float64, len(ds.testTimes))
	for i, tt := range ds.testTimes {
		scores[i] = 0.5 + 0.5*math.Sin(tt/700)
	}

	// Offline: classify each grid point against the precomputed labels
	// (anyIn over the failure record), as the case-study evaluator does.
	var offline predict.ContingencyTable
	for i, label := range ds.testLabels {
		offline.Add(scores[i] >= threshold, label)
	}
	if offline.TP == 0 || offline.FN == 0 || offline.FP == 0 {
		t.Fatalf("degenerate offline table %+v: parity would be vacuous", offline)
	}

	// Online: stream the same trace through the ledger in time order —
	// failures land as they occur, the watermark advances with every
	// prediction, and everything resolves incrementally.
	led, err := obs.NewLedger(obs.LedgerConfig{
		LeadTime: cfg.LeadTime, Slack: cfg.Slack,
	}, "replay")
	if err != nil {
		t.Fatal(err)
	}
	failIdx := 0
	for i, tt := range ds.testTimes {
		for failIdx < len(ds.failures) && ds.failures[failIdx] <= tt {
			led.RecordFailure(ds.failures[failIdx])
			failIdx++
		}
		led.RecordPrediction("replay", tt, scores[i] >= threshold, scores[i])
		led.Advance(tt)
	}
	for ; failIdx < len(ds.failures); failIdx++ {
		led.RecordFailure(ds.failures[failIdx])
	}
	led.Advance(ds.endAt + cfg.LeadTime + cfg.Slack + 1)

	got := led.Cumulative("replay")
	if got != offline {
		t.Fatalf("ledger table %+v != offline evaluator table %+v", got, offline)
	}
	if q := led.Quality("replay"); q != offline {
		t.Fatalf("rolling (no-window) table %+v != offline table %+v", q, offline)
	}
	if snap := led.Snapshot(); snap.Predictions != int64(len(ds.testTimes)) {
		t.Fatalf("journaled %d predictions, want %d", snap.Predictions, len(ds.testTimes))
	}
}
